#!/usr/bin/env bash
# Full pre-land check: tier-1 build + tests, the DST chaos sweep, ASan/UBSan
# build + tests, and clang-tidy. This is what CI runs; run it before pushing.
#
#   scripts/check.sh            # everything (chaos sweep included)
#   scripts/check.sh --fast     # tier-1 only (skip chaos, sanitizers, tidy)
#   scripts/check.sh --chaos    # tier-1 + the wide DST chaos sweep only
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
CHAOS_ONLY=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ "${1:-}" == "--chaos" ]]; then
  CHAOS_ONLY=1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure

echo "==> bench smoke: propagation trace (span-derived per-hop latencies)"
(cd build/bench && ./propagation_trace --commits=25 >/dev/null)

if [[ "$FAST" == "1" ]]; then
  echo "==> done (fast mode: chaos, sanitizers and clang-tidy skipped)"
  exit 0
fi

echo "==> chaos: DST wide-seed fault-injection sweep"
ctest --test-dir build -C chaos -L chaos --output-on-failure

if [[ "$CHAOS_ONLY" == "1" ]]; then
  echo "==> done (chaos mode: sanitizers and clang-tidy skipped)"
  exit 0
fi

echo "==> sanitized: configure + build (address;undefined)"
cmake -B build-asan -S . -DCONFIGERATOR_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j "$JOBS"

echo "==> sanitized: ctest"
ctest --test-dir build-asan --output-on-failure

echo "==> clang-tidy"
cmake --build build --target lint

echo "==> all checks passed"
