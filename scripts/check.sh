#!/usr/bin/env bash
# Full pre-land check: tier-1 build + tests, the DST chaos sweep, ASan/UBSan
# build + tests, a TSan build + concurrency-sensitive tests, and clang-tidy.
# This is what CI runs; run it before pushing.
#
#   scripts/check.sh            # everything (chaos sweep included)
#   scripts/check.sh --fast     # tier-1 only (skip chaos, sanitizers, tidy)
#   scripts/check.sh --chaos    # tier-1 + the wide DST chaos sweep only
#   scripts/check.sh --tsan     # tier-1 + the TSan concurrency battery only
#   scripts/check.sh --semdiff  # semantic-diff smoke only: the 20-commit
#                               # scripted sequence, the 500-commit
#                               # differential battery, and a throughput run
#   scripts/check.sh --invariants
#                               # invariant-checker smoke only: the unit +
#                               # pipeline battery, the 500-commit
#                               # zero-spurious property battery, the DST
#                               # inconsistent-commit scenarios, and a
#                               # throughput run
#   scripts/check.sh --vm       # bytecode-VM smoke only: the opcode/cache
#                               # unit battery, the 1k-program differential
#                               # fuzz battery (plain + ASan/UBSan), and a
#                               # cache-ablation throughput run
#   scripts/check.sh --differential
#                               # every two-implementation differential suite
#                               # (gatekeeper, semdiff, VM-vs-interpreter,
#                               # calendar-queue-vs-heap scheduler)
#   scripts/check.sh --scale    # scale lane only: the 1k/10k-server
#                               # determinism-at-scale sweeps plus a 10k-server
#                               # Fig 14 propagation smoke
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
CHAOS_ONLY=0
TSAN_ONLY=0
SEMDIFF_ONLY=0
INVARIANTS_ONLY=0
VM_ONLY=0
DIFFERENTIAL_ONLY=0
SCALE_ONLY=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ "${1:-}" == "--chaos" ]]; then
  CHAOS_ONLY=1
elif [[ "${1:-}" == "--tsan" ]]; then
  TSAN_ONLY=1
elif [[ "${1:-}" == "--semdiff" ]]; then
  SEMDIFF_ONLY=1
elif [[ "${1:-}" == "--invariants" ]]; then
  INVARIANTS_ONLY=1
elif [[ "${1:-}" == "--vm" ]]; then
  VM_ONLY=1
elif [[ "${1:-}" == "--differential" ]]; then
  DIFFERENTIAL_ONLY=1
elif [[ "${1:-}" == "--scale" ]]; then
  SCALE_ONLY=1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

# ThreadSanitizer over the concurrency-sensitive surface: the shared-snapshot
# Gatekeeper runtime (differential + stress tests), the distribution stack,
# and the DST harness that hot-swaps gatekeeper snapshots from proxy
# callbacks. TSan must be built alone (it is incompatible with ASan).
run_tsan() {
  echo "==> tsan: configure + build (thread)"
  cmake -B build-tsan -S . -DCONFIGERATOR_SANITIZE="thread" >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "==> tsan: gatekeeper + distribution + dst tests"
  ctest --test-dir build-tsan --output-on-failure -R \
    '^(gatekeeper_test|gatekeeper_differential_test|gatekeeper_concurrency_test|distribution_test|dst_test)$'

  echo "==> tsan: fig15 2-thread churn smoke"
  (cd build-tsan/bench && ./fig15_gatekeeper_throughput --mt_smoke)
}

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

if [[ "$SEMDIFF_ONLY" == "1" ]]; then
  echo "==> semdiff: scripted 20-commit sequence + 500-commit differential battery"
  ctest --test-dir build --output-on-failure -R \
    '^(semdiff_test|semdiff_differential_test)$'
  echo "==> semdiff: throughput smoke (writes BENCH_semdiff.json)"
  (cd build/bench && ./semdiff_throughput >/dev/null)
  echo "==> done (semdiff mode: full tier-1, chaos, sanitizers and clang-tidy skipped)"
  exit 0
fi

if [[ "$INVARIANTS_ONLY" == "1" ]]; then
  echo "==> invariants: unit + pipeline battery, zero-spurious property battery"
  ctest --test-dir build --output-on-failure -R \
    '^(invariant_test|invariant_property_test)$'
  echo "==> invariants: DST inconsistent-commit gate + bypass scenarios"
  (cd build/tests && ./dst_test --gtest_filter='*InconsistentCommit*')
  echo "==> invariants: throughput smoke (writes BENCH_invariants.json)"
  (cd build/bench && ./invariant_throughput >/dev/null)
  echo "==> done (invariants mode: full tier-1, chaos, sanitizers and clang-tidy skipped)"
  exit 0
fi

if [[ "$VM_ONLY" == "1" ]]; then
  echo "==> vm: opcode/cache unit battery + 1k-program differential fuzz"
  ctest --test-dir build --output-on-failure -R \
    '^(vm_test|vm_differential_test)$'
  echo "==> vm: sanitized build (address;undefined)"
  cmake -B build-asan -S . -DCONFIGERATOR_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$JOBS" --target vm_test vm_differential_test
  echo "==> vm: differential fuzz + bit-flip mutation corpus under ASan/UBSan"
  ctest --test-dir build-asan --output-on-failure -R \
    '^(vm_test|vm_differential_test)$'
  echo "==> vm: cache-ablation throughput (writes BENCH_csl_vm.json)"
  (cd build/bench && ./csl_vm)
  echo "==> done (vm mode: full tier-1, chaos, other sanitizers and clang-tidy skipped)"
  exit 0
fi

if [[ "$DIFFERENTIAL_ONLY" == "1" ]]; then
  echo "==> differential: gatekeeper + semdiff + VM + scheduler batteries"
  ctest --test-dir build --output-on-failure -L differential
  echo "==> done (differential mode: full tier-1, chaos, sanitizers and clang-tidy skipped)"
  exit 0
fi

if [[ "$SCALE_ONLY" == "1" ]]; then
  echo "==> scale: tier-1 smoke (1k replay + stride equivalence)"
  ctest --test-dir build --output-on-failure -R '^scale_test$'
  echo "==> scale: 10-seed determinism sweeps at 1k and 10k servers"
  ctest --test-dir build -C scale -L scale --output-on-failure
  echo "==> scale: scheduler differential battery"
  ctest --test-dir build --output-on-failure -R '^sim_differential_test$'
  echo "==> scale: Fig 14 propagation smoke at 10k servers"
  (cd build/bench && ./fig14_scale --smoke)
  echo "==> done (scale mode: full tier-1, chaos, sanitizers and clang-tidy skipped)"
  exit 0
fi

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure

echo "==> bench smoke: propagation trace (span-derived per-hop latencies)"
(cd build/bench && ./propagation_trace --commits=25 >/dev/null)

echo "==> bench smoke: fig15 2-thread shared-snapshot churn"
(cd build/bench && ./fig15_gatekeeper_throughput --mt_smoke)

if [[ "$TSAN_ONLY" == "1" ]]; then
  run_tsan
  echo "==> done (tsan mode: chaos, asan and clang-tidy skipped)"
  exit 0
fi

if [[ "$FAST" == "1" ]]; then
  echo "==> done (fast mode: chaos, sanitizers and clang-tidy skipped)"
  exit 0
fi

echo "==> chaos: DST wide-seed fault-injection sweep"
ctest --test-dir build -C chaos -L chaos --output-on-failure

if [[ "$CHAOS_ONLY" == "1" ]]; then
  echo "==> done (chaos mode: sanitizers and clang-tidy skipped)"
  exit 0
fi

echo "==> sanitized: configure + build (address;undefined)"
cmake -B build-asan -S . -DCONFIGERATOR_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j "$JOBS"

echo "==> sanitized: ctest"
ctest --test-dir build-asan --output-on-failure

echo "==> sanitized: invariant throughput (ddmin shrink under ASan/UBSan)"
(cd build-asan/bench && ./invariant_throughput >/dev/null)

run_tsan

echo "==> clang-tidy"
cmake --build build --target lint

echo "==> all checks passed"
