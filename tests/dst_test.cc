// Deterministic simulation testing (DST): network fault-model unit tests,
// fault-plan serialization, full-stack harness smoke runs, the wide chaos
// sweep (label: chaos), the seeded torn-config bug with trace shrinking and
// replay, PackageVessel churn, and the MobileConfig push-vs-pull race.
//
// This file supersedes the Zeus/proxy chaos scenario that used to live in
// fault_injection_test.cc: the DST harness runs the same fleet shape with a
// strictly richer fault model (partitions, link faults, disk corruption) and
// checks invariants continuously instead of only at the end.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/dst/fault_plan.h"
#include "src/dst/harness.h"
#include "src/dst/shrink.h"
#include "src/mobile/mobileconfig.h"
#include "src/sim/network.h"

namespace configerator {
namespace {

// ---- Network fault model -----------------------------------------------------

class NetworkStatsTest : public ::testing::Test {
 protected:
  Simulator sim_;
  Network net_{&sim_, Topology(2, 2, 4), 42};
  ServerId a_{0, 0, 0};
  ServerId b_{0, 0, 1};
  ServerId c_{1, 0, 0};
};

TEST_F(NetworkStatsTest, CountsDeliveriesAndDropsToDownServers) {
  int delivered = 0;
  net_.Send(a_, b_, 100, [&] { ++delivered; });
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_.stats().delivered, 1u);
  EXPECT_EQ(net_.stats().dropped, 0u);
  EXPECT_EQ(net_.link_stats(a_, b_).delivered, 1u);

  // A message to a down server is not silently ignored anymore: it shows up
  // in the per-link and aggregate drop counters.
  net_.failures().Crash(b_);
  net_.Send(a_, b_, 100, [&] { ++delivered; });
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_.stats().dropped, 1u);
  EXPECT_EQ(net_.link_stats(a_, b_).dropped, 1u);

  // Down *on arrival* also counts as a drop on that link.
  net_.failures().Recover(b_);
  net_.Send(a_, b_, 100, [&] { ++delivered; });
  net_.failures().Crash(b_);
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_.link_stats(a_, b_).dropped, 2u);
}

TEST_F(NetworkStatsTest, PartitionsBlockTrafficUntilHealed) {
  uint64_t rule = net_.Partition({a_}, {b_});
  EXPECT_FALSE(net_.CanDeliver(a_, b_));
  EXPECT_FALSE(net_.CanDeliver(b_, a_));
  EXPECT_TRUE(net_.CanDeliver(a_, c_));

  int delivered = 0;
  net_.Send(a_, b_, 10, [&] { ++delivered; });
  net_.Send(b_, a_, 10, [&] { ++delivered; });
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.stats().dropped, 2u);

  EXPECT_TRUE(net_.HealPartition(rule));
  net_.Send(a_, b_, 10, [&] { ++delivered; });
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkStatsTest, OneWayPartitionIsAsymmetric) {
  net_.PartitionOneWay({a_}, {b_});
  EXPECT_FALSE(net_.CanDeliver(a_, b_));
  EXPECT_TRUE(net_.CanDeliver(b_, a_));

  int forward = 0;
  int reverse = 0;
  net_.Send(a_, b_, 10, [&] { ++forward; });
  net_.Send(b_, a_, 10, [&] { ++reverse; });
  sim_.RunUntilIdle();
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(reverse, 1);
  net_.HealAllPartitions();
  EXPECT_EQ(net_.partition_count(), 0u);
}

TEST_F(NetworkStatsTest, LinkFaultsDropDuplicateAndDelay) {
  LinkFault drop_all;
  drop_all.drop_prob = 1.0;
  net_.SetLinkFault(a_, b_, drop_all);
  int delivered = 0;
  net_.Send(a_, b_, 10, [&] { ++delivered; });
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net_.link_stats(a_, b_).dropped, 1u);

  LinkFault dup_all;
  dup_all.dup_prob = 1.0;
  net_.SetLinkFault(a_, b_, dup_all);
  net_.Send(a_, b_, 10, [&] { ++delivered; });
  sim_.RunUntilIdle();
  EXPECT_EQ(delivered, 2);  // Original + duplicate both ran the handler.
  EXPECT_EQ(net_.link_stats(a_, b_).duplicated, 1u);
  EXPECT_EQ(net_.link_stats(a_, b_).delivered, 2u);

  net_.ClearLinkFaults();
  LinkFault slow;
  slow.extra_delay = 50 * kSimMillisecond;
  net_.SetDefaultFault(slow);
  SimTime sent_at = sim_.now();
  SimTime latency = 0;
  net_.Send(a_, b_, 10, [&] { latency = sim_.now() - sent_at; });
  sim_.RunUntilIdle();
  EXPECT_GE(latency, 50 * kSimMillisecond);
  EXPECT_GT(net_.stats().delayed, 0u);
}

TEST_F(NetworkStatsTest, FifoChannelsNeverReorderButPlainSendsCan) {
  LinkFault reorder;
  reorder.reorder_prob = 1.0;
  net_.SetDefaultFault(reorder);

  // TCP-like FIFO channel: order preserved even with reorder faults active.
  std::vector<int> fifo_order;
  for (int i = 0; i < 10; ++i) {
    net_.SendFifo(a_, b_, 10, [&fifo_order, i] { fifo_order.push_back(i); });
  }
  sim_.RunUntilIdle();
  ASSERT_EQ(fifo_order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(fifo_order.begin(), fifo_order.end()));
  EXPECT_EQ(net_.stats().reordered, 0u);

  // Plain sends: reorder faults reshuffle delivery delays.
  for (int i = 0; i < 10; ++i) {
    net_.Send(a_, b_, 10, [] {});
  }
  sim_.RunUntilIdle();
  EXPECT_GT(net_.stats().reordered, 0u);
}

TEST_F(NetworkStatsTest, ResetStatsClearsAggregateAndPerLinkCounters) {
  net_.failures().Crash(c_);
  for (int i = 0; i < 5; ++i) {
    net_.Send(a_, b_, 10, [] {});
  }
  net_.Send(a_, c_, 10, [] {});
  sim_.RunUntilIdle();
  ASSERT_EQ(net_.stats().delivered, 5u);
  ASSERT_EQ(net_.stats().dropped, 1u);
  ASSERT_EQ(net_.link_stats(a_, b_).delivered, 5u);
  ASSERT_EQ(net_.link_stats(a_, c_).dropped, 1u);

  net_.ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.stats().delivered, 0u);
  EXPECT_EQ(net_.stats().dropped, 0u);
  EXPECT_EQ(net_.link_stats(a_, b_).delivered, 0u);
  EXPECT_EQ(net_.link_stats(a_, c_).dropped, 0u);
}

TEST_F(NetworkStatsTest, ResetStatsIsolatesMeasurementWindows) {
  // Two identical bursts separated by a reset must report identical stats:
  // nothing from the first window may leak into the second.
  auto burst = [this] {
    net_.failures().Crash(c_);
    for (int i = 0; i < 7; ++i) {
      net_.Send(a_, b_, 10, [] {});
    }
    net_.Send(a_, c_, 10, [] {});
    sim_.RunUntilIdle();
    net_.failures().Recover(c_);
  };
  burst();
  NetStats first = net_.stats();
  uint64_t first_ab = net_.link_stats(a_, b_).delivered;

  net_.ResetStats();
  burst();
  EXPECT_EQ(net_.stats().messages_sent, first.messages_sent);
  EXPECT_EQ(net_.stats().delivered, first.delivered);
  EXPECT_EQ(net_.stats().dropped, first.dropped);
  EXPECT_EQ(net_.link_stats(a_, b_).delivered, first_ab);
}

// ---- Fault plans -------------------------------------------------------------

TEST(FaultPlanTest, SerializationRoundTripsEveryOp) {
  FaultPlan plan;
  FaultEvent crash;
  crash.at = 1 * kSimSecond;
  crash.op = FaultOp::kCrash;
  crash.group_a = {ServerId{0, 0, 3}};
  plan.events.push_back(crash);
  FaultEvent recover = crash;
  recover.at = 2 * kSimSecond;
  recover.op = FaultOp::kRecover;
  plan.events.push_back(recover);
  FaultEvent proxy_crash;
  proxy_crash.at = 3 * kSimSecond;
  proxy_crash.op = FaultOp::kCrashProxy;
  proxy_crash.index = 4;
  plan.events.push_back(proxy_crash);
  FaultEvent proxy_restart = proxy_crash;
  proxy_restart.at = 4 * kSimSecond;
  proxy_restart.op = FaultOp::kRestartProxy;
  plan.events.push_back(proxy_restart);
  FaultEvent cut;
  cut.at = 5 * kSimSecond;
  cut.op = FaultOp::kPartition;
  cut.group_a = {ServerId{0, 0, 0}, ServerId{0, 0, 1}};
  cut.group_b = {ServerId{1, 0, 0}};
  plan.events.push_back(cut);
  FaultEvent oneway = cut;
  oneway.at = 6 * kSimSecond;
  oneway.op = FaultOp::kPartitionOneWay;
  plan.events.push_back(oneway);
  FaultEvent heal;
  heal.at = 7 * kSimSecond;
  heal.op = FaultOp::kHealPartitions;
  plan.events.push_back(heal);
  FaultEvent storm;
  storm.at = 8 * kSimSecond;
  storm.op = FaultOp::kGlobalFault;
  storm.fault.drop_prob = 0.125;
  storm.fault.dup_prob = 0.0625;
  storm.fault.reorder_prob = 0.25;
  storm.fault.extra_delay = 7 * kSimMillisecond;
  storm.fault.extra_delay_jitter = 3 * kSimMillisecond;
  plan.events.push_back(storm);
  FaultEvent clear;
  clear.at = 9 * kSimSecond;
  clear.op = FaultOp::kClearFaults;
  plan.events.push_back(clear);
  FaultEvent corrupt;
  corrupt.at = 10 * kSimSecond;
  corrupt.op = FaultOp::kCorruptDisk;
  corrupt.index = 2;
  plan.events.push_back(corrupt);
  FaultEvent gated_pair;
  gated_pair.at = 11 * kSimSecond;
  gated_pair.op = FaultOp::kInconsistentCommit;
  gated_pair.key = "gated";
  plan.events.push_back(gated_pair);
  FaultEvent bypass_pair = gated_pair;
  bypass_pair.at = 12 * kSimSecond;
  bypass_pair.key = "bypass";
  plan.events.push_back(bypass_pair);

  std::string text = plan.ToString();
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_EQ(parsed->size(), plan.size());
}

TEST(FaultPlanTest, RandomPlansAreSeedDeterministic) {
  ScenarioOptions options;
  Harness harness(options);
  FaultPlanShape shape = harness.shape();
  FaultPlan p1 = FaultPlan::Random(99, shape);
  FaultPlan p2 = FaultPlan::Random(99, shape);
  EXPECT_EQ(p1.ToString(), p2.ToString());
  EXPECT_FALSE(p1.empty());

  FaultPlan p3 = FaultPlan::Random(100, shape);
  EXPECT_NE(p1.ToString(), p3.ToString());

  // Clean-run sweeps never inject corruption unless asked.
  for (const FaultEvent& event : p1.events) {
    EXPECT_NE(event.op, FaultOp::kCorruptDisk);
  }
}

// ---- Harness: clean chaos runs ----------------------------------------------

ScenarioOptions SmokeScenario(uint64_t seed) {
  ScenarioOptions options;
  options.seed = seed;
  options.chaos_duration = 40 * kSimSecond;
  options.settle = 25 * kSimSecond;
  options.writes = 30;
  options.vessel_bytes = 8 << 20;
  return options;
}

class DstSmokeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DstSmokeTest, RandomChaosRunsClean) {
  ScenarioOptions options = SmokeScenario(GetParam());
  Harness harness(options);
  FaultPlan plan = FaultPlan::Random(GetParam(), harness.shape());
  RunResult result = harness.Run(plan);
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message;
  // The run must have done real work under real faults.
  EXPECT_GT(result.committed_zxid, 0);
  EXPECT_GT(result.published, 0u);
  EXPECT_EQ(result.vessel_completed, 8u);
  EXPECT_GT(result.net.messages_sent, 0u);
  EXPECT_GT(result.net.dropped + result.net.delayed + result.net.duplicated +
                result.net.reordered,
            0u)
      << "fault plan fired no observable network fault";
}

// Seeds picked so every smoke run's random plan fires countable network
// faults (a handful of seeds roll only proxy crashes / inert partitions).
INSTANTIATE_TEST_SUITE_P(Seeds, DstSmokeTest,
                         ::testing::Values(1, 2, 3, 5, 7));

// The wide sweep: excluded from tier-1 (ctest configuration + label "chaos");
// scripts/check.sh --chaos runs it.
class DstChaosSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DstChaosSweepTest, RandomChaosRunsClean) {
  ScenarioOptions options = SmokeScenario(GetParam());
  Harness harness(options);
  RandomPlanOptions plan_options;
  plan_options.incidents = 10;
  FaultPlan plan = FaultPlan::Random(GetParam() * 7 + 3, harness.shape(),
                                     plan_options);
  RunResult result = harness.Run(plan);
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message
      << "\n--- replayable trace ---\n"
      << result.trace;
  EXPECT_GT(result.committed_zxid, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DstChaosSweepTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

// ---- Replay determinism ------------------------------------------------------

TEST(DstReplayTest, TraceReplaysBitForBit) {
  ScenarioOptions options = SmokeScenario(11);
  Harness harness(options);
  FaultPlan plan = FaultPlan::Random(11, harness.shape());
  RunResult first = harness.Run(plan);

  auto replayed = Harness::Replay(first.trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->violated, first.violated);
  EXPECT_EQ(replayed->committed_zxid, first.committed_zxid);
  EXPECT_EQ(replayed->published, first.published);
  EXPECT_EQ(replayed->sim_events, first.sim_events);
  EXPECT_EQ(replayed->net.messages_sent, first.net.messages_sent);
  EXPECT_EQ(replayed->net.dropped, first.net.dropped);
  // The replay's own trace is identical — the fixed point that makes traces
  // shareable bug reports.
  EXPECT_EQ(replayed->trace, first.trace);
}

// ---- The seeded bug: torn config served after a proxy crash ------------------

// A disk-corruption event tears proxy 2's on-disk cache; when the proxy
// process then crashes, the application client falls back to disk (the §3.4
// availability path) and serves the torn value. The no-torn-config invariant
// must catch it, the shrinker must reduce the schedule to its essence (the
// corruption + the crash), and the shrunk trace must replay deterministically.
FaultPlan SeededTornConfigPlan(const FaultPlanShape& shape) {
  FaultPlan plan;
  auto add = [&plan](SimTime at, FaultOp op) -> FaultEvent& {
    FaultEvent event;
    event.at = at;
    event.op = op;
    plan.events.push_back(event);
    return plan.events.back();
  };
  // Noise the shrinker must discard: a member outage, a lossy window, a
  // cross-region partition.
  add(8 * kSimSecond, FaultOp::kCrash).group_a = {shape.members.at(1)};
  add(14 * kSimSecond, FaultOp::kRecover).group_a = {shape.members.at(1)};
  FaultEvent& storm = add(10 * kSimSecond, FaultOp::kGlobalFault);
  storm.fault.drop_prob = 0.05;
  storm.fault.reorder_prob = 0.1;
  add(16 * kSimSecond, FaultOp::kClearFaults);
  FaultEvent& cut = add(18 * kSimSecond, FaultOp::kPartition);
  for (const ServerId& id : shape.members) {
    (id.region == 0 ? cut.group_a : cut.group_b).push_back(id);
  }
  for (const ServerId& id : shape.observers) {
    (id.region == 0 ? cut.group_a : cut.group_b).push_back(id);
  }
  add(24 * kSimSecond, FaultOp::kHealPartitions);
  add(12 * kSimSecond, FaultOp::kCrashProxy).index = 6;
  add(15 * kSimSecond, FaultOp::kRestartProxy).index = 6;
  // The bug itself.
  FaultEvent& corrupt = add(26 * kSimSecond, FaultOp::kCorruptDisk);
  corrupt.index = 2;
  FaultEvent& crash = add(27 * kSimSecond, FaultOp::kCrashProxy);
  crash.index = 2;
  plan.SortByTime();
  return plan;
}

TEST(DstSeededBugTest, TornConfigIsCaughtShrunkAndReplayed) {
  ScenarioOptions options = SmokeScenario(21);
  FaultPlan plan;
  {
    Harness harness(options);
    plan = SeededTornConfigPlan(harness.shape());
  }
  ASSERT_EQ(plan.size(), 10u);

  // 1. The invariant catches the bug.
  Harness harness(options);
  RunResult failing = harness.Run(plan);
  ASSERT_TRUE(failing.violated) << "seeded bug was not caught";
  EXPECT_EQ(failing.violation.invariant, "no-torn-config")
      << failing.violation.message;

  // 2. The shrinker reduces the 9-event schedule to a minimal reproduction.
  ShrinkResult shrunk =
      ShrinkFaultPlan(options, plan, failing.violation.invariant);
  EXPECT_LE(shrunk.final_events, 5u) << shrunk.plan.ToString();
  EXPECT_GE(shrunk.final_events, 2u)
      << "corruption alone must not fire (apps read the live proxy): "
      << shrunk.plan.ToString();
  ASSERT_TRUE(shrunk.run.violated);
  EXPECT_EQ(shrunk.run.violation.invariant, "no-torn-config");
  // The essence survived: the corruption and the proxy crash.
  bool has_corrupt = false;
  bool has_proxy_crash = false;
  for (const FaultEvent& event : shrunk.plan.events) {
    has_corrupt |= event.op == FaultOp::kCorruptDisk;
    has_proxy_crash |= event.op == FaultOp::kCrashProxy;
  }
  EXPECT_TRUE(has_corrupt);
  EXPECT_TRUE(has_proxy_crash);

  // 3. seed + shrunk trace reproduce the identical violation.
  auto replayed = Harness::Replay(shrunk.run.trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_TRUE(replayed->violated);
  EXPECT_EQ(replayed->violation.invariant, shrunk.run.violation.invariant);
  EXPECT_EQ(replayed->violation.at, shrunk.run.violation.at);
  EXPECT_EQ(replayed->violation.message, shrunk.run.violation.message);
}

// ---- Cross-config invariants at the commit gate ------------------------------

// Builds a plan that lands the jointly-inconsistent shed/kill pair after the
// workload's last write (writes land strictly before chaos_duration - 1s),
// so no later benign write papers over the pair before proxies serve it.
FaultPlan InconsistentCommitPlan(const ScenarioOptions& options,
                                 const std::string& mode) {
  FaultPlan plan;
  FaultEvent pair;
  pair.at = options.chaos_duration - 1;
  pair.op = FaultOp::kInconsistentCommit;
  pair.key = mode;
  plan.events.push_back(pair);
  return plan;
}

TEST(DstSeededBugTest, InconsistentCommitIsBlockedByTheGate) {
  // "gated" runs the pair through the same cross-config InvariantChecker
  // Sandcastle uses; it must refuse the commit, so the fleet never sees the
  // pair and the run converges clean.
  ScenarioOptions options = SmokeScenario(31);
  Harness harness(options);
  RunResult result = harness.Run(InconsistentCommitPlan(options, "gated"));
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message;
  EXPECT_NE(result.trace.find("blocked by invariant gate"), std::string::npos)
      << "the gate never fired";
  EXPECT_EQ(result.trace.find("commit inconsistent-pair"), std::string::npos);
}

TEST(DstSeededBugTest, InconsistentCommitBypassIsCaughtShrunkAndReplayed) {
  ScenarioOptions options = SmokeScenario(31);
  // The bypass (a simulated force-land) buried in schedule noise.
  FaultPlan plan = InconsistentCommitPlan(options, "bypass");
  {
    Harness noise_shape(options);
    FaultPlanShape shape = noise_shape.shape();
    FaultEvent crash;
    crash.at = 5 * kSimSecond;
    crash.op = FaultOp::kCrash;
    crash.group_a = {shape.observers[0]};
    plan.events.push_back(crash);
    FaultEvent recover = crash;
    recover.at = 9 * kSimSecond;
    recover.op = FaultOp::kRecover;
    plan.events.push_back(recover);
    plan.SortByTime();
  }

  // 1. The continuous cross-config check catches the served pair.
  Harness harness(options);
  RunResult failing = harness.Run(plan);
  ASSERT_TRUE(failing.violated) << "bypassed pair was never caught";
  EXPECT_EQ(failing.violation.invariant, "cross-config-invariant")
      << failing.violation.message;
  EXPECT_NE(failing.violation.message.find("shed=90"), std::string::npos)
      << failing.violation.message;

  // 2. The shrinker strips the noise: the force-landed commit alone
  //    reproduces.
  ShrinkResult shrunk =
      ShrinkFaultPlan(options, plan, failing.violation.invariant);
  EXPECT_EQ(shrunk.final_events, 1u) << shrunk.plan.ToString();
  ASSERT_TRUE(shrunk.run.violated);
  ASSERT_EQ(shrunk.plan.events.size(), 1u);
  EXPECT_EQ(shrunk.plan.events[0].op, FaultOp::kInconsistentCommit);
  EXPECT_EQ(shrunk.plan.events[0].key, "bypass");

  // 3. seed + shrunk trace reproduce the identical violation.
  auto replayed = Harness::Replay(shrunk.run.trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_TRUE(replayed->violated);
  EXPECT_EQ(replayed->violation.invariant, shrunk.run.violation.invariant);
  EXPECT_EQ(replayed->violation.at, shrunk.run.violation.at);
  EXPECT_EQ(replayed->violation.message, shrunk.run.violation.message);
}

// ---- Freshness SLO: propagation latency as an invariant ----------------------

TEST(DstFreshnessTest, SloHoldsOnCleanRun) {
  ScenarioOptions options = SmokeScenario(13);
  options.freshness_slo = 30 * kSimSecond;
  Harness harness(options);
  RunResult result = harness.Run(FaultPlan{});
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message;
  // The invariant actually had data to judge: every proxy recorded
  // propagation samples into the registry.
  Histogram fleet =
      harness.obs().metrics.MergedHistogram("proxy_propagation_seconds");
  EXPECT_GT(fleet.count(), 0u);
  EXPECT_LE(fleet.Quantile(0.999), SimToSeconds(options.freshness_slo));
}

// A one-way partition silently starves one observer: traffic from every
// ensemble member to it is blackholed while the reverse direction (and the
// rest of the fleet) stays healthy, so neither the commit stream nor
// anti-entropy reaches it until the final heal. Convergence still passes —
// the post-heal anti-entropy replay repairs the data, txn by txn — but every
// proxy hanging off that observer sees those commits tens of seconds late,
// which is exactly what the freshness SLO exists to catch.
FaultPlan SeededStarvedObserverPlan(const FaultPlanShape& shape) {
  FaultPlan plan;
  auto add = [&plan](SimTime at, FaultOp op) -> FaultEvent& {
    FaultEvent event;
    event.at = at;
    event.op = op;
    plan.events.push_back(event);
    return plan.events.back();
  };
  // Noise the shrinker must discard.
  add(6 * kSimSecond, FaultOp::kCrash).group_a = {shape.members.at(2)};
  add(12 * kSimSecond, FaultOp::kRecover).group_a = {shape.members.at(2)};
  FaultEvent& storm = add(9 * kSimSecond, FaultOp::kGlobalFault);
  storm.fault.drop_prob = 0.05;
  add(15 * kSimSecond, FaultOp::kClearFaults);
  // The bug: members -> observer 1, one way, never healed before FinalHeal.
  FaultEvent& starve = add(5 * kSimSecond, FaultOp::kPartitionOneWay);
  starve.group_a = shape.members;
  starve.group_b = {shape.observers.at(1)};
  plan.SortByTime();
  return plan;
}

TEST(DstFreshnessTest, DelayedOneWayPartitionViolatesSloAndShrinksMinimal) {
  ScenarioOptions options = SmokeScenario(23);
  options.freshness_slo = 30 * kSimSecond;
  FaultPlan plan;
  {
    Harness harness(options);
    plan = SeededStarvedObserverPlan(harness.shape());
  }
  ASSERT_EQ(plan.size(), 5u);

  // 1. The SLO invariant fires, and the violation carries the span tree of
  // the slowest delivery's commit.
  Harness harness(options);
  RunResult failing = harness.Run(plan);
  {
    Histogram fleet =
        harness.obs().metrics.MergedHistogram("proxy_propagation_seconds");
    fprintf(stderr, "DBG fleet count=%llu p50=%.2f p99=%.2f p999=%.2f max=%.2f\n",
            (unsigned long long)fleet.count(), fleet.Quantile(0.5),
            fleet.Quantile(0.99), fleet.Quantile(0.999), fleet.max());
    for (size_t i = 0; i < harness.shape().proxies.size(); ++i) {
      const Histogram* h = harness.obs().metrics.FindHistogram(
          "proxy_propagation_seconds",
          {{"server", harness.shape().proxies[i].ToString()}});
      fprintf(stderr, "DBG proxy %zu %s count=%llu max=%.2f\n", i,
              harness.shape().proxies[i].ToString().c_str(),
              h ? (unsigned long long)h->count() : 0, h ? h->max() : -1);
    }
  }
  ASSERT_TRUE(failing.violated) << "starved proxy did not violate the SLO";
  EXPECT_EQ(failing.violation.invariant, "freshness-slo")
      << failing.violation.message;
  EXPECT_FALSE(failing.violation.span_tree.empty());
  EXPECT_NE(failing.trace.find("span-tree-begin"), std::string::npos);
  EXPECT_NE(failing.violation.span_tree.find("proxy.apply"),
            std::string::npos);

  // 2. The shrinker strips the noise: the one-way partition alone reproduces.
  ShrinkResult shrunk =
      ShrinkFaultPlan(options, plan, failing.violation.invariant);
  EXPECT_LE(shrunk.final_events, 2u) << shrunk.plan.ToString();
  ASSERT_TRUE(shrunk.run.violated);
  EXPECT_EQ(shrunk.run.violation.invariant, "freshness-slo");
  bool has_oneway = false;
  for (const FaultEvent& event : shrunk.plan.events) {
    has_oneway |= event.op == FaultOp::kPartitionOneWay;
  }
  EXPECT_TRUE(has_oneway) << shrunk.plan.ToString();

  // 3. The shrunk trace replays to the identical violation (slo_us rides in
  // the serialized scenario line).
  auto replayed = Harness::Replay(shrunk.run.trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ASSERT_TRUE(replayed->violated);
  EXPECT_EQ(replayed->violation.invariant, shrunk.run.violation.invariant);
  EXPECT_EQ(replayed->violation.at, shrunk.run.violation.at);
  EXPECT_EQ(replayed->violation.message, shrunk.run.violation.message);
}

// ---- Commit span trees stay complete under faults ----------------------------

TEST(DstTraceTest, CommitSpanTreeIsCompleteUnderFaults) {
  ScenarioOptions options = SmokeScenario(17);
  Harness harness(options);
  FaultPlanShape shape = harness.shape();

  // Faults confined to the delivery side (observers and proxies) — the
  // tailer -> leader write path stays healthy, so every publish span closes.
  FaultPlan plan;
  auto add = [&plan](SimTime at, FaultOp op) -> FaultEvent& {
    FaultEvent event;
    event.at = at;
    event.op = op;
    plan.events.push_back(event);
    return plan.events.back();
  };
  add(7 * kSimSecond, FaultOp::kCrash).group_a = {shape.observers.at(0)};
  add(15 * kSimSecond, FaultOp::kRecover).group_a = {shape.observers.at(0)};
  FaultEvent& cut = add(10 * kSimSecond, FaultOp::kPartition);
  cut.group_a = shape.observers;
  cut.group_b = {shape.proxies.at(1), shape.proxies.at(5)};
  add(18 * kSimSecond, FaultOp::kHealPartitions);
  add(12 * kSimSecond, FaultOp::kCrashProxy).index = 4;
  add(16 * kSimSecond, FaultOp::kRestartProxy).index = 4;
  plan.SortByTime();

  RunResult result = harness.Run(plan);
  ASSERT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message;
  ASSERT_GT(result.committed_zxid, 0);

  // Walk back from the last committed zxid to the most recent workload
  // commit (the tail can be a vessel publish, whose trace has no proxy
  // fan-out), then demand a complete span tree that reached every proxy.
  const Tracer& tracer = harness.obs().tracer;
  const TraceData* trace = nullptr;
  for (int64_t zxid = result.committed_zxid; zxid > 0 && trace == nullptr;
       --zxid) {
    TraceContext ctx = tracer.ZxidContext(zxid);
    if (!ctx.valid()) {
      continue;
    }
    const TraceData* candidate = tracer.Find(ctx.trace_id);
    if (candidate != nullptr &&
        candidate->name.rfind("commit step=", 0) == 0) {
      trace = candidate;
    }
  }
  ASSERT_NE(trace, nullptr) << "no workload commit trace found";

  Status complete = tracer.ValidateComplete(trace->id);
  EXPECT_TRUE(complete.ok()) << complete << "\n" << tracer.DumpTree(trace->id);

  // Despite the observer crash, the partition, and the proxy restart, the
  // commit's tree reached every proxy in the fleet (late joiners re-enter
  // through catch-up deliveries, which rebind into the same trace).
  std::set<std::string> applied_hosts;
  for (const Span& span : trace->spans) {
    if (span.name == "proxy.apply") {
      applied_hosts.insert(span.host);
    }
  }
  for (const ServerId& proxy : shape.proxies) {
    EXPECT_TRUE(applied_hosts.count(proxy.ToString()) > 0)
        << "no proxy.apply span for " << proxy.ToString() << "\n"
        << tracer.DumpTree(trace->id);
  }
}

// ---- PackageVessel under churn ----------------------------------------------

TEST(DstVesselChurnTest, SwarmSurvivesPeerChurnAndPartitions) {
  ScenarioOptions options = SmokeScenario(31);
  options.vessel_bytes = 16 << 20;  // 8 chunks: enough for real peer traffic.
  Harness harness(options);
  FaultPlanShape shape = harness.shape();

  FaultPlan plan;
  auto add = [&plan](SimTime at, FaultOp op) -> FaultEvent& {
    FaultEvent event;
    event.at = at;
    event.op = op;
    plan.events.push_back(event);
    return plan.events.back();
  };
  // Two vessel clients leave and rejoin mid-download.
  add(6 * kSimSecond, FaultOp::kCrash).group_a = {shape.proxies.at(1)};
  add(14 * kSimSecond, FaultOp::kRecover).group_a = {shape.proxies.at(1)};
  add(8 * kSimSecond, FaultOp::kCrash).group_a = {shape.proxies.at(5)};
  add(16 * kSimSecond, FaultOp::kRecover).group_a = {shape.proxies.at(5)};
  // The storage service is cut off from every client for a while: only
  // peer-to-peer exchange can make progress.
  FaultEvent& cut = add(10 * kSimSecond, FaultOp::kPartition);
  cut.group_a = {shape.other_hosts.at(1)};  // Storage host.
  cut.group_b = shape.proxies;
  add(20 * kSimSecond, FaultOp::kHealPartitions);
  plan.SortByTime();

  RunResult result = harness.Run(plan);
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message;
  EXPECT_EQ(result.vessel_completed, 8u);
  ASSERT_NE(harness.swarm(), nullptr);
  EXPECT_GT(harness.swarm()->stats().bytes_from_peers, 0)
      << "churn scenario never exercised peer-to-peer transfer";
  // Metadata/bulk consistency held throughout (vessel-metadata-hash), and
  // every rejoined client finished (vessel-complete would have fired).
  for (const ServerId& client : shape.proxies) {
    EXPECT_TRUE(harness.swarm()->ClientDone(client)) << client.ToString();
  }
}

// ---- MobileConfig: emergency push racing a pull under reordering -------------

TEST(DstMobileRaceTest, StalePullResponseCannotRollBackEmergencyPush) {
  TranslationLayer translation;
  translation.Bind("EMERGENCY", "killswitch", FieldBinding::Constant(Json(false)));
  MobileConfigServer server(&translation, nullptr, nullptr);
  MobileSchema schema;
  schema.config_name = "EMERGENCY";
  schema.fields = {{"killswitch", MobileFieldType::kBool}};
  server.RegisterSchema(schema);

  UserContext device;
  device.user_id = 7;
  MobileConfigClient client(schema, device);
  ASSERT_TRUE(client.Sync(server).ok());
  EXPECT_FALSE(client.getBool("killswitch", true));

  // A scheduled pull is answered... but the response gets stuck in flight.
  MobilePullRequest stale_request;
  stale_request.config_name = schema.config_name;
  stale_request.schema_hash = schema.Hash();
  stale_request.values_hash = Sha256Digest{};  // Forces a full-value response.
  stale_request.device = device;
  auto in_flight = server.HandlePull(stale_request);
  ASSERT_TRUE(in_flight.ok());
  EXPECT_FALSE(in_flight->unchanged);

  // Emergency: flip the killswitch and push. The client pulls immediately.
  translation.Bind("EMERGENCY", "killswitch", FieldBinding::Constant(Json(true)));
  server.NoteConfigChanged();
  auto pushed = client.OnEmergencyPush(server);
  ASSERT_TRUE(pushed.ok());
  EXPECT_TRUE(*pushed);
  EXPECT_TRUE(client.getBool("killswitch", false));

  // The delayed pre-push response finally arrives — reordered after the push
  // response. It must be rejected, not roll the killswitch back.
  EXPECT_FALSE(client.ApplyPullResponse(*in_flight));
  EXPECT_EQ(client.stale_rejected(), 1u);
  EXPECT_TRUE(client.getBool("killswitch", false));
  EXPECT_EQ(client.applied_generation(), server.generation());

  // Swapped arrival order on a second device converges to the same state.
  MobileConfigClient other(schema, device);
  EXPECT_TRUE(other.ApplyPullResponse(*in_flight));   // Old arrives first...
  EXPECT_FALSE(other.getBool("killswitch", true));
  ASSERT_TRUE(other.Sync(server).ok());               // ...then the fresh pull.
  EXPECT_TRUE(other.getBool("killswitch", false));
}

// ---- Gatekeeper update vs. anti-entropy replay race --------------------------

// Partition every observer away from the Zeus members squarely inside the
// config-update window: Gatekeeper updates keep committing while the
// observers (and the proxies behind them) are cut off, and the heal triggers
// an anti-entropy replay of the queued updates that races the still-ongoing
// live stream. A second cut/heal cycle repeats the race later in the
// schedule. The gatekeeper-consistency invariant (concurrent snapshot
// runtime vs. the naive declared-order evaluator over the exact delivered
// JSON) is checked after every simulator event.
FaultPlan GatekeeperRacePlan(const FaultPlanShape& shape) {
  FaultPlan plan;
  auto cut_observers = [&shape](SimTime at) {
    FaultEvent cut;
    cut.at = at;
    cut.op = FaultOp::kPartition;
    cut.group_a = shape.members;
    cut.group_b = shape.observers;
    return cut;
  };
  auto heal = [](SimTime at) {
    FaultEvent event;
    event.at = at;
    event.op = FaultOp::kHealPartitions;
    return event;
  };
  plan.events.push_back(cut_observers(8 * kSimSecond));
  plan.events.push_back(heal(18 * kSimSecond));
  plan.events.push_back(cut_observers(24 * kSimSecond));
  plan.events.push_back(heal(32 * kSimSecond));
  plan.SortByTime();
  return plan;
}

TEST(DstGatekeeperRaceTest, UpdateRacesAntiEntropyReplayAndStaysConsistent) {
  ScenarioOptions options = SmokeScenario(23);
  Harness harness(options);
  FaultPlan plan = GatekeeperRacePlan(harness.shape());
  RunResult result = harness.Run(plan);
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.message
      << "\n--- replayable trace ---\n"
      << result.trace;
  // The race actually happened: updates committed and the partitions blocked
  // real traffic before healing.
  EXPECT_GT(result.committed_zxid, 0);
  EXPECT_GT(result.net.dropped, 0u) << "partitions blocked no messages";

  // The trace replays bit-for-bit, differential invariant included.
  auto replayed = Harness::Replay(result.trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_FALSE(replayed->violated);
  EXPECT_EQ(replayed->trace, result.trace);
  EXPECT_EQ(replayed->sim_events, result.sim_events);
}

}  // namespace
}  // namespace configerator
