#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/zeus/zeus.h"

namespace configerator {
namespace {

class ZeusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(&sim_, Topology(2, 2, 20), /*seed=*/3);
    // 5 members spread across regions; 2 observers per cluster.
    members_ = {ServerId{0, 0, 0}, ServerId{1, 0, 0}, ServerId{0, 0, 1},
                ServerId{1, 0, 1}, ServerId{0, 1, 0}};
    observers_ = {ServerId{0, 0, 18}, ServerId{0, 0, 19}, ServerId{0, 1, 18},
                  ServerId{0, 1, 19}, ServerId{1, 0, 18}, ServerId{1, 0, 19},
                  ServerId{1, 1, 18}, ServerId{1, 1, 19}};
    zeus_ = std::make_unique<ZeusEnsemble>(net_.get(), members_, observers_);
    client_ = ServerId{0, 0, 5};
  }

  // Writes and runs the sim until the callback fires.
  Result<int64_t> WriteSync(const std::string& key, const std::string& value) {
    Result<int64_t> result(UnavailableError("callback never fired"));
    bool fired = false;
    zeus_->Write(client_, key, value, [&](Result<int64_t> r) {
      result = std::move(r);
      fired = true;
    });
    sim_.RunUntil(sim_.now() + 30 * kSimSecond);
    EXPECT_TRUE(fired);
    return result;
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<ServerId> members_;
  std::vector<ServerId> observers_;
  std::unique_ptr<ZeusEnsemble> zeus_;
  ServerId client_;
};

TEST_F(ZeusTest, WriteCommitsWithQuorum) {
  auto zxid = WriteSync("config/a", "v1");
  ASSERT_TRUE(zxid.ok()) << zxid.status();
  EXPECT_EQ(*zxid, 1);
  EXPECT_EQ(zeus_->last_committed_zxid(), 1);
}

TEST_F(ZeusTest, ZxidsMonotonic) {
  EXPECT_EQ(*WriteSync("k", "v1"), 1);
  EXPECT_EQ(*WriteSync("k", "v2"), 2);
  EXPECT_EQ(*WriteSync("j", "v3"), 3);
}

TEST_F(ZeusTest, ObserversConverge) {
  ASSERT_TRUE(WriteSync("config/a", "v1").ok());
  ASSERT_TRUE(WriteSync("config/b", "v2").ok());
  sim_.RunUntil(sim_.now() + 10 * kSimSecond);
  for (const ServerId& obs : observers_) {
    EXPECT_EQ(zeus_->ObserverLastZxid(obs), 2) << obs.ToString();
  }
}

TEST_F(ZeusTest, SubscribeDeliversCurrentValueAndUpdates) {
  ASSERT_TRUE(WriteSync("config/x", "v1").ok());
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);

  ServerId proxy{0, 1, 7};
  ServerId observer = observers_[2];  // Same cluster as the proxy.
  std::vector<std::string> seen;
  zeus_->Subscribe(proxy, observer, "config/x",
                   [&](const ZeusTxn& txn) { seen.push_back(txn.value); });
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  ASSERT_EQ(seen.size(), 1u);  // Initial value.
  EXPECT_EQ(seen[0], "v1");

  ASSERT_TRUE(WriteSync("config/x", "v2").ok());
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], "v2");
}

TEST_F(ZeusTest, SubscribeToUnwrittenKeyDeliversOnFirstWrite) {
  ServerId proxy{0, 0, 7};
  std::vector<std::string> seen;
  zeus_->Subscribe(proxy, observers_[0], "config/later",
                   [&](const ZeusTxn& txn) { seen.push_back(txn.value); });
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);
  EXPECT_TRUE(seen.empty());
  ASSERT_TRUE(WriteSync("config/later", "arrived").ok());
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "arrived");
}

TEST_F(ZeusTest, FetchReadsObserverState) {
  ASSERT_TRUE(WriteSync("config/f", "fetched").ok());
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  Result<ZeusValue> result(UnavailableError("pending"));
  zeus_->Fetch(ServerId{0, 0, 9}, observers_[0], "config/f",
               [&](Result<ZeusValue> r) { result = std::move(r); });
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->value, "fetched");
  EXPECT_EQ(result->zxid, 1);
}

TEST_F(ZeusTest, FetchMissingKeyIsNotFound) {
  bool fired = false;
  zeus_->Fetch(ServerId{0, 0, 9}, observers_[0], "ghost",
               [&](Result<ZeusValue> r) {
                 fired = true;
                 EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
               });
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);
  EXPECT_TRUE(fired);
}

TEST_F(ZeusTest, LeaderFailoverElectsLongestLog) {
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  ServerId old_leader = zeus_->leader();
  zeus_->Crash(old_leader);
  auto zxid = WriteSync("k", "v2");  // Queued behind the election.
  ASSERT_TRUE(zxid.ok()) << zxid.status();
  EXPECT_EQ(*zxid, 2);
  EXPECT_NE(zeus_->leader(), old_leader);
}

TEST_F(ZeusTest, NoQuorumFailsWrites) {
  // Crash 3 of 5 members.
  zeus_->Crash(members_[1]);
  zeus_->Crash(members_[2]);
  zeus_->Crash(members_[3]);
  EXPECT_FALSE(zeus_->has_quorum());
  auto result = WriteSync("k", "v");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(ZeusTest, QuorumRestoredAfterRecovery) {
  zeus_->Crash(members_[1]);
  zeus_->Crash(members_[2]);
  zeus_->Crash(members_[3]);
  ASSERT_FALSE(WriteSync("k", "v").ok());
  zeus_->Recover(members_[1]);
  zeus_->Recover(members_[2]);
  EXPECT_TRUE(WriteSync("k", "v2").ok());
}

TEST_F(ZeusTest, CrashedObserverCatchesUpViaAntiEntropy) {
  const ServerId& lagging = observers_[0];
  zeus_->Crash(lagging);
  ASSERT_TRUE(WriteSync("config/a", "v1").ok());
  ASSERT_TRUE(WriteSync("config/b", "v2").ok());
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  EXPECT_LT(zeus_->ObserverLastZxid(lagging), 2);
  zeus_->Recover(lagging);
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);  // Anti-entropy interval is 1s.
  EXPECT_EQ(zeus_->ObserverLastZxid(lagging), 2);
}

TEST_F(ZeusTest, RecoveredObserverPushesMissedUpdatesToWatchers) {
  ServerId proxy{0, 0, 9};
  const ServerId& observer = observers_[0];
  std::vector<std::string> seen;
  zeus_->Subscribe(proxy, observer, "cfg",
                   [&](const ZeusTxn& txn) { seen.push_back(txn.value); });
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);

  zeus_->Crash(observer);
  ASSERT_TRUE(WriteSync("cfg", "missed").ok());
  sim_.RunUntil(sim_.now() + 3 * kSimSecond);
  EXPECT_TRUE(seen.empty());

  zeus_->Recover(observer);
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "missed");
}

TEST_F(ZeusTest, PerKeyOrderingAtObservers) {
  // Many rapid writes to the same key: a subscriber must see versions in
  // increasing zxid order (the commit log guarantees in-order delivery).
  ServerId proxy{0, 1, 3};
  std::vector<int64_t> zxids;
  zeus_->Subscribe(proxy, observers_[2], "hot",
                   [&](const ZeusTxn& txn) { zxids.push_back(txn.zxid); });
  sim_.RunUntil(sim_.now() + kSimSecond);
  for (int i = 0; i < 20; ++i) {
    zeus_->Write(client_, "hot", "v" + std::to_string(i), [](Result<int64_t>) {});
  }
  sim_.RunUntil(sim_.now() + 30 * kSimSecond);
  ASSERT_GE(zxids.size(), 1u);
  for (size_t i = 1; i < zxids.size(); ++i) {
    EXPECT_GT(zxids[i], zxids[i - 1]);
  }
}

TEST_F(ZeusTest, PickObserverPrefersSameCluster) {
  Rng rng(5);
  ServerId proxy{1, 1, 4};
  for (int i = 0; i < 20; ++i) {
    ServerId picked = zeus_->PickObserverFor(proxy, rng);
    EXPECT_EQ(picked.region, 1);
    EXPECT_EQ(picked.cluster, 1);
  }
  // With the same-cluster observers down, fall back to any live observer.
  zeus_->Crash(ServerId{1, 1, 18});
  zeus_->Crash(ServerId{1, 1, 19});
  ServerId fallback = zeus_->PickObserverFor(proxy, rng);
  EXPECT_FALSE(net_->failures().IsDown(fallback));
}

TEST_F(ZeusTest, CommittedZxidsAreContiguousAcrossFailedWrites) {
  ASSERT_TRUE(WriteSync("a", "1").ok());
  // Lose quorum; these writes fail and must not burn zxids.
  zeus_->Crash(members_[1]);
  zeus_->Crash(members_[2]);
  zeus_->Crash(members_[3]);
  ASSERT_FALSE(WriteSync("b", "x").ok());
  ASSERT_FALSE(WriteSync("c", "x").ok());
  zeus_->Recover(members_[1]);
  zeus_->Recover(members_[2]);
  auto zxid = WriteSync("d", "2");
  ASSERT_TRUE(zxid.ok());
  EXPECT_EQ(*zxid, 2);  // Contiguous: 1 then 2, no holes.
}

TEST_F(ZeusTest, LeaderFailoverPreservesCommittedState) {
  ASSERT_TRUE(WriteSync("durable", "before-failover").ok());
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);

  ServerId old_leader = zeus_->leader();
  zeus_->Crash(old_leader);
  ASSERT_TRUE(WriteSync("fresh", "after-failover").ok());
  sim_.RunUntil(sim_.now() + 10 * kSimSecond);

  // Both the pre-failover and post-failover values are served by observers
  // (the new leader continues the committed log, anti-entropy included).
  for (const char* key : {"durable", "fresh"}) {
    bool fetched = false;
    zeus_->Fetch(ServerId{0, 1, 7}, observers_[2], key, [&](Result<ZeusValue> r) {
      ASSERT_TRUE(r.ok()) << key << ": " << r.status();
      fetched = true;
    });
    sim_.RunUntil(sim_.now() + 2 * kSimSecond);
    EXPECT_TRUE(fetched) << key;
  }
}

TEST_F(ZeusTest, ObserverGapHealsWithoutLosingIntermediateKeys) {
  // The data-loss scenario the contiguous-apply rule prevents: observer
  // misses txn N (down), receives txn N+1 after recovering; N must still
  // arrive (via anti-entropy), not be masked by N+1's higher zxid.
  const ServerId& obs = observers_[0];
  ASSERT_TRUE(WriteSync("k1", "v1").ok());
  sim_.RunUntil(sim_.now() + 3 * kSimSecond);

  zeus_->Crash(obs);
  ASSERT_TRUE(WriteSync("k2", "missed-by-observer").ok());
  zeus_->Recover(obs);
  ASSERT_TRUE(WriteSync("k3", "v3").ok());
  sim_.RunUntil(sim_.now() + 10 * kSimSecond);

  for (const char* key : {"k1", "k2", "k3"}) {
    bool fetched = false;
    zeus_->Fetch(ServerId{0, 0, 9}, obs, key, [&](Result<ZeusValue> r) {
      ASSERT_TRUE(r.ok()) << key << ": " << r.status();
      fetched = true;
    });
    sim_.RunUntil(sim_.now() + 2 * kSimSecond);
    EXPECT_TRUE(fetched) << key;
  }
  EXPECT_EQ(zeus_->ObserverLastZxid(obs), 3);
}

TEST_F(ZeusTest, SingleMemberEnsembleCommits) {
  Network net(&sim_, Topology(1, 1, 4));
  ZeusEnsemble solo(&net, {ServerId{0, 0, 0}}, {ServerId{0, 0, 3}});
  bool committed = false;
  solo.Write(ServerId{0, 0, 1}, "k", "v", [&](Result<int64_t> r) {
    ASSERT_TRUE(r.ok());
    committed = true;
  });
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  EXPECT_TRUE(committed);
}

}  // namespace
}  // namespace configerator
