#include <gtest/gtest.h>

#include "src/core/ui.h"

namespace configerator {
namespace {

class UiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Land the schema the UI will edit against.
    auto change = stack_.ProposeChange(
        "alice", "schemas",
        {{"schemas/gk.thrift",
          "struct Sampling {\n"
          "  1: required string audience;\n"
          "  2: optional double fraction = 0.01;\n"
          "  3: optional i32 max_users = 1000;\n"
          "  4: optional Limits limits;\n"
          "}\n"
          "struct Limits { 1: optional i32 qps = 100; }\n"},
         {"seed.cconf", "export_if_last({\"seed\": 1})\n"}});
    ASSERT_TRUE(change.ok()) << change.status();
    ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());
    ASSERT_TRUE(stack_.LandNow(*change).ok());
  }

  ConfigManagementStack stack_;
  ConfigUi ui_{&stack_};
};

TEST_F(UiTest, CslLiteralRendering) {
  EXPECT_EQ(ConfigUi::CslLiteral(Json(nullptr)), "None");
  EXPECT_EQ(ConfigUi::CslLiteral(Json(true)), "True");
  EXPECT_EQ(ConfigUi::CslLiteral(Json(false)), "False");
  EXPECT_EQ(ConfigUi::CslLiteral(Json(int64_t{42})), "42");
  EXPECT_EQ(ConfigUi::CslLiteral(Json(2.0)), "2.0");  // Lexes as float.
  EXPECT_EQ(ConfigUi::CslLiteral(Json("x\"y")), "\"x\\\"y\"");
  EXPECT_EQ(ConfigUi::CslLiteral(*Json::Parse("[]")), "[]");
  EXPECT_EQ(ConfigUi::CslLiteral(*Json::Parse("{}")), "{}");
}

TEST_F(UiTest, GeneratedSourceCompiles) {
  auto value = Json::Parse(
      R"({"audience": "employees", "fraction": 0.1,
          "max_users": 50, "limits": {"qps": 10}})");
  ASSERT_TRUE(value.ok());
  std::string source =
      ConfigUi::GenerateSource("schemas/gk.thrift", "Sampling", *value);
  // The generated program must compile against the schema.
  InMemorySources sources;
  auto schema = stack_.repo().ReadFile("schemas/gk.thrift");
  ASSERT_TRUE(schema.ok());
  sources.Put("schemas/gk.thrift", *schema);
  sources.Put("ui.cconf", source);
  ConfigCompiler compiler(sources.AsReader());
  auto output = compiler.Compile("ui.cconf");
  ASSERT_TRUE(output.ok()) << output.status() << "\nsource:\n" << source;
  EXPECT_EQ(*output->configs[0].content.Get("fraction"), Json(0.1));
  EXPECT_EQ(output->configs[0].content.Get("limits")->Get("qps")->as_int(), 10);
}

TEST_F(UiTest, CreateConfigThroughUi) {
  auto change = ui_.EditConfig(
      "carol", "gk/sampling.cconf", "schemas/gk.thrift", "Sampling",
      {{"audience", Json("employees")}, {"fraction", Json(0.05)}});
  ASSERT_TRUE(change.ok()) << change.status();
  // The message is the operation log the reviewers see.
  EXPECT_NE(change->diff.message.find("Created Sampling config"),
            std::string::npos);
  EXPECT_NE(change->diff.message.find("Updated fraction from 0.01 to 0.05"),
            std::string::npos);
  EXPECT_EQ(change->diff.author, "ui:carol");

  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*change).ok());
  auto json = stack_.repo().ReadFile("gk/sampling.json");
  ASSERT_TRUE(json.ok());
  auto parsed = Json::Parse(*json);
  EXPECT_EQ(parsed->Get("audience")->as_string(), "employees");
  EXPECT_DOUBLE_EQ(parsed->Get("fraction")->as_double(), 0.05);
  EXPECT_EQ(parsed->Get("max_users")->as_int(), 1000);  // Schema default.
}

TEST_F(UiTest, EditExistingConfigThroughUi) {
  auto create = ui_.EditConfig("carol", "gk/sampling.cconf", "schemas/gk.thrift",
                               "Sampling", {{"audience", Json("us")}});
  ASSERT_TRUE(create.ok());
  ASSERT_TRUE(stack_.Approve(&*create, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*create).ok());

  // The "1% -> 10%" footnote example.
  auto edit = ui_.EditConfig("carol", "gk/sampling.cconf", "schemas/gk.thrift",
                             "Sampling", {{"fraction", Json(0.10)}});
  ASSERT_TRUE(edit.ok()) << edit.status();
  EXPECT_NE(edit->diff.message.find("Updated fraction from 0.01 to 0.1"),
            std::string::npos);
  ASSERT_TRUE(stack_.Approve(&*edit, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*edit).ok());
  auto parsed = Json::Parse(*stack_.repo().ReadFile("gk/sampling.json"));
  EXPECT_DOUBLE_EQ(parsed->Get("fraction")->as_double(), 0.10);
  // The earlier edit is preserved.
  EXPECT_EQ(parsed->Get("audience")->as_string(), "us");
}

TEST_F(UiTest, NestedFieldEdit) {
  auto change = ui_.EditConfig(
      "carol", "gk/s2.cconf", "schemas/gk.thrift", "Sampling",
      {{"audience", Json("x")}, {"limits.qps", Json(int64_t{5})}});
  ASSERT_TRUE(change.ok()) << change.status();
  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*change).ok());
  auto parsed = Json::Parse(*stack_.repo().ReadFile("gk/s2.json"));
  EXPECT_EQ(parsed->Get("limits")->Get("qps")->as_int(), 5);
}

TEST_F(UiTest, TypeErrorsBlockedBeforeReview) {
  auto change = ui_.EditConfig("carol", "gk/bad.cconf", "schemas/gk.thrift",
                               "Sampling",
                               {{"audience", Json("x")},
                                {"fraction", Json("not a number")}});
  ASSERT_FALSE(change.ok());
  EXPECT_EQ(change.status().code(), StatusCode::kInvalidConfig);
}

TEST_F(UiTest, UnknownFieldBlocked) {
  auto change = ui_.EditConfig("carol", "gk/bad2.cconf", "schemas/gk.thrift",
                               "Sampling",
                               {{"audence", Json("typo")}});  // Missing 'i'.
  ASSERT_FALSE(change.ok());
}

TEST_F(UiTest, UnknownStructBlocked) {
  auto change = ui_.EditConfig("carol", "gk/bad3.cconf", "schemas/gk.thrift",
                               "NoSuchStruct", {});
  ASSERT_FALSE(change.ok());
  EXPECT_EQ(change.status().code(), StatusCode::kNotFound);
}

TEST_F(UiTest, NonCconfTargetRejected) {
  auto change = ui_.EditConfig("carol", "gk/sampling.json", "schemas/gk.thrift",
                               "Sampling", {});
  ASSERT_FALSE(change.ok());
}

}  // namespace
}  // namespace configerator
