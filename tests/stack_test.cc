// End-to-end tests of the whole pipeline: author → compile → review → CI →
// canary → land → tail → Zeus → proxy → application.

#include <gtest/gtest.h>

#include "src/core/mutator.h"
#include "src/core/stack.h"
#include "src/gatekeeper/runtime.h"

namespace configerator {
namespace {

class StackTest : public ::testing::Test {
 protected:
  std::vector<FileWrite> JobSources() {
    return {
        {"schemas/job.thrift",
         "struct Job { 1: required string name; 2: optional i32 mem = 64; }\n"},
        {"feed/cache.cconf",
         "import_thrift(\"schemas/job.thrift\")\n"
         "export_if_last(Job(name=\"cache\", mem=1024))\n"},
    };
  }

  ConfigManagementStack stack_;
};

TEST_F(StackTest, ProposeCompilesGeneratedConfigs) {
  auto change = stack_.ProposeChange("alice", "add cache job", JobSources());
  ASSERT_TRUE(change.ok()) << change.status();
  EXPECT_TRUE(change->ci_report.passed) << change->ci_report.Summary();
  // The diff carries sources + the generated JSON.
  bool has_json = false;
  for (const FileWrite& write : change->diff.writes) {
    if (write.path == "feed/cache.json") {
      has_json = true;
      EXPECT_NE(write.content->find("1024"), std::string::npos);
    }
  }
  EXPECT_TRUE(has_json);
}

TEST_F(StackTest, CompileErrorBlocksProposal) {
  auto change = stack_.ProposeChange(
      "alice", "broken",
      {{"bad.cconf", "export_if_last(undefined_variable)\n"}});
  EXPECT_FALSE(change.ok());
}

TEST_F(StackTest, UnreviewedChangeCannotLand) {
  auto change = stack_.ProposeChange("alice", "add", JobSources());
  ASSERT_TRUE(change.ok());
  auto landed = stack_.LandNow(*change);
  ASSERT_FALSE(landed.ok());
  EXPECT_EQ(landed.status().code(), StatusCode::kRejected);
}

TEST_F(StackTest, SelfApprovalRejected) {
  auto change = stack_.ProposeChange("alice", "add", JobSources());
  ASSERT_TRUE(change.ok());
  EXPECT_FALSE(stack_.Approve(&*change, "alice").ok());
}

TEST_F(StackTest, ApprovedChangeLandsAndDistributes) {
  auto change = stack_.ProposeChange("alice", "add", JobSources());
  ASSERT_TRUE(change.ok());
  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());

  // Subscribe an application on a far-away server before landing.
  ServerId app_server{1, 1, 5};
  std::string received;
  stack_.SubscribeServer(app_server, "feed/cache.json",
                         [&](const std::string&, const std::string& value,
                             int64_t) { received = value; });
  stack_.RunFor(2 * kSimSecond);

  auto landed = stack_.LandNow(*change);
  ASSERT_TRUE(landed.ok()) << landed.status();
  EXPECT_EQ(*stack_.repo().ReadFile("feed/cache.cconf"),
            JobSources()[1].content.value());

  // Drive the simulated world: tailer polls, Zeus distributes, proxy learns.
  stack_.RunFor(30 * kSimSecond);
  EXPECT_NE(received.find("\"mem\": 1024"), std::string::npos);

  // The application reads it through the client library.
  AppConfigClient app = stack_.ClientOn(app_server);
  ASSERT_NE(app.Get("feed/cache.json"), nullptr);
}

TEST_F(StackTest, CanaryGatesLanding) {
  auto change = stack_.ProposeChange("alice", "risky", JobSources());
  ASSERT_TRUE(change.ok());
  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());

  DefectServiceModel bad_model(ConfigDefect::kImmediateError,
                               DefectServiceModel::Params{}, 1);
  Result<ObjectId> outcome(InternalError("pending"));
  stack_.TestAndLand(*change, CanarySpec::Default(), &bad_model,
                     [&](Result<ObjectId> r) { outcome = std::move(r); });
  stack_.RunFor(20 * kSimMinute);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kRejected);
  EXPECT_FALSE(stack_.repo().FileExists("feed/cache.json"));
}

TEST_F(StackTest, CanaryPassLandsAutomatically) {
  auto change = stack_.ProposeChange("alice", "safe", JobSources());
  ASSERT_TRUE(change.ok());
  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());

  DefectServiceModel good_model(ConfigDefect::kNone,
                                DefectServiceModel::Params{}, 2);
  Result<ObjectId> outcome(InternalError("pending"));
  stack_.TestAndLand(*change, CanarySpec::Default(), &good_model,
                     [&](Result<ObjectId> r) { outcome = std::move(r); });
  stack_.RunFor(20 * kSimMinute);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(stack_.repo().FileExists("feed/cache.json"));
}

TEST_F(StackTest, DependencyChangeRegeneratesDependents) {
  // Land the shared-constant layout (§3.1 example).
  auto first = stack_.ProposeChange(
      "alice", "initial",
      {{"net/app_port.cinc", "APP_PORT = 8089\n"},
       {"net/app.cconf",
        "import_python(\"net/app_port.cinc\", \"*\")\n"
        "export_if_last({\"port\": APP_PORT})\n"},
       {"net/firewall.cconf",
        "import_python(\"net/app_port.cinc\", \"*\")\n"
        "export_if_last({\"allow\": APP_PORT})\n"}});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(stack_.Approve(&*first, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*first).ok());

  // Now change ONLY the shared constant. Both dependents must regenerate in
  // the same diff (one commit keeps them consistent).
  auto second = stack_.ProposeChange(
      "alice", "bump port", {{"net/app_port.cinc", "APP_PORT = 9090\n"}});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->affected_entries.size(), 2u);
  ASSERT_TRUE(stack_.Approve(&*second, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*second).ok());
  EXPECT_NE(stack_.repo().ReadFile("net/app.json")->find("9090"),
            std::string::npos);
  EXPECT_NE(stack_.repo().ReadFile("net/firewall.json")->find("9090"),
            std::string::npos);
}

TEST_F(StackTest, BrokenDependentBlocksSharedChange) {
  auto first = stack_.ProposeChange(
      "alice", "initial",
      {{"lib/base.cinc", "LIMIT = 10\n"},
       {"svc/a.cconf",
        "import_python(\"lib/base.cinc\", \"*\")\n"
        "assert LIMIT < 100, \"limit sanity\"\n"
        "export_if_last({\"limit\": LIMIT})\n"}});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(stack_.Approve(&*first, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*first).ok());

  // A change to the shared file that violates the dependent's assertion is
  // caught at propose time (compile of the affected entry fails).
  auto second = stack_.ProposeChange("carol", "break dependents",
                                     {{"lib/base.cinc", "LIMIT = 5000\n"}});
  EXPECT_FALSE(second.ok());
}

TEST_F(StackTest, DeletedEntryRemovesGeneratedConfig) {
  auto first = stack_.ProposeChange(
      "alice", "add", {{"tmp/x.cconf", "export_if_last({\"v\": 1})\n"}});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(stack_.Approve(&*first, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*first).ok());
  ASSERT_TRUE(stack_.repo().FileExists("tmp/x.json"));

  auto removal = stack_.ProposeChange("alice", "remove",
                                      {{"tmp/x.cconf", std::nullopt}});
  ASSERT_TRUE(removal.ok()) << removal.status();
  ASSERT_TRUE(stack_.Approve(&*removal, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*removal).ok());
  EXPECT_FALSE(stack_.repo().FileExists("tmp/x.cconf"));
  EXPECT_FALSE(stack_.repo().FileExists("tmp/x.json"));
}

// ---- Mutator (automation) ------------------------------------------------------

TEST_F(StackTest, MutatorWritesRawConfigs) {
  Mutator mutator(&stack_, "traffic-shifter");
  auto commit =
      mutator.WriteRawConfig("traffic/weights.json",
                             "{\n  \"region0\": 0.5\n}\n", "rebalance");
  ASSERT_TRUE(commit.ok()) << commit.status();
  EXPECT_TRUE(stack_.repo().FileExists("traffic/weights.json"));

  auto updated = mutator.SetJsonField("traffic/weights.json", "region0",
                                      Json(0.25), "drain region0");
  ASSERT_TRUE(updated.ok());
  auto content = stack_.repo().ReadFile("traffic/weights.json");
  EXPECT_NE(content->find("0.25"), std::string::npos);
}

TEST_F(StackTest, MutatorGatekeeperRollout) {
  Mutator mutator(&stack_, "rollout-tool");
  auto project = Json::Parse(R"({
    "project": "NewFeed",
    "rules": [{"restraints": [{"type": "employee"}], "pass_probability": 1.0},
              {"restraints": [{"type": "always"}], "pass_probability": 0.01}]
  })");
  ASSERT_TRUE(project.ok());
  ASSERT_TRUE(mutator.SetGatekeeperProject(*project, "create").ok());

  // Bump rule 1 from 1% to 10%.
  ASSERT_TRUE(mutator.SetRolloutFraction("NewFeed", 1, 0.10, "expand").ok());
  auto content = stack_.repo().ReadFile(Mutator::GatekeeperPath("NewFeed"));
  ASSERT_TRUE(content.ok());
  auto parsed = Json::Parse(*content);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Get("rules")->as_array()[1]
                       .Get("pass_probability")->as_double(),
                   0.10);
  // Out-of-range fraction rejected.
  EXPECT_FALSE(mutator.SetRolloutFraction("NewFeed", 1, 1.5, "oops").ok());
  EXPECT_FALSE(mutator.SetRolloutFraction("NewFeed", 9, 0.5, "oops").ok());
}

TEST_F(StackTest, MutatorDeleteConfig) {
  Mutator mutator(&stack_, "cleaner");
  ASSERT_TRUE(mutator.WriteRawConfig("tmp/old.json", "{}", "add").ok());
  ASSERT_TRUE(mutator.DeleteConfig("tmp/old.json", "cleanup").ok());
  EXPECT_FALSE(stack_.repo().FileExists("tmp/old.json"));
}

TEST_F(StackTest, GatekeeperConfigReachesRuntimeViaDistribution) {
  // The full loop: Mutator writes a gatekeeper config; the distribution
  // pipeline carries it to a frontend server whose GatekeeperRuntime applies
  // it live.
  GatekeeperRuntime runtime;
  ServerId frontend{0, 1, 9};
  stack_.SubscribeServer(frontend, "gatekeeper/LiveProj.json",
                         [&](const std::string& path, const std::string& value,
                             int64_t) {
                           ASSERT_TRUE(runtime.ApplyConfigUpdate(path, value).ok());
                         });
  stack_.RunFor(2 * kSimSecond);

  Mutator mutator(&stack_, "rollout-tool");
  auto project = Json::Parse(R"({
    "project": "LiveProj",
    "rules": [{"restraints": [{"type": "always"}], "pass_probability": 1.0}]
  })");
  ASSERT_TRUE(mutator.SetGatekeeperProject(*project, "launch").ok());
  stack_.RunFor(30 * kSimSecond);

  ASSERT_TRUE(runtime.HasProject("LiveProj"));
  UserContext user;
  user.user_id = 7;
  EXPECT_TRUE(runtime.Check("LiveProj", user));
}

TEST_F(StackTest, HighRiskChangesAnnotatedOnReview) {
  // Land a config, then let it go dormant (timestamps are simulated time).
  auto first = stack_.ProposeChange(
      "alice", "add", {{"old/cfg.cconf", "export_if_last({\"v\": 1})\n"}});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(stack_.Approve(&*first, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*first).ok());

  // 200+ dormant days pass on the simulated clock.
  stack_.RunFor(210 * kSimDay);

  auto second = stack_.ProposeChange(
      "stranger", "poke dormant config",
      {{"old/cfg.cconf", "export_if_last({\"v\": 2})\n"}});
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_GE(second->risk.reasons.size(), 2u);  // Dormant + first-time author.
  bool dormant_flagged = false;
  for (const std::string& reason : second->risk.reasons) {
    if (reason.find("dormant") != std::string::npos) {
      dormant_flagged = true;
    }
  }
  EXPECT_TRUE(dormant_flagged);

  // The reviewer sees the risk note attached to the review.
  auto record = stack_.reviews().Get(second->review_id);
  ASSERT_TRUE(record.ok());
  bool note_posted = false;
  for (const std::string& result : (*record)->test_results) {
    if (result.find("dormant") != std::string::npos) {
      note_posted = true;
    }
  }
  EXPECT_TRUE(note_posted);
}

TEST_F(StackTest, CanarySpecLookup) {
  // No stored spec: the two-phase default applies.
  auto spec = stack_.CanarySpecFor("feed/cache.cconf");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->phases.size(), 2u);

  // A config-specific spec stored next to the config wins (§3.3: "a config
  // is associated with a canary spec").
  Mutator mutator(&stack_, "canary-admin");
  CanarySpec custom;
  custom.phases.push_back(
      CanaryPhase{"quick", 10, 30 * kSimSecond, 2.0, 2.0, 0.01});
  ASSERT_TRUE(mutator
                  .WriteRawConfig("feed/cache.cconf.canary.json",
                                  custom.ToJson().DumpPretty(), "custom spec")
                  .ok());
  spec = stack_.CanarySpecFor("feed/cache.cconf");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->phases.size(), 1u);
  EXPECT_EQ(spec->phases[0].name, "quick");
  EXPECT_EQ(spec->phases[0].num_servers, 10u);

  // A malformed stored spec is an error, never a silent fallback.
  ASSERT_TRUE(mutator
                  .WriteRawConfig("feed/cache.cconf.canary.json",
                                  "{\"phases\": []}", "break it")
                  .ok());
  EXPECT_FALSE(stack_.CanarySpecFor("feed/cache.cconf").ok());
}

TEST_F(StackTest, ReviewOptional) {
  ConfigManagementStack::Options options;
  options.require_review = false;
  ConfigManagementStack no_review(options);
  auto change = no_review.ProposeChange(
      "alice", "add", {{"x.cconf", "export_if_last({\"v\": 1})\n"}});
  ASSERT_TRUE(change.ok());
  EXPECT_TRUE(no_review.LandNow(*change).ok());
}

TEST_F(StackTest, CiFailureBlocksEvenWithApproval) {
  // Seed a dependency, then break it in a way only CI catches (the broken
  // entry is not recompiled by the proposal because it is not affected —
  // here we simulate by proposing a raw write that breaks a dependent).
  auto first = stack_.ProposeChange(
      "alice", "initial",
      {{"lib/c.cinc", "C = 1\n"},
       {"svc/u.cconf",
        "import_python(\"lib/c.cinc\", \"*\")\n"
        "export_if_last({\"c\": C})\n"}});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(stack_.Approve(&*first, "bob").ok());
  ASSERT_TRUE(stack_.LandNow(*first).ok());

  // Proposing a broken shared file fails at compile time already.
  auto bad = stack_.ProposeChange("carol", "typo",
                                  {{"lib/c.cinc", "C = oops_undefined\n"}});
  EXPECT_FALSE(bad.ok());
}

// ---- Symbol-level blast radius ----------------------------------------------

class BlastRadiusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto first = stack_.ProposeChange(
        "alice", "initial",
        {{"schemas/job.thrift",
          "struct Job {\n"
          "  1: required string name;\n"
          "  2: optional i32 memory_mb = 256;\n"
          "}\n"},
         {"flags.cinc", "ENABLE_BONUS = False\nBONUS = 512\n"},
         {"feed/worker.cconf",
          "import_thrift(\"schemas/job.thrift\")\n"
          "import_python(\"flags.cinc\", \"*\")\n"
          "j = Job(name=\"worker\")\n"
          "if ENABLE_BONUS:\n"
          "    j.memory_mb = BONUS\n"
          "export_if_last(j)\n"}});
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(first->ci_report.passed) << first->ci_report.Summary();
    ASSERT_TRUE(stack_.Approve(&*first, "bob").ok());
    ASSERT_TRUE(stack_.LandNow(*first).ok());
  }

  ConfigManagementStack stack_;
};

TEST_F(BlastRadiusTest, LatentTypeBreakInUntouchedDependentBlocksLanding) {
  // The edit never touches worker.cconf, and worker.cconf still *compiles*
  // (ENABLE_BONUS is False, so evaluation never takes the bad branch; canary
  // would pass for the same reason). Only the abstract re-analysis of the
  // reverse closure sees the string flow into the i32 field.
  auto change = stack_.ProposeChange(
      "carol", "rename bonus",
      {{"flags.cinc", "ENABLE_BONUS = False\nBONUS = \"none\"\n"}});
  ASSERT_TRUE(change.ok()) << change.status();  // Compiles fine.
  EXPECT_FALSE(change->ci_report.passed);
  bool t010 = false;
  for (const LintDiagnostic& d : change->ci_report.lint_findings) {
    t010 = t010 || (d.rule_id == "T010" && d.file == "feed/worker.cconf");
  }
  EXPECT_TRUE(t010) << change->ci_report.Summary();

  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());
  auto landed = stack_.LandNow(*change);
  ASSERT_FALSE(landed.ok());
  EXPECT_EQ(landed.status().code(), StatusCode::kRejected);
}

TEST_F(BlastRadiusTest, ChangedSymbolsComputedPerEdit) {
  auto change = stack_.ProposeChange(
      "carol", "bump bonus",
      {{"flags.cinc", "ENABLE_BONUS = False\nBONUS = 1024\n"}});
  ASSERT_TRUE(change.ok()) << change.status();
  EXPECT_TRUE(change->ci_report.passed) << change->ci_report.Summary();
  ASSERT_EQ(change->changed_symbols.count("flags.cinc"), 1u);
  ASSERT_TRUE(change->changed_symbols["flags.cinc"].has_value());
  EXPECT_EQ(change->changed_symbols["flags.cinc"]->count("BONUS"), 1u);
  EXPECT_EQ(change->changed_symbols["flags.cinc"]->count("ENABLE_BONUS"), 0u);
}

TEST_F(BlastRadiusTest, CanaryRunAnnotatedWithScope) {
  auto change = stack_.ProposeChange(
      "carol", "bump bonus",
      {{"flags.cinc", "ENABLE_BONUS = False\nBONUS = 1024\n"}});
  ASSERT_TRUE(change.ok());
  ASSERT_TRUE(stack_.Approve(&*change, "bob").ok());

  DefectServiceModel good_model(ConfigDefect::kNone,
                                DefectServiceModel::Params{}, 7);
  Result<ObjectId> outcome(InternalError("pending"));
  stack_.TestAndLand(*change, CanarySpec::Default(), &good_model,
                     [&](Result<ObjectId> r) { outcome = std::move(r); });
  stack_.RunFor(20 * kSimMinute);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  ASSERT_TRUE(stack_.canary().last_scope().has_value());
  const CanaryScope& scope = *stack_.canary().last_scope();
  ASSERT_EQ(scope.affected_entries.size(), 1u);
  EXPECT_EQ(scope.affected_entries[0], "feed/worker.cconf");
  ASSERT_EQ(scope.changed_symbols.count("flags.cinc"), 1u);
  EXPECT_EQ(scope.changed_symbols.at("flags.cinc").count("BONUS"), 1u);
  EXPECT_NE(scope.Describe().find("1 affected entry"), std::string::npos);
}

}  // namespace
}  // namespace configerator
