// Zero-spurious battery for the cross-config invariant checker: across ~500
// seeded random commits over a small config tree — raw JSON configs plus a
// branchy compiled entry — every violation the checker reports must be a
// concrete, independently-recomputed violation of the declared predicate,
// and every state the ground truth says is consistent must produce zero
// violation diagnostics. The checker's abstract side is free to lose
// precision (that is what the in-jeopardy status is for); the *diagnostics*
// are the claim that must be exact, because Sandcastle blocks landings on
// their strength.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/invariant.h"
#include "src/lang/compiler.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

constexpr int kCommits = 500;

// The mutable knobs behind one config tree. Every ground-truth predicate is
// computable from these fields alone, so the test can judge the checker
// without trusting any of its machinery.
struct Tree {
  int shed_lo = 20;   // Branch arm taken when big == false.
  int shed_hi = 45;   // Branch arm taken when big == true.
  bool big = false;
  int kill = 50;
  int w[3] = {20, 30, 10};
  std::string tier = "hot";
  std::string fallback = "kill.json";
  int gate_mode = 0;       // 0 = employee, 1 = everyone, 2 = country US.
  bool gate_friend = false;  // Adds a min_friend_count restraint to roll.

  std::string Roll() const {
    std::vector<std::string> restraints;
    if (gate_mode == 0) {
      restraints.push_back(R"({"type": "employee"})");
    } else if (gate_mode == 2) {
      restraints.push_back(
          R"({"type": "country", "params": {"countries": ["US"]}})");
    }
    if (gate_friend) {
      restraints.push_back(
          R"({"type": "min_friend_count", "params": {"count": 10}})");
    }
    std::string joined;
    for (size_t i = 0; i < restraints.size(); ++i) {
      if (i > 0) {
        joined += ", ";
      }
      joined += restraints[i];
    }
    return StrFormat(
        "{\"project\": \"roll\", \"rules\": [{\"restraints\": [%s], "
        "\"pass_probability\": 1.0}]}",
        joined.c_str());
  }

  InMemorySources Sources() const {
    InMemorySources sources;
    sources.Put("flags.cinc", StrFormat("BIG = %s\n", big ? "True" : "False"));
    sources.Put("shed.cconf",
                StrFormat("import_python(\"flags.cinc\", \"*\")\n"
                          "if BIG:\n"
                          "    export_if_last({\"threshold\": %d})\n"
                          "else:\n"
                          "    export_if_last({\"threshold\": %d})\n",
                          shed_hi, shed_lo));
    sources.Put("kill.json", StrFormat("{\"threshold\": %d}", kill));
    for (int i = 0; i < 3; ++i) {
      sources.Put(StrFormat("w%d.json", i),
                  StrFormat("{\"weight\": %d}", w[i]));
    }
    sources.Put("route.json",
                StrFormat("{\"tier\": \"%s\", \"fallback\": \"%s\"}",
                          tier.c_str(), fallback.c_str()));
    sources.Put("gk/roll.json", Roll());
    sources.Put("gk/elig.json",
                R"({"project": "elig", "rules": [
                    {"restraints": [{"type": "employee"}],
                     "pass_probability": 1.0}]})");
    return sources;
  }

  // --- Ground truth, from the knobs alone -----------------------------------

  int ConcreteShed() const { return big ? shed_hi : shed_lo; }
  bool OrderingViolated() const { return ConcreteShed() > kill; }
  int WeightSum() const { return w[0] + w[1] + w[2]; }
  bool SumViolated() const { return WeightSum() > 100; }
  bool MembershipViolated() const {
    return tier != "hot" && tier != "warm" && tier != "cold";
  }
  bool ReferenceViolated() const {
    return fallback != "kill.json" && fallback != "w0.json";
  }
  // elig admits only employees; roll reaches a non-employee unless it also
  // carries the employee restraint.
  bool ImpliesViolated() const { return gate_mode != 0; }
  bool ContextViolated() const { return gate_friend; }
};

const char* kSpec = R"({"invariants": [
  {"name": "shed-below-kill", "kind": "ordering", "severity": "error",
   "lhs": {"config": "shed.json", "field": "threshold"},
   "relation": "<=",
   "rhs": {"config": "kill.json", "field": "threshold"}},
  {"name": "shard-budget", "kind": "sum", "relation": "<=", "budget": 100,
   "terms": [{"config": "w0.json", "field": "weight"},
             {"config": "w1.json", "field": "weight"},
             {"config": "w2.json", "field": "weight"}]},
  {"name": "route-tier", "kind": "membership",
   "subject": {"config": "route.json", "field": "tier"},
   "allowed": ["hot", "warm", "cold"]},
  {"name": "route-fallback", "kind": "reference",
   "subject": {"config": "route.json", "field": "fallback"}},
  {"name": "roll-in-elig", "kind": "gate_implies",
   "if_project": "gk/roll.json", "then_project": "gk/elig.json"},
  {"name": "roll-fields", "kind": "gate_context", "project": "gk/roll.json",
   "allowed_fields": ["is_employee", "country", "user_id"]}
]})";

// Re-derives, per invariant name, whether the ground truth says it is
// concretely violated right now.
bool GroundTruthViolated(const Tree& tree, const std::string& name) {
  if (name == "shed-below-kill") return tree.OrderingViolated();
  if (name == "shard-budget") return tree.SumViolated();
  if (name == "route-tier") return tree.MembershipViolated();
  if (name == "route-fallback") return tree.ReferenceViolated();
  if (name == "roll-in-elig") return tree.ImpliesViolated();
  if (name == "roll-fields") return tree.ContextViolated();
  ADD_FAILURE() << "unknown invariant " << name;
  return false;
}

TEST(InvariantPropertyTest, WitnessesAreRealAndCleanStatesStayClean) {
  InvariantRegistry registry;
  registry.AddSpecFile("invariants/prop.json", kSpec);
  ASSERT_TRUE(registry.diagnostics.empty());
  ASSERT_EQ(registry.invariants.size(), 6u);

  Rng rng(20260809);
  Tree tree;
  static const char* kTiers[] = {"hot", "warm", "cold", "lava", "tepid"};
  static const char* kFallbacks[] = {"kill.json", "w0.json", "missing0.json",
                                     "missing1.json"};

  int clean_commits = 0;
  int violating_commits = 0;
  int jeopardy_seen = 0;

  for (int commit = 0; commit < kCommits; ++commit) {
    // One or two random mutations per commit.
    int mutations = 1 + static_cast<int>(rng.NextBounded(2));
    for (int m = 0; m < mutations; ++m) {
      // Valid-leaning mutations: the walk must spend real time on both
      // sides of every predicate, so violating choices are drawn with
      // minority probability rather than uniformly.
      switch (rng.NextBounded(10)) {
        case 0:
          tree.shed_lo = static_cast<int>(rng.NextBounded(51));
          break;
        case 1:
          tree.shed_hi = 40 + static_cast<int>(rng.NextBounded(61));
          break;
        case 2:
          tree.big = rng.NextBool(0.3);
          break;
        case 3:
          tree.kill = 40 + static_cast<int>(rng.NextBounded(31));
          break;
        case 4:
          tree.w[rng.NextBounded(3)] =
              5 + static_cast<int>(rng.NextBounded(36));
          break;
        case 5:
          tree.tier = rng.NextBool(0.75) ? kTiers[rng.NextBounded(3)]
                                         : kTiers[3 + rng.NextBounded(2)];
          break;
        case 6:
          tree.fallback = rng.NextBool(0.75)
                              ? kFallbacks[rng.NextBounded(2)]
                              : kFallbacks[2 + rng.NextBounded(2)];
          break;
        case 7:
          tree.gate_mode = rng.NextBool(0.7)
                               ? 0
                               : 1 + static_cast<int>(rng.NextBounded(2));
          break;
        case 8:
          tree.gate_friend = rng.NextBool(0.25);
          break;
        case 9:  // Repair commit: back to the known-clean baseline.
          tree = Tree{};
          break;
      }
    }

    InMemorySources sources = tree.Sources();
    InvariantChecker checker(sources.AsReader());
    InvariantReport report = checker.Check(registry);
    ASSERT_EQ(report.outcomes.size(), 6u) << "commit " << commit;

    bool any_ground_violation = false;
    for (const InvariantOutcome& outcome : report.outcomes) {
      bool truth = GroundTruthViolated(tree, outcome.name);
      any_ground_violation |= truth;

      // Soundness of the report: the checker flags violated exactly when the
      // predicate concretely fails — never on a lost abstract proof alone.
      EXPECT_EQ(outcome.status == InvariantStatus::kViolated, truth)
          << "commit " << commit << " invariant " << outcome.name << " ("
          << outcome.detail << ")";
      if (outcome.status == InvariantStatus::kUnresolved) {
        ADD_FAILURE() << "commit " << commit << ": " << outcome.name
                      << " unresolved over a fully-present tree";
      }
      if (outcome.status == InvariantStatus::kInJeopardy) {
        ++jeopardy_seen;
      }
      if (outcome.status != InvariantStatus::kViolated) {
        continue;
      }

      // Every witness is marked concretely validated and carries a predicate.
      EXPECT_TRUE(outcome.witness.validated) << outcome.name;
      EXPECT_FALSE(outcome.witness.predicate.empty()) << outcome.name;

      // Independent recomputation, from the knobs, per kind.
      if (outcome.name == "shed-below-kill") {
        ASSERT_EQ(outcome.witness.valuation.size(), 2u);
        EXPECT_EQ(outcome.witness.valuation[0].second,
                  StrFormat("%d", tree.ConcreteShed()));
        EXPECT_EQ(outcome.witness.valuation[1].second,
                  StrFormat("%d", tree.kill));
      } else if (outcome.name == "shard-budget") {
        // The shrunk subset must itself exceed the budget: sum the surviving
        // valuation entries and re-check without the checker's help.
        double kept = 0;
        for (const auto& [ref, value] : outcome.witness.valuation) {
          kept += std::stod(value);
        }
        EXPECT_GT(kept, 100.0) << outcome.witness.Describe();
        EXPECT_GE(outcome.witness.valuation.size(), 1u);
        EXPECT_LE(outcome.witness.valuation.size(), 3u);
      } else if (outcome.name == "route-tier") {
        EXPECT_NE(outcome.witness.Describe().find(tree.tier),
                  std::string::npos);
      } else if (outcome.name == "route-fallback") {
        EXPECT_NE(outcome.witness.predicate.find(tree.fallback),
                  std::string::npos);
        EXPECT_FALSE(sources.AsReader()(tree.fallback).ok());
      } else if (outcome.name == "roll-in-elig") {
        // The checker validated the context against both compiled projects;
        // the ground truth confirms roll really is wider than elig.
        EXPECT_NE(tree.gate_mode, 0);
        EXPECT_FALSE(outcome.witness.context.empty());
      } else if (outcome.name == "roll-fields") {
        EXPECT_TRUE(tree.gate_friend);
        EXPECT_NE(outcome.witness.valuation[0].second.find("friend_count"),
                  std::string::npos);
      }
    }

    // Zero spurious reports: a consistent tree yields zero violation
    // diagnostics (the registry itself is clean, so any diagnostic would be
    // a violation or a bogus unresolved).
    if (!any_ground_violation) {
      ++clean_commits;
      EXPECT_TRUE(report.diagnostics.empty())
          << "commit " << commit << ": "
          << report.diagnostics.front().Format();
    } else {
      ++violating_commits;
      EXPECT_FALSE(report.diagnostics.empty()) << "commit " << commit;
    }
  }

  // The walk must actually exercise both sides of every claim.
  EXPECT_GE(clean_commits, 50);
  EXPECT_GE(violating_commits, 50);
  EXPECT_GE(jeopardy_seen, 1) << "branch arms never diverged across the run";
}

}  // namespace
}  // namespace configerator
