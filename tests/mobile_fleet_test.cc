// Cohort-model conformance battery for the million-device MobileConfig
// fleet. The scale story rests on one claim: a sampled subset of devices
// running the exact pull/push protocol has the same update-delay
// distribution as the closed-form cohort model, so the closed form can stand
// in for the other 99.8% of a 1M-device fleet. These tests hold the sampled
// fleet to the model within a declared sup-norm tolerance across seeds, and
// prove the check has teeth by feeding it a deliberately-skewed model.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/gatekeeper/runtime.h"
#include "src/mobile/cohort.h"
#include "src/mobile/mobileconfig.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace configerator {
namespace {

// ~2000 sampled devices keeps the empirical CDF's sampling noise around
// 1/sqrt(2000) ≈ 0.022; the tolerance below leaves headroom above that
// without masking a genuinely wrong model (the skew test doubles one poll
// interval and must blow well past it).
constexpr size_t kSampleSize = 2000;
constexpr double kTolerance = 0.04;

// The 1M-device fleet: a fast-polling wifi cohort, the bulk on hourly polls
// with imperfect connectivity, and a long-tail cohort that is mostly offline.
std::vector<CohortSpec> MillionDeviceFleet() {
  return {
      {"wifi-15m", 250'000, 15 * kSimMinute, 0.95, 0.9},
      {"hourly", 600'000, kSimHour, 0.8, 0.6},
      {"long-tail", 150'000, 4 * kSimHour, 0.5, 0.2},
  };
}

MobileSchema FleetSchema() {
  MobileSchema schema;
  schema.config_name = "FLEET_CONFIG";
  schema.fields = {{"FEATURE_X", MobileFieldType::kBool},
                   {"POLL_BUDGET", MobileFieldType::kInt}};
  return schema;
}

class MobileFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    translation_.Bind("FLEET_CONFIG", "FEATURE_X",
                      FieldBinding::Constant(Json(true)));
    translation_.Bind("FLEET_CONFIG", "POLL_BUDGET",
                      FieldBinding::Constant(Json(int64_t{7})));
    server_ = std::make_unique<MobileConfigServer>(&translation_, &gatekeeper_,
                                                   nullptr);
    server_->RegisterSchema(FleetSchema());
  }

  TranslationLayer translation_;
  GatekeeperRuntime gatekeeper_;
  std::unique_ptr<MobileConfigServer> server_;
};

// --- Closed-form model unit checks -----------------------------------------

TEST_F(MobileFleetTest, ClosedFormBasics) {
  CohortModel model(MillionDeviceFleet());
  EXPECT_EQ(model.total_devices(), 1'000'000u);

  // F is a CDF: 0 at 0, monotone, -> 1.
  EXPECT_DOUBLE_EQ(model.UpdatedFraction(0), 0.0);
  double prev = 0;
  for (SimTime t = 0; t <= 12 * kSimHour; t += 10 * kSimMinute) {
    double f = model.UpdatedFraction(t);
    EXPECT_GE(f, prev - 1e-12) << "CDF not monotone at t=" << t;
    EXPECT_LE(f, 1.0 + 1e-12);
    prev = f;
  }
  EXPECT_GT(model.UpdatedFraction(48 * kSimHour), 0.999);

  // Push floor: at t=0 exactly the push-reached fraction holds the change.
  double reach = (250'000 * 0.9 + 600'000 * 0.6 + 150'000 * 0.2) / 1'000'000;
  EXPECT_NEAR(model.UpdatedFractionWithPush(0), reach, 1e-9);
  EXPECT_GE(model.UpdatedFractionWithPush(kSimHour),
            model.UpdatedFraction(kSimHour));

  // Quantile inverts the CDF.
  SimTime p50 = model.Quantile(0.5);
  EXPECT_GE(model.UpdatedFraction(p50), 0.5);
  EXPECT_LT(model.UpdatedFraction(p50 - kSimSecond), 0.5);
  EXPECT_GT(model.Quantile(0.99), p50);
}

TEST_F(MobileFleetTest, ClosedFormMeanAndPollRate) {
  // Single always-online cohort: D ~ Uniform[0, P), mean P/2, and the fleet
  // polls at devices/P.
  CohortModel uniform({{"u", 1000, kSimHour, 1.0, 0.0}});
  EXPECT_EQ(uniform.MeanUpdateDelay(), kSimHour / 2);
  EXPECT_NEAR(uniform.PollsPerSecond(), 1000.0 / 3600.0, 1e-9);

  // q = 0.5 doubles the expected wait beyond the phase: mean = P/2 + P·(1-q)/q.
  CohortModel flaky({{"f", 1000, kSimHour, 0.5, 0.0}});
  EXPECT_EQ(flaky.MeanUpdateDelay(), kSimHour / 2 + kSimHour);
  // Offline polls never reach the server.
  EXPECT_NEAR(flaky.PollsPerSecond(), 500.0 / 3600.0, 1e-9);
}

// --- Sampled-fleet conformance ---------------------------------------------

// The exact-protocol sample must match the closed form within tolerance, for
// every seed, pull-only and with an emergency push.
TEST_F(MobileFleetTest, SampledFleetConformsAcrossSeeds) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    for (bool with_push : {false, true}) {
      Simulator sim;
      CohortModel model(MillionDeviceFleet());
      SampledMobileFleet fleet(&sim, server_.get(), FleetSchema(), model,
                               kSampleSize, seed);
      fleet.Start();
      // Let poll phases wrap a few of the longest interval before the change
      // lands, so the measurement starts from the steady state.
      sim.RunUntil(8 * kSimHour);
      server_->NoteConfigChanged();
      fleet.BeginMeasurement();
      if (with_push) {
        fleet.PushAll();
      }
      SimTime horizon = 24 * kSimHour;
      sim.RunUntil(sim.now() + horizon);

      ConformanceReport report =
          CheckConformance(model, fleet, horizon, /*grid_points=*/200,
                           with_push);
      EXPECT_LE(report.max_abs_error, kTolerance)
          << "seed " << seed << (with_push ? " with push" : " pull only")
          << ": worst divergence " << report.max_abs_error << " at t="
          << report.worst_t;
    }
  }
}

// Teeth check: a model whose bulk cohort claims polls twice as frequent as
// the fleet actually runs must fail conformance decisively.
TEST_F(MobileFleetTest, SkewedModelFailsConformance) {
  Simulator sim;
  CohortModel truth(MillionDeviceFleet());
  SampledMobileFleet fleet(&sim, server_.get(), FleetSchema(), truth,
                           kSampleSize, /*seed=*/101);
  fleet.Start();
  sim.RunUntil(8 * kSimHour);
  server_->NoteConfigChanged();
  fleet.BeginMeasurement();
  SimTime horizon = 24 * kSimHour;
  sim.RunUntil(sim.now() + horizon);

  std::vector<CohortSpec> skewed_specs = MillionDeviceFleet();
  skewed_specs[1].poll_interval = 30 * kSimMinute;  // Claims 2x poll rate.
  CohortModel skewed(skewed_specs);
  ConformanceReport report = CheckConformance(
      skewed, fleet, horizon, /*grid_points=*/200, /*with_push=*/false);
  EXPECT_GT(report.max_abs_error, 2 * kTolerance)
      << "skewed model should diverge far beyond the declared tolerance";
}

// The sample runs the real protocol: every sync moves real bytes through
// MobileConfigClient::Sync, and a changed config is actually applied.
TEST_F(MobileFleetTest, SampleRunsExactProtocol) {
  Simulator sim;
  CohortModel model(MillionDeviceFleet());
  SampledMobileFleet fleet(&sim, server_.get(), FleetSchema(), model,
                           /*sample_size=*/200, /*seed=*/7);
  EXPECT_EQ(fleet.size(), 200u);
  fleet.Start();
  sim.RunUntil(8 * kSimHour);
  EXPECT_GT(fleet.sync_count(), 0u);
  EXPECT_GT(fleet.total_sync_bytes(), 0u);

  server_->NoteConfigChanged();
  fleet.BeginMeasurement();
  EXPECT_EQ(fleet.updated_count(), 0u);
  sim.RunUntil(sim.now() + 24 * kSimHour);
  EXPECT_GT(fleet.updated_count(), 150u);  // Long tail may still be offline.

  std::vector<SimTime> delays = fleet.UpdateDelays();
  EXPECT_EQ(delays.size(), fleet.updated_count());
  EXPECT_TRUE(std::all_of(delays.begin(), delays.end(),
                          [](SimTime d) { return d >= 0; }));
}

// Proportional allocation: cohort shares in the sample track the fleet.
TEST_F(MobileFleetTest, SampleAllocatesProportionally) {
  Simulator sim;
  CohortModel model(MillionDeviceFleet());
  SampledMobileFleet fleet(&sim, server_.get(), FleetSchema(), model,
                           /*sample_size=*/1000, /*seed=*/1);
  ASSERT_EQ(fleet.size(), 1000u);
  std::vector<size_t> counts(3, 0);
  for (size_t i = 0; i < fleet.size(); ++i) {
    ++counts[fleet.cohort_of(i)];
  }
  EXPECT_EQ(counts[0], 250u);
  EXPECT_EQ(counts[1], 600u);
  EXPECT_EQ(counts[2], 150u);
}

}  // namespace
}  // namespace configerator
