#include <gtest/gtest.h>

#include "src/vcs/diff.h"
#include "src/workload/arrivals.h"
#include "src/workload/content.h"
#include "src/workload/population.h"

namespace configerator {
namespace {

PopulationModel::Params SmallParams() {
  PopulationModel::Params params;
  params.final_configs = 4000;
  params.total_days = 1200;
  params.seed = 99;
  return params;
}

TEST(PopulationTest, GeneratesRequestedPopulation) {
  PopulationModel model(SmallParams());
  model.Run();
  EXPECT_GE(model.configs().size(), 4000u);
  EXPECT_LE(model.configs().size(), 4400u);  // Organic + migration bump.
}

TEST(PopulationTest, CompiledFractionApproximatelyRight) {
  PopulationModel model(SmallParams());
  model.Run();
  size_t compiled = 0;
  for (const SyntheticConfig& config : model.configs()) {
    if (config.kind == ConfigKind::kCompiled) {
      ++compiled;
    }
  }
  double fraction =
      static_cast<double>(compiled) / static_cast<double>(model.configs().size());
  // 75% organic-compiled plus the migration bump pushes it slightly higher.
  EXPECT_GT(fraction, 0.70);
  EXPECT_LT(fraction, 0.85);
}

TEST(PopulationTest, GrowthIsMonotoneAndSuperlinear) {
  PopulationModel model(SmallParams());
  model.Run();
  auto counts = model.CountsByDay();
  size_t quarter = counts[counts.size() / 4].compiled + counts[counts.size() / 4].raw;
  size_t half = counts[counts.size() / 2].compiled + counts[counts.size() / 2].raw;
  size_t full = counts.back().compiled + counts.back().raw;
  EXPECT_LE(quarter, half);
  EXPECT_LE(half, full);
  // Superlinear: the second half adds more than the first half.
  EXPECT_GT(full - half, half);
}

TEST(PopulationTest, MigrationBumpVisible) {
  PopulationModel::Params params = SmallParams();
  PopulationModel model(params);
  model.Run();
  auto counts = model.CountsByDay();
  size_t day = static_cast<size_t>(params.gatekeeper_migration_day);
  size_t before = counts[day - 1].compiled;
  size_t after = counts[day].compiled;
  // The bump adds ~8% of the final population in one day.
  EXPECT_GT(after - before,
            static_cast<size_t>(0.05 * static_cast<double>(params.final_configs)));
}

TEST(PopulationTest, SizePercentilesMatchPaperShape) {
  PopulationModel::Params params = SmallParams();
  params.final_configs = 20'000;
  PopulationModel model(params);
  model.Run();
  SampleSet compiled = model.Sizes(ConfigKind::kCompiled);
  SampleSet raw = model.Sizes(ConfigKind::kRaw);
  // Paper: P50 raw 400B / compiled 1KB (generous tolerances: log-normal).
  EXPECT_GT(compiled.Percentile(50), 500);
  EXPECT_LT(compiled.Percentile(50), 2200);
  EXPECT_GT(raw.Percentile(50), 180);
  EXPECT_LT(raw.Percentile(50), 900);
  // Compiled configs are bigger than raw at the median.
  EXPECT_GT(compiled.Percentile(50), raw.Percentile(50));
  // Heavy tail exists but is clamped at 16 MB.
  EXPECT_GT(compiled.Max(), 100'000);
  EXPECT_LE(compiled.Max(), 16.0 * 1024 * 1024);
}

TEST(PopulationTest, UpdateSkewMatchesPaperShape) {
  PopulationModel::Params params = SmallParams();
  params.final_configs = 10'000;
  PopulationModel model(params);
  model.Run();
  // Paper Table 1: top 1% of raw configs take 92.8% of updates; compiled
  // 64.5%. Require the ordering and rough magnitude.
  double raw_share = model.TopUpdateShare(ConfigKind::kRaw, 0.01);
  double compiled_share = model.TopUpdateShare(ConfigKind::kCompiled, 0.01);
  EXPECT_GT(raw_share, compiled_share);
  EXPECT_GT(raw_share, 0.55);
  EXPECT_GT(compiled_share, 0.25);

  // Substantial never-updated mass, raw more than compiled (56.9% vs 25%).
  SampleSet raw_counts = model.UpdateCounts(ConfigKind::kRaw);
  SampleSet compiled_counts = model.UpdateCounts(ConfigKind::kCompiled);
  double raw_once = FractionInRange(raw_counts, 1, 1);
  double compiled_once = FractionInRange(compiled_counts, 1, 1);
  EXPECT_GT(raw_once, compiled_once);
  EXPECT_GT(raw_once, 0.3);
}

TEST(PopulationTest, FreshnessMixesFreshAndDormant) {
  PopulationModel model(SmallParams());
  model.Run();
  SampleSet freshness = model.Freshness();
  // Paper Fig 9: 28% touched within 90 days; 35% untouched for 300+ days.
  double fresh_90 = freshness.CdfAt(90);
  double dormant_300 = 1.0 - freshness.CdfAt(300);
  EXPECT_GT(fresh_90, 0.10);
  EXPECT_GT(dormant_300, 0.10);
}

TEST(PopulationTest, OldConfigsStillGetUpdated) {
  PopulationModel model(SmallParams());
  model.Run();
  SampleSet ages = model.AgeAtUpdate();
  // Paper Fig 10: 29% of updates hit configs younger than 60 days AND 29%
  // hit configs older than 300 days. Require both masses to exist.
  EXPECT_GT(ages.CdfAt(60), 0.10);
  EXPECT_GT(1.0 - ages.CdfAt(300), 0.05);
}

TEST(PopulationTest, CoauthorsMostlyFew) {
  PopulationModel model(SmallParams());
  model.Run();
  SampleSet compiled = model.CoauthorCounts(ConfigKind::kCompiled);
  // Paper Table 3: ~80% of compiled configs have <= 2 authors.
  EXPECT_GT(FractionInRange(compiled, 1, 2), 0.5);
  // Raw configs even more single-authored (automation = one author).
  SampleSet raw = model.CoauthorCounts(ConfigKind::kRaw);
  EXPECT_GT(FractionInRange(raw, 1, 2), FractionInRange(compiled, 1, 2) - 0.05);
}

TEST(PopulationTest, DeterministicForSeed) {
  PopulationModel a(SmallParams());
  PopulationModel b(SmallParams());
  a.Run();
  b.Run();
  ASSERT_EQ(a.configs().size(), b.configs().size());
  for (size_t i = 0; i < a.configs().size(); i += 97) {
    EXPECT_EQ(a.configs()[i].size_bytes, b.configs()[i].size_bytes);
    EXPECT_EQ(a.configs()[i].update_count(), b.configs()[i].update_count());
  }
}

// ---- Content generation ------------------------------------------------------

TEST(ContentTest, GeneratesParsableJsonNearTargetSize) {
  Rng rng(5);
  for (int64_t target : {500, 5'000, 50'000}) {
    std::string content = GenerateConfigContent(target, rng);
    EXPECT_TRUE(Json::Parse(content).ok());
    EXPECT_GT(static_cast<int64_t>(content.size()), target / 4);
    EXPECT_LT(static_cast<int64_t>(content.size()), target * 6);
  }
}

TEST(ContentTest, ModifyScalarIsTwoLineDiff) {
  Rng rng(6);
  std::string before = GenerateConfigContent(3000, rng);
  // Try a few times: the mutation must actually change a value (a random
  // scalar can collide with the old one).
  for (int attempt = 0; attempt < 10; ++attempt) {
    std::string after = ApplyEdit(before, EditKind::kModifyScalar, rng);
    if (after == before) {
      continue;
    }
    LineDiff diff = DiffLines(before, after);
    EXPECT_LE(diff.changed_lines(), 4u);  // 2 typical; tiny for any edit.
    EXPECT_GE(diff.changed_lines(), 1u);
    return;
  }
  FAIL() << "mutation never changed the content";
}

TEST(ContentTest, AddAndRemoveFieldSmallDiffs) {
  Rng rng(7);
  std::string before = GenerateConfigContent(3000, rng);
  std::string added = ApplyEdit(before, EditKind::kAddField, rng);
  LineDiff add_diff = DiffLines(before, added);
  EXPECT_GE(add_diff.added, 1u);
  EXPECT_LE(add_diff.changed_lines(), 4u);

  std::string removed = ApplyEdit(before, EditKind::kRemoveField, rng);
  LineDiff del_diff = DiffLines(before, removed);
  EXPECT_GE(del_diff.deleted, 1u);
}

TEST(ContentTest, RewriteSectionIsLargeDiff) {
  Rng rng(8);
  std::string before = GenerateConfigContent(8000, rng);
  std::string after = ApplyEdit(before, EditKind::kRewriteSection, rng);
  LineDiff diff = DiffLines(before, after);
  EXPECT_GT(diff.changed_lines(), 10u);
}

TEST(ContentTest, EditedContentStillParses) {
  Rng rng(9);
  std::string content = GenerateConfigContent(4000, rng);
  for (int i = 0; i < 30; ++i) {
    content = ApplyEdit(content, SampleEditKind(rng), rng);
    ASSERT_TRUE(Json::Parse(content).ok()) << "after edit " << i;
  }
}

TEST(ContentTest, NonJsonContentGetsAppendEdit) {
  Rng rng(10);
  std::string raw = "not json at all\njust lines\n";
  std::string edited = ApplyEdit(raw, EditKind::kModifyScalar, rng);
  EXPECT_NE(edited, raw);
  EXPECT_TRUE(edited.starts_with(raw));
}

TEST(ContentTest, EditKindMixSkewsToSmallEdits) {
  Rng rng(11);
  int small = 0;
  int total = 10'000;
  for (int i = 0; i < total; ++i) {
    EditKind kind = SampleEditKind(rng);
    if (kind == EditKind::kModifyScalar) {
      ++small;
    }
  }
  EXPECT_NEAR(static_cast<double>(small) / total, 0.47, 0.03);
}

// ---- Arrival model ----------------------------------------------------------

TEST(ArrivalTest, DiurnalPeakMidday) {
  EXPECT_GT(CommitArrivalModel::HourProfile(12), CommitArrivalModel::HourProfile(3));
  EXPECT_GT(CommitArrivalModel::HourProfile(14), 2.0);
  EXPECT_LT(CommitArrivalModel::HourProfile(2), 0.2);
}

TEST(ArrivalTest, WeekendQuietForHumans) {
  EXPECT_LT(CommitArrivalModel::WeekdayProfile(5), 0.2);  // Saturday.
  EXPECT_GT(CommitArrivalModel::WeekdayProfile(1), 0.9);  // Tuesday.
}

TEST(ArrivalTest, AutomationSetsWeekendFloor) {
  // Paper: Configerator weekend throughput ≈ 33% of busiest weekday (39%
  // automation); fbcode ≈ 7% (little automation).
  CommitArrivalModel::Params configerator_params;
  configerator_params.automation_share = 0.39;
  CommitArrivalModel configerator_model(configerator_params);

  CommitArrivalModel::Params fbcode_params;
  fbcode_params.automation_share = 0.03;
  CommitArrivalModel fbcode_model(fbcode_params);

  auto weekend_ratio = [](CommitArrivalModel& model) {
    double weekday = 0;
    double weekend = 0;
    for (int hour = 0; hour < 24; ++hour) {
      weekday += model.ExpectedCommits(2, hour);   // Wednesday.
      weekend += model.ExpectedCommits(6, hour);   // Sunday.
    }
    return weekend / weekday;
  };
  double cfg_ratio = weekend_ratio(configerator_model);
  double fbcode_ratio = weekend_ratio(fbcode_model);
  EXPECT_GT(cfg_ratio, 0.25);
  EXPECT_LT(fbcode_ratio, 0.15);
  EXPECT_GT(cfg_ratio, fbcode_ratio * 2);
}

TEST(ArrivalTest, GrowthCompounds) {
  CommitArrivalModel model(CommitArrivalModel::Params{});
  double early = 0;
  double late = 0;
  for (int hour = 0; hour < 24; ++hour) {
    early += model.ExpectedCommits(0, hour);    // A Monday.
    late += model.ExpectedCommits(294, hour);   // Also a Monday (294 % 7 == 0).
  }
  // 0.38%/day over ~300 days ≈ 3x.
  EXPECT_GT(late / early, 2.0);
}

TEST(ArrivalTest, SampledSeriesShapeAndSize) {
  CommitArrivalModel model(CommitArrivalModel::Params{});
  auto hourly = model.SampleHourly(14);
  ASSERT_EQ(hourly.size(), 14u * 24);
  auto daily = CommitArrivalModel::DailyTotals(hourly);
  ASSERT_EQ(daily.size(), 14u);
  // Weekdays (day 0 = Monday) busier than weekends.
  EXPECT_GT(daily[2], daily[5]);
  EXPECT_GT(daily[2], daily[6]);
}

}  // namespace
}  // namespace configerator
