#include <gtest/gtest.h>

#include "src/mobile/mobileconfig.h"
#include "src/util/rng.h"

namespace configerator {
namespace {

MobileSchema MakeSchemaV1() {
  MobileSchema schema;
  schema.config_name = "MY_CONFIG";
  schema.fields = {{"FEATURE_X", MobileFieldType::kBool},
                   {"VOIP_ECHO", MobileFieldType::kInt},
                   {"GREETING", MobileFieldType::kString}};
  return schema;
}

UserContext MakeDevice(int64_t id, const std::string& device = "iphone6") {
  UserContext ctx;
  ctx.user_id = id;
  ctx.device = device;
  ctx.platform = "ios";
  ctx.app = "messenger";
  return ctx;
}

class MobileConfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    translation_.Bind("MY_CONFIG", "FEATURE_X",
                      FieldBinding::Constant(Json(false)));
    translation_.Bind("MY_CONFIG", "VOIP_ECHO",
                      FieldBinding::Constant(Json(int64_t{50})));
    translation_.Bind("MY_CONFIG", "GREETING",
                      FieldBinding::Constant(Json("hello")));
    server_ = std::make_unique<MobileConfigServer>(&translation_, &gatekeeper_,
                                                   nullptr);
    server_->RegisterSchema(MakeSchemaV1());
  }

  TranslationLayer translation_;
  GatekeeperRuntime gatekeeper_;
  std::unique_ptr<MobileConfigServer> server_;
};

TEST_F(MobileConfigTest, SchemaHashStableAndVersionSensitive) {
  MobileSchema v1 = MakeSchemaV1();
  EXPECT_EQ(v1.Hash(), MakeSchemaV1().Hash());
  MobileSchema v2 = v1;
  v2.fields.push_back({"NEW_FIELD", MobileFieldType::kDouble});
  EXPECT_NE(v1.Hash(), v2.Hash());
  MobileSchema retyped = v1;
  retyped.fields[0].type = MobileFieldType::kInt;
  EXPECT_NE(v1.Hash(), retyped.Hash());
}

TEST_F(MobileConfigTest, FirstSyncFetchesValues) {
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  EXPECT_FALSE(client.has_values());
  EXPECT_EQ(client.getInt("VOIP_ECHO", -1), -1);  // Default before sync.

  auto changed = client.Sync(*server_);
  ASSERT_TRUE(changed.ok()) << changed.status();
  EXPECT_TRUE(*changed);
  EXPECT_EQ(client.getInt("VOIP_ECHO"), 50);
  EXPECT_EQ(client.getBool("FEATURE_X", true), false);
  EXPECT_EQ(client.getString("GREETING"), "hello");
}

TEST_F(MobileConfigTest, UnchangedSyncIsCheap) {
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(client.Sync(*server_).ok());
  uint64_t bytes_after_first = client.bytes_transferred();

  auto changed = client.Sync(*server_);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*changed);
  // The second round transferred only hashes, far less than the values.
  uint64_t second_round = client.bytes_transferred() - bytes_after_first;
  EXPECT_LT(second_round, bytes_after_first);
  EXPECT_EQ(server_->unchanged_responses(), 1u);
}

TEST_F(MobileConfigTest, BindingChangePropagatesOnNextSync) {
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(client.Sync(*server_).ok());
  translation_.Bind("MY_CONFIG", "VOIP_ECHO",
                    FieldBinding::Constant(Json(int64_t{80})));
  auto changed = client.Sync(*server_);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
  EXPECT_EQ(client.getInt("VOIP_ECHO"), 80);
}

TEST_F(MobileConfigTest, EmergencyPushForcesSync) {
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(client.Sync(*server_).ok());
  // A buggy feature gets disabled server-side...
  translation_.Bind("MY_CONFIG", "FEATURE_X",
                    FieldBinding::Constant(Json(true)));
  // ...and the push notification triggers an immediate pull.
  auto changed = client.OnEmergencyPush(*server_);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
  EXPECT_TRUE(client.getBool("FEATURE_X"));
}

TEST_F(MobileConfigTest, GatekeeperBackedField) {
  ASSERT_TRUE(gatekeeper_
                  .LoadProject(*Json::Parse(R"({
                    "project": "ProjX",
                    "rules": [{"restraints": [
                      {"type": "platform", "params": {"platforms": ["ios"]}}],
                      "pass_probability": 1.0}]
                  })"))
                  .ok());
  translation_.Bind("MY_CONFIG", "FEATURE_X",
                    FieldBinding::Gatekeeper("ProjX"));
  MobileConfigClient ios_client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(ios_client.Sync(*server_).ok());
  EXPECT_TRUE(ios_client.getBool("FEATURE_X"));

  UserContext android = MakeDevice(2, "pixel");
  android.platform = "android";
  MobileConfigClient android_client(MakeSchemaV1(), android);
  ASSERT_TRUE(android_client.Sync(*server_).ok());
  EXPECT_FALSE(android_client.getBool("FEATURE_X"));
}

TEST_F(MobileConfigTest, ExperimentBackedParameter) {
  // The paper's VOIP_ECHO example: different if-branches give different
  // parameter values per device model.
  for (const char* device : {"iphone6", "galaxy_s5"}) {
    Json project = *Json::Parse(
        std::string(R"({"project": "ECHO_)") + device + R"(",
          "rules": [{"restraints": [
            {"type": "device", "params": {"devices": [")" + device + R"("]}}],
            "pass_probability": 1.0}]})");
    ASSERT_TRUE(gatekeeper_.LoadProject(project).ok());
  }
  FieldBinding experiment;
  experiment.kind = FieldBinding::Kind::kExperiment;
  experiment.constant = Json(int64_t{50});  // Default arm.
  experiment.arms = {{"ECHO_iphone6", Json(int64_t{30})},
                     {"ECHO_galaxy_s5", Json(int64_t{70})}};
  translation_.Bind("MY_CONFIG", "VOIP_ECHO", experiment);

  MobileConfigClient iphone(MakeSchemaV1(), MakeDevice(1, "iphone6"));
  MobileConfigClient galaxy(MakeSchemaV1(), MakeDevice(2, "galaxy_s5"));
  MobileConfigClient other(MakeSchemaV1(), MakeDevice(3, "nokia"));
  ASSERT_TRUE(iphone.Sync(*server_).ok());
  ASSERT_TRUE(galaxy.Sync(*server_).ok());
  ASSERT_TRUE(other.Sync(*server_).ok());
  EXPECT_EQ(iphone.getInt("VOIP_ECHO"), 30);
  EXPECT_EQ(galaxy.getInt("VOIP_ECHO"), 70);
  EXPECT_EQ(other.getInt("VOIP_ECHO"), 50);

  // After the experiment, remap to a constant: clients see the winner with
  // no app change (separating abstraction from implementation).
  translation_.Bind("MY_CONFIG", "VOIP_ECHO",
                    FieldBinding::Constant(Json(int64_t{30})));
  ASSERT_TRUE(galaxy.Sync(*server_).ok());
  EXPECT_EQ(galaxy.getInt("VOIP_ECHO"), 30);
}

TEST_F(MobileConfigTest, ConfigeratorBackedField) {
  MobileConfigServer server(&translation_, &gatekeeper_,
                            [](const std::string& path) -> Result<std::string> {
                              if (path == "voip/echo.json") {
                                return std::string(R"({"ms": 42})");
                              }
                              return NotFoundError(path);
                            });
  server.RegisterSchema(MakeSchemaV1());
  translation_.Bind("MY_CONFIG", "VOIP_ECHO",
                    FieldBinding::Configerator("voip/echo.json", "ms"));
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(client.Sync(server).ok());
  EXPECT_EQ(client.getInt("VOIP_ECHO"), 42);
}

TEST_F(MobileConfigTest, LegacySchemaVersionServedItsOwnFields) {
  // An old app build knows fewer fields; the server serves its version.
  MobileSchema legacy;
  legacy.config_name = "MY_CONFIG";
  legacy.fields = {{"FEATURE_X", MobileFieldType::kBool}};
  server_->RegisterSchema(legacy);

  MobileConfigClient old_app(legacy, MakeDevice(9));
  ASSERT_TRUE(old_app.Sync(*server_).ok());
  EXPECT_FALSE(old_app.getBool("FEATURE_X"));
  // Fields outside the legacy schema never reach the old client.
  EXPECT_EQ(old_app.getInt("VOIP_ECHO", -1), -1);
}

TEST_F(MobileConfigTest, UnknownSchemaRejected) {
  MobileSchema unknown;
  unknown.config_name = "MY_CONFIG";
  unknown.fields = {{"MYSTERY", MobileFieldType::kBool}};
  MobileConfigClient client(unknown, MakeDevice(1));
  auto result = client.Sync(*server_);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(MobileConfigTest, UnknownConfigNameRejected) {
  MobileSchema other;
  other.config_name = "OTHER_CONFIG";
  other.fields = {{"F", MobileFieldType::kBool}};
  MobileConfigClient client(other, MakeDevice(1));
  EXPECT_FALSE(client.Sync(*server_).ok());
}

TEST_F(MobileConfigTest, TypeMismatchFailsLoudly) {
  translation_.Bind("MY_CONFIG", "VOIP_ECHO",
                    FieldBinding::Constant(Json("not an int")));
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  auto result = client.Sync(*server_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidConfig);
}

TEST_F(MobileConfigTest, MissingBindingFails) {
  MobileSchema v2 = MakeSchemaV1();
  v2.fields.push_back({"UNBOUND", MobileFieldType::kBool});
  server_->RegisterSchema(v2);
  MobileConfigClient client(v2, MakeDevice(1));
  EXPECT_FALSE(client.Sync(*server_).ok());
}

TEST_F(MobileConfigTest, StatefulServerSavesRequestBytes) {
  // Footnote 2: a stateful server remembers each client's value hash, so
  // the client stops sending it on every poll.
  MobileConfigClient stateless_client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(stateless_client.Sync(*server_).ok());
  uint64_t before = stateless_client.bytes_transferred();
  ASSERT_TRUE(stateless_client.Sync(*server_).ok());  // Unchanged poll.
  uint64_t stateless_poll = stateless_client.bytes_transferred() - before;

  server_->set_stateful(true);
  MobileConfigClient stateful_client(MakeSchemaV1(), MakeDevice(2));
  ASSERT_TRUE(stateful_client.Sync(*server_).ok());
  before = stateful_client.bytes_transferred();
  auto changed = stateful_client.Sync(*server_);
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*changed);  // Server-side hash memory detects "unchanged".
  uint64_t stateful_poll = stateful_client.bytes_transferred() - before;
  EXPECT_LT(stateful_poll, stateless_poll);

  // Correctness holds: a binding change still reaches the stateful client.
  translation_.Bind("MY_CONFIG", "VOIP_ECHO",
                    FieldBinding::Constant(Json(int64_t{99})));
  changed = stateful_client.Sync(*server_);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
  EXPECT_EQ(stateful_client.getInt("VOIP_ECHO"), 99);
}

TEST_F(MobileConfigTest, UnreliablePushFleetConvergesViaPoll) {
  // §5: "Because push notification is unreliable, MobileConfig cannot solely
  // rely on the push model." Emergency-push a kill switch to a fleet where
  // 40% of notifications are lost; the missed devices converge at their next
  // hourly poll. Coverage is near-instant for push receivers and complete
  // within one poll interval.
  constexpr int kDevices = 500;
  constexpr double kPushLossRate = 0.4;

  std::vector<std::unique_ptr<MobileConfigClient>> fleet;
  for (int i = 0; i < kDevices; ++i) {
    fleet.push_back(
        std::make_unique<MobileConfigClient>(MakeSchemaV1(), MakeDevice(i)));
    ASSERT_TRUE(fleet.back()->Sync(*server_).ok());
    EXPECT_FALSE(fleet.back()->getBool("FEATURE_X"));
  }

  // The buggy feature must be disabled NOW: flip the binding and push.
  translation_.Bind("MY_CONFIG", "FEATURE_X",
                    FieldBinding::Constant(Json(true)));
  Rng rng(55);
  int push_received = 0;
  for (auto& device : fleet) {
    if (rng.NextBool(1.0 - kPushLossRate)) {
      ASSERT_TRUE(device->OnEmergencyPush(*server_).ok());
      ++push_received;
    }
  }
  int enabled_after_push = 0;
  for (auto& device : fleet) {
    if (device->getBool("FEATURE_X")) {
      ++enabled_after_push;
    }
  }
  EXPECT_EQ(enabled_after_push, push_received);
  EXPECT_GT(enabled_after_push, kDevices / 3);   // Push reached most...
  EXPECT_LT(enabled_after_push, kDevices);       // ...but not everyone.

  // Next scheduled poll: everyone converges.
  for (auto& device : fleet) {
    ASSERT_TRUE(device->Sync(*server_).ok());
  }
  for (auto& device : fleet) {
    EXPECT_TRUE(device->getBool("FEATURE_X"));
  }
}

TEST_F(MobileConfigTest, FlashCacheSurvivesWithoutServer) {
  MobileConfigClient client(MakeSchemaV1(), MakeDevice(1));
  ASSERT_TRUE(client.Sync(*server_).ok());
  // No further syncs (device offline): getters keep serving the cache.
  EXPECT_EQ(client.getInt("VOIP_ECHO"), 50);
  EXPECT_EQ(client.getString("GREETING"), "hello");
}

}  // namespace
}  // namespace configerator
