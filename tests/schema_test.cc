#include <gtest/gtest.h>

#include <cstring>

#include "src/schema/schema.h"
#include "src/util/rng.h"
#include "src/schema/typecheck.h"

namespace configerator {
namespace {

constexpr char kJobThrift[] = R"(
// Scheduler job schema (the paper's Figure 2 example).
enum JobPriority { LOW = 0, NORMAL = 1, HIGH = 2 }

struct Resources {
  1: optional i32 cpu = 1;
  2: optional i64 memory_mb = 256;
}

struct Job {
  1: required string name;
  2: optional i32 priority = 1;
  3: optional list<string> tags;
  4: optional map<string, i64> limits;
  5: optional Resources resources;
  6: optional JobPriority level = JobPriority.NORMAL;
  7: optional double weight = 1.0;
  8: optional bool preemptible = false;
}
)";

class SchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.ParseAndRegister(kJobThrift, "job.thrift").ok());
    ASSERT_TRUE(registry_.ResolveAll().ok());
  }

  SchemaRegistry registry_;
};

TEST_F(SchemaTest, ParsesStructs) {
  const StructDef* job = registry_.FindStruct("Job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->fields.size(), 8u);
  EXPECT_TRUE(job->FindField("name")->required);
  EXPECT_FALSE(job->FindField("priority")->required);
  EXPECT_EQ(job->FindField("priority")->default_value->as_int(), 1);
  EXPECT_EQ(job->FindFieldById(5)->name, "resources");
  EXPECT_EQ(job->FindField("nope"), nullptr);
}

TEST_F(SchemaTest, ParsesEnums) {
  const EnumDef* e = registry_.FindEnum("JobPriority");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->HasValue(2));
  EXPECT_FALSE(e->HasValue(3));
  EXPECT_EQ(*e->ValueOf("HIGH"), 2);
  EXPECT_EQ(*e->NameOf(0), "LOW");
  EXPECT_FALSE(e->ValueOf("NONE").has_value());
}

TEST_F(SchemaTest, EnumDefaultResolved) {
  const FieldDef* level = registry_.FindStruct("Job")->FindField("level");
  ASSERT_TRUE(level->default_value.has_value());
  EXPECT_EQ(level->default_value->as_int(), 1);  // NORMAL.
}

TEST_F(SchemaTest, TypeToString) {
  const StructDef* job = registry_.FindStruct("Job");
  EXPECT_EQ(job->FindField("tags")->type.ToString(), "list<string>");
  EXPECT_EQ(job->FindField("limits")->type.ToString(), "map<string, i64>");
  EXPECT_EQ(job->FindField("resources")->type.ToString(), "Resources");
}

TEST_F(SchemaTest, RejectsDuplicateFieldId) {
  SchemaRegistry r;
  Status s = r.ParseAndRegister("struct S { 1: i32 a; 1: i32 b; }", "dup.thrift");
  EXPECT_FALSE(s.ok());
}

TEST_F(SchemaTest, RejectsDuplicateFieldName) {
  SchemaRegistry r;
  Status s = r.ParseAndRegister("struct S { 1: i32 a; 2: i64 a; }", "dup.thrift");
  EXPECT_FALSE(s.ok());
}

TEST_F(SchemaTest, RejectsNonStringMapKeys) {
  SchemaRegistry r;
  Status s =
      r.ParseAndRegister("struct S { 1: map<i32, string> m; }", "bad.thrift");
  EXPECT_FALSE(s.ok());
}

TEST_F(SchemaTest, ResolveAllCatchesDanglingReference) {
  SchemaRegistry r;
  ASSERT_TRUE(r.ParseAndRegister("struct S { 1: Missing m; }", "s.thrift").ok());
  EXPECT_FALSE(r.ResolveAll().ok());
}

TEST_F(SchemaTest, IncludeResolution) {
  SchemaRegistry r;
  auto resolver = [](const std::string& path) -> Result<std::string> {
    if (path == "base.thrift") {
      return std::string("struct Base { 1: i32 x; }");
    }
    return NotFoundError(path);
  };
  Status s = r.ParseAndRegister(
      "include \"base.thrift\"\nstruct S { 1: Base b; }", "s.thrift", resolver);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_TRUE(r.ResolveAll().ok());
  EXPECT_NE(r.FindStruct("Base"), nullptr);
}

TEST_F(SchemaTest, IncludeWithoutResolverFails) {
  SchemaRegistry r;
  EXPECT_FALSE(r.ParseAndRegister("include \"x.thrift\"", "s.thrift").ok());
}

TEST_F(SchemaTest, CommentsIgnored) {
  SchemaRegistry r;
  Status s = r.ParseAndRegister(
      "# hash comment\n// line comment\n/* block\ncomment */\n"
      "struct S { 1: i32 a; /* inline */ 2: i32 b; }",
      "c.thrift");
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(r.FindStruct("S")->fields.size(), 2u);
}

TEST_F(SchemaTest, SchemaHashStableAndSensitive) {
  auto h1 = registry_.SchemaHash("Job");
  ASSERT_TRUE(h1.ok());
  auto h2 = registry_.SchemaHash("Job");
  EXPECT_EQ(*h1, *h2);

  // A changed default changes the hash.
  SchemaRegistry other;
  std::string modified(kJobThrift);
  size_t pos = modified.find("priority = 1");
  ASSERT_NE(pos, std::string::npos);
  modified.replace(pos, strlen("priority = 1"), "priority = 2");
  ASSERT_TRUE(other.ParseAndRegister(modified, "job.thrift").ok());
  auto h3 = other.SchemaHash("Job");
  ASSERT_TRUE(h3.ok());
  EXPECT_NE(*h1, *h3);
}

TEST_F(SchemaTest, SchemaHashCoversNestedTypes) {
  SchemaRegistry a;
  ASSERT_TRUE(a.ParseAndRegister(
                   "struct Inner { 1: i32 x; } struct Outer { 1: Inner i; }",
                   "a.thrift")
                  .ok());
  SchemaRegistry b;
  ASSERT_TRUE(b.ParseAndRegister(
                   "struct Inner { 1: i64 x; } struct Outer { 1: Inner i; }",
                   "b.thrift")
                  .ok());
  EXPECT_NE(*a.SchemaHash("Outer"), *b.SchemaHash("Outer"));
}

// ---- Type checking ----------------------------------------------------------

TEST_F(SchemaTest, TypeCheckAcceptsValidConfig) {
  auto config = Json::Parse(R"({
    "name": "cache",
    "priority": 2,
    "tags": ["hot", "pinned"],
    "limits": {"disk_mb": 100},
    "resources": {"cpu": 4, "memory_mb": 2048},
    "level": 2,
    "weight": 1.5,
    "preemptible": true
  })");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(TypeCheckStruct(registry_, "Job", *config).ok());
}

TEST_F(SchemaTest, TypeCheckRejectsMissingRequired) {
  auto config = Json::Parse(R"({"priority": 2})");
  Status s = TypeCheckStruct(registry_, "Job", *config);
  EXPECT_EQ(s.code(), StatusCode::kInvalidConfig);
  EXPECT_NE(s.message().find("name"), std::string::npos);
}

TEST_F(SchemaTest, TypeCheckRejectsUnknownField) {
  // The typo defense: "nmae" instead of "name".
  auto config = Json::Parse(R"({"nmae": "cache"})");
  Status s = TypeCheckStruct(registry_, "Job", *config);
  EXPECT_EQ(s.code(), StatusCode::kInvalidConfig);
  EXPECT_NE(s.message().find("nmae"), std::string::npos);
}

TEST_F(SchemaTest, TypeCheckRejectsWrongTypes) {
  EXPECT_FALSE(
      TypeCheckStruct(registry_, "Job", *Json::Parse(R"({"name": 5})")).ok());
  EXPECT_FALSE(TypeCheckStruct(registry_, "Job",
                               *Json::Parse(R"({"name": "x", "priority": "hi"})"))
                   .ok());
  EXPECT_FALSE(TypeCheckStruct(registry_, "Job",
                               *Json::Parse(R"({"name": "x", "tags": "notalist"})"))
                   .ok());
}

TEST_F(SchemaTest, TypeCheckRejectsIntOutOfRange) {
  // priority is i32.
  auto config = Json::Parse(R"({"name": "x", "priority": 3000000000})");
  EXPECT_FALSE(TypeCheckStruct(registry_, "Job", *config).ok());
}

TEST_F(SchemaTest, TypeCheckRejectsInvalidEnumValue) {
  auto config = Json::Parse(R"({"name": "x", "level": 9})");
  EXPECT_FALSE(TypeCheckStruct(registry_, "Job", *config).ok());
}

TEST_F(SchemaTest, TypeCheckAcceptsEnumByName) {
  auto config = Json::Parse(R"({"name": "x", "level": "HIGH"})");
  EXPECT_TRUE(TypeCheckStruct(registry_, "Job", *config).ok());
}

TEST_F(SchemaTest, TypeCheckNestedStructErrorsHavePath) {
  auto config =
      Json::Parse(R"({"name": "x", "resources": {"cpu": "lots"}})");
  Status s = TypeCheckStruct(registry_, "Job", *config);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("resources.cpu"), std::string::npos);
}

TEST_F(SchemaTest, TypeCheckListElements) {
  auto config = Json::Parse(R"({"name": "x", "tags": ["ok", 7]})");
  Status s = TypeCheckStruct(registry_, "Job", *config);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("tags[1]"), std::string::npos);
}

TEST_F(SchemaTest, TypeCheckMapValues) {
  auto config = Json::Parse(R"({"name": "x", "limits": {"a": "NaN"}})");
  EXPECT_FALSE(TypeCheckStruct(registry_, "Job", *config).ok());
}

TEST_F(SchemaTest, IntWidensToDoubleButNotViceVersa) {
  EXPECT_TRUE(TypeCheckStruct(registry_, "Job",
                              *Json::Parse(R"({"name": "x", "weight": 2})"))
                  .ok());
  EXPECT_FALSE(TypeCheckStruct(registry_, "Job",
                               *Json::Parse(R"({"name": "x", "priority": 2.5})"))
                   .ok());
}

TEST_F(SchemaTest, ApplyDefaultsFillsAbsentFields) {
  auto config = Json::Parse(R"({"name": "cache"})");
  auto filled = ApplyDefaults(registry_, "Job", *config);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(filled->Get("priority")->as_int(), 1);
  EXPECT_EQ(filled->Get("level")->as_int(), 1);
  EXPECT_DOUBLE_EQ(filled->Get("weight")->as_double(), 1.0);
  EXPECT_EQ(filled->Get("preemptible")->as_bool(), false);
  // No default declared for tags/limits/resources: left absent.
  EXPECT_FALSE(filled->Has("tags"));
}

TEST_F(SchemaTest, ApplyDefaultsRecursesIntoNestedStructs) {
  auto config = Json::Parse(R"({"name": "cache", "resources": {"cpu": 8}})");
  auto filled = ApplyDefaults(registry_, "Job", *config);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(filled->Get("resources")->Get("memory_mb")->as_int(), 256);
  EXPECT_EQ(filled->Get("resources")->Get("cpu")->as_int(), 8);
}

TEST_F(SchemaTest, ApplyDefaultsKeepsExplicitValues) {
  auto config = Json::Parse(R"({"name": "cache", "priority": 2})");
  auto filled = ApplyDefaults(registry_, "Job", *config);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(filled->Get("priority")->as_int(), 2);
}

TEST_F(SchemaTest, DefaultInstance) {
  auto instance = DefaultInstance(registry_, "Resources");
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->Get("cpu")->as_int(), 1);
  EXPECT_EQ(instance->Get("memory_mb")->as_int(), 256);
}

// ---- Robustness ---------------------------------------------------------------

class SchemaFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemaFuzzTest, RandomIdlSoupNeverCrashes) {
  Rng rng(GetParam());
  const char* fragments[] = {
      "struct ", "enum ",  "include ", "namespace ", "required ", "optional ",
      "i32 ",    "i64 ",   "string ",  "list<",      "map<",      ">",
      "{",       "}",      ";",        ",",           ":",         "=",
      "Name",    "x",      "1",        "42",          "\"s\"",     "// c\n",
      "/*",      "*/",     "\n",       "-7",          "3.5",       "#c\n",
  };
  for (int round = 0; round < 300; ++round) {
    std::string source;
    size_t n = 1 + rng.NextBounded(30);
    for (size_t i = 0; i < n; ++i) {
      source += fragments[rng.NextBounded(std::size(fragments))];
    }
    SchemaRegistry registry;
    // Must not crash; any Status is acceptable.
    (void)registry.ParseAndRegister(source, "fuzz.thrift");
    (void)registry.ResolveAll();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaFuzzTest, ::testing::Values(1, 2, 3, 4));

// ---- Compatibility ----------------------------------------------------------

StructDef ParseSingleStruct(const std::string& text, const std::string& name) {
  SchemaRegistry r;
  EXPECT_TRUE(r.ParseAndRegister(text, "x.thrift").ok());
  return *r.FindStruct(name);
}

TEST(CompatibilityTest, SameSchemaIsCompatible) {
  StructDef s = ParseSingleStruct("struct S { 1: i32 a; }", "S");
  EXPECT_TRUE(CheckBackwardCompatible(s, s).ok());
}

TEST(CompatibilityTest, AddingOptionalFieldIsCompatible) {
  StructDef old_def = ParseSingleStruct("struct S { 1: i32 a; }", "S");
  StructDef new_def =
      ParseSingleStruct("struct S { 1: i32 a; 2: optional string b; }", "S");
  EXPECT_TRUE(CheckBackwardCompatible(old_def, new_def).ok());
}

TEST(CompatibilityTest, AddingRequiredFieldBreaks) {
  // The §6.4 incident: old data can't satisfy a new required field.
  StructDef old_def = ParseSingleStruct("struct S { 1: i32 a; }", "S");
  StructDef new_def =
      ParseSingleStruct("struct S { 1: i32 a; 2: required string b; }", "S");
  EXPECT_FALSE(CheckBackwardCompatible(old_def, new_def).ok());
}

TEST(CompatibilityTest, ChangingFieldTypeBreaks) {
  StructDef old_def = ParseSingleStruct("struct S { 1: i32 a; }", "S");
  StructDef new_def = ParseSingleStruct("struct S { 1: string a; }", "S");
  EXPECT_FALSE(CheckBackwardCompatible(old_def, new_def).ok());
}

TEST(CompatibilityTest, OptionalToRequiredBreaks) {
  StructDef old_def = ParseSingleStruct("struct S { 1: optional i32 a; }", "S");
  StructDef new_def = ParseSingleStruct("struct S { 1: required i32 a; }", "S");
  EXPECT_FALSE(CheckBackwardCompatible(old_def, new_def).ok());
}

TEST(CompatibilityTest, RemovingFieldIsCompatibleForReaders) {
  StructDef old_def =
      ParseSingleStruct("struct S { 1: i32 a; 2: optional i32 b; }", "S");
  StructDef new_def = ParseSingleStruct("struct S { 1: i32 a; }", "S");
  EXPECT_TRUE(CheckBackwardCompatible(old_def, new_def).ok());
}

}  // namespace
}  // namespace configerator
