#include <gtest/gtest.h>

#include "src/json/json.h"
#include "src/util/rng.h"

namespace configerator {
namespace {

TEST(JsonTest, Kinds) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(int64_t{3}).is_int());
  EXPECT_TRUE(Json(3.5).is_double());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_TRUE(Json::MakeArray().is_array());
  EXPECT_TRUE(Json::MakeObject().is_object());
  EXPECT_TRUE(Json(int64_t{3}).is_number());
  EXPECT_TRUE(Json(3.5).is_number());
}

TEST(JsonTest, ObjectAccess) {
  Json obj = Json::MakeObject();
  obj.Set("a", 1);
  obj.Set("b", "two");
  EXPECT_TRUE(obj.Has("a"));
  EXPECT_FALSE(obj.Has("z"));
  EXPECT_EQ(obj.Get("a")->as_int(), 1);
  EXPECT_EQ(obj.Get("b")->as_string(), "two");
  EXPECT_EQ(obj.Get("z"), nullptr);
  EXPECT_EQ(obj.size(), 2u);
}

TEST(JsonTest, GetOnNonObjectIsNull) {
  Json arr = Json::MakeArray();
  EXPECT_EQ(arr.Get("x"), nullptr);
  EXPECT_EQ(Json(3.0).Get("x"), nullptr);
}

TEST(JsonTest, ArrayAppend) {
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append("x");
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.as_array()[0].as_int(), 1);
}

TEST(JsonTest, DumpCompact) {
  Json obj = Json::MakeObject();
  obj.Set("b", 2);
  obj.Set("a", 1);
  // Keys are sorted: deterministic serialization.
  EXPECT_EQ(obj.Dump(), R"({"a": 1, "b": 2})");
}

TEST(JsonTest, DumpPrettyEndsWithNewline) {
  Json obj = Json::MakeObject();
  obj.Set("a", Json::MakeArray());
  std::string out = obj.DumpPretty();
  EXPECT_TRUE(out.ends_with("\n"));
  EXPECT_NE(out.find("  \"a\": []"), std::string::npos);
}

TEST(JsonTest, DumpEscapes) {
  Json s("line\n\"quoted\"\t\\");
  EXPECT_EQ(s.Dump(), R"("line\n\"quoted\"\t\\")");
}

TEST(JsonTest, DumpControlCharacters) {
  Json s(std::string("\x01", 1));
  EXPECT_EQ(s.Dump(), "\"\\u0001\"");
}

TEST(JsonTest, NanSerializesAsNull) {
  Json d(std::nan(""));
  EXPECT_EQ(d.Dump(), "null");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->as_bool(), true);
  EXPECT_EQ(Json::Parse("false")->as_bool(), false);
  EXPECT_EQ(Json::Parse("42")->as_int(), 42);
  EXPECT_EQ(Json::Parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, Containers) {
  auto parsed = Json::Parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  ASSERT_TRUE(parsed.ok());
  const Json& a = *parsed->Get("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.as_array()[2].Get("b")->is_null());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto parsed = Json::Parse("  {\n\t\"a\" :  1 ,\r\n \"b\": [ ] }  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a")->as_int(), 1);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::Parse(R"("a\nb")")->as_string(), "a\nb");
  EXPECT_EQ(Json::Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Json::Parse(R"("é")")->as_string(), "\xc3\xa9");  // é UTF-8.
  EXPECT_EQ(Json::Parse(R"("😀")")->as_string(),
            "\xf0\x9f\x98\x80");  // 😀 via surrogate pair.
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // Trailing garbage.
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
}

TEST(JsonParseTest, BigIntegerFallsBackToDouble) {
  auto parsed = Json::Parse("123456789012345678901234567890");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_double());
}

TEST(JsonTest, Equality) {
  EXPECT_EQ(*Json::Parse("{\"a\": [1, 2]}"), *Json::Parse("{\"a\":[1,2]}"));
  EXPECT_FALSE(*Json::Parse("1") == *Json::Parse("2"));
  // Cross-kind numeric equality.
  EXPECT_EQ(Json(int64_t{2}), Json(2.0));
}

TEST(JsonRoundTripTest, CompactRoundTrips) {
  const char* docs[] = {
      "null",
      "true",
      "[1, 2, 3]",
      R"({"a": 1, "b": [true, null, "x"], "c": {"d": 1.5}})",
      R"({"empty_obj": {}, "empty_arr": []})",
      R"("string with \"escapes\" and \n newline")",
  };
  for (const char* doc : docs) {
    auto first = Json::Parse(doc);
    ASSERT_TRUE(first.ok()) << doc;
    auto second = Json::Parse(first->Dump());
    ASSERT_TRUE(second.ok()) << first->Dump();
    EXPECT_EQ(*first, *second) << doc;
  }
}

TEST(JsonRoundTripTest, PrettyRoundTrips) {
  auto doc = Json::Parse(R"({"a": {"b": [1, {"c": 2}]}, "d": "x"})");
  ASSERT_TRUE(doc.ok());
  auto reparsed = Json::Parse(doc->DumpPretty());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*doc, *reparsed);
}

// Property test: random documents round-trip through Dump/Parse.
class JsonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Json RandomJson(Rng& rng, int depth) {
  switch (rng.NextBounded(depth >= 3 ? 5 : 7)) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.NextBool(0.5));
    case 2:
      return Json(static_cast<int64_t>(rng.Next()));
    case 3:
      return Json(rng.NextGaussian() * 1e6);
    case 4: {
      std::string s;
      size_t n = rng.NextBounded(20);
      for (size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.NextBounded(96) + 32));
      }
      if (rng.NextBool(0.2)) {
        s += "\n\t\"\\";
      }
      return Json(std::move(s));
    }
    case 5: {
      Json arr = Json::MakeArray();
      size_t n = rng.NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        arr.Append(RandomJson(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      size_t n = rng.NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(rng.NextBounded(100)),
                RandomJson(rng, depth + 1));
      }
      return obj;
    }
  }
}

TEST_P(JsonPropertyTest, RandomDocumentRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Json doc = RandomJson(rng, 0);
    auto compact = Json::Parse(doc.Dump());
    ASSERT_TRUE(compact.ok()) << doc.Dump();
    EXPECT_EQ(doc, *compact);
    auto pretty = Json::Parse(doc.DumpPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(doc, *pretty);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace configerator
