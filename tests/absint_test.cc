// Abstract-interpretation coverage: a firing and a non-firing case for every
// T-rule, cross-module inference, branch-dependent schema shapes, symbol
// slices, and the symbol-diff machinery Sandcastle uses to prune re-analysis.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/absint.h"
#include "src/lang/compiler.h"

namespace configerator {
namespace {

size_t CountRule(const std::vector<LintDiagnostic>& diags,
                 std::string_view rule_id) {
  return std::count_if(diags.begin(), diags.end(),
                       [rule_id](const LintDiagnostic& d) {
                         return d.rule_id == rule_id;
                       });
}

const LintDiagnostic* FindRule(const std::vector<LintDiagnostic>& diags,
                               std::string_view rule_id) {
  for (const LintDiagnostic& d : diags) {
    if (d.rule_id == rule_id) {
      return &d;
    }
  }
  return nullptr;
}

class AbsintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sources_.Put("job.thrift",
                 "struct Job {\n"
                 "  1: required string name;\n"
                 "  2: optional i32 memory_mb = 256;\n"
                 "  3: optional list<string> tags;\n"
                 "  4: optional i16 priority;\n"
                 "  5: optional double ratio;\n"
                 "  6: optional map<string, i64> limits;\n"
                 "}\n");
    sources_.Put("svc.thrift",
                 "enum Tier { PROD = 0, CANARY = 1 }\n"
                 "struct Svc {\n"
                 "  1: required string name;\n"
                 "  2: optional Tier tier;\n"
                 "  3: optional Job job;\n"
                 "}\n"
                 "struct Job {\n"
                 "  1: required string name;\n"
                 "  2: optional i32 memory_mb = 256;\n"
                 "}\n");
  }

  AbsintResult Analyze(const std::string& source,
                       const std::string& path = "entry.cconf") {
    AbstractInterpreter absint(sources_.AsReader());
    return absint.Analyze(path, source);
  }

  std::vector<LintDiagnostic> Diags(const std::string& source) {
    return Analyze(source).diagnostics;
  }

  InMemorySources sources_;
};

// ---- Baseline: valid configs produce zero diagnostics -----------------------

TEST_F(AbsintTest, CleanConfigHasNoDiagnostics) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"cache\", memory_mb=1024)\n"
      "j.tags = [\"team:feed\", \"tier:prod\"]\n"
      "j.priority = 3\n"
      "j.ratio = 0.5\n"
      "export_if_last(j)\n");
  EXPECT_TRUE(diags.empty()) << diags.size() << " diags, first: "
                             << (diags.empty() ? "" : diags[0].Format());
}

TEST_F(AbsintTest, Figure2WorkflowHasNoDiagnostics) {
  // The compiler_test fixture: function + cross-module import + validator.
  sources_.Put("create_job.cinc",
               "import_thrift(\"job.thrift\")\n"
               "def create_job(name, memory_mb=256):\n"
               "    job = Job(name=name, memory_mb=memory_mb)\n"
               "    job.tags = [\"team:\" + name]\n"
               "    return job\n");
  sources_.Put("job.thrift-cvalidator",
               "def validate_Job(cfg):\n"
               "    assert cfg.memory_mb > 0, \"memory must be positive\"\n");
  auto result = Analyze(
      "import_python(\"create_job.cinc\", \"*\")\n"
      "job = create_job(name=\"cache\", memory_mb=1024)\n"
      "export_if_last(job)\n");
  EXPECT_TRUE(result.analyzed);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics[0].Format();
}

TEST_F(AbsintTest, LoopsAndMergeHaveNoDiagnostics) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "tags = []\n"
      "for team in [\"feed\", \"ads\", \"search\"]:\n"
      "    append(tags, \"team:\" + team)\n"
      "base = Job(name=\"base\")\n"
      "j = merge(base, {\"memory_mb\": 512})\n"
      "j.tags = tags\n"
      "export_if_last(j)\n");
  EXPECT_TRUE(diags.empty()) << diags[0].Format();
}

TEST_F(AbsintTest, UnresolvableImportDegradesToSilence) {
  auto result = Analyze(
      "import_python(\"missing.cinc\", \"*\")\n"
      "export_if_last({\"port\": PORT})\n");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_FALSE(result.slice_sound);
}

// ---- T010 type-mismatch -----------------------------------------------------

TEST_F(AbsintTest, T010FiresOnDefiniteMismatch) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.memory_mb = \"lots\"\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T010"), 1u);
  EXPECT_EQ(FindRule(diags, "T010")->severity, LintSeverity::kError);
}

TEST_F(AbsintTest, T010FiresOnBranchDependentMismatch) {
  // The canary-proof gap: only one branch is wrong, so a concrete compile
  // that takes the other branch passes every runtime defense.
  sources_.Put("flags.cinc", "ENABLE_BONUS = False\nBONUS = \"none\"\n");
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "import_python(\"flags.cinc\", \"*\")\n"
      "j = Job(name=\"x\")\n"
      "if ENABLE_BONUS:\n"
      "    j.memory_mb = BONUS\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T010"), 1u);
  EXPECT_NE(FindRule(diags, "T010")->message.find("memory_mb"),
            std::string::npos);
}

TEST_F(AbsintTest, T010DoesNotFireOnIntIntoDouble) {
  // The concrete checker accepts ints for double fields.
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.ratio = 1\n"
      "export_if_last(j)\n");
  EXPECT_EQ(CountRule(diags, "T010"), 0u);
}

TEST_F(AbsintTest, T010FiresOnBadEnumConstant) {
  auto diags = Diags(
      "import_thrift(\"svc.thrift\")\n"
      "s = Svc(name=\"x\")\n"
      "s.tier = 7\n"
      "export_if_last(s)\n");
  EXPECT_EQ(CountRule(diags, "T010"), 1u);
}

TEST_F(AbsintTest, T010DoesNotFireOnEnumMember) {
  auto diags = Diags(
      "import_thrift(\"svc.thrift\")\n"
      "s = Svc(name=\"x\")\n"
      "s.tier = Tier.CANARY\n"
      "export_if_last(s)\n");
  EXPECT_EQ(CountRule(diags, "T010"), 0u);
}

// ---- T011 missing-or-unknown-field ------------------------------------------

TEST_F(AbsintTest, T011FiresOnUnknownFieldAssignment) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.memroy_mb = 512\n"
      "export_if_last(j)\n");
  ASSERT_GE(CountRule(diags, "T011"), 1u);
  EXPECT_NE(FindRule(diags, "T011")->message.find("memroy_mb"),
            std::string::npos);
}

TEST_F(AbsintTest, T011FiresOnUnknownCtorKwarg) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "export_if_last(Job(name=\"x\", memroy_mb=512))\n");
  EXPECT_GE(CountRule(diags, "T011"), 1u);
}

TEST_F(AbsintTest, T011FiresOnMissingRequiredField) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "export_if_last(Job(memory_mb=512))\n");
  ASSERT_GE(CountRule(diags, "T011"), 1u);
  EXPECT_NE(FindRule(diags, "T011")->message.find("name"), std::string::npos);
}

TEST_F(AbsintTest, T011FiresWhenRequiredFieldOnlySetOnSomeBranches) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "PROD = len(\"x\")\n"  // Not a constant the analyzer folds to a bool.
      "j = {}\n"
      "if PROD:\n"
      "    j = Job(name=\"a\")\n"
      "else:\n"
      "    j = Job(name=\"b\")\n"
      "export_if_last(j)\n");
  EXPECT_EQ(CountRule(diags, "T011"), 0u);  // Both branches assign name.
}

TEST_F(AbsintTest, T011DoesNotFireWhenAllFieldsValid) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "export_if_last(Job(name=\"x\", memory_mb=512))\n");
  EXPECT_EQ(CountRule(diags, "T011"), 0u);
}

// ---- T012 branch-dependent shape --------------------------------------------

TEST_F(AbsintTest, T012FiresWhenOptionalFieldBranchDependent) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "FAST = len(\"xy\")\n"
      "j = Job(name=\"x\")\n"
      "if FAST > 1:\n"
      "    j.priority = 1\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T012"), 1u);
  EXPECT_EQ(FindRule(diags, "T012")->severity, LintSeverity::kWarning);
}

TEST_F(AbsintTest, T012DoesNotFireWhenBothBranchesAssign) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "FAST = len(\"xy\")\n"
      "j = Job(name=\"x\")\n"
      "if FAST > 1:\n"
      "    j.priority = 1\n"
      "else:\n"
      "    j.priority = 2\n"
      "export_if_last(j)\n");
  EXPECT_EQ(CountRule(diags, "T012"), 0u);
}

// ---- T013 out-of-range constant ---------------------------------------------

TEST_F(AbsintTest, T013FiresOnI16Overflow) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.priority = 70000\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T013"), 1u);
  EXPECT_NE(FindRule(diags, "T013")->message.find("70000"),
            std::string::npos);
}

TEST_F(AbsintTest, T013FiresOnValidatorBoundViolation) {
  sources_.Put("job.thrift-cvalidator",
               "def validate_Job(cfg):\n"
               "    assert cfg.memory_mb >= 64\n"
               "    assert cfg.memory_mb <= 4096\n");
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\", memory_mb=16)\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T013"), 1u);
  EXPECT_NE(FindRule(diags, "T013")->message.find("validator"),
            std::string::npos);
}

TEST_F(AbsintTest, T013DoesNotFireInsideValidatorBounds) {
  sources_.Put("job.thrift-cvalidator",
               "def validate_Job(cfg):\n"
               "    assert cfg.memory_mb >= 64\n");
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "export_if_last(Job(name=\"x\", memory_mb=64))\n");
  EXPECT_EQ(CountRule(diags, "T013"), 0u);
}

TEST_F(AbsintTest, T013DoesNotFireOnPartialRangeOverlap) {
  // The value could be in range; only definite violations block.
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "for i in range(0, 100000):\n"
      "    j.priority = i\n"
      "export_if_last(j)\n");
  EXPECT_EQ(CountRule(diags, "T013"), 0u);
}

// ---- T014 non-serializable export -------------------------------------------

TEST_F(AbsintTest, T014FiresOnExportedFunction) {
  auto diags = Diags(
      "def make(name):\n"
      "    return {\"name\": name}\n"
      "export_if_last({\"factory\": make})\n");
  ASSERT_EQ(CountRule(diags, "T014"), 1u);
}

TEST_F(AbsintTest, T014DoesNotFireOnFunctionResult) {
  auto diags = Diags(
      "def make(name):\n"
      "    return {\"name\": name}\n"
      "export_if_last(make(\"x\"))\n");
  EXPECT_EQ(CountRule(diags, "T014"), 0u);
}

// ---- T015 nullable-into-required --------------------------------------------

TEST_F(AbsintTest, T015FiresOnNoneIntoRequired) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.name = None\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T015"), 1u);
}

TEST_F(AbsintTest, T015DoesNotFireOnNoneIntoOptional) {
  // The concrete checker treats a null optional field as absent.
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.tags = None\n"
      "export_if_last(j)\n");
  EXPECT_EQ(CountRule(diags, "T015"), 0u);
}

// ---- T016 list element conflict ---------------------------------------------

TEST_F(AbsintTest, T016FiresOnMixedElementTypes) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.tags = [\"ok\", 42]\n"
      "export_if_last(j)\n");
  ASSERT_EQ(CountRule(diags, "T016"), 1u);
}

TEST_F(AbsintTest, T016DoesNotFireOnHomogeneousList) {
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "j = Job(name=\"x\")\n"
      "j.tags = [\"a\", \"b\"]\n"
      "export_if_last(j)\n");
  EXPECT_EQ(CountRule(diags, "T016"), 0u);
}

// ---- Cross-module inference -------------------------------------------------

TEST_F(AbsintTest, CrossModuleConstantFlowsIntoTypeCheck) {
  // The bad value lives two imports away; only abstract interpretation that
  // follows imports can see the conflict.
  sources_.Put("base.cinc", "DEFAULT_MEMORY = \"512MB\"\n");
  sources_.Put("mid.cinc",
               "import_python(\"base.cinc\", \"*\")\n"
               "MEMORY = DEFAULT_MEMORY\n");
  auto diags = Diags(
      "import_thrift(\"job.thrift\")\n"
      "import_python(\"mid.cinc\", \"MEMORY\")\n"
      "export_if_last(Job(name=\"x\", memory_mb=MEMORY))\n");
  EXPECT_EQ(CountRule(diags, "T010"), 1u);
}

TEST_F(AbsintTest, BranchDependentSchemaShapeAcrossModules) {
  sources_.Put("tiers.cinc", "IS_CANARY = len(\"x\") > 0\n");
  auto result = Analyze(
      "import_thrift(\"svc.thrift\")\n"
      "import_python(\"tiers.cinc\", \"*\")\n"
      "s = Svc(name=\"web\")\n"
      "if IS_CANARY:\n"
      "    s.tier = Tier.CANARY\n"
      "export_if_last(s)\n");
  EXPECT_EQ(CountRule(result.diagnostics, "T012"), 1u);
  EXPECT_EQ(CountRule(result.diagnostics, "T010"), 0u);
}

// ---- Symbol slices ----------------------------------------------------------

TEST_F(AbsintTest, SliceRecordsOnlyUsedSymbols) {
  sources_.Put("ports.cinc", "APP_PORT = 8089\nADMIN_PORT = 8090\n");
  auto result = Analyze(
      "import_python(\"ports.cinc\", \"APP_PORT\")\n"
      "export_if_last({\"port\": APP_PORT})\n");
  ASSERT_TRUE(result.analyzed);
  EXPECT_TRUE(result.slice_sound);
  ASSERT_EQ(result.used_symbols.count("ports.cinc"), 1u);
  const auto& used = result.used_symbols.at("ports.cinc");
  EXPECT_EQ(used.count("APP_PORT"), 1u);
  EXPECT_EQ(used.count("ADMIN_PORT"), 0u);
  ASSERT_EQ(result.exports.size(), 1u);
  EXPECT_EQ(result.exports[0].path, "entry.json");
  const auto& slice = result.exports[0].symbols_by_module;
  ASSERT_EQ(slice.count("ports.cinc"), 1u);
  EXPECT_EQ(slice.at("ports.cinc").count("APP_PORT"), 1u);
}

TEST_F(AbsintTest, SliceIncludesControlDependencies) {
  sources_.Put("flags.cinc", "USE_BIG = len(\"x\") > 0\nBIG = 4096\n");
  auto result = Analyze(
      "import_thrift(\"job.thrift\")\n"
      "import_python(\"flags.cinc\", \"*\")\n"
      "j = Job(name=\"x\")\n"
      "if USE_BIG:\n"
      "    j.memory_mb = BIG\n"
      "export_if_last(j)\n");
  ASSERT_EQ(result.exports.size(), 1u);
  const auto& slice = result.exports[0].symbols_by_module;
  ASSERT_EQ(slice.count("flags.cinc"), 1u);
  EXPECT_EQ(slice.at("flags.cinc").count("USE_BIG"), 1u);  // Control dep.
  EXPECT_EQ(slice.at("flags.cinc").count("BIG"), 1u);      // Data dep.
}

TEST_F(AbsintTest, StarImportRecordsStarMarker) {
  sources_.Put("lib.cinc", "A = 1\n");
  auto result = Analyze(
      "import_python(\"lib.cinc\", \"*\")\n"
      "export_if_last({\"a\": A})\n");
  ASSERT_EQ(result.used_symbols.count("lib.cinc"), 1u);
  EXPECT_EQ(result.used_symbols.at("lib.cinc").count("*"), 1u);
}

TEST_F(AbsintTest, DynamicImportMakesSliceUnsound) {
  sources_.Put("lib.cinc", "A = 1\n");
  auto result = Analyze(
      "name = \"lib\" + \".cinc\"\n"
      "import_python(name, \"*\")\n"
      "export_if_last({\"a\": 1})\n");
  EXPECT_FALSE(result.slice_sound);
}

// ---- Symbol diffing (ComputeSymbolSurface / ChangedSymbols) -----------------

TEST(SymbolDiffTest, UnchangedModuleHasNoChangedSymbols) {
  const std::string src = "A = 1\nB = A + 1\nC = 3\n";
  auto old_surface = ComputeSymbolSurface("m.cinc", src);
  auto new_surface = ComputeSymbolSurface("m.cinc", src);
  auto changed = ChangedSymbols(old_surface, new_surface);
  ASSERT_TRUE(changed.has_value());
  EXPECT_TRUE(changed->empty());
}

TEST(SymbolDiffTest, ChangeClosesOverIntraModuleDependents) {
  auto old_surface = ComputeSymbolSurface("m.cinc", "A = 1\nB = A + 1\nC = 3\n");
  auto new_surface = ComputeSymbolSurface("m.cinc", "A = 2\nB = A + 1\nC = 3\n");
  auto changed = ChangedSymbols(old_surface, new_surface);
  ASSERT_TRUE(changed.has_value());
  EXPECT_EQ(changed->count("A"), 1u);
  EXPECT_EQ(changed->count("B"), 1u);  // B = A + 1 depends on A.
  EXPECT_EQ(changed->count("C"), 0u);
}

TEST(SymbolDiffTest, AddedSymbolSetsStarMarker) {
  auto old_surface = ComputeSymbolSurface("m.cinc", "A = 1\n");
  auto new_surface = ComputeSymbolSurface("m.cinc", "A = 1\nNEW = 2\n");
  auto changed = ChangedSymbols(old_surface, new_surface);
  ASSERT_TRUE(changed.has_value());
  EXPECT_EQ(changed->count("*"), 1u);  // Could shadow a star-importer's name.
}

TEST(SymbolDiffTest, ParseFailureIsNotComparable) {
  auto old_surface = ComputeSymbolSurface("m.cinc", "A = 1\n");
  auto new_surface = ComputeSymbolSurface("m.cinc", "def broken(:\n");
  EXPECT_FALSE(ChangedSymbols(old_surface, new_surface).has_value());
}

TEST(SymbolDiffTest, FunctionBodyChangePropagates) {
  auto old_surface = ComputeSymbolSurface(
      "m.cinc", "def f(x):\n    return x + 1\nY = f(1)\n");
  auto new_surface = ComputeSymbolSurface(
      "m.cinc", "def f(x):\n    return x + 2\nY = f(1)\n");
  auto changed = ChangedSymbols(old_surface, new_surface);
  ASSERT_TRUE(changed.has_value());
  EXPECT_EQ(changed->count("f"), 1u);
  EXPECT_EQ(changed->count("Y"), 1u);
}

// ---- Rule table -------------------------------------------------------------

TEST(TypeRuleTableTest, AllRulesDocumented) {
  const auto& rules = AbstractInterpreter::TypeRules();
  ASSERT_EQ(rules.size(), 7u);
  EXPECT_EQ(rules.front().id, "T010");
  EXPECT_EQ(rules.back().id, "T016");
}

}  // namespace
}  // namespace configerator
