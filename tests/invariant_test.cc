// Cross-config invariant checker: registry parsing, the four-status
// semantics per invariant kind (proven / violated-with-validated-witness /
// in-jeopardy / unresolved), witness shrinking, and the pipeline wiring —
// Sandcastle blocks every seeded joint inconsistency with a concrete
// counterexample, a clean repo produces zero invariant diagnostics, a
// provably-no-op diff skips re-verification, RiskAdvisor weights
// newly-in-jeopardy invariants, and the canary scope carries the violated
// predicate + witness.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/invariant.h"
#include "src/analysis/witness.h"
#include "src/canary/canary.h"
#include "src/core/stack.h"
#include "src/lang/compiler.h"
#include "src/pipeline/ci.h"
#include "src/pipeline/risk.h"
#include "src/util/ddmin.h"
#include "src/util/strings.h"
#include "src/vcs/repository.h"

namespace configerator {
namespace {

InvariantRegistry ParseRegistry(const std::string& content) {
  InvariantRegistry registry;
  registry.AddSpecFile("invariants/test.json", content);
  return registry;
}

const InvariantOutcome* FindOutcome(const InvariantReport& report,
                                    const std::string& name) {
  for (const InvariantOutcome& outcome : report.outcomes) {
    if (outcome.name == name) {
      return &outcome;
    }
  }
  return nullptr;
}

// ---- Registry parsing -------------------------------------------------------

TEST(InvariantRegistryTest, ParsesEveryKind) {
  InvariantRegistry registry = ParseRegistry(R"({"invariants": [
    {"name": "ord", "kind": "ordering", "severity": "error",
     "lhs": {"config": "a.json", "field": "x"}, "relation": "<=",
     "rhs": {"config": "b.json", "field": "y"}},
    {"name": "sum", "kind": "sum", "relation": "==",
     "terms": [{"config": "a.json", "field": "w"},
               {"config": "b.json", "field": "w"}],
     "budget": 100},
    {"name": "mem", "kind": "membership",
     "subject": {"config": "a.json", "field": "tier"},
     "allowed": ["hot", "cold", 3]},
    {"name": "ref", "kind": "reference",
     "subject": {"config": "a.json", "field": "fallback"}},
    {"name": "imp", "kind": "gate_implies",
     "if_project": "gk/roll.json", "then_project": "gk/elig.json"},
    {"name": "ctx", "kind": "gate_context", "project": "gk/roll.json",
     "allowed_fields": ["country", "user_id"]}
  ]})");
  EXPECT_TRUE(registry.diagnostics.empty());
  ASSERT_EQ(registry.invariants.size(), 6u);
  EXPECT_EQ(registry.invariants[0].kind, InvariantKind::kOrdering);
  EXPECT_EQ(registry.invariants[0].severity, LintSeverity::kError);
  EXPECT_EQ(registry.invariants[1].budget, 100);
  EXPECT_EQ(registry.invariants[2].allowed.size(), 3u);
  EXPECT_EQ(registry.invariants[5].allowed_fields.size(), 2u);
  // Activation sets name every referenced config.
  std::set<std::string> refs = registry.invariants[0].ReferencedConfigs();
  EXPECT_TRUE(refs.count("a.json") && refs.count("b.json"));
  EXPECT_NE(registry.invariants[0].Describe().find("<="), std::string::npos);
}

TEST(InvariantRegistryTest, MalformedEntriesYieldI000AndAreDropped) {
  InvariantRegistry registry = ParseRegistry(R"({"invariants": [
    {"name": "good", "kind": "reference",
     "subject": {"config": "a.json", "field": "f"}},
    {"name": "bad-kind", "kind": "frobnicate"},
    {"name": "bad-ord", "kind": "ordering",
     "lhs": {"config": "a.json"}, "relation": "<="},
    {"kind": "reference", "subject": {"config": "a.json"}}
  ]})");
  // One well-formed invariant survives; three I000 errors, one per bad entry,
  // at line = 1-based array position.
  ASSERT_EQ(registry.invariants.size(), 1u);
  EXPECT_EQ(registry.invariants[0].name, "good");
  ASSERT_EQ(registry.diagnostics.size(), 3u);
  std::set<int> lines;
  for (const LintDiagnostic& diag : registry.diagnostics) {
    EXPECT_EQ(diag.rule_id, "I000");
    EXPECT_EQ(diag.severity, LintSeverity::kError);
    lines.insert(diag.line);
  }
  EXPECT_EQ(lines, (std::set<int>{2, 3, 4}));
}

TEST(InvariantRegistryTest, UnparseableSpecIsOneI000) {
  InvariantRegistry registry = ParseRegistry("{not json");
  EXPECT_TRUE(registry.invariants.empty());
  ASSERT_EQ(registry.diagnostics.size(), 1u);
  EXPECT_EQ(registry.diagnostics[0].rule_id, "I000");
}

// ---- Checker: ordering ------------------------------------------------------

class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantReport Check(const std::string& spec) {
    InvariantRegistry registry;
    registry.AddSpecFile("invariants/test.json", spec);
    InvariantChecker checker(sources_.AsReader());
    return checker.Check(registry);
  }

  InMemorySources sources_;
};

TEST_F(InvariantCheckerTest, OrderingProvenAcrossBranchArms) {
  // Both branch arms export a shed below the kill threshold: provable on the
  // slice case-split alone, whatever decides the branch.
  sources_.Put("flags.cinc", "BIG = True\n");
  sources_.Put("shed.cconf",
               "import_python(\"flags.cinc\", \"*\")\n"
               "if BIG:\n"
               "    export_if_last({\"threshold\": 40})\n"
               "else:\n"
               "    export_if_last({\"threshold\": 20})\n");
  sources_.Put("kill.json", "{\"threshold\": 50}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "shed-below-kill", "kind": "ordering",
     "lhs": {"config": "shed.json", "field": "threshold"},
     "relation": "<=",
     "rhs": {"config": "kill.json", "field": "threshold"}}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "shed-below-kill");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kProven) << outcome->detail;
  EXPECT_GE(outcome->cases_checked, 2u);  // Two slices against one case.
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST_F(InvariantCheckerTest, OrderingViolationCarriesValidatedWitness) {
  sources_.Put("shed.json", "{\"threshold\": 90}");
  sources_.Put("kill.json", "{\"threshold\": 50}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "shed-below-kill", "kind": "ordering", "severity": "error",
     "lhs": {"config": "shed.json", "field": "threshold"},
     "relation": "<=",
     "rhs": {"config": "kill.json", "field": "threshold"}}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "shed-below-kill");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kViolated);
  EXPECT_TRUE(outcome->witness.validated);
  ASSERT_EQ(outcome->witness.valuation.size(), 2u);
  EXPECT_EQ(outcome->witness.valuation[0].first, "shed.json:threshold");
  EXPECT_EQ(outcome->witness.valuation[0].second, "90");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I001");
  EXPECT_EQ(report.diagnostics[0].severity, LintSeverity::kError);
  EXPECT_EQ(report.diagnostics[0].line, 1);  // First invariant in the file.
  EXPECT_NE(report.diagnostics[0].message.find("witness"), std::string::npos);
}

TEST_F(InvariantCheckerTest, OrderingInJeopardyEmitsNoDiagnostic) {
  // One branch arm would violate, but the branch concretely takes the safe
  // arm at head: no diagnostic — the invariant holds by accident, and that
  // distinction is exactly what RiskAdvisor consumes.
  sources_.Put("flags.cinc", "BIG = True\n");
  sources_.Put("shed.cconf",
               "import_python(\"flags.cinc\", \"*\")\n"
               "if BIG:\n"
               "    export_if_last({\"threshold\": 10})\n"
               "else:\n"
               "    export_if_last({\"threshold\": 80})\n");
  sources_.Put("kill.json", "{\"threshold\": 50}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "shed-below-kill", "kind": "ordering",
     "lhs": {"config": "shed.json", "field": "threshold"},
     "relation": "<=",
     "rhs": {"config": "kill.json", "field": "threshold"}}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "shed-below-kill");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kInJeopardy) << outcome->detail;
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.in_jeopardy, 1u);
}

// ---- Checker: sum -----------------------------------------------------------

TEST_F(InvariantCheckerTest, SumBudgetViolationShrinksToMinimalSubset) {
  sources_.Put("w0.json", "{\"weight\": 60}");
  sources_.Put("w1.json", "{\"weight\": 50}");
  sources_.Put("w2.json", "{\"weight\": 1}");
  sources_.Put("w3.json", "{\"weight\": 2}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "shard-budget", "kind": "sum", "relation": "<=", "budget": 100,
     "terms": [{"config": "w0.json", "field": "weight"},
               {"config": "w1.json", "field": "weight"},
               {"config": "w2.json", "field": "weight"},
               {"config": "w3.json", "field": "weight"}]}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "shard-budget");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kViolated);
  EXPECT_TRUE(outcome->witness.validated);
  // ddmin strips w2/w3: 60 + 50 already exceeds the budget alone.
  ASSERT_EQ(outcome->witness.valuation.size(), 2u);
  EXPECT_EQ(outcome->witness.valuation[0].first, "w0.json:weight");
  EXPECT_EQ(outcome->witness.valuation[1].first, "w1.json:weight");
  EXPECT_GT(outcome->witness.shrink_probes, 0);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I002");
}

TEST_F(InvariantCheckerTest, SumProvenFromIntervalsAcrossBranchCases) {
  // Every branch case keeps the joined interval under the budget.
  sources_.Put("flags.cinc", "BIG = False\n");
  sources_.Put("w0.cconf",
               "import_python(\"flags.cinc\", \"*\")\n"
               "if BIG:\n"
               "    export_if_last({\"weight\": 30})\n"
               "else:\n"
               "    export_if_last({\"weight\": 20})\n");
  sources_.Put("w1.json", "{\"weight\": 40}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "shard-budget", "kind": "sum", "relation": "<=", "budget": 100,
     "terms": [{"config": "w0.json", "field": "weight"},
               {"config": "w1.json", "field": "weight"}]}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "shard-budget");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kProven) << outcome->detail;
}

TEST_F(InvariantCheckerTest, SumEqualityDeficitListsEveryTerm) {
  sources_.Put("w0.json", "{\"weight\": 30}");
  sources_.Put("w1.json", "{\"weight\": 40}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "shard-sum", "kind": "sum", "relation": "==", "budget": 100,
     "terms": [{"config": "w0.json", "field": "weight"},
               {"config": "w1.json", "field": "weight"}]}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "shard-sum");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kViolated);
  // A deficit cannot shrink — dropping terms changes the sum — so the
  // witness lists the full valuation.
  EXPECT_EQ(outcome->witness.valuation.size(), 2u);
  EXPECT_TRUE(outcome->witness.validated);
}

// ---- Checker: membership + reference ----------------------------------------

TEST_F(InvariantCheckerTest, MembershipProvenAndViolated) {
  sources_.Put("a.json", "{\"tier\": \"hot\"}");
  sources_.Put("b.json", "{\"tier\": \"lava\"}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "a-tier", "kind": "membership",
     "subject": {"config": "a.json", "field": "tier"},
     "allowed": ["hot", "warm", "cold"]},
    {"name": "b-tier", "kind": "membership",
     "subject": {"config": "b.json", "field": "tier"},
     "allowed": ["hot", "warm", "cold"]}]})");
  EXPECT_EQ(FindOutcome(report, "a-tier")->status, InvariantStatus::kProven);
  const InvariantOutcome* bad = FindOutcome(report, "b-tier");
  EXPECT_EQ(bad->status, InvariantStatus::kViolated);
  EXPECT_TRUE(bad->witness.validated);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I003");
  EXPECT_EQ(report.diagnostics[0].line, 2);  // Second invariant in the file.
}

TEST_F(InvariantCheckerTest, DanglingReferenceIsViolatedExistingIsProven) {
  sources_.Put("a.json", "{\"fallback\": \"backup.json\"}");
  sources_.Put("b.json", "{\"fallback\": \"gone.json\"}");
  sources_.Put("backup.json", "{\"ok\": true}");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "a-fallback", "kind": "reference",
     "subject": {"config": "a.json", "field": "fallback"}},
    {"name": "b-fallback", "kind": "reference",
     "subject": {"config": "b.json", "field": "fallback"}}]})");
  EXPECT_EQ(FindOutcome(report, "a-fallback")->status,
            InvariantStatus::kProven);
  const InvariantOutcome* bad = FindOutcome(report, "b-fallback");
  EXPECT_EQ(bad->status, InvariantStatus::kViolated);
  EXPECT_TRUE(bad->witness.validated);
  EXPECT_NE(bad->witness.predicate.find("gone.json"), std::string::npos);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I004");
}

TEST_F(InvariantCheckerTest, UnresolvableConfigIsI004Unresolved) {
  InvariantReport report = Check(R"({"invariants": [
    {"name": "ord", "kind": "ordering",
     "lhs": {"config": "missing.json", "field": "x"}, "relation": "<",
     "rhs": {"config": "also_missing.json", "field": "y"}}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "ord");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kUnresolved);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I004");
  EXPECT_EQ(report.diagnostics[0].severity, LintSeverity::kError);
}

// ---- Checker: gatekeeper predicates -----------------------------------------

TEST_F(InvariantCheckerTest, GateImpliesProvenSyntactically) {
  // then-project has a catch-all rule: every context is eligible, so any
  // if-project is subsumed without mining a single context.
  sources_.Put("gk/roll.json",
               R"({"project": "roll", "rules": [
                 {"restraints": [{"type": "country",
                   "params": {"countries": ["US"]}}],
                  "pass_probability": 0.5}]})");
  sources_.Put("gk/elig.json",
               R"({"project": "elig", "rules": [
                 {"restraints": [], "pass_probability": 1.0}]})");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "roll-in-elig", "kind": "gate_implies",
     "if_project": "gk/roll.json", "then_project": "gk/elig.json"}]})");
  EXPECT_EQ(FindOutcome(report, "roll-in-elig")->status,
            InvariantStatus::kProven);
}

TEST_F(InvariantCheckerTest, GateImpliesViolationFindsMinimalContext) {
  // Rollout reaches every US user; eligibility requires employees. A US
  // non-employee is the (shrunk, concrete) counterexample.
  sources_.Put("gk/roll.json",
               R"({"project": "roll", "rules": [
                 {"restraints": [{"type": "country",
                   "params": {"countries": ["US"]}}],
                  "pass_probability": 1.0}]})");
  sources_.Put("gk/elig.json",
               R"({"project": "elig", "rules": [
                 {"restraints": [{"type": "employee"}],
                  "pass_probability": 1.0}]})");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "roll-in-elig", "kind": "gate_implies",
     "if_project": "gk/roll.json", "then_project": "gk/elig.json"}]})");
  const InvariantOutcome* outcome = FindOutcome(report, "roll-in-elig");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->status, InvariantStatus::kViolated) << outcome->detail;
  EXPECT_TRUE(outcome->witness.validated);
  // The ddmin-shrunk context sets only the country; is_employee stays at its
  // default (false), which is what makes the witness minimal.
  ASSERT_EQ(outcome->witness.context.size(), 1u);
  EXPECT_EQ(outcome->witness.context[0].first, "country");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I005");
}

TEST_F(InvariantCheckerTest, GateImpliesHoldsWhenThenProjectCovers) {
  // if: US AND employee; then: employee — a strict superset conjunction is
  // proven syntactically.
  sources_.Put("gk/roll.json",
               R"({"project": "roll", "rules": [
                 {"restraints": [
                    {"type": "country", "params": {"countries": ["US"]}},
                    {"type": "employee"}],
                  "pass_probability": 1.0}]})");
  sources_.Put("gk/elig.json",
               R"({"project": "elig", "rules": [
                 {"restraints": [{"type": "employee"}],
                  "pass_probability": 1.0}]})");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "roll-in-elig", "kind": "gate_implies",
     "if_project": "gk/roll.json", "then_project": "gk/elig.json"}]})");
  EXPECT_EQ(FindOutcome(report, "roll-in-elig")->status,
            InvariantStatus::kProven);
}

TEST_F(InvariantCheckerTest, GateContextFlagsDisallowedFields) {
  sources_.Put("gk/roll.json",
               R"({"project": "roll", "rules": [
                 {"restraints": [
                    {"type": "min_friend_count", "params": {"count": 10}}],
                  "pass_probability": 1.0}]})");
  InvariantReport report = Check(R"({"invariants": [
    {"name": "roll-fields", "kind": "gate_context",
     "project": "gk/roll.json", "allowed_fields": ["country"]},
    {"name": "roll-fields-wide", "kind": "gate_context",
     "project": "gk/roll.json",
     "allowed_fields": ["country", "friend_count"]}]})");
  const InvariantOutcome* narrow = FindOutcome(report, "roll-fields");
  ASSERT_NE(narrow, nullptr);
  EXPECT_EQ(narrow->status, InvariantStatus::kViolated);
  EXPECT_TRUE(narrow->witness.validated);
  ASSERT_EQ(narrow->witness.valuation.size(), 1u);
  EXPECT_NE(narrow->witness.valuation[0].first.find("min_friend_count"),
            std::string::npos);
  EXPECT_NE(narrow->witness.valuation[0].second.find("friend_count"),
            std::string::npos);
  // A differential context demonstrating real dependence on the field.
  EXPECT_FALSE(narrow->witness.context.empty());
  EXPECT_EQ(FindOutcome(report, "roll-fields-wide")->status,
            InvariantStatus::kProven);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule_id, "I006");
}

// ---- Checker: scope activation ----------------------------------------------

TEST_F(InvariantCheckerTest, ScopeActivatesByReferencedConfig) {
  sources_.Put("shed.json", "{\"threshold\": 90}");
  sources_.Put("kill.json", "{\"threshold\": 50}");
  sources_.Put("other.json", "{\"tier\": \"lava\"}");
  InvariantRegistry registry;
  registry.AddSpecFile("invariants/test.json", R"({"invariants": [
    {"name": "shed-below-kill", "kind": "ordering",
     "lhs": {"config": "shed.json", "field": "threshold"},
     "relation": "<=",
     "rhs": {"config": "kill.json", "field": "threshold"}},
    {"name": "other-tier", "kind": "membership",
     "subject": {"config": "other.json", "field": "tier"},
     "allowed": ["hot"]}]})");
  InvariantChecker checker(sources_.AsReader());

  // Touching kill.json activates only the ordering invariant — but the
  // checker still pulls shed.json (outside the scope) into the analysis.
  InvariantReport scoped = checker.Check(registry, {"kill.json"});
  EXPECT_EQ(scoped.outcomes.size(), 1u);
  EXPECT_EQ(scoped.skipped, 1u);
  EXPECT_EQ(scoped.violated, 1u);

  // Touching the spec file itself activates everything it declares.
  InvariantReport by_spec = checker.Check(registry, {"invariants/test.json"});
  EXPECT_EQ(by_spec.outcomes.size(), 2u);
  EXPECT_EQ(by_spec.violated, 2u);

  // Empty scope = full audit.
  InvariantReport full = checker.Check(registry);
  EXPECT_EQ(full.outcomes.size(), 2u);
}

// ---- Pipeline integration ---------------------------------------------------

class InvariantPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_
            .Commit(
                "init", "seed",
                {{"svc/shed.json", "{\"threshold\": 40}"},
                 {"svc/kill.json", "{\"threshold\": 50}"},
                 {"svc/w0.json", "{\"weight\": 30}"},
                 {"svc/w1.json", "{\"weight\": 40}"},
                 {"svc/route.json",
                  "{\"tier\": \"hot\", \"fallback\": \"svc/kill.json\"}"},
                 {"gatekeeper/roll.json",
                  R"({"project": "roll", "rules": [
                      {"restraints": [{"type": "employee"}],
                       "pass_probability": 1.0}]})"},
                 {"gatekeeper/elig.json",
                  R"({"project": "elig", "rules": [
                      {"restraints": [{"type": "employee"}],
                       "pass_probability": 1.0}]})"},
                 {"invariants/core.json", CoreSpec()}})
            .ok());
  }

  static std::string CoreSpec() {
    return R"({"invariants": [
      {"name": "shed-below-kill", "kind": "ordering", "severity": "error",
       "lhs": {"config": "svc/shed.json", "field": "threshold"},
       "relation": "<=",
       "rhs": {"config": "svc/kill.json", "field": "threshold"}},
      {"name": "shard-budget", "kind": "sum", "relation": "<=", "budget": 100,
       "terms": [{"config": "svc/w0.json", "field": "weight"},
                 {"config": "svc/w1.json", "field": "weight"}]},
      {"name": "route-tier", "kind": "membership",
       "subject": {"config": "svc/route.json", "field": "tier"},
       "allowed": ["hot", "warm", "cold"]},
      {"name": "route-fallback", "kind": "reference",
       "subject": {"config": "svc/route.json", "field": "fallback"}},
      {"name": "roll-in-elig", "kind": "gate_implies",
       "if_project": "gatekeeper/roll.json",
       "then_project": "gatekeeper/elig.json"},
      {"name": "roll-fields", "kind": "gate_context",
       "project": "gatekeeper/roll.json",
       "allowed_fields": ["is_employee", "country", "user_id"]}
    ]})";
  }

  CiReport Run(const std::vector<FileWrite>& writes) {
    Sandcastle ci(&repo_, &deps_);
    ProposedDiff diff = MakeProposedDiff(repo_, "alice", "edit", writes);
    return ci.RunTests(diff);
  }

  Repository repo_;
  DependencyService deps_;
};

TEST_F(InvariantPipelineTest, CleanCommitsPassWithZeroInvariantDiagnostics) {
  // Valid edits that respect every invariant: no I-series finding.
  CiReport report = Run({{"svc/shed.json", "{\"threshold\": 45}"}});
  EXPECT_TRUE(report.passed) << report.Summary();
  for (const LintDiagnostic& diag : report.lint_findings) {
    EXPECT_NE(diag.rule_id[0], 'I') << diag.Format();
  }
  EXPECT_GE(report.invariants_proven, 1u);
  EXPECT_NE(report.Summary().find("invariants:"), std::string::npos);
}

TEST_F(InvariantPipelineTest, SeededInconsistenciesAllBlockAtSandcastle) {
  // >= 20 distinct joint inconsistencies across the four families. Every one
  // must fail CI with an I-series error carrying a concrete witness.
  struct Seed {
    std::vector<FileWrite> writes;
    std::string rule;
  };
  std::vector<Seed> seeds;
  // Ordering: shed raised above kill, kill lowered below shed, both moved.
  for (int i = 0; i < 6; ++i) {
    seeds.push_back({{{"svc/shed.json",
                       StrFormat("{\"threshold\": %d}", 51 + i * 7)}},
                     "I001"});
  }
  for (int i = 0; i < 2; ++i) {
    seeds.push_back({{{"svc/kill.json",
                       StrFormat("{\"threshold\": %d}", 39 - i * 5)}},
                     "I001"});
  }
  seeds.push_back({{{"svc/shed.json", "{\"threshold\": 70}"},
                    {"svc/kill.json", "{\"threshold\": 60}"}},
                   "I001"});
  // Budget: single- and both-sided weight inflation.
  for (int i = 0; i < 4; ++i) {
    seeds.push_back({{{"svc/w0.json",
                       StrFormat("{\"weight\": %d}", 61 + i * 10)}},
                     "I002"});
  }
  seeds.push_back({{{"svc/w0.json", "{\"weight\": 55}"},
                    {"svc/w1.json", "{\"weight\": 55}"}},
                   "I002"});
  // Membership: invalid tiers.
  for (const char* tier : {"lava", "tepid", "HOT"}) {
    seeds.push_back({{{"svc/route.json",
                       StrFormat("{\"tier\": \"%s\", \"fallback\": "
                                 "\"svc/kill.json\"}",
                                 tier)}},
                     "I003"});
  }
  // Dangling reference: fallback retargeted to missing configs, and the
  // referenced config deleted outright.
  for (const char* target : {"svc/nope.json", "svc/gone.json"}) {
    seeds.push_back({{{"svc/route.json",
                       StrFormat("{\"tier\": \"hot\", \"fallback\": "
                                 "\"%s\"}",
                                 target)}},
                     "I004"});
  }
  seeds.push_back({{{"svc/kill.json", std::nullopt}}, "I004"});
  // Gatekeeper: rollout widened beyond eligibility, and a restraint
  // consulting a context field outside the allowed set.
  seeds.push_back({{{"gatekeeper/roll.json",
                     R"({"project": "roll", "rules": [
                         {"restraints": [], "pass_probability": 1.0}]})"}},
                   "I005"});
  seeds.push_back({{{"gatekeeper/roll.json",
                     R"({"project": "roll", "rules": [
                         {"restraints": [{"type": "country",
                           "params": {"countries": ["BR"]}}],
                          "pass_probability": 1.0}]})"}},
                   "I005"});
  seeds.push_back({{{"gatekeeper/roll.json",
                     R"({"project": "roll", "rules": [
                         {"restraints": [{"type": "employee"},
                           {"type": "min_friend_count",
                            "params": {"count": 5}}],
                          "pass_probability": 1.0}]})"}},
                   "I006"});

  ASSERT_GE(seeds.size(), 20u);
  for (size_t i = 0; i < seeds.size(); ++i) {
    CiReport report = Run(seeds[i].writes);
    EXPECT_FALSE(report.passed) << "seed " << i << ": " << report.Summary();
    bool found = false;
    for (const LintDiagnostic& diag : report.lint_findings) {
      if (diag.rule_id == seeds[i].rule) {
        found = true;
        // The diagnostic embeds the concrete counterexample — except the
        // unresolved flavor of I004 (deleting a referenced config leaves
        // nothing to evaluate a witness against).
        if (diag.rule_id != "I004") {
          EXPECT_NE(diag.message.find("witness"), std::string::npos)
              << diag.Format();
        }
      }
    }
    EXPECT_TRUE(found) << "seed " << i << " expected " << seeds[i].rule << ": "
                       << report.Summary();
    // And each violation's witness object was concretely validated.
    for (const InvariantOutcome& outcome : report.invariant_outcomes) {
      if (outcome.status == InvariantStatus::kViolated) {
        EXPECT_TRUE(outcome.witness.validated) << outcome.predicate;
      }
    }
  }
}

TEST_F(InvariantPipelineTest, MalformedSpecFileIsBlockedByRawValidator) {
  CiReport report =
      Run({{"invariants/new.json", "{\"invariants\": [{\"kind\": \"nope\"}]}"}});
  EXPECT_FALSE(report.passed) << report.Summary();
}

TEST_F(InvariantPipelineTest, EditedSpecIsReverifiedAndCanBlock) {
  // Tightening an invariant so head violates it blocks the spec edit itself.
  CiReport report = Run({{"invariants/core.json",
                          R"({"invariants": [
      {"name": "shed-way-below-kill", "kind": "ordering", "severity": "error",
       "lhs": {"config": "svc/shed.json", "field": "threshold"},
       "relation": "<",
       "rhs": {"config": "svc/shed.json", "field": "threshold"}}]})"}});
  EXPECT_FALSE(report.passed) << report.Summary();
}

TEST_F(InvariantPipelineTest, RiskAdvisorWeighsInvariantsInJeopardy) {
  RiskAdvisor advisor;
  ASSERT_TRUE(advisor.IndexHistory(repo_).ok());
  ProposedDiff diff = MakeProposedDiff(repo_, "alice", "edit",
                                       {{"svc/shed.json",
                                         "{\"threshold\": 45}"}});
  InvariantOutcome jeopardy;
  jeopardy.name = "shed-below-kill";
  jeopardy.status = InvariantStatus::kInJeopardy;
  jeopardy.detail = "case 2 undecided";
  std::vector<InvariantOutcome> outcomes{jeopardy};

  double base = advisor.Assess(diff).score;
  RiskAssessment weighted =
      advisor.Assess(diff, nullptr, nullptr, nullptr, &outcomes);
  EXPECT_GT(weighted.score, base);
  bool mentioned = false;
  for (const std::string& reason : weighted.reasons) {
    if (reason.find("shed-below-kill") != std::string::npos &&
        reason.find("jeopardy") != std::string::npos) {
      mentioned = true;
    }
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(InvariantPipelineTest, CanaryScopeCarriesInvariantNotes) {
  PendingChange change;
  InvariantOutcome violated;
  violated.name = "shed-below-kill";
  violated.status = InvariantStatus::kViolated;
  violated.predicate = "ordering: shed <= kill";
  violated.witness.predicate = "90 <= 50 is false";
  violated.witness.validated = true;
  InvariantOutcome jeopardy;
  jeopardy.name = "shard-budget";
  jeopardy.status = InvariantStatus::kInJeopardy;
  jeopardy.predicate = "sum(w0, w1) <= 100";
  jeopardy.detail = "abstract sum unbounded";
  change.ci_report.invariant_outcomes = {violated, jeopardy};

  CanaryScope scope = change.Scope();
  ASSERT_EQ(scope.invariant_notes.size(), 2u);
  EXPECT_NE(scope.invariant_notes["ordering: shed <= kill"].find(
                "90 <= 50 is false"),
            std::string::npos);
  EXPECT_NE(scope.invariant_notes["sum(w0, w1) <= 100"].find("jeopardy"),
            std::string::npos);
  EXPECT_NE(scope.Describe().find("invariant ["), std::string::npos);
}

// ---- ddmin ------------------------------------------------------------------

TEST(DdminTest, FindsMinimalSubset) {
  // Reproduces iff the kept set contains both 2 and 5.
  int probes = 0;
  std::vector<size_t> kept = DdminSubset(
      8,
      [](const std::vector<size_t>& kept_indices) {
        bool has2 = false, has5 = false;
        for (size_t i : kept_indices) {
          has2 |= i == 2;
          has5 |= i == 5;
        }
        return has2 && has5;
      },
      /*max_probes=*/256, &probes);
  EXPECT_EQ(kept, (std::vector<size_t>{2, 5}));
  EXPECT_GT(probes, 0);
}

TEST(DdminTest, SingletonAndEmptyInputs) {
  int probes = 0;
  EXPECT_EQ(DdminSubset(1, [](const std::vector<size_t>&) { return true; }, 16,
                        &probes)
                .size(),
            1u);
  EXPECT_TRUE(
      DdminSubset(0, [](const std::vector<size_t>&) { return true; }, 16)
          .empty());
}

}  // namespace
}  // namespace configerator
