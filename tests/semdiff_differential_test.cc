// Differential soundness battery for the semantic differ: across ~500
// seeded random commits over a small config repo, every symbol the differ
// certifies as *no-op* must evaluate concretely identical on both sides —
// entry exports compile to byte-identical JSON, and no-op Gatekeeper
// projects agree with the old spec on random schema-valid user contexts.
// The other classifications are over-approximations and are free to be
// conservative; the no-op certificate is the one claim that must be exact,
// because Sandcastle skips reverse-closure re-analysis on its strength.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/semdiff.h"
#include "src/gatekeeper/context.h"
#include "src/gatekeeper/project.h"
#include "src/lang/compiler.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

constexpr int kCommits = 500;
constexpr int kUsersPerProject = 32;

struct Tree {
  int a = 7;
  std::string c = "alpha";
  bool d = true;
  int scale = 10;
  int arm_on = 4096;
  int arm_off = 512;
  int lib_rev = 0;     // Comment revision counters (semantic no-ops).
  int entry_rev = 0;
  bool gk_employee = true;
  double gk_prob = 0.5;
  bool gk_pretty = false;

  std::string Lib() const {
    return StrFormat("# rev %d\nA = %d\nB = A * 2\nC = \"%s\"\nD = %s\n",
                     lib_rev, a, c.c_str(), d ? "True" : "False");
  }
  std::string Util() const {
    return StrFormat("SCALE = %d\nOFFSET = SCALE + 1\n", scale);
  }
  std::string Entry1() const {
    return StrFormat(
        "# rev %d\n"
        "import_python(\"lib.cinc\", \"*\")\n"
        "import_python(\"util.cinc\", \"SCALE\")\n"
        "export_if_last({\"a\": A, \"b\": B, \"c\": C, \"scale\": SCALE})\n",
        entry_rev);
  }
  std::string Entry2() const {
    return StrFormat(
        "import_python(\"lib.cinc\", \"*\")\n"
        "if D:\n"
        "    export_if_last({\"mem\": %d})\n"
        "else:\n"
        "    export_if_last({\"mem\": %d})\n",
        arm_on, arm_off);
  }
  std::string Gatekeeper() const {
    std::string restraint =
        gk_employee
            ? R"({"type": "employee"})"
            : R"({"type": "country", "params": {"countries": ["US", "BR"]}})";
    const char* religion = gk_pretty ? "{\n  \"project\": \"ramp\",\n  "
                                       "\"rules\": [{\"restraints\": [%s], "
                                       "\"pass_probability\": %.3f}]\n}\n"
                                     : "{\"project\": \"ramp\", \"rules\": "
                                       "[{\"restraints\": [%s], "
                                       "\"pass_probability\": %.3f}]}";
    return StrFormat(religion, restraint.c_str(), gk_prob);
  }

  InMemorySources Sources() const {
    InMemorySources sources;
    sources.Put("lib.cinc", Lib());
    sources.Put("util.cinc", Util());
    sources.Put("entry1.cconf", Entry1());
    sources.Put("entry2.cconf", Entry2());
    sources.Put("gatekeeper/ramp.json", Gatekeeper());
    return sources;
  }
};

UserContext RandomUser(Rng& rng) {
  static const char* kCountries[] = {"US", "CA", "BR", "JP"};
  static const char* kPlatforms[] = {"ios", "android", "www"};
  UserContext user;
  user.user_id = static_cast<int64_t>(rng.NextBounded(1'000'000));
  user.country = kCountries[rng.NextBounded(4)];
  user.platform = kPlatforms[rng.NextBounded(3)];
  user.is_employee = rng.NextBool(0.2);
  user.account_age_days = static_cast<int32_t>(rng.NextBounded(3000));
  user.friend_count = static_cast<int32_t>(rng.NextBounded(900));
  user.app_version = static_cast<int32_t>(rng.NextBounded(100));
  return user;
}

// Compiles `entry` in both trees and returns whether the generated configs
// are byte-identical (missing on both sides counts as identical).
bool CompiledEqual(const Tree& old_tree, const Tree& new_tree,
                   const std::string& entry) {
  InMemorySources old_sources = old_tree.Sources();
  InMemorySources new_sources = new_tree.Sources();
  ConfigCompiler old_compiler(old_sources.AsReader());
  ConfigCompiler new_compiler(new_sources.AsReader());
  auto old_out = old_compiler.Compile(entry);
  auto new_out = new_compiler.Compile(entry);
  if (!old_out.ok() || !new_out.ok()) {
    return old_out.ok() == new_out.ok();
  }
  if (old_out->configs.size() != new_out->configs.size()) {
    return false;
  }
  for (size_t i = 0; i < old_out->configs.size(); ++i) {
    if (old_out->configs[i].path != new_out->configs[i].path ||
        old_out->configs[i].content.Dump() !=
            new_out->configs[i].content.Dump()) {
      return false;
    }
  }
  return true;
}

TEST(SemdiffDifferentialTest, NoOpCertificatesNeverLie) {
  Rng rng(20260809);
  Tree tree;

  size_t noop_export_checks = 0;
  size_t provable_noop_commits = 0;
  size_t gk_noop_checks = 0;

  for (int commit = 0; commit < kCommits; ++commit) {
    Tree old_tree = tree;
    std::vector<std::string> touched;

    // One or two random mutations per commit.
    int mutations = 1 + static_cast<int>(rng.NextBounded(2));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextBounded(10)) {
        case 0:  // Comment-only edit: semantically nothing.
          tree.lib_rev++;
          touched.push_back("lib.cinc");
          break;
        case 1:  // Value bump.
          tree.a = static_cast<int>(rng.NextBounded(100));
          touched.push_back("lib.cinc");
          break;
        case 2:  // String change.
          tree.c = rng.NextBool(0.5) ? "alpha" : "omega";
          touched.push_back("lib.cinc");
          break;
        case 3:  // Guard flip: control shift in untouched entry2.
          tree.d = !tree.d;
          touched.push_back("lib.cinc");
          break;
        case 4:  // Branch-arm constant edit (touches entry2 itself).
          tree.arm_on = 1024 + static_cast<int>(rng.NextBounded(8)) * 512;
          touched.push_back("entry2.cconf");
          break;
        case 5:  // Specific-import dependency edit.
          tree.scale = 1 + static_cast<int>(rng.NextBounded(50));
          touched.push_back("util.cinc");
          break;
        case 6:  // Entry comment edit.
          tree.entry_rev++;
          touched.push_back("entry1.cconf");
          break;
        case 7:  // Gatekeeper reformat: JSON-equal, so no-op.
          tree.gk_pretty = !tree.gk_pretty;
          touched.push_back("gatekeeper/ramp.json");
          break;
        case 8:  // Sampling probability: value-delta.
          tree.gk_prob = 0.1 * static_cast<double>(1 + rng.NextBounded(9));
          touched.push_back("gatekeeper/ramp.json");
          break;
        case 9:  // Restraint swap: control-shift.
          tree.gk_employee = !tree.gk_employee;
          touched.push_back("gatekeeper/ramp.json");
          break;
      }
    }

    InMemorySources old_sources = old_tree.Sources();
    InMemorySources new_sources = tree.Sources();
    SemanticDiffer differ(old_sources.AsReader(), new_sources.AsReader());
    SemanticDiffReport report =
        differ.Classify(touched, {"entry1.cconf", "entry2.cconf"});
    ASSERT_TRUE(report.sound) << "commit " << commit;

    // 1. Every export certified no-op compiles byte-identically.
    for (const SymbolImpact& impact : report.impacts) {
      if (impact.kind != ImpactKind::kNoOp ||
          !impact.symbol.ends_with(".json") ||
          !impact.file.ends_with(".cconf")) {
        continue;
      }
      ++noop_export_checks;
      EXPECT_TRUE(CompiledEqual(old_tree, tree, impact.file))
          << "commit " << commit << ": export certified no-op but concrete "
          << "compile differs: " << impact.Describe();
    }

    // 2. A provably-no-op commit leaves EVERY entry's output untouched.
    if (report.provably_noop) {
      ++provable_noop_commits;
      for (const char* entry : {"entry1.cconf", "entry2.cconf"}) {
        EXPECT_TRUE(CompiledEqual(old_tree, tree, entry))
            << "commit " << commit << " was certified provably no-op but "
            << entry << " compiles differently";
      }
    }

    // 3. A no-op Gatekeeper project decides identically on random users.
    const SymbolImpact* gk = report.Find("gatekeeper/ramp.json", "ramp");
    if (gk != nullptr && gk->kind == ImpactKind::kNoOp) {
      auto old_json = Json::Parse(old_tree.Gatekeeper());
      auto new_json = Json::Parse(tree.Gatekeeper());
      ASSERT_TRUE(old_json.ok() && new_json.ok());
      auto old_project = GatekeeperProject::FromJson(*old_json);
      auto new_project = GatekeeperProject::FromJson(*new_json);
      ASSERT_TRUE(old_project.ok() && new_project.ok());
      ++gk_noop_checks;
      for (int u = 0; u < kUsersPerProject; ++u) {
        UserContext user = RandomUser(rng);
        EXPECT_EQ(old_project->Check(user, nullptr),
                  new_project->Check(user, nullptr))
            << "commit " << commit << ": no-op gatekeeper spec diverges";
      }
    }
  }

  // The battery must actually exercise the certificates, or it proves
  // nothing: expect a healthy number of no-op verdicts across 500 commits.
  EXPECT_GE(noop_export_checks, 100u);
  EXPECT_GE(provable_noop_commits, 20u);
  EXPECT_GE(gk_noop_checks, 10u);
}

}  // namespace
}  // namespace configerator
