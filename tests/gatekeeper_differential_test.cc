// Differential property battery: the concurrent shared-snapshot runtime must
// agree with the naive declared-order evaluator on every (config, user) pair
// — across ~1k random DNF projects, mid-run snapshot swaps, epoch rebuilds,
// and tombstones. Any divergence means the compiled snapshot, the cost-based
// reordering, or the batch path changed semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/gatekeeper/naive.h"
#include "src/gatekeeper/runtime.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

constexpr int kProjects = 1000;
constexpr int kUsersPerProject = 16;

std::string RandomRestraintJson(Rng& rng) {
  static const char* kCountries[] = {"US", "CA", "BR", "JP", "DE"};
  static const char* kPlatforms[] = {"android", "ios", "web"};
  static const char* kLocales[] = {"en_US", "pt_BR", "ja_JP"};
  static const char* kAttrs[] = {"tier", "segment"};
  static const char* kAttrValues[] = {"gold", "silver", "bronze"};

  std::string body;
  switch (rng.NextBounded(15)) {
    case 0:
      body = StrFormat(R"("type": "always", "params": {"value": %s})",
                       rng.NextBool(0.5) ? "true" : "false");
      break;
    case 1:
      body = R"("type": "employee")";
      break;
    case 2:
      body = StrFormat(
          R"("type": "country", "params": {"countries": ["%s", "%s"]})",
          kCountries[rng.NextBounded(5)], kCountries[rng.NextBounded(5)]);
      break;
    case 3:
      body = StrFormat(R"("type": "platform", "params": {"platforms": ["%s"]})",
                       kPlatforms[rng.NextBounded(3)]);
      break;
    case 4:
      body = StrFormat(R"("type": "locale", "params": {"locales": ["%s"]})",
                       kLocales[rng.NextBounded(3)]);
      break;
    case 5:
      body = StrFormat(
          R"("type": "min_friend_count", "params": {"count": %lld})",
          static_cast<long long>(rng.NextInRange(0, 700)));
      break;
    case 6:
      body = StrFormat(R"("type": "new_user", "params": {"max_days": %lld})",
                       static_cast<long long>(rng.NextInRange(0, 2000)));
      break;
    case 7:
      body = StrFormat(
          R"("type": "min_app_version", "params": {"version": %lld})",
          static_cast<long long>(rng.NextInRange(200, 400)));
      break;
    case 8:
      body = StrFormat(
          R"("type": "id_in", "params": {"ids": [%lld, %lld, %lld]})",
          static_cast<long long>(rng.NextInRange(0, 1999)),
          static_cast<long long>(rng.NextInRange(0, 1999)),
          static_cast<long long>(rng.NextInRange(0, 1999)));
      break;
    case 9: {
      int64_t mod = rng.NextInRange(2, 100);
      int64_t lo = rng.NextInRange(0, mod - 1);
      int64_t hi = rng.NextInRange(lo + 1, mod);
      body = StrFormat(
          R"("type": "id_mod", "params": {"mod": %lld, "lo": %lld, "hi": %lld})",
          static_cast<long long>(mod), static_cast<long long>(lo),
          static_cast<long long>(hi));
      break;
    }
    case 10: {
      double lo = rng.NextDouble() * 0.9;
      double hi = lo + 0.01 + rng.NextDouble() * (1.0 - lo - 0.01);
      body = StrFormat(
          R"("type": "hash_range", "params": {"salt": "s%llu", "lo": %.4f, "hi": %.4f})",
          static_cast<unsigned long long>(rng.NextBounded(8)), lo, hi);
      break;
    }
    case 11:
      body = StrFormat(
          R"("type": "string_attr_equals", "params": {"attr": "%s", "value": "%s"})",
          kAttrs[rng.NextBounded(2)], kAttrValues[rng.NextBounded(3)]);
      break;
    case 12:
      body = StrFormat(
          R"("type": "%s", "params": {"attr": "score", "threshold": %.3f})",
          rng.NextBool(0.5) ? "numeric_attr_gt" : "numeric_attr_lt",
          rng.NextDouble());
      break;
    case 13:
      body = StrFormat(R"("type": "has_attr", "params": {"attr": "%s"})",
                       rng.NextBool(0.5) ? "tier" : "score");
      break;
    default:
      body = StrFormat(
          R"("type": "laser", "params": {"project": "Trend", "threshold": %.3f})",
          rng.NextDouble());
      break;
  }
  const char* negate = rng.NextBool(0.3) ? "true" : "false";
  return StrFormat(R"({%s, "negate": %s})", body.c_str(), negate);
}

std::string RandomProjectJson(Rng& rng, const std::string& name) {
  static const double kProbs[] = {0.0, 0.25, 0.5, 1.0};
  int n_rules = static_cast<int>(rng.NextInRange(1, 4));
  std::string rules;
  for (int r = 0; r < n_rules; ++r) {
    int n_restraints = static_cast<int>(rng.NextInRange(0, 4));
    std::string restraints;
    for (int i = 0; i < n_restraints; ++i) {
      if (i > 0) restraints += ", ";
      restraints += RandomRestraintJson(rng);
    }
    if (r > 0) rules += ", ";
    rules += StrFormat(
        R"({"restraints": [%s], "pass_probability": %.2f})",
        restraints.c_str(), kProbs[rng.NextBounded(4)]);
  }
  return StrFormat(R"({"project": "%s", "rules": [%s]})", name.c_str(),
                   rules.c_str());
}

UserContext RandomUser(Rng& rng) {
  static const char* kCountries[] = {"US", "CA", "BR", "JP", "DE", "FR"};
  static const char* kPlatforms[] = {"android", "ios", "web"};
  static const char* kLocales[] = {"en_US", "pt_BR", "ja_JP", "de_DE"};
  UserContext user;
  user.user_id = rng.NextInRange(0, 1999);
  user.country = kCountries[rng.NextBounded(6)];
  user.locale = kLocales[rng.NextBounded(4)];
  user.app = "fb4a";
  user.device = rng.NextBool(0.5) ? "pixel" : "iphone";
  user.platform = kPlatforms[rng.NextBounded(3)];
  user.is_employee = rng.NextBool(0.1);
  user.account_age_days = static_cast<int32_t>(rng.NextInRange(0, 2500));
  user.friend_count = static_cast<int32_t>(rng.NextInRange(0, 900));
  user.app_version = static_cast<int32_t>(rng.NextInRange(180, 420));
  if (rng.NextBool(0.5)) {
    static const char* kAttrValues[] = {"gold", "silver", "bronze"};
    user.string_attrs["tier"] = kAttrValues[rng.NextBounded(3)];
  }
  if (rng.NextBool(0.5)) {
    user.numeric_attrs["score"] = rng.NextDouble();
  }
  return user;
}

LaserStore MakeLaserStore(Rng& rng) {
  LaserStore laser;
  for (int64_t id = 0; id < 2000; ++id) {
    if (rng.NextBool(0.7)) {
      laser.Put("Trend-" + std::to_string(id), rng.NextDouble());
    }
  }
  return laser;
}

TEST(GatekeeperDifferentialTest, RuntimeMatchesNaiveAcrossRandomProjects) {
  Rng rng(0xD1FFBA77E12ULL);
  LaserStore laser = MakeLaserStore(rng);
  GatekeeperRuntime runtime(&laser);

  // One runtime lives through all 1000 configs under the same project name,
  // so every iteration is also a live snapshot swap over prior state.
  for (int iter = 0; iter < kProjects; ++iter) {
    std::string json = RandomProjectJson(rng, "fuzz");
    Result<Json> parsed = Json::Parse(json);
    ASSERT_TRUE(parsed.ok()) << json;
    Result<NaiveEvaluator> naive = NaiveEvaluator::FromJson(*parsed);
    ASSERT_TRUE(naive.ok()) << naive.status() << "\n" << json;
    ASSERT_TRUE(runtime.ApplyConfigUpdate("gatekeeper/fuzz.json", json).ok());

    for (int u = 0; u < kUsersPerProject; ++u) {
      // Epoch rebuild mid-loop: the reordered snapshot must not change any
      // outcome (stats learned so far feed CostBasedOrders).
      if (u == kUsersPerProject / 2 && iter % 7 == 0) {
        runtime.Rebuild();
      }
      UserContext user = RandomUser(rng);
      bool expected = naive->Check(user, &laser);
      EXPECT_EQ(runtime.Check("fuzz", user), expected)
          << "iter " << iter << " user " << user.user_id << "\n" << json;
    }

    // Occasional tombstone: the runtime must fail closed, then recover on
    // the next config.
    if (iter % 97 == 0) {
      ASSERT_TRUE(runtime.ApplyConfigUpdate("gatekeeper/fuzz.json", "").ok());
      EXPECT_FALSE(runtime.Check("fuzz", RandomUser(rng)));
    }
  }
}

TEST(GatekeeperDifferentialTest, CheckManyMatchesNaivePerUser) {
  Rng rng(0xBA7C4ULL);
  LaserStore laser = MakeLaserStore(rng);
  GatekeeperRuntime runtime(&laser);

  for (int iter = 0; iter < 50; ++iter) {
    std::string json = RandomProjectJson(rng, "batch");
    Result<Json> parsed = Json::Parse(json);
    ASSERT_TRUE(parsed.ok()) << json;
    Result<NaiveEvaluator> naive = NaiveEvaluator::FromJson(*parsed);
    ASSERT_TRUE(naive.ok()) << json;
    ASSERT_TRUE(runtime.ApplyConfigUpdate("gatekeeper/batch.json", json).ok());

    std::vector<UserContext> users;
    for (int u = 0; u < 64; ++u) {
      users.push_back(RandomUser(rng));
    }
    std::vector<uint8_t> results;
    size_t passed = runtime.CheckMany("batch", users, &results);
    ASSERT_EQ(results.size(), users.size());
    size_t expected_passed = 0;
    for (size_t u = 0; u < users.size(); ++u) {
      bool expected = naive->Check(users[u], &laser);
      expected_passed += expected ? 1 : 0;
      EXPECT_EQ(results[u] != 0, expected)
          << "iter " << iter << " user " << users[u].user_id << "\n" << json;
    }
    EXPECT_EQ(passed, expected_passed);
  }
}

TEST(GatekeeperDifferentialTest, CostOrderingAblationChangesNoOutcome) {
  Rng rng(0x0DE4ULL);
  LaserStore laser = MakeLaserStore(rng);
  GatekeeperRuntime runtime(&laser);
  std::string json = RandomProjectJson(rng, "ablate");
  ASSERT_TRUE(runtime.ApplyConfigUpdate("gatekeeper/ablate.json", json).ok());
  Result<Json> parsed = Json::Parse(json);
  Result<NaiveEvaluator> naive = NaiveEvaluator::FromJson(*parsed);
  ASSERT_TRUE(naive.ok());

  std::vector<UserContext> users;
  for (int u = 0; u < 200; ++u) {
    users.push_back(RandomUser(rng));
  }
  // Learn, rebuild into cost order, then flip the ablation both ways: every
  // published order must evaluate identically.
  for (int round = 0; round < 3; ++round) {
    if (round == 1) runtime.Rebuild();
    if (round == 2) runtime.set_cost_based_ordering(false);
    for (const UserContext& user : users) {
      EXPECT_EQ(runtime.Check("ablate", user), naive->Check(user, &laser))
          << "round " << round << " user " << user.user_id;
    }
  }
}

}  // namespace
}  // namespace configerator
