// ConfigLint rule coverage: one firing and one non-firing case per rule.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/lint.h"
#include "src/lang/compiler.h"

namespace configerator {
namespace {

// Counts diagnostics for `rule_id` in `diags`.
size_t CountRule(const std::vector<LintDiagnostic>& diags,
                 std::string_view rule_id) {
  return std::count_if(diags.begin(), diags.end(),
                       [rule_id](const LintDiagnostic& d) {
                         return d.rule_id == rule_id;
                       });
}

const LintDiagnostic* FindRule(const std::vector<LintDiagnostic>& diags,
                               std::string_view rule_id) {
  for (const LintDiagnostic& d : diags) {
    if (d.rule_id == rule_id) {
      return &d;
    }
  }
  return nullptr;
}

class LanguageRulesTest : public ::testing::Test {
 protected:
  std::vector<LintDiagnostic> Lint(const std::string& source,
                                   const std::string& path = "entry.cconf") {
    ConfigLint lint(sources_.AsReader());
    return lint.LintSource(path, source);
  }

  InMemorySources sources_;
};

// ---- L000 parse-error -------------------------------------------------------

TEST_F(LanguageRulesTest, ParseErrorFires) {
  auto diags = Lint("def broken(:\n");
  ASSERT_EQ(CountRule(diags, "L000"), 1u);
  EXPECT_EQ(FindRule(diags, "L000")->severity, LintSeverity::kError);
}

TEST_F(LanguageRulesTest, ParseErrorDoesNotFireOnValidSource) {
  EXPECT_EQ(CountRule(Lint("export_if_last({\"ok\": True})\n"), "L000"), 0u);
}

// ---- L001 undefined-name ----------------------------------------------------

TEST_F(LanguageRulesTest, UndefinedNameFires) {
  auto diags = Lint("export_if_last({\"port\": PORT})\n");
  ASSERT_EQ(CountRule(diags, "L001"), 1u);
  const LintDiagnostic* diag = FindRule(diags, "L001");
  EXPECT_EQ(diag->severity, LintSeverity::kError);
  EXPECT_EQ(diag->line, 1);
  EXPECT_NE(diag->message.find("PORT"), std::string::npos);
}

TEST_F(LanguageRulesTest, UndefinedNameDoesNotFireOnDefinedName) {
  EXPECT_EQ(CountRule(Lint("PORT = 80\nexport_if_last({\"port\": PORT})\n"),
                      "L001"),
            0u);
}

TEST_F(LanguageRulesTest, UndefinedNameResolvesThroughStarImport) {
  sources_.Put("lib/ports.cinc", "PORT = 80\nADMIN_PORT = 8080\n");
  auto diags = Lint(
      "import_python(\"lib/ports.cinc\", \"*\")\n"
      "export_if_last({\"port\": PORT})\n");
  EXPECT_EQ(CountRule(diags, "L001"), 0u);
}

TEST_F(LanguageRulesTest, UndefinedNameResolvesTransitively) {
  sources_.Put("base.cinc", "ROOT = 1\n");
  sources_.Put("mid.cinc", "import_python(\"base.cinc\", \"*\")\nMID = 2\n");
  auto diags = Lint(
      "import_python(\"mid.cinc\", \"*\")\n"
      "export_if_last({\"a\": ROOT, \"b\": MID})\n");
  EXPECT_EQ(CountRule(diags, "L001"), 0u);
}

TEST_F(LanguageRulesTest, UndefinedNameSuppressedWhenImportUnresolvable) {
  // The import target does not exist: lint cannot know what it would have
  // defined, so it stays silent and leaves the failure to the compiler.
  auto diags = Lint(
      "import_python(\"missing.cinc\", \"*\")\n"
      "export_if_last({\"port\": PORT})\n");
  EXPECT_EQ(CountRule(diags, "L001"), 0u);
}

TEST_F(LanguageRulesTest, SingleSymbolImportOfMissingSymbolFires) {
  sources_.Put("lib.cinc", "PORT = 80\n");
  auto diags = Lint(
      "import_python(\"lib.cinc\", \"HOST\")\n"
      "export_if_last({\"h\": HOST})\n");
  EXPECT_EQ(CountRule(diags, "L001"), 1u);  // HOST is not in lib.cinc.
}

TEST_F(LanguageRulesTest, SchemaConstructorResolvesThroughThriftImport) {
  sources_.Put("job.thrift",
               "struct Job { 1: required string name; }\n"
               "enum Tier { HOT = 0, COLD = 1 }\n");
  auto diags = Lint(
      "import_thrift(\"job.thrift\")\n"
      "export_if_last({\"j\": Job(name=\"x\"), \"t\": Tier.HOT})\n");
  EXPECT_EQ(CountRule(diags, "L001"), 0u);
}

// ---- L002 use-before-def ----------------------------------------------------

TEST_F(LanguageRulesTest, UseBeforeDefFires) {
  auto diags = Lint("export(\"v\", VAL)\nVAL = 1\n");
  ASSERT_EQ(CountRule(diags, "L002"), 1u);
  EXPECT_EQ(FindRule(diags, "L002")->severity, LintSeverity::kError);
  EXPECT_NE(FindRule(diags, "L002")->message.find("line 2"),
            std::string::npos);
}

TEST_F(LanguageRulesTest, UseBeforeDefDoesNotFireInOrder) {
  EXPECT_EQ(CountRule(Lint("VAL = 1\nexport(\"v\", VAL)\n"), "L002"), 0u);
}

TEST_F(LanguageRulesTest, UseBeforeDefDoesNotFireForForwardRefInFunction) {
  // The function body runs after the module finished evaluating LIMIT.
  auto diags = Lint(
      "def scaled(x):\n"
      "    return x * LIMIT\n"
      "LIMIT = 4\n"
      "export_if_last({\"v\": scaled(2)})\n");
  EXPECT_EQ(CountRule(diags, "L002"), 0u);
  EXPECT_EQ(CountRule(diags, "L001"), 0u);
}

// ---- L003 unused-binding ----------------------------------------------------

TEST_F(LanguageRulesTest, UnusedBindingFires) {
  auto diags = Lint("leftover = 42\nexport_if_last({\"ok\": True})\n");
  ASSERT_EQ(CountRule(diags, "L003"), 1u);
  EXPECT_EQ(FindRule(diags, "L003")->severity, LintSeverity::kWarning);
}

TEST_F(LanguageRulesTest, UnusedBindingDoesNotFireWhenRead) {
  EXPECT_EQ(
      CountRule(Lint("port = 80\nexport_if_last({\"port\": port})\n"), "L003"),
      0u);
}

TEST_F(LanguageRulesTest, UnusedBindingSkipsIncModuleGlobals) {
  // A .cinc's globals are its export surface — other modules import them.
  EXPECT_EQ(CountRule(Lint("PORT = 80\n", "lib/ports.cinc"), "L003"), 0u);
}

TEST_F(LanguageRulesTest, UnusedBindingSkipsUnderscoreNames) {
  EXPECT_EQ(
      CountRule(Lint("_scratch = 1\nexport_if_last({\"ok\": True})\n"), "L003"),
      0u);
}

TEST_F(LanguageRulesTest, UnusedLocalInFunctionFires) {
  auto diags = Lint(
      "def f():\n"
      "    dead = 99\n"
      "    return 1\n"
      "export_if_last({\"v\": f()})\n");
  ASSERT_EQ(CountRule(diags, "L003"), 1u);
  EXPECT_EQ(FindRule(diags, "L003")->line, 2);
}

// ---- L004 unused-import -----------------------------------------------------

TEST_F(LanguageRulesTest, UnusedImportFires) {
  sources_.Put("lib.cinc", "PORT = 80\n");
  auto diags = Lint(
      "import_python(\"lib.cinc\", \"PORT\")\n"
      "export_if_last({\"ok\": True})\n");
  ASSERT_EQ(CountRule(diags, "L004"), 1u);
  EXPECT_EQ(FindRule(diags, "L004")->severity, LintSeverity::kWarning);
}

TEST_F(LanguageRulesTest, UnusedImportDoesNotFireWhenUsed) {
  sources_.Put("lib.cinc", "PORT = 80\n");
  auto diags = Lint(
      "import_python(\"lib.cinc\", \"PORT\")\n"
      "export_if_last({\"port\": PORT})\n");
  EXPECT_EQ(CountRule(diags, "L004"), 0u);
}

TEST_F(LanguageRulesTest, UnusedStarImportFires) {
  sources_.Put("lib.cinc", "PORT = 80\nHOST = \"h\"\n");
  auto diags = Lint(
      "import_python(\"lib.cinc\", \"*\")\n"
      "export_if_last({\"ok\": True})\n");
  EXPECT_EQ(CountRule(diags, "L004"), 1u);
}

// ---- L005 duplicate-dict-key ------------------------------------------------

TEST_F(LanguageRulesTest, DuplicateDictKeyFires) {
  auto diags = Lint("export_if_last({\"a\": 1, \"b\": 2, \"a\": 3})\n");
  ASSERT_EQ(CountRule(diags, "L005"), 1u);
  const LintDiagnostic* diag = FindRule(diags, "L005");
  EXPECT_EQ(diag->severity, LintSeverity::kError);
  EXPECT_NE(diag->message.find("\"a\""), std::string::npos);
}

TEST_F(LanguageRulesTest, DuplicateDictKeyDoesNotFireOnDistinctKeys) {
  EXPECT_EQ(CountRule(Lint("export_if_last({\"a\": 1, \"b\": 2})\n"), "L005"),
            0u);
}

TEST_F(LanguageRulesTest, DuplicateDictKeyDoesNotFireOnComputedKeys) {
  // Computed keys cannot be compared statically.
  auto diags = Lint(
      "k = \"a\"\n"
      "export_if_last({k: 1, \"a\": 2})\n");
  EXPECT_EQ(CountRule(diags, "L005"), 0u);
}

// ---- L006 shadowed-builtin --------------------------------------------------

TEST_F(LanguageRulesTest, ShadowedBuiltinFires) {
  auto diags = Lint("len = 3\nexport_if_last({\"len\": len})\n");
  ASSERT_EQ(CountRule(diags, "L006"), 1u);
  EXPECT_EQ(FindRule(diags, "L006")->severity, LintSeverity::kWarning);
}

TEST_F(LanguageRulesTest, ShadowedBuiltinDoesNotFireOnFreshName) {
  EXPECT_EQ(
      CountRule(Lint("size = 3\nexport_if_last({\"s\": size})\n"), "L006"),
      0u);
}

TEST_F(LanguageRulesTest, ShadowedBuiltinFiresOnParameter) {
  auto diags = Lint(
      "def f(str):\n"
      "    return str\n"
      "export_if_last({\"v\": f(\"x\")})\n");
  EXPECT_EQ(CountRule(diags, "L006"), 1u);
}

// ---- L007 unreachable-code --------------------------------------------------

TEST_F(LanguageRulesTest, UnreachableCodeFires) {
  auto diags = Lint(
      "def f():\n"
      "    return 1\n"
      "    x = 2\n"
      "export_if_last({\"v\": f()})\n");
  ASSERT_EQ(CountRule(diags, "L007"), 1u);
  const LintDiagnostic* diag = FindRule(diags, "L007");
  EXPECT_EQ(diag->severity, LintSeverity::kWarning);
  EXPECT_EQ(diag->line, 3);
}

TEST_F(LanguageRulesTest, UnreachableCodeDoesNotFireAfterConditionalReturn) {
  auto diags = Lint(
      "def f(x):\n"
      "    if x:\n"
      "        return 1\n"
      "    return 2\n"
      "export_if_last({\"v\": f(0)})\n");
  EXPECT_EQ(CountRule(diags, "L007"), 0u);
}

TEST_F(LanguageRulesTest, UnreachableCodeFiresAfterBreak) {
  auto diags = Lint(
      "total = 0\n"
      "for x in range(3):\n"
      "    break\n"
      "    total = total + x\n"
      "export_if_last({\"t\": total})\n");
  EXPECT_EQ(CountRule(diags, "L007"), 1u);
}

// ---- L008 call-arity --------------------------------------------------------

TEST_F(LanguageRulesTest, CallArityFiresOnTooManyPositionals) {
  auto diags = Lint(
      "def f(a, b=2):\n"
      "    return a + b\n"
      "export_if_last({\"v\": f(1, 2, 3)})\n");
  ASSERT_EQ(CountRule(diags, "L008"), 1u);
  EXPECT_EQ(FindRule(diags, "L008")->severity, LintSeverity::kError);
}

TEST_F(LanguageRulesTest, CallArityFiresOnUnknownKeyword) {
  auto diags = Lint(
      "def f(a):\n"
      "    return a\n"
      "export_if_last({\"v\": f(a=1, c=2)})\n");
  EXPECT_EQ(CountRule(diags, "L008"), 1u);
}

TEST_F(LanguageRulesTest, CallArityFiresOnMissingRequiredArgument) {
  auto diags = Lint(
      "def f(a, b):\n"
      "    return a + b\n"
      "export_if_last({\"v\": f(1)})\n");
  ASSERT_EQ(CountRule(diags, "L008"), 1u);
  EXPECT_NE(FindRule(diags, "L008")->message.find("'b'"), std::string::npos);
}

TEST_F(LanguageRulesTest, CallArityFiresOnDoubleBoundParameter) {
  auto diags = Lint(
      "def f(a, b=1):\n"
      "    return a + b\n"
      "export_if_last({\"v\": f(1, a=2)})\n");
  EXPECT_EQ(CountRule(diags, "L008"), 1u);
}

TEST_F(LanguageRulesTest, CallArityDoesNotFireOnValidCalls) {
  auto diags = Lint(
      "def f(a, b=2):\n"
      "    return a + b\n"
      "export_if_last({\"u\": f(1), \"v\": f(1, 5), \"w\": f(a=1, b=2)})\n");
  EXPECT_EQ(CountRule(diags, "L008"), 0u);
}

TEST_F(LanguageRulesTest, CallArityChecksImportedFunctions) {
  sources_.Put("lib.cinc",
               "def create_job(name, memory_mb=256):\n"
               "    return {\"name\": name, \"memory_mb\": memory_mb}\n");
  auto diags = Lint(
      "import_python(\"lib.cinc\", \"*\")\n"
      "export_if_last(create_job(name=\"x\", memry_mb=512))\n");
  ASSERT_EQ(CountRule(diags, "L008"), 1u);  // Typo'd keyword.
  EXPECT_NE(FindRule(diags, "L008")->message.find("memry_mb"),
            std::string::npos);
}

TEST_F(LanguageRulesTest, CallArityDoesNotFireAfterReassignment) {
  // The def's signature no longer describes what the name holds.
  auto diags = Lint(
      "def f(a):\n"
      "    return a\n"
      "f = 7\n"
      "export_if_last({\"v\": f})\n");
  EXPECT_EQ(CountRule(diags, "L008"), 0u);
}

// ---- L009 constant-condition ------------------------------------------------

TEST_F(LanguageRulesTest, ConstantTernaryFires) {
  auto diags = Lint("x = 1 if True else 2\nexport_if_last({\"x\": x})\n");
  ASSERT_EQ(CountRule(diags, "L009"), 1u);
  EXPECT_EQ(FindRule(diags, "L009")->severity, LintSeverity::kWarning);
}

TEST_F(LanguageRulesTest, ConstantIfFires) {
  auto diags = Lint(
      "x = 0\n"
      "if False:\n"
      "    x = 1\n"
      "export_if_last({\"x\": x})\n");
  EXPECT_EQ(CountRule(diags, "L009"), 1u);
}

TEST_F(LanguageRulesTest, ConstantConditionDoesNotFireOnDynamicCondition) {
  auto diags = Lint(
      "flag = len(\"ab\") > 1\n"
      "x = 1 if flag else 2\n"
      "export_if_last({\"x\": x})\n");
  EXPECT_EQ(CountRule(diags, "L009"), 0u);
}

// ---- Gating rules -----------------------------------------------------------

class GatingRulesTest : public ::testing::Test {
 protected:
  std::vector<LintDiagnostic> Lint(const std::string& json) {
    ConfigLint lint;
    return lint.LintGatekeeper("gatekeeper/P.json", json);
  }
};

// ---- G001 contradictory-restraints -----------------------------------------

TEST_F(GatingRulesTest, ContradictionFires) {
  auto diags = Lint(R"({"project": "P", "rules": [{
      "pass_probability": 1.0,
      "restraints": [
        {"type": "country", "params": {"countries": ["US"]}},
        {"type": "country", "negate": true, "params": {"countries": ["US"]}}
      ]}]})");
  ASSERT_EQ(CountRule(diags, "G001"), 1u);
  EXPECT_EQ(FindRule(diags, "G001")->severity, LintSeverity::kError);
}

TEST_F(GatingRulesTest, ContradictionDoesNotFireOnDifferentParams) {
  auto diags = Lint(R"({"project": "P", "rules": [{
      "pass_probability": 1.0,
      "restraints": [
        {"type": "country", "params": {"countries": ["US"]}},
        {"type": "country", "negate": true, "params": {"countries": ["CA"]}}
      ]}]})");
  EXPECT_EQ(CountRule(diags, "G001"), 0u);
}

// ---- G002 subsumed-rule -----------------------------------------------------

TEST_F(GatingRulesTest, SubsumedRuleFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [{"type": "always"}]},
      {"pass_probability": 1.0, "restraints": [{"type": "employee"}]}]})");
  ASSERT_EQ(CountRule(diags, "G002"), 1u);
  EXPECT_EQ(FindRule(diags, "G002")->severity, LintSeverity::kWarning);
}

TEST_F(GatingRulesTest, SubsumedRuleDoesNotFireBehindPartialRollout) {
  // 10% sampling: later rules still see the remaining users... no — a
  // non-matching user falls through only if the conjunction fails, but an
  // always-true conjunction at p<1 still consumes every user (the die is
  // cast once). Semantically later rules ARE dead, but flagging staged
  // rollouts (1% → 10% → 100%) would warn on the paper's own workflow, so
  // the rule keys on p == 1.0 only.
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 0.1, "restraints": [{"type": "always"}]},
      {"pass_probability": 1.0, "restraints": [{"type": "employee"}]}]})");
  EXPECT_EQ(CountRule(diags, "G002"), 0u);
}

// ---- G003 dead-rule ---------------------------------------------------------

TEST_F(GatingRulesTest, ZeroProbabilityRuleFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 0.0, "restraints": [{"type": "employee"}]}]})");
  ASSERT_EQ(CountRule(diags, "G003"), 1u);
  EXPECT_EQ(FindRule(diags, "G003")->severity, LintSeverity::kWarning);
}

TEST_F(GatingRulesTest, AlwaysFalseRestraintFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "always", "params": {"value": false}},
        {"type": "employee"}]}]})");
  EXPECT_EQ(CountRule(diags, "G003"), 1u);
}

TEST_F(GatingRulesTest, NegatedFullRangeBucketFires) {
  // NOT hash_range[0,1) passes nobody.
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "hash_range", "negate": true,
         "params": {"salt": "s", "lo": 0.0, "hi": 1.0}}]}]})");
  EXPECT_EQ(CountRule(diags, "G003"), 1u);
}

TEST_F(GatingRulesTest, DeadRuleDoesNotFireOnLiveRule) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 0.5, "restraints": [{"type": "employee"}]}]})");
  EXPECT_EQ(CountRule(diags, "G003"), 0u);
}

// ---- G004 unknown-restraint-type -------------------------------------------

TEST_F(GatingRulesTest, UnknownRestraintTypeFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [{"type": "no_such_thing"}]}]})");
  ASSERT_EQ(CountRule(diags, "G004"), 1u);
  EXPECT_EQ(FindRule(diags, "G004")->severity, LintSeverity::kError);
}

TEST_F(GatingRulesTest, UnknownRestraintTypeDoesNotFireOnBuiltins) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "employee"}, {"type": "laser",
         "params": {"project": "x", "threshold": 0.5}}]}]})");
  EXPECT_EQ(CountRule(diags, "G004"), 0u);
}

// ---- G005 duplicate-restraint ----------------------------------------------

TEST_F(GatingRulesTest, DuplicateRestraintFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "country", "params": {"countries": ["US"]}},
        {"type": "country", "params": {"countries": ["US"]}}]}]})");
  ASSERT_EQ(CountRule(diags, "G005"), 1u);
  EXPECT_EQ(FindRule(diags, "G005")->severity, LintSeverity::kWarning);
}

TEST_F(GatingRulesTest, DuplicateRestraintDoesNotFireAcrossRules) {
  // The same restraint in two different rules is normal staged-rollout shape.
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 0.1, "restraints": [
        {"type": "country", "params": {"countries": ["US"]}}]},
      {"pass_probability": 1.0, "restraints": [
        {"type": "country", "params": {"countries": ["US"]}},
        {"type": "employee"}]}]})");
  EXPECT_EQ(CountRule(diags, "G005"), 0u);
}

// ---- G006 vacuous-bucket ----------------------------------------------------

TEST_F(GatingRulesTest, VacuousIdModBucketFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "id_mod", "params": {"mod": 100, "lo": 0, "hi": 100}}]}]})");
  ASSERT_EQ(CountRule(diags, "G006"), 1u);
  EXPECT_EQ(FindRule(diags, "G006")->severity, LintSeverity::kWarning);
}

TEST_F(GatingRulesTest, VacuousHashRangeBucketFires) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "hash_range",
         "params": {"salt": "s", "lo": 0.0, "hi": 1.0}}]}]})");
  EXPECT_EQ(CountRule(diags, "G006"), 1u);
}

TEST_F(GatingRulesTest, VacuousBucketDoesNotFireOnRealSlice) {
  auto diags = Lint(R"({"project": "P", "rules": [
      {"pass_probability": 1.0, "restraints": [
        {"type": "id_mod", "params": {"mod": 100, "lo": 0, "hi": 10}},
        {"type": "hash_range",
         "params": {"salt": "s", "lo": 0.0, "hi": 0.5}}]}]})");
  EXPECT_EQ(CountRule(diags, "G006"), 0u);
}

// ---- Driver behavior --------------------------------------------------------

TEST(ConfigLintTest, LintFileDispatchesByPathConvention) {
  ConfigLint lint;
  // CSL source gets language rules.
  EXPECT_EQ(lint.LintFile("a.cconf", "export_if_last({\"p\": MISSING})\n")
                .size(),
            1u);
  // Gatekeeper JSON gets gating rules.
  auto gk = lint.LintFile("gatekeeper/P.json",
                          R"({"project": "P", "rules": [
                              {"pass_probability": 0.0,
                               "restraints": [{"type": "employee"}]}]})");
  EXPECT_EQ(gk.size(), 1u);
  // Other files are out of scope.
  EXPECT_TRUE(lint.LintFile("traffic/weights.json", "{\"r\": 1}").empty());
  EXPECT_TRUE(lint.LintFile("README.md", "# hi").empty());
}

TEST(ConfigLintTest, MalformedGatekeeperJsonYieldsNoLintFindings) {
  // Broken JSON is the raw validator's finding, not lint's.
  ConfigLint lint;
  EXPECT_TRUE(lint.LintGatekeeper("gatekeeper/P.json", "{nope").empty());
}

TEST(ConfigLintTest, DiagnosticFormatIsStable) {
  LintDiagnostic diag;
  diag.rule_id = "L001";
  diag.severity = LintSeverity::kError;
  diag.file = "a.cconf";
  diag.line = 3;
  diag.message = "'X' is not defined";
  diag.suggestion = "define it";
  EXPECT_EQ(diag.Format(),
            "a.cconf:3: error [L001] 'X' is not defined (fix: define it)");
}

TEST(ConfigLintTest, RuleTableCoversBothFamiliesDistinctly) {
  const auto& rules = ConfigLint::Rules();
  EXPECT_GE(rules.size(), 16u);
  std::set<std::string_view> ids;
  size_t language = 0;
  size_t gating = 0;
  for (const LintRuleInfo& rule : rules) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    if (rule.id[0] == 'L') {
      ++language;
    } else if (rule.id[0] == 'G') {
      ++gating;
    }
  }
  EXPECT_GE(language, 10u);
  EXPECT_GE(gating, 6u);
}

TEST(ConfigLintTest, CleanRealisticConfigIsQuiet) {
  // A config in the shape of the docs' example should produce zero findings.
  InMemorySources sources;
  sources.Put("schemas/job.thrift",
              "struct Job { 1: required string name; "
              "2: optional i32 memory_mb = 256; }\n");
  sources.Put("lib/defaults.cinc",
              "DEFAULT_MEMORY_MB = 256\n"
              "def job_name(tier):\n"
              "    return \"job-\" + tier\n");
  ConfigLint lint(sources.AsReader());
  auto diags = lint.LintSource(
      "jobs.cconf",
      "import_thrift(\"schemas/job.thrift\")\n"
      "import_python(\"lib/defaults.cinc\", \"*\")\n"
      "jobs = {}\n"
      "for tier in [\"hot\", \"warm\"]:\n"
      "    jobs[tier] = Job(name=job_name(tier),\n"
      "                     memory_mb=DEFAULT_MEMORY_MB * 2)\n"
      "assert len(jobs) == 2, \"expected two tiers\"\n"
      "export_if_last(jobs)\n");
  std::string all;
  for (const LintDiagnostic& d : diags) {
    all += d.Format() + "\n";
  }
  EXPECT_TRUE(diags.empty()) << all;
}

}  // namespace
}  // namespace configerator
