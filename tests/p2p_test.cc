#include <gtest/gtest.h>

#include <memory>

#include "src/p2p/vessel.h"

namespace configerator {
namespace {

TEST(VesselMetadataTest, JsonRoundTrip) {
  VesselMetadata meta;
  meta.name = "feed_model";
  meta.version = 7;
  meta.size_bytes = 300 << 20;
  meta.chunk_size = 4 << 20;
  meta.content_hash = VesselPublisher::SyntheticHash("feed_model", 7);
  meta.storage_key = "blob/feed_model/7";
  auto parsed = VesselMetadata::FromJson(meta.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, meta.name);
  EXPECT_EQ(parsed->version, meta.version);
  EXPECT_EQ(parsed->size_bytes, meta.size_bytes);
  EXPECT_EQ(parsed->content_hash, meta.content_hash);
}

TEST(VesselMetadataTest, RejectsMalformed) {
  EXPECT_FALSE(VesselMetadata::FromJson(Json(3)).ok());
  Json missing = Json::MakeObject();
  missing.Set("name", "x");
  EXPECT_FALSE(VesselMetadata::FromJson(missing).ok());
}

class VesselSwarmTest : public ::testing::Test {
 protected:
  void Setup(int regions, int clusters, int servers_per_cluster) {
    net_ = std::make_unique<Network>(&sim_, Topology(regions, clusters,
                                                     servers_per_cluster),
                                     /*seed=*/11);
  }

  std::vector<ServerId> Clients(int n) {
    std::vector<ServerId> all = net_->topology().AllServers();
    all.resize(static_cast<size_t>(n));
    return all;
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
};

TEST_F(VesselSwarmTest, AllClientsComplete) {
  Setup(1, 2, 50);
  ServerId storage{0, 0, 0};
  VesselSwarm swarm(net_.get(), storage, Clients(100), /*content=*/64 << 20,
                    VesselSwarm::Options{}, 1);
  swarm.Start();
  sim_.RunUntilIdle();
  EXPECT_TRUE(swarm.AllComplete());
  EXPECT_EQ(swarm.stats().completed_clients, 100u);
  EXPECT_GT(swarm.stats().last_completion, 0);
}

TEST_F(VesselSwarmTest, PeersCarryMostBytes) {
  Setup(1, 2, 50);
  VesselSwarm swarm(net_.get(), ServerId{0, 0, 0}, Clients(100), 64 << 20,
                    VesselSwarm::Options{}, 2);
  swarm.Start();
  sim_.RunUntilIdle();
  // P2P exists to offload the storage service.
  EXPECT_GT(swarm.stats().bytes_from_peers, swarm.stats().bytes_from_storage);
}

TEST_F(VesselSwarmTest, P2PDisabledHitsStorageOnly) {
  Setup(1, 1, 60);
  VesselSwarm::Options options;
  options.p2p_enabled = false;
  VesselSwarm swarm(net_.get(), ServerId{0, 0, 0}, Clients(50), 32 << 20,
                    options, 3);
  swarm.Start();
  sim_.RunUntilIdle();
  EXPECT_TRUE(swarm.AllComplete());
  EXPECT_EQ(swarm.stats().bytes_from_peers, 0);
  EXPECT_EQ(swarm.stats().bytes_from_storage,
            static_cast<int64_t>(50) * (32 << 20));
}

TEST_F(VesselSwarmTest, P2PFasterThanCentralOnly) {
  Setup(1, 2, 50);
  SimTime p2p_time;
  SimTime central_time;
  {
    Simulator sim;
    Network net(&sim, Topology(1, 2, 50), 11);
    VesselSwarm swarm(&net, ServerId{0, 0, 0},
                      [&] {
                        auto all = net.topology().AllServers();
                        all.resize(80);
                        return all;
                      }(),
                      128 << 20, VesselSwarm::Options{}, 4);
    swarm.Start();
    sim.RunUntilIdle();
    ASSERT_TRUE(swarm.AllComplete());
    p2p_time = swarm.stats().last_completion;
  }
  {
    Simulator sim;
    Network net(&sim, Topology(1, 2, 50), 11);
    VesselSwarm::Options options;
    options.p2p_enabled = false;
    VesselSwarm swarm(&net, ServerId{0, 0, 0},
                      [&] {
                        auto all = net.topology().AllServers();
                        all.resize(80);
                        return all;
                      }(),
                      128 << 20, options, 4);
    swarm.Start();
    sim.RunUntilIdle();
    ASSERT_TRUE(swarm.AllComplete());
    central_time = swarm.stats().last_completion;
  }
  EXPECT_LT(p2p_time, central_time);
}

TEST_F(VesselSwarmTest, LocalityReducesCrossRegionBytes) {
  auto run = [](bool locality) {
    Simulator sim;
    Network net(&sim, Topology(2, 2, 30), 13);
    VesselSwarm::Options options;
    options.locality_aware = locality;
    std::vector<ServerId> clients = net.topology().AllServers();
    VesselSwarm swarm(&net, ServerId{0, 0, 0}, clients, 64 << 20, options, 5);
    swarm.Start();
    sim.RunUntilIdle();
    EXPECT_TRUE(swarm.AllComplete());
    return swarm.stats().cross_region_bytes;
  };
  int64_t with_locality = run(true);
  int64_t without_locality = run(false);
  EXPECT_LT(with_locality, without_locality / 2);
}

TEST_F(VesselSwarmTest, SmallContentSingleChunk) {
  Setup(1, 1, 10);
  VesselSwarm swarm(net_.get(), ServerId{0, 0, 0}, Clients(5), 1000,
                    VesselSwarm::Options{}, 6);
  EXPECT_EQ(swarm.chunk_count(), 1u);
  swarm.Start();
  sim_.RunUntilIdle();
  EXPECT_TRUE(swarm.AllComplete());
}

TEST_F(VesselSwarmTest, CompletionCallbackPerClient) {
  Setup(1, 1, 20);
  VesselSwarm swarm(net_.get(), ServerId{0, 0, 0}, Clients(10), 8 << 20,
                    VesselSwarm::Options{}, 7);
  int done = 0;
  swarm.Start([&](const ServerId&, SimTime) { ++done; });
  sim_.RunUntilIdle();
  EXPECT_EQ(done, 10);
}

TEST_F(VesselSwarmTest, SurvivesPeerChurn) {
  Setup(1, 2, 50);
  std::vector<ServerId> clients = Clients(80);
  VesselSwarm swarm(net_.get(), ServerId{0, 0, 0}, clients, 64 << 20,
                    VesselSwarm::Options{}, 8);
  swarm.Start();

  // Crash a third of the fleet mid-download, then recover and resume them.
  sim_.RunUntil(sim_.now() + 300 * kSimMillisecond);
  std::vector<ServerId> crashed(clients.begin(), clients.begin() + 25);
  for (const ServerId& victim : crashed) {
    net_->failures().Crash(victim);
  }
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);
  // The live majority is unaffected by dead peers (requests fail over).
  EXPECT_GE(swarm.stats().completed_clients, clients.size() - crashed.size() - 5);

  for (const ServerId& victim : crashed) {
    net_->failures().Recover(victim);
    swarm.ResumeClient(victim);
  }
  sim_.RunUntilIdle();
  EXPECT_TRUE(swarm.AllComplete());
}

TEST_F(VesselSwarmTest, DeadPeerFallsBackToStorage) {
  Setup(1, 1, 10);
  std::vector<ServerId> clients = Clients(5);
  VesselSwarm swarm(net_.get(), ServerId{0, 0, 9}, clients, 8 << 20,
                    VesselSwarm::Options{}, 9);
  // Kill every client except one before starting: the survivor can only
  // fetch from storage, but must still finish.
  for (size_t i = 1; i < clients.size(); ++i) {
    net_->failures().Crash(clients[i]);
  }
  swarm.Start();
  sim_.RunUntilIdle();
  EXPECT_EQ(swarm.stats().completed_clients, 1u);
  EXPECT_EQ(swarm.stats().bytes_from_peers, 0);
}

TEST(VesselPublisherTest, PublishWritesMetadataToZeus) {
  Simulator sim;
  Network net(&sim, Topology(1, 1, 20), 17);
  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{0, 0, 1},
                                   ServerId{0, 0, 2}};
  std::vector<ServerId> observers = {ServerId{0, 0, 18}};
  ZeusEnsemble zeus(&net, members, observers);
  VesselPublisher publisher(&net, &zeus, ServerId{0, 0, 5}, ServerId{0, 0, 6});

  bool committed = false;
  publisher.Publish("spam_model", 3, 200 << 20, [&](Result<int64_t> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    committed = true;
  });
  sim.RunUntil(sim.now() + 10 * kSimSecond);
  ASSERT_TRUE(committed);

  // The metadata is readable through the normal subscription path and
  // carries a verifiable hash.
  bool fetched = false;
  zeus.Fetch(ServerId{0, 0, 7}, observers[0],
             VesselPublisher::MetadataKey("spam_model"),
             [&](Result<ZeusValue> r) {
               ASSERT_TRUE(r.ok()) << r.status();
               auto json = Json::Parse(r->value);
               ASSERT_TRUE(json.ok());
               auto meta = VesselMetadata::FromJson(*json);
               ASSERT_TRUE(meta.ok());
               EXPECT_EQ(meta->version, 3);
               EXPECT_EQ(meta->content_hash,
                         VesselPublisher::SyntheticHash("spam_model", 3));
               fetched = true;
             });
  sim.RunUntil(sim.now() + 5 * kSimSecond);
  EXPECT_TRUE(fetched);
}

}  // namespace
}  // namespace configerator
