// Determinism-at-scale regression battery. The DST harness's core guarantee —
// replaying a run's trace reproduces it bit-for-bit — must survive the scale
// machinery: the calendar-queue scheduler, lazy per-link stats, the dense
// watch tables in Zeus, and the strided continuous-invariant sweep. These
// tests run full harness scenarios over 1k- and 10k-server topologies under
// randomized fault plans and assert that (a) the replayed trace is byte-equal
// to the original, (b) every outcome field (violation, commit point, message
// counts, event counts) matches, and (c) clean runs stay clean.
//
// The 10-seed sweeps at both sizes live behind the `scale` ctest
// configuration (see tests/CMakeLists.txt); a single-seed 1k smoke stays in
// tier-1 so every build exercises the path.

#include <gtest/gtest.h>

#include <string>

#include "src/dst/fault_plan.h"
#include "src/dst/harness.h"
#include "src/sim/time.h"

namespace configerator {
namespace {

// A scenario over regions × clusters × servers_per_cluster servers. Vessel
// and Gatekeeper stay off: the scale battery measures the propagation path,
// and the per-proxy swarm/runtime machinery multiplies runtime without adding
// scheduler coverage (dst_test owns that at small scale).
ScenarioOptions ScaleScenario(uint64_t seed, int servers_per_cluster,
                              int proxies, int check_stride) {
  ScenarioOptions options;
  options.seed = seed;
  options.regions = 2;
  options.clusters_per_region = 8;
  options.servers_per_cluster = servers_per_cluster;
  options.members = 5;
  options.observers = 8;
  options.proxies = proxies;
  options.keys = 3;
  options.writes = 10;
  options.chaos_duration = 30 * kSimSecond;
  options.settle = 30 * kSimSecond;
  options.enable_vessel = false;
  options.enable_gatekeeper = false;
  options.check_stride = check_stride;
  return options;
}

RunResult RunOnce(const ScenarioOptions& options) {
  Harness harness(options);
  FaultPlan plan =
      FaultPlan::Random(options.seed * 31 + 7, harness.shape());
  return harness.Run(plan);
}

// Runs the scenario, replays its trace, and asserts the replay is
// indistinguishable from the original run.
void CheckReplayDeterminism(const ScenarioOptions& options) {
  RunResult first = RunOnce(options);
  SCOPED_TRACE("seed " + std::to_string(options.seed) + " servers " +
               std::to_string(options.regions *
                              options.clusters_per_region *
                              options.servers_per_cluster));
  // Randomized plans here are transient faults only: a violation would be a
  // real bug, and the sweep exists to catch one.
  EXPECT_FALSE(first.violated)
      << first.violation.invariant << ": " << first.violation.message;

  Result<RunResult> replayed = Harness::Replay(first.trace);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_EQ(first.trace, replayed->trace) << "trace replay is not bit-exact";
  EXPECT_EQ(first.violated, replayed->violated);
  EXPECT_EQ(first.violation.invariant, replayed->violation.invariant);
  EXPECT_EQ(first.violation.at, replayed->violation.at);
  EXPECT_EQ(first.committed_zxid, replayed->committed_zxid);
  EXPECT_EQ(first.published, replayed->published);
  EXPECT_EQ(first.sim_events, replayed->sim_events);
  EXPECT_EQ(first.net.messages_sent, replayed->net.messages_sent);
  EXPECT_EQ(first.net.delivered, replayed->net.delivered);
  EXPECT_EQ(first.net.dropped, replayed->net.dropped);
  EXPECT_EQ(first.net.bytes_sent, replayed->net.bytes_sent);
}

// Tier-1 smoke: one 1k-server run + replay per build keeps the scale path
// from regressing silently between sweep runs.
TEST(ScaleDeterminismTest, Replay1kSmoke) {
  // 2 × 8 × 64 = 1024 servers.
  CheckReplayDeterminism(ScaleScenario(/*seed=*/11, /*servers_per_cluster=*/64,
                                       /*proxies=*/64, /*check_stride=*/32));
}

// Full sweeps: 10 seeds each at 1k and 10k servers (scale configuration).
TEST(ScaleDeterminismTest, ScaleSweep1k) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CheckReplayDeterminism(ScaleScenario(seed, /*servers_per_cluster=*/64,
                                         /*proxies=*/128,
                                         /*check_stride=*/64));
  }
}

TEST(ScaleDeterminismTest, ScaleSweep10k) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    // 2 × 8 × 640 = 10240 servers.
    CheckReplayDeterminism(ScaleScenario(seed, /*servers_per_cluster=*/640,
                                         /*proxies=*/128,
                                         /*check_stride=*/512));
  }
}

// The stride only thins the continuous sweep; it must not change what the
// harness computes. A strided run and a stride-1 run of the same scenario
// reach the same commit point, publish count, and (clean) outcome — the
// traces differ only in the recorded stride.
TEST(ScaleDeterminismTest, CheckStrideDoesNotChangeOutcome) {
  ScenarioOptions dense = ScaleScenario(/*seed=*/5, /*servers_per_cluster=*/16,
                                        /*proxies=*/16, /*check_stride=*/1);
  ScenarioOptions strided = dense;
  strided.check_stride = 128;

  RunResult a = RunOnce(dense);
  RunResult b = RunOnce(strided);
  EXPECT_FALSE(a.violated) << a.violation.message;
  EXPECT_FALSE(b.violated) << b.violation.message;
  EXPECT_EQ(a.committed_zxid, b.committed_zxid);
  EXPECT_EQ(a.published, b.published);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);
  EXPECT_EQ(a.net.delivered, b.net.delivered);
  EXPECT_EQ(a.net.bytes_sent, b.net.bytes_sent);
}

}  // namespace
}  // namespace configerator
