// Observability layer tests: log-linear histogram bucket geometry and the
// merge property (merge of a random split == one histogram over the union),
// metrics registry identity/roll-up/dump determinism, tracer span lifecycle
// and completeness validation, and the end-to-end commit span tree through
// the whole ConfigManagementStack — every subscribed server must appear as a
// proxy.apply span in the landed commit's trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/core/stack.h"
#include "src/obs/observability.h"

namespace configerator {
namespace {

// ---- Histogram --------------------------------------------------------------

TEST(HistogramTest, EmptyAndSingleSample) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);

  h.Record(3.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.25);
  EXPECT_DOUBLE_EQ(h.max(), 3.25);
  EXPECT_DOUBLE_EQ(h.mean(), 3.25);
  // A single sample: every quantile is that sample (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3.25);
}

TEST(HistogramTest, BucketGeometryContainsItsSamples) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> exp_dist(-8.0, 8.0);
  for (int i = 0; i < 2000; ++i) {
    double v = std::pow(10.0, exp_dist(rng));
    int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 1);
    ASSERT_LT(idx, Histogram::kNumBuckets - 1);
    EXPECT_LE(Histogram::BucketLowerBound(idx), v);
    EXPECT_LE(v, Histogram::BucketUpperBound(idx));
    // Relative bucket width is the advertised quantile error bound.
    double lo = Histogram::BucketLowerBound(idx);
    double hi = Histogram::BucketUpperBound(idx);
    EXPECT_LE((hi - lo) / lo, Histogram::QuantileRelativeError() * 1.0000001);
  }
  // Out-of-range and degenerate samples clamp into under/overflow.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, 60)),
            Histogram::kNumBuckets - 1);
}

// The merge property the fleet roll-up rests on: recording a stream split
// across two histograms and merging equals recording it all into one, and
// quantiles of either are within one bucket's relative error of the exact
// sample quantile.
TEST(HistogramTest, MergeOfRandomSplitMatchesUnionHistogram) {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> exp_dist(-6.0, 3.0);
  const double quantiles[] = {0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0};

  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 200 + static_cast<size_t>(rng() % 800);
    std::vector<double> samples(n);
    for (double& s : samples) {
      s = std::pow(10.0, exp_dist(rng));
    }
    Histogram whole;
    Histogram h1;
    Histogram h2;
    for (double s : samples) {
      whole.Record(s);
      (rng() % 2 == 0 ? h1 : h2).Record(s);
    }
    Histogram merged = h1;
    merged.Merge(h2);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    // Sums accumulate in different orders, so allow float rounding slack.
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * whole.sum());

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (double q : quantiles) {
      // Merge == union, bit for bit (identical fixed bucket layout).
      EXPECT_DOUBLE_EQ(merged.Quantile(q), whole.Quantile(q)) << "q=" << q;
      // And within one bucket's relative error of the exact nearest-rank
      // sample quantile.
      size_t rank = static_cast<size_t>(
          std::ceil(q * static_cast<double>(n)));
      rank = std::clamp<size_t>(rank, 1, n);
      double exact = sorted[rank - 1];
      EXPECT_NEAR(merged.Quantile(q), exact,
                  exact * Histogram::QuantileRelativeError())
          << "trial=" << trial << " q=" << q;
    }
  }
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> exp_dist(-4.0, 4.0);
  Histogram a;
  Histogram b;
  Histogram c;
  for (int i = 0; i < 300; ++i) {
    a.Record(std::pow(10.0, exp_dist(rng)));
    b.Record(std::pow(10.0, exp_dist(rng)));
    c.Record(std::pow(10.0, exp_dist(rng)));
  }

  auto same = [](const Histogram& x, const Histogram& y) {
    if (x.count() != y.count() || x.min() != y.min() || x.max() != y.max()) {
      return false;
    }
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (x.bucket_count(i) != y.bucket_count(i)) {
        return false;
      }
    }
    return true;
  };

  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);
  EXPECT_TRUE(same(ab, ba));

  Histogram ab_c = ab;
  ab_c.Merge(c);
  Histogram bc = b;
  bc.Merge(c);
  Histogram a_bc = a;
  a_bc.Merge(bc);
  EXPECT_TRUE(same(ab_c, a_bc));
}

// ---- Registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, StablePointersPerNameAndLabels) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("hits", {{"server", "0.0.1"}});
  Counter* c2 = registry.GetCounter("hits", {{"server", "0.0.1"}});
  Counter* c3 = registry.GetCounter("hits", {{"server", "0.0.2"}});
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  c1->Inc(5);
  EXPECT_EQ(registry.FindCounter("hits", {{"server", "0.0.1"}})->value(), 5u);
  EXPECT_EQ(registry.FindCounter("hits", {{"server", "0.0.3"}}), nullptr);
  EXPECT_EQ(registry.counter_count(), 2u);

  EXPECT_EQ(MetricsRegistry::CanonicalKey("hits", {{"b", "2"}, {"a", "1"}}),
            "hits{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::CanonicalKey("hits", {}), "hits");
}

TEST(MetricsRegistryTest, MergedHistogramRollsUpAcrossLabelSets) {
  MetricsRegistry registry;
  registry.GetHistogram("lat", {{"server", "a"}})->Record(1.0);
  registry.GetHistogram("lat", {{"server", "b"}})->Record(100.0);
  registry.GetHistogram("other")->Record(9.0);

  Histogram fleet = registry.MergedHistogram("lat");
  EXPECT_EQ(fleet.count(), 2u);
  EXPECT_DOUBLE_EQ(fleet.min(), 1.0);
  EXPECT_DOUBLE_EQ(fleet.max(), 100.0);
  EXPECT_EQ(registry.MergedHistogram("missing").count(), 0u);
}

TEST(MetricsRegistryTest, DumpTextIsDeterministic) {
  auto build = [] {
    MetricsRegistry registry;
    registry.GetCounter("zeta")->Inc(2);
    registry.GetCounter("alpha", {{"server", "1.0.0"}})->Inc(1);
    registry.GetGauge("staleness")->Set(3.5);
    registry.GetHistogram("lat")->Record(0.25);
    return registry.DumpText();
  };
  std::string dump = build();
  EXPECT_EQ(dump, build());
  EXPECT_NE(dump.find("counter alpha{server=1.0.0} 1"), std::string::npos);
  EXPECT_NE(dump.find("counter zeta 2"), std::string::npos);
  EXPECT_NE(dump.find("gauge staleness 3.5"), std::string::npos);
  EXPECT_NE(dump.find("histogram lat count=1"), std::string::npos);
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, SpanLifecycleAndValidation) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("commit step=1", "dst", 100);
  ASSERT_TRUE(root.valid());
  TraceContext child = tracer.StartSpan(root, "tailer.publish", "0.0.14", 150);
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(child.trace_id, root.trace_id);

  // Still open: not complete yet.
  EXPECT_FALSE(tracer.ValidateComplete(root.trace_id).ok());

  tracer.EndSpan(child, 200);
  tracer.EndSpan(root, 250);
  EXPECT_TRUE(tracer.ValidateComplete(root.trace_id).ok());
  EXPECT_EQ(tracer.TraceStartTime(root.trace_id), 100);
  EXPECT_EQ(tracer.trace_count(), 1u);

  const TraceData* trace = tracer.Find(root.trace_id);
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_EQ(trace->spans[1].parent, root.span_id);
}

TEST(TracerTest, InvalidParentProducesNoOrphan) {
  Tracer tracer;
  TraceContext none;
  TraceContext span = tracer.StartSpan(none, "proxy.apply", "0.0.4", 10);
  EXPECT_FALSE(span.valid());
  EXPECT_EQ(tracer.trace_count(), 0u);
  // Ending an invalid context is a harmless no-op.
  tracer.EndSpan(span, 20);
}

TEST(TracerTest, ValidationCatchesNonMonotoneChild) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("t", "h", 100);
  tracer.EndSpan(root, 100);
  // Child starting before its parent breaks sim-time causality.
  TraceContext child = tracer.StartSpan(root, "early", "h", 50);
  tracer.EndSpan(child, 60);
  EXPECT_FALSE(tracer.ValidateComplete(root.trace_id).ok());
}

TEST(TracerTest, PathAndZxidBindings) {
  Tracer tracer;
  EXPECT_FALSE(tracer.PathContext("cfg/a.json").valid());
  EXPECT_FALSE(tracer.ZxidContext(7).valid());

  TraceContext root = tracer.StartTrace("commit", "dst", 5);
  tracer.EndSpan(root, 5);
  tracer.BindPath("cfg/a.json", root);
  tracer.BindZxid(7, root);
  EXPECT_EQ(tracer.PathContext("cfg/a.json").trace_id, root.trace_id);
  EXPECT_EQ(tracer.ZxidContext(7).trace_id, root.trace_id);

  // Rebinding moves the join point (a later commit touching the same path).
  TraceContext root2 = tracer.StartTrace("commit2", "dst", 9);
  tracer.EndSpan(root2, 9);
  tracer.BindPath("cfg/a.json", root2);
  EXPECT_EQ(tracer.PathContext("cfg/a.json").trace_id, root2.trace_id);
}

TEST(TracerTest, DumpTreeIsDeterministicAndIndented) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("commit step=3", "dst", 1000);
  tracer.EndSpan(root, 1000);
  TraceContext pub = tracer.StartSpan(root, "tailer.publish", "0.0.14", 2000);
  tracer.EndSpan(pub, 2500);
  TraceContext apply = tracer.StartSpan(pub, "proxy.apply", "1.0.4", 3000);
  tracer.EndSpan(apply, 3000);

  std::string tree = tracer.DumpTree(root.trace_id);
  EXPECT_EQ(tree, tracer.DumpTree(root.trace_id));
  EXPECT_NE(tree.find("trace 1 \"commit step=3\" start=1000"),
            std::string::npos);
  EXPECT_NE(tree.find("\n  tailer.publish host=0.0.14 start=2000 end=2500"),
            std::string::npos);
  EXPECT_NE(tree.find("\n    proxy.apply host=1.0.4 start=3000 end=3000"),
            std::string::npos);
  EXPECT_EQ(tracer.DumpTree(999), "");
}

// ---- End-to-end: the commit span tree through the whole stack ---------------

std::vector<FileWrite> JobSources() {
  return {
      {"schemas/job.thrift",
       "struct Job { 1: required string name; 2: optional i32 mem = 64; }\n"},
      {"feed/cache.cconf",
       "import_thrift(\"schemas/job.thrift\")\n"
       "export_if_last(Job(name=\"cache\", mem=1024))\n"},
  };
}

TEST(ObsPipelineTest, CommitTraceReachesEverySubscribedServer) {
  ConfigManagementStack stack;
  // One subscriber per (region, cluster): four servers, four proxies.
  std::vector<ServerId> servers = {
      {0, 0, 3}, {0, 1, 3}, {1, 0, 3}, {1, 1, 3}};
  int callbacks_fired = 0;
  for (const ServerId& server : servers) {
    stack.SubscribeServer(server, "feed/cache.json",
                          [&callbacks_fired](const std::string&,
                                             const std::string&,
                                             int64_t) { ++callbacks_fired; });
  }
  stack.RunFor(2 * kSimSecond);

  auto change = stack.ProposeChange("alice", "add cache job", JobSources());
  ASSERT_TRUE(change.ok()) << change.status();
  ASSERT_TRUE(change->trace.valid());
  ASSERT_TRUE(stack.Approve(&*change, "bob").ok());
  auto landed = stack.LandNow(*change);
  ASSERT_TRUE(landed.ok()) << landed.status();
  stack.RunFor(30 * kSimSecond);
  ASSERT_EQ(callbacks_fired, 4);

  // The trace is a complete causal tree: no orphans, every span closed,
  // child starts never precede their parents (monotone sim time).
  Tracer& tracer = stack.obs().tracer;
  uint64_t trace_id = change->trace.trace_id;
  Status complete = tracer.ValidateComplete(trace_id);
  EXPECT_TRUE(complete.ok())
      << complete << "\n" << tracer.DumpTree(trace_id);

  const TraceData* trace = tracer.Find(trace_id);
  ASSERT_NE(trace, nullptr);
  std::set<std::string> names;
  std::set<std::string> apply_hosts;
  std::set<std::string> callback_hosts;
  for (const Span& span : trace->spans) {
    names.insert(span.name);
    if (span.name == "proxy.apply") {
      apply_hosts.insert(span.host);
    }
    if (span.name == "app.callback") {
      callback_hosts.insert(span.host);
    }
  }
  // Every pipeline hop left a span...
  for (const char* hop : {"sandcastle.ci", "land", "tailer.publish",
                          "zeus.leader.push", "zeus.observer.apply",
                          "proxy.apply", "app.callback"}) {
    EXPECT_TRUE(names.count(hop)) << "missing span: " << hop << "\n"
                                  << tracer.DumpTree(trace_id);
  }
  // ...and the tree reaches every subscribed server.
  for (const ServerId& server : servers) {
    EXPECT_TRUE(apply_hosts.count(server.ToString()))
        << "no proxy.apply span on " << server.ToString() << "\n"
        << tracer.DumpTree(trace_id);
    EXPECT_TRUE(callback_hosts.count(server.ToString()))
        << "no app.callback span on " << server.ToString();
  }

  // The registry saw the same story.
  MetricsRegistry& metrics = stack.obs().metrics;
  ASSERT_NE(metrics.FindCounter("landing_landed_total"), nullptr);
  EXPECT_EQ(metrics.FindCounter("landing_landed_total")->value(), 1u);
  ASSERT_NE(metrics.FindCounter("tailer_published_total"), nullptr);
  EXPECT_GE(metrics.FindCounter("tailer_published_total")->value(), 1u);
  ASSERT_NE(metrics.FindCounter("zeus_commits_total"), nullptr);
  EXPECT_GE(metrics.FindCounter("zeus_commits_total")->value(), 1u);
  for (const ServerId& server : servers) {
    const Counter* updates =
        metrics.FindCounter("proxy_updates_total", {{"server", server.ToString()}});
    ASSERT_NE(updates, nullptr) << server.ToString();
    EXPECT_GE(updates->value(), 1u);
  }
  Histogram fleet = metrics.MergedHistogram("proxy_propagation_seconds");
  EXPECT_GE(fleet.count(), 4u);
  EXPECT_GT(fleet.Quantile(0.5), 0.0);
  EXPECT_LT(fleet.Quantile(0.999), 30.0);
}

}  // namespace
}  // namespace configerator
