#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "src/obs/metrics.h"
#include "src/pipeline/ci.h"
#include "src/pipeline/dependency.h"
#include "src/pipeline/landing_strip.h"
#include "src/pipeline/review.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

// ---- Landing strip -------------------------------------------------------------

TEST(LandingStripTest, LandsCleanDiff) {
  Repository repo;
  LandingStrip strip(&repo);
  ProposedDiff diff = MakeProposedDiff(repo, "alice", "add", {{"cfg", "v1"}});
  auto commit = strip.Land(diff);
  ASSERT_TRUE(commit.ok()) << commit.status();
  EXPECT_EQ(*repo.ReadFile("cfg"), "v1");
  EXPECT_EQ(strip.landed(), 1u);
}

TEST(LandingStripTest, NoRebaseNeededForUnrelatedChanges) {
  // The whole point of the landing strip: diff X doesn't conflict with a
  // later-landed diff Y touching different files.
  Repository repo;
  ASSERT_TRUE(repo.Commit("init", "init", {{"a", "1"}, {"b", "1"}}).ok());
  LandingStrip strip(&repo);

  ProposedDiff diff_x = MakeProposedDiff(repo, "alice", "edit a", {{"a", "2"}});
  ProposedDiff diff_y = MakeProposedDiff(repo, "bob", "edit b", {{"b", "2"}});

  // Y lands first; X — based on the same old head — still lands cleanly.
  ASSERT_TRUE(strip.Land(diff_y).ok());
  ASSERT_TRUE(strip.Land(diff_x).ok());
  EXPECT_EQ(*repo.ReadFile("a"), "2");
  EXPECT_EQ(*repo.ReadFile("b"), "2");
}

TEST(LandingStripTest, TrueConflictRejected) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("init", "init", {{"shared", "v1"}}).ok());
  LandingStrip strip(&repo);

  ProposedDiff diff_x = MakeProposedDiff(repo, "alice", "x", {{"shared", "x"}});
  ProposedDiff diff_y = MakeProposedDiff(repo, "bob", "y", {{"shared", "y"}});

  ASSERT_TRUE(strip.Land(diff_y).ok());
  auto conflict = strip.Land(diff_x);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kConflict);
  EXPECT_EQ(strip.conflicts(), 1u);
  EXPECT_EQ(*repo.ReadFile("shared"), "y");

  // After refreshing against the new head, the diff lands.
  ProposedDiff rebased = MakeProposedDiff(repo, "alice", "x2", {{"shared", "x"}});
  EXPECT_TRUE(strip.Land(rebased).ok());
}

TEST(LandingStripTest, CreateCreateConflictDetected) {
  Repository repo;
  LandingStrip strip(&repo);
  ProposedDiff diff_x = MakeProposedDiff(repo, "alice", "x", {{"new", "x"}});
  ProposedDiff diff_y = MakeProposedDiff(repo, "bob", "y", {{"new", "y"}});
  ASSERT_TRUE(strip.Land(diff_x).ok());
  EXPECT_EQ(strip.Land(diff_y).status().code(), StatusCode::kConflict);
}

TEST(LandingStripTest, DeleteDeleteIsConflict) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("init", "init", {{"gone", "v"}}).ok());
  LandingStrip strip(&repo);
  ProposedDiff diff_x =
      MakeProposedDiff(repo, "alice", "del", {{"gone", std::nullopt}});
  ProposedDiff diff_y =
      MakeProposedDiff(repo, "bob", "del", {{"gone", std::nullopt}});
  ASSERT_TRUE(strip.Land(diff_x).ok());
  // The second deleter's base no longer matches (file absent now).
  EXPECT_EQ(strip.Land(diff_y).status().code(), StatusCode::kConflict);
}

TEST(LandingStripTest, SerializationEqualsSequentialApplication) {
  // Property: landing N racing diffs (different files) leaves the repo in
  // the same state as applying them sequentially.
  Repository racing;
  Repository sequential;
  LandingStrip strip(&racing);
  std::vector<ProposedDiff> diffs;
  for (int i = 0; i < 20; ++i) {
    std::string path = "cfg" + std::to_string(i);
    std::string value = "v" + std::to_string(i);
    diffs.push_back(MakeProposedDiff(racing, "author", "m", {{path, value}}));
  }
  // All diffs made against the same (empty) base, landed FCFS.
  for (const ProposedDiff& diff : diffs) {
    ASSERT_TRUE(strip.Land(diff).ok());
    ASSERT_TRUE(sequential.Commit(diff.author, diff.message, diff.writes).ok());
  }
  EXPECT_EQ(racing.ListFiles(), sequential.ListFiles());
  for (const std::string& path : racing.ListFiles()) {
    EXPECT_EQ(*racing.ReadFile(path), *sequential.ReadFile(path));
  }
}

TEST(LandingStripTest, ThreadSafeUnderConcurrentLanders) {
  Repository repo;
  LandingStrip strip(&repo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&strip, &repo, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string path = "t" + std::to_string(t) + "/c" + std::to_string(i);
        ProposedDiff diff = MakeProposedDiff(repo, "tool", "m", {{path, "v"}});
        ASSERT_TRUE(strip.Land(diff).ok());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(repo.file_count(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(strip.landed(), static_cast<uint64_t>(kThreads * kPerThread));
}

// ---- Dependency service ---------------------------------------------------------

TEST(DependencyServiceTest, TracksAndInverts) {
  DependencyService deps;
  deps.UpdateEntry("app.cconf", {"app_port.cinc", "job.thrift"});
  deps.UpdateEntry("firewall.cconf", {"app_port.cinc"});

  auto affected = deps.EntriesAffectedBy({"app_port.cinc"});
  ASSERT_EQ(affected.size(), 2u);
  EXPECT_EQ(affected[0], "app.cconf");
  EXPECT_EQ(affected[1], "firewall.cconf");

  affected = deps.EntriesAffectedBy({"job.thrift"});
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], "app.cconf");
}

TEST(DependencyServiceTest, EntryDependsOnItself) {
  DependencyService deps;
  deps.UpdateEntry("solo.cconf", {});
  auto affected = deps.EntriesAffectedBy({"solo.cconf"});
  ASSERT_EQ(affected.size(), 1u);
}

TEST(DependencyServiceTest, UpdateReplacesOldEdges) {
  DependencyService deps;
  deps.UpdateEntry("e.cconf", {"old.cinc"});
  deps.UpdateEntry("e.cconf", {"new.cinc"});
  EXPECT_TRUE(deps.EntriesAffectedBy({"old.cinc"}).empty());
  EXPECT_EQ(deps.EntriesAffectedBy({"new.cinc"}).size(), 1u);
}

TEST(DependencyServiceTest, RemoveEntry) {
  DependencyService deps;
  deps.UpdateEntry("e.cconf", {"shared.cinc"});
  deps.RemoveEntry("e.cconf");
  EXPECT_TRUE(deps.EntriesAffectedBy({"shared.cinc"}).empty());
  EXPECT_EQ(deps.entry_count(), 0u);
}

TEST(DependencyServiceTest, MultipleChangedPathsDeduplicated) {
  DependencyService deps;
  deps.UpdateEntry("e.cconf", {"a.cinc", "b.cinc"});
  auto affected = deps.EntriesAffectedBy({"a.cinc", "b.cinc"});
  EXPECT_EQ(affected.size(), 1u);
}

// ---- Review -----------------------------------------------------------------

TEST(ReviewTest, ApprovalFlow) {
  ReviewService reviews;
  ProposedDiff diff;
  diff.author = "alice";
  int64_t id = reviews.Submit(diff);
  EXPECT_FALSE(reviews.IsApproved(id));
  EXPECT_EQ(reviews.open_reviews(), 1u);
  ASSERT_TRUE(reviews.Approve(id, "bob").ok());
  EXPECT_TRUE(reviews.IsApproved(id));
  EXPECT_EQ(reviews.open_reviews(), 0u);
}

TEST(ReviewTest, SelfReviewForbidden) {
  ReviewService reviews;
  ProposedDiff diff;
  diff.author = "alice";
  int64_t id = reviews.Submit(diff);
  EXPECT_EQ(reviews.Approve(id, "alice").code(), StatusCode::kRejected);
  EXPECT_FALSE(reviews.IsApproved(id));
}

TEST(ReviewTest, RejectionSticks) {
  ReviewService reviews;
  ProposedDiff diff;
  diff.author = "alice";
  int64_t id = reviews.Submit(diff);
  ASSERT_TRUE(reviews.Reject(id, "bob", "looks wrong").ok());
  EXPECT_EQ(reviews.Approve(id, "carol").code(), StatusCode::kRejected);
  auto record = reviews.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->rejection_reason, "looks wrong");
}

TEST(ReviewTest, TestResultsAttached) {
  ReviewService reviews;
  ProposedDiff diff;
  diff.author = "alice";
  int64_t id = reviews.Submit(diff);
  ASSERT_TRUE(reviews.PostTestResults(id, "PASS: 3 entries").ok());
  auto record = reviews.Get(id);
  ASSERT_TRUE(record.ok());
  ASSERT_EQ((*record)->test_results.size(), 1u);
  EXPECT_EQ((*record)->test_results[0], "PASS: 3 entries");
}

TEST(ReviewTest, UnknownIdRejected) {
  ReviewService reviews;
  EXPECT_EQ(reviews.Approve(999, "bob").code(), StatusCode::kNotFound);
  EXPECT_EQ(reviews.PostTestResults(999, "x").code(), StatusCode::kNotFound);
  EXPECT_FALSE(reviews.Get(999).ok());
}

// ---- Sandcastle CI ------------------------------------------------------------

class SandcastleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(repo_.Commit("init", "init",
                             {{"port.cinc", "PORT = 80\n"},
                              {"app.cconf",
                               "import_python(\"port.cinc\", \"*\")\n"
                               "export_if_last({\"port\": PORT})\n"}})
                    .ok());
    deps_.UpdateEntry("app.cconf", {"port.cinc"});
  }

  Repository repo_;
  DependencyService deps_;
};

TEST_F(SandcastleTest, PassingDiff) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff =
      MakeProposedDiff(repo_, "alice", "bump port", {{"port.cinc", "PORT = 8080\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
  ASSERT_EQ(report.compiled_entries.size(), 1u);
  EXPECT_EQ(report.compiled_entries[0], "app.cconf");
}

TEST_F(SandcastleTest, BrokenDiffFails) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(repo_, "alice", "break it",
                                       {{"port.cinc", "PORT = undefined_name\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.Summary().find("FAIL"), std::string::npos);
}

TEST_F(SandcastleTest, NewEntryInDiffIsCompiled) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(
      repo_, "alice", "new entry",
      {{"brand_new.cconf", "export_if_last({\"fresh\": True})\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_EQ(report.compiled_entries.size(), 1u);
}

TEST_F(SandcastleTest, UnrelatedChangeCompilesNothing) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff =
      MakeProposedDiff(repo_, "alice", "doc", {{"README", "hello"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed);
  EXPECT_TRUE(report.compiled_entries.empty());
}

TEST_F(SandcastleTest, UnitCacheIsSharedAcrossRunTestsCalls) {
  Sandcastle ci(&repo_, &deps_);
  MetricsRegistry metrics;
  ci.set_metrics(&metrics);

  // First run: the digest walk misses both units (entry + imported module),
  // then the evaluating session hash-hits the units the walk just compiled.
  // The entry's whole-entry output is memoized under its closure digest.
  ProposedDiff first =
      MakeProposedDiff(repo_, "alice", "bump", {{"port.cinc", "PORT = 81\n"}});
  EXPECT_TRUE(ci.RunTests(first).passed);
  uint64_t hits_after_first = metrics.GetCounter("csl.unit_cache.hits")->value();
  uint64_t misses_after_first =
      metrics.GetCounter("csl.unit_cache.misses")->value();
  EXPECT_EQ(hits_after_first, 2u);
  EXPECT_EQ(misses_after_first, 2u);
  EXPECT_EQ(metrics.GetCounter("csl.output_cache.hits")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("csl.output_cache.misses")->value(), 1u);

  // Same diff re-validated: the digest walk byte-compares every source
  // against its node memo and the memoized output replays — no unit-cache
  // traffic, no evaluation at all.
  EXPECT_TRUE(ci.RunTests(first).passed);
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.hits")->value(),
            hits_after_first);
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.misses")->value(),
            misses_after_first);
  EXPECT_EQ(metrics.GetCounter("csl.output_cache.hits")->value(), 1u);

  // Editing the module invalidates exactly that unit: the walk recompiles
  // it (one miss) and re-keys the untouched entry (one hit), the closure
  // digest changes so the output memo misses, and the session re-evaluates
  // over hash-hitting units.
  ProposedDiff second =
      MakeProposedDiff(repo_, "alice", "bump", {{"port.cinc", "PORT = 82\n"}});
  EXPECT_TRUE(ci.RunTests(second).passed);
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.hits")->value(),
            hits_after_first + 3);
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.misses")->value(),
            misses_after_first + 1);
  EXPECT_EQ(metrics.GetCounter("csl.output_cache.misses")->value(), 2u);
}

TEST_F(SandcastleTest, OverlayReaderSeesDiffAndRepo) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff =
      MakeProposedDiff(repo_, "a", "m", {{"port.cinc", "PORT = 9\n"}});
  FileReader reader = ci.OverlayReader(diff);
  EXPECT_EQ(*reader("port.cinc"), "PORT = 9\n");       // From the diff.
  EXPECT_NE((*reader("app.cconf")).find("import"), std::string::npos);  // Repo.
  EXPECT_FALSE(reader("missing").ok());
}

TEST_F(SandcastleTest, RawJsonConfigsValidated) {
  Sandcastle ci(&repo_, &deps_);
  // Broken JSON in a .json config fails CI even though nothing compiles it.
  ProposedDiff bad = MakeProposedDiff(repo_, "tool", "m",
                                      {{"traffic/weights.json", "{not json"}});
  CiReport report = ci.RunTests(bad);
  EXPECT_FALSE(report.passed);

  ProposedDiff good = MakeProposedDiff(
      repo_, "tool", "m", {{"traffic/weights.json", "{\"r0\": 0.5}"}});
  EXPECT_TRUE(ci.RunTests(good).passed);
}

TEST_F(SandcastleTest, GatekeeperProjectConfigsValidated) {
  Sandcastle ci(&repo_, &deps_);
  // Parses as JSON but is not a valid project (unknown restraint type).
  ProposedDiff bad = MakeProposedDiff(
      repo_, "tool", "m",
      {{"gatekeeper/X.json",
        R"({"project": "X", "rules": [{"restraints":
            [{"type": "no_such_restraint"}], "pass_probability": 1.0}]})"}});
  CiReport report = ci.RunTests(bad);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("no_such_restraint"), std::string::npos);

  ProposedDiff good = MakeProposedDiff(
      repo_, "tool", "m",
      {{"gatekeeper/X.json",
        R"({"project": "X", "rules": [{"restraints":
            [{"type": "employee"}], "pass_probability": 1.0}]})"}});
  EXPECT_TRUE(ci.RunTests(good).passed);
}

TEST_F(SandcastleTest, CanarySpecConfigsValidated) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff bad = MakeProposedDiff(
      repo_, "tool", "m", {{"feed/x.cconf.canary.json", R"({"phases": []})"}});
  EXPECT_FALSE(ci.RunTests(bad).passed);

  ProposedDiff good = MakeProposedDiff(
      repo_, "tool", "m",
      {{"feed/x.cconf.canary.json",
        R"({"phases": [{"num_servers": 20, "hold_time_s": 60}]})"}});
  EXPECT_TRUE(ci.RunTests(good).passed);
}

TEST_F(SandcastleTest, CustomRawValidator) {
  Sandcastle ci(&repo_, &deps_);
  ci.RegisterRawValidator(
      [](const std::string& path, const std::string& content) -> Status {
        if (path.ends_with(".must-be-short") && content.size() > 10) {
          return InvalidConfigError("too long");
        }
        return OkStatus();
      });
  ProposedDiff bad = MakeProposedDiff(
      repo_, "tool", "m", {{"x.must-be-short", "far far far too long"}});
  EXPECT_FALSE(ci.RunTests(bad).passed);
  ProposedDiff good =
      MakeProposedDiff(repo_, "tool", "m", {{"x.must-be-short", "ok"}});
  EXPECT_TRUE(ci.RunTests(good).passed);
}

TEST_F(SandcastleTest, LintErrorBlocksDiffThatCompiles) {
  Sandcastle ci(&repo_, &deps_);
  // Duplicate dict keys compile fine (last write wins) but almost always
  // mean a botched merge — lint flags them at error severity, so the diff
  // is rejected even though every entry recompiled successfully.
  ProposedDiff bad = MakeProposedDiff(
      repo_, "alice", "merge",
      {{"limits.cconf",
        "export_if_last({\"max_conn\": 100, \"max_conn\": 500})\n"}});
  CiReport report = ci.RunTests(bad);
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(report.failures.empty());  // The compile itself was clean.
  ASSERT_EQ(report.lint_errors(), 1u);
  EXPECT_EQ(report.lint_findings[0].rule_id, "L005");
  EXPECT_NE(report.Summary().find("[L005]"), std::string::npos);
}

TEST_F(SandcastleTest, LintWarningOnlyDiffPasses) {
  Sandcastle ci(&repo_, &deps_);
  // Same shape of diff, but the finding is warning severity (constant
  // ternary condition): advisory, never blocks.
  ProposedDiff warn = MakeProposedDiff(
      repo_, "alice", "tweak",
      {{"limits.cconf",
        "max_conn = 100 if True else 500\n"
        "export_if_last({\"max_conn\": max_conn})\n"}});
  CiReport report = ci.RunTests(warn);
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_EQ(report.lint_errors(), 0u);
  ASSERT_EQ(report.lint_warnings(), 1u);
  EXPECT_EQ(report.lint_findings[0].rule_id, "L009");
  // The warning still reaches reviewers through the summary.
  EXPECT_NE(report.Summary().find("[L009]"), std::string::npos);
}

TEST_F(SandcastleTest, StrictLintPromotesWarningsToBlocking) {
  Sandcastle ci(&repo_, &deps_);
  ci.set_strict_lint(true);
  ProposedDiff warn = MakeProposedDiff(
      repo_, "alice", "tweak",
      {{"limits.cconf",
        "max_conn = 100 if True else 500\n"
        "export_if_last({\"max_conn\": max_conn})\n"}});
  EXPECT_FALSE(ci.RunTests(warn).passed);
}

TEST_F(SandcastleTest, LintResolvesImportsThroughOverlay) {
  Sandcastle ci(&repo_, &deps_);
  // The .cconf references a name defined by a .cinc added in the SAME diff:
  // lint must resolve the import through the overlay, not repo head.
  ProposedDiff diff = MakeProposedDiff(
      repo_, "alice", "new pair",
      {{"tiers.cinc", "TIERS = [\"hot\", \"cold\"]\n"},
       {"tiers.cconf",
        "import_python(\"tiers.cinc\", \"*\")\n"
        "export_if_last({\"tiers\": TIERS})\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_TRUE(report.lint_findings.empty());
}

TEST_F(SandcastleTest, GatekeeperContradictionBlocksLanding) {
  Sandcastle ci(&repo_, &deps_);
  // Valid as a project (raw validator passes) but the conjunction can never
  // match anyone — lint's G001 catches what schema validation cannot.
  ProposedDiff bad = MakeProposedDiff(
      repo_, "alice", "gate",
      {{"gatekeeper/rollout.json",
        R"({"project": "rollout", "rules": [{"pass_probability": 1.0,
            "restraints": [
              {"type": "employee"},
              {"type": "employee", "negate": true}]}]})"}});
  CiReport report = ci.RunTests(bad);
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(report.failures.empty());
  ASSERT_EQ(report.lint_errors(), 1u);
  EXPECT_EQ(report.lint_findings[0].rule_id, "G001");
}

TEST_F(SandcastleTest, DeletedFileInvisibleThroughOverlay) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff =
      MakeProposedDiff(repo_, "a", "del", {{"port.cinc", std::nullopt}});
  FileReader reader = ci.OverlayReader(diff);
  EXPECT_FALSE(reader("port.cinc").ok());
  // And CI catches the now-broken dependent entry.
  CiReport report = ci.RunTests(diff);
  EXPECT_FALSE(report.passed);
}

// ---- Symbol-level dependency edges ------------------------------------------

TEST(DependencySymbolsTest, SoundSlicePrunesUnrelatedDependents) {
  DependencyService deps;
  deps.UpdateEntry("app.cconf", {"shared.cinc"});
  deps.UpdateEntry("web.cconf", {"shared.cinc"});
  deps.UpdateEntrySymbols("app.cconf", {{"shared.cinc", {"APP_PORT"}}},
                          /*sound=*/true);
  deps.UpdateEntrySymbols("web.cconf", {{"shared.cinc", {"WEB_PORT"}}},
                          /*sound=*/true);

  auto affected = deps.EntriesAffectedBySymbols("shared.cinc", {"APP_PORT"});
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], "app.cconf");
  // File-level view still returns both.
  EXPECT_EQ(deps.EntriesAffectedBy({"shared.cinc"}).size(), 2u);
}

TEST(DependencySymbolsTest, UnsoundSliceFallsBackToFileLevel) {
  DependencyService deps;
  deps.UpdateEntry("app.cconf", {"shared.cinc"});
  deps.UpdateEntrySymbols("app.cconf", {{"shared.cinc", {"APP_PORT"}}},
                          /*sound=*/false);
  // Slice is unsound (a dynamic import somewhere): never prune.
  EXPECT_EQ(deps.EntriesAffectedBySymbols("shared.cinc", {"OTHER"}).size(), 1u);
}

TEST(DependencySymbolsTest, MissingSliceFallsBackToFileLevel) {
  DependencyService deps;
  deps.UpdateEntry("app.cconf", {"shared.cinc"});
  EXPECT_EQ(deps.EntriesAffectedBySymbols("shared.cinc", {"ANY"}).size(), 1u);
}

TEST(DependencySymbolsTest, SurfaceGrowthAffectsStarImporters) {
  DependencyService deps;
  deps.UpdateEntry("star.cconf", {"shared.cinc"});
  deps.UpdateEntry("narrow.cconf", {"shared.cinc"});
  deps.UpdateEntrySymbols("star.cconf", {{"shared.cinc", {"*", "A"}}},
                          /*sound=*/true);
  deps.UpdateEntrySymbols("narrow.cconf", {{"shared.cinc", {"A"}}},
                          /*sound=*/true);
  // A new symbol appeared ("*"): star importers can be shadowed, narrow
  // imports cannot.
  auto affected = deps.EntriesAffectedBySymbols("shared.cinc", {"*"});
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], "star.cconf");
}

TEST(DependencySymbolsTest, SymbolFanIn) {
  DependencyService deps;
  deps.UpdateEntry("a.cconf", {"shared.cinc"});
  deps.UpdateEntry("b.cconf", {"shared.cinc"});
  deps.UpdateEntry("c.cconf", {"shared.cinc"});
  deps.UpdateEntrySymbols("a.cconf", {{"shared.cinc", {"PORT"}}}, true);
  deps.UpdateEntrySymbols("b.cconf", {{"shared.cinc", {"HOST"}}}, true);
  // c has no slice: counts conservatively for every symbol.
  EXPECT_EQ(deps.SymbolFanIn("shared.cinc", "PORT"), 2u);
  EXPECT_EQ(deps.SymbolFanIn("shared.cinc", "HOST"), 2u);
  EXPECT_EQ(deps.SymbolFanIn("shared.cinc", "UNUSED"), 1u);
}

// ---- Reverse-closure re-analysis --------------------------------------------

class ClosureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_
            .Commit("init", "init",
                    {{"schemas/job.thrift",
                      "struct Job {\n"
                      "  1: required string name;\n"
                      "  2: optional i32 memory_mb = 256;\n"
                      "}\n"},
                     {"flags.cinc", "ENABLE_BONUS = False\nBONUS = 512\n"},
                     {"worker.cconf",
                      "import_thrift(\"schemas/job.thrift\")\n"
                      "import_python(\"flags.cinc\", \"*\")\n"
                      "j = Job(name=\"worker\")\n"
                      "if ENABLE_BONUS:\n"
                      "    j.memory_mb = BONUS\n"
                      "export_if_last(j)\n"}})
            .ok());
    deps_.UpdateEntry("worker.cconf", {"flags.cinc", "schemas/job.thrift"});
  }

  Repository repo_;
  DependencyService deps_;
};

TEST_F(ClosureTest, TypeBrokenUntouchedDependentBlocks) {
  // The diff only edits flags.cinc. The concrete compile of worker.cconf
  // still succeeds (ENABLE_BONUS stays False, so the bad branch never
  // runs) — but the abstract re-analysis of the untouched dependent sees
  // BONUS flow into an i32 field as a string and blocks the diff.
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(
      repo_, "alice", "rename bonus",
      {{"flags.cinc", "ENABLE_BONUS = False\nBONUS = \"none\"\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_FALSE(report.passed);
  EXPECT_TRUE(report.failures.empty());  // Every entry still compiles.
  ASSERT_EQ(report.reanalyzed_entries.size(), 1u);
  EXPECT_EQ(report.reanalyzed_entries[0], "worker.cconf");
  bool t010 = false;
  for (const LintDiagnostic& d : report.lint_findings) {
    t010 = t010 || (d.rule_id == "T010" && d.file == "worker.cconf");
  }
  EXPECT_TRUE(t010) << report.Summary();
}

TEST_F(ClosureTest, HarmlessEditToSharedFilePasses) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(
      repo_, "alice", "bigger bonus",
      {{"flags.cinc", "ENABLE_BONUS = False\nBONUS = 1024\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
}

TEST_F(ClosureTest, SymbolSlicePrunesReanalysis) {
  // worker.cconf reads neither symbol of misc.cinc; with a sound slice the
  // closure drops it entirely.
  deps_.UpdateEntry("worker.cconf",
                    {"flags.cinc", "schemas/job.thrift", "misc.cinc"});
  deps_.UpdateEntrySymbols(
      "worker.cconf",
      {{"flags.cinc", {"*", "ENABLE_BONUS", "BONUS"}},
       {"schemas/job.thrift", {"*"}}},
      /*sound=*/true);
  ASSERT_TRUE(repo_.Commit("add", "bob", {{"misc.cinc", "UNRELATED = 1\n"}}).ok());
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(repo_, "bob", "tweak unrelated",
                                       {{"misc.cinc", "UNRELATED = 2\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_TRUE(report.reanalyzed_entries.empty());
  EXPECT_EQ(report.pruned_dependents, 1u);
}

TEST_F(ClosureTest, ClosureCapTruncatesWithNotice) {
  for (int i = 0; i < 5; ++i) {
    std::string entry = StrFormat("gen%d.cconf", i);
    deps_.UpdateEntry(entry, {"flags.cinc"});
    ASSERT_TRUE(repo_
                    .Commit("add", "bob",
                            {{entry,
                              "import_python(\"flags.cinc\", \"*\")\n"
                              "export_if_last({\"bonus\": BONUS})\n"}})
                    .ok());
  }
  Sandcastle ci(&repo_, &deps_);
  ci.set_max_closure(2);
  ProposedDiff diff = MakeProposedDiff(
      repo_, "alice", "bump",
      {{"flags.cinc", "ENABLE_BONUS = False\nBONUS = 256\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.closure_truncated);
  EXPECT_EQ(report.reanalyzed_entries.size(), 2u);
  EXPECT_NE(report.Summary().find("closure truncated"), std::string::npos);
}

TEST(DiffChangedSymbolsTest, ReportsEditedSymbolsOnly) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("init", "init",
                          {{"m.cinc", "A = 1\nB = 2\n"}})
                  .ok());
  ProposedDiff diff =
      MakeProposedDiff(repo, "alice", "edit", {{"m.cinc", "A = 5\nB = 2\n"}});
  auto changed = DiffChangedSymbols(repo, diff);
  ASSERT_EQ(changed.count("m.cinc"), 1u);
  ASSERT_TRUE(changed["m.cinc"].has_value());
  EXPECT_EQ(changed["m.cinc"]->count("A"), 1u);
  EXPECT_EQ(changed["m.cinc"]->count("B"), 0u);
}

}  // namespace
}  // namespace configerator
