#include <gtest/gtest.h>

#include "src/canary/canary.h"
#include "src/util/stats.h"

namespace configerator {
namespace {

class CanaryTest : public ::testing::Test {
 protected:
  Status RunCanary(const CanarySpec& spec, ConfigDefect defect,
                   double severity = 1.0, uint64_t seed = 1) {
    CanaryService::Options options;
    options.fleet_size = 200'000;
    CanaryService service(&sim_, options);
    DefectServiceModel::Params params;
    params.severity = severity;
    DefectServiceModel model(defect, params, seed);
    Status verdict = InternalError("canary never finished");
    bool fired = false;
    service.RunTest(spec, &model, [&](Status s) {
      verdict = std::move(s);
      fired = true;
    });
    sim_.RunUntilIdle();
    EXPECT_TRUE(fired);
    EXPECT_EQ(service.active_tests(), 0u);
    return verdict;
  }

  Simulator sim_;
};

TEST_F(CanaryTest, CleanConfigPasses) {
  EXPECT_TRUE(RunCanary(CanarySpec::Default(), ConfigDefect::kNone).ok());
}

TEST_F(CanaryTest, ImmediateErrorCaughtInPhaseOne) {
  Status verdict = RunCanary(CanarySpec::Default(), ConfigDefect::kImmediateError);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kRejected);
  EXPECT_NE(verdict.message().find("phase1"), std::string::npos);
}

TEST_F(CanaryTest, LoadIssueEscapesSmallPhaseOnly) {
  // The §6.4 incident: with only the 20-server phase, a load-sensitive
  // defect is invisible (20 / 200k of the fleet barely moves the needle).
  Status small_only =
      RunCanary(CanarySpec::SmallOnly(), ConfigDefect::kLoadSensitive);
  EXPECT_TRUE(small_only.ok());
}

TEST_F(CanaryTest, LoadIssueCaughtByClusterPhase) {
  Status full = RunCanary(CanarySpec::Default(), ConfigDefect::kLoadSensitive);
  ASSERT_FALSE(full.ok());
  EXPECT_NE(full.message().find("phase2"), std::string::npos);
}

TEST_F(CanaryTest, LatentCrashCaught) {
  Status verdict = RunCanary(CanarySpec::Default(), ConfigDefect::kLatentCrash);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.message().find("crash rate"), std::string::npos);
}

TEST_F(CanaryTest, TakesRoughlyTenMinutes) {
  CanaryService service(&sim_, CanaryService::Options{});
  DefectServiceModel model(ConfigDefect::kNone, DefectServiceModel::Params{}, 2);
  SimTime finished = 0;
  service.RunTest(CanarySpec::Default(), &model,
                  [&](Status) { finished = sim_.now(); });
  sim_.RunUntilIdle();
  // Paper: "it takes about ten minutes to go through automated canary tests".
  EXPECT_GE(finished, 9 * kSimMinute);
  EXPECT_LE(finished, 12 * kSimMinute);
}

TEST_F(CanaryTest, EmptySpecRejected) {
  CanaryService service(&sim_, CanaryService::Options{});
  DefectServiceModel model(ConfigDefect::kNone, DefectServiceModel::Params{}, 3);
  Status verdict = OkStatus();
  service.RunTest(CanarySpec{}, &model, [&](Status s) { verdict = s; });
  sim_.RunUntilIdle();
  EXPECT_FALSE(verdict.ok());
}

TEST_F(CanaryTest, ConcurrentTestsTracked) {
  CanaryService service(&sim_, CanaryService::Options{});
  DefectServiceModel model(ConfigDefect::kNone, DefectServiceModel::Params{}, 4);
  int completed = 0;
  service.RunTest(CanarySpec::Default(), &model, [&](Status) { ++completed; });
  service.RunTest(CanarySpec::Default(), &model, [&](Status) { ++completed; });
  EXPECT_EQ(service.active_tests(), 2u);
  sim_.RunUntilIdle();
  EXPECT_EQ(completed, 2);
}

TEST(DefectModelTest, NamesCoverAllDefects) {
  EXPECT_EQ(ConfigDefectName(ConfigDefect::kNone), "none");
  EXPECT_NE(ConfigDefectName(ConfigDefect::kImmediateError), "?");
  EXPECT_NE(ConfigDefectName(ConfigDefect::kLoadSensitive), "?");
  EXPECT_NE(ConfigDefectName(ConfigDefect::kLatentCrash), "?");
}

TEST(DefectModelTest, ImmediateErrorElevatesCanaryOnly) {
  DefectServiceModel model(ConfigDefect::kImmediateError,
                           DefectServiceModel::Params{}, 5);
  GroupMetrics canary = model.Measure(true, 2000, 200'000);
  GroupMetrics control = model.Measure(false, 198'000, 200'000);
  EXPECT_GT(canary.error_rate, control.error_rate * 3);
}

TEST(DefectModelTest, LoadSensitiveScalesWithDeployedFraction) {
  DefectServiceModel model(ConfigDefect::kLoadSensitive,
                           DefectServiceModel::Params{}, 6);
  GroupMetrics small = model.Measure(true, 20, 200'000);
  GroupMetrics large = model.Measure(true, 100'000, 200'000);
  EXPECT_GT(large.latency_ms, small.latency_ms * 2);
}

// ---- Canary specs as configs (§3.3) -------------------------------------------

TEST(CanarySpecTest, JsonRoundTrip) {
  CanarySpec spec = CanarySpec::Default();
  auto parsed = CanarySpec::FromJson(spec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->phases.size(), spec.phases.size());
  for (size_t i = 0; i < spec.phases.size(); ++i) {
    EXPECT_EQ(parsed->phases[i].name, spec.phases[i].name);
    EXPECT_EQ(parsed->phases[i].num_servers, spec.phases[i].num_servers);
    EXPECT_EQ(parsed->phases[i].hold_time, spec.phases[i].hold_time);
    EXPECT_DOUBLE_EQ(parsed->phases[i].max_error_rate_ratio,
                     spec.phases[i].max_error_rate_ratio);
  }
}

TEST(CanarySpecTest, ParsesHandWrittenSpec) {
  auto json = Json::Parse(R"({
    "phases": [
      {"num_servers": 10, "hold_time_s": 60},
      {"name": "cluster", "num_servers": 5000, "hold_time_s": 300,
       "max_latency_ratio": 1.2}
    ]
  })");
  ASSERT_TRUE(json.ok());
  auto spec = CanarySpec::FromJson(*json);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0].name, "phase1");  // Auto-named.
  EXPECT_EQ(spec->phases[0].hold_time, 60 * kSimSecond);
  EXPECT_EQ(spec->phases[1].num_servers, 5000u);
  EXPECT_DOUBLE_EQ(spec->phases[1].max_latency_ratio, 1.2);
  // Unspecified predicates keep defaults.
  EXPECT_DOUBLE_EQ(spec->phases[1].max_error_rate_ratio, 1.5);
}

TEST(CanarySpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {
           R"({})",
           R"({"phases": []})",
           R"({"phases": [{"num_servers": 0}]})",
           R"({"phases": [{"num_servers": 10, "hold_time_s": -5}]})",
           // Phases must grow.
           R"({"phases": [{"num_servers": 100}, {"num_servers": 20}]})",
           R"({"phases": [{"num_servers": 10, "max_crash_rate": -1}]})",
       }) {
    auto json = Json::Parse(bad);
    ASSERT_TRUE(json.ok()) << bad;
    EXPECT_FALSE(CanarySpec::FromJson(*json).ok()) << bad;
  }
}

TEST(CanarySpecTest, ParsedSpecDrivesService) {
  auto json = Json::Parse(
      R"({"phases": [{"num_servers": 20, "hold_time_s": 30}]})");
  auto spec = CanarySpec::FromJson(*json);
  ASSERT_TRUE(spec.ok());
  Simulator sim;
  CanaryService service(&sim, CanaryService::Options{});
  DefectServiceModel model(ConfigDefect::kNone, DefectServiceModel::Params{}, 9);
  Status verdict = InternalError("pending");
  service.RunTest(*spec, &model, [&](Status s) { verdict = std::move(s); });
  sim.RunUntilIdle();
  EXPECT_TRUE(verdict.ok());
  EXPECT_LT(sim.now(), 2 * kSimMinute);  // 30s hold + deploy, not 10min.
}

TEST(DefectModelTest, NoiseShrinksWithGroupSize) {
  DefectServiceModel::Params params;
  DefectServiceModel model(ConfigDefect::kNone, params, 7);
  OnlineStats small_stats;
  OnlineStats large_stats;
  for (int i = 0; i < 300; ++i) {
    small_stats.Add(model.Measure(true, 20, 200'000).latency_ms);
    large_stats.Add(model.Measure(true, 20'000, 200'000).latency_ms);
  }
  EXPECT_GT(small_stats.stddev(), large_stats.stddev() * 3);
}

}  // namespace
}  // namespace configerator
