#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/topology.h"
#include "src/util/rng.h"

namespace configerator {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Schedule(10, [&] { ++fired; });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunUntilIdle();
  bool fired = false;
  sim.Schedule(-50, [&] { fired = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, ScheduleAtInThePastRunsNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunUntilIdle();
  SimTime when = 0;
  sim.ScheduleAt(10, [&] { when = sim.now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(when, 100);
}

TEST(SimulatorTest, MaxEventsBound) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] { sim.Schedule(1, tick); };
  sim.Schedule(1, tick);
  sim.RunUntilIdle(/*max_events=*/500);
  EXPECT_EQ(sim.processed_events(), 500u);
}

// ---- Topology ---------------------------------------------------------------

TEST(TopologyTest, Counts) {
  Topology topo(2, 3, 100);
  EXPECT_EQ(topo.total_servers(), 600);
  EXPECT_EQ(topo.AllServers().size(), 600u);
  EXPECT_EQ(topo.ServersInCluster(1, 2).size(), 100u);
  EXPECT_TRUE(topo.Contains(ServerId{1, 2, 99}));
  EXPECT_FALSE(topo.Contains(ServerId{2, 0, 0}));
  EXPECT_FALSE(topo.Contains(ServerId{0, 3, 0}));
}

TEST(TopologyTest, FlatIndexRoundTrip) {
  Topology topo(3, 4, 50);
  for (const ServerId& id :
       {ServerId{0, 0, 0}, ServerId{2, 3, 49}, ServerId{1, 2, 25}}) {
    int64_t flat = topo.FlatIndex(id);
    EXPECT_GE(flat, 0);
    EXPECT_LT(flat, topo.total_servers());
    EXPECT_EQ(topo.FromFlatIndex(flat), id);
  }
}

TEST(TopologyTest, LatencyOrdering) {
  Topology topo(2, 2, 10);
  Rng rng(1);
  ServerId a{0, 0, 1};
  SimTime same_cluster = topo.Latency(a, ServerId{0, 0, 2}, rng);
  SimTime same_region = topo.Latency(a, ServerId{0, 1, 2}, rng);
  SimTime cross_region = topo.Latency(a, ServerId{1, 0, 2}, rng);
  EXPECT_LT(same_cluster, same_region);
  EXPECT_LT(same_region, cross_region);
  EXPECT_EQ(topo.Latency(a, a, rng), 0);
}

TEST(TopologyTest, TransmitTimeScalesWithSize) {
  Topology topo(1, 1, 2);
  EXPECT_EQ(topo.TransmitTime(0), 0);
  SimTime small = topo.TransmitTime(1 << 20);
  SimTime large = topo.TransmitTime(100 << 20);
  EXPECT_GT(large, small * 50);
}

TEST(ServerIdTest, Hashable) {
  std::unordered_map<ServerId, int> map;
  map[ServerId{1, 2, 3}] = 1;
  map[ServerId{1, 2, 4}] = 2;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(ServerId{1, 2, 3}), 1);
}

// ---- Network ----------------------------------------------------------------

TEST(NetworkTest, DeliversAfterLatency) {
  Simulator sim;
  Network net(&sim, Topology(2, 2, 10));
  bool delivered = false;
  SimTime arrival = 0;
  net.Send(ServerId{0, 0, 0}, ServerId{1, 0, 0}, 100, [&] {
    delivered = true;
    arrival = sim.now();
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(delivered);
  EXPECT_GE(arrival, 40 * kSimMillisecond);  // Inter-region base latency.
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(NetworkTest, DropsToDownServer) {
  Simulator sim;
  Network net(&sim, Topology(1, 1, 10));
  net.failures().Crash(ServerId{0, 0, 5});
  bool delivered = false;
  net.Send(ServerId{0, 0, 0}, ServerId{0, 0, 5}, 10, [&] { delivered = true; });
  sim.RunUntilIdle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, DropsIfDestinationDiesInFlight) {
  Simulator sim;
  Network net(&sim, Topology(1, 1, 10));
  bool delivered = false;
  ServerId dest{0, 0, 5};
  net.Send(ServerId{0, 0, 0}, dest, 10, [&] { delivered = true; });
  // Crash before the message lands.
  net.failures().Crash(dest);
  sim.RunUntilIdle();
  EXPECT_FALSE(delivered);
}

TEST(NetworkTest, RecoveredServerReceivesAgain) {
  Simulator sim;
  Network net(&sim, Topology(1, 1, 10));
  ServerId dest{0, 0, 3};
  net.failures().Crash(dest);
  net.failures().Recover(dest);
  bool delivered = false;
  net.Send(ServerId{0, 0, 0}, dest, 10, [&] { delivered = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, SendFifoPreservesChannelOrder) {
  // Plain Send is jittered and may reorder; SendFifo must never reorder
  // messages on the same (from, to) channel.
  Simulator sim;
  Network net(&sim, Topology(2, 1, 4), /*seed=*/77);
  ServerId from{0, 0, 0};
  ServerId to{1, 0, 0};  // Cross-region: large jitter.
  std::vector<int> arrivals;
  for (int i = 0; i < 200; ++i) {
    net.SendFifo(from, to, 100, [&arrivals, i] { arrivals.push_back(i); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(arrivals[static_cast<size_t>(i)], i);
  }
}

TEST(NetworkTest, SendFifoChannelsAreIndependent) {
  Simulator sim;
  Network net(&sim, Topology(1, 1, 4), /*seed=*/3);
  // Saturate channel A->B; channel A->C must not be delayed by it.
  ServerId a{0, 0, 0};
  ServerId b{0, 0, 1};
  ServerId c{0, 0, 2};
  for (int i = 0; i < 50; ++i) {
    net.SendFifo(a, b, 1 << 20, [] {});  // Large messages pile up the clock.
  }
  SimTime c_arrival = -1;
  net.SendFifo(a, c, 10, [&] { c_arrival = sim.now(); });
  sim.RunUntilIdle();
  EXPECT_GE(c_arrival, 0);
  EXPECT_LT(c_arrival, 10 * kSimMillisecond);
}

TEST(NetworkTest, CountsBytes) {
  Simulator sim;
  Network net(&sim, Topology(1, 1, 4));
  net.Send(ServerId{0, 0, 0}, ServerId{0, 0, 1}, 1000, [] {});
  net.Send(ServerId{0, 0, 0}, ServerId{0, 0, 2}, 500, [] {});
  sim.RunUntilIdle();
  EXPECT_EQ(net.bytes_sent(), 1500u);
}

// --- Lazy per-link stats ----------------------------------------------------

TEST(NetworkStatsLazyTest, UntouchedLinksAllocateNothing) {
  Simulator sim;
  Network net(&sim, Topology(2, 2, 25));  // 100 servers, 9900 directed links.
  EXPECT_EQ(net.materialized_links(), 0u);
  ServerId a{0, 0, 0};
  ServerId b{1, 1, 3};
  net.Send(a, b, 100, [] {});
  net.Send(a, b, 100, [] {});  // Same link: no new allocation.
  sim.RunUntilIdle();
  EXPECT_EQ(net.materialized_links(), 1u);
  EXPECT_EQ(net.link_stats(a, b).delivered, 2u);
  // Querying a silent link must not materialize it.
  EXPECT_EQ(net.link_stats(b, a).sent, 0u);
  EXPECT_EQ(net.materialized_links(), 1u);
}

// Property: under a seeded barrage of sends, crashes, partitions, and
// probabilistic link faults, the aggregate stats() must exactly equal the sum
// over materialized links for every counter, and exactly the links the test
// itself touched are materialized.
TEST(NetworkStatsLazyTest, AggregateEqualsSumOverMaterializedLinks) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Simulator sim;
    Topology topo(2, 2, 8);  // 32 servers.
    Network net(&sim, topo, seed);
    Rng rng(seed * 977);

    LinkFault chaos;
    chaos.drop_prob = 0.15;
    chaos.dup_prob = 0.10;
    chaos.reorder_prob = 0.20;
    chaos.extra_delay = 2 * kSimMillisecond;
    chaos.extra_delay_jitter = 5 * kSimMillisecond;
    net.SetDefaultFault(chaos);

    std::vector<ServerId> servers = topo.AllServers();
    std::set<std::pair<int64_t, int64_t>> touched;  // Expected materialized.
    uint64_t partition_rule = 0;
    for (int op = 0; op < 600; ++op) {
      uint64_t roll = rng.NextBounded(100);
      ServerId from = servers[rng.NextBounded(servers.size())];
      ServerId to = servers[rng.NextBounded(servers.size())];
      if (from == to) {
        continue;
      }
      if (roll < 70) {
        if (roll % 2 == 0) {
          net.Send(from, to, static_cast<int64_t>(rng.NextBounded(4096)),
                   [] {});
        } else {
          net.SendFifo(from, to, static_cast<int64_t>(rng.NextBounded(4096)),
                       [] {});
        }
        // Every send materializes its link (counted as sent or dropped).
        touched.insert({topo.FlatIndex(from), topo.FlatIndex(to)});
      } else if (roll < 78) {
        net.failures().Crash(from);
      } else if (roll < 88) {
        net.failures().Recover(from);
      } else if (roll < 93 && partition_rule == 0) {
        partition_rule = net.Partition({from}, {to});
      } else if (partition_rule != 0) {
        net.HealPartition(partition_rule);
        partition_rule = 0;
      }
      if (op % 37 == 0) {
        sim.RunUntilIdle(50);  // Interleave deliveries with new faults.
      }
    }
    sim.RunUntilIdle();

    const NetStats& aggregate = net.stats();
    NetStats sum = net.SumLinkStats();
    EXPECT_EQ(aggregate.messages_sent, sum.messages_sent) << "seed " << seed;
    EXPECT_EQ(aggregate.delivered, sum.delivered) << "seed " << seed;
    EXPECT_EQ(aggregate.dropped, sum.dropped) << "seed " << seed;
    EXPECT_EQ(aggregate.delayed, sum.delayed) << "seed " << seed;
    EXPECT_EQ(aggregate.duplicated, sum.duplicated) << "seed " << seed;
    EXPECT_EQ(aggregate.reordered, sum.reordered) << "seed " << seed;
    EXPECT_EQ(net.materialized_links(), touched.size()) << "seed " << seed;
    // Conservation at idle: every accepted delivery (original + duplicate)
    // either ran its handler or was dropped on arrival; `dropped` additionally
    // counts send-time drops, so it closes the ledger from above.
    EXPECT_LE(aggregate.messages_sent + aggregate.duplicated,
              aggregate.delivered + aggregate.dropped)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace configerator
