// Differential fuzz battery: the bytecode VM against the tree-walking
// interpreter, which is the executable specification of CSL semantics.
//
// A seeded generator produces random CSL programs exercising every AST node
// — literals, names, list/dict construction, unary/binary/ternary
// expressions (including short-circuit and/or), attribute and index
// get/set, augmented assignment, if/elif/else, for (with unpacking),
// while, break/continue (inside and outside loops), def with defaults and
// kwargs, nested closures, assert, builtin calls, import special forms and
// exports. Each program compiles through the same ConfigCompiler facade
// twice, once per engine, and the outcomes must match exactly:
//
//   * success/failure must agree,
//   * on success, exported JSON artifacts must be bit-identical,
//   * on failure, the full error (class, origin path, line, message chain)
//     must be byte-identical.
//
// A divergence is ddmin-shrunk over the entry module's statement list
// before being reported, so the failure message carries a minimal
// reproducer, not a 30-statement wall of noise.
//
// The mutation lane bit-flips valid programs and requires the two engines
// to keep agreeing (typically on a parse diagnostic) without crashing —
// that is the case the sanitizer lane (scripts/check.sh --vm) hammers.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/lang/compiler.h"
#include "src/util/ddmin.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

constexpr int kPrograms = 1100;   // ISSUE floor: >= 1k per ctest invocation.
constexpr int kMutations = 256;

// --- Random program generator ----------------------------------------------

struct GenProgram {
  std::map<std::string, std::string> modules;  // Library modules.
  std::vector<std::string> entry_stmts;        // entry.cconf, one stmt each.

  std::map<std::string, std::string> Files() const {
    std::map<std::string, std::string> files = modules;
    std::string entry;
    for (const std::string& stmt : entry_stmts) {
      entry += stmt;
    }
    files["entry.cconf"] = entry;
    return files;
  }
};

class ProgGen {
 public:
  explicit ProgGen(uint64_t seed) : rng_(seed) {}

  GenProgram Generate() {
    GenProgram program;
    bool with_lib = rng_.NextBool(0.4);
    if (with_lib) {
      std::vector<std::string> lib_stmts;
      lib_stmts.push_back("LIB0 = " + Literal() + "\n");
      vars_ = {"LIB0"};
      fns_.clear();
      int n = 2 + static_cast<int>(rng_.NextBounded(4));
      for (int i = 0; i < n; ++i) {
        lib_stmts.push_back(Stmt(0, 0, false));
      }
      std::string lib;
      for (const std::string& stmt : lib_stmts) {
        lib += stmt;
      }
      program.modules["lib.cinc"] = lib;
      lib_vars_ = vars_;
      lib_fns_ = fns_;
    }

    vars_.clear();
    fns_.clear();
    if (with_lib) {
      switch (rng_.NextBounded(4)) {
        case 0:
          program.entry_stmts.push_back("import_python(\"lib.cinc\")\n");
          vars_ = lib_vars_;
          fns_ = lib_fns_;
          break;
        case 1: {
          // Single-symbol import.
          if (!lib_vars_.empty() && rng_.NextBool(0.8)) {
            const std::string& symbol =
                lib_vars_[rng_.NextBounded(lib_vars_.size())];
            program.entry_stmts.push_back(
                "import_python(\"lib.cinc\", \"" + symbol + "\")\n");
            vars_.push_back(symbol);
          } else {
            program.entry_stmts.push_back(
                "import_python(\"lib.cinc\", \"no_such_symbol\")\n");
          }
          break;
        }
        case 2:
          program.entry_stmts.push_back(
              "import_python(\"lib.cinc\", \"*\")\n");
          vars_ = lib_vars_;
          fns_ = lib_fns_;
          break;
        default:
          // Import of a missing module: error in both engines.
          if (rng_.NextBool(0.1)) {
            program.entry_stmts.push_back(
                "import_python(\"missing.cinc\")\n");
          } else {
            program.entry_stmts.push_back("import_python(\"lib.cinc\")\n");
            vars_ = lib_vars_;
            fns_ = lib_fns_;
          }
          break;
      }
    }

    program.entry_stmts.push_back("v0 = " + Literal() + "\n");
    vars_.push_back("v0");
    int n = 3 + static_cast<int>(rng_.NextBounded(7));
    for (int i = 0; i < n; ++i) {
      program.entry_stmts.push_back(Stmt(0, 0, false));
    }
    program.entry_stmts.push_back(ExportStmt());
    return program;
  }

 private:
  std::string Indent(int level) { return std::string(4 * level, ' '); }

  std::string FreshVar() {
    return StrFormat("v%d", next_id_++);
  }

  std::string Literal() {
    switch (rng_.NextBounded(6)) {
      case 0:
        return StrFormat("%d", static_cast<int>(rng_.NextBounded(40)));
      case 1: {
        static const char* kDoubles[] = {"0.5", "1.25", "2.0", "3.75", "0.125"};
        return kDoubles[rng_.NextBounded(5)];
      }
      case 2: {
        static const char* kStrings[] = {"\"a\"", "\"bee\"", "\"cfg\"",
                                         "\"\"", "\"zz\""};
        return kStrings[rng_.NextBounded(5)];
      }
      case 3:
        return rng_.NextBool(0.5) ? "True" : "False";
      case 4:
        return "None";
      default:
        return StrFormat("%d", static_cast<int>(rng_.NextBounded(10)));
    }
  }

  std::string Name() {
    // Rarely an undefined name: both engines must report the same error.
    if (vars_.empty() || rng_.NextBool(0.03)) {
      return "undefined_name";
    }
    return vars_[rng_.NextBounded(vars_.size())];
  }

  std::string Expr(int depth) {
    if (depth <= 0 || rng_.NextBool(0.35)) {
      return rng_.NextBool(0.5) ? Literal() : Name();
    }
    switch (rng_.NextBounded(10)) {
      case 0: {  // Binary operator.
        static const char* kOps[] = {"+",  "-",  "*",  "/",  "//", "%",
                                     "==", "!=", "<",  "<=", ">",  ">=",
                                     "in", "not in", "and", "or"};
        return "(" + Expr(depth - 1) + " " + kOps[rng_.NextBounded(16)] +
               " " + Expr(depth - 1) + ")";
      }
      case 1:  // Unary.
        return rng_.NextBool(0.5) ? "(-" + Expr(depth - 1) + ")"
                                  : "(not " + Expr(depth - 1) + ")";
      case 2:  // List literal.
        return "[" + Expr(depth - 1) + ", " + Expr(depth - 1) + "]";
      case 3:  // Dict literal.
        return "{\"a\": " + Expr(depth - 1) + ", \"b\": " + Expr(depth - 1) +
               "}";
      case 4:  // Index (often in range, sometimes not).
        return "([" + Expr(depth - 1) + ", " + Expr(depth - 1) + "][" +
               StrFormat("%d", static_cast<int>(rng_.NextBounded(3))) + "])";
      case 5:  // Attribute on a dict literal.
        return "({\"k\": " + Expr(depth - 1) + "}.k)";
      case 6:  // Ternary.
        return "(" + Expr(depth - 1) + " if " + Expr(depth - 1) + " else " +
               Expr(depth - 1) + ")";
      case 7:
        return BuiltinCall(depth);
      case 8:
        return UserCall(depth);
      default:
        return Literal();
    }
  }

  std::string BuiltinCall(int depth) {
    switch (rng_.NextBounded(8)) {
      case 0:
        return "len(" + Expr(depth - 1) + ")";
      case 1:
        return "str(" + Expr(depth - 1) + ")";
      case 2:
        return "abs(" + Expr(depth - 1) + ")";
      case 3:
        return "sorted([" + Expr(depth - 1) + ", " + Expr(depth - 1) + "])";
      case 4:
        return "min(" + Expr(depth - 1) + ", " + Expr(depth - 1) + ")";
      case 5:
        return "max(" + Expr(depth - 1) + ", " + Expr(depth - 1) + ")";
      case 6:
        return "keys({\"x\": " + Expr(depth - 1) + "})";
      default:
        return "int(" + Expr(depth - 1) + ")";
    }
  }

  struct Fn {
    std::string name;
    int params = 1;
    bool has_default = false;
    std::string kw_name;
  };

  std::string UserCall(int depth) {
    if (fns_.empty()) {
      return BuiltinCall(depth);
    }
    const Fn& fn = fns_[rng_.NextBounded(fns_.size())];
    // Occasionally a wrong-arity call: binding errors must match too.
    if (rng_.NextBool(0.04)) {
      return fn.name + "(" + Expr(depth - 1) + ", " + Expr(depth - 1) + ", " +
             Expr(depth - 1) + ", " + Expr(depth - 1) + ")";
    }
    if (fn.has_default) {
      switch (rng_.NextBounded(3)) {
        case 0:
          return fn.name + "(" + Expr(depth - 1) + ")";
        case 1:
          return fn.name + "(" + Expr(depth - 1) + ", " + Expr(depth - 1) +
                 ")";
        default:
          return fn.name + "(" + Expr(depth - 1) + ", " + fn.kw_name + "=" +
                 Expr(depth - 1) + ")";
      }
    }
    std::string call = fn.name + "(";
    for (int i = 0; i < fn.params; ++i) {
      call += (i > 0 ? ", " : "") + Expr(depth - 1);
    }
    return call + ")";
  }

  // One statement, possibly a multi-line block, at `indent`.
  std::string Stmt(int indent, int loop_depth, bool in_fn) {
    int pick = static_cast<int>(rng_.NextBounded(20));
    switch (pick) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Fresh assignment.
        std::string var = FreshVar();
        std::string stmt = Indent(indent) + var + " = " + Expr(2) + "\n";
        vars_.push_back(var);
        return stmt;
      }
      case 4: {  // Reassignment or augmented assignment.
        std::string target = Name();
        static const char* kAug[] = {"+=", "-=", "*=", "/="};
        if (rng_.NextBool(0.5)) {
          return Indent(indent) + target + " " + kAug[rng_.NextBounded(4)] +
                 " " + Expr(1) + "\n";
        }
        return Indent(indent) + target + " = " + Expr(2) + "\n";
      }
      case 5: {  // Container mutation through an index/attr target.
        std::string var = FreshVar();
        std::string stmt = Indent(indent) + var + " = {\"n\": " + Expr(1) +
                           ", \"l\": [" + Expr(1) + ", " + Expr(1) + "]}\n";
        vars_.push_back(var);
        if (rng_.NextBool(0.5)) {
          stmt += Indent(indent) + var + "[\"n\"] = " + Expr(1) + "\n";
        } else {
          stmt += Indent(indent) + var + ".l[" +
                  StrFormat("%d", static_cast<int>(rng_.NextBounded(2))) +
                  "] = " + Expr(1) + "\n";
        }
        return stmt;
      }
      case 6:
      case 7: {  // if / elif / else.
        std::string stmt = Indent(indent) + "if " + Expr(2) + ":\n";
        stmt += Block(indent + 1, loop_depth, in_fn);
        if (rng_.NextBool(0.3)) {
          stmt += Indent(indent) + "elif " + Expr(1) + ":\n";
          stmt += Block(indent + 1, loop_depth, in_fn);
        }
        if (rng_.NextBool(0.5)) {
          stmt += Indent(indent) + "else:\n";
          stmt += Block(indent + 1, loop_depth, in_fn);
        }
        return stmt;
      }
      case 8:
      case 9: {  // for loop (bounded; sometimes unpacking, sometimes dict).
        if (indent >= 2) {
          return Indent(indent) + "pass\n";
        }
        std::string var = FreshVar();
        std::string stmt;
        switch (rng_.NextBounded(4)) {
          case 0:
            stmt = Indent(indent) + "for " + var + " in range(" +
                   StrFormat("%d", 1 + static_cast<int>(rng_.NextBounded(6))) +
                   "):\n";
            vars_.push_back(var);
            break;
          case 1:
            stmt = Indent(indent) + "for " + var + " in [" + Expr(1) + ", " +
                   Expr(1) + "]:\n";
            vars_.push_back(var);
            break;
          case 2: {
            std::string var2 = FreshVar();
            stmt = Indent(indent) + "for " + var + ", " + var2 + " in [[" +
                   Expr(1) + ", " + Expr(1) + "], [" + Expr(1) + ", " +
                   Expr(1) + "]]:\n";
            vars_.push_back(var);
            vars_.push_back(var2);
            break;
          }
          default:
            stmt = Indent(indent) + "for " + var + " in {\"a\": 1, \"b\": " +
                   Expr(1) + "}:\n";
            vars_.push_back(var);
            break;
        }
        stmt += Block(indent + 1, loop_depth + 1, in_fn);
        return stmt;
      }
      case 10: {  // Bounded while loop with a private counter.
        if (indent >= 2) {
          return Indent(indent) + "pass\n";
        }
        std::string counter = StrFormat("loop%d", next_id_++);
        std::string stmt = Indent(indent) + counter + " = 0\n";
        stmt += Indent(indent) + "while " + counter + " < " +
                StrFormat("%d", 1 + static_cast<int>(rng_.NextBounded(5))) +
                ":\n";
        stmt += Indent(indent + 1) + counter + " = " + counter + " + 1\n";
        stmt += Block(indent + 1, loop_depth + 1, in_fn);
        return stmt;
      }
      case 11:
      case 12: {  // Function definition (only at top level, like most CSL).
        if (indent > 0) {
          return Indent(indent) + Name() + "\n";  // Expression statement.
        }
        return DefStmt();
      }
      case 13: {  // assert — usually true, sometimes a random condition.
        if (rng_.NextBool(0.7)) {
          return Indent(indent) + "assert 1 == 1, \"invariant\"\n";
        }
        return Indent(indent) + "assert " + Expr(1) + ", " + Expr(1) + "\n";
      }
      case 14: {  // break/continue — valid in loops; tests flow escape
                  // semantics (ReturnNull/Halt) elsewhere.
        const char* kw = rng_.NextBool(0.5) ? "break" : "continue";
        if (loop_depth > 0 || rng_.NextBool(0.1)) {
          return Indent(indent) + kw + "\n";
        }
        return Indent(indent) + "pass\n";
      }
      case 15:  // Expression statement (side-effect-free, still evaluated).
        return Indent(indent) + Expr(2) + "\n";
      case 16: {
        if (in_fn) {
          return Indent(indent) + "return " + Expr(2) + "\n";
        }
        return Indent(indent) + "pass\n";
      }
      default: {
        std::string var = FreshVar();
        std::string stmt = Indent(indent) + var + " = " + Expr(1) + "\n";
        vars_.push_back(var);
        return stmt;
      }
    }
  }

  std::string Block(int indent, int loop_depth, bool in_fn) {
    int n = 1 + static_cast<int>(rng_.NextBounded(2));
    std::string block;
    size_t vars_before = vars_.size();
    for (int i = 0; i < n; ++i) {
      block += Stmt(indent, loop_depth, in_fn);
    }
    // Names defined inside a conditional block may be undefined at runtime
    // on the other branch; keeping a few of them in scope for later reads
    // exercises exactly that (both engines must agree on the error).
    while (vars_.size() > vars_before && rng_.NextBool(0.5)) {
      vars_.pop_back();
    }
    return block;
  }

  std::string DefStmt() {
    Fn fn;
    fn.name = StrFormat("f%d", next_id_++);
    fn.params = 1 + static_cast<int>(rng_.NextBounded(2));
    std::string params;
    std::vector<std::string> saved_vars = vars_;
    for (int i = 0; i < fn.params; ++i) {
      std::string p = StrFormat("p%d_%d", next_id_, i);
      params += (i > 0 ? ", " : "") + p;
      vars_.push_back(p);
    }
    if (rng_.NextBool(0.5)) {
      fn.has_default = true;
      fn.kw_name = StrFormat("d%d", next_id_);
      params += ", " + fn.kw_name + "=" + Literal();
      vars_.push_back(fn.kw_name);
    }
    std::string stmt = "def " + fn.name + "(" + params + "):\n";
    int n = static_cast<int>(rng_.NextBounded(3));
    for (int i = 0; i < n; ++i) {
      stmt += Stmt(1, 0, true);
    }
    // Nested closure capture, sometimes.
    if (rng_.NextBool(0.15)) {
      std::string inner = StrFormat("g%d", next_id_++);
      stmt += Indent(1) + "def " + inner + "(x):\n";
      stmt += Indent(2) + "return x + " + Expr(1) + "\n";
      stmt += Indent(1) + "return " + inner + "(" + Expr(1) + ")\n";
    } else {
      stmt += Indent(1) + "return " + Expr(2) + "\n";
    }
    vars_ = std::move(saved_vars);
    fns_.push_back(fn);
    return stmt;
  }

  std::string ExportStmt() {
    if (rng_.NextBool(0.25)) {
      return "export(\"out.json\", {\"v\": " + Expr(2) + "})\n";
    }
    std::string dict;
    int n = 1 + static_cast<int>(rng_.NextBounded(3));
    for (int i = 0; i < n; ++i) {
      dict += StrFormat("%s\"k%d\": %s", i > 0 ? ", " : "", i,
                        (rng_.NextBool(0.7) ? Name() : Expr(1)).c_str());
    }
    return "export_if_last({" + dict + "})\n";
  }

  Rng rng_;
  int next_id_ = 1;
  std::vector<std::string> vars_;
  std::vector<Fn> fns_;
  std::vector<std::string> lib_vars_;
  std::vector<Fn> lib_fns_;
};

// --- Differential harness ---------------------------------------------------

struct Outcome {
  Status status = OkStatus();
  std::vector<std::string> artifacts;
};

Outcome RunEngine(const std::map<std::string, std::string>& files,
                  CompilerOptions::Engine engine) {
  InMemorySources sources;
  for (const auto& [path, content] : files) {
    sources.Put(path, content);
  }
  CompilerOptions options;
  options.engine = engine;
  ConfigCompiler compiler(sources.AsReader(), options);
  Outcome outcome;
  auto output = compiler.Compile("entry.cconf");
  if (!output.ok()) {
    outcome.status = output.status();
    return outcome;
  }
  for (const CompiledConfig& config : output->configs) {
    outcome.artifacts.push_back(config.path + "\n" +
                                config.content.DumpPretty());
  }
  return outcome;
}

// Empty when the engines agree; otherwise a human-readable description.
std::optional<std::string> Divergence(
    const std::map<std::string, std::string>& files) {
  Outcome vm = RunEngine(files, CompilerOptions::Engine::kBytecodeVm);
  Outcome interp = RunEngine(files, CompilerOptions::Engine::kInterpreter);
  if (!(vm.status == interp.status)) {
    return "status diverged:\n  vm:     " + vm.status.ToString() +
           "\n  interp: " + interp.status.ToString();
  }
  if (vm.artifacts != interp.artifacts) {
    std::string diff = "artifacts diverged:\n";
    for (size_t i = 0; i < std::max(vm.artifacts.size(),
                                    interp.artifacts.size());
         ++i) {
      std::string v = i < vm.artifacts.size() ? vm.artifacts[i] : "<none>";
      std::string t =
          i < interp.artifacts.size() ? interp.artifacts[i] : "<none>";
      if (v != t) {
        diff += "--- vm ---\n" + v + "\n--- interp ---\n" + t + "\n";
      }
    }
    return diff;
  }
  return std::nullopt;
}

std::string DescribeFiles(const std::map<std::string, std::string>& files) {
  std::string out;
  for (const auto& [path, content] : files) {
    out += "==== " + path + " ====\n" + content;
  }
  return out;
}

TEST(VmDifferential, SeededProgramsAgreeOnArtifactsAndErrors) {
  int failing_programs = 0;  // Programs whose (matching) outcome is an error.
  for (uint64_t seed = 1; seed <= kPrograms; ++seed) {
    ProgGen gen(seed);
    GenProgram program = gen.Generate();
    auto files = program.Files();
    auto divergence = Divergence(files);
    if (!divergence.has_value()) {
      if (!RunEngine(files, CompilerOptions::Engine::kBytecodeVm)
               .status.ok()) {
        ++failing_programs;
      }
      continue;
    }

    // Diverged: ddmin-shrink the entry statement list to a minimal
    // reproducer before failing.
    auto reproduces = [&](const std::vector<size_t>& keep) {
      GenProgram candidate;
      candidate.modules = program.modules;
      for (size_t index : keep) {
        candidate.entry_stmts.push_back(program.entry_stmts[index]);
      }
      return Divergence(candidate.Files()).has_value();
    };
    int probes = 0;
    std::vector<size_t> kept =
        DdminSubset(program.entry_stmts.size(), reproduces, 400, &probes);
    GenProgram shrunk;
    shrunk.modules = program.modules;
    for (size_t index : kept) {
      shrunk.entry_stmts.push_back(program.entry_stmts[index]);
    }
    auto shrunk_divergence = Divergence(shrunk.Files());
    FAIL() << "engines diverged on seed " << seed << " (ddmin: "
           << program.entry_stmts.size() << " -> " << kept.size()
           << " stmts, " << probes << " probes)\n"
           << (shrunk_divergence.has_value() ? *shrunk_divergence
                                             : *divergence)
           << "\nshrunk program:\n"
           << DescribeFiles(shrunk.Files());
  }
  // The generator must produce a healthy mix: mostly valid programs, but
  // enough failing ones that error-message equality is really exercised.
  EXPECT_GT(failing_programs, kPrograms / 20);
  EXPECT_LT(failing_programs, kPrograms * 9 / 10);
}

TEST(VmDifferential, MutatedSourcesNeverCrashAndStayInAgreement) {
  for (uint64_t seed = 1; seed <= kMutations; ++seed) {
    ProgGen gen(seed);
    GenProgram program = gen.Generate();
    auto files = program.Files();
    std::string& entry = files["entry.cconf"];
    if (entry.empty()) {
      continue;
    }
    Rng mut(seed * 7919);
    int flips = 1 + static_cast<int>(mut.NextBounded(4));
    for (int i = 0; i < flips; ++i) {
      size_t at = mut.NextBounded(entry.size());
      entry[at] = static_cast<char>(entry[at] ^
                                    (1 << mut.NextBounded(7)));
    }
    auto divergence = Divergence(files);
    EXPECT_FALSE(divergence.has_value())
        << "mutated seed " << seed << ": " << *divergence << "\n"
        << DescribeFiles(files);
  }
}

}  // namespace
}  // namespace configerator
