#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.h"
#include "src/vcs/diff.h"
#include "src/vcs/multirepo.h"
#include "src/vcs/objects.h"
#include "src/vcs/repository.h"

namespace configerator {
namespace {

// ---- Objects ----------------------------------------------------------------

TEST(ObjectStoreTest, BlobRoundTrip) {
  ObjectStore store;
  ObjectId id = store.PutBlob("hello");
  auto blob = store.GetBlob(id);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "hello");
}

TEST(ObjectStoreTest, PutIsIdempotent) {
  ObjectStore store;
  ObjectId a = store.PutBlob("same");
  ObjectId b = store.PutBlob("same");
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(ObjectStoreTest, DistinctContentDistinctIds) {
  ObjectStore store;
  EXPECT_NE(store.PutBlob("a"), store.PutBlob("b"));
}

TEST(ObjectStoreTest, KindConfusionRejected) {
  ObjectStore store;
  ObjectId blob = store.PutBlob("data");
  auto as_tree = store.GetTree(blob);
  EXPECT_EQ(as_tree.status().code(), StatusCode::kCorruption);
}

TEST(ObjectStoreTest, MissingObjectNotFound) {
  ObjectStore store;
  EXPECT_EQ(store.GetBlob(Sha256::Hash("ghost")).status().code(),
            StatusCode::kNotFound);
}

TEST(TreeObjectTest, EncodeDecodeRoundTrip) {
  TreeObject tree;
  tree.entries["file.json"] = {Sha256::Hash("f"), false};
  tree.entries["subdir"] = {Sha256::Hash("d"), true};
  tree.entries["name with spaces"] = {Sha256::Hash("s"), false};
  auto decoded = TreeObject::Decode(tree.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries, tree.entries);
}

TEST(TreeObjectTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(TreeObject::Decode("not a tree").ok());
  EXPECT_FALSE(TreeObject::Decode("x " + std::string(64, 'a') + " name\n").ok());
}

TEST(CommitObjectTest, EncodeDecodeRoundTrip) {
  CommitObject commit;
  commit.tree = Sha256::Hash("tree");
  commit.parents = {Sha256::Hash("p1"), Sha256::Hash("p2")};
  commit.author = "alice";
  commit.message = "multi\nline\nmessage";
  commit.timestamp_ms = 123456789;
  auto decoded = CommitObject::Decode(commit.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tree, commit.tree);
  EXPECT_EQ(decoded->parents, commit.parents);
  EXPECT_EQ(decoded->author, commit.author);
  EXPECT_EQ(decoded->message, commit.message);
  EXPECT_EQ(decoded->timestamp_ms, commit.timestamp_ms);
}

// ---- Diff --------------------------------------------------------------------

TEST(DiffTest, IdenticalTexts) {
  LineDiff diff = DiffLines("a\nb\n", "a\nb\n");
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.changed_lines(), 0u);
}

TEST(DiffTest, SingleLineModificationCountsTwo) {
  // Unix diff semantics (Table 2): modify = delete + add.
  LineDiff diff = DiffLines("a\nb\nc\n", "a\nB\nc\n");
  EXPECT_EQ(diff.added, 1u);
  EXPECT_EQ(diff.deleted, 1u);
  EXPECT_EQ(diff.changed_lines(), 2u);
}

TEST(DiffTest, PureAddition) {
  LineDiff diff = DiffLines("a\nc\n", "a\nb\nc\n");
  EXPECT_EQ(diff.added, 1u);
  EXPECT_EQ(diff.deleted, 0u);
}

TEST(DiffTest, PureDeletion) {
  LineDiff diff = DiffLines("a\nb\nc\n", "a\nc\n");
  EXPECT_EQ(diff.added, 0u);
  EXPECT_EQ(diff.deleted, 1u);
}

TEST(DiffTest, EmptyToContent) {
  LineDiff diff = DiffLines("", "x\ny\n");
  EXPECT_EQ(diff.added, 2u);
  EXPECT_EQ(diff.deleted, 0u);
}

TEST(DiffTest, RenderShowsOnlyChanges) {
  LineDiff diff = DiffLines("keep\nold\n", "keep\nnew\n");
  std::string rendered = RenderDiff(diff);
  EXPECT_EQ(rendered, "-old\n+new\n");
}

TEST(DiffTest, OpsReconstructBothSides) {
  // Property: keeps+deletes = old, keeps+adds = new.
  std::string old_text = "a\nb\nc\nd\ne\n";
  std::string new_text = "a\nx\nc\ny\ne\nz\n";
  LineDiff diff = DiffLines(old_text, new_text);
  std::string old_rebuilt;
  std::string new_rebuilt;
  for (const DiffOp& op : diff.ops) {
    if (op.kind != DiffOp::Kind::kAdd) {
      old_rebuilt += op.text + "\n";
    }
    if (op.kind != DiffOp::Kind::kDelete) {
      new_rebuilt += op.text + "\n";
    }
  }
  EXPECT_EQ(old_rebuilt, old_text);
  EXPECT_EQ(new_rebuilt, new_text);
}

class DiffPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiffPropertyTest, RandomEditsReconstruct) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    size_t n = 1 + rng.NextBounded(60);
    std::vector<std::string> lines;
    for (size_t i = 0; i < n; ++i) {
      lines.push_back("line" + std::to_string(rng.NextBounded(20)));
    }
    std::vector<std::string> edited = lines;
    size_t edits = rng.NextBounded(10);
    for (size_t e = 0; e < edits && !edited.empty(); ++e) {
      size_t pos = rng.NextBounded(edited.size());
      switch (rng.NextBounded(3)) {
        case 0:
          edited[pos] = "edited" + std::to_string(rng.NextBounded(100));
          break;
        case 1:
          edited.erase(edited.begin() + static_cast<long>(pos));
          break;
        default:
          edited.insert(edited.begin() + static_cast<long>(pos),
                        "inserted" + std::to_string(rng.NextBounded(100)));
      }
    }
    auto join = [](const std::vector<std::string>& v) {
      std::string out;
      for (const std::string& s : v) {
        out += s + "\n";
      }
      return out;
    };
    std::string old_text = join(lines);
    std::string new_text = join(edited);
    LineDiff diff = DiffLines(old_text, new_text);
    std::string old_rebuilt;
    std::string new_rebuilt;
    for (const DiffOp& op : diff.ops) {
      if (op.kind != DiffOp::Kind::kAdd) {
        old_rebuilt += op.text + "\n";
      }
      if (op.kind != DiffOp::Kind::kDelete) {
        new_rebuilt += op.text + "\n";
      }
    }
    EXPECT_EQ(old_rebuilt, old_text);
    EXPECT_EQ(new_rebuilt, new_text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- Repository ---------------------------------------------------------------

TEST(RepositoryTest, CommitAndRead) {
  Repository repo;
  auto commit = repo.Commit("alice", "init",
                            {{"feed/a.json", "content-a"},
                             {"tao/b.json", "content-b"}});
  ASSERT_TRUE(commit.ok()) << commit.status();
  EXPECT_EQ(*repo.ReadFile("feed/a.json"), "content-a");
  EXPECT_EQ(*repo.ReadFile("tao/b.json"), "content-b");
  EXPECT_EQ(repo.file_count(), 2u);
  EXPECT_EQ(repo.commit_count(), 1u);
}

TEST(RepositoryTest, OverwriteAndDelete) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "1", {{"x", "v1"}}).ok());
  ASSERT_TRUE(repo.Commit("a", "2", {{"x", "v2"}}).ok());
  EXPECT_EQ(*repo.ReadFile("x"), "v2");
  ASSERT_TRUE(repo.Commit("a", "3", {{"x", std::nullopt}}).ok());
  EXPECT_FALSE(repo.FileExists("x"));
  EXPECT_EQ(repo.ReadFile("x").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, DeleteNonexistentFails) {
  Repository repo;
  EXPECT_FALSE(repo.Commit("a", "del", {{"ghost", std::nullopt}}).ok());
}

TEST(RepositoryTest, PathValidation) {
  Repository repo;
  EXPECT_FALSE(repo.Commit("a", "m", {{"", "x"}}).ok());
  EXPECT_FALSE(repo.Commit("a", "m", {{"/abs", "x"}}).ok());
  EXPECT_FALSE(repo.Commit("a", "m", {{"dir/", "x"}}).ok());
  EXPECT_FALSE(repo.Commit("a", "m", {{"a//b", "x"}}).ok());
  EXPECT_FALSE(repo.Commit("a", "m", {{"bad\nname", "x"}}).ok());
}

TEST(RepositoryTest, HistoricalReads) {
  Repository repo;
  auto c1 = repo.Commit("a", "1", {{"cfg", "v1"}});
  auto c2 = repo.Commit("a", "2", {{"cfg", "v2"}});
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*repo.ReadFileAt(*c1, "cfg"), "v1");
  EXPECT_EQ(*repo.ReadFileAt(*c2, "cfg"), "v2");
}

TEST(RepositoryTest, LogWalksFirstParents) {
  Repository repo;
  std::vector<ObjectId> commits;
  for (int i = 0; i < 5; ++i) {
    auto c = repo.Commit("a", "m" + std::to_string(i),
                         {{"f", "v" + std::to_string(i)}});
    ASSERT_TRUE(c.ok());
    commits.push_back(*c);
  }
  auto log = repo.Log(10);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 5u);
  EXPECT_EQ((*log)[0], commits[4]);  // Newest first.
  EXPECT_EQ((*log)[4], commits[0]);

  auto limited = repo.Log(2);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 2u);
}

TEST(RepositoryTest, CommitMetadataPreserved) {
  Repository repo;
  auto c = repo.Commit("bob", "my message", {{"f", "v"}}, 777);
  ASSERT_TRUE(c.ok());
  auto commit = repo.GetCommit(*c);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->author, "bob");
  EXPECT_EQ(commit->message, "my message");
  EXPECT_EQ(commit->timestamp_ms, 777);
}

TEST(RepositoryTest, ListFilesUnderPrefix) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "m",
                          {{"feed/a", "1"}, {"feed/b", "2"}, {"tao/c", "3"}})
                  .ok());
  auto feed = repo.ListFilesUnder("feed/");
  EXPECT_EQ(feed.size(), 2u);
  auto all = repo.ListFiles();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(RepositoryTest, DiffCommits) {
  Repository repo;
  auto c1 = repo.Commit("a", "1", {{"keep", "same"}, {"mod", "v1"}, {"del", "x"}});
  auto c2 = repo.Commit("a", "2",
                        {{"mod", "v2"}, {"del", std::nullopt}, {"new", "y"}});
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto deltas = repo.DiffCommits(*c1, *c2);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 3u);
  std::map<std::string, FileDelta::Kind> by_path;
  for (const FileDelta& d : *deltas) {
    by_path[d.path] = d.kind;
  }
  EXPECT_EQ(by_path.at("mod"), FileDelta::Kind::kModified);
  EXPECT_EQ(by_path.at("del"), FileDelta::Kind::kDeleted);
  EXPECT_EQ(by_path.at("new"), FileDelta::Kind::kAdded);
}

TEST(RepositoryTest, DiffAgainstEmptyHistory) {
  Repository repo;
  auto c1 = repo.Commit("a", "1", {{"f", "v"}});
  ASSERT_TRUE(c1.ok());
  auto deltas = repo.DiffCommits(std::nullopt, *c1);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 1u);
  EXPECT_EQ((*deltas)[0].kind, FileDelta::Kind::kAdded);
}

TEST(RepositoryTest, DiffFileLineLevel) {
  Repository repo;
  auto c1 = repo.Commit("a", "1", {{"cfg", "a\nb\n"}});
  auto c2 = repo.Commit("a", "2", {{"cfg", "a\nc\n"}});
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto diff = repo.DiffFile(*c1, *c2, "cfg");
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->changed_lines(), 2u);
}

TEST(RepositoryTest, NestedDirectoriesPrunedOnDelete) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "1", {{"x/y/z/file", "v"}}).ok());
  ASSERT_TRUE(repo.Commit("a", "2", {{"x/y/z/file", std::nullopt}}).ok());
  // Re-adding under the pruned directory works.
  ASSERT_TRUE(repo.Commit("a", "3", {{"x/y/other", "w"}}).ok());
  EXPECT_EQ(*repo.ReadFile("x/y/other"), "w");
}

TEST(RepositoryTest, ContentAddressingDeduplicates) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "1", {{"f1", "same content"}}).ok());
  size_t objects_before = repo.store().object_count();
  ASSERT_TRUE(repo.Commit("a", "2", {{"f2", "same content"}}).ok());
  // Only new tree + commit objects; the blob is shared.
  EXPECT_LE(repo.store().object_count(), objects_before + 2);
}

TEST(RepositoryTest, FileToDirectoryTransition) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "1", {{"path", "file"}}).ok());
  ASSERT_TRUE(repo.Commit("a", "2", {{"path", std::nullopt}}).ok());
  ASSERT_TRUE(repo.Commit("a", "3", {{"path/nested", "v"}}).ok());
  EXPECT_EQ(*repo.ReadFile("path/nested"), "v");
}

TEST(RepositoryTest, FileDirectoryNamespaceCollisionsRejected) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "1", {{"a", "file"}}).ok());
  // A path through an existing file is invalid...
  EXPECT_FALSE(repo.Commit("a", "2", {{"a/b", "nested"}}).ok());
  // ...and a file over an existing directory is invalid.
  ASSERT_TRUE(repo.Commit("a", "3", {{"dir/child", "v"}}).ok());
  EXPECT_FALSE(repo.Commit("a", "4", {{"dir", "file"}}).ok());
  // State was not corrupted by the rejected writes.
  EXPECT_EQ(*repo.ReadFile("a"), "file");
  EXPECT_EQ(*repo.ReadFile("dir/child"), "v");
}

TEST(RepositoryTest, FailedBatchLeavesNoPhantomState) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "1", {{"exists", "v"}}).ok());
  // Batch whose second write is invalid: the first must not leak.
  auto bad = repo.Commit("a", "2",
                         {{"new_file", "content"}, {"ghost", std::nullopt}});
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(repo.FileExists("new_file"));
  EXPECT_EQ(repo.file_count(), 1u);
  EXPECT_EQ(repo.commit_count(), 1u);
  // And the repository is still fully functional.
  ASSERT_TRUE(repo.Commit("a", "3", {{"new_file", "content"}}).ok());
  EXPECT_EQ(*repo.ReadFile("new_file"), "content");
}

TEST(RepositoryTest, BatchInternalCreateThenDeleteAllowed) {
  Repository repo;
  auto c = repo.Commit("a", "m",
                       {{"temp", "v"}, {"temp", std::nullopt}, {"keep", "k"}});
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_FALSE(repo.FileExists("temp"));
  EXPECT_TRUE(repo.FileExists("keep"));
}

TEST(RepositoryTest, EmptyCommitAllowed) {
  Repository repo;
  auto c = repo.Commit("automation", "heartbeat", {});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(repo.commit_count(), 1u);
  EXPECT_EQ(repo.file_count(), 0u);
}

TEST(RepositoryTest, LogOnEmptyRepo) {
  Repository repo;
  auto log = repo.Log(10);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->empty());
  EXPECT_FALSE(repo.head().has_value());
}

TEST(RepositoryTest, StoreTracksBytes) {
  Repository repo;
  ASSERT_TRUE(repo.Commit("a", "m", {{"f", "0123456789"}}).ok());
  EXPECT_GT(repo.store().total_bytes(), 10u);  // Blob + tree + commit.
}

TEST(RepositoryTest, ReadFileAtRejectsDirectoryPath) {
  Repository repo;
  auto c = repo.Commit("a", "m", {{"dir/file", "v"}});
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(repo.ReadFileAt(*c, "dir").ok());
  EXPECT_FALSE(repo.ReadFileAt(*c, "dir/file/extra").ok());
  EXPECT_EQ(repo.ReadFileAt(*c, "nope").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, SameContentCommitStillAdvancesHead) {
  Repository repo;
  auto c1 = repo.Commit("a", "1", {{"f", "same"}});
  auto c2 = repo.Commit("a", "2", {{"f", "same"}});
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);  // Distinct commits (different parents/messages)...
  auto deltas = repo.DiffCommits(*c1, *c2);
  ASSERT_TRUE(deltas.ok());
  EXPECT_TRUE(deltas->empty());  // ...but no content difference.
}

// ---- MultiRepo -----------------------------------------------------------------

TEST(MultiRepoTest, PartitionRouting) {
  MultiRepo multi;
  ASSERT_TRUE(multi.AddPartition("feed/").ok());
  ASSERT_TRUE(multi.AddPartition("tao/").ok());
  auto commits = multi.Commit("a", "m",
                              {{"feed/x", "1"}, {"tao/y", "2"}, {"misc/z", "3"}});
  ASSERT_TRUE(commits.ok());
  EXPECT_EQ(commits->size(), 3u);  // Three partitions touched.
  EXPECT_EQ(*multi.ReadFile("feed/x"), "1");
  EXPECT_EQ(*multi.ReadFile("tao/y"), "2");
  EXPECT_EQ(*multi.ReadFile("misc/z"), "3");

  // Per-partition isolation: feed's repo only holds feed files.
  EXPECT_EQ(multi.RepoFor("feed/x")->file_count(), 1u);
}

TEST(MultiRepoTest, LongestPrefixWins) {
  MultiRepo multi;
  ASSERT_TRUE(multi.AddPartition("feed/").ok());
  ASSERT_TRUE(multi.AddPartition("feed/ranking/").ok());
  ASSERT_TRUE(multi.Commit("a", "m", {{"feed/ranking/model", "v"}}).ok());
  EXPECT_EQ(multi.RepoFor("feed/ranking/model")->name(), "feed/ranking/");
}

TEST(MultiRepoTest, DuplicatePartitionRejected) {
  MultiRepo multi;
  ASSERT_TRUE(multi.AddPartition("feed/").ok());
  EXPECT_EQ(multi.AddPartition("feed/").code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(multi.AddPartition("").ok());
}

TEST(MultiRepoTest, ListFilesSpansPartitions) {
  MultiRepo multi;
  ASSERT_TRUE(multi.AddPartition("feed/").ok());
  ASSERT_TRUE(multi.Commit("a", "m", {{"feed/b", "1"}, {"a", "2"}}).ok());
  auto files = multi.ListFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "a");
  EXPECT_EQ(files[1], "feed/b");
}

TEST(MultiRepoTest, FileExists) {
  MultiRepo multi;
  ASSERT_TRUE(multi.AddPartition("feed/").ok());
  ASSERT_TRUE(multi.Commit("a", "m", {{"feed/x", "1"}}).ok());
  EXPECT_TRUE(multi.FileExists("feed/x"));
  EXPECT_FALSE(multi.FileExists("feed/y"));
}

}  // namespace
}  // namespace configerator
