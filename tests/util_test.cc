#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/util/rng.h"
#include "src/util/sha256.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace configerator {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ConflictError("path changed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(s.message(), "path changed");
  EXPECT_EQ(s.ToString(), "CONFLICT: path changed");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kInvalidConfig,
        StatusCode::kNotFound, StatusCode::kAlreadyExists, StatusCode::kConflict,
        StatusCode::kRejected, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded, StatusCode::kCorruption,
        StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HelperParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

Status HelperUsesMacros(int x, int* out) {
  ASSIGN_OR_RETURN(int v, HelperParsePositive(x));
  RETURN_IF_ERROR(OkStatus());
  *out = v * 2;
  return OkStatus();
}

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(HelperUsesMacros(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status s = HelperUsesMacros(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---- SHA-256 ----------------------------------------------------------------

TEST(Sha256Test, EmptyStringVector) {
  // FIPS 180-4 test vector.
  EXPECT_EQ(Sha256::Hash("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(Sha256::Hash("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  EXPECT_EQ(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(hasher.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 hasher;
    hasher.Update(data.substr(0, split));
    hasher.Update(data.substr(split));
    EXPECT_EQ(hasher.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, HexRoundTrip) {
  Sha256Digest digest = Sha256::Hash("roundtrip");
  Sha256Digest parsed;
  ASSERT_TRUE(Sha256Digest::FromHex(digest.ToHex(), &parsed));
  EXPECT_EQ(parsed, digest);
}

TEST(Sha256Test, FromHexRejectsMalformed) {
  Sha256Digest out;
  EXPECT_FALSE(Sha256Digest::FromHex("abc", &out));
  EXPECT_FALSE(Sha256Digest::FromHex(std::string(64, 'g'), &out));
  EXPECT_TRUE(Sha256Digest::FromHex(std::string(64, 'A'), &out));  // Uppercase OK.
}

TEST(Sha256Test, ShortHexIsPrefix) {
  Sha256Digest digest = Sha256::Hash("x");
  EXPECT_EQ(digest.ShortHex(8), digest.ToHex().substr(0, 8));
}

TEST(Sha256Test, DigestsAreHashable) {
  std::unordered_map<Sha256Digest, int> map;
  map[Sha256::Hash("a")] = 1;
  map[Sha256::Hash("b")] = 2;
  EXPECT_EQ(map.at(Sha256::Hash("a")), 1);
  EXPECT_EQ(map.at(Sha256::Hash("b")), 2);
}

// ---- RNG ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBoundedWithinRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values appear.
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 100'000; ++i) {
    stats.Add(rng.NextExponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfDistribution zipf(1000, 1.2);
  Rng rng(17);
  size_t rank0 = 0;
  size_t tail = 0;
  for (int i = 0; i < 100'000; ++i) {
    size_t r = zipf.Sample(rng);
    ASSERT_LT(r, 1000u);
    if (r == 0) {
      ++rank0;
    }
    if (r >= 500) {
      ++tail;
    }
  }
  EXPECT_GT(rank0, tail);  // The head outweighs the entire tail half.
}

TEST(StableHashTest, DeterministicAndSpread) {
  EXPECT_EQ(StableHash64("abc"), StableHash64("abc"));
  EXPECT_NE(StableHash64("abc"), StableHash64("abd"));
}

// ---- Stats -------------------------------------------------------------------

TEST(OnlineStatsTest, Basics) {
  OnlineStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
}

TEST(SampleSetTest, Percentiles) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) {
    set.Add(i);
  }
  EXPECT_DOUBLE_EQ(set.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(set.Percentile(100), 100);
  EXPECT_NEAR(set.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(set.Percentile(95), 95.05, 0.1);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet set;
  for (int i = 1; i <= 10; ++i) {
    set.Add(i);
  }
  EXPECT_DOUBLE_EQ(set.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(5), 0.5);
  EXPECT_DOUBLE_EQ(set.CdfAt(10), 1.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(100), 1.0);
}

TEST(SampleSetTest, EmptyIsSafe) {
  SampleSet set;
  EXPECT_EQ(set.Percentile(50), 0);
  EXPECT_EQ(set.CdfAt(5), 0);
  EXPECT_EQ(set.Mean(), 0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet set;
  set.Add(10);
  EXPECT_DOUBLE_EQ(set.Percentile(50), 10);
  set.Add(0);
  EXPECT_DOUBLE_EQ(set.Percentile(0), 0);
}

TEST(StatsTest, FractionInRange) {
  SampleSet set;
  for (int i = 1; i <= 10; ++i) {
    set.Add(i);
  }
  EXPECT_DOUBLE_EQ(FractionInRange(set, 1, 5), 0.5);
  EXPECT_DOUBLE_EQ(FractionInRange(set, 11, 20), 0.0);
  EXPECT_DOUBLE_EQ(FractionInRange(set, 1, 10), 1.0);
}

TEST(StatsTest, TabulateCdf) {
  SampleSet set;
  for (int i = 1; i <= 4; ++i) {
    set.Add(i);
  }
  auto cdf = TabulateCdf(set, {2.0, 4.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative, 1.0);
}

// ---- Strings -----------------------------------------------------------------

TEST(StringsTest, StrSplitKeepsEmpty) {
  auto parts = StrSplit("a//b", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, StrSplitEmptyString) {
  auto parts = StrSplit("", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, SplitLinesTrailingNewline) {
  auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
}

TEST(StringsTest, SplitLinesNoTrailingNewline) {
  auto lines = SplitLines("a\nb");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "b");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\n"), "");
  EXPECT_EQ(StrTrim("abc"), "abc");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringsTest, LooksLikeTimestamp) {
  EXPECT_TRUE(LooksLikeTimestamp("2015-10-04"));
  EXPECT_TRUE(LooksLikeTimestamp("2015-10-04 12:30:00"));
  EXPECT_TRUE(LooksLikeTimestamp("1443916800"));  // Unix epoch seconds.
  EXPECT_FALSE(LooksLikeTimestamp("hello"));
  EXPECT_FALSE(LooksLikeTimestamp("123"));
  EXPECT_FALSE(LooksLikeTimestamp("12a4567890"));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(14.8 * 1024 * 1024), "14.8 MB");
}

// ---- Table -------------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW(table.ToString());
}

}  // namespace
}  // namespace configerator
