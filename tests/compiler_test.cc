// End-to-end tests of the Configerator compiler: the paper's Figure 2
// workflow (schema + reusable module + entry config + validator) and the
// §3.1 dependency example (app.cconf / firewall.cconf sharing app_port.cinc).

#include <gtest/gtest.h>

#include <algorithm>

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

#include "src/lang/compiler.h"

namespace configerator {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The Figure 2 example, transliterated to CSL.
    sources_.Put("job.thrift",
                 "struct Job {\n"
                 "  1: required string name;\n"
                 "  2: optional i32 memory_mb = 256;\n"
                 "  3: optional list<string> tags;\n"
                 "}\n");
    sources_.Put("create_job.cinc",
                 "import_thrift(\"job.thrift\")\n"
                 "def create_job(name, memory_mb=256):\n"
                 "    job = Job(name=name, memory_mb=memory_mb)\n"
                 "    job.tags = [\"team:\" + name]\n"
                 "    return job\n");
    sources_.Put("cache_job.cconf",
                 "import_python(\"create_job.cinc\", \"*\")\n"
                 "job = create_job(name=\"cache\", memory_mb=1024)\n"
                 "export_if_last(job)\n");
    sources_.Put("job.thrift-cvalidator",
                 "def validate_Job(cfg):\n"
                 "    assert cfg.memory_mb > 0, \"memory must be positive\"\n"
                 "    assert len(cfg.name) > 0, \"name must be nonempty\"\n");
  }

  Result<CompileOutput> Compile(const std::string& entry) {
    ConfigCompiler compiler(sources_.AsReader());
    return compiler.Compile(entry);
  }

  InMemorySources sources_;
};

TEST_F(CompilerTest, CompilesFigure2Example) {
  auto output = Compile("cache_job.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_EQ(output->configs.size(), 1u);
  const CompiledConfig& config = output->configs[0];
  EXPECT_EQ(config.path, "cache_job.json");
  EXPECT_EQ(config.type_name, "Job");
  EXPECT_EQ(config.content.Get("name")->as_string(), "cache");
  EXPECT_EQ(config.content.Get("memory_mb")->as_int(), 1024);
  EXPECT_EQ(config.content.Get("tags")->as_array()[0].as_string(), "team:cache");
}

TEST_F(CompilerTest, TracksTransitiveDependencies) {
  auto output = Compile("cache_job.cconf");
  ASSERT_TRUE(output.ok());
  const auto& deps = output->dependencies;
  for (const char* expected :
       {"cache_job.cconf", "create_job.cinc", "job.thrift",
        "job.thrift-cvalidator"}) {
    EXPECT_NE(std::find(deps.begin(), deps.end(), expected), deps.end())
        << expected;
  }
}

TEST_F(CompilerTest, ValidatorRejectsBadConfig) {
  sources_.Put("bad_job.cconf",
               "import_python(\"create_job.cinc\", \"*\")\n"
               "job = create_job(name=\"bad\", memory_mb=-5)\n"
               "export_if_last(job)\n");
  auto output = Compile("bad_job.cconf");
  ASSERT_FALSE(output.ok());
  EXPECT_NE(output.status().message().find("memory must be positive"),
            std::string::npos);
}

TEST_F(CompilerTest, SchemaDefaultsMaterializeInOutput) {
  sources_.Put("minimal.cconf",
               "import_thrift(\"job.thrift\")\n"
               "export_if_last(Job(name=\"tiny\"))\n");
  auto output = Compile("minimal.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->configs[0].content.Get("memory_mb")->as_int(), 256);
}

TEST_F(CompilerTest, TypeErrorsCaughtAtExport) {
  sources_.Put("wrong_type.cconf",
               "import_thrift(\"job.thrift\")\n"
               "j = Job(name=\"x\")\n"
               "j.memory_mb = \"lots\"\n"
               "export_if_last(j)\n");
  auto output = Compile("wrong_type.cconf");
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidConfig);
}

TEST_F(CompilerTest, SharedConstantDependency) {
  // The §3.1 app/firewall example: both configs import app_port.cinc.
  sources_.Put("app_port.cinc", "APP_PORT = 8089\n");
  sources_.Put("app.cconf",
               "import_python(\"app_port.cinc\", \"*\")\n"
               "export_if_last({\"listen_port\": APP_PORT})\n");
  sources_.Put("firewall.cconf",
               "import_python(\"app_port.cinc\", \"*\")\n"
               "export_if_last({\"allow_port\": APP_PORT})\n");

  auto app = Compile("app.cconf");
  auto firewall = Compile("firewall.cconf");
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(firewall.ok());
  EXPECT_EQ(app->configs[0].content.Get("listen_port")->as_int(), 8089);
  EXPECT_EQ(firewall->configs[0].content.Get("allow_port")->as_int(), 8089);

  // Changing the shared constant changes both outputs.
  sources_.Put("app_port.cinc", "APP_PORT = 9090\n");
  EXPECT_EQ(Compile("app.cconf")->configs[0].content.Get("listen_port")->as_int(),
            9090);
  EXPECT_EQ(
      Compile("firewall.cconf")->configs[0].content.Get("allow_port")->as_int(),
      9090);
}

TEST_F(CompilerTest, ImportedModuleDoesNotExport) {
  // export_if_last() in an imported module is a no-op (the "if last" rule).
  sources_.Put("lib.cinc", "export_if_last({\"from\": \"lib\"})\nLIB = 1\n");
  sources_.Put("main.cconf",
               "import_python(\"lib.cinc\", \"*\")\n"
               "export_if_last({\"lib\": LIB})\n");
  auto output = Compile("main.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_EQ(output->configs.size(), 1u);
  EXPECT_EQ(output->configs[0].path, "main.json");
}

TEST_F(CompilerTest, ExplicitExportNames) {
  sources_.Put("multi.cconf",
               "export(\"jobs/a.json\", {\"id\": 1})\n"
               "export(\"jobs/b.json\", {\"id\": 2})\n");
  auto output = Compile("multi.cconf");
  ASSERT_TRUE(output.ok());
  ASSERT_EQ(output->configs.size(), 2u);
  EXPECT_EQ(output->configs[0].path, "jobs/a.json");
  EXPECT_EQ(output->configs[1].path, "jobs/b.json");
}

TEST_F(CompilerTest, DuplicateExportFails) {
  sources_.Put("dup.cconf",
               "export_if_last({\"a\": 1})\n"
               "export_if_last({\"a\": 2})\n");
  EXPECT_FALSE(Compile("dup.cconf").ok());
}

TEST_F(CompilerTest, NoExportFails) {
  sources_.Put("empty.cconf", "x = 1\n");
  auto output = Compile("empty.cconf");
  ASSERT_FALSE(output.ok());
  EXPECT_NE(output.status().message().find("without exporting"),
            std::string::npos);
}

TEST_F(CompilerTest, ImportCycleDetected) {
  sources_.Put("a.cinc", "import_python(\"b.cinc\", \"*\")\nA = 1\n");
  sources_.Put("b.cinc", "import_python(\"a.cinc\", \"*\")\nB = 2\n");
  sources_.Put("cyclic.cconf",
               "import_python(\"a.cinc\", \"*\")\nexport_if_last({\"a\": A})\n");
  auto output = Compile("cyclic.cconf");
  ASSERT_FALSE(output.ok());
  EXPECT_NE(output.status().message().find("cycle"), std::string::npos);
}

TEST_F(CompilerTest, DiamondImportEvaluatedOnce) {
  sources_.Put("counter.cinc", "VALUE = 42\n");
  sources_.Put("left.cinc", "import_python(\"counter.cinc\", \"*\")\nL = VALUE\n");
  sources_.Put("right.cinc", "import_python(\"counter.cinc\", \"*\")\nR = VALUE\n");
  sources_.Put("diamond.cconf",
               "import_python(\"left.cinc\", \"*\")\n"
               "import_python(\"right.cinc\", \"*\")\n"
               "export_if_last({\"sum\": L + R})\n");
  auto output = Compile("diamond.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->configs[0].content.Get("sum")->as_int(), 84);
}

TEST_F(CompilerTest, SelectiveImport) {
  sources_.Put("lib2.cinc", "A = 1\nB = 2\n");
  sources_.Put("selective.cconf",
               "import_python(\"lib2.cinc\", \"A\")\n"
               "export_if_last({\"a\": A})\n");
  EXPECT_TRUE(Compile("selective.cconf").ok());

  sources_.Put("selective_bad.cconf",
               "import_python(\"lib2.cinc\", \"A\")\n"
               "export_if_last({\"b\": B})\n");
  EXPECT_FALSE(Compile("selective_bad.cconf").ok());
}

TEST_F(CompilerTest, MissingSourceFileFails) {
  auto output = Compile("nonexistent.cconf");
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kNotFound);
}

TEST_F(CompilerTest, MissingImportFails) {
  sources_.Put("broken.cconf",
               "import_python(\"ghost.cinc\", \"*\")\nexport_if_last({})\n");
  EXPECT_FALSE(Compile("broken.cconf").ok());
}

TEST_F(CompilerTest, DeterministicOutput) {
  auto first = Compile("cache_job.cconf");
  auto second = Compile("cache_job.cconf");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->configs[0].content.DumpPretty(),
            second->configs[0].content.DumpPretty());
}

TEST_F(CompilerTest, OutputPathDerivation) {
  EXPECT_EQ(ConfigCompiler::OutputPathFor("feed/cache_job.cconf"),
            "feed/cache_job.json");
  EXPECT_EQ(ConfigCompiler::OutputPathFor("noext"), "noext.json");
  EXPECT_EQ(ConfigCompiler::OutputPathFor("dir.v2/file"), "dir.v2/file.json");
}

TEST_F(CompilerTest, ValidatorReturningFalseRejects) {
  sources_.Put("strict.thrift", "struct Strict { 1: optional i32 n = 0; }\n");
  sources_.Put("strict.thrift-cvalidator",
               "def validate_Strict(cfg):\n"
               "    return cfg.n < 100\n");
  sources_.Put("ok.cconf",
               "import_thrift(\"strict.thrift\")\n"
               "export_if_last(Strict(n=5))\n");
  sources_.Put("too_big.cconf",
               "import_thrift(\"strict.thrift\")\n"
               "export_if_last(Strict(n=500))\n");
  EXPECT_TRUE(Compile("ok.cconf").ok());
  EXPECT_FALSE(Compile("too_big.cconf").ok());
}

TEST_F(CompilerTest, SelfReferentialExportRejectedCleanly) {
  sources_.Put("cyclic.cconf",
               "d = {\"name\": \"cycle\"}\n"
               "d[\"self\"] = d\n"
               "export_if_last(d)\n");
  // The cyclic dict itself cannot be reclaimed by reference counting (a
  // documented language limitation); exempt this deliberate leak from LSan.
#if defined(__SANITIZE_ADDRESS__)
  __lsan_disable();
#endif
  auto output = Compile("cyclic.cconf");
#if defined(__SANITIZE_ADDRESS__)
  __lsan_enable();
#endif
  ASSERT_FALSE(output.ok());
  EXPECT_NE(output.status().message().find("depth limit"), std::string::npos);
}

TEST_F(CompilerTest, ConfigInheritanceViaMerge) {
  // The paper's §8 future work: config inheritance. A base typed config is
  // specialized per deployment via merge(); the type tag survives, so the
  // derived config still schema-checks and runs validators.
  sources_.Put("base_job.cinc",
               "import_thrift(\"job.thrift\")\n"
               "BASE = Job(name=\"base\", memory_mb=256)\n"
               "BASE.tags = [\"managed\"]\n");
  sources_.Put("derived.cconf",
               "import_python(\"base_job.cinc\", \"*\")\n"
               "derived = merge(BASE, {\"name\": \"derived\","
               " \"memory_mb\": 2048})\n"
               "export_if_last(derived)\n");
  auto output = Compile("derived.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->configs[0].type_name, "Job");
  EXPECT_EQ(output->configs[0].content.Get("name")->as_string(), "derived");
  EXPECT_EQ(output->configs[0].content.Get("memory_mb")->as_int(), 2048);
  EXPECT_EQ(output->configs[0].content.Get("tags")->as_array()[0].as_string(),
            "managed");

  // Inherited configs still hit the validator.
  sources_.Put("derived_bad.cconf",
               "import_python(\"base_job.cinc\", \"*\")\n"
               "export_if_last(merge(BASE, {\"memory_mb\": -1}))\n");
  EXPECT_FALSE(Compile("derived_bad.cconf").ok());
}

TEST_F(CompilerTest, ControlFlowInConfigGeneration) {
  sources_.Put("tiered.cconf",
               "tiers = {}\n"
               "for i in range(4):\n"
               "    name = \"tier\" + str(i)\n"
               "    tiers[name] = {\"weight\": i * 10, \"hot\": i == 0}\n"
               "export_if_last({\"tiers\": tiers})\n");
  auto output = Compile("tiered.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  const Json& tiers = *output->configs[0].content.Get("tiers");
  EXPECT_EQ(tiers.size(), 4u);
  EXPECT_EQ(tiers.Get("tier2")->Get("weight")->as_int(), 20);
  EXPECT_TRUE(tiers.Get("tier0")->Get("hot")->as_bool());
}

}  // namespace
}  // namespace configerator
