// Opcode-level battery for the CSL bytecode pipeline: codegen + VM
// semantics, constant-pool interning, the content-hash unit cache (including
// transitive-import invalidation via ClosureDigest), disassembler stability,
// and the interpreter/VM error-position parity regression.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/bytecode.h"
#include "src/lang/codegen.h"
#include "src/lang/compiler.h"
#include "src/lang/unit_cache.h"
#include "src/lang/vm.h"
#include "src/obs/metrics.h"

namespace configerator {
namespace {

Result<std::shared_ptr<CompiledUnit>> CompileSrc(
    const std::string& src, const std::string& path = "test.cconf") {
  ASSIGN_OR_RETURN(std::shared_ptr<Module> module, ParseCsl(src, path));
  return CompileToBytecode(*module);
}

// Runs `src` on a fresh VM (no hooks) and returns the global named `name`.
Result<Value> RunAndGet(const std::string& src, const std::string& name) {
  ASSIGN_OR_RETURN(std::shared_ptr<CompiledUnit> unit, CompileSrc(src));
  Vm vm(nullptr, {});
  auto globals = vm.NewEnvironment(vm.MakeBaseEnvironment());
  Status status = vm.EvalUnit(*unit, globals, /*exports_enabled=*/false);
  if (!status.ok()) {
    return status;
  }
  Value* found = globals->Find(name);
  if (found == nullptr) {
    return NotFoundError("global '" + name + "' not defined");
  }
  return *found;
}

std::string RunError(const std::string& src) {
  auto unit = CompileSrc(src);
  if (!unit.ok()) {
    return std::string(unit.status().message());
  }
  Vm vm(nullptr, {});
  auto globals = vm.NewEnvironment(vm.MakeBaseEnvironment());
  Status status = vm.EvalUnit(**unit, globals, /*exports_enabled=*/false);
  return std::string(status.message());
}

// --- Opcode semantics -------------------------------------------------------

TEST(VmOpcodes, ArithmeticAndComparison) {
  const std::string src =
      "a = 7 + 3 * 2\n"
      "b = 10 / 4\n"
      "c = 10 // 4\n"
      "d = 10 % 4\n"
      "e = -5\n"
      "f = 2 < 3\n"
      "g = 2 >= 3\n"
      "h = \"ab\" + \"cd\"\n"
      "i = 1 == 1.0\n"
      "j = \"b\" in [\"a\", \"b\"]\n"
      "k = \"x\" not in {\"y\": 1}\n"
      "l = not 0\n";
  EXPECT_EQ(RunAndGet(src, "a")->as_int(), 13);
  EXPECT_DOUBLE_EQ(RunAndGet(src, "b")->as_double(), 2.5);
  EXPECT_EQ(RunAndGet(src, "c")->as_int(), 2);
  EXPECT_EQ(RunAndGet(src, "d")->as_int(), 2);
  EXPECT_EQ(RunAndGet(src, "e")->as_int(), -5);
  EXPECT_TRUE(RunAndGet(src, "f")->as_bool());
  EXPECT_FALSE(RunAndGet(src, "g")->as_bool());
  EXPECT_EQ(RunAndGet(src, "h")->as_string(), "abcd");
  EXPECT_TRUE(RunAndGet(src, "i")->as_bool());
  EXPECT_TRUE(RunAndGet(src, "j")->as_bool());
  EXPECT_TRUE(RunAndGet(src, "k")->as_bool());
  EXPECT_TRUE(RunAndGet(src, "l")->as_bool());
}

TEST(VmOpcodes, ShortCircuitReturnsDecidingOperand) {
  EXPECT_EQ(RunAndGet("x = 0 and boom\n", "x")->as_int(), 0);
  EXPECT_EQ(RunAndGet("x = \"v\" or boom\n", "x")->as_string(), "v");
  EXPECT_EQ(RunAndGet("x = 1 and [2]\n", "x")->as_list().size(), 1u);
  EXPECT_EQ(RunAndGet("x = 1 if 2 > 1 else fail()\n", "x")->as_int(), 1);
}

TEST(VmOpcodes, JumpsLoopsAndUnpack) {
  const std::string src =
      "total = 0\n"
      "for i in range(10):\n"
      "    if i == 3:\n"
      "        continue\n"
      "    if i == 7:\n"
      "        break\n"
      "    total += i\n"
      "pairs = 0\n"
      "for k, v in [[1, 2], [3, 4]]:\n"
      "    pairs = pairs + k * v\n"
      "n = 0\n"
      "while n < 5:\n"
      "    n = n + 1\n"
      "keys = \"\"\n"
      "for k in {\"b\": 1, \"a\": 2}:\n"
      "    keys = keys + k\n";
  EXPECT_EQ(RunAndGet(src, "total")->as_int(), 0 + 1 + 2 + 4 + 5 + 6);
  EXPECT_EQ(RunAndGet(src, "pairs")->as_int(), 1 * 2 + 3 * 4);
  EXPECT_EQ(RunAndGet(src, "n")->as_int(), 5);
  // Dict iteration is over sorted keys.
  EXPECT_EQ(RunAndGet(src, "keys")->as_string(), "ab");
}

TEST(VmOpcodes, ClosuresDefaultsAndBuiltinCalls) {
  const std::string src =
      "def fact(n):\n"
      "    if n <= 1:\n"
      "        return 1\n"
      "    return n * fact(n - 1)\n"
      "def greet(name, prefix=\"hello \"):\n"
      "    return prefix + name\n"
      "def make_adder(k):\n"
      "    def add(x):\n"
      "        return x + k\n"
      "    return add\n"
      "a = fact(5)\n"
      "b = greet(\"vm\")\n"
      "c = greet(\"vm\", prefix=\"hi \")\n"
      "d = make_adder(10)(32)\n"
      "e = len(sorted([3, 1, 2]))\n"
      "f = max(4, 9, 2)\n";
  EXPECT_EQ(RunAndGet(src, "a")->as_int(), 120);
  EXPECT_EQ(RunAndGet(src, "b")->as_string(), "hello vm");
  EXPECT_EQ(RunAndGet(src, "c")->as_string(), "hi vm");
  EXPECT_EQ(RunAndGet(src, "d")->as_int(), 42);
  EXPECT_EQ(RunAndGet(src, "e")->as_int(), 3);
  EXPECT_EQ(RunAndGet(src, "f")->as_int(), 9);
}

TEST(VmOpcodes, MutationAndAugmentedTargets) {
  const std::string src =
      "d = {\"k\": [1, 2]}\n"
      "d[\"k\"][1] = 5\n"
      "d[\"n\"] = 1\n"
      "d[\"n\"] += 41\n"
      "job = {\"limits\": {\"mem\": 1}}\n"
      "job.limits.mem = 2048\n"
      "sum = d[\"k\"][0] + d[\"k\"][1] + d[\"n\"] + job.limits.mem\n";
  EXPECT_EQ(RunAndGet(src, "sum")->as_int(), 1 + 5 + 42 + 2048);
}

TEST(VmOpcodes, RuntimeErrorsCarryOriginAndLine) {
  EXPECT_EQ(RunError("x = 1\ny = x + \"s\"\n"),
            "test.cconf:2: cannot add int and string");
  EXPECT_EQ(RunError("v = [1, 2]\nz = v[5]\n"),
            "test.cconf:2: list index out of range");
  EXPECT_EQ(RunError("assert 1 == 2, \"boom\"\n"), "test.cconf:1: boom");
  EXPECT_EQ(RunError("nope()\n"),
            "test.cconf:1: undefined name 'nope'");
  EXPECT_EQ(RunError("x = 3\nx(1)\n"),
            "test.cconf:2: value of type int is not callable");
}

TEST(VmOpcodes, StepAndRecursionLimits) {
  auto unit = CompileSrc("while True:\n    pass\n");
  ASSERT_TRUE(unit.ok());
  Vm vm(nullptr, {});
  vm.set_step_limit(1000);
  auto globals = vm.NewEnvironment(vm.MakeBaseEnvironment());
  Status status = vm.EvalUnit(**unit, globals, false);
  EXPECT_EQ(std::string(status.message()),
            "test.cconf:1: evaluation step limit exceeded (runaway config "
            "code?)");

  std::string recursion = RunError("def f():\n    return f()\nf()\n");
  EXPECT_TRUE(recursion.find("recursion limit exceeded") != std::string::npos)
      << recursion;
}

// --- Constant pool ----------------------------------------------------------

TEST(VmBytecode, ConstantPoolDedupIsKindStrict) {
  auto unit = CompileSrc(
      "a = 1\n"
      "b = 1\n"
      "c = 1.0\n"
      "d = True\n"
      "e = \"x\"\n"
      "f = \"x\"\n"
      "g = 1\n");
  ASSERT_TRUE(unit.ok());
  const std::vector<Value>& pool = (*unit)->top.constants;
  int ints = 0, doubles = 0, bools = 0, strings = 0;
  for (const Value& v : pool) {
    ints += v.is_int() ? 1 : 0;
    doubles += v.is_double() ? 1 : 0;
    bools += v.is_bool() ? 1 : 0;
    strings += v.is_string() ? 1 : 0;
  }
  // 1 interned once despite three uses; 1.0 and True are distinct entries
  // even though they Equals(1); "x" interned once.
  EXPECT_EQ(ints, 1);
  EXPECT_EQ(doubles, 1);
  EXPECT_EQ(bools, 1);
  EXPECT_EQ(strings, 1);
}

// --- Disassembler -----------------------------------------------------------

TEST(VmBytecode, DisassemblerIsStable) {
  auto unit = CompileSrc(
      "x = 1 + 2\n"
      "def f(a):\n"
      "    return a * x\n"
      "y = f(3)\n");
  ASSERT_TRUE(unit.ok());
  std::string listing = Disassemble(**unit);
  // Same unit, same text — and the text names every structural element.
  EXPECT_EQ(listing, Disassemble(**unit));
  for (const char* needle :
       {"Const", "Add", "StoreName", "MakeClosure", "CheckCallable", "Call",
        "Return", "Halt", "fn 0 f/1"}) {
    EXPECT_TRUE(listing.find(needle) != std::string::npos)
        << "missing " << needle << " in:\n"
        << listing;
  }
  // Every opcode the X-macro declares has a printable name.
#define X(id, operands) \
  EXPECT_FALSE(OpCodeName(OpCode::k##id).empty());
  CSL_OPCODE_LIST(X)
#undef X
}

// --- Unit cache -------------------------------------------------------------

TEST(VmUnitCache, HitsOnSameContentMissesOnChange) {
  CompiledUnitCache cache;
  auto a1 = cache.GetOrCompile("m.cinc", "A = 1\n");
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  auto a2 = cache.GetOrCompile("m.cinc", "A = 1\n");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a1->get(), a2->get()) << "hit must reuse the same unit";

  auto b = cache.GetOrCompile("m.cinc", "A = 2\n");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(a1->get(), b->get());

  // Failed parses are cached too, and replayed identically.
  auto bad1 = cache.GetOrCompile("bad.cinc", "def :\n");
  auto bad2 = cache.GetOrCompile("bad.cinc", "def :\n");
  EXPECT_FALSE(bad1.ok());
  EXPECT_EQ(bad1.status(), bad2.status());
}

TEST(VmUnitCache, ClosureDigestSeesTransitiveImportChanges) {
  InMemorySources sources;
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "export_if_last({\"a\": A})\n");
  sources.Put("lib.cinc",
              "import_python(\"util.cinc\", \"*\")\n"
              "A = BASE + 1\n");
  sources.Put("util.cinc", "BASE = 41\n");

  CompiledUnitCache cache;
  auto d1 = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d1.ok());
  auto d1_again = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d1_again.ok());
  EXPECT_EQ(*d1, *d1_again);

  // A change two imports deep must change the entry's closure digest even
  // though entry.cconf and lib.cinc are byte-identical.
  sources.Put("util.cinc", "BASE = 42\n");
  auto d2 = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d2.ok());
  EXPECT_NE(*d1, *d2);

  // Unrelated files don't affect it.
  sources.Put("other.cinc", "Z = 1\n");
  auto d3 = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(*d2, *d3);
}

TEST(VmUnitCache, ClosureDigestCoversSchemasAndValidators) {
  InMemorySources sources;
  sources.Put("entry.cconf",
              "import_thrift(\"job.thrift\")\n"
              "export_if_last(Job(name=\"x\"))\n");
  sources.Put("job.thrift",
              "struct Job {\n  1: string name;\n}\n");

  CompiledUnitCache cache;
  auto d1 = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d1.ok());

  // Adding a validator companion changes the closure.
  sources.Put("job.thrift-cvalidator",
              "def validate_Job(job):\n    return True\n");
  auto d2 = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d2.ok());
  EXPECT_NE(*d1, *d2);

  // Editing the schema itself changes it too.
  sources.Put("job.thrift",
              "struct Job {\n  1: string name;\n  2: i32 mem;\n}\n");
  auto d3 = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  ASSERT_TRUE(d3.ok());
  EXPECT_NE(*d2, *d3);
}

TEST(VmUnitCache, ClosureDigestRejectsDynamicImports) {
  InMemorySources sources;
  sources.Put("entry.cconf",
              "p = \"lib\" + \".cinc\"\n"
              "import_python(p)\n"
              "export_if_last({})\n");
  CompiledUnitCache cache;
  auto digest = ClosureDigest("entry.cconf", sources.AsReader(), &cache);
  EXPECT_FALSE(digest.ok());
  EXPECT_TRUE(std::string(digest.status().message())
                  .find("computed import path") != std::string::npos);
}

// --- Facade: engines agree, cache observable through metrics ---------------

struct EngineResult {
  Status status = OkStatus();
  std::vector<std::string> dumps;
};

EngineResult CompileWith(const InMemorySources& sources,
                         const std::string& entry,
                         CompilerOptions::Engine engine,
                         CompiledUnitCache* cache = nullptr,
                         MetricsRegistry* metrics = nullptr) {
  CompilerOptions options;
  options.engine = engine;
  options.unit_cache = cache;
  options.metrics = metrics;
  ConfigCompiler compiler(sources.AsReader(), options);
  EngineResult result;
  auto output = compiler.Compile(entry);
  if (!output.ok()) {
    result.status = output.status();
    return result;
  }
  for (const CompiledConfig& config : output->configs) {
    result.dumps.push_back(config.path + "\n" + config.content.DumpPretty());
  }
  return result;
}

TEST(VmFacade, VmIsTheDefaultAndMatchesInterpreter) {
  InMemorySources sources;
  sources.Put("job.thrift",
              "struct Job {\n"
              "  1: string name;\n"
              "  2: i32 mem = 64;\n"
              "}\n");
  sources.Put("lib.cinc",
              "import_thrift(\"job.thrift\")\n"
              "def mk(name, mem=128):\n"
              "    return Job(name=name, mem=mem)\n");
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "jobs = []\n"
              "for i in range(3):\n"
              "    jobs = jobs + [mk(\"job-\" + str(i), mem=64 + i)]\n"
              "export(\"a.json\", jobs[0])\n"
              "export(\"b.json\", {\"count\": len(jobs)})\n");

  EngineResult vm =
      CompileWith(sources, "entry.cconf", CompilerOptions::Engine::kBytecodeVm);
  EngineResult interp = CompileWith(sources, "entry.cconf",
                                    CompilerOptions::Engine::kInterpreter);
  ASSERT_TRUE(vm.status.ok()) << vm.status;
  ASSERT_TRUE(interp.status.ok()) << interp.status;
  EXPECT_EQ(vm.dumps, interp.dumps);

  // Default-constructed options run the VM: same artifacts again.
  ConfigCompiler default_compiler(sources.AsReader());
  auto output = default_compiler.Compile("entry.cconf");
  ASSERT_TRUE(output.ok());
  std::vector<std::string> dumps;
  for (const CompiledConfig& config : output->configs) {
    dumps.push_back(config.path + "\n" + config.content.DumpPretty());
  }
  EXPECT_EQ(dumps, vm.dumps);
}

TEST(VmFacade, SharedCacheHitsAcrossCompilesAndInvalidatesOnEdit) {
  InMemorySources sources;
  sources.Put("lib.cinc", "A = 1\n");
  sources.Put("e1.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "export_if_last({\"a\": A})\n");
  sources.Put("e2.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "export_if_last({\"a\": A + 1})\n");

  CompiledUnitCache cache;
  MetricsRegistry metrics;
  // The digest walk misses both units, then the session hash-hits them.
  EngineResult r1 = CompileWith(sources, "e1.cconf",
                                CompilerOptions::Engine::kBytecodeVm, &cache,
                                &metrics);
  ASSERT_TRUE(r1.status.ok()) << r1.status;
  uint64_t misses_after_first =
      metrics.GetCounter("csl.unit_cache.misses")->value();
  EXPECT_EQ(misses_after_first, 2u);
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.hits")->value(), 2u);

  // Second entry shares lib.cinc: only its own body misses (in the digest
  // walk); lib.cinc's subtree digest replays from the node memo without
  // touching the unit cache, then both units hit during evaluation.
  EngineResult r2 = CompileWith(sources, "e2.cconf",
                                CompilerOptions::Engine::kBytecodeVm, &cache,
                                &metrics);
  ASSERT_TRUE(r2.status.ok()) << r2.status;
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.misses")->value(), 3u);
  EXPECT_EQ(metrics.GetCounter("csl.unit_cache.hits")->value(), 4u);

  // Editing the shared module invalidates: recompile, results track the edit.
  sources.Put("lib.cinc", "A = 100\n");
  EngineResult r3 = CompileWith(sources, "e1.cconf",
                                CompilerOptions::Engine::kBytecodeVm, &cache,
                                &metrics);
  ASSERT_TRUE(r3.status.ok()) << r3.status;
  EXPECT_GT(metrics.GetCounter("csl.unit_cache.misses")->value(),
            misses_after_first);
  EXPECT_TRUE(r3.dumps[0].find("100") != std::string::npos) << r3.dumps[0];
}

// --- Whole-entry output memoization -----------------------------------------

TEST(VmOutputMemo, ReplaysWholeEntryOnUnchangedClosure) {
  InMemorySources sources;
  sources.Put("job.thrift",
              "struct Job {\n  1: string name;\n  2: i32 mem = 64;\n}\n");
  sources.Put("lib.cinc",
              "import_thrift(\"job.thrift\")\n"
              "def mk(name):\n"
              "    return Job(name=name)\n");
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "export_if_last(mk(\"a\"))\n");

  CompiledUnitCache cache;
  CompilerOptions options;
  options.unit_cache = &cache;
  ConfigCompiler compiler(sources.AsReader(), options);

  auto o1 = compiler.Compile("entry.cconf");
  ASSERT_TRUE(o1.ok()) << o1.status();
  EXPECT_EQ(cache.output_hits(), 0u);
  EXPECT_EQ(cache.output_misses(), 1u);

  // Unchanged closure: the memoized output replays, bit-identically.
  auto o2 = compiler.Compile("entry.cconf");
  ASSERT_TRUE(o2.ok()) << o2.status();
  EXPECT_EQ(cache.output_hits(), 1u);
  ASSERT_EQ(o1->configs.size(), o2->configs.size());
  EXPECT_EQ(o1->configs[0].path, o2->configs[0].path);
  EXPECT_EQ(o1->configs[0].content.DumpPretty(),
            o2->configs[0].content.DumpPretty());
  EXPECT_EQ(o1->dependencies, o2->dependencies);

  // An edit two hops from the entry (the schema's default) changes the
  // closure digest: the memo misses and the fresh output tracks the edit.
  sources.Put("job.thrift",
              "struct Job {\n  1: string name;\n  2: i32 mem = 256;\n}\n");
  auto o3 = compiler.Compile("entry.cconf");
  ASSERT_TRUE(o3.ok()) << o3.status();
  EXPECT_EQ(cache.output_misses(), 2u);
  EXPECT_NE(o3->configs[0].content.DumpPretty(),
            o2->configs[0].content.DumpPretty());
  EXPECT_NE(o3->configs[0].content.DumpPretty().find("256"),
            std::string::npos);
}

TEST(VmOutputMemo, CachesDeterministicFailures) {
  InMemorySources sources;
  sources.Put("job.thrift", "struct Job {\n  1: string name;\n}\n");
  sources.Put("job.thrift-cvalidator",
              "def validate_Job(job):\n"
              "    return job.name != \"bad\"\n");
  sources.Put("entry.cconf",
              "import_thrift(\"job.thrift\")\n"
              "export_if_last(Job(name=\"bad\"))\n");

  CompiledUnitCache cache;
  CompilerOptions options;
  options.unit_cache = &cache;
  ConfigCompiler compiler(sources.AsReader(), options);

  auto e1 = compiler.Compile("entry.cconf");
  ASSERT_FALSE(e1.ok());
  auto e2 = compiler.Compile("entry.cconf");
  ASSERT_FALSE(e2.ok());
  EXPECT_EQ(e1.status(), e2.status());
  EXPECT_EQ(cache.output_hits(), 1u) << "failures replay from the memo too";

  // Fixing the validator's input un-caches: new digest, new (passing) run.
  sources.Put("entry.cconf",
              "import_thrift(\"job.thrift\")\n"
              "export_if_last(Job(name=\"good\"))\n");
  auto ok = compiler.Compile("entry.cconf");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(VmOutputMemo, DynamicImportClosureIsNeverMemoized) {
  InMemorySources sources;
  sources.Put("lib.cinc", "A = 7\n");
  sources.Put("entry.cconf",
              "p = \"lib\" + \".cinc\"\n"
              "import_python(p, \"*\")\n"
              "export_if_last({\"a\": A})\n");

  CompiledUnitCache cache;
  CompilerOptions options;
  options.unit_cache = &cache;
  ConfigCompiler compiler(sources.AsReader(), options);

  // The closure is only knowable by evaluating, so both compiles take the
  // full path and the output memo is never consulted.
  auto o1 = compiler.Compile("entry.cconf");
  ASSERT_TRUE(o1.ok()) << o1.status();
  auto o2 = compiler.Compile("entry.cconf");
  ASSERT_TRUE(o2.ok()) << o2.status();
  EXPECT_EQ(cache.output_hits(), 0u);
  EXPECT_EQ(cache.output_misses(), 0u);
  EXPECT_EQ(o1->configs[0].content.DumpPretty(),
            o2->configs[0].content.DumpPretty());
}

// --- Regression: interpreter and VM agree on error positions ---------------
//
// The interpreter used to report runtime errors inside a cross-module
// function against the *caller's* module path: CallValue never switched
// current_origin_ to the callee's defining module, so "lib.cinc line 2"
// failures showed up as "entry.cconf:2". The VM derives positions from the
// defining chunk, which made the two engines disagree. Both must now blame
// the defining module, with the call-site chain wrapped around it.

TEST(VmErrorParity, NestedCrossModuleCallPositions) {
  InMemorySources sources;
  sources.Put("lib.cinc",
              "def inner(v):\n"
              "    return v + \"s\"\n"       // Fails here: lib.cinc:2.
              "def outer(v):\n"
              "    return inner(v)\n");      // Call site: lib.cinc:4.
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "x = outer(3)\n"               // Call site: entry.cconf:2.
              "export_if_last({\"x\": x})\n");

  EngineResult vm =
      CompileWith(sources, "entry.cconf", CompilerOptions::Engine::kBytecodeVm);
  EngineResult interp = CompileWith(sources, "entry.cconf",
                                    CompilerOptions::Engine::kInterpreter);
  ASSERT_FALSE(vm.status.ok());
  ASSERT_FALSE(interp.status.ok());
  EXPECT_EQ(vm.status, interp.status);
  EXPECT_EQ(std::string(interp.status.message()),
            "entry.cconf:2: in call: lib.cinc:4: in call: "
            "lib.cinc:2: cannot add int and string");
}

}  // namespace
}  // namespace configerator
