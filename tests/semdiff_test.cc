// Semantic diffing + provenance analysis: the 4-way classification
// (no-op / value-delta / control-shift / type-change), the provenance graph
// (nodes, reverse edges, line attribution), the graph gating rules
// G007–G010, diff-hunk -> symbol attribution, byte-stable determinism, a
// 20-commit scripted sequence (what scripts/check.sh --semdiff drives), and
// the acceptance scenario: a latent control shift in an UNTOUCHED dependent
// is classified (not no-op) and the landing is blocked by a G-rule error.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/provenance.h"
#include "src/analysis/semdiff.h"
#include "src/core/stack.h"
#include "src/lang/compiler.h"
#include "src/pipeline/ci.h"
#include "src/vcs/diff.h"

namespace configerator {
namespace {

size_t CountRule(const std::vector<LintDiagnostic>& diags,
                 std::string_view rule_id) {
  return std::count_if(diags.begin(), diags.end(),
                       [rule_id](const LintDiagnostic& d) {
                         return d.rule_id == rule_id;
                       });
}

const LintDiagnostic* FindRule(const std::vector<LintDiagnostic>& diags,
                               std::string_view rule_id) {
  for (const LintDiagnostic& d : diags) {
    if (d.rule_id == rule_id) {
      return &d;
    }
  }
  return nullptr;
}

// ---- Provenance graph -------------------------------------------------------

TEST(ProvenanceGraphTest, NodesEdgesAndDependents) {
  InMemorySources sources;
  sources.Put("lib.cinc", "BASE = 8000\nPORT = BASE + 80\n");
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"PORT\")\n"
              "export_if_last({\"port\": PORT})\n");
  ProvenanceGraph graph =
      ProvenanceGraph::Build(sources.AsReader(), {"entry.cconf"});
  EXPECT_TRUE(graph.sound());

  // The closure pulled lib.cinc in through the import.
  const ProvenanceNode* port = graph.Find("lib.cinc", "PORT");
  ASSERT_NE(port, nullptr);
  EXPECT_FALSE(port->is_export);

  // The entry's export node depends on lib.cinc:PORT...
  const ProvenanceNode* exported = graph.Find("entry.cconf", "entry.json");
  ASSERT_NE(exported, nullptr);
  EXPECT_TRUE(exported->is_export);
  ASSERT_EQ(exported->deps.count("lib.cinc"), 1u);
  EXPECT_EQ(exported->deps.at("lib.cinc").count("PORT"), 1u);

  // ...so reverse reachability finds it from the module symbol.
  auto dependents = graph.Dependents("lib.cinc", "PORT");
  bool found = false;
  for (const auto& [file, symbol] : dependents) {
    found = found || (file == "entry.cconf");
  }
  EXPECT_TRUE(found);
}

TEST(ProvenanceGraphTest, SymbolsAtLineAttribution) {
  InMemorySources sources;
  sources.Put("lib.cinc",
              "A = 1\n"
              "B = {\n"
              "    \"x\": 1,\n"
              "    \"y\": 2,\n"
              "}\n"
              "C = 3\n");
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "export_if_last({\"a\": A, \"b\": B, \"c\": C})\n");
  ProvenanceGraph graph =
      ProvenanceGraph::Build(sources.AsReader(), {"entry.cconf"});
  EXPECT_EQ(graph.SymbolsAtLine("lib.cinc", 1),
            std::vector<std::string>{"A"});
  // Line 3 is inside B's multi-line dict literal.
  EXPECT_EQ(graph.SymbolsAtLine("lib.cinc", 3),
            std::vector<std::string>{"B"});
  EXPECT_EQ(graph.SymbolsAtLine("lib.cinc", 6),
            std::vector<std::string>{"C"});
  EXPECT_TRUE(graph.SymbolsAtLine("lib.cinc", 40).empty());
}

TEST(ProvenanceGraphTest, G007FlagsDeadModuleSymbol) {
  InMemorySources sources;
  sources.Put("lib.cinc",
              "USED = 1\n"
              "HELPER = 2\n"
              "ALIVE_VIA_HELPER = HELPER + 1\n"
              "DEAD = 99\n");
  sources.Put("entry.cconf",
              "import_python(\"lib.cinc\", \"*\")\n"
              "export_if_last({\"used\": USED, \"a\": ALIVE_VIA_HELPER})\n");
  ProvenanceGraph graph =
      ProvenanceGraph::Build(sources.AsReader(), {"entry.cconf"});
  ASSERT_TRUE(graph.sound());
  const LintDiagnostic* g007 = FindRule(graph.findings(), "G007");
  ASSERT_NE(g007, nullptr);
  EXPECT_EQ(g007->file, "lib.cinc");
  EXPECT_EQ(g007->line, 4);
  EXPECT_NE(g007->message.find("DEAD"), std::string::npos);
  EXPECT_EQ(g007->severity, LintSeverity::kWarning);
  // HELPER is consumed intra-module; only DEAD fires.
  EXPECT_EQ(CountRule(graph.findings(), "G007"), 1u);
}

TEST(ProvenanceGraphTest, G009FlagsStaleRestraintReference) {
  InMemorySources sources;
  sources.Put("gatekeeper/exp.json",
              "{\"project\": \"exp\", \"rules\": [{\"restraints\": "
              "[{\"type\": \"abolished_restraint\"}], "
              "\"pass_probability\": 1.0}]}");
  ProvenanceGraph graph =
      ProvenanceGraph::Build(sources.AsReader(), {"gatekeeper/exp.json"});
  const LintDiagnostic* g009 = FindRule(graph.findings(), "G009");
  ASSERT_NE(g009, nullptr);
  EXPECT_EQ(g009->severity, LintSeverity::kError);
  EXPECT_NE(g009->message.find("abolished_restraint"), std::string::npos);

  // A project using only registered types is clean.
  sources.Put("gatekeeper/ok.json",
              "{\"project\": \"ok\", \"rules\": [{\"restraints\": "
              "[{\"type\": \"employee\"}], \"pass_probability\": 1.0}]}");
  ProvenanceGraph clean =
      ProvenanceGraph::Build(sources.AsReader(), {"gatekeeper/ok.json"});
  EXPECT_EQ(CountRule(clean.findings(), "G009"), 0u);
  // And its node carries restraint/context pseudo-module edges.
  const ProvenanceNode* node = clean.Find("gatekeeper/ok.json", "ok");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->is_gatekeeper);
  EXPECT_EQ(node->deps.at("restraints").count("employee"), 1u);
  EXPECT_EQ(node->deps.at("context").count("is_employee"), 1u);
}

TEST(ProvenanceGraphTest, G010FlagsShadowedImport) {
  InMemorySources sources;
  sources.Put("a.cinc", "TIMEOUT = 5\n");
  sources.Put("b.cinc", "TIMEOUT = 30\nRETRIES = 3\n");
  sources.Put("entry.cconf",
              "import_python(\"a.cinc\", \"TIMEOUT\")\n"
              "import_python(\"b.cinc\", \"*\")\n"
              "export_if_last({\"t\": TIMEOUT, \"r\": RETRIES})\n");
  ProvenanceGraph graph =
      ProvenanceGraph::Build(sources.AsReader(), {"entry.cconf"});
  const LintDiagnostic* g010 = FindRule(graph.findings(), "G010");
  ASSERT_NE(g010, nullptr);
  EXPECT_EQ(g010->severity, LintSeverity::kError);
  EXPECT_EQ(g010->file, "entry.cconf");
  EXPECT_EQ(g010->line, 2);
  EXPECT_NE(g010->message.find("TIMEOUT"), std::string::npos);
}

TEST(ProvenanceGraphTest, ContextFieldTableCoversBuiltinTypes) {
  // Every builtin restraint type must resolve to its context fields (or be
  // a known field-free type) so control-shift detection sees field changes.
  for (const std::string& type : RestraintRegistry::Builtin().TypeNames()) {
    if (type == "always" || type == "laser") {
      continue;  // No user-context field reads ("laser" uses pseudo-deps).
    }
    EXPECT_FALSE(ContextFieldsForRestraint(type).empty())
        << "no context fields mapped for builtin restraint '" << type << "'";
  }
}

// ---- Semantic diff: 4-way classification ------------------------------------

class SemdiffTest : public ::testing::Test {
 protected:
  SemanticDiffReport Classify(const std::vector<std::string>& touched,
                              const std::vector<std::string>& dependents) {
    SemanticDiffer differ(old_.AsReader(), new_.AsReader());
    return differ.Classify(touched, dependents);
  }

  InMemorySources old_;
  InMemorySources new_;
};

TEST_F(SemdiffTest, CommentOnlyChangeIsProvablyNoOp) {
  old_.Put("lib.cinc", "PORT = 8080\nRETRIES = 3\n");
  new_.Put("lib.cinc", "# service port\nPORT = 8080\nRETRIES = 3\n");
  old_.Put("entry.cconf",
           "import_python(\"lib.cinc\", \"*\")\n"
           "export_if_last({\"port\": PORT, \"retries\": RETRIES})\n");
  new_.Put("entry.cconf",
           "import_python(\"lib.cinc\", \"*\")\n"
           "export_if_last({\"port\": PORT, \"retries\": RETRIES})\n");

  SemanticDiffReport report = Classify({"lib.cinc"}, {"entry.cconf"});
  EXPECT_TRUE(report.sound);
  EXPECT_TRUE(report.provably_noop) << report.Summary();
  ASSERT_GT(report.impacts.size(), 0u);
  for (const SymbolImpact& impact : report.impacts) {
    EXPECT_EQ(impact.kind, ImpactKind::kNoOp) << impact.Describe();
  }
}

TEST_F(SemdiffTest, ConstantEditIsValueDeltaWithBounds) {
  old_.Put("lib.cinc", "PORT = 8080\n");
  new_.Put("lib.cinc", "PORT = 9090\n");
  old_.Put("entry.cconf",
           "import_python(\"lib.cinc\", \"*\")\n"
           "export_if_last({\"port\": PORT})\n");
  new_.Put("entry.cconf",
           "import_python(\"lib.cinc\", \"*\")\n"
           "export_if_last({\"port\": PORT})\n");

  SemanticDiffReport report = Classify({"lib.cinc"}, {"entry.cconf"});
  EXPECT_FALSE(report.provably_noop);
  const SymbolImpact* port = report.Find("lib.cinc", "PORT");
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->kind, ImpactKind::kValueDelta) << port->Describe();
  EXPECT_NE(port->old_value.find("8080"), std::string::npos);
  EXPECT_NE(port->new_value.find("9090"), std::string::npos);
  // The untouched entry's export moves with it.
  const SymbolImpact* exported = report.Find("entry.cconf", "entry.json");
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(exported->kind, ImpactKind::kValueDelta) << exported->Describe();
}

TEST_F(SemdiffTest, KindChangeIsTypeChange) {
  old_.Put("lib.cinc", "LIMIT = 100\n");
  new_.Put("lib.cinc", "LIMIT = \"unbounded\"\n");
  SemanticDiffReport report = Classify({"lib.cinc"}, {});
  const SymbolImpact* limit = report.Find("lib.cinc", "LIMIT");
  ASSERT_NE(limit, nullptr);
  EXPECT_EQ(limit->kind, ImpactKind::kTypeChange) << limit->Describe();
}

TEST_F(SemdiffTest, AddedAndRemovedSymbolsAreTypeChanges) {
  old_.Put("lib.cinc", "KEEP = 1\nGONE = 2\n");
  new_.Put("lib.cinc", "KEEP = 1\nFRESH = 3\n");
  SemanticDiffReport report = Classify({"lib.cinc"}, {});
  const SymbolImpact* gone = report.Find("lib.cinc", "GONE");
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->kind, ImpactKind::kTypeChange);
  EXPECT_NE(gone->detail.find("removed"), std::string::npos);
  const SymbolImpact* fresh = report.Find("lib.cinc", "FRESH");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->kind, ImpactKind::kTypeChange);
  EXPECT_NE(fresh->detail.find("added"), std::string::npos);
  const SymbolImpact* keep = report.Find("lib.cinc", "KEEP");
  ASSERT_NE(keep, nullptr);
  EXPECT_EQ(keep->kind, ImpactKind::kNoOp) << keep->Describe();
}

TEST_F(SemdiffTest, GuardFlipInUntouchedDependentIsControlShift) {
  // The commit only touches flags.cinc, but the semantic consequence lives
  // in the UNTOUCHED entry: which branch it exports flips. Both branch arms
  // are byte-identical across versions — only the classification of the
  // guard edge distinguishes this from a no-op.
  old_.Put("flags.cinc", "USE_BIG = True\n");
  new_.Put("flags.cinc", "USE_BIG = False\n");
  const char* entry =
      "import_python(\"flags.cinc\", \"*\")\n"
      "if USE_BIG:\n"
      "    export_if_last({\"mem\": 4096})\n"
      "else:\n"
      "    export_if_last({\"mem\": 512})\n";
  old_.Put("entry.cconf", entry);
  new_.Put("entry.cconf", entry);

  SemanticDiffReport report = Classify({"flags.cinc"}, {"entry.cconf"});
  EXPECT_FALSE(report.provably_noop);
  const SymbolImpact* exported = report.Find("entry.cconf", "entry.json");
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(exported->kind, ImpactKind::kControlShift) << exported->Describe();
  EXPECT_NE(exported->detail.find("USE_BIG"), std::string::npos);
}

TEST_F(SemdiffTest, GatekeeperRestraintSwapIsControlShift) {
  old_.Put("gatekeeper/ramp.json",
           "{\"project\": \"ramp\", \"rules\": [{\"restraints\": "
           "[{\"type\": \"country\", \"params\": {\"countries\": [\"US\"]}}], "
           "\"pass_probability\": 1.0}]}");
  new_.Put("gatekeeper/ramp.json",
           "{\"project\": \"ramp\", \"rules\": [{\"restraints\": "
           "[{\"type\": \"employee\"}], \"pass_probability\": 1.0}]}");
  SemanticDiffReport report = Classify({"gatekeeper/ramp.json"}, {});
  const SymbolImpact* ramp = report.Find("gatekeeper/ramp.json", "ramp");
  ASSERT_NE(ramp, nullptr);
  EXPECT_EQ(ramp->kind, ImpactKind::kControlShift) << ramp->Describe();
}

TEST_F(SemdiffTest, GatekeeperProbabilityEditIsValueDelta) {
  old_.Put("gatekeeper/ramp.json",
           "{\"project\": \"ramp\", \"rules\": [{\"restraints\": "
           "[{\"type\": \"employee\"}], \"pass_probability\": 0.5}]}");
  new_.Put("gatekeeper/ramp.json",
           "{\"project\": \"ramp\", \"rules\": [{\"restraints\": "
           "[{\"type\": \"employee\"}], \"pass_probability\": 0.9}]}");
  SemanticDiffReport report = Classify({"gatekeeper/ramp.json"}, {});
  const SymbolImpact* ramp = report.Find("gatekeeper/ramp.json", "ramp");
  ASSERT_NE(ramp, nullptr);
  EXPECT_EQ(ramp->kind, ImpactKind::kValueDelta) << ramp->Describe();
}

TEST_F(SemdiffTest, GatekeeperReformatIsNoOp) {
  old_.Put("gatekeeper/ramp.json",
           "{\"project\": \"ramp\", \"rules\": [{\"restraints\": "
           "[{\"type\": \"employee\"}], \"pass_probability\": 0.5}]}");
  new_.Put("gatekeeper/ramp.json",
           "{\n  \"project\": \"ramp\",\n  \"rules\": [{\"restraints\": "
           "[{\"type\": \"employee\"}],\n    \"pass_probability\": 0.5}]\n}");
  SemanticDiffReport report = Classify({"gatekeeper/ramp.json"}, {});
  const SymbolImpact* ramp = report.Find("gatekeeper/ramp.json", "ramp");
  ASSERT_NE(ramp, nullptr);
  EXPECT_EQ(ramp->kind, ImpactKind::kNoOp) << ramp->Describe();
  EXPECT_TRUE(report.provably_noop);
}

TEST_F(SemdiffTest, SchemaEditWithholdsNoOpCertificate) {
  // Thrift default values are not modeled abstractly: a file reading a
  // touched .thrift must NOT be certified no-op even if its own symbols
  // look byte-identical.
  const char* thrift_old =
      "struct Job {\n  1: required string name;\n"
      "  2: optional i32 memory_mb = 256;\n}\n";
  const char* thrift_new =
      "struct Job {\n  1: required string name;\n"
      "  2: optional i32 memory_mb = 512;\n}\n";
  const char* entry =
      "import_thrift(\"job.thrift\")\n"
      "export_if_last(Job(name=\"cache\"))\n";
  old_.Put("job.thrift", thrift_old);
  new_.Put("job.thrift", thrift_new);
  old_.Put("entry.cconf", entry);
  new_.Put("entry.cconf", entry);

  SemanticDiffReport report = Classify({"job.thrift"}, {"entry.cconf"});
  EXPECT_FALSE(report.provably_noop);
  const SymbolImpact* exported = report.Find("entry.cconf", "entry.json");
  ASSERT_NE(exported, nullptr);
  EXPECT_NE(exported->kind, ImpactKind::kNoOp) << exported->Describe();
}

TEST_F(SemdiffTest, NewlyDecidedBranchFiresG008) {
  old_.Put("lib.cinc", "THRESHOLD = 10\n");
  new_.Put("lib.cinc", "THRESHOLD = 1\n");
  const char* entry =
      "import_python(\"lib.cinc\", \"*\")\n"
      "mode = \"small\"\n"
      "if THRESHOLD > 5:\n"
      "    mode = \"big\"\n"
      "export_if_last({\"mode\": mode})\n";
  old_.Put("entry.cconf", entry);
  new_.Put("entry.cconf", entry);

  SemanticDiffReport report = Classify({"lib.cinc"}, {"entry.cconf"});
  // Old side decided the branch true; new side decides it false — a NEWLY
  // decided direction, so G008 reports the transition.
  const LintDiagnostic* g008 = FindRule(report.findings, "G008");
  ASSERT_NE(g008, nullptr);
  EXPECT_EQ(g008->file, "entry.cconf");
  EXPECT_EQ(g008->line, 3);
  EXPECT_EQ(g008->severity, LintSeverity::kWarning);

  // An IDENTICAL constant guard on both sides stays quiet: pre-existing
  // decided branches are not this commit's problem.
  SemanticDiffer same(new_.AsReader(), new_.AsReader());
  SemanticDiffReport unchanged = same.Classify({"lib.cinc"}, {"entry.cconf"});
  EXPECT_EQ(FindRule(unchanged.findings, "G008"), nullptr);
}

TEST_F(SemdiffTest, UnparseableVersionIsUnsound) {
  old_.Put("lib.cinc", "A = 1\n");
  new_.Put("lib.cinc", "def broken(:\n");
  SemanticDiffReport report = Classify({"lib.cinc"}, {});
  EXPECT_FALSE(report.sound);
  EXPECT_FALSE(report.provably_noop);
  for (const SymbolImpact& impact : report.impacts) {
    EXPECT_NE(impact.kind, ImpactKind::kNoOp) << impact.Describe();
  }
}

// ---- Diff-hunk -> symbol attribution ----------------------------------------

TEST(AttributeDiffLinesTest, AttributesHunksToDefinitionRanges) {
  std::string old_text =
      "A = 1\n"
      "B = {\n"
      "    \"x\": 1,\n"
      "}\n"
      "C = 3\n";
  std::string new_text =
      "A = 1\n"
      "B = {\n"
      "    \"x\": 2,\n"
      "    \"y\": 9,\n"
      "}\n"
      "C = 4\n";
  auto old_surface = ComputeSymbolSurface("m.cinc", old_text);
  auto new_surface = ComputeSymbolSurface("m.cinc", new_text);
  auto attributed = AttributeDiffLines(old_surface, new_surface,
                                       DiffLines(old_text, new_text));
  ASSERT_EQ(attributed.count("B"), 1u);
  ASSERT_EQ(attributed.count("C"), 1u);
  EXPECT_EQ(attributed.count("A"), 0u);  // Untouched symbol: no lines.
  // B's changed lines are inside its new-side dict literal.
  for (int line : attributed.at("B")) {
    EXPECT_GE(line, 2);
    EXPECT_LE(line, 5);
  }
}

TEST(AttributeDiffLinesTest, CommentAndBlankHunksAreNotAttributed) {
  // A changed line that is blank or comment-only can fall inside a symbol's
  // def range (trailing comments share the range of multi-line defs) but
  // cannot change its value; attributing it used to flag the symbol as
  // touched and defeat the no-op certificate.
  std::string old_text =
      "B = {\n"
      "    \"x\": 1,\n"
      "    # tuning notes\n"
      "}\n";
  std::string new_text =
      "B = {\n"
      "    \"x\": 1,\n"
      "    # tuning notes, revised\n"
      "\n"
      "}\n";
  auto old_surface = ComputeSymbolSurface("m.cinc", old_text);
  auto new_surface = ComputeSymbolSurface("m.cinc", new_text);
  auto attributed = AttributeDiffLines(old_surface, new_surface,
                                       DiffLines(old_text, new_text));
  EXPECT_EQ(attributed.count("B"), 0u);

  // A real edit in the same hunk still attributes.
  std::string value_text =
      "B = {\n"
      "    \"x\": 2,\n"
      "    # tuning notes, revised\n"
      "}\n";
  auto value_surface = ComputeSymbolSurface("m.cinc", value_text);
  auto value_attr = AttributeDiffLines(old_surface, value_surface,
                                       DiffLines(old_text, value_text));
  EXPECT_EQ(value_attr.count("B"), 1u);
}

TEST(AttributeDiffLinesTest, DiffOpsCarryLineNumbers) {
  LineDiff diff = DiffLines("a\nb\nc\n", "a\nX\nc\n");
  int keeps = 0;
  for (const DiffOp& op : diff.ops) {
    if (op.kind == DiffOp::Kind::kKeep) {
      EXPECT_GT(op.old_line, 0);
      EXPECT_GT(op.new_line, 0);
      ++keeps;
    } else if (op.kind == DiffOp::Kind::kDelete) {
      EXPECT_EQ(op.old_line, 2);
      EXPECT_EQ(op.new_line, 0);
    } else {
      EXPECT_EQ(op.new_line, 2);
      EXPECT_EQ(op.old_line, 0);
    }
  }
  EXPECT_EQ(keeps, 2);
}

// ---- Determinism regression -------------------------------------------------

TEST(SemdiffDeterminismTest, ReportIsByteStableAcrossRuns) {
  InMemorySources old_sources;
  InMemorySources new_sources;
  old_sources.Put("a.cinc", "X = 1\nY = 2\nDEAD1 = 7\nDEAD2 = 8\n");
  new_sources.Put("a.cinc", "X = 2\nY = \"s\"\nDEAD1 = 7\nDEAD2 = 8\n");
  old_sources.Put("e.cconf",
                  "import_python(\"a.cinc\", \"*\")\n"
                  "export_if_last({\"x\": X, \"y\": Y})\n");
  new_sources.Put("e.cconf",
                  "import_python(\"a.cinc\", \"*\")\n"
                  "export_if_last({\"x\": X, \"y\": Y})\n");

  auto render = [&]() {
    SemanticDiffer differ(old_sources.AsReader(), new_sources.AsReader());
    SemanticDiffReport report = differ.Classify({"a.cinc"}, {"e.cconf"});
    std::string out = report.Summary() + "\n";
    for (const SymbolImpact& impact : report.impacts) {
      out += impact.Describe() + "\n";
    }
    for (const LintDiagnostic& d : report.findings) {
      out += d.Format() + "\n";
    }
    return out;
  };
  std::string first = render();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(render(), first) << "run " << i;
  }
}

TEST(SemdiffDeterminismTest, DiagnosticOrderTieBreaksOnColumnAndMessage) {
  // Same file and line: order must fall back to column, rule, then message
  // so reports never depend on emission order.
  LintDiagnostic a;
  a.rule_id = "G008";
  a.file = "f.cconf";
  a.line = 3;
  a.column = 9;
  a.message = "zzz";
  LintDiagnostic b = a;
  b.column = 2;
  b.message = "aaa";
  LintDiagnostic c = a;
  c.column = 9;
  c.message = "aaa";
  std::vector<LintDiagnostic> diags = {a, b, c};
  SortDiagnostics(&diags);
  EXPECT_EQ(diags[0].column, 2);
  EXPECT_EQ(diags[1].message, "aaa");
  EXPECT_EQ(diags[1].column, 9);
  EXPECT_EQ(diags[2].message, "zzz");

  std::vector<LintDiagnostic> reversed = {c, b, a};
  SortDiagnostics(&reversed);
  for (size_t i = 0; i < diags.size(); ++i) {
    EXPECT_EQ(reversed[i].Format(), diags[i].Format());
  }
}

TEST(SemdiffDeterminismTest, MessageOrdersBeforeRuleIdOnColumnTie) {
  // Two producers firing different rules on the same file/line/column must
  // order by message first, rule id second — so the report is identical no
  // matter which pass emitted its finding first.
  LintDiagnostic g10;
  g10.rule_id = "G010";
  g10.file = "f.cconf";
  g10.line = 4;
  g10.column = 1;
  g10.message = "aaa import shadowed";
  LintDiagnostic g7 = g10;
  g7.rule_id = "G007";
  g7.message = "zzz symbol is dead";
  EXPECT_TRUE(LintDiagnosticOrder(g10, g7));   // message wins...
  EXPECT_FALSE(LintDiagnosticOrder(g7, g10));

  LintDiagnostic same_msg = g10;
  same_msg.rule_id = "G008";
  EXPECT_TRUE(LintDiagnosticOrder(same_msg, g10));  // ...then rule id.

  std::vector<LintDiagnostic> diags = {g7, g10};
  SortDiagnostics(&diags);
  EXPECT_EQ(diags[0].rule_id, "G010");
  EXPECT_EQ(diags[1].rule_id, "G007");
}

// ---- Scripted 20-commit sequence (check.sh --semdiff drives this) -----------

TEST(SemdiffScriptedSequenceTest, TwentyCommitClassifications) {
  // A scripted history over one small repo: each step edits the tree and
  // states the expected classification of its probe symbol. This is the
  // smoke sequence scripts/check.sh --semdiff asserts on.
  struct Step {
    const char* lib;            // Content of lib.cinc after the commit.
    ImpactKind expected;        // Classification of lib.cinc:TUNABLE.
    bool expect_provable_noop;  // Whole-commit certificate.
  };
  const char* entry =
      "import_python(\"lib.cinc\", \"*\")\n"
      "export_if_last({\"v\": TUNABLE, \"k\": KEEP})\n";
  // Alternate value bumps, comment edits, type flips, and reverts.
  const std::vector<Step> steps = {
      {"TUNABLE = 1\nKEEP = 0\n# rev1\n", ImpactKind::kValueDelta, false},
      {"TUNABLE = 1\nKEEP = 0\n# rev2\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 2\nKEEP = 0\n# rev2\n", ImpactKind::kValueDelta, false},
      {"TUNABLE = 2\nKEEP = 0\n", ImpactKind::kNoOp, true},
      {"TUNABLE = \"two\"\nKEEP = 0\n", ImpactKind::kTypeChange, false},
      {"TUNABLE = \"two\"\nKEEP = 0\n# doc\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 3\nKEEP = 0\n", ImpactKind::kTypeChange, false},
      {"TUNABLE = 4\nKEEP = 0\n", ImpactKind::kValueDelta, false},
      {"TUNABLE = 4\nKEEP = 0\n# note\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 5\nKEEP = 0\n# note\n", ImpactKind::kValueDelta, false},
      {"TUNABLE = 5\nKEEP = 0\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 5 + 1\nKEEP = 0\n", ImpactKind::kValueDelta, false},
      {"TUNABLE = 6\nKEEP = 0\n", ImpactKind::kNoOp, true},
      {"TUNABLE = [6]\nKEEP = 0\n", ImpactKind::kTypeChange, false},
      {"TUNABLE = [6]\nKEEP = 0\n# list now\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 7\nKEEP = 0\n", ImpactKind::kTypeChange, false},
      {"TUNABLE = 8\nKEEP = 0\n", ImpactKind::kValueDelta, false},
      {"TUNABLE = 8\nKEEP = 0\n# a\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 8\nKEEP = 0\n# b\n", ImpactKind::kNoOp, true},
      {"TUNABLE = 9\nKEEP = 0\n# b\n", ImpactKind::kValueDelta, false},
  };
  ASSERT_EQ(steps.size(), 20u);

  std::string head = "TUNABLE = 0\nKEEP = 0\n# rev0\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    InMemorySources old_sources;
    InMemorySources new_sources;
    old_sources.Put("lib.cinc", head);
    new_sources.Put("lib.cinc", steps[i].lib);
    old_sources.Put("entry.cconf", entry);
    new_sources.Put("entry.cconf", entry);
    SemanticDiffer differ(old_sources.AsReader(), new_sources.AsReader());
    SemanticDiffReport report = differ.Classify({"lib.cinc"}, {"entry.cconf"});
    ASSERT_TRUE(report.sound) << "commit " << i;
    const SymbolImpact* probe = report.Find("lib.cinc", "TUNABLE");
    ASSERT_NE(probe, nullptr) << "commit " << i;
    EXPECT_EQ(probe->kind, steps[i].expected)
        << "commit " << i << ": " << probe->Describe();
    EXPECT_EQ(report.provably_noop, steps[i].expect_provable_noop)
        << "commit " << i << ": " << report.Summary();
    // Certificate coherence: a provably-no-op commit must leave the
    // untouched KEEP symbol and the export no-op too.
    const SymbolImpact* keep = report.Find("lib.cinc", "KEEP");
    ASSERT_NE(keep, nullptr);
    EXPECT_EQ(keep->kind, ImpactKind::kNoOp) << "commit " << i;
    head = steps[i].lib;
  }
}

// ---- Pipeline integration ---------------------------------------------------

class SemdiffPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_
            .Commit("init", "init",
                    {{"flags.cinc", "USE_BIG = True\nEXTRA = 1\n"},
                     {"entry.cconf",
                      "import_python(\"flags.cinc\", \"*\")\n"
                      "if USE_BIG:\n"
                      "    export_if_last({\"mem\": 4096})\n"
                      "else:\n"
                      "    export_if_last({\"mem\": 512})\n"}})
            .ok());
    deps_.UpdateEntry("entry.cconf", {"flags.cinc"});
  }

  Repository repo_;
  DependencyService deps_;
};

TEST_F(SemdiffPipelineTest, SandcastleAttachesClassificationToLanding) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(repo_, "alice", "flip guard",
                                       {{"flags.cinc",
                                         "USE_BIG = False\nEXTRA = 1\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_FALSE(report.provably_noop);
  ASSERT_FALSE(report.semantic_impacts.empty());
  // The latent consequence in the UNTOUCHED dependent is classified.
  const SymbolImpact* exported = nullptr;
  for (const SymbolImpact& impact : report.semantic_impacts) {
    if (impact.file == "entry.cconf" && impact.symbol == "entry.json") {
      exported = &impact;
    }
  }
  ASSERT_NE(exported, nullptr) << report.Summary();
  EXPECT_EQ(exported->kind, ImpactKind::kControlShift) << exported->Describe();
  EXPECT_NE(report.Summary().find("control-shift"), std::string::npos);
}

TEST_F(SemdiffPipelineTest, ProvablyNoOpSkipsClosureReanalysis) {
  Sandcastle ci(&repo_, &deps_);
  ProposedDiff diff = MakeProposedDiff(
      repo_, "alice", "comment only",
      {{"flags.cinc", "# big-memory rollout flag\nUSE_BIG = True\nEXTRA = 1\n"}});
  CiReport report = ci.RunTests(diff);
  EXPECT_TRUE(report.passed) << report.Summary();
  EXPECT_TRUE(report.provably_noop) << report.Summary();
  // Fast path: the reverse closure was not re-analyzed.
  EXPECT_TRUE(report.reanalyzed_entries.empty());
  EXPECT_NE(report.Summary().find("provably no-op"), std::string::npos);
}

TEST_F(SemdiffPipelineTest, RiskAdvisorWeighsSemanticSeverity) {
  RiskAdvisor::Options options;
  options.fan_in_threshold = 1;
  RiskAdvisor advisor(options);
  ASSERT_TRUE(advisor.IndexHistory(repo_).ok());
  ProposedDiff diff = MakeProposedDiff(repo_, "alice", "edit",
                                       {{"flags.cinc",
                                         "USE_BIG = False\nEXTRA = 1\n"}});

  std::vector<SymbolImpact> noop{{"flags.cinc", "USE_BIG", ImpactKind::kNoOp}};
  std::vector<SymbolImpact> delta{
      {"flags.cinc", "USE_BIG", ImpactKind::kValueDelta}};
  std::vector<SymbolImpact> shift{
      {"flags.cinc", "USE_BIG", ImpactKind::kControlShift}};
  std::vector<SymbolImpact> type{
      {"flags.cinc", "USE_BIG", ImpactKind::kTypeChange}};

  double unweighted = advisor.Assess(diff, &deps_).score;
  EXPECT_GT(unweighted, 0.0);
  // No-op: the fan-in signal contributes nothing.
  EXPECT_LT(advisor.Assess(diff, &deps_, nullptr, &noop).score, unweighted);
  // Monotone in severity: value-delta < control-shift < type-change.
  double d = advisor.Assess(diff, &deps_, nullptr, &delta).score;
  double s = advisor.Assess(diff, &deps_, nullptr, &shift).score;
  double t = advisor.Assess(diff, &deps_, nullptr, &type).score;
  EXPECT_LT(d, s);
  EXPECT_LT(s, t);
  EXPECT_EQ(s, unweighted);  // Control-shift == full fan-in weight.
}

TEST_F(SemdiffPipelineTest, CanaryScopeCarriesValueDeltas) {
  PendingChange change;
  change.ci_report.semantic_impacts.push_back(
      {"flags.cinc", "USE_BIG", ImpactKind::kValueDelta, "True", "False"});
  change.ci_report.semantic_impacts.push_back(
      {"flags.cinc", "EXTRA", ImpactKind::kNoOp, "1", "1"});
  CanaryScope scope = change.Scope();
  ASSERT_EQ(scope.value_deltas.count("flags.cinc:USE_BIG"), 1u);
  EXPECT_EQ(scope.value_deltas.at("flags.cinc:USE_BIG"), "True -> False");
  EXPECT_EQ(scope.value_deltas.count("flags.cinc:EXTRA"), 0u);  // No-ops: no.
  EXPECT_NE(scope.Describe().find("True -> False"), std::string::npos);
}

// ---- Acceptance scenario ----------------------------------------------------

TEST(SemdiffAcceptanceTest, LatentControlShiftPlusShadowingImportBlocksLanding) {
  // The seeded commit does two things at once without touching the entry:
  // flips the guard constant in flags.cinc (latent control shift in the
  // UNTOUCHED dependent) and grows shadow.cinc by a symbol that shadows
  // EXTRA from the earlier star import (G010). The entry's export must be
  // classified control-shift — not no-op — and the G010 error must block
  // the landing.
  Repository repo;
  ASSERT_TRUE(
      repo.Commit("init", "init",
                  {{"flags.cinc", "USE_BIG = True\nEXTRA = 1\n"},
                   {"shadow.cinc", "OTHER = 5\n"},
                   {"entry.cconf",
                    "import_python(\"flags.cinc\", \"*\")\n"
                    "import_python(\"shadow.cinc\", \"*\")\n"
                    "if USE_BIG:\n"
                    "    export_if_last({\"mem\": 4096})\n"
                    "else:\n"
                    "    export_if_last({\"mem\": 512})\n"}})
          .ok());
  DependencyService deps;
  deps.UpdateEntry("entry.cconf", {"flags.cinc", "shadow.cinc"});

  Sandcastle ci(&repo, &deps);
  ProposedDiff diff = MakeProposedDiff(
      repo, "mallory", "sneaky",
      {{"flags.cinc", "USE_BIG = False\nEXTRA = 1\n"},
       {"shadow.cinc", "OTHER = 5\nEXTRA = 999\n"}});
  CiReport report = ci.RunTests(diff);

  // Classified, not certified away: the untouched dependent's export is a
  // control shift (the flipped guard reroutes it to the other arm).
  EXPECT_FALSE(report.provably_noop);
  const SymbolImpact* exported = nullptr;
  for (const SymbolImpact& impact : report.semantic_impacts) {
    if (impact.file == "entry.cconf" && impact.symbol == "entry.json") {
      exported = &impact;
    }
  }
  ASSERT_NE(exported, nullptr) << report.Summary();
  EXPECT_EQ(exported->kind, ImpactKind::kControlShift) << exported->Describe();

  // ...and blocked: G010 is error severity, so the report fails.
  bool has_g010 = false;
  for (const LintDiagnostic& d : report.lint_findings) {
    has_g010 = has_g010 || d.rule_id == "G010";
  }
  EXPECT_TRUE(has_g010) << report.Summary();
  EXPECT_FALSE(report.passed) << report.Summary();
}

}  // namespace
}  // namespace configerator
