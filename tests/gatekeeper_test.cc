#include <gtest/gtest.h>

#include "src/gatekeeper/project.h"
#include "src/gatekeeper/runtime.h"

namespace configerator {
namespace {

UserContext MakeUser(int64_t id) {
  UserContext user;
  user.user_id = id;
  user.country = "US";
  user.locale = "en_US";
  user.app = "fb4a";
  user.device = "pixel";
  user.platform = "android";
  user.account_age_days = 400;
  user.friend_count = 120;
  user.app_version = 300;
  return user;
}

Json ParseConfig(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? *parsed : Json();
}

// ---- Restraints -------------------------------------------------------------

TEST(RestraintTest, RegistryListsBuiltins) {
  auto names = RestraintRegistry::Builtin().TypeNames();
  EXPECT_GE(names.size(), 18u);
}

TEST(RestraintTest, Employee) {
  auto r = RestraintRegistry::Builtin().Create(
      ParseConfig(R"({"type": "employee"})"));
  ASSERT_TRUE(r.ok());
  UserContext user = MakeUser(1);
  EXPECT_FALSE((*r)->Test(user, nullptr));
  user.is_employee = true;
  EXPECT_TRUE((*r)->Test(user, nullptr));
}

TEST(RestraintTest, NegationBuiltIn) {
  auto r = RestraintRegistry::Builtin().Create(
      ParseConfig(R"({"type": "employee", "negate": true})"));
  ASSERT_TRUE(r.ok());
  UserContext user = MakeUser(1);
  EXPECT_TRUE((*r)->Test(user, nullptr));
  user.is_employee = true;
  EXPECT_FALSE((*r)->Test(user, nullptr));
}

TEST(RestraintTest, CountryMembership) {
  auto r = RestraintRegistry::Builtin().Create(ParseConfig(
      R"({"type": "country", "params": {"countries": ["US", "CA"]}})"));
  ASSERT_TRUE(r.ok());
  UserContext user = MakeUser(1);
  EXPECT_TRUE((*r)->Test(user, nullptr));
  user.country = "BR";
  EXPECT_FALSE((*r)->Test(user, nullptr));
}

TEST(RestraintTest, DeviceAndPlatformAndApp) {
  const RestraintRegistry& registry = RestraintRegistry::Builtin();
  UserContext user = MakeUser(1);
  auto device = registry.Create(
      ParseConfig(R"({"type": "device", "params": {"devices": ["pixel"]}})"));
  auto platform = registry.Create(ParseConfig(
      R"({"type": "platform", "params": {"platforms": ["ios"]}})"));
  auto app = registry.Create(
      ParseConfig(R"({"type": "app", "params": {"apps": ["fb4a"]}})"));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE(app.ok());
  EXPECT_TRUE((*device)->Test(user, nullptr));
  EXPECT_FALSE((*platform)->Test(user, nullptr));
  EXPECT_TRUE((*app)->Test(user, nullptr));
}

TEST(RestraintTest, Thresholds) {
  const RestraintRegistry& registry = RestraintRegistry::Builtin();
  UserContext user = MakeUser(1);  // 120 friends, 400 days, version 300.
  auto min_friends = registry.Create(
      ParseConfig(R"({"type": "min_friend_count", "params": {"count": 100}})"));
  auto new_user = registry.Create(
      ParseConfig(R"({"type": "new_user", "params": {"max_days": 30}})"));
  auto min_version = registry.Create(ParseConfig(
      R"({"type": "min_app_version", "params": {"version": 350}})"));
  ASSERT_TRUE(min_friends.ok());
  ASSERT_TRUE(new_user.ok());
  ASSERT_TRUE(min_version.ok());
  EXPECT_TRUE((*min_friends)->Test(user, nullptr));
  EXPECT_FALSE((*new_user)->Test(user, nullptr));
  EXPECT_FALSE((*min_version)->Test(user, nullptr));
}

TEST(RestraintTest, IdInAndIdMod) {
  const RestraintRegistry& registry = RestraintRegistry::Builtin();
  auto id_in = registry.Create(
      ParseConfig(R"({"type": "id_in", "params": {"ids": [42, 77]}})"));
  ASSERT_TRUE(id_in.ok());
  EXPECT_TRUE((*id_in)->Test(MakeUser(42), nullptr));
  EXPECT_FALSE((*id_in)->Test(MakeUser(43), nullptr));

  auto id_mod = registry.Create(ParseConfig(
      R"({"type": "id_mod", "params": {"mod": 10, "lo": 0, "hi": 3}})"));
  ASSERT_TRUE(id_mod.ok());
  EXPECT_TRUE((*id_mod)->Test(MakeUser(12), nullptr));
  EXPECT_FALSE((*id_mod)->Test(MakeUser(15), nullptr));
}

TEST(RestraintTest, HashRangeDeterministicSlice) {
  auto r = RestraintRegistry::Builtin().Create(ParseConfig(
      R"({"type": "hash_range", "params": {"salt": "exp1", "lo": 0.0, "hi": 0.5}})"));
  ASSERT_TRUE(r.ok());
  int in_slice = 0;
  for (int64_t id = 0; id < 10'000; ++id) {
    UserContext user = MakeUser(id);
    bool first = (*r)->Test(user, nullptr);
    EXPECT_EQ(first, (*r)->Test(user, nullptr));  // Sticky.
    if (first) {
      ++in_slice;
    }
  }
  EXPECT_NEAR(in_slice, 5000, 300);
}

TEST(RestraintTest, Attributes) {
  const RestraintRegistry& registry = RestraintRegistry::Builtin();
  UserContext user = MakeUser(1);
  user.string_attrs["ab_group"] = "treatment";
  user.numeric_attrs["engagement"] = 0.8;

  auto eq = registry.Create(ParseConfig(
      R"({"type": "string_attr_equals", "params": {"attr": "ab_group", "value": "treatment"}})"));
  auto gt = registry.Create(ParseConfig(
      R"({"type": "numeric_attr_gt", "params": {"attr": "engagement", "threshold": 0.5}})"));
  auto lt = registry.Create(ParseConfig(
      R"({"type": "numeric_attr_lt", "params": {"attr": "engagement", "threshold": 0.5}})"));
  auto has = registry.Create(
      ParseConfig(R"({"type": "has_attr", "params": {"attr": "ab_group"}})"));
  ASSERT_TRUE(eq.ok());
  ASSERT_TRUE(gt.ok());
  ASSERT_TRUE(lt.ok());
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE((*eq)->Test(user, nullptr));
  EXPECT_TRUE((*gt)->Test(user, nullptr));
  EXPECT_FALSE((*lt)->Test(user, nullptr));
  EXPECT_TRUE((*has)->Test(user, nullptr));
  // Missing attribute: comparisons are false.
  EXPECT_FALSE((*gt)->Test(MakeUser(2), nullptr));
}

TEST(RestraintTest, LaserIntegration) {
  LaserStore laser;
  laser.Put("TrendingTopics-42", 0.9);
  laser.Put("TrendingTopics-43", 0.1);
  auto r = RestraintRegistry::Builtin().Create(ParseConfig(
      R"({"type": "laser", "params": {"project": "TrendingTopics", "threshold": 0.5}})"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->Test(MakeUser(42), &laser));
  EXPECT_FALSE((*r)->Test(MakeUser(43), &laser));
  EXPECT_FALSE((*r)->Test(MakeUser(99), &laser));   // Absent key.
  EXPECT_FALSE((*r)->Test(MakeUser(42), nullptr));  // No store wired.
}

TEST(RestraintTest, LaserPipelineLoad) {
  LaserStore laser;
  laser.LoadPipelineOutput("P", {{1, 0.7}, {2, 0.2}});
  EXPECT_DOUBLE_EQ(*laser.Get("P-1"), 0.7);
  EXPECT_EQ(laser.size(), 2u);
}

TEST(RestraintTest, MalformedSpecsRejected) {
  const RestraintRegistry& registry = RestraintRegistry::Builtin();
  EXPECT_FALSE(registry.Create(ParseConfig(R"({"type": "no_such_type"})")).ok());
  EXPECT_FALSE(registry.Create(ParseConfig(R"({"notype": 1})")).ok());
  EXPECT_FALSE(registry.Create(ParseConfig(R"({"type": "country"})")).ok());
  EXPECT_FALSE(registry.Create(ParseConfig(
      R"({"type": "id_mod", "params": {"mod": 10, "lo": 5, "hi": 3}})")).ok());
  EXPECT_FALSE(registry.Create(ParseConfig(
      R"({"type": "hash_range", "params": {"salt": "s", "lo": 0.9, "hi": 0.1}})")).ok());
}

// ---- Projects -----------------------------------------------------------------

constexpr char kProjectX[] = R"({
  "project": "ProjectX",
  "rules": [
    {"restraints": [{"type": "employee"}], "pass_probability": 1.0},
    {"restraints": [{"type": "country", "params": {"countries": ["US"]}},
                    {"type": "min_friend_count", "params": {"count": 50}}],
     "pass_probability": 0.1}
  ]
})";

TEST(ProjectTest, EmployeesAlwaysPass) {
  auto project = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  ASSERT_TRUE(project.ok()) << project.status();
  UserContext employee = MakeUser(5);
  employee.is_employee = true;
  EXPECT_TRUE(project->Check(employee, nullptr));
}

TEST(ProjectTest, SamplingApproximatesProbability) {
  auto project = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  ASSERT_TRUE(project.ok());
  int passed = 0;
  for (int64_t id = 0; id < 20'000; ++id) {
    if (project->Check(MakeUser(id), nullptr)) {
      ++passed;
    }
  }
  EXPECT_NEAR(passed, 2000, 250);  // 10% of matching users.
}

TEST(ProjectTest, SamplingIsStickyPerUser) {
  auto project = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  ASSERT_TRUE(project.ok());
  for (int64_t id = 100; id < 200; ++id) {
    UserContext user = MakeUser(id);
    bool first = project->Check(user, nullptr);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(project->Check(user, nullptr), first);
    }
  }
}

TEST(ProjectTest, NonMatchingUsersFail) {
  auto project = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  ASSERT_TRUE(project.ok());
  UserContext user = MakeUser(7);
  user.country = "BR";  // Fails rule 2's country restraint.
  EXPECT_FALSE(project->Check(user, nullptr));
}

TEST(ProjectTest, RuleOrderMatters) {
  // A user matching rule 1 (employees, 100%) never falls through to rule 2.
  auto project = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  ASSERT_TRUE(project.ok());
  UserContext employee = MakeUser(123456);
  employee.is_employee = true;
  employee.country = "DE";  // Would fail rule 2.
  EXPECT_TRUE(project->Check(employee, nullptr));
}

TEST(ProjectTest, CostBasedOrderingPreservesSemantics) {
  auto with = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  auto without = GatekeeperProject::FromJson(ParseConfig(kProjectX));
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  with->set_cost_based_ordering(true);
  without->set_cost_based_ordering(false);
  // Run enough checks to trigger several reorder intervals, then compare.
  for (int64_t id = 0; id < 5000; ++id) {
    UserContext user = MakeUser(id);
    user.is_employee = id % 7 == 0;
    user.country = id % 3 == 0 ? "US" : "BR";
    EXPECT_EQ(with->Check(user, nullptr), without->Check(user, nullptr))
        << "id=" << id;
  }
}

TEST(ProjectTest, CostBasedOrderingLearnsToFrontLoadCheapRestraints) {
  // An expensive laser() first in config order, a cheap, usually-false
  // country restraint second: after training, the optimizer must evaluate
  // the country restraint first.
  LaserStore laser;
  auto project = GatekeeperProject::FromJson(ParseConfig(R"({
    "project": "LaserFirst",
    "rules": [{"restraints": [
      {"type": "laser", "params": {"project": "T", "threshold": 0.5}},
      {"type": "country", "params": {"countries": ["JP"]}}],
      "pass_probability": 1.0}]
  })"));
  ASSERT_TRUE(project.ok());

  auto initial = project->StatsSnapshot();
  ASSERT_EQ(initial.size(), 1u);
  EXPECT_EQ(initial[0][0].type, "laser");  // Config order before training.

  for (int64_t id = 0; id < 5000; ++id) {
    (void)project->Check(MakeUser(id), &laser);  // Users are US: country=false.
  }
  auto trained = project->StatsSnapshot();
  EXPECT_EQ(trained[0][0].type, "country");  // Cheap short-circuit first.
  EXPECT_GT(trained[0][0].evals, 0u);
  EXPECT_DOUBLE_EQ(trained[0][0].pass_rate(), 0.0);
  // Once reordered, the laser restraint stops being evaluated at all.
  EXPECT_LT(trained[0][1].evals, 5000u);
}

TEST(ProjectTest, MalformedProjectsRejected) {
  EXPECT_FALSE(GatekeeperProject::FromJson(ParseConfig(R"({"rules": []})")).ok());
  EXPECT_FALSE(
      GatekeeperProject::FromJson(ParseConfig(R"({"project": "X"})")).ok());
  EXPECT_FALSE(GatekeeperProject::FromJson(ParseConfig(
                   R"({"project": "X", "rules": [{"restraints": []}]})"))
                   .ok());
  EXPECT_FALSE(GatekeeperProject::FromJson(ParseConfig(
                   R"({"project": "X",
                       "rules": [{"restraints": [], "pass_probability": 1.5}]})"))
                   .ok());
}

// ---- Runtime ------------------------------------------------------------------

TEST(RuntimeTest, LoadCheckRemove) {
  GatekeeperRuntime runtime;
  ASSERT_TRUE(runtime.LoadProject(ParseConfig(kProjectX)).ok());
  EXPECT_TRUE(runtime.HasProject("ProjectX"));
  UserContext employee = MakeUser(1);
  employee.is_employee = true;
  EXPECT_TRUE(runtime.Check("ProjectX", employee));
  EXPECT_EQ(runtime.check_count(), 1u);

  ASSERT_TRUE(runtime.RemoveProject("ProjectX").ok());
  EXPECT_FALSE(runtime.Check("ProjectX", employee));  // Fail closed.
}

TEST(RuntimeTest, UnknownProjectFailsClosed) {
  GatekeeperRuntime runtime;
  EXPECT_FALSE(runtime.Check("Ghost", MakeUser(1)));
}

TEST(RuntimeTest, ConfigUpdatePathIntegration) {
  GatekeeperRuntime runtime;
  ASSERT_TRUE(
      runtime.ApplyConfigUpdate("gatekeeper/ProjectX.json", kProjectX).ok());
  EXPECT_TRUE(runtime.HasProject("ProjectX"));

  // Live rollout bump: rewrite pass_probability 0.1 -> 1.0.
  std::string expanded(kProjectX);
  size_t pos = expanded.find("0.1");
  expanded.replace(pos, 3, "1.0");
  ASSERT_TRUE(
      runtime.ApplyConfigUpdate("gatekeeper/ProjectX.json", expanded).ok());
  int passed = 0;
  for (int64_t id = 0; id < 1000; ++id) {
    if (runtime.Check("ProjectX", MakeUser(id))) {
      ++passed;
    }
  }
  EXPECT_EQ(passed, 1000);  // 100% rollout.

  // Tombstone removes the project.
  ASSERT_TRUE(runtime.ApplyConfigUpdate("gatekeeper/ProjectX.json", "").ok());
  EXPECT_FALSE(runtime.HasProject("ProjectX"));
}

TEST(RuntimeTest, NonGatekeeperPathRejected) {
  GatekeeperRuntime runtime;
  EXPECT_FALSE(runtime.ApplyConfigUpdate("sitevars/x.json", "{}").ok());
}

TEST(RuntimeTest, BadConfigUpdateRejectedAndOldKept) {
  GatekeeperRuntime runtime;
  ASSERT_TRUE(
      runtime.ApplyConfigUpdate("gatekeeper/ProjectX.json", kProjectX).ok());
  EXPECT_FALSE(
      runtime.ApplyConfigUpdate("gatekeeper/ProjectX.json", "{not json").ok());
  EXPECT_TRUE(runtime.HasProject("ProjectX"));  // Old config still live.
}

TEST(RuntimeTest, LaserWiredThrough) {
  LaserStore laser;
  laser.Put("Trend-5", 1.0);
  GatekeeperRuntime runtime(&laser);
  ASSERT_TRUE(runtime
                  .LoadProject(ParseConfig(R"({
                    "project": "Trendy",
                    "rules": [{"restraints": [
                      {"type": "laser",
                       "params": {"project": "Trend", "threshold": 0.5}}],
                      "pass_probability": 1.0}]
                  })"))
                  .ok());
  EXPECT_TRUE(runtime.Check("Trendy", MakeUser(5)));
  EXPECT_FALSE(runtime.Check("Trendy", MakeUser(6)));
}

}  // namespace
}  // namespace configerator
