#include <gtest/gtest.h>

#include "src/pipeline/risk.h"

namespace configerator {
namespace {

constexpr int64_t kDay = 24LL * 3600 * 1000;

class RiskTest : public ::testing::Test {
 protected:
  // Commits `path` at the given day with the given author.
  void Touch(const std::string& path, const std::string& author, int day,
             const std::string& content = "v\n") {
    ASSERT_TRUE(repo_.Commit(author, "m", {{path, content}}, day * kDay).ok());
  }

  RiskAssessment Assess(const std::string& path, const std::string& author,
                        int day, std::optional<std::string> content = "new\n",
                        const DependencyService* deps = nullptr) {
    RiskAdvisor advisor;
    EXPECT_TRUE(advisor.IndexHistory(repo_).ok());
    ProposedDiff diff = MakeProposedDiff(repo_, author, "change",
                                         {{path, std::move(content)}}, day * kDay);
    return advisor.Assess(diff, deps);
  }

  Repository repo_;
};

TEST_F(RiskTest, HistoryIndexCollectsAuthorsAndTimes) {
  Touch("cfg", "alice", 1);
  Touch("cfg", "bob", 5, "v2\n");
  Touch("other", "carol", 6);
  RiskAdvisor advisor;
  ASSERT_TRUE(advisor.IndexHistory(repo_).ok());
  const RiskAdvisor::PathHistory* history = advisor.HistoryFor("cfg");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->update_times_ms.size(), 2u);
  EXPECT_EQ(history->update_times_ms[0], 1 * kDay);
  EXPECT_EQ(history->authors.size(), 2u);
  EXPECT_EQ(advisor.HistoryFor("missing"), nullptr);
}

TEST_F(RiskTest, IncrementalIndexingMatchesFullReindex) {
  Touch("cfg", "alice", 1);
  RiskAdvisor incremental;
  ASSERT_TRUE(incremental.IndexHistory(repo_).ok());
  Touch("cfg", "bob", 5, "v2\n");
  Touch("other", "carol", 6);
  ASSERT_TRUE(incremental.IndexHistory(repo_).ok());  // Only the new commits.

  RiskAdvisor full;
  ASSERT_TRUE(full.IndexHistory(repo_).ok());

  for (const char* path : {"cfg", "other"}) {
    const RiskAdvisor::PathHistory* a = incremental.HistoryFor(path);
    const RiskAdvisor::PathHistory* b = full.HistoryFor(path);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->update_times_ms, b->update_times_ms) << path;
    EXPECT_EQ(a->authors, b->authors) << path;
    EXPECT_EQ(a->change_count, b->change_count) << path;
  }
  // Re-indexing with no new commits is a no-op.
  ASSERT_TRUE(incremental.IndexHistory(repo_).ok());
  EXPECT_EQ(incremental.HistoryFor("cfg")->update_times_ms.size(), 2u);
}

TEST_F(RiskTest, FreshConfigByKnownAuthorIsLowRisk) {
  Touch("cfg", "alice", 100);
  RiskAssessment assessment = Assess("cfg", "alice", 102);
  EXPECT_FALSE(assessment.high_risk);
  EXPECT_EQ(assessment.score, 0);
}

TEST_F(RiskTest, DormantConfigFlagged) {
  Touch("cfg", "alice", 1);
  RiskAssessment assessment = Assess("cfg", "alice", 400);
  ASSERT_FALSE(assessment.reasons.empty());
  EXPECT_NE(assessment.reasons[0].find("dormant"), std::string::npos);
  EXPECT_GE(assessment.score, 1.0);
}

TEST_F(RiskTest, HighlySharedConfigFlagged) {
  for (int i = 0; i < 12; ++i) {
    Touch("shared", "eng" + std::to_string(i), i + 1,
          "v" + std::to_string(i) + "\n");
  }
  RiskAssessment assessment = Assess("shared", "eng0", 13);
  bool found = false;
  for (const std::string& reason : assessment.reasons) {
    if (reason.find("highly shared") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RiskTest, FirstTimeAuthorNoted) {
  Touch("cfg", "alice", 10);
  RiskAssessment assessment = Assess("cfg", "stranger", 11);
  bool found = false;
  for (const std::string& reason : assessment.reasons) {
    if (reason.find("never been updated by stranger") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // A single mild signal alone is not high-risk.
  EXPECT_FALSE(assessment.high_risk);
}

TEST_F(RiskTest, DormantPlusSharedIsHighRisk) {
  for (int i = 0; i < 12; ++i) {
    Touch("critical", "eng" + std::to_string(i), i + 1,
          "v" + std::to_string(i) + "\n");
  }
  // 300 days later a new author rewrites it: dormant + shared + first-time.
  RiskAssessment assessment = Assess("critical", "newbie", 320);
  EXPECT_TRUE(assessment.high_risk);
  EXPECT_GE(assessment.reasons.size(), 3u);
}

TEST_F(RiskTest, UnusuallyLargeChangeFlagged) {
  // History of tiny changes.
  for (int i = 0; i < 5; ++i) {
    Touch("tiny", "alice", i + 1, "line1\nv" + std::to_string(i) + "\n");
  }
  std::string huge(200, 'x');
  std::string big_content;
  for (int i = 0; i < 120; ++i) {
    big_content += "line " + std::to_string(i) + "\n";
  }
  RiskAssessment assessment = Assess("tiny", "alice", 10, big_content);
  bool found = false;
  for (const std::string& reason : assessment.reasons) {
    if (reason.find("historical mean") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RiskTest, DeletionNoted) {
  Touch("cfg", "alice", 1);
  RiskAssessment assessment = Assess("cfg", "alice", 2, std::nullopt);
  bool found = false;
  for (const std::string& reason : assessment.reasons) {
    if (reason.find("deleted") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RiskTest, HighFanInFlaggedWithDeps) {
  Touch("shared.cinc", "alice", 1);
  DependencyService deps;
  for (int i = 0; i < 15; ++i) {
    deps.UpdateEntry("entry" + std::to_string(i) + ".cconf", {"shared.cinc"});
  }
  RiskAssessment assessment = Assess("shared.cinc", "alice", 2, "new\n", &deps);
  bool found = false;
  for (const std::string& reason : assessment.reasons) {
    if (reason.find("entry configs depend on") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RiskTest, NewPathHasNoSignals) {
  Touch("existing", "alice", 1);
  RiskAssessment assessment = Assess("brand-new", "alice", 400);
  EXPECT_TRUE(assessment.reasons.empty());
  EXPECT_FALSE(assessment.high_risk);
}

}  // namespace
}  // namespace configerator
