// Model-based property tests: the repository under random operation sequences
// versus an in-memory model.
//
// The Zeus + proxy chaos scenario that used to live here moved to the DST
// harness (tests/dst_test.cc, src/dst/): same fleet shape, but with a richer
// fault model (partitions, link faults, disk corruption), invariants checked
// after every simulator event, and failing schedules shrunk to replayable
// traces.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/util/rng.h"
#include "src/vcs/repository.h"

namespace configerator {
namespace {

class RepositoryModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepositoryModelTest, RandomOpsMatchModel) {
  Rng rng(GetParam());
  Repository repo;
  std::map<std::string, std::string> model;
  // Snapshots: commit id -> model state at that commit.
  std::vector<std::pair<ObjectId, std::map<std::string, std::string>>> snapshots;

  for (int step = 0; step < 150; ++step) {
    // Build a random batch of writes.
    std::vector<FileWrite> writes;
    std::map<std::string, std::optional<std::string>> batch_effect;
    size_t batch = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < batch; ++i) {
      std::string path = "d" + std::to_string(rng.NextBounded(3)) + "/f" +
                         std::to_string(rng.NextBounded(25));
      bool do_delete = rng.NextBool(0.2);
      if (do_delete) {
        // Deleting a nonexistent path fails the whole commit; the model must
        // account for earlier writes in this same batch.
        bool exists_in_batch =
            batch_effect.count(path) > 0 && batch_effect[path].has_value();
        bool exists_in_repo =
            model.count(path) > 0 &&
            (batch_effect.count(path) == 0 || batch_effect[path].has_value());
        if (!exists_in_batch && !exists_in_repo) {
          continue;  // Skip invalid delete.
        }
        writes.push_back({path, std::nullopt});
        batch_effect[path] = std::nullopt;
      } else {
        std::string content = "content-" + std::to_string(rng.Next() % 1000);
        writes.push_back({path, content});
        batch_effect[path] = content;
      }
    }
    auto commit = repo.Commit("fuzzer", "step " + std::to_string(step), writes,
                              step);
    ASSERT_TRUE(commit.ok()) << commit.status();
    for (const auto& [path, content] : batch_effect) {
      if (content.has_value()) {
        model[path] = *content;
      } else {
        model.erase(path);
      }
    }
    if (rng.NextBool(0.1)) {
      snapshots.emplace_back(*commit, model);
    }

    // Continuous checks: file count and a random path read.
    ASSERT_EQ(repo.file_count(), model.size());
    if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(model.size())));
      auto content = repo.ReadFile(it->first);
      ASSERT_TRUE(content.ok());
      EXPECT_EQ(*content, it->second);
    }
  }

  // Full final comparison.
  std::vector<std::string> files = repo.ListFiles();
  ASSERT_EQ(files.size(), model.size());
  for (const auto& [path, content] : model) {
    EXPECT_EQ(*repo.ReadFile(path), content);
  }

  // Historical reads reproduce every snapshot exactly.
  for (const auto& [commit_id, snapshot] : snapshots) {
    for (const auto& [path, content] : snapshot) {
      auto historical = repo.ReadFileAt(commit_id, path);
      ASSERT_TRUE(historical.ok()) << path;
      EXPECT_EQ(*historical, content);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepositoryModelTest,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace configerator
