// Randomized fault-injection and model-based property tests: the paper's
// environment is one where "failures are the norm", so the distribution
// invariants must hold under arbitrary interleavings of crashes, recoveries
// and writes — not just on the happy path.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "src/distribution/proxy.h"
#include "src/util/rng.h"
#include "src/vcs/repository.h"
#include "src/zeus/zeus.h"

namespace configerator {
namespace {

// ---- Zeus + proxies under random failures ------------------------------------

class DistributionChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributionChaosTest, FleetConvergesAfterChaos) {
  Rng rng(GetParam());
  Simulator sim;
  Network net(&sim, Topology(2, 2, 16), GetParam());
  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{1, 0, 0},
                                   ServerId{0, 0, 1}, ServerId{1, 0, 1},
                                   ServerId{0, 1, 0}};
  std::vector<ServerId> observers = {ServerId{0, 0, 15}, ServerId{0, 1, 15},
                                     ServerId{1, 0, 15}, ServerId{1, 1, 15}};
  ZeusEnsemble zeus(&net, members, observers);

  constexpr int kKeys = 5;
  constexpr int kProxyCount = 8;
  std::vector<std::unique_ptr<OnDiskCache>> disks;
  std::vector<std::unique_ptr<ConfigProxy>> proxies;
  for (int i = 0; i < kProxyCount; ++i) {
    ServerId host{i % 2, (i / 2) % 2, 2 + i};
    disks.push_back(std::make_unique<OnDiskCache>());
    proxies.push_back(std::make_unique<ConfigProxy>(&net, &zeus, host,
                                                    disks.back().get(),
                                                    GetParam() * 100 + i));
    for (int k = 0; k < kKeys; ++k) {
      proxies.back()->Subscribe("key" + std::to_string(k), nullptr);
    }
  }
  sim.RunUntil(2 * kSimSecond);

  // Chaos phase: interleave writes, observer/member crashes & recoveries,
  // and proxy crash/restart cycles.
  std::map<std::string, std::string> last_written;
  int64_t committed_writes = 0;
  std::vector<ServerId> crashed_members;
  std::vector<ServerId> crashed_observers;
  std::vector<size_t> crashed_proxies;

  for (int step = 0; step < 120; ++step) {
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Write (most common event).
        std::string key = "key" + std::to_string(rng.NextBounded(kKeys));
        std::string value = "v" + std::to_string(step);
        zeus.Write(ServerId{0, 0, 14}, key, value,
                   [&last_written, &committed_writes, key,
                    value](Result<int64_t> zxid) {
                     if (zxid.ok()) {
                       last_written[key] = value;
                       ++committed_writes;
                     }
                   });
        break;
      }
      case 4: {  // Crash an observer (keep at least one alive).
        if (crashed_observers.size() + 1 < observers.size()) {
          ServerId victim = observers[rng.NextBounded(observers.size())];
          if (!net.failures().IsDown(victim)) {
            zeus.Crash(victim);
            crashed_observers.push_back(victim);
          }
        }
        break;
      }
      case 5: {  // Crash a member (keep quorum: at most 2 of 5 down).
        if (crashed_members.size() < 2) {
          ServerId victim = members[rng.NextBounded(members.size())];
          if (!net.failures().IsDown(victim)) {
            zeus.Crash(victim);
            crashed_members.push_back(victim);
          }
        }
        break;
      }
      case 6: {  // Recover something.
        if (!crashed_observers.empty()) {
          zeus.Recover(crashed_observers.back());
          crashed_observers.pop_back();
        } else if (!crashed_members.empty()) {
          zeus.Recover(crashed_members.back());
          crashed_members.pop_back();
        }
        break;
      }
      case 7: {  // Proxy crash or restart.
        size_t idx = rng.NextBounded(proxies.size());
        if (proxies[idx]->crashed()) {
          proxies[idx]->Restart();
        } else {
          proxies[idx]->Crash();
        }
        break;
      }
    }
    sim.RunUntil(sim.now() + static_cast<SimTime>(rng.NextBounded(800)) *
                                 kSimMillisecond);
  }

  // Heal everything and let anti-entropy + resubscription settle.
  for (const ServerId& id : crashed_members) {
    zeus.Recover(id);
  }
  for (const ServerId& id : crashed_observers) {
    zeus.Recover(id);
  }
  for (auto& proxy : proxies) {
    if (proxy->crashed()) {
      proxy->Restart();
    }
    proxy->RepickObserver();
  }
  sim.RunUntil(sim.now() + 30 * kSimSecond);

  ASSERT_GT(committed_writes, 0);

  // Invariant 1: every observer converged to the last committed zxid.
  for (const ServerId& observer : observers) {
    EXPECT_EQ(zeus.ObserverLastZxid(observer), zeus.last_committed_zxid())
        << observer.ToString();
  }
  // Invariant 2: every proxy serves the last committed value of every key.
  for (const auto& [key, value] : last_written) {
    for (size_t i = 0; i < proxies.size(); ++i) {
      const OnDiskCache::Entry* entry = proxies[i]->GetCached(key);
      ASSERT_NE(entry, nullptr) << "proxy " << i << " missing " << key;
      EXPECT_EQ(entry->value, value) << "proxy " << i << " stale on " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionChaosTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---- Repository vs in-memory model --------------------------------------------

class RepositoryModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepositoryModelTest, RandomOpsMatchModel) {
  Rng rng(GetParam());
  Repository repo;
  std::map<std::string, std::string> model;
  // Snapshots: commit id -> model state at that commit.
  std::vector<std::pair<ObjectId, std::map<std::string, std::string>>> snapshots;

  for (int step = 0; step < 150; ++step) {
    // Build a random batch of writes.
    std::vector<FileWrite> writes;
    std::map<std::string, std::optional<std::string>> batch_effect;
    size_t batch = 1 + rng.NextBounded(4);
    for (size_t i = 0; i < batch; ++i) {
      std::string path = "d" + std::to_string(rng.NextBounded(3)) + "/f" +
                         std::to_string(rng.NextBounded(25));
      bool do_delete = rng.NextBool(0.2);
      if (do_delete) {
        // Deleting a nonexistent path fails the whole commit; the model must
        // account for earlier writes in this same batch.
        bool exists_in_batch =
            batch_effect.count(path) > 0 && batch_effect[path].has_value();
        bool exists_in_repo =
            model.count(path) > 0 &&
            (batch_effect.count(path) == 0 || batch_effect[path].has_value());
        if (!exists_in_batch && !exists_in_repo) {
          continue;  // Skip invalid delete.
        }
        writes.push_back({path, std::nullopt});
        batch_effect[path] = std::nullopt;
      } else {
        std::string content = "content-" + std::to_string(rng.Next() % 1000);
        writes.push_back({path, content});
        batch_effect[path] = content;
      }
    }
    auto commit = repo.Commit("fuzzer", "step " + std::to_string(step), writes,
                              step);
    ASSERT_TRUE(commit.ok()) << commit.status();
    for (const auto& [path, content] : batch_effect) {
      if (content.has_value()) {
        model[path] = *content;
      } else {
        model.erase(path);
      }
    }
    if (rng.NextBool(0.1)) {
      snapshots.emplace_back(*commit, model);
    }

    // Continuous checks: file count and a random path read.
    ASSERT_EQ(repo.file_count(), model.size());
    if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(model.size())));
      auto content = repo.ReadFile(it->first);
      ASSERT_TRUE(content.ok());
      EXPECT_EQ(*content, it->second);
    }
  }

  // Full final comparison.
  std::vector<std::string> files = repo.ListFiles();
  ASSERT_EQ(files.size(), model.size());
  for (const auto& [path, content] : model) {
    EXPECT_EQ(*repo.ReadFile(path), content);
  }

  // Historical reads reproduce every snapshot exactly.
  for (const auto& [commit_id, snapshot] : snapshots) {
    for (const auto& [path, content] : snapshot) {
      auto historical = repo.ReadFileAt(commit_id, path);
      ASSERT_TRUE(historical.ok()) << path;
      EXPECT_EQ(*historical, content);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepositoryModelTest,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace configerator
