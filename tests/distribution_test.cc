#include <gtest/gtest.h>

#include <memory>

#include "src/distribution/proxy.h"
#include "src/distribution/pull.h"
#include "src/distribution/tailer.h"
#include "src/lang/compiler.h"
#include "src/obs/observability.h"
#include "src/vcs/multirepo.h"

namespace configerator {
namespace {

class DistributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(&sim_, Topology(2, 2, 20), /*seed=*/9);
    members_ = {ServerId{0, 0, 0}, ServerId{1, 0, 0}, ServerId{0, 0, 1},
                ServerId{1, 0, 1}, ServerId{0, 1, 0}};
    observers_ = {ServerId{0, 0, 18}, ServerId{0, 0, 19}, ServerId{0, 1, 18},
                  ServerId{0, 1, 19}, ServerId{1, 0, 18}, ServerId{1, 0, 19},
                  ServerId{1, 1, 18}, ServerId{1, 1, 19}};
    zeus_ = std::make_unique<ZeusEnsemble>(net_.get(), members_, observers_);
  }

  void WriteAndSettle(const std::string& key, const std::string& value) {
    zeus_->Write(ServerId{0, 0, 5}, key, value, [](Result<int64_t> r) {
      ASSERT_TRUE(r.ok()) << r.status();
    });
    sim_.RunUntil(sim_.now() + 10 * kSimSecond);
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<ServerId> members_;
  std::vector<ServerId> observers_;
  std::unique_ptr<ZeusEnsemble> zeus_;
};

// ---- Proxy ------------------------------------------------------------------

TEST_F(DistributionTest, ProxyReceivesSubscribedConfig) {
  WriteAndSettle("app/cfg.json", "{\"v\": 1}");
  ServerId host{0, 1, 4};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 1);
  std::string latest;
  proxy.Subscribe("app/cfg.json",
                  [&](const std::string&, const std::string& value, int64_t) {
                    latest = value;
                  });
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  EXPECT_EQ(latest, "{\"v\": 1}");
  ASSERT_NE(proxy.GetCached("app/cfg.json"), nullptr);
  EXPECT_EQ(proxy.GetCached("app/cfg.json")->value, "{\"v\": 1}");
  // The on-disk cache was populated too.
  ASSERT_NE(disk.Get("app/cfg.json"), nullptr);
}

TEST_F(DistributionTest, ProxyPicksSameClusterObserver) {
  ServerId host{1, 1, 4};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 2);
  EXPECT_EQ(proxy.observer().region, 1);
  EXPECT_EQ(proxy.observer().cluster, 1);
}

TEST_F(DistributionTest, ProxyDiscardsStaleUpdates) {
  WriteAndSettle("cfg", "v1");
  ServerId host{0, 0, 4};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 3);
  proxy.Subscribe("cfg", nullptr);
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  for (int i = 2; i <= 6; ++i) {
    WriteAndSettle("cfg", "v" + std::to_string(i));
  }
  EXPECT_EQ(proxy.GetCached("cfg")->value, "v6");
  // Monotone: zxid never regressed (stale deliveries discarded silently).
  EXPECT_EQ(proxy.GetCached("cfg")->zxid, zeus_->last_committed_zxid());
}

TEST_F(DistributionTest, AppFallsBackToDiskWhenProxyCrashes) {
  WriteAndSettle("critical.json", "survives");
  ServerId host{0, 0, 7};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 4);
  proxy.Subscribe("critical.json", nullptr);
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);

  AppConfigClient app(&proxy, &disk);
  ASSERT_NE(app.Get("critical.json"), nullptr);

  // Kill the proxy AND the whole control plane: the app still reads.
  proxy.Crash();
  for (const ServerId& m : members_) {
    net_->failures().Crash(m);
  }
  for (const ServerId& o : observers_) {
    net_->failures().Crash(o);
  }
  const OnDiskCache::Entry* entry = app.Get("critical.json");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, "survives");
}

TEST_F(DistributionTest, StalenessGaugeRisesDuringZeusOutageAndRecovers) {
  // §3.4 availability: during a total Zeus outage the proxy keeps serving the
  // last good config from disk, and the staleness gauge is the signal that
  // the data is aging. After the heal it converges and the gauge drops back.
  WriteAndSettle("app/cfg.json", "v1");
  ServerId host{0, 0, 7};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 12);
  Observability obs;
  proxy.AttachObservability(&obs, /*staleness_probe_interval=*/2 * kSimSecond);
  std::string latest;
  proxy.Subscribe("app/cfg.json",
                  [&](const std::string&, const std::string& value, int64_t) {
                    latest = value;
                  });
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  ASSERT_EQ(latest, "v1");

  const Gauge* staleness = obs.metrics.FindGauge(
      "proxy_staleness_seconds", {{"server", host.ToString()}});
  ASSERT_NE(staleness, nullptr);
  EXPECT_LE(staleness->value(), 5.0);

  // Total outage: every member and every observer goes dark. Probe pings are
  // blackholed, so each tick pushes the gauge higher.
  for (const ServerId& m : members_) {
    net_->failures().Crash(m);
  }
  for (const ServerId& o : observers_) {
    net_->failures().Crash(o);
  }
  sim_.RunUntil(sim_.now() + 30 * kSimSecond);
  EXPECT_GE(staleness->value(), 20.0);

  // The app still reads the (stale) config from disk the whole time.
  AppConfigClient app(&proxy, &disk);
  const OnDiskCache::Entry* entry = app.Get("app/cfg.json");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->value, "v1");

  // Heal; a fresh write flows end to end and the gauge returns to ~0.
  for (const ServerId& m : members_) {
    net_->failures().Recover(m);
  }
  for (const ServerId& o : observers_) {
    net_->failures().Recover(o);
  }
  WriteAndSettle("app/cfg.json", "v2");
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  EXPECT_EQ(latest, "v2");
  EXPECT_LE(staleness->value(), 5.0);
}

TEST_F(DistributionTest, ProxyRestartRecoversFromDiskAndResubscribes) {
  WriteAndSettle("cfg", "v1");
  ServerId host{0, 0, 7};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 5);
  proxy.Subscribe("cfg", nullptr);
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);

  proxy.Crash();
  EXPECT_EQ(proxy.GetCached("cfg"), nullptr);
  // An update while down is missed...
  WriteAndSettle("cfg", "v2");

  proxy.Restart();
  // Immediately after restart, the disk value (v1) is served.
  ASSERT_NE(proxy.GetCached("cfg"), nullptr);
  // After resubscription the proxy converges to v2.
  sim_.RunUntil(sim_.now() + 10 * kSimSecond);
  EXPECT_EQ(proxy.GetCached("cfg")->value, "v2");
}

TEST_F(DistributionTest, ProxyFailsOverToAnotherObserver) {
  WriteAndSettle("cfg", "v1");
  ServerId host{0, 1, 4};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 6);
  proxy.Subscribe("cfg", nullptr);
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);

  ServerId failed_observer = proxy.observer();
  zeus_->Crash(failed_observer);
  proxy.RepickObserver();
  EXPECT_NE(proxy.observer(), failed_observer);
  WriteAndSettle("cfg", "v2");
  EXPECT_EQ(proxy.GetCached("cfg")->value, "v2");
}

TEST_F(DistributionTest, MultipleCallbacksPerKey) {
  WriteAndSettle("cfg", "v");
  ServerId host{0, 0, 9};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 7);
  int calls = 0;
  proxy.Subscribe("cfg", [&](const std::string&, const std::string&, int64_t) {
    ++calls;
  });
  proxy.Subscribe("cfg", [&](const std::string&, const std::string&, int64_t) {
    ++calls;
  });
  sim_.RunUntil(sim_.now() + 5 * kSimSecond);
  // One initial delivery fans out to both registered callbacks.
  EXPECT_EQ(calls, 2);
}

// ---- Tailer -----------------------------------------------------------------

TEST_F(DistributionTest, TailerPublishesCommits) {
  Repository repo;
  GitTailer tailer(net_.get(), ServerId{0, 0, 10}, &repo, zeus_.get(),
                   GitTailer::Options{});
  tailer.Start();

  ASSERT_TRUE(repo.Commit("alice", "add config", {{"app/a.json", "{}"}}).ok());
  sim_.RunUntil(sim_.now() + 20 * kSimSecond);
  EXPECT_EQ(tailer.published_count(), 1u);

  // The config is now fetchable from an observer.
  bool fetched = false;
  zeus_->Fetch(ServerId{0, 0, 2}, observers_[0], "app/a.json",
               [&](Result<ZeusValue> r) {
                 ASSERT_TRUE(r.ok()) << r.status();
                 EXPECT_EQ(r->value, "{}");
                 fetched = true;
               });
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);
  EXPECT_TRUE(fetched);
}

TEST_F(DistributionTest, TailerBatchesMultipleCommits) {
  Repository repo;
  GitTailer tailer(net_.get(), ServerId{0, 0, 10}, &repo, zeus_.get(),
                   GitTailer::Options{});
  tailer.Start();
  ASSERT_TRUE(repo.Commit("a", "1", {{"x", "1"}}).ok());
  ASSERT_TRUE(repo.Commit("a", "2", {{"y", "2"}}).ok());
  ASSERT_TRUE(repo.Commit("a", "3", {{"x", "3"}}).ok());
  sim_.RunUntil(sim_.now() + 20 * kSimSecond);
  // x (coalesced to latest) + y.
  EXPECT_EQ(tailer.published_count(), 2u);
}

TEST_F(DistributionTest, TailerRespectsPathPrefix) {
  Repository repo;
  GitTailer::Options options;
  options.path_prefix = "feed/";
  GitTailer tailer(net_.get(), ServerId{0, 0, 10}, &repo, zeus_.get(), options);
  tailer.Start();
  ASSERT_TRUE(repo.Commit("a", "m", {{"feed/a", "1"}, {"tao/b", "2"}}).ok());
  sim_.RunUntil(sim_.now() + 20 * kSimSecond);
  EXPECT_EQ(tailer.published_count(), 1u);
}

TEST_F(DistributionTest, EndToEndCommitToProxy) {
  Repository repo;
  GitTailer tailer(net_.get(), ServerId{0, 0, 10}, &repo, zeus_.get(),
                   GitTailer::Options{});
  tailer.Start();

  ServerId host{1, 1, 4};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 8);
  std::string received;
  SimTime arrival = 0;
  proxy.Subscribe("app/live.json",
                  [&](const std::string&, const std::string& value, int64_t) {
                    received = value;
                    arrival = sim_.now();
                  });
  sim_.RunUntil(sim_.now() + kSimSecond);

  SimTime commit_time = sim_.now();
  ASSERT_TRUE(repo.Commit("alice", "ship it", {{"app/live.json", "LIVE"}}).ok());
  sim_.RunUntil(sim_.now() + 30 * kSimSecond);
  EXPECT_EQ(received, "LIVE");
  // Tailer poll (≤5s) + tree propagation: well under half a minute.
  EXPECT_LE(arrival - commit_time, 10 * kSimSecond);
}

TEST_F(DistributionTest, PartitionedReposWithPerPartitionTailers) {
  // §3.6: "Each git repository has its own mutator, landing strip, and
  // tailer." Two partitions feed one Zeus; a proxy subscribed to configs in
  // both partitions sees both, and cross-repository imports compile.
  MultiRepo multi;
  ASSERT_TRUE(multi.AddPartition("feed/").ok());
  ASSERT_TRUE(multi.AddPartition("tao/").ok());

  GitTailer feed_tailer(net_.get(), ServerId{0, 0, 10},
                        multi.RepoFor("feed/x"), zeus_.get(),
                        GitTailer::Options{});
  GitTailer tao_tailer(net_.get(), ServerId{0, 0, 11}, multi.RepoFor("tao/x"),
                       zeus_.get(), GitTailer::Options{});
  feed_tailer.Start();
  tao_tailer.Start();

  // Cross-repository dependency (the paper's import example): a feed config
  // imports a tao module; "the code is the same regardless of whether those
  // configs are in the same repository or not".
  ASSERT_TRUE(multi.Commit("alice", "tao module",
                           {{"tao/shard_count.cinc", "SHARDS = 16\n"}})
                  .ok());
  ASSERT_TRUE(multi.Commit("bob", "feed entry",
                           {{"feed/ranker.cconf",
                             "import_python(\"tao/shard_count.cinc\", \"*\")\n"
                             "export_if_last({\"shards\": SHARDS})\n"}})
                  .ok());

  const MultiRepo* multi_ptr = &multi;
  ConfigCompiler compiler([multi_ptr](const std::string& path) {
    return multi_ptr->ReadFile(path);
  });
  auto output = compiler.Compile("feed/ranker.cconf");
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->configs[0].content.Get("shards")->as_int(), 16);

  // Land the generated JSON into its home partition and watch both
  // partitions' tailers deliver through the same distribution tree.
  ASSERT_TRUE(multi.Commit("bob", "generated",
                           {{"feed/ranker.json",
                             output->configs[0].content.DumpPretty()}})
                  .ok());
  ServerId host{1, 0, 4};
  OnDiskCache disk;
  ConfigProxy proxy(net_.get(), zeus_.get(), host, &disk, 99);
  proxy.Subscribe("feed/ranker.json", nullptr);
  proxy.Subscribe("tao/shard_count.cinc", nullptr);
  sim_.RunUntil(sim_.now() + 30 * kSimSecond);
  ASSERT_NE(proxy.GetCached("feed/ranker.json"), nullptr);
  ASSERT_NE(proxy.GetCached("tao/shard_count.cinc"), nullptr);
  EXPECT_NE(proxy.GetCached("feed/ranker.json")->value.find("16"),
            std::string::npos);
}

// ---- Pull baseline ------------------------------------------------------------

TEST_F(DistributionTest, PullClientReceivesUpdates) {
  PullService service(net_.get(), ServerId{0, 0, 0});
  service.Publish("cfg", "v1");
  PullClient client(net_.get(), &service, ServerId{1, 0, 5}, 60 * kSimSecond);
  std::string latest;
  client.Track("cfg", [&](const std::string&, const std::string& value, int64_t) {
    latest = value;
  });
  client.Start();
  sim_.RunUntil(sim_.now() + 2 * kSimSecond);
  EXPECT_EQ(latest, "v1");

  service.Publish("cfg", "v2");
  // Nothing until the next poll...
  sim_.RunUntil(sim_.now() + 30 * kSimSecond);
  EXPECT_EQ(latest, "v1");
  sim_.RunUntil(sim_.now() + 40 * kSimSecond);
  EXPECT_EQ(latest, "v2");
}

TEST_F(DistributionTest, PullEmptyPollsAreCounted) {
  PullService service(net_.get(), ServerId{0, 0, 0});
  service.Publish("cfg", "v1");
  PullClient client(net_.get(), &service, ServerId{0, 1, 5}, 10 * kSimSecond);
  client.Track("cfg", nullptr);
  client.Start();
  sim_.RunUntil(sim_.now() + 61 * kSimSecond);
  // First poll fetched the value; later polls were empty overhead.
  EXPECT_GE(client.polls_sent(), 6u);
  EXPECT_GE(client.empty_polls(), client.polls_sent() - 2);
}

}  // namespace
}  // namespace configerator
