// Differential battery for the calendar-queue scheduler: the retained
// heap-based Simulator (QueueKind::kHeap) is the executable specification of
// the (time, seq) FIFO ordering contract; the calendar queue
// (QueueKind::kCalendar, the default) must execute every seeded random
// schedule identically — same event order, same clock at every event, same
// pending/processed counts at every RunUntil / RunUntilIdle boundary.
//
// Each schedule is a deterministic function of its seed alone: every event's
// behavior (how many children it schedules, with what delays) derives from
// SplitMix64(seed, event id), never from execution state, so a scheduler
// divergence shows up as a direct log mismatch instead of cascading noise.
// The generator deliberately covers the contract's edges: same-instant
// bursts, zero and negative delays (clamped to now), ScheduleAt in the past
// (clamped), far-future events (calendar overflow tier + re-anchoring), and
// segmented runs exercising RunUntil deadline semantics and RunUntilIdle
// event budgets.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

// Deterministic per-(seed, event, salt) hash for schedule decisions.
uint64_t Mix(uint64_t seed, uint64_t event_id, uint64_t salt) {
  uint64_t state = seed ^ (event_id * 0x9e3779b97f4a7c15ULL) ^
                   (salt * 0xbf58476d1ce4e5b9ULL);
  return SplitMix64(state);
}

// Drives one Simulator through the seeded schedule, recording an execution
// log. The log captures everything the ordering contract promises.
class ScheduleDriver {
 public:
  ScheduleDriver(Simulator::QueueKind kind, uint64_t seed)
      : sim_(kind), seed_(seed) {}

  std::vector<std::string> Run() {
    const int roots = 3 + static_cast<int>(Mix(seed_, 0, 0) % 6);
    for (int i = 0; i < roots; ++i) {
      SpawnEvent();
    }
    // Segmented execution: a few RunUntil horizons with budgeted
    // RunUntilIdle bursts in between, then a full drain.
    const int segments = 1 + static_cast<int>(Mix(seed_, 1, 1) % 4);
    SimTime horizon = 0;
    for (int s = 0; s < segments; ++s) {
      horizon += static_cast<SimTime>(Mix(seed_, s, 2) % (50 * kSimSecond));
      sim_.RunUntil(horizon);
      Mark("until", horizon);
      uint64_t budget = Mix(seed_, s, 3) % 40;
      sim_.RunUntilIdle(budget);
      Mark("budget", static_cast<SimTime>(budget));
    }
    sim_.RunUntilIdle();
    Mark("drain", 0);
    return std::move(log_);
  }

 private:
  void Mark(const char* what, SimTime arg) {
    log_.push_back(StrFormat("%s(%lld) now=%lld pending=%zu processed=%llu",
                             what, static_cast<long long>(arg),
                             static_cast<long long>(sim_.now()),
                             sim_.pending_events(),
                             static_cast<unsigned long long>(
                                 sim_.processed_events())));
  }

  // Schedules the next event id with seed-derived timing; when it runs, it
  // logs itself and spawns seed-derived children (until the event budget is
  // exhausted, so every schedule terminates).
  void SpawnEvent() {
    const int id = next_id_++;
    const uint64_t shape = Mix(seed_, static_cast<uint64_t>(id), 4);
    switch (shape % 8) {
      case 0:  // Same-instant burst member: zero delay.
        sim_.Schedule(0, [this, id] { OnEvent(id); });
        break;
      case 1:  // Negative delay: must clamp to now.
        sim_.Schedule(-static_cast<SimTime>(shape % 1000) - 1,
                      [this, id] { OnEvent(id); });
        break;
      case 2:  // ScheduleAt in the past: must clamp to now.
        sim_.ScheduleAt(sim_.now() - static_cast<SimTime>(shape % kSimSecond),
                        [this, id] { OnEvent(id); });
        break;
      case 3:  // Far future: lands in the calendar's overflow tier.
        sim_.Schedule(static_cast<SimTime>(shape % 400) * kSimDay,
                      [this, id] { OnEvent(id); });
        break;
      case 4:  // Sub-microsecond cluster: dense same-bucket traffic.
        sim_.Schedule(static_cast<SimTime>(shape % 4),
                      [this, id] { OnEvent(id); });
        break;
      default:  // Ordinary spread over tens of seconds.
        sim_.Schedule(static_cast<SimTime>(shape % (30 * kSimSecond)),
                      [this, id] { OnEvent(id); });
        break;
    }
  }

  void OnEvent(int id) {
    log_.push_back(StrFormat("run %d at %lld", id,
                             static_cast<long long>(sim_.now())));
    const uint64_t fanout_roll = Mix(seed_, static_cast<uint64_t>(id), 5);
    int children = static_cast<int>(fanout_roll % 4);
    if (fanout_roll % 16 == 7) {
      children = 12;  // Occasional same-time fan-out burst.
    }
    for (int c = 0; c < children && next_id_ < kMaxEvents; ++c) {
      SpawnEvent();
    }
  }

  static constexpr int kMaxEvents = 220;

  Simulator sim_;
  uint64_t seed_;
  int next_id_ = 0;
  std::vector<std::string> log_;
};

TEST(SchedulerDifferentialTest, ThousandSeededSchedulesIdentical) {
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    std::vector<std::string> heap_log =
        ScheduleDriver(Simulator::QueueKind::kHeap, seed).Run();
    std::vector<std::string> calendar_log =
        ScheduleDriver(Simulator::QueueKind::kCalendar, seed).Run();
    ASSERT_EQ(heap_log.size(), calendar_log.size()) << "seed " << seed;
    for (size_t i = 0; i < heap_log.size(); ++i) {
      ASSERT_EQ(heap_log[i], calendar_log[i])
          << "seed " << seed << " diverges at log entry " << i;
    }
  }
}

// A same-instant burst wide enough to stress one bucket's heap: FIFO order
// must survive both schedulers.
TEST(SchedulerDifferentialTest, WideSameInstantBurstStaysFifo) {
  for (Simulator::QueueKind kind :
       {Simulator::QueueKind::kHeap, Simulator::QueueKind::kCalendar}) {
    Simulator sim(kind);
    std::vector<int> order;
    for (int i = 0; i < 5000; ++i) {
      sim.Schedule(kSimSecond, [&order, i] { order.push_back(i); });
    }
    sim.RunUntilIdle();
    ASSERT_EQ(order.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(order[i], i) << "queue kind broke FIFO at " << i;
    }
  }
}

// RunUntil peeks ahead of the clock; a later Schedule at a nearer time must
// still run first (the calendar queue's rewind/near-heap path).
TEST(SchedulerDifferentialTest, LateArrivalBeforeAdvancedCursor) {
  for (Simulator::QueueKind kind :
       {Simulator::QueueKind::kHeap, Simulator::QueueKind::kCalendar}) {
    Simulator sim(kind);
    std::vector<int> order;
    sim.Schedule(300 * kSimDay, [&order] { order.push_back(99); });
    sim.RunUntil(kSimSecond);  // Advances cursor toward the far event.
    EXPECT_EQ(sim.now(), kSimSecond);
    sim.Schedule(kSimMillisecond, [&order] { order.push_back(1); });
    sim.Schedule(0, [&order] { order.push_back(0); });
    sim.RunUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 99}));
    EXPECT_EQ(sim.now(), 300 * kSimDay);
  }
}

// Direct calendar-queue stress: enough churn to force grow and shrink
// rebuilds, popping everything back in exact (time, seq) order.
TEST(SchedulerDifferentialTest, CalendarRebuildsPreserveOrder) {
  CalendarEventQueue queue;
  Rng rng(42);
  uint64_t seq = 0;
  for (int i = 0; i < 60000; ++i) {
    queue.Push(SimEvent{static_cast<SimTime>(rng.NextBounded(kSimHour)), seq++,
                        [] {}});
  }
  EXPECT_GT(queue.rebuilds(), 0u);
  EXPECT_GT(queue.bucket_count(), 64u);
  SimTime last_time = -1;
  uint64_t last_seq = 0;
  size_t popped = 0;
  while (!queue.empty()) {
    SimEvent event = queue.PopMin();
    if (popped > 0) {
      ASSERT_TRUE(event.time > last_time ||
                  (event.time == last_time && event.seq > last_seq))
          << "out of order at pop " << popped;
    }
    last_time = event.time;
    last_seq = event.seq;
    ++popped;
    // Interleave occasional pushes below and above the cursor.
    if (popped % 1000 == 0) {
      queue.Push(SimEvent{last_time, seq++, [] {}});
      queue.Push(
          SimEvent{last_time + static_cast<SimTime>(rng.NextBounded(kSimDay)),
                   seq++, [] {}});
    }
  }
  EXPECT_EQ(popped, 60000u + 2 * 60u);
  // Shrink hysteresis: draining far below the grown bucket count rebuilt the
  // ring back down.
  EXPECT_LT(queue.bucket_count(), size_t{1} << 16);
}

}  // namespace
}  // namespace configerator
