#include <gtest/gtest.h>

#include "src/lang/builtins.h"
#include "src/lang/interp.h"
#include "src/lang/lexer.h"
#include "src/util/rng.h"

namespace configerator {
namespace {

// Evaluates a CSL module and returns the resulting globals (no imports).
class LangTest : public ::testing::Test {
 protected:
  // Runs `source`; on success `globals_` holds the module bindings.
  Status Run(const std::string& source) {
    interp_ = std::make_unique<Interp>(registry_.get(), Interp::Hooks{});
    auto module = ParseCsl(source, "test.cconf");
    if (!module.ok()) {
      return module.status();
    }
    module_ = *module;  // Keep AST alive for closures.
    globals_ = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
    return interp_->EvalModule(*module_, globals_, /*exports_enabled=*/true);
  }

  Value Get(const std::string& name) {
    Value* v = globals_->Find(name);
    EXPECT_NE(v, nullptr) << "undefined: " << name;
    return v == nullptr ? Value::Null() : *v;
  }

  std::unique_ptr<SchemaRegistry> registry_;
  std::unique_ptr<Interp> interp_;
  std::shared_ptr<Module> module_;
  std::shared_ptr<Environment> globals_;
};

// ---- Lexer ------------------------------------------------------------------

TEST(LexerTest, TokenizesBasics) {
  auto tokens = TokenizeCsl("x = 1 + 2.5\n", "t");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 6u);
  EXPECT_EQ((*tokens)[0].kind, CslToken::Kind::kName);
  EXPECT_EQ((*tokens)[0].text, "x");
  EXPECT_TRUE((*tokens)[1].IsOp("="));
  EXPECT_EQ((*tokens)[2].kind, CslToken::Kind::kInt);
  EXPECT_TRUE((*tokens)[3].IsOp("+"));
  EXPECT_EQ((*tokens)[4].kind, CslToken::Kind::kFloat);
}

TEST(LexerTest, IndentDedent) {
  auto tokens = TokenizeCsl("if x:\n    y = 1\nz = 2\n", "t");
  ASSERT_TRUE(tokens.ok());
  int indents = 0;
  int dedents = 0;
  for (const CslToken& tok : *tokens) {
    if (tok.kind == CslToken::Kind::kIndent) {
      ++indents;
    }
    if (tok.kind == CslToken::Kind::kDedent) {
      ++dedents;
    }
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(LexerTest, BlankAndCommentLinesDontAffectIndentation) {
  auto tokens = TokenizeCsl("if x:\n    a = 1\n\n    # comment\n    b = 2\n", "t");
  ASSERT_TRUE(tokens.ok());
  int dedents = 0;
  for (const CslToken& tok : *tokens) {
    if (tok.kind == CslToken::Kind::kDedent) {
      ++dedents;
    }
  }
  EXPECT_EQ(dedents, 1);  // Only the final dedent at EOF.
}

TEST(LexerTest, ImplicitLineJoiningInBrackets) {
  auto tokens = TokenizeCsl("x = [1,\n     2,\n     3]\n", "t");
  ASSERT_TRUE(tokens.ok());
  int newlines = 0;
  for (const CslToken& tok : *tokens) {
    if (tok.kind == CslToken::Kind::kNewline) {
      ++newlines;
    }
  }
  EXPECT_EQ(newlines, 1);  // Only the final logical newline.
}

TEST(LexerTest, StringEscapes) {
  auto tokens = TokenizeCsl(R"(s = "a\nb\t\"c\"")"
                            "\n",
                            "t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "a\nb\t\"c\"");
}

TEST(LexerTest, TripleQuotedString) {
  auto tokens = TokenizeCsl("s = \"\"\"line1\nline2\"\"\"\n", "t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "line1\nline2");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(TokenizeCsl("s = \"oops\n", "t").ok());
}

TEST(LexerTest, InconsistentIndentationFails) {
  EXPECT_FALSE(TokenizeCsl("if x:\n    a = 1\n  b = 2\n", "t").ok());
}

// ---- Expressions ------------------------------------------------------------

TEST_F(LangTest, Arithmetic) {
  ASSERT_TRUE(Run("a = 2 + 3 * 4\n"
                  "b = (2 + 3) * 4\n"
                  "c = 7 / 2\n"
                  "d = 7 // 2\n"
                  "e = 7 % 3\n"
                  "f = -5 + 1\n"
                  "g = 2.5 * 2\n")
                  .ok());
  EXPECT_EQ(Get("a").as_int(), 14);
  EXPECT_EQ(Get("b").as_int(), 20);
  EXPECT_DOUBLE_EQ(Get("c").as_double(), 3.5);
  EXPECT_EQ(Get("d").as_int(), 3);
  EXPECT_EQ(Get("e").as_int(), 1);
  EXPECT_EQ(Get("f").as_int(), -4);
  EXPECT_DOUBLE_EQ(Get("g").as_double(), 5.0);
}

TEST_F(LangTest, PythonFloorDivAndModSemantics) {
  ASSERT_TRUE(Run("a = -7 // 2\nb = -7 % 2\nc = 7 % -2\n").ok());
  EXPECT_EQ(Get("a").as_int(), -4);
  EXPECT_EQ(Get("b").as_int(), 1);
  EXPECT_EQ(Get("c").as_int(), -1);
}

TEST_F(LangTest, DivisionByZeroFails) {
  EXPECT_FALSE(Run("a = 1 / 0\n").ok());
  EXPECT_FALSE(Run("a = 1 % 0\n").ok());
}

TEST_F(LangTest, StringOperations) {
  ASSERT_TRUE(Run("a = \"foo\" + \"bar\"\n"
                  "b = \"ab\" * 3\n"
                  "c = \"ll\" in \"hello\"\n"
                  "d = \"hello\"[1]\n"
                  "e = \"hello\"[-1]\n")
                  .ok());
  EXPECT_EQ(Get("a").as_string(), "foobar");
  EXPECT_EQ(Get("b").as_string(), "ababab");
  EXPECT_TRUE(Get("c").as_bool());
  EXPECT_EQ(Get("d").as_string(), "e");
  EXPECT_EQ(Get("e").as_string(), "o");
}

TEST_F(LangTest, Comparisons) {
  ASSERT_TRUE(Run("a = 1 < 2\n"
                  "b = 2 <= 2\n"
                  "c = \"a\" < \"b\"\n"
                  "d = 1 == 1.0\n"
                  "e = [1, 2] == [1, 2]\n"
                  "f = {\"x\": 1} == {\"x\": 1}\n"
                  "g = 3 != 4\n")
                  .ok());
  for (const char* name : {"a", "b", "c", "d", "e", "f", "g"}) {
    EXPECT_TRUE(Get(name).as_bool()) << name;
  }
}

TEST_F(LangTest, LogicalOperatorsShortCircuit) {
  // `or` returns the deciding operand; the divide-by-zero never evaluates.
  ASSERT_TRUE(Run("a = True or (1 / 0)\n"
                  "b = False and (1 / 0)\n"
                  "c = not False\n"
                  "d = 0 or \"fallback\"\n")
                  .ok());
  EXPECT_TRUE(Get("a").as_bool());
  EXPECT_FALSE(Get("b").as_bool());
  EXPECT_TRUE(Get("c").as_bool());
  EXPECT_EQ(Get("d").as_string(), "fallback");
}

TEST_F(LangTest, TernaryExpression) {
  ASSERT_TRUE(Run("a = \"big\" if 10 > 5 else \"small\"\n"
                  "b = \"big\" if 1 > 5 else \"small\"\n")
                  .ok());
  EXPECT_EQ(Get("a").as_string(), "big");
  EXPECT_EQ(Get("b").as_string(), "small");
}

TEST_F(LangTest, InOperator) {
  ASSERT_TRUE(Run("a = 2 in [1, 2, 3]\n"
                  "b = \"k\" in {\"k\": 1}\n"
                  "c = 5 not in [1, 2]\n")
                  .ok());
  EXPECT_TRUE(Get("a").as_bool());
  EXPECT_TRUE(Get("b").as_bool());
  EXPECT_TRUE(Get("c").as_bool());
}

TEST_F(LangTest, ListsAndDicts) {
  ASSERT_TRUE(Run("l = [1, 2, 3]\n"
                  "l[1] = 20\n"
                  "d = {\"a\": 1}\n"
                  "d[\"b\"] = 2\n"
                  "x = l[1] + d[\"b\"]\n"
                  "n = len(l) + len(d)\n")
                  .ok());
  EXPECT_EQ(Get("x").as_int(), 22);
  EXPECT_EQ(Get("n").as_int(), 5);
}

TEST_F(LangTest, ReferenceSemanticsForContainers) {
  ASSERT_TRUE(Run("a = {\"x\": 1}\n"
                  "b = a\n"
                  "b[\"x\"] = 99\n"
                  "v = a[\"x\"]\n")
                  .ok());
  EXPECT_EQ(Get("v").as_int(), 99);
}

TEST_F(LangTest, AttributeAccessOnDicts) {
  ASSERT_TRUE(Run("cfg = {\"port\": 8089}\n"
                  "p = cfg.port\n"
                  "cfg.port = 9090\n"
                  "q = cfg[\"port\"]\n")
                  .ok());
  EXPECT_EQ(Get("p").as_int(), 8089);
  EXPECT_EQ(Get("q").as_int(), 9090);
}

TEST_F(LangTest, IndexOutOfRangeFails) {
  EXPECT_FALSE(Run("a = [1][5]\n").ok());
  EXPECT_FALSE(Run("a = {\"x\": 1}[\"y\"]\n").ok());
}

TEST_F(LangTest, UndefinedNameFails) {
  Status s = Run("a = nosuchname\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nosuchname"), std::string::npos);
}

// ---- Statements -------------------------------------------------------------

TEST_F(LangTest, IfElifElse) {
  ASSERT_TRUE(Run("x = 7\n"
                  "if x > 10:\n"
                  "    r = \"big\"\n"
                  "elif x > 5:\n"
                  "    r = \"medium\"\n"
                  "else:\n"
                  "    r = \"small\"\n")
                  .ok());
  EXPECT_EQ(Get("r").as_string(), "medium");
}

TEST_F(LangTest, ForLoopOverList) {
  ASSERT_TRUE(Run("total = 0\n"
                  "for x in [1, 2, 3, 4]:\n"
                  "    total = total + x\n")
                  .ok());
  EXPECT_EQ(Get("total").as_int(), 10);
}

TEST_F(LangTest, ForLoopOverRangeWithBreakContinue) {
  ASSERT_TRUE(Run("total = 0\n"
                  "for i in range(10):\n"
                  "    if i == 3:\n"
                  "        continue\n"
                  "    if i == 6:\n"
                  "        break\n"
                  "    total = total + i\n")
                  .ok());
  EXPECT_EQ(Get("total").as_int(), 0 + 1 + 2 + 4 + 5);
}

TEST_F(LangTest, ForLoopUnpacking) {
  ASSERT_TRUE(Run("acc = \"\"\n"
                  "for k, v in items({\"a\": 1, \"b\": 2}):\n"
                  "    acc = acc + k + str(v)\n")
                  .ok());
  EXPECT_EQ(Get("acc").as_string(), "a1b2");
}

TEST_F(LangTest, ForLoopOverDictYieldsKeys) {
  ASSERT_TRUE(Run("acc = \"\"\n"
                  "for k in {\"b\": 1, \"a\": 2}:\n"
                  "    acc = acc + k\n")
                  .ok());
  EXPECT_EQ(Get("acc").as_string(), "ab");  // Sorted (deterministic).
}

TEST_F(LangTest, WhileLoop) {
  ASSERT_TRUE(Run("n = 0\n"
                  "while n < 5:\n"
                  "    n = n + 1\n")
                  .ok());
  EXPECT_EQ(Get("n").as_int(), 5);
}

TEST_F(LangTest, InfiniteLoopHitsStepLimit) {
  interp_ = std::make_unique<Interp>(nullptr, Interp::Hooks{});
  auto module = ParseCsl("while True:\n    pass\n", "t");
  ASSERT_TRUE(module.ok());
  interp_->set_step_limit(10'000);
  auto globals = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
  Status s = interp_->EvalModule(**module, globals, false);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("step limit"), std::string::npos);
}

TEST_F(LangTest, AugmentedAssignment) {
  ASSERT_TRUE(Run("x = 10\n"
                  "x += 5\n"
                  "x -= 3\n"
                  "x *= 2\n"
                  "d = {\"n\": 1}\n"
                  "d[\"n\"] += 10\n")
                  .ok());
  EXPECT_EQ(Get("x").as_int(), 24);
  EXPECT_EQ(Get("d").as_dict().at("n").as_int(), 11);
}

TEST_F(LangTest, AssertPassesAndFails) {
  EXPECT_TRUE(Run("assert 1 < 2, \"math works\"\n").ok());
  Status s = Run("assert 2 < 1, \"custom failure message\"\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("custom failure message"), std::string::npos);
}

// ---- Functions --------------------------------------------------------------

TEST_F(LangTest, FunctionDefinitionAndCall) {
  ASSERT_TRUE(Run("def add(a, b):\n"
                  "    return a + b\n"
                  "r = add(2, 3)\n")
                  .ok());
  EXPECT_EQ(Get("r").as_int(), 5);
}

TEST_F(LangTest, KeywordArgumentsAndDefaults) {
  ASSERT_TRUE(Run("def make(name, size=10, tag=\"x\"):\n"
                  "    return {\"name\": name, \"size\": size, \"tag\": tag}\n"
                  "a = make(\"cache\")\n"
                  "b = make(\"db\", tag=\"y\")\n"
                  "c = make(size=1, name=\"q\")\n")
                  .ok());
  EXPECT_EQ(Get("a").as_dict().at("size").as_int(), 10);
  EXPECT_EQ(Get("b").as_dict().at("tag").as_string(), "y");
  EXPECT_EQ(Get("c").as_dict().at("size").as_int(), 1);
}

TEST_F(LangTest, MissingArgumentFails) {
  Status s = Run("def f(a):\n    return a\nr = f()\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing required argument"), std::string::npos);
}

TEST_F(LangTest, UnknownKeywordFails) {
  Status s = Run("def f(a):\n    return a\nr = f(a=1, b=2)\n");
  EXPECT_FALSE(s.ok());
}

TEST_F(LangTest, DuplicateBindingFails) {
  Status s = Run("def f(a):\n    return a\nr = f(1, a=2)\n");
  EXPECT_FALSE(s.ok());
}

TEST_F(LangTest, DuplicateKeywordArgumentRejectedAtParse) {
  Status s = Run("def f(a, b=1):\n    return a\nr = f(a=1, a=2)\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate keyword"), std::string::npos);
}

TEST_F(LangTest, NestedAttributeAssignment) {
  ASSERT_TRUE(Run("cfg = {\"outer\": {\"inner\": {\"v\": 1}}}\n"
                  "cfg.outer.inner.v = 42\n"
                  "r = cfg[\"outer\"][\"inner\"][\"v\"]\n")
                  .ok());
  EXPECT_EQ(Get("r").as_int(), 42);
}

TEST_F(LangTest, ClosuresCaptureEnvironment) {
  ASSERT_TRUE(Run("base = 100\n"
                  "def adder(x):\n"
                  "    return base + x\n"
                  "r = adder(5)\n")
                  .ok());
  EXPECT_EQ(Get("r").as_int(), 105);
}

TEST_F(LangTest, RecursionWorksAndIsBounded) {
  ASSERT_TRUE(Run("def fact(n):\n"
                  "    if n <= 1:\n"
                  "        return 1\n"
                  "    return n * fact(n - 1)\n"
                  "r = fact(10)\n")
                  .ok());
  EXPECT_EQ(Get("r").as_int(), 3628800);

  Status s = Run("def loop(n):\n    return loop(n + 1)\nr = loop(0)\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("recursion"), std::string::npos);
}

TEST_F(LangTest, ReturnWithoutValueGivesNone) {
  ASSERT_TRUE(Run("def f():\n    return\nr = f()\n").ok());
  EXPECT_TRUE(Get("r").is_null());
}

TEST_F(LangTest, FunctionsAreValues) {
  ASSERT_TRUE(Run("def double(x):\n"
                  "    return x * 2\n"
                  "def apply(f, v):\n"
                  "    return f(v)\n"
                  "r = apply(double, 21)\n")
                  .ok());
  EXPECT_EQ(Get("r").as_int(), 42);
}

// ---- Builtins ---------------------------------------------------------------

TEST_F(LangTest, BuiltinConversions) {
  ASSERT_TRUE(Run("a = int(\"42\")\n"
                  "b = float(\"2.5\")\n"
                  "c = str(7)\n"
                  "d = int(3.9)\n"
                  "e = abs(-4)\n")
                  .ok());
  EXPECT_EQ(Get("a").as_int(), 42);
  EXPECT_DOUBLE_EQ(Get("b").as_double(), 2.5);
  EXPECT_EQ(Get("c").as_string(), "7");
  EXPECT_EQ(Get("d").as_int(), 3);
  EXPECT_EQ(Get("e").as_int(), 4);
}

TEST_F(LangTest, BuiltinIntRejectsGarbage) {
  EXPECT_FALSE(Run("a = int(\"4x\")\n").ok());
}

TEST_F(LangTest, BuiltinCollections) {
  ASSERT_TRUE(Run("l = [3, 1, 2]\n"
                  "s = sorted(l)\n"
                  "mn = min(l)\n"
                  "mx = max(1, 9, 4)\n"
                  "append(l, 10)\n"
                  "extend(l, [11, 12])\n"
                  "n = len(l)\n"
                  "ks = keys({\"b\": 1, \"a\": 2})\n"
                  "vs = values({\"b\": 1, \"a\": 2})\n"
                  "g1 = get({\"a\": 5}, \"a\")\n"
                  "g2 = get({\"a\": 5}, \"z\", -1)\n"
                  "hk = has_key({\"a\": 5}, \"a\")\n")
                  .ok());
  EXPECT_EQ(Get("s").as_list()[0].as_int(), 1);
  EXPECT_EQ(Get("mn").as_int(), 1);
  EXPECT_EQ(Get("mx").as_int(), 9);
  EXPECT_EQ(Get("n").as_int(), 6);
  EXPECT_EQ(Get("ks").as_list()[0].as_string(), "a");
  EXPECT_EQ(Get("vs").as_list()[0].as_int(), 2);
  EXPECT_EQ(Get("g1").as_int(), 5);
  EXPECT_EQ(Get("g2").as_int(), -1);
  EXPECT_TRUE(Get("hk").as_bool());
}

TEST_F(LangTest, BuiltinStringHelpers) {
  ASSERT_TRUE(Run("j = join(\",\", [\"a\", \"b\"])\n"
                  "sp = split(\"a-b-c\", \"-\")\n"
                  "f = format(\"{} has {} cores\", \"host\", 8)\n")
                  .ok());
  EXPECT_EQ(Get("j").as_string(), "a,b");
  EXPECT_EQ(Get("sp").as_list().size(), 3u);
  EXPECT_EQ(Get("f").as_string(), "host has 8 cores");
}

TEST_F(LangTest, BuiltinFail) {
  Status s = Run("fail(\"deliberate\")\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("deliberate"), std::string::npos);
}

TEST_F(LangTest, StringBuiltins) {
  ASSERT_TRUE(Run("a = startswith(\"feed/cache.json\", \"feed/\")\n"
                  "b = endswith(\"cache.json\", \".json\")\n"
                  "c = upper(\"abc\")\n"
                  "d = lower(\"AbC\")\n"
                  "e = strip(\"  x \")\n"
                  "f = replace(\"a-b-c\", \"-\", \"/\")\n")
                  .ok());
  EXPECT_TRUE(Get("a").as_bool());
  EXPECT_TRUE(Get("b").as_bool());
  EXPECT_EQ(Get("c").as_string(), "ABC");
  EXPECT_EQ(Get("d").as_string(), "abc");
  EXPECT_EQ(Get("e").as_string(), "x");
  EXPECT_EQ(Get("f").as_string(), "a/b/c");
}

TEST_F(LangTest, StringBuiltinsRejectBadArgs) {
  EXPECT_FALSE(Run("x = startswith(1, \"a\")\n").ok());
  EXPECT_FALSE(Run("x = replace(\"s\", \"\", \"y\")\n").ok());
  EXPECT_FALSE(Run("x = upper(3)\n").ok());
}

TEST_F(LangTest, MergeDeepMergesDicts) {
  ASSERT_TRUE(Run("base = {\"a\": 1, \"nested\": {\"x\": 1, \"y\": 2},"
                  " \"list\": [1, 2]}\n"
                  "child = merge(base, {\"b\": 9, \"nested\": {\"y\": 20},"
                  " \"list\": [3]})\n")
                  .ok());
  const Value::Dict& child = Get("child").as_dict();
  EXPECT_EQ(child.at("a").as_int(), 1);                       // Inherited.
  EXPECT_EQ(child.at("b").as_int(), 9);                       // Added.
  EXPECT_EQ(child.at("nested").as_dict().at("x").as_int(), 1);  // Kept.
  EXPECT_EQ(child.at("nested").as_dict().at("y").as_int(), 20);  // Overridden.
  EXPECT_EQ(child.at("list").as_list().size(), 1u);  // Lists replaced whole.
}

TEST_F(LangTest, MergeDoesNotMutateBase) {
  ASSERT_TRUE(Run("base = {\"a\": 1}\n"
                  "child = merge(base, {\"a\": 2})\n"
                  "orig = base[\"a\"]\n")
                  .ok());
  EXPECT_EQ(Get("orig").as_int(), 1);
  EXPECT_EQ(Get("child").as_dict().at("a").as_int(), 2);
}

TEST_F(LangTest, MergeRequiresDicts) {
  EXPECT_FALSE(Run("x = merge({\"a\": 1}, [1])\n").ok());
  EXPECT_FALSE(Run("x = merge(1, {\"a\": 1})\n").ok());
}

TEST_F(LangTest, RangeVariants) {
  ASSERT_TRUE(Run("a = range(3)\n"
                  "b = range(2, 5)\n"
                  "c = range(10, 0, -3)\n")
                  .ok());
  EXPECT_EQ(Get("a").as_list().size(), 3u);
  EXPECT_EQ(Get("b").as_list()[0].as_int(), 2);
  EXPECT_EQ(Get("c").as_list().size(), 4u);  // 10, 7, 4, 1.
}

// ---- Schema constructors ----------------------------------------------------

class LangSchemaTest : public LangTest {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<SchemaRegistry>();
    ASSERT_TRUE(registry_
                    ->ParseAndRegister(
                        "enum Level { LOW = 0, HIGH = 5 }\n"
                        "struct Job { 1: required string name; "
                        "2: optional i32 cpu = 1; 3: optional Level level; }",
                        "job.thrift")
                    .ok());
  }
};

TEST_F(LangSchemaTest, ConstructorBuildsTypedValue) {
  ASSERT_TRUE(Run("j = Job(name=\"cache\", cpu=4)\n"
                  "n = j.name\n")
                  .ok());
  EXPECT_EQ(Get("j").type_name(), "Job");
  EXPECT_EQ(Get("n").as_string(), "cache");
}

TEST_F(LangSchemaTest, ConstructorRejectsUnknownField) {
  Status s = Run("j = Job(nmae=\"typo\")\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nmae"), std::string::npos);
}

TEST_F(LangSchemaTest, ConstructorRejectsPositionalArgs) {
  EXPECT_FALSE(Run("j = Job(\"cache\")\n").ok());
}

TEST_F(LangSchemaTest, EnumNamespace) {
  ASSERT_TRUE(Run("v = Level.HIGH\n").ok());
  EXPECT_EQ(Get("v").as_int(), 5);
}

TEST_F(LangSchemaTest, EnumUnknownValueFails) {
  EXPECT_FALSE(Run("v = Level.MEDIUM\n").ok());
}

// ---- Robustness: random inputs never crash the front end ----------------------

class LangFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LangFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam());
  const char* fragments[] = {
      "def ",   "return ", "if ",  "else:",  "for ",  "in ",    "while ",
      "x",      "y",       "f",    "(",      ")",     "[",      "]",
      "{",      "}",       ":",    ",",      "=",     "==",     "+",
      "-",      "*",       "/",    "\"s\"",  "42",    "3.5",    "True",
      "None",   "not ",    "and ", "or ",    "\n",    "    ",   "assert ",
      "import_python", "export_if_last", ".", "%",    "//",     "<=",
  };
  for (int round = 0; round < 200; ++round) {
    std::string source;
    size_t n = 1 + rng.NextBounded(40);
    for (size_t i = 0; i < n; ++i) {
      source += fragments[rng.NextBounded(std::size(fragments))];
    }
    source += "\n";
    // Must not crash; errors are fine. If it parses, evaluation (with a
    // tight step budget) must not crash either.
    auto module = ParseCsl(source, "fuzz");
    if (!module.ok()) {
      continue;
    }
    Interp interp(nullptr, Interp::Hooks{});
    interp.set_step_limit(50'000);
    auto globals = interp.NewEnvironment(interp.MakeBaseEnvironment());
    (void)interp.EvalModule(**module, globals, false);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

// ---- Value model ------------------------------------------------------------

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_FALSE(Value::Str("").Truthy());
  EXPECT_FALSE(Value::MakeList().Truthy());
  EXPECT_FALSE(Value::MakeDict().Truthy());
  EXPECT_TRUE(Value::Bool(true).Truthy());
  EXPECT_TRUE(Value::Int(-1).Truthy());
  EXPECT_TRUE(Value::Str("x").Truthy());
}

TEST(ValueTest, JsonRoundTrip) {
  auto json = Json::Parse(R"({"a": [1, 2.5, "x", true, null], "b": {"c": 1}})");
  ASSERT_TRUE(json.ok());
  Value value = Value::FromJson(*json);
  auto back = value.ToJson();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*json, *back);
}

TEST(ValueTest, SelfReferentialContainersAreSafe) {
  // The language allows `d["self"] = d`; export must fail cleanly (not
  // recurse forever), debug rendering must truncate, and self-comparison
  // must terminate. (The cycles are broken manually below — reference
  // counting cannot reclaim them, a documented language limitation.)
  Value d = Value::MakeDict();
  d.as_dict()["self"] = d;
  auto json = d.ToJson();
  ASSERT_FALSE(json.ok());
  EXPECT_NE(json.status().message().find("depth limit"), std::string::npos);
  EXPECT_FALSE(d.ToDebugString().empty());
  EXPECT_TRUE(d.Equals(d));

  Value l = Value::MakeList();
  l.as_list().push_back(l);
  EXPECT_FALSE(l.ToJson().ok());
  EXPECT_TRUE(l.Equals(l));

  d.as_dict().clear();
  l.as_list().clear();
}

TEST(ValueTest, FunctionsDontSerialize) {
  Value fn = Value::MakeNative("f", [](std::vector<Value>&,
                                       std::map<std::string, Value>&)
                                   -> Result<Value> { return Value::Null(); });
  EXPECT_FALSE(fn.ToJson().ok());
}

TEST(ValueTest, DebugStrings) {
  EXPECT_EQ(Value::Int(3).ToDebugString(), "3");
  EXPECT_EQ(Value::Bool(true).ToDebugString(), "True");
  EXPECT_EQ(Value::Null().ToDebugString(), "None");
  EXPECT_EQ(Value::MakeList({Value::Int(1)}).ToDebugString(), "[1]");
}

}  // namespace
}  // namespace configerator
