#include <gtest/gtest.h>

#include "src/sitevars/sitevars.h"

namespace configerator {
namespace {

TEST(SitevarClassifyTest, Scalars) {
  EXPECT_EQ(ClassifySitevarValue(Json(true)), SitevarType::kBool);
  EXPECT_EQ(ClassifySitevarValue(Json(int64_t{3})), SitevarType::kInt);
  EXPECT_EQ(ClassifySitevarValue(Json(2.5)), SitevarType::kDouble);
  EXPECT_EQ(ClassifySitevarValue(*Json::Parse("[1]")), SitevarType::kList);
  EXPECT_EQ(ClassifySitevarValue(*Json::Parse("{}")), SitevarType::kObject);
}

TEST(SitevarClassifyTest, StringSubtypes) {
  // The paper's inference ladder: JSON string, timestamp string, general.
  EXPECT_EQ(ClassifySitevarValue(Json("hello world")),
            SitevarType::kGeneralString);
  EXPECT_EQ(ClassifySitevarValue(Json("{\"a\": 1}")), SitevarType::kJsonString);
  EXPECT_EQ(ClassifySitevarValue(Json("[1, 2]")), SitevarType::kJsonString);
  EXPECT_EQ(ClassifySitevarValue(Json("2015-10-04")),
            SitevarType::kTimestampString);
  EXPECT_EQ(ClassifySitevarValue(Json("1443916800")),
            SitevarType::kTimestampString);
  EXPECT_EQ(ClassifySitevarValue(Json("{broken json")),
            SitevarType::kGeneralString);
  EXPECT_EQ(ClassifySitevarValue(Json("123")), SitevarType::kGeneralString);
}

TEST(SitevarStoreTest, SetAndGetExpression) {
  SitevarStore store;
  auto result = store.Set("max_upload_mb", "25 * 4", "alice");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->warnings.empty());
  EXPECT_EQ(store.Get("max_upload_mb")->as_int(), 100);
  EXPECT_TRUE(store.Exists("max_upload_mb"));
  EXPECT_FALSE(store.Exists("nope"));
}

TEST(SitevarStoreTest, ComplexExpressions) {
  SitevarStore store;
  auto result = store.Set(
      "limits", R"({"upload": 10 * 5, "regions": ["us", "eu"], "on": True})",
      "alice");
  ASSERT_TRUE(result.ok()) << result.status();
  Json value = *store.Get("limits");
  EXPECT_EQ(value.Get("upload")->as_int(), 50);
  EXPECT_EQ(value.Get("regions")->size(), 2u);
  EXPECT_TRUE(value.Get("on")->as_bool());
}

TEST(SitevarStoreTest, InvalidExpressionFails) {
  SitevarStore store;
  EXPECT_FALSE(store.Set("bad", "1 +", "alice").ok());
  EXPECT_FALSE(store.Set("bad", "undefined_var", "alice").ok());
  EXPECT_FALSE(store.Exists("bad"));
}

TEST(SitevarStoreTest, GetMissingIsNotFound) {
  SitevarStore store;
  EXPECT_EQ(store.Get("ghost").status().code(), StatusCode::kNotFound);
}

TEST(SitevarStoreTest, TypeDeviationWarns) {
  SitevarStore store;
  // Build an int history.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Set("knob", std::to_string(i + 10), "alice").ok());
  }
  EXPECT_EQ(store.InferredType("knob"), SitevarType::kInt);
  // A string update deviates: warn but do not block (paper: "displays a
  // warning message").
  auto result = store.Set("knob", "\"oops\"", "bob");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->warnings.size(), 1u);
  EXPECT_NE(result->warnings[0].find("historically been int"),
            std::string::npos);
  EXPECT_EQ(store.Get("knob")->as_string(), "oops");
}

TEST(SitevarStoreTest, FieldLevelInference) {
  SitevarStore store;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store
                    .Set("cfg",
                         R"({"when": "2015-10-0)" + std::to_string(i + 1) +
                             R"(", "limit": )" + std::to_string(i) + "}",
                         "alice")
                    .ok());
  }
  auto field_types = store.InferredFieldTypes("cfg");
  EXPECT_EQ(field_types.at("when"), SitevarType::kTimestampString);
  EXPECT_EQ(field_types.at("limit"), SitevarType::kInt);

  // A timestamp field becoming a general string triggers a field warning.
  auto result =
      store.Set("cfg", R"({"when": "tomorrow-ish", "limit": 5})", "bob");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->warnings.size(), 1u);
  EXPECT_NE(result->warnings[0].find("field 'when'"), std::string::npos);
}

TEST(SitevarStoreTest, NewFieldNoWarning) {
  SitevarStore store;
  ASSERT_TRUE(store.Set("cfg", R"({"a": 1})", "alice").ok());
  auto result = store.Set("cfg", R"({"a": 2, "brand_new": "x"})", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->warnings.empty());
}

TEST(SitevarStoreTest, CheckerBlocksBadValues) {
  SitevarStore store;
  ASSERT_TRUE(store.Set("rate", "100", "alice").ok());
  ASSERT_TRUE(store
                  .SetChecker("rate",
                              "def check(value):\n"
                              "    assert value > 0, \"rate must be positive\"\n"
                              "    assert value <= 1000, \"rate too high\"\n")
                  .ok());
  EXPECT_TRUE(store.Set("rate", "500", "bob").ok());
  auto too_high = store.Set("rate", "5000", "bob");
  ASSERT_FALSE(too_high.ok());
  EXPECT_NE(too_high.status().message().find("rate too high"),
            std::string::npos);
  // The rejected update did not land.
  EXPECT_EQ(store.Get("rate")->as_int(), 500);
}

TEST(SitevarStoreTest, CheckerReturningFalseBlocks) {
  SitevarStore store;
  ASSERT_TRUE(store.Set("flag", "True", "alice").ok());
  ASSERT_TRUE(store.SetChecker("flag",
                               "def check(value):\n"
                               "    return value == True or value == False\n")
                  .ok());
  EXPECT_TRUE(store.Set("flag", "False", "bob").ok());
  EXPECT_FALSE(store.Set("flag", "42", "bob").ok());
}

TEST(SitevarStoreTest, CheckerGuardsTheFirstValueToo) {
  // Installing the checker before any value exists still protects the very
  // first Set (a new sitevar created through the UI with a checker).
  SitevarStore store;
  ASSERT_TRUE(store.SetChecker("fresh",
                               "def check(value):\n"
                               "    assert value >= 0, \"no negatives\"\n")
                  .ok());
  EXPECT_FALSE(store.Set("fresh", "-1", "alice").ok());
  EXPECT_FALSE(store.Exists("fresh") && store.Get("fresh").ok());
  EXPECT_TRUE(store.Set("fresh", "7", "alice").ok());
  EXPECT_EQ(store.Get("fresh")->as_int(), 7);
}

TEST(SitevarStoreTest, CheckerMustDefineCheck) {
  SitevarStore store;
  EXPECT_FALSE(store.SetChecker("x", "def other():\n    pass\n").ok());
  EXPECT_FALSE(store.SetChecker("x", "not even ( valid\n").ok());
}

TEST(SitevarStoreTest, AuthorsTracked) {
  SitevarStore store;
  ASSERT_TRUE(store.Set("v", "1", "alice").ok());
  ASSERT_TRUE(store.Set("v", "2", "bob").ok());
  ASSERT_TRUE(store.Set("v", "3", "alice").ok());
  auto authors = store.UpdateAuthors("v");
  ASSERT_EQ(authors.size(), 3u);
  EXPECT_EQ(authors[1], "bob");
}

TEST(SitevarStoreTest, HistoryBounded) {
  SitevarStore store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Set("busy", std::to_string(i), "automation").ok());
  }
  EXPECT_LE(store.UpdateAuthors("busy").size(), 64u);
  EXPECT_EQ(store.Get("busy")->as_int(), 199);
}

TEST(SitevarStoreTest, MajorityTypeWinsOverOutlier) {
  SitevarStore store;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Set("mostly_int", std::to_string(i), "a").ok());
  }
  ASSERT_TRUE(store.Set("mostly_int", "\"blip\"", "a").ok());
  EXPECT_EQ(store.InferredType("mostly_int"), SitevarType::kInt);
}

}  // namespace
}  // namespace configerator
