// Concurrency stress for the shared-snapshot GatekeeperRuntime: reader
// threads hammer Check()/CheckMany() while a writer publishes config updates,
// tombstones, and epoch rebuilds. Asserts:
//   * no torn reads — sentinel users whose outcome is identical under every
//     published config never observe a different answer;
//   * snapshot versions are monotone per thread;
//   * folded statistics equal the sum of per-thread observations once the
//     threads have quiesced.
// Run under TSan (scripts/check.sh --tsan) to catch actual data races.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/gatekeeper/runtime.h"
#include "src/util/strings.h"

namespace configerator {
namespace {

// Every published variant keeps the same sentinel semantics: employees always
// pass, and the churn rules can never match the non-employee sentinel (his
// country is "US", the churn rules gate on "XX"). Only rule count and
// parameters vary between variants.
std::string ChurnConfigJson(int step) {
  std::string churn_rules;
  int extra = 1 + step % 3;
  for (int r = 0; r < extra; ++r) {
    churn_rules += StrFormat(
        R"(, {"restraints": [{"type": "country", "params": {"countries": ["XX"]}},
                             {"type": "min_friend_count", "params": {"count": %d}}],
             "pass_probability": 1.0})",
        step + r);
  }
  return StrFormat(
      R"({"project": "sentinel", "rules": [
            {"restraints": [{"type": "employee"}], "pass_probability": 1.0}%s]})",
      churn_rules.c_str());
}

UserContext EmployeeUser() {
  UserContext user;
  user.user_id = 1;
  user.country = "US";
  user.is_employee = true;
  return user;
}

UserContext RegularUser() {
  UserContext user;
  user.user_id = 7;
  user.country = "US";
  user.is_employee = false;
  return user;
}

TEST(GatekeeperConcurrencyTest, ReadersStayConsistentUnderWriterChurn) {
  constexpr int kReaders = 4;
  constexpr int kReaderIters = 20000;
  constexpr int kWriterUpdates = 300;

  GatekeeperRuntime runtime;
  ASSERT_TRUE(
      runtime.ApplyConfigUpdate("gatekeeper/sentinel.json", ChurnConfigJson(0))
          .ok());

  const UserContext employee = EmployeeUser();
  const UserContext regular = RegularUser();
  const std::vector<UserContext> batch = {employee, regular};

  std::atomic<int> wrong_outcomes{0};
  std::atomic<int> version_regressions{0};
  std::atomic<uint64_t> reader_checks{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      uint64_t local_checks = 0;
      uint64_t last_version = 0;
      for (int i = 0; i < kReaderIters; ++i) {
        uint64_t version = runtime.snapshot_version();
        if (version < last_version) {
          version_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = version;

        bool e = runtime.Check("sentinel", employee);
        bool r = runtime.Check("sentinel", regular);
        local_checks += 2;
        if (!e || r) {
          wrong_outcomes.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 64 == 0) {
          std::vector<uint8_t> results;
          size_t passed = runtime.CheckMany("sentinel", batch, &results);
          local_checks += batch.size();
          if (passed != 1 || results.size() != 2 || results[0] != 1 ||
              results[1] != 0) {
            wrong_outcomes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      reader_checks.fetch_add(local_checks, std::memory_order_relaxed);
    });
  }

  std::thread writer([&] {
    for (int step = 1; step <= kWriterUpdates; ++step) {
      ASSERT_TRUE(runtime
                      .ApplyConfigUpdate("gatekeeper/sentinel.json",
                                         ChurnConfigJson(step))
                      .ok());
      if (step % 10 == 0) {
        runtime.Rebuild();
      }
      // Churn a second project through load + tombstone; readers never
      // query it, but its snapshot swaps must not disturb them.
      if (step % 2 == 0) {
        ASSERT_TRUE(runtime
                        .ApplyConfigUpdate(
                            "gatekeeper/other.json",
                            R"({"project": "other", "rules": [{"restraints": [],
                                "pass_probability": 1.0}]})")
                        .ok());
      } else {
        ASSERT_TRUE(
            runtime.ApplyConfigUpdate("gatekeeper/other.json", "").ok());
      }
      std::this_thread::yield();
    }
    writer_done.store(true, std::memory_order_release);
  });

  for (std::thread& reader : readers) {
    reader.join();
  }
  writer.join();

  EXPECT_TRUE(writer_done.load(std::memory_order_acquire));
  EXPECT_EQ(wrong_outcomes.load(), 0)
      << "a reader observed a torn/inconsistent snapshot";
  EXPECT_EQ(version_regressions.load(), 0)
      << "snapshot_version() went backwards";
  // Folded stripes equal the sum of per-thread observations: no increment
  // was lost or double-counted. (The main thread issued no checks.)
  EXPECT_EQ(runtime.check_count(), reader_checks.load());
  // The writer's swaps all published: initial load + updates + other-project
  // churn + rebuilds, each a version bump.
  EXPECT_GT(runtime.snapshot_version(),
            static_cast<uint64_t>(kWriterUpdates));
}

TEST(GatekeeperConcurrencyTest, FoldedStatsCountEveryEvaluation) {
  constexpr int kThreads = 4;
  constexpr int kChecksPerThread = 10000;

  GatekeeperRuntime runtime;
  // Single always-true restraint: every check evaluates it exactly once and
  // it always passes, so the folded stats are exactly predictable.
  ASSERT_TRUE(runtime
                  .ApplyConfigUpdate(
                      "gatekeeper/stats.json",
                      R"({"project": "stats", "rules": [{"restraints":
                          [{"type": "always"}], "pass_probability": 1.0}]})")
                  .ok());

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      UserContext user;
      user.user_id = t;
      for (int i = 0; i < kChecksPerThread; ++i) {
        runtime.Check("stats", user);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kChecksPerThread;
  EXPECT_EQ(runtime.check_count(), kTotal);
  auto stats = runtime.StatsSnapshot("stats");
  ASSERT_EQ(stats.size(), 1u);
  ASSERT_EQ(stats[0].size(), 1u);
  EXPECT_EQ(stats[0][0].evals, kTotal);
  EXPECT_EQ(stats[0][0].passes, kTotal);
  EXPECT_DOUBLE_EQ(stats[0][0].pass_rate(), 1.0);

  // Stats survive an epoch rebuild (same shared block, new snapshot).
  uint64_t version_before = runtime.snapshot_version();
  runtime.Rebuild();
  EXPECT_GT(runtime.snapshot_version(), version_before);
  auto stats_after = runtime.StatsSnapshot("stats");
  ASSERT_EQ(stats_after.size(), 1u);
  EXPECT_EQ(stats_after[0][0].evals, kTotal);
}

}  // namespace
}  // namespace configerator
