// Large-config distribution with PackageVessel (paper §3.5): ship a 300 MB
// News Feed ranking model to two thousand servers. The small metadata goes
// through Zeus (consistency); the bulk flows peer-to-peer with locality-
// aware peer selection. Compare against naive central distribution.
//
// Build & run:  ./build/examples/ml_model_distribution

#include <cstdio>

#include "src/p2p/vessel.h"
#include "src/util/strings.h"

using namespace configerator;

namespace {

VesselSwarm::Stats RunDistribution(bool p2p, bool locality, int64_t model_bytes) {
  Simulator sim;
  Network net(&sim, Topology(/*regions=*/2, /*clusters=*/2,
                             /*servers_per_cluster=*/500),
              /*seed=*/77);

  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{1, 0, 0},
                                   ServerId{0, 0, 1}, ServerId{1, 0, 1},
                                   ServerId{0, 1, 0}};
  std::vector<ServerId> observers = {ServerId{0, 0, 499}, ServerId{0, 1, 499},
                                     ServerId{1, 0, 499}, ServerId{1, 1, 499}};
  ZeusEnsemble zeus(&net, members, observers);
  ServerId storage{0, 0, 498};
  VesselPublisher publisher(&net, &zeus, ServerId{0, 0, 497}, storage);

  // 2000 subscribers (everyone except infrastructure servers).
  std::vector<ServerId> subscribers;
  for (const ServerId& server : net.topology().AllServers()) {
    if (server.server < 490) {
      subscribers.push_back(server);
    }
  }

  // Publish: upload bulk, then metadata through Zeus. When the metadata
  // commit lands, the swarm starts (in production each proxy's metadata
  // watch fires; here the fleet reacts together).
  VesselSwarm::Options options;
  options.p2p_enabled = p2p;
  options.locality_aware = locality;
  VesselSwarm swarm(&net, storage, subscribers, model_bytes, options, 123);

  publisher.Publish("feed_ranking_model", /*version=*/12, model_bytes,
                    [&](Result<int64_t> zxid) {
                      if (zxid.ok()) {
                        swarm.Start();
                      }
                    });
  // Zeus runs periodic anti-entropy forever, so drive the clock in steps
  // until the fleet finishes rather than draining the event queue.
  for (int i = 0; i < 100'000 && !swarm.AllComplete(); ++i) {
    sim.RunUntil(sim.now() + kSimSecond);
  }
  return swarm.stats();
}

void Report(const char* label, const VesselSwarm::Stats& stats) {
  std::printf("%-28s fleet done in %6.1fs   storage=%9s  peers=%9s  "
              "cross-region=%9s\n",
              label, SimToSeconds(stats.last_completion),
              HumanBytes(static_cast<double>(stats.bytes_from_storage)).c_str(),
              HumanBytes(static_cast<double>(stats.bytes_from_peers)).c_str(),
              HumanBytes(static_cast<double>(stats.cross_region_bytes)).c_str());
}

}  // namespace

int main() {
  constexpr int64_t kModelBytes = 300LL << 20;  // 300 MB.
  std::printf("Shipping a %s ranking model to 2000 servers across 2 regions\n\n",
              HumanBytes(kModelBytes).c_str());

  VesselSwarm::Stats central = RunDistribution(false, false, kModelBytes);
  Report("central storage only:", central);

  VesselSwarm::Stats p2p_blind = RunDistribution(true, false, kModelBytes);
  Report("P2P, locality-blind:", p2p_blind);

  VesselSwarm::Stats p2p_local = RunDistribution(true, true, kModelBytes);
  Report("P2P, locality-aware:", p2p_local);

  std::printf("\nPaper's claim: PackageVessel delivers hundreds of MBs to "
              "thousands of live servers in < 4 minutes.\n");
  std::printf("Measured (P2P, locality-aware): %.1f s  ->  %s\n",
              SimToSeconds(p2p_local.last_completion),
              SimToSeconds(p2p_local.last_completion) < 240 ? "HOLDS"
                                                            : "DOES NOT HOLD");
  return 0;
}
