// Application-level traffic control (paper §2): in an emergency, one config
// change drains a region — every load balancer in the fleet re-reads its
// traffic weights live — and another config change disables resource-hungry
// site features to shed load.
//
// Build & run:  ./build/examples/traffic_drain

#include <cstdio>
#include <map>

#include "src/core/mutator.h"
#include "src/core/stack.h"
#include "src/gatekeeper/runtime.h"

using namespace configerator;

namespace {

// A load balancer instance: applies traffic-weight configs as they arrive.
struct LoadBalancer {
  std::map<std::string, double> region_weights;

  void Apply(const std::string& json_text) {
    auto parsed = Json::Parse(json_text);
    if (!parsed.ok() || !parsed->is_object()) {
      return;
    }
    region_weights.clear();
    for (const auto& [region, weight] : parsed->as_object()) {
      region_weights[region] = weight.as_double();
    }
  }

  void Print(const char* when) const {
    std::printf("  %s:", when);
    for (const auto& [region, weight] : region_weights) {
      std::printf("  %s=%.0f%%", region.c_str(), weight * 100);
    }
    std::printf("\n");
  }
};

}  // namespace

int main() {
  ConfigManagementStack stack;
  Mutator traffic_tool(&stack, "traffic-control");

  // Load balancers across the fleet subscribe to the traffic config.
  std::vector<std::pair<ServerId, LoadBalancer>> balancers;
  balancers.emplace_back(ServerId{0, 0, 3}, LoadBalancer{});
  balancers.emplace_back(ServerId{0, 1, 3}, LoadBalancer{});
  balancers.emplace_back(ServerId{1, 0, 3}, LoadBalancer{});
  balancers.emplace_back(ServerId{1, 1, 3}, LoadBalancer{});
  for (auto& [server, lb] : balancers) {
    LoadBalancer* lb_ptr = &lb;
    stack.SubscribeServer(server, "traffic/weights.json",
                          [lb_ptr](const std::string&, const std::string& value,
                                   int64_t) { lb_ptr->Apply(value); });
  }
  stack.RunFor(2 * kSimSecond);

  std::printf("== Normal operation: balanced traffic ==\n");
  auto commit = traffic_tool.WriteRawConfig(
      "traffic/weights.json",
      "{\n  \"region0\": 0.5,\n  \"region1\": 0.5\n}\n", "initial weights");
  if (!commit.ok()) {
    std::printf("write failed: %s\n", commit.status().ToString().c_str());
    return 1;
  }
  stack.RunFor(30 * kSimSecond);
  balancers[0].second.Print("lb@r0/c0");
  balancers[3].second.Print("lb@r1/c1");

  std::printf("\n== 14:03 — region 1 loses cooling. DRAIN IT. ==\n");
  SimTime drain_start = stack.sim().now();
  commit = traffic_tool.WriteRawConfig(
      "traffic/weights.json",
      "{\n  \"region0\": 1.0,\n  \"region1\": 0.0\n}\n",
      "EMERGENCY: drain region1");
  if (!commit.ok()) {
    std::printf("drain failed: %s\n", commit.status().ToString().c_str());
    return 1;
  }
  stack.RunFor(30 * kSimSecond);
  std::printf("  drain config propagated fleet-wide in <= %.0f s\n",
              SimToSeconds(stack.sim().now() - drain_start));
  for (auto& [server, lb] : balancers) {
    lb.Print(("lb@" + server.ToString()).c_str());
  }

  std::printf("\n== Region 0 now carries everything: shed optional load ==\n");
  // Disable a resource-hungry feature site-wide via Gatekeeper.
  GatekeeperRuntime frontend;
  stack.SubscribeServer(ServerId{0, 0, 5}, "gatekeeper/ExpensiveWidget.json",
                        [&frontend](const std::string& path,
                                    const std::string& value, int64_t) {
                          (void)frontend.ApplyConfigUpdate(path, value);
                        });
  stack.RunFor(2 * kSimSecond);
  auto widget_on = Json::Parse(R"({
    "project": "ExpensiveWidget",
    "rules": [{"restraints": [{"type": "always"}], "pass_probability": 1.0}]
  })");
  (void)traffic_tool.SetGatekeeperProject(*widget_on, "widget on");
  stack.RunFor(30 * kSimSecond);
  UserContext user;
  user.user_id = 99;
  std::printf("  widget enabled before shed: %s\n",
              frontend.Check("ExpensiveWidget", user) ? "yes" : "no");

  auto widget_off = Json::Parse(R"({
    "project": "ExpensiveWidget",
    "rules": [{"restraints": [{"type": "always"}], "pass_probability": 0.0}]
  })");
  (void)traffic_tool.SetGatekeeperProject(*widget_off,
                                          "EMERGENCY: shed widget load");
  stack.RunFor(30 * kSimSecond);
  std::printf("  widget enabled after shed:  %s\n",
              frontend.Check("ExpensiveWidget", user) ? "yes" : "no");

  std::printf("\n== 15:20 — cooling restored; restore traffic ==\n");
  commit = traffic_tool.WriteRawConfig(
      "traffic/weights.json",
      "{\n  \"region0\": 0.5,\n  \"region1\": 0.5\n}\n", "restore region1");
  if (!commit.ok()) {
    return 1;
  }
  stack.RunFor(30 * kSimSecond);
  balancers[3].second.Print("lb@r1/c1");
  return 0;
}
