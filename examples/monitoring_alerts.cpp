// Monitoring, alerts, and remediation as configs (paper §2): what data to
// collect, the alert detection rules, who gets paged, and the automated
// remediation actions are all dynamic config — changed live while
// troubleshooting, with Sitevars providing the easy-mode knobs (checker +
// type inference included).
//
// Build & run:  ./build/examples/monitoring_alerts

#include <cstdio>
#include <vector>

#include "src/core/mutator.h"
#include "src/core/stack.h"
#include "src/sitevars/sitevars.h"

using namespace configerator;

namespace {

// A monitoring agent on a production server: applies alert-rule configs as
// they arrive and evaluates incoming metrics against them.
struct MonitoringAgent {
  double cpu_alert_threshold = 1.0;   // Fraction; 1.0 = never fires.
  std::string page_target = "nobody";
  bool collect_debug_metrics = false;
  std::string remediation = "none";

  void ApplyRules(const std::string& json_text) {
    auto parsed = Json::Parse(json_text);
    if (!parsed.ok() || !parsed->is_object()) {
      return;
    }
    if (const Json* v = parsed->Get("cpu_alert_threshold")) {
      cpu_alert_threshold = v->as_double();
    }
    if (const Json* v = parsed->Get("page_target")) {
      page_target = v->as_string();
    }
    if (const Json* v = parsed->Get("collect_debug_metrics")) {
      collect_debug_metrics = v->as_bool();
    }
    if (const Json* v = parsed->Get("remediation")) {
      remediation = v->as_string();
    }
  }

  void Observe(double cpu, SimTime now) const {
    if (cpu > cpu_alert_threshold) {
      std::printf("  [t=%.0fs] ALERT cpu=%.0f%% > %.0f%% -> page %s, "
                  "remediation=%s%s\n",
                  SimToSeconds(now), cpu * 100, cpu_alert_threshold * 100,
                  page_target.c_str(), remediation.c_str(),
                  collect_debug_metrics ? " (+debug metrics)" : "");
    } else {
      std::printf("  [t=%.0fs] cpu=%.0f%% ok\n", SimToSeconds(now), cpu * 100);
    }
  }
};

}  // namespace

int main() {
  ConfigManagementStack stack;
  Mutator monitoring_tool(&stack, "monitoring-admin");

  MonitoringAgent agent;
  ServerId host{0, 1, 6};
  stack.SubscribeServer(host, "monitoring/web_tier.json",
                        [&agent](const std::string&, const std::string& value,
                                 int64_t) { agent.ApplyRules(value); });
  stack.RunFor(2 * kSimSecond);

  std::printf("== Initial alert rules ==\n");
  auto commit = monitoring_tool.WriteRawConfig("monitoring/web_tier.json",
                                               R"({
  "cpu_alert_threshold": 0.9,
  "page_target": "web-oncall",
  "collect_debug_metrics": false,
  "remediation": "none"
})",
                                               "initial rules");
  if (!commit.ok()) {
    std::printf("failed: %s\n", commit.status().ToString().c_str());
    return 1;
  }
  stack.RunFor(30 * kSimSecond);
  agent.Observe(0.7, stack.sim().now());
  agent.Observe(0.95, stack.sim().now());

  std::printf("\n== Troubleshooting: collect more data, page the expert, and\n"
              "   arm automated remediation — all live config updates ==\n");
  commit = monitoring_tool.WriteRawConfig("monitoring/web_tier.json",
                                          R"({
  "cpu_alert_threshold": 0.8,
  "page_target": "perf-expert",
  "collect_debug_metrics": true,
  "remediation": "restart-service"
})",
                                          "tighten during incident");
  if (!commit.ok()) {
    return 1;
  }
  stack.RunFor(30 * kSimSecond);
  agent.Observe(0.85, stack.sim().now());

  std::printf("\n== Sitevars as the easy-mode knob layer ==\n");
  SitevarStore sitevars;
  (void)sitevars.Set("alert_email_batch_minutes", "15", "monitoring-admin");
  (void)sitevars.SetChecker("alert_email_batch_minutes",
                            "def check(value):\n"
                            "    assert value > 0, \"must be positive\"\n"
                            "    assert value <= 120, \"batching cap is 2h\"\n");
  auto ok = sitevars.Set("alert_email_batch_minutes", "30", "oncall");
  std::printf("  set to 30: %s\n", ok.ok() ? "accepted" : "rejected");
  auto too_big = sitevars.Set("alert_email_batch_minutes", "600", "oncall");
  std::printf("  set to 600: %s (%s)\n", too_big.ok() ? "accepted" : "rejected",
              too_big.ok() ? "-" : too_big.status().message().c_str());
  auto type_drift = sitevars.Set("alert_email_batch_minutes", "\"45\"", "oncall");
  if (type_drift.ok()) {
    std::printf("  set to \"45\": accepted%s\n",
                type_drift->warnings.empty()
                    ? ""
                    : (" with warning: " + type_drift->warnings[0]).c_str());
  } else {
    // The checker compares numerically, so the weakly-typed string is caught
    // even before the type-inference warning would fire.
    std::printf("  set to \"45\": rejected (%s)\n",
                type_drift.status().message().c_str());
  }
  std::printf("  current value: %s (inferred type: %s)\n",
              sitevars.Get("alert_email_batch_minutes")->Dump().c_str(),
              std::string(
                  SitevarTypeName(sitevars.InferredType("alert_email_batch_minutes")))
                  .c_str());
  return 0;
}
