// Quickstart: the full life of one config change, end to end.
//
//   1. An engineer authors a typed config in config-source language (CSL):
//      a Thrift schema + a .cconf program, with a validator.
//   2. The stack compiles it (schema check, defaults, validators), runs CI,
//      and opens a code review.
//   3. A reviewer approves; the automated canary tests it against a healthy
//      service model; the landing strip commits it.
//   4. The git tailer publishes it into Zeus; the distribution tree pushes
//      it to a subscribed production server on another continent; the
//      application reads it through the client library.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/stack.h"

using namespace configerator;

int main() {
  ConfigManagementStack stack;

  std::printf("== 1. Author the config sources ==\n");
  std::vector<FileWrite> sources = {
      {"schemas/cache.thrift",
       "struct CacheTier {\n"
       "  1: required string name;\n"
       "  2: optional i32 memory_mb = 512;\n"
       "  3: optional i32 ttl_seconds = 3600;\n"
       "  4: optional list<string> regions;\n"
       "}\n"},
      {"schemas/cache.thrift-cvalidator",
       "def validate_CacheTier(cfg):\n"
       "    assert cfg.memory_mb > 0, \"memory must be positive\"\n"
       "    assert cfg.memory_mb <= 65536, \"memory cap is 64GB\"\n"
       "    assert len(cfg.regions) > 0, \"must serve at least one region\"\n"},
      {"cache/hot_tier.cconf",
       "import_thrift(\"schemas/cache.thrift\")\n"
       "tier = CacheTier(name=\"hot\", memory_mb=4096)\n"
       "tier.regions = [\"us-east\", \"eu-west\"]\n"
       "export_if_last(tier)\n"},
  };

  auto change = stack.ProposeChange("alice", "add hot cache tier", sources);
  if (!change.ok()) {
    std::printf("proposal failed: %s\n", change.status().ToString().c_str());
    return 1;
  }
  std::printf("  compiled %zu entr%s; CI: %s\n", change->affected_entries.size(),
              change->affected_entries.size() == 1 ? "y" : "ies",
              change->ci_report.Summary().c_str());
  for (const FileWrite& write : change->diff.writes) {
    if (write.path.ends_with(".json")) {
      std::printf("  generated %s:\n%s", write.path.c_str(),
                  write.content->c_str());
    }
  }

  std::printf("\n== 2. Review ==\n");
  Status approved = stack.Approve(&*change, "bob");
  std::printf("  bob approves: %s\n", approved.ToString().c_str());

  std::printf("\n== 3. Subscribe a production app server (region 1) ==\n");
  ServerId app_server{1, 1, 7};
  stack.SubscribeServer(app_server, "cache/hot_tier.json",
                        [&stack](const std::string& path, const std::string&,
                                 int64_t zxid) {
                          std::printf(
                              "  [t=%.1fs] server r1/c1/s7 received %s "
                              "(zxid %lld)\n",
                              SimToSeconds(stack.sim().now()), path.c_str(),
                              static_cast<long long>(zxid));
                        });
  stack.RunFor(2 * kSimSecond);

  std::printf("\n== 4. Canary, land, distribute ==\n");
  DefectServiceModel healthy(ConfigDefect::kNone, DefectServiceModel::Params{},
                             /*seed=*/42);
  stack.TestAndLand(*change, CanarySpec::Default(), &healthy,
                    [&stack](Result<ObjectId> result) {
                      if (result.ok()) {
                        std::printf("  [t=%.1fs] canary passed; landed as %s\n",
                                    SimToSeconds(stack.sim().now()),
                                    result->ShortHex().c_str());
                      } else {
                        std::printf("  canary/land failed: %s\n",
                                    result.status().ToString().c_str());
                      }
                    });
  stack.RunFor(15 * kSimMinute);

  std::printf("\n== 5. The application reads its config ==\n");
  AppConfigClient app = stack.ClientOn(app_server);
  const OnDiskCache::Entry* entry = app.Get("cache/hot_tier.json");
  if (entry == nullptr) {
    std::printf("  config never arrived!\n");
    return 1;
  }
  auto json = Json::Parse(entry->value);
  std::printf("  memory_mb = %lld, ttl_seconds = %lld (default applied)\n",
              static_cast<long long>(json->Get("memory_mb")->as_int()),
              static_cast<long long>(json->Get("ttl_seconds")->as_int()));

  std::printf("\n== 6. A bad change is stopped at compile time ==\n");
  auto bad = stack.ProposeChange(
      "carol", "oops",
      {{"cache/hot_tier.cconf",
        "import_thrift(\"schemas/cache.thrift\")\n"
        "tier = CacheTier(name=\"hot\", memory_mb=-1)\n"
        "tier.regions = [\"us-east\"]\n"
        "export_if_last(tier)\n"}});
  std::printf("  proposal rejected: %s\n", bad.status().ToString().c_str());
  return 0;
}
