// Feature rollout with Gatekeeper (paper §4): a new product feature ships
// dark, then is enabled for employees → 1% → 10% → 100% of users via live
// config updates, with the automated canary guarding each expansion and an
// instantaneous kill switch when a defect appears.
//
// Build & run:  ./build/examples/feature_rollout

#include <cstdio>

#include "src/core/mutator.h"
#include "src/core/stack.h"
#include "src/gatekeeper/runtime.h"

using namespace configerator;

namespace {

// A simulated frontend server's view: the Gatekeeper runtime fed by the
// distribution pipeline.
struct Frontend {
  GatekeeperRuntime runtime;
};

double MeasureExposure(GatekeeperRuntime& runtime, int64_t users) {
  int64_t enabled = 0;
  for (int64_t id = 0; id < users; ++id) {
    UserContext user;
    user.user_id = id;
    user.country = id % 3 == 0 ? "US" : "BR";
    user.is_employee = id % 1000 == 0;
    if (runtime.Check("NewsFeedRedesign", user)) {
      ++enabled;
    }
  }
  return static_cast<double>(enabled) / static_cast<double>(users);
}

Json RolloutConfig(double fraction) {
  std::string config = R"({
    "project": "NewsFeedRedesign",
    "rules": [
      {"restraints": [{"type": "employee"}], "pass_probability": 1.0},
      {"restraints": [{"type": "country", "params": {"countries": ["US"]}}],
       "pass_probability": )" + std::to_string(fraction) + R"(}
    ]
  })";
  return *Json::Parse(config);
}

}  // namespace

int main() {
  ConfigManagementStack stack;
  Mutator rollout_tool(&stack, "rollout-tool");

  // A frontend server subscribes to the project's config.
  Frontend frontend;
  ServerId frontend_server{0, 1, 3};
  stack.SubscribeServer(
      frontend_server, "gatekeeper/NewsFeedRedesign.json",
      [&frontend](const std::string& path, const std::string& value, int64_t) {
        Status s = frontend.runtime.ApplyConfigUpdate(path, value);
        if (!s.ok()) {
          std::printf("  frontend rejected config: %s\n", s.ToString().c_str());
        }
      });
  stack.RunFor(2 * kSimSecond);

  constexpr int64_t kUsers = 50'000;
  const double kStages[] = {0.0, 0.01, 0.10, 1.0};
  const char* kStageNames[] = {"employees only", "1% of US users",
                               "10% of US users", "everyone in the US"};

  CanaryService::Options canary_options;
  DefectServiceModel healthy(ConfigDefect::kNone, DefectServiceModel::Params{},
                             7);

  for (size_t stage = 0; stage < std::size(kStages); ++stage) {
    std::printf("== Stage %zu: %s ==\n", stage, kStageNames[stage]);

    // Guard the expansion with a canary pass of the gating config.
    bool canary_ok = false;
    stack.canary().RunTest(CanarySpec::Default(), &healthy,
                           [&](Status verdict) { canary_ok = verdict.ok(); });
    stack.RunFor(12 * kSimMinute);
    if (!canary_ok) {
      std::printf("  canary failed; rollout halted\n");
      return 1;
    }

    auto commit = rollout_tool.SetGatekeeperProject(
        RolloutConfig(kStages[stage]),
        "expand NewsFeedRedesign to " + std::string(kStageNames[stage]));
    if (!commit.ok()) {
      std::printf("  config update failed: %s\n",
                  commit.status().ToString().c_str());
      return 1;
    }
    stack.RunFor(30 * kSimSecond);  // Tailer + Zeus + tree propagation.

    double exposure = MeasureExposure(frontend.runtime, kUsers);
    std::printf("  [t=%.0fs] live exposure: %.2f%% of all users\n",
                SimToSeconds(stack.sim().now()), exposure * 100);
  }

  // A latent bug surfaces in production: kill the feature NOW via a config
  // update (no code deploy, no restart).
  std::printf("== Incident! Disabling the feature via kill switch ==\n");
  auto kill = rollout_tool.SetGatekeeperProject(RolloutConfig(0.0),
                                                "EMERGENCY: disable redesign");
  if (!kill.ok()) {
    std::printf("  kill switch failed: %s\n", kill.status().ToString().c_str());
    return 1;
  }
  SimTime before = stack.sim().now();
  stack.RunFor(30 * kSimSecond);
  double exposure = MeasureExposure(frontend.runtime, kUsers);
  std::printf("  [+%.0fs] exposure after kill: %.2f%% (employees keep it for "
              "dogfooding)\n",
              SimToSeconds(stack.sim().now() - before), exposure * 100);
  return 0;
}
