// A/B experiment via MobileConfig (paper §5 + intro): find the best VoIP
// echo-canceling parameter per mobile device model. Each device model gets a
// Gatekeeper-backed experiment arm through the translation layer; devices
// pull their parameter, we observe call quality per arm, pick the winner,
// and remap the field to a constant — with no app changes.
//
// Build & run:  ./build/examples/ab_experiment

#include <cstdio>
#include <map>

#include "src/mobile/mobileconfig.h"
#include "src/util/rng.h"

using namespace configerator;

namespace {

// Ground truth the experiment is trying to discover: echo-cancel latency
// that maximizes call quality per device model (hardware varies!).
double TrueCallQuality(const std::string& device, int64_t echo_ms, Rng& rng) {
  double optimum = device == "iphone6" ? 30.0 : 70.0;
  double penalty = (static_cast<double>(echo_ms) - optimum) / 25.0;
  return 4.5 - penalty * penalty + rng.NextGaussian() * 0.15;
}

MobileSchema VoipSchema() {
  MobileSchema schema;
  schema.config_name = "VOIP_CONFIG";
  schema.fields = {{"ECHO_CANCEL_MS", MobileFieldType::kInt},
                   {"HD_CALLS", MobileFieldType::kBool}};
  return schema;
}

}  // namespace

int main() {
  TranslationLayer translation;
  GatekeeperRuntime gatekeeper;
  MobileConfigServer server(&translation, &gatekeeper, nullptr);
  server.RegisterSchema(VoipSchema());

  // Experiment setup: per device model, split users into three arms by a
  // deterministic hash slice (sticky assignment).
  const int64_t kArms[] = {30, 50, 70};
  for (const char* device : {"iphone6", "galaxy_s5"}) {
    for (size_t arm = 0; arm < std::size(kArms); ++arm) {
      double lo = static_cast<double>(arm) / std::size(kArms);
      double hi = static_cast<double>(arm + 1) / std::size(kArms);
      std::string project =
          std::string("ECHO_") + device + "_arm" + std::to_string(arm);
      std::string config = R"({"project": ")" + project + R"(",
        "rules": [{"restraints": [
          {"type": "device", "params": {"devices": [")" + device + R"("]}},
          {"type": "hash_range", "params":
            {"salt": "echo_exp", "lo": )" + std::to_string(lo) +
          R"(, "hi": )" + std::to_string(hi) + R"(}}],
        "pass_probability": 1.0}]})";
      if (!gatekeeper.LoadProject(*Json::Parse(config)).ok()) {
        std::printf("failed to load %s\n", project.c_str());
        return 1;
      }
    }
  }
  FieldBinding experiment;
  experiment.kind = FieldBinding::Kind::kExperiment;
  experiment.constant = Json(int64_t{50});
  for (const char* device : {"iphone6", "galaxy_s5"}) {
    for (size_t arm = 0; arm < std::size(kArms); ++arm) {
      experiment.arms.push_back(
          {std::string("ECHO_") + device + "_arm" + std::to_string(arm),
           Json(kArms[arm])});
    }
  }
  translation.Bind("VOIP_CONFIG", "ECHO_CANCEL_MS", experiment);
  translation.Bind("VOIP_CONFIG", "HD_CALLS",
                   FieldBinding::Constant(Json(true)));

  // Run the experiment: 6000 devices pull their parameter and "make calls".
  std::printf("== Running experiment on 6000 devices ==\n");
  Rng rng(2026);
  std::map<std::pair<std::string, int64_t>, std::pair<double, int>> results;
  for (int64_t id = 0; id < 6000; ++id) {
    UserContext device_ctx;
    device_ctx.user_id = id;
    device_ctx.device = id % 2 == 0 ? "iphone6" : "galaxy_s5";
    device_ctx.platform = id % 2 == 0 ? "ios" : "android";
    MobileConfigClient client(VoipSchema(), device_ctx);
    if (!client.Sync(server).ok()) {
      continue;
    }
    int64_t echo_ms = client.getInt("ECHO_CANCEL_MS");
    double quality = TrueCallQuality(device_ctx.device, echo_ms, rng);
    auto& [sum, n] = results[{device_ctx.device, echo_ms}];
    sum += quality;
    ++n;
  }

  std::map<std::string, int64_t> winners;
  for (const char* device : {"iphone6", "galaxy_s5"}) {
    std::printf("  %s:\n", device);
    double best_quality = -1e9;
    for (int64_t arm : kArms) {
      auto it = results.find({device, arm});
      if (it == results.end() || it->second.second == 0) {
        continue;
      }
      double mean = it->second.first / it->second.second;
      std::printf("    echo=%lldms  quality=%.2f  (n=%d)\n",
                  static_cast<long long>(arm), mean, it->second.second);
      if (mean > best_quality) {
        best_quality = mean;
        winners[device] = arm;
      }
    }
    std::printf("    -> winner: %lldms\n",
                static_cast<long long>(winners[device]));
  }

  // Ship the winners: per-device constants through the same translation
  // layer — clients keep calling getInt("ECHO_CANCEL_MS"), unchanged.
  std::printf("== Shipping winners via translation-layer remap ==\n");
  FieldBinding shipped;
  shipped.kind = FieldBinding::Kind::kExperiment;
  shipped.constant = Json(int64_t{50});
  for (const auto& [device, echo_ms] : winners) {
    std::string project = "SHIP_" + device;
    std::string config = R"({"project": ")" + project + R"(",
      "rules": [{"restraints": [
        {"type": "device", "params": {"devices": [")" + device + R"("]}}],
      "pass_probability": 1.0}]})";
    (void)gatekeeper.LoadProject(*Json::Parse(config));
    shipped.arms.push_back({project, Json(echo_ms)});
  }
  translation.Bind("VOIP_CONFIG", "ECHO_CANCEL_MS", shipped);

  UserContext check_ctx;
  check_ctx.user_id = 424242;
  check_ctx.device = "galaxy_s5";
  MobileConfigClient check(VoipSchema(), check_ctx);
  if (!check.Sync(server).ok()) {
    return 1;
  }
  std::printf("  a galaxy_s5 now pulls echo=%lldms\n",
              static_cast<long long>(check.getInt("ECHO_CANCEL_MS")));
  std::printf("  bytes transferred by that device: %llu\n",
              static_cast<unsigned long long>(check.bytes_transferred()));
  return 0;
}
