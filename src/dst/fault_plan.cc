#include "src/dst/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/util/strings.h"

namespace configerator {

namespace {

std::string FormatSid(const ServerId& id) {
  return StrFormat("%d.%d.%d", id.region, id.cluster, id.server);
}

Result<ServerId> ParseSid(const std::string& token) {
  ServerId id;
  if (std::sscanf(token.c_str(), "%d.%d.%d", &id.region, &id.cluster,
                  &id.server) != 3) {
    return InvalidArgumentError("bad server id: " + token);
  }
  return id;
}

std::string FormatGroup(const std::vector<ServerId>& group) {
  std::string out;
  for (const ServerId& id : group) {
    if (!out.empty()) {
      out += ",";
    }
    out += FormatSid(id);
  }
  return out;
}

Result<std::vector<ServerId>> ParseGroup(const std::string& token) {
  std::vector<ServerId> group;
  std::string current;
  std::istringstream in(token);
  while (std::getline(in, current, ',')) {
    ASSIGN_OR_RETURN(ServerId id, ParseSid(current));
    group.push_back(id);
  }
  if (group.empty()) {
    return InvalidArgumentError("empty server group: " + token);
  }
  return group;
}

Result<double> ParseKeyedDouble(const std::string& token, const char* name) {
  std::string prefix = std::string(name) + "=";
  if (token.compare(0, prefix.size(), prefix) != 0) {
    return InvalidArgumentError(StrFormat("expected %s=<v>, got '%s'", name,
                                          token.c_str()));
  }
  return std::strtod(token.c_str() + prefix.size(), nullptr);
}

}  // namespace

std::string FaultEvent::ToLine() const {
  std::string head = StrFormat("at %lld ", static_cast<long long>(at));
  switch (op) {
    case FaultOp::kCrash:
      return head + "crash " + FormatSid(group_a.at(0));
    case FaultOp::kRecover:
      return head + "recover " + FormatSid(group_a.at(0));
    case FaultOp::kCrashProxy:
      return head + StrFormat("crash-proxy %d", index);
    case FaultOp::kRestartProxy:
      return head + StrFormat("restart-proxy %d", index);
    case FaultOp::kPartition:
      return head + "partition " + FormatGroup(group_a) + " | " +
             FormatGroup(group_b);
    case FaultOp::kPartitionOneWay:
      return head + "partition-oneway " + FormatGroup(group_a) + " | " +
             FormatGroup(group_b);
    case FaultOp::kHealPartitions:
      return head + "heal-partitions";
    case FaultOp::kGlobalFault:
      return head + StrFormat(
                        "global-fault drop=%.17g dup=%.17g reorder=%.17g "
                        "delay=%lld jitter=%lld",
                        fault.drop_prob, fault.dup_prob, fault.reorder_prob,
                        static_cast<long long>(fault.extra_delay),
                        static_cast<long long>(fault.extra_delay_jitter));
    case FaultOp::kClearFaults:
      return head + "clear-faults";
    case FaultOp::kCorruptDisk:
      return head + StrFormat("corrupt-disk %d ", index) +
             (key.empty() ? "*" : key);
    case FaultOp::kInconsistentCommit:
      return head + "inconsistent-commit " + (key.empty() ? "gated" : key);
  }
  return head + "?";
}

Result<FaultEvent> FaultEvent::FromLine(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  if (tokens.size() < 3 || tokens[0] != "at") {
    return InvalidArgumentError("bad fault event line: " + line);
  }
  FaultEvent event;
  event.at = std::strtoll(tokens[1].c_str(), nullptr, 10);
  const std::string& op = tokens[2];
  auto need = [&](size_t n) -> Status {
    if (tokens.size() < n) {
      return InvalidArgumentError("truncated fault event line: " + line);
    }
    return OkStatus();
  };
  if (op == "crash" || op == "recover") {
    RETURN_IF_ERROR(need(4));
    event.op = op == "crash" ? FaultOp::kCrash : FaultOp::kRecover;
    ASSIGN_OR_RETURN(ServerId id, ParseSid(tokens[3]));
    event.group_a.push_back(id);
  } else if (op == "crash-proxy" || op == "restart-proxy") {
    RETURN_IF_ERROR(need(4));
    event.op = op == "crash-proxy" ? FaultOp::kCrashProxy
                                   : FaultOp::kRestartProxy;
    event.index = std::atoi(tokens[3].c_str());
  } else if (op == "partition" || op == "partition-oneway") {
    RETURN_IF_ERROR(need(6));
    if (tokens[4] != "|") {
      return InvalidArgumentError("partition needs 'A | B': " + line);
    }
    event.op = op == "partition" ? FaultOp::kPartition
                                 : FaultOp::kPartitionOneWay;
    ASSIGN_OR_RETURN(event.group_a, ParseGroup(tokens[3]));
    ASSIGN_OR_RETURN(event.group_b, ParseGroup(tokens[5]));
  } else if (op == "heal-partitions") {
    event.op = FaultOp::kHealPartitions;
  } else if (op == "global-fault") {
    RETURN_IF_ERROR(need(8));
    event.op = FaultOp::kGlobalFault;
    ASSIGN_OR_RETURN(event.fault.drop_prob, ParseKeyedDouble(tokens[3], "drop"));
    ASSIGN_OR_RETURN(event.fault.dup_prob, ParseKeyedDouble(tokens[4], "dup"));
    ASSIGN_OR_RETURN(event.fault.reorder_prob,
                     ParseKeyedDouble(tokens[5], "reorder"));
    ASSIGN_OR_RETURN(double delay, ParseKeyedDouble(tokens[6], "delay"));
    ASSIGN_OR_RETURN(double jitter, ParseKeyedDouble(tokens[7], "jitter"));
    event.fault.extra_delay = static_cast<SimTime>(delay);
    event.fault.extra_delay_jitter = static_cast<SimTime>(jitter);
  } else if (op == "clear-faults") {
    event.op = FaultOp::kClearFaults;
  } else if (op == "corrupt-disk") {
    RETURN_IF_ERROR(need(5));
    event.op = FaultOp::kCorruptDisk;
    event.index = std::atoi(tokens[3].c_str());
    event.key = tokens[4] == "*" ? "" : tokens[4];
  } else if (op == "inconsistent-commit") {
    RETURN_IF_ERROR(need(4));
    if (tokens[3] != "gated" && tokens[3] != "bypass") {
      return InvalidArgumentError("inconsistent-commit mode must be gated or "
                                  "bypass: " + line);
    }
    event.op = FaultOp::kInconsistentCommit;
    event.key = tokens[3];
  } else {
    return InvalidArgumentError("unknown fault op '" + op + "' in: " + line);
  }
  return event;
}

void FaultPlan::SortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& event : events) {
    out += event.ToLine();
    out += "\n";
  }
  return out;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    ASSIGN_OR_RETURN(FaultEvent event, FaultEvent::FromLine(line));
    plan.events.push_back(std::move(event));
  }
  return plan;
}

FaultPlan FaultPlan::Random(uint64_t seed, const FaultPlanShape& shape,
                            const RandomPlanOptions& options) {
  Rng rng(seed ^ 0xfa0173a7ULL);
  FaultPlan plan;
  const SimTime lo = shape.duration / 20;
  const SimTime hi = shape.duration * 9 / 10;
  auto rand_time = [&rng, lo, hi] {
    return lo + static_cast<SimTime>(rng.NextBounded(
                    static_cast<uint64_t>(std::max<SimTime>(hi - lo, 1))));
  };
  auto rand_dwell = [&rng] {
    return kSimSecond +
           static_cast<SimTime>(rng.NextBounded(8 * kSimSecond));
  };

  std::vector<ServerId> participants;
  for (const auto* group :
       {&shape.members, &shape.observers, &shape.proxies, &shape.other_hosts}) {
    participants.insert(participants.end(), group->begin(), group->end());
  }

  auto crash_pair = [&](const ServerId& victim) {
    FaultEvent crash;
    crash.at = rand_time();
    crash.op = FaultOp::kCrash;
    crash.group_a.push_back(victim);
    FaultEvent recover = crash;
    recover.at = crash.at + rand_dwell();
    recover.op = FaultOp::kRecover;
    plan.events.push_back(std::move(crash));
    plan.events.push_back(std::move(recover));
  };

  for (int i = 0; i < options.incidents; ++i) {
    switch (rng.NextBounded(6)) {
      case 0: {  // Zeus member crash + recovery.
        if (!shape.members.empty()) {
          crash_pair(shape.members[rng.NextBounded(shape.members.size())]);
        }
        break;
      }
      case 1: {  // Observer or auxiliary-host crash + recovery.
        const std::vector<ServerId>& pool =
            !shape.observers.empty() && rng.NextBool(0.7) ? shape.observers
                                                          : shape.other_hosts;
        if (!pool.empty()) {
          crash_pair(pool[rng.NextBounded(pool.size())]);
        }
        break;
      }
      case 2: {  // Proxy process crash + restart.
        if (!shape.proxies.empty()) {
          int proxy = static_cast<int>(rng.NextBounded(shape.proxies.size()));
          FaultEvent crash;
          crash.at = rand_time();
          crash.op = FaultOp::kCrashProxy;
          crash.index = proxy;
          FaultEvent restart = crash;
          restart.at = crash.at + rand_dwell();
          restart.op = FaultOp::kRestartProxy;
          plan.events.push_back(std::move(crash));
          plan.events.push_back(std::move(restart));
        }
        break;
      }
      case 3: {  // Partition window (region cut, bisection, or isolation).
        if (participants.size() < 2) {
          break;
        }
        FaultEvent cut;
        cut.at = rand_time();
        cut.op = rng.NextBool(0.3) ? FaultOp::kPartitionOneWay
                                   : FaultOp::kPartition;
        switch (rng.NextBounded(3)) {
          case 0: {  // Cut one region off from the rest.
            int region = participants[rng.NextBounded(participants.size())].region;
            for (const ServerId& id : participants) {
              (id.region == region ? cut.group_a : cut.group_b).push_back(id);
            }
            break;
          }
          case 1: {  // Random bisection.
            std::vector<ServerId> shuffled = participants;
            for (size_t j = shuffled.size(); j > 1; --j) {
              std::swap(shuffled[j - 1], shuffled[rng.NextBounded(j)]);
            }
            size_t split = 1 + rng.NextBounded(shuffled.size() - 1);
            cut.group_a.assign(shuffled.begin(),
                               shuffled.begin() + static_cast<long>(split));
            cut.group_b.assign(shuffled.begin() + static_cast<long>(split),
                               shuffled.end());
            break;
          }
          default: {  // Isolate a single server.
            const ServerId& victim =
                participants[rng.NextBounded(participants.size())];
            cut.group_a.push_back(victim);
            for (const ServerId& id : participants) {
              if (!(id == victim)) {
                cut.group_b.push_back(id);
              }
            }
            break;
          }
        }
        if (cut.group_a.empty() || cut.group_b.empty()) {
          break;
        }
        FaultEvent heal;
        heal.at = cut.at + rand_dwell();
        heal.op = FaultOp::kHealPartitions;
        plan.events.push_back(std::move(cut));
        plan.events.push_back(std::move(heal));
        break;
      }
      case 4: {  // Lossy-network window.
        FaultEvent storm;
        storm.at = rand_time();
        storm.op = FaultOp::kGlobalFault;
        storm.fault.drop_prob = rng.NextDouble() * options.max_drop_prob;
        storm.fault.dup_prob = rng.NextDouble() * options.max_dup_prob;
        storm.fault.reorder_prob = rng.NextDouble() * options.max_reorder_prob;
        storm.fault.extra_delay = static_cast<SimTime>(
            rng.NextBounded(static_cast<uint64_t>(options.max_extra_delay) + 1));
        storm.fault.extra_delay_jitter = storm.fault.extra_delay;
        FaultEvent clear;
        clear.at = storm.at + rand_dwell();
        clear.op = FaultOp::kClearFaults;
        plan.events.push_back(std::move(storm));
        plan.events.push_back(std::move(clear));
        break;
      }
      default: {  // Disk corruption (off unless explicitly requested).
        if (options.include_corruption && !shape.proxies.empty()) {
          FaultEvent corrupt;
          corrupt.at = rand_time();
          corrupt.op = FaultOp::kCorruptDisk;
          corrupt.index = static_cast<int>(rng.NextBounded(shape.proxies.size()));
          plan.events.push_back(std::move(corrupt));
        }
        break;
      }
    }
  }
  plan.SortByTime();
  return plan;
}

}  // namespace configerator
