// Greedy delta-debugging (ddmin) shrinker for failing fault plans.
//
// Given a scenario and a plan whose run violates an invariant, the shrinker
// searches for a minimal sub-plan that still reproduces the *same* invariant
// violation — each probe is a fresh Harness run, so determinism of the
// simulator is what makes the search sound. The result is 1-minimal: removing
// any single remaining event no longer reproduces the failure.

#ifndef SRC_DST_SHRINK_H_
#define SRC_DST_SHRINK_H_

#include <string>

#include "src/dst/harness.h"

namespace configerator {

struct ShrinkOptions {
  // Hard cap on harness executions (each probe replays the whole scenario).
  int max_runs = 200;
};

struct ShrinkResult {
  FaultPlan plan;         // Minimal plan that still reproduces the violation.
  RunResult run;          // The run of that minimal plan (trace included).
  int runs = 0;           // Harness executions spent.
  size_t original_events = 0;
  size_t final_events = 0;
};

// `invariant` is the violation to preserve (same name must fire). The
// original failing plan itself reproduces by assumption; if a probe budget
// runs out the best plan found so far is returned.
ShrinkResult ShrinkFaultPlan(const ScenarioOptions& scenario,
                             const FaultPlan& failing_plan,
                             const std::string& invariant,
                             const ShrinkOptions& options = {});

}  // namespace configerator

#endif  // SRC_DST_SHRINK_H_
