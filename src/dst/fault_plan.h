// Declarative fault plans for deterministic simulation testing.
//
// A FaultPlan is a time-ordered sequence of fault and heal events that the
// Harness applies to a running scenario: server crashes/recoveries, network
// partitions (symmetric and asymmetric), probabilistic link faults (drop,
// duplicate, reorder, delay), proxy process crashes, and on-disk cache
// corruption (torn writes). Plans serialize to a line-oriented text format so
// a failing schedule can be written to a trace file, shrunk, and replayed
// from `seed + trace` alone.

#ifndef SRC_DST_FAULT_PLAN_H_
#define SRC_DST_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/util/status.h"

namespace configerator {

enum class FaultOp {
  kCrash,            // Crash server group_a[0] (Zeus member, observer, or host).
  kRecover,          // Recover server group_a[0].
  kCrashProxy,       // Crash proxy process #index (host server stays up).
  kRestartProxy,     // Restart proxy process #index.
  kPartition,        // Bidirectional partition between group_a and group_b.
  kPartitionOneWay,  // Block only group_a → group_b traffic.
  kHealPartitions,   // Remove every active partition rule.
  kGlobalFault,      // Apply `fault` as the network-wide default LinkFault.
  kClearFaults,      // Clear all link faults.
  kCorruptDisk,      // Tear proxy #index's on-disk cache entry for `key`
                     // ("*" = every cached key) — a torn write.
  kInconsistentCommit,  // Commit a jointly-inconsistent config pair (a shed
                        // threshold above its kill threshold, split across
                        // two keys). `key` selects the mode: "gated" runs the
                        // commit through the cross-config InvariantChecker
                        // first (it must block, so the fleet never sees it);
                        // "bypass" force-lands it, and the harness's
                        // cross-config-invariant check must catch the pair
                        // the moment any proxy serves both halves.
};

struct FaultEvent {
  SimTime at = 0;
  FaultOp op = FaultOp::kCrash;
  std::vector<ServerId> group_a;
  std::vector<ServerId> group_b;
  int index = -1;     // Proxy index for kCrashProxy/kRestartProxy/kCorruptDisk.
  std::string key;    // kCorruptDisk target key; "*" = all cached keys.
  LinkFault fault;    // kGlobalFault parameters.

  // One-line form, e.g. "at 1500000 partition 0.0.0,0.0.1 | 1.0.0,1.0.1".
  std::string ToLine() const;
  static Result<FaultEvent> FromLine(const std::string& line);
};

// What Random() is allowed to target: the concrete scenario shape.
struct FaultPlanShape {
  std::vector<ServerId> members;
  std::vector<ServerId> observers;
  std::vector<ServerId> proxies;      // Proxy host servers, by proxy index.
  std::vector<ServerId> other_hosts;  // Tailer, storage, writer hosts.
  SimTime duration = 60 * kSimSecond; // Events land in [duration/20, 9/10·duration].
};

struct RandomPlanOptions {
  int incidents = 8;               // Fault/heal pairs to generate (approx.).
  bool include_corruption = false; // Disk corruption is a real fault the
                                   // invariants are supposed to catch, so
                                   // clean-run sweeps keep it off.
  double max_drop_prob = 0.15;
  double max_dup_prob = 0.10;
  double max_reorder_prob = 0.25;
  SimTime max_extra_delay = 20 * kSimMillisecond;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  void SortByTime();
  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  // One event per line; Parse() is its exact inverse.
  std::string ToString() const;
  static Result<FaultPlan> Parse(const std::string& text);

  // Seed-deterministic randomized plan: crashes paired with recoveries,
  // partitions with heals, link-fault windows with clears — every fault
  // transient, so a healed scenario can be held to convergence invariants.
  static FaultPlan Random(uint64_t seed, const FaultPlanShape& shape,
                          const RandomPlanOptions& options = {});
};

}  // namespace configerator

#endif  // SRC_DST_FAULT_PLAN_H_
