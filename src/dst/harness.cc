#include "src/dst/harness.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "src/analysis/invariant.h"
#include "src/json/json.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

constexpr char kTraceHeader[] = "# dst-trace v1";

std::string SidStr(const ServerId& id) {
  return StrFormat("%d.%d.%d", id.region, id.cluster, id.server);
}

// The Gatekeeper config the workload rolls forward: an employee bypass rule
// plus an id_mod bucket whose width and pass probability change every step —
// exercising live recompiles, sampling, and the cost-based optimizer.
std::string GatekeeperConfigJson(int step) {
  Json employee_restraint = Json::MakeObject();
  employee_restraint.Set("type", Json(std::string("employee")));
  Json rule0 = Json::MakeObject();
  Json rule0_restraints = Json::MakeArray();
  rule0_restraints.Append(std::move(employee_restraint));
  rule0.Set("restraints", std::move(rule0_restraints));
  rule0.Set("pass_probability", Json(1.0));

  Json params = Json::MakeObject();
  params.Set("mod", Json(static_cast<int64_t>(100)));
  params.Set("lo", Json(static_cast<int64_t>(0)));
  params.Set("hi", Json(static_cast<int64_t>(10 + (step * 7) % 90)));
  Json id_mod = Json::MakeObject();
  id_mod.Set("type", Json(std::string("id_mod")));
  id_mod.Set("params", std::move(params));
  Json rule1 = Json::MakeObject();
  Json rule1_restraints = Json::MakeArray();
  rule1_restraints.Append(std::move(id_mod));
  rule1.Set("restraints", std::move(rule1_restraints));
  rule1.Set("pass_probability", Json(0.5 * (step % 3)));

  Json rules = Json::MakeArray();
  rules.Append(std::move(rule0));
  rules.Append(std::move(rule1));
  Json project = Json::MakeObject();
  project.Set("project", Json(std::string("dst_rollout")));
  project.Set("rules", std::move(rules));
  return project.Dump();
}

}  // namespace

// --- ScenarioOptions --------------------------------------------------------

std::string ScenarioOptions::ToLine() const {
  return StrFormat(
      "seed=%llu regions=%d clusters=%d spc=%d members=%d observers=%d "
      "proxies=%d keys=%d writes=%d chaos_us=%lld settle_us=%lld vessel=%d "
      "gatekeeper=%d vessel_bytes=%lld slo_us=%lld check_stride=%d",
      static_cast<unsigned long long>(seed), regions, clusters_per_region,
      servers_per_cluster, members, observers, proxies, keys, writes,
      static_cast<long long>(chaos_duration), static_cast<long long>(settle),
      enable_vessel ? 1 : 0, enable_gatekeeper ? 1 : 0,
      static_cast<long long>(vessel_bytes),
      static_cast<long long>(freshness_slo), check_stride);
}

Result<ScenarioOptions> ScenarioOptions::Parse(const std::string& line) {
  ScenarioOptions options;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("bad scenario token: " + token);
    }
    std::string key = token.substr(0, eq);
    long long value = std::strtoll(token.c_str() + eq + 1, nullptr, 10);
    if (key == "seed") {
      options.seed = static_cast<uint64_t>(value);
    } else if (key == "regions") {
      options.regions = static_cast<int>(value);
    } else if (key == "clusters") {
      options.clusters_per_region = static_cast<int>(value);
    } else if (key == "spc") {
      options.servers_per_cluster = static_cast<int>(value);
    } else if (key == "members") {
      options.members = static_cast<int>(value);
    } else if (key == "observers") {
      options.observers = static_cast<int>(value);
    } else if (key == "proxies") {
      options.proxies = static_cast<int>(value);
    } else if (key == "keys") {
      options.keys = static_cast<int>(value);
    } else if (key == "writes") {
      options.writes = static_cast<int>(value);
    } else if (key == "chaos_us") {
      options.chaos_duration = value;
    } else if (key == "settle_us") {
      options.settle = value;
    } else if (key == "vessel") {
      options.enable_vessel = value != 0;
    } else if (key == "gatekeeper") {
      options.enable_gatekeeper = value != 0;
    } else if (key == "vessel_bytes") {
      options.vessel_bytes = value;
    } else if (key == "slo_us") {
      options.freshness_slo = value;
    } else if (key == "check_stride") {
      options.check_stride = static_cast<int>(value);
    } else {
      return InvalidArgumentError("unknown scenario option: " + key);
    }
  }
  return options;
}

// --- Harness ----------------------------------------------------------------

Harness::Harness(const ScenarioOptions& options)
    : options_(options),
      topology_(options.regions, options.clusters_per_region,
                options.servers_per_cluster) {
  assert(options_.servers_per_cluster >= 8 && "scenario needs server room");
  sim_ = std::make_unique<Simulator>();
  net_ = std::make_unique<Network>(sim_.get(), topology_, options_.seed);

  const int R = options_.regions;
  const int C = options_.clusters_per_region;
  const int S = options_.servers_per_cluster;
  // Deterministic host allocation, spread across regions/clusters so
  // partitions bite: members at low server indices, observers at the top,
  // proxies in the middle, tailer and storage on dedicated hosts.
  for (int i = 0; i < options_.members; ++i) {
    member_ids_.push_back({i % R, (i / R) % C, i / (R * C)});
  }
  for (int i = 0; i < options_.observers; ++i) {
    observer_ids_.push_back({i % R, (i / R) % C, S - 1 - i / (R * C)});
  }
  for (int i = 0; i < options_.proxies; ++i) {
    proxy_hosts_.push_back({i % R, (i / R) % C, 4 + i / (R * C)});
  }
  tailer_host_ = {0, 0, S - 2};
  storage_host_ = {R - 1, C - 1, S - 2};

  zeus_ = std::make_unique<ZeusEnsemble>(net_.get(), member_ids_, observer_ids_);
  zeus_->AttachObservability(&obs_);

  GitTailer::Options tailer_options;
  tailer_options.poll_interval = 1 * kSimSecond;
  tailer_ = std::make_unique<GitTailer>(net_.get(), tailer_host_, &repo_,
                                        zeus_.get(), tailer_options);
  tailer_->AttachObservability(&obs_);
  tailer_->set_on_published([this](const std::string& path, int64_t zxid) {
    ++published_;
    Log(StrFormat("published %s zxid=%lld", path.c_str(),
                  static_cast<long long>(zxid)));
  });

  for (int k = 0; k < options_.keys; ++k) {
    tracked_keys_.push_back(StrFormat("cfg/key%d.json", k));
  }
  if (options_.enable_gatekeeper) {
    gk_key_ = "gatekeeper/dst_rollout.json";
    tracked_keys_.push_back(gk_key_);
  }
  vessel_name_ = "bigcfg";
  if (options_.enable_vessel) {
    vessel_key_ = VesselPublisher::MetadataKey(vessel_name_);
    tracked_keys_.push_back(vessel_key_);
  }

  gk_delivered_.resize(static_cast<size_t>(options_.proxies));
  last_seen_zxid_.resize(static_cast<size_t>(options_.proxies));
  ever_seen_.resize(static_cast<size_t>(options_.proxies));
  for (int i = 0; i < options_.proxies; ++i) {
    disks_.push_back(std::make_unique<OnDiskCache>());
    proxies_.push_back(std::make_unique<ConfigProxy>(
        net_.get(), zeus_.get(), proxy_hosts_[static_cast<size_t>(i)],
        disks_.back().get(), options_.seed * 131 + static_cast<uint64_t>(i)));
    // Probe interval 0: metrics + tracing only, no probe messages — the
    // network event/rng sequence is identical to an uninstrumented run, so
    // every recorded seed keeps replaying bit-for-bit.
    proxies_.back()->AttachObservability(&obs_);
    apps_.push_back(std::make_unique<AppConfigClient>(proxies_.back().get(),
                                                      disks_.back().get()));
    gk_runtimes_.push_back(std::make_unique<GatekeeperRuntime>());
    gk_runtimes_.back()->AttachObservability(&obs_, SidStr(proxy_hosts_[i]));
    ConfigProxy* proxy = proxies_.back().get();
    for (const std::string& key : tracked_keys_) {
      if (key == gk_key_) {
        GatekeeperRuntime* runtime = gk_runtimes_.back().get();
        std::string* delivered = &gk_delivered_[static_cast<size_t>(i)];
        proxy->Subscribe(key, [this, runtime, delivered](
                                   const std::string& path,
                                   const std::string& value, int64_t zxid) {
          *delivered = value;
          // Invalid JSON keeps the previous project live; the consistency
          // invariant then compares against the delivered (bad) config and
          // flags the divergence. The zxid parents a gatekeeper.snapshot_swap
          // span at the commit's trace.
          (void)runtime->ApplyConfigUpdate(path, value, zxid, sim_->now());
        });
      } else {
        proxy->Subscribe(key, nullptr);
      }
    }
  }

  if (options_.enable_vessel) {
    vessel_pub_ = std::make_unique<VesselPublisher>(net_.get(), zeus_.get(),
                                                    tailer_host_, storage_host_);
    vessel_pub_->AttachObservability(&obs_);
    VesselSwarm::Options swarm_options;
    swarm_options.chunk_size = 2 << 20;
    swarm_ = std::make_unique<VesselSwarm>(
        net_.get(), storage_host_, proxy_hosts_, options_.vessel_bytes,
        swarm_options, options_.seed ^ 0xbead5a17ULL);
    swarm_->AttachObservability(&obs_);
  }

  // Fixed evaluation panel for the Gatekeeper consistency invariant: an
  // employee, plus non-employees landing in different id_mod buckets.
  UserContext employee;
  employee.user_id = 1;
  employee.is_employee = true;
  UserContext low_bucket;
  low_bucket.user_id = 42;
  low_bucket.country = "US";
  UserContext mid_bucket;
  mid_bucket.user_id = 1077;
  UserContext high_bucket;
  high_bucket.user_id = 991;
  gk_users_ = {employee, low_bucket, mid_bucket, high_bucket};
}

Harness::~Harness() = default;

FaultPlanShape Harness::shape() const {
  FaultPlanShape shape;
  shape.members = member_ids_;
  shape.observers = observer_ids_;
  shape.proxies = proxy_hosts_;
  shape.other_hosts = {tailer_host_, storage_host_};
  shape.duration = options_.chaos_duration;
  return shape;
}

void Harness::ScheduleWorkload() {
  // Initial commit so every key exists before the chaos window.
  std::vector<FileWrite> initial;
  for (int k = 0; k < options_.keys; ++k) {
    std::string path = tracked_keys_[static_cast<size_t>(k)];
    std::string value = StrFormat("{\"key\":%d,\"step\":0}", k);
    written_values_[path].insert(value);
    initial.push_back(FileWrite{path, value});
  }
  if (options_.enable_gatekeeper) {
    std::string value = GatekeeperConfigJson(0);
    written_values_[gk_key_].insert(value);
    initial.push_back(FileWrite{gk_key_, value});
  }
  // Each commit (the seed included) roots a trace; the touched paths are
  // bound so the tailer's publish span — and everything downstream of the
  // zxid — joins the tree.
  TraceContext seed_root = obs_.tracer.StartTrace("commit step=0", "dst", 0);
  obs_.tracer.EndSpan(seed_root, 0);
  for (const FileWrite& write : initial) {
    obs_.tracer.BindPath(write.path, seed_root);
  }
  Result<ObjectId> seed_commit = repo_.Commit("dst", "seed configs", initial, 0);
  assert(seed_commit.ok());
  (void)seed_commit;

  // Ongoing writes, spread over the chaos window. Values are recorded here —
  // any observed value outside this universe is torn by construction.
  Rng workload_rng(options_.seed * 7919 + 17);
  for (int step = 1; step <= options_.writes; ++step) {
    SimTime at = kSimSecond + static_cast<SimTime>(workload_rng.NextBounded(
                     static_cast<uint64_t>(
                         std::max<SimTime>(options_.chaos_duration - 2 * kSimSecond, 1))));
    std::string path;
    std::string value;
    if (options_.enable_gatekeeper && step % 4 == 0) {
      path = gk_key_;
      value = GatekeeperConfigJson(step);
    } else {
      int k = static_cast<int>(
          workload_rng.NextBounded(static_cast<uint64_t>(options_.keys)));
      path = tracked_keys_[static_cast<size_t>(k)];
      value = StrFormat("{\"key\":%d,\"step\":%d,\"nonce\":%llu}", k, step,
                        static_cast<unsigned long long>(
                            workload_rng.Next() & 0xffffff));
    }
    written_values_[path].insert(value);
    sim_->ScheduleAt(at, [this, path, value, step] {
      TraceContext root = obs_.tracer.StartTrace(
          StrFormat("commit step=%d", step), "dst", sim_->now());
      obs_.tracer.EndSpan(root, sim_->now());
      obs_.tracer.BindPath(path, root);
      Result<ObjectId> commit = repo_.Commit(
          "dst", StrFormat("step %d", step), {FileWrite{path, value}}, step);
      assert(commit.ok());
      (void)commit;
      Log(StrFormat("commit step=%d path=%s", step, path.c_str()));
    });
  }

  if (options_.enable_vessel) {
    sim_->ScheduleAt(2 * kSimSecond, [this] {
      vessel_pub_->Publish(vessel_name_, 1, options_.vessel_bytes,
                           [this](Result<int64_t> zxid) {
                             Log(StrFormat("vessel-published ok=%d",
                                           zxid.ok() ? 1 : 0));
                           });
    });
    sim_->ScheduleAt(4 * kSimSecond, [this] {
      swarm_->Start([this](const ServerId& client, SimTime /*when*/) {
        Log("vessel-complete " + SidStr(client));
      });
    });
  }
}

void Harness::ApplyFault(const FaultEvent& event) {
  Log("apply " + event.ToLine());
  switch (event.op) {
    case FaultOp::kCrash:
      zeus_->Crash(event.group_a.at(0));
      break;
    case FaultOp::kRecover: {
      const ServerId& id = event.group_a.at(0);
      zeus_->Recover(id);
      if (swarm_ != nullptr &&
          std::find(proxy_hosts_.begin(), proxy_hosts_.end(), id) !=
              proxy_hosts_.end()) {
        swarm_->ResumeClient(id);
      }
      break;
    }
    case FaultOp::kCrashProxy:
      if (event.index >= 0 && event.index < options_.proxies) {
        proxies_[static_cast<size_t>(event.index)]->Crash();
      }
      break;
    case FaultOp::kRestartProxy:
      if (event.index >= 0 && event.index < options_.proxies) {
        proxies_[static_cast<size_t>(event.index)]->Restart();
      }
      break;
    case FaultOp::kPartition:
      net_->Partition(event.group_a, event.group_b);
      break;
    case FaultOp::kPartitionOneWay:
      net_->PartitionOneWay(event.group_a, event.group_b);
      break;
    case FaultOp::kHealPartitions:
      net_->HealAllPartitions();
      break;
    case FaultOp::kGlobalFault:
      net_->SetDefaultFault(event.fault);
      break;
    case FaultOp::kClearFaults:
      net_->ClearLinkFaults();
      break;
    case FaultOp::kCorruptDisk:
      CorruptDisk(event.index, event.key);
      break;
    case FaultOp::kInconsistentCommit:
      SeedInconsistentCommit(event.key != "bypass");
      break;
  }
}

void Harness::SeedInconsistentCommit(bool gated) {
  if (options_.keys < 2) {
    return;
  }
  // A jointly-inconsistent pair: key0's shed threshold lands above key1's
  // kill threshold. Each half is individually valid JSON that passes every
  // per-file check — only a cross-config predicate can see the problem.
  const std::string& path0 = tracked_keys_[0];
  const std::string& path1 = tracked_keys_[1];
  std::string value0 = "{\"key\":0,\"shed\":90}";
  std::string value1 = "{\"key\":1,\"kill\":50}";
  if (gated) {
    // The landing gate: the same InvariantChecker Sandcastle runs, over an
    // overlay of the proposed pair on the harness repository.
    InvariantRegistry registry;
    registry.AddSpecFile(
        "invariants/dst.json",
        "{\"invariants\":[{\"name\":\"shed-below-kill\",\"kind\":"
        "\"ordering\",\"severity\":\"error\","
        "\"lhs\":{\"config\":\"" + path0 + "\",\"field\":\"shed\"},"
        "\"relation\":\"<=\","
        "\"rhs\":{\"config\":\"" + path1 + "\",\"field\":\"kill\"}}]}");
    assert(registry.diagnostics.empty());
    std::map<std::string, std::string> pair = {{path0, value0},
                                               {path1, value1}};
    const Repository* repo = &repo_;
    InvariantChecker checker(
        [pair, repo](const std::string& path) -> Result<std::string> {
          auto it = pair.find(path);
          if (it != pair.end()) {
            return it->second;
          }
          return repo->ReadFile(path);
        });
    InvariantReport report = checker.Check(registry, {path0, path1});
    if (CountLintErrors(report.diagnostics) > 0) {
      Log("inconsistent-commit blocked by invariant gate");
      return;  // Never committed: the fleet never sees the pair.
    }
    Log("inconsistent-commit passed the gate unexpectedly; committing");
  }
  // Bypass (or a gate that failed to block): the pair lands like any other
  // commit and the continuous cross-config check must catch it downstream.
  written_values_[path0].insert(value0);
  written_values_[path1].insert(value1);
  TraceContext root =
      obs_.tracer.StartTrace("commit inconsistent-pair", "dst", sim_->now());
  obs_.tracer.EndSpan(root, sim_->now());
  obs_.tracer.BindPath(path0, root);
  obs_.tracer.BindPath(path1, root);
  Result<ObjectId> commit = repo_.Commit(
      "dst", "inconsistent pair",
      {FileWrite{path0, value0}, FileWrite{path1, value1}},
      options_.writes + 1);
  assert(commit.ok());
  (void)commit;
  Log("commit inconsistent-pair");
}

void Harness::CorruptDisk(int index, const std::string& key) {
  if (index < 0 || index >= options_.proxies) {
    return;
  }
  OnDiskCache* disk = disks_[static_cast<size_t>(index)].get();
  std::vector<std::string> targets;
  if (key.empty() || key == "*") {
    targets = tracked_keys_;
  } else {
    targets.push_back(key);
  }
  for (const std::string& target : targets) {
    const OnDiskCache::Entry* entry = disk->Get(target);
    if (entry == nullptr) {
      continue;
    }
    // A torn write: the first half of the value made it to disk, the rest is
    // garbage. The zxid stays — exactly the case a naive "version matches"
    // check would miss.
    std::string torn = entry->value.substr(0, entry->value.size() / 2) + "~TORN";
    disk->Put(target, std::move(torn), entry->zxid);
  }
}

void Harness::FinalHeal() {
  Log("final-heal");
  for (const ServerId& id : member_ids_) {
    zeus_->Recover(id);
  }
  for (const ServerId& id : observer_ids_) {
    zeus_->Recover(id);
  }
  for (const ServerId& id : proxy_hosts_) {
    net_->failures().Recover(id);
  }
  net_->failures().Recover(tailer_host_);
  net_->failures().Recover(storage_host_);
  net_->HealAllPartitions();
  net_->ClearLinkFaults();
  for (auto& proxy : proxies_) {
    if (proxy->crashed()) {
      proxy->Restart();
    } else {
      // The proxy's observer may have missed pushes while either end was
      // down or partitioned; a fresh subscription re-fetches current state.
      proxy->RepickObserver();
    }
  }
  if (swarm_ != nullptr) {
    for (const ServerId& id : proxy_hosts_) {
      swarm_->ResumeClient(id);
    }
  }
}

RunResult Harness::Run(const FaultPlan& plan) {
  assert(!ran_ && "Harness is single-shot; build a fresh one per run");
  ran_ = true;

  ScheduleWorkload();
  tailer_->Start();
  for (const FaultEvent& event : plan.events) {
    // Faults land strictly before the final heal, so convergence invariants
    // always get a fully-healed network to judge.
    SimTime at = std::clamp<SimTime>(event.at, 0, options_.chaos_duration - 1);
    sim_->ScheduleAt(at, [this, event] { ApplyFault(event); });
  }
  sim_->ScheduleAt(options_.chaos_duration, [this] { FinalHeal(); });

  const SimTime end = options_.chaos_duration + options_.settle;
  const uint64_t stride =
      options_.check_stride > 1 ? static_cast<uint64_t>(options_.check_stride)
                                : 1;
  uint64_t steps = 0;
  while (!violated_ && sim_->now() <= end && sim_->Step()) {
    if (++steps % stride == 0) {
      CheckContinuous();
    }
  }
  if (!violated_ && stride > 1) {
    // Judge the tail events a stride boundary skipped before convergence.
    CheckContinuous();
  }
  if (!violated_) {
    CheckConvergence();
  }

  RunResult result;
  result.violated = violated_;
  result.violation = violation_;
  result.committed_zxid = zeus_->last_committed_zxid();
  result.published = published_;
  result.vessel_completed =
      swarm_ != nullptr ? swarm_->stats().completed_clients : 0;
  result.net = net_->stats();
  result.sim_events = sim_->processed_events();
  result.trace = BuildTrace(plan);
  return result;
}

void Harness::CheckContinuous() {
  if (violated_) {
    return;
  }
  for (size_t i = 0; i < proxies_.size(); ++i) {
    for (const std::string& key : tracked_keys_) {
      const OnDiskCache::Entry* entry = apps_[i]->Get(key);
      bool& seen = ever_seen_[i][key];
      int64_t& last_zxid = last_seen_zxid_[i][key];
      if (entry == nullptr) {
        if (seen) {
          Fail("last-known-good",
               StrFormat("proxy %zu lost previously-observed key %s", i,
                         key.c_str()));
          return;
        }
        continue;
      }
      if (entry->zxid < last_zxid) {
        Fail("monotonic-version",
             StrFormat("proxy %zu key %s went backwards: zxid %lld -> %lld", i,
                       key.c_str(), static_cast<long long>(last_zxid),
                       static_cast<long long>(entry->zxid)),
             entry->zxid);
        return;
      }
      if (entry->zxid > zeus_->last_committed_zxid()) {
        Fail("phantom-version",
             StrFormat("proxy %zu key %s has zxid %lld beyond commit point %lld",
                       i, key.c_str(), static_cast<long long>(entry->zxid),
                       static_cast<long long>(zeus_->last_committed_zxid())),
             entry->zxid);
        return;
      }
      if (key == vessel_key_) {
        Result<Json> parsed = Json::Parse(entry->value);
        bool ok = parsed.ok();
        if (ok) {
          Result<VesselMetadata> meta = VesselMetadata::FromJson(*parsed);
          ok = meta.ok() && meta->name == vessel_name_ &&
               meta->content_hash ==
                   VesselPublisher::SyntheticHash(meta->name, meta->version);
        }
        if (!ok) {
          Fail("vessel-metadata-hash",
               StrFormat("proxy %zu holds vessel metadata whose hash does not "
                         "match the published content (zxid %lld)",
                         i, static_cast<long long>(entry->zxid)));
          return;
        }
      } else if (written_values_[key].count(entry->value) == 0) {
        Fail("no-torn-config",
             StrFormat("proxy %zu key %s serves a value never committed "
                       "(zxid %lld, %zu bytes): torn or corrupt",
                       i, key.c_str(), static_cast<long long>(entry->zxid),
                       entry->value.size()));
        return;
      }
      seen = true;
      last_zxid = std::max(last_zxid, entry->zxid);
    }
    // cross-config-invariant: the shed/kill marker pair is only ever written
    // by the inconsistent-commit fault (the normal workload's values carry
    // neither field), so a proxy serving both halves in a violating state
    // means an inconsistent commit reached the fleet. The substring guard
    // keeps the JSON parse off the hot path for ordinary values.
    if (options_.keys >= 2) {
      const OnDiskCache::Entry* e0 = apps_[i]->Get(tracked_keys_[0]);
      const OnDiskCache::Entry* e1 = apps_[i]->Get(tracked_keys_[1]);
      if (e0 != nullptr && e1 != nullptr &&
          e0->value.find("\"shed\"") != std::string::npos &&
          e1->value.find("\"kill\"") != std::string::npos) {
        Result<Json> j0 = Json::Parse(e0->value);
        Result<Json> j1 = Json::Parse(e1->value);
        if (j0.ok() && j1.ok()) {
          const Json* shed = j0->Get("shed");
          const Json* kill = j1->Get("kill");
          if (shed != nullptr && kill != nullptr && shed->is_number() &&
              kill->is_number() && shed->as_double() > kill->as_double()) {
            Fail("cross-config-invariant",
                 StrFormat("proxy %zu serves shed=%g above kill=%g (zxids "
                           "%lld/%lld): a jointly-inconsistent pair reached "
                           "the fleet",
                           i, shed->as_double(), kill->as_double(),
                           static_cast<long long>(e0->zxid),
                           static_cast<long long>(e1->zxid)),
                 std::max(e0->zxid, e1->zxid));
            return;
          }
        }
      }
    }
    if (options_.enable_gatekeeper) {
      CheckGatekeeper(i);
      if (violated_) {
        return;
      }
    }
  }
}

const NaiveEvaluator* Harness::ReferenceProject(const std::string& json_text) {
  auto it = gk_reference_cache_.find(json_text);
  if (it != gk_reference_cache_.end()) {
    return it->second.get();
  }
  std::unique_ptr<NaiveEvaluator> compiled;
  Result<Json> parsed = Json::Parse(json_text);
  if (parsed.ok()) {
    // Plain declared-order evaluation: the runtime's compiled snapshot and
    // cost-based reordering are checked against unoptimized semantics.
    Result<NaiveEvaluator> project = NaiveEvaluator::FromJson(*parsed);
    if (project.ok()) {
      compiled = std::make_unique<NaiveEvaluator>(std::move(*project));
    }
  }
  const NaiveEvaluator* result = compiled.get();
  gk_reference_cache_[json_text] = std::move(compiled);
  return result;
}

void Harness::CheckGatekeeper(size_t proxy_idx) {
  const std::string& delivered = gk_delivered_[proxy_idx];
  const NaiveEvaluator* reference =
      delivered.empty() ? nullptr : ReferenceProject(delivered);
  if (!delivered.empty() && reference == nullptr) {
    Fail("gatekeeper-consistency",
         StrFormat("proxy %zu was delivered a Gatekeeper config that does not "
                   "compile (%zu bytes)",
                   proxy_idx, delivered.size()));
    return;
  }
  for (const UserContext& user : gk_users_) {
    bool actual = gk_runtimes_[proxy_idx]->Check("dst_rollout", user);
    bool expected = reference != nullptr && reference->Check(user, nullptr);
    if (actual != expected) {
      Fail("gatekeeper-consistency",
           StrFormat("proxy %zu gk_check(dst_rollout, user %lld) = %d but the "
                     "delivered config evaluates to %d",
                     proxy_idx, static_cast<long long>(user.user_id),
                     actual ? 1 : 0, expected ? 1 : 0));
      return;
    }
  }
}

void Harness::CheckConvergence() {
  for (const ServerId& observer : observer_ids_) {
    int64_t last = zeus_->ObserverLastZxid(observer);
    if (last != zeus_->last_committed_zxid()) {
      Fail("convergence-observer",
           StrFormat("observer %s stuck at zxid %lld, commit point %lld",
                     SidStr(observer).c_str(), static_cast<long long>(last),
                     static_cast<long long>(zeus_->last_committed_zxid())));
      return;
    }
  }
  for (size_t i = 0; i < proxies_.size(); ++i) {
    for (const std::string& key : tracked_keys_) {
      const ZeusValue* truth = zeus_->Lookup(key);
      if (truth == nullptr) {
        continue;  // Never committed (e.g. every write to it was lost).
      }
      const OnDiskCache::Entry* entry = apps_[i]->Get(key);
      if (entry == nullptr || entry->value != truth->value ||
          entry->zxid != truth->zxid) {
        Fail("convergence-proxy",
             StrFormat("proxy %zu key %s did not converge: have zxid %lld, "
                       "truth zxid %lld",
                       i, key.c_str(),
                       static_cast<long long>(entry != nullptr ? entry->zxid
                                                               : -1),
                       static_cast<long long>(truth->zxid)),
             truth->zxid);
        return;
      }
    }
  }
  if (swarm_ != nullptr && !swarm_->AllComplete()) {
    Fail("vessel-complete",
         StrFormat("swarm finished %zu of %zu clients",
                   swarm_->stats().completed_clients, proxy_hosts_.size()));
    return;
  }
  if (options_.freshness_slo > 0) {
    CheckFreshness();
  }
}

void Harness::CheckFreshness() {
  // Fleet-wide propagation latency: the merge of every proxy's log-linear
  // histogram equals recording the union stream, so the fleet p99.9 comes
  // straight out of the roll-up.
  Histogram fleet = obs_.metrics.MergedHistogram("proxy_propagation_seconds");
  if (fleet.count() == 0) {
    return;
  }
  double bound = SimToSeconds(options_.freshness_slo);
  double p999 = fleet.Quantile(0.999);
  if (p999 <= bound) {
    return;
  }
  // Identify the slowest proxy and the zxid of its slowest delivery so the
  // violation report can embed that commit's span tree.
  double worst = -1;
  ServerId worst_host{};
  for (const ServerId& host : proxy_hosts_) {
    const Histogram* h = obs_.metrics.FindHistogram(
        "proxy_propagation_seconds", {{"server", host.ToString()}});
    if (h != nullptr && h->count() > 0 && h->max() > worst) {
      worst = h->max();
      worst_host = host;
    }
  }
  int64_t slowest_zxid = -1;
  const Gauge* slow = obs_.metrics.FindGauge(
      "proxy_slowest_zxid", {{"server", worst_host.ToString()}});
  if (slow != nullptr) {
    slowest_zxid = static_cast<int64_t>(slow->value());
  }
  Fail("freshness-slo",
       StrFormat("fleet p99.9 propagation %.3fs exceeds SLO %.3fs "
                 "(worst %.3fs on proxy %s, zxid %lld)",
                 p999, bound, worst, worst_host.ToString().c_str(),
                 static_cast<long long>(slowest_zxid)),
       slowest_zxid);
}

void Harness::Fail(const std::string& invariant, std::string message,
                   int64_t zxid) {
  if (violated_) {
    return;
  }
  violated_ = true;
  violation_.at = sim_->now();
  violation_.invariant = invariant;
  violation_.message = std::move(message);
  if (zxid >= 0) {
    violation_.span_tree = SpanTreeForZxid(zxid);
  }
}

std::string Harness::SpanTreeForZxid(int64_t zxid) const {
  TraceContext ctx = obs_.tracer.ZxidContext(zxid);
  if (!ctx.valid()) {
    return "";
  }
  return obs_.tracer.DumpTree(ctx.trace_id);
}

void Harness::Log(std::string line) {
  log_.push_back(StrFormat("log %lld ", static_cast<long long>(sim_->now())) +
                 std::move(line));
}

std::string Harness::BuildTrace(const FaultPlan& plan) const {
  std::string out = std::string(kTraceHeader) + "\n";
  out += "scenario " + options_.ToLine() + "\n";
  out += "plan-begin\n";
  out += plan.ToString();
  out += "plan-end\n";
  for (const std::string& line : log_) {
    out += line + "\n";
  }
  if (violated_) {
    out += StrFormat("violation at=%lld invariant=%s :: %s\n",
                     static_cast<long long>(violation_.at),
                     violation_.invariant.c_str(), violation_.message.c_str());
    if (!violation_.span_tree.empty()) {
      // The implicated commit's span tree, for humans reading the trace.
      // ParseTrace ignores these lines, so replay is unaffected.
      out += "span-tree-begin\n";
      out += violation_.span_tree;
      out += "span-tree-end\n";
    }
  } else {
    out += "result ok\n";
  }
  return out;
}

Result<Harness::ReplaySpec> Harness::ParseTrace(const std::string& trace_text) {
  ReplaySpec spec;
  bool have_scenario = false;
  bool in_plan = false;
  std::string plan_text;
  std::istringstream in(trace_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line == "plan-begin") {
      in_plan = true;
    } else if (line == "plan-end") {
      in_plan = false;
    } else if (in_plan) {
      plan_text += line + "\n";
    } else if (line.rfind("scenario ", 0) == 0) {
      ASSIGN_OR_RETURN(spec.scenario, ScenarioOptions::Parse(line.substr(9)));
      have_scenario = true;
    }
  }
  if (!have_scenario) {
    return InvalidArgumentError("trace has no scenario line");
  }
  ASSIGN_OR_RETURN(spec.plan, FaultPlan::Parse(plan_text));
  return spec;
}

Result<RunResult> Harness::Replay(const std::string& trace_text) {
  ASSIGN_OR_RETURN(ReplaySpec spec, ParseTrace(trace_text));
  Harness harness(spec.scenario);
  return harness.Run(spec.plan);
}

}  // namespace configerator
