#include "src/dst/shrink.h"

#include <utility>
#include <vector>

#include "src/util/ddmin.h"

namespace configerator {

namespace {

// One probe: does `candidate` still violate the same invariant?
bool Reproduces(const ScenarioOptions& scenario, const FaultPlan& candidate,
                const std::string& invariant, RunResult* out) {
  Harness harness(scenario);
  RunResult result = harness.Run(candidate);
  bool reproduced = result.violated && result.violation.invariant == invariant;
  if (reproduced && out != nullptr) {
    *out = std::move(result);
  }
  return reproduced;
}

FaultPlan KeepEvents(const FaultPlan& plan, const std::vector<size_t>& kept) {
  FaultPlan out;
  out.events.reserve(kept.size());
  for (size_t i : kept) {
    out.events.push_back(plan.events[i]);
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkFaultPlan(const ScenarioOptions& scenario,
                             const FaultPlan& failing_plan,
                             const std::string& invariant,
                             const ShrinkOptions& options) {
  ShrinkResult result;
  result.original_events = failing_plan.events.size();

  std::vector<size_t> kept = DdminSubset(
      failing_plan.events.size(),
      [&](const std::vector<size_t>& candidate) {
        return Reproduces(scenario, KeepEvents(failing_plan, candidate),
                          invariant, &result.run);
      },
      options.max_runs, &result.runs);
  result.plan = KeepEvents(failing_plan, kept);

  // The final plan's own run (fills the trace when no probe ever succeeded —
  // i.e. the plan was already minimal).
  if (result.run.trace.empty()) {
    ++result.runs;
    Harness harness(scenario);
    result.run = harness.Run(result.plan);
  }
  result.final_events = result.plan.events.size();
  return result;
}

}  // namespace configerator
