#include "src/dst/shrink.h"

#include <algorithm>
#include <utility>

namespace configerator {

namespace {

// One probe: does `candidate` still violate the same invariant?
bool Reproduces(const ScenarioOptions& scenario, const FaultPlan& candidate,
                const std::string& invariant, RunResult* out) {
  Harness harness(scenario);
  RunResult result = harness.Run(candidate);
  bool reproduced = result.violated && result.violation.invariant == invariant;
  if (reproduced && out != nullptr) {
    *out = std::move(result);
  }
  return reproduced;
}

FaultPlan WithoutChunk(const FaultPlan& plan, size_t begin, size_t end) {
  FaultPlan out;
  for (size_t i = 0; i < plan.events.size(); ++i) {
    if (i < begin || i >= end) {
      out.events.push_back(plan.events[i]);
    }
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkFaultPlan(const ScenarioOptions& scenario,
                             const FaultPlan& failing_plan,
                             const std::string& invariant,
                             const ShrinkOptions& options) {
  ShrinkResult result;
  result.plan = failing_plan;
  result.original_events = failing_plan.events.size();

  // Classic ddmin over the event list: try dropping ever-smaller chunks,
  // restarting at coarse granularity whenever a removal sticks.
  size_t chunks = 2;
  while (result.plan.events.size() > 1 && result.runs < options.max_runs) {
    bool removed_any = false;
    size_t n = result.plan.events.size();
    chunks = std::min(chunks, n);
    size_t chunk_size = (n + chunks - 1) / chunks;
    for (size_t begin = 0; begin < n && result.runs < options.max_runs;
         begin += chunk_size) {
      size_t end = std::min(begin + chunk_size, n);
      FaultPlan candidate = WithoutChunk(result.plan, begin, end);
      ++result.runs;
      if (Reproduces(scenario, candidate, invariant, &result.run)) {
        result.plan = std::move(candidate);
        removed_any = true;
        break;  // Restart the scan against the smaller plan.
      }
    }
    if (removed_any) {
      chunks = 2;  // Coarse again: big chunks may now be removable.
    } else if (chunks >= result.plan.events.size()) {
      break;  // Already at single-event granularity and nothing removable.
    } else {
      chunks = std::min(chunks * 2, result.plan.events.size());
    }
  }

  // The final plan's own run (fills the trace when no probe ever succeeded —
  // i.e. the plan was already minimal).
  if (result.run.trace.empty()) {
    ++result.runs;
    Harness harness(scenario);
    result.run = harness.Run(result.plan);
  }
  result.final_events = result.plan.events.size();
  return result;
}

}  // namespace configerator
