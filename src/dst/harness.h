// Deterministic simulation-testing harness (FoundationDB-style) for the full
// Configerator stack. One Harness owns one scenario: a Zeus ensemble fed by a
// git tailer, a fleet of config proxies with on-disk caches and application
// clients, Gatekeeper runtimes fed through the distribution path, and a
// PackageVessel swarm pulling a large config — all over the discrete-event
// simulator. Run() executes the scenario under a FaultPlan and checks
// continuous safety invariants after *every* simulator event, plus
// convergence invariants after the final heal.
//
// Invariant catalog (docs/TESTING.md has the full rationale):
//   monotonic-version     A proxy/app never observes a config version (zxid)
//                         going backwards.
//   phantom-version       No replica serves a zxid newer than the commit point.
//   no-torn-config        Every observed value is one that was actually
//                         committed — never a torn/partial write.
//   last-known-good       Once a config has been observed on a server, reads
//                         never regress to "not found" — even with the whole
//                         control plane dead (paper §3.4 availability story).
//   vessel-metadata-hash  Delivered PackageVessel metadata always matches the
//                         publisher's content hash for that version.
//   gatekeeper-consistency A Gatekeeper runtime's decisions always match a
//                         reference evaluation of the exact config JSON that
//                         was delivered to it (cost-based reordering and
//                         live updates must not change semantics).
//   cross-config-invariant No proxy ever serves a jointly-inconsistent config
//                         pair (a shed threshold above the kill threshold it
//                         must stay below, split across two keys). Such pairs
//                         are only produced by the inconsistent-commit fault;
//                         in "gated" mode the cross-config InvariantChecker
//                         blocks them before commit, so only "bypass" (a
//                         simulated force-land) can trip this.
//   convergence-*         After every fault heals and the network settles,
//                         observers and proxies converge to Zeus ground truth
//                         and the swarm completes.
//   freshness-slo         (opt-in, freshness_slo > 0) After the final heal,
//                         the fleet-wide p99.9 config propagation latency —
//                         rolled up from every proxy's metrics-registry
//                         histogram — is within the configured bound. The
//                         violation report embeds the span tree of the
//                         slowest commit.
//
// Every run produces a replayable text trace (scenario options + fault plan +
// event log + violation); Replay() re-executes it bit-for-bit from the trace
// alone. shrink.h minimizes failing plans.

#ifndef SRC_DST_HARNESS_H_
#define SRC_DST_HARNESS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/distribution/proxy.h"
#include "src/distribution/tailer.h"
#include "src/dst/fault_plan.h"
#include "src/gatekeeper/naive.h"
#include "src/gatekeeper/runtime.h"
#include "src/obs/observability.h"
#include "src/p2p/vessel.h"
#include "src/sim/network.h"
#include "src/util/status.h"
#include "src/vcs/repository.h"
#include "src/zeus/zeus.h"

namespace configerator {

// Everything needed to reconstruct a scenario deterministically. Serializes
// to one "key=value ..." line in the trace header.
struct ScenarioOptions {
  uint64_t seed = 1;
  int regions = 2;
  int clusters_per_region = 2;
  int servers_per_cluster = 16;
  int members = 5;
  int observers = 4;
  int proxies = 8;
  int keys = 5;
  int writes = 40;
  SimTime chaos_duration = 60 * kSimSecond;  // Faults land before this.
  SimTime settle = 30 * kSimSecond;          // Heal-to-convergence budget.
  bool enable_vessel = true;
  bool enable_gatekeeper = true;
  int64_t vessel_bytes = 24 << 20;
  // Freshness SLO (0 = disabled): after the final heal, the fleet-wide p99.9
  // config propagation latency (from the metrics registry) must be within
  // this bound. Serialized as slo_us; absent in old traces, which therefore
  // replay with the invariant off.
  SimTime freshness_slo = 0;
  // Run the continuous-invariant sweep every Nth simulator event instead of
  // after every one. The sweep is O(proxies × keys); at 1k+ proxies checking
  // per event dominates the run without sharpening the invariants (a
  // violation is still caught, at worst stride-1 events later — and the final
  // pre-convergence sweep always runs). Serialized as check_stride; absent in
  // old traces, which replay with the original stride of 1.
  int check_stride = 1;

  std::string ToLine() const;
  static Result<ScenarioOptions> Parse(const std::string& line);
};

struct Violation {
  SimTime at = 0;
  std::string invariant;  // One of the catalog names above.
  std::string message;
  // Span tree (Tracer::DumpTree) of the commit implicated in the violation,
  // when one can be identified by zxid; "" otherwise. Embedded in the trace
  // between span-tree-begin/end markers (ignored by ParseTrace).
  std::string span_tree;
};

struct RunResult {
  bool violated = false;
  Violation violation;
  // Replayable trace: scenario line + fault plan + event log + outcome.
  std::string trace;
  int64_t committed_zxid = 0;
  uint64_t published = 0;
  size_t vessel_completed = 0;
  NetStats net;
  uint64_t sim_events = 0;
};

class Harness {
 public:
  explicit Harness(const ScenarioOptions& options);
  ~Harness();

  // The concrete servers a FaultPlan may target in this scenario.
  FaultPlanShape shape() const;

  // Executes the scenario under `plan`. Single-shot: build a fresh Harness
  // per run (the shrinker does exactly that).
  RunResult Run(const FaultPlan& plan);

  // --- Replay ---------------------------------------------------------------

  struct ReplaySpec {
    ScenarioOptions scenario;
    FaultPlan plan;
  };
  static Result<ReplaySpec> ParseTrace(const std::string& trace_text);
  // ParseTrace + fresh Harness + Run. Determinism guarantee: replaying a
  // failing run's trace reproduces the same violation at the same sim time.
  static Result<RunResult> Replay(const std::string& trace_text);

  // --- Test hooks -----------------------------------------------------------

  const Network& net() const { return *net_; }
  const ZeusEnsemble& zeus() const { return *zeus_; }
  const VesselSwarm* swarm() const { return swarm_.get(); }
  // The run's metrics registry + commit tracer. Attached to every component
  // with staleness probes OFF, so instrumentation adds no network messages
  // and the event/rng sequence matches an uninstrumented run exactly.
  Observability& obs() { return obs_; }
  const Observability& obs() const { return obs_; }

 private:
  void ScheduleWorkload();
  void ApplyFault(const FaultEvent& event);
  void CorruptDisk(int index, const std::string& key);
  void SeedInconsistentCommit(bool gated);
  void FinalHeal();
  void CheckContinuous();
  void CheckGatekeeper(size_t proxy_idx);
  void CheckConvergence();
  void CheckFreshness();
  // Reference compilation of a delivered Gatekeeper config: the naive
  // declared-order evaluator (no stats, no reordering), so the concurrent
  // snapshot runtime is checked against plain evaluation. nullptr = the JSON
  // does not compile.
  const NaiveEvaluator* ReferenceProject(const std::string& json_text);
  // `zxid` >= 0 attaches that commit's span tree to the violation report.
  void Fail(const std::string& invariant, std::string message,
            int64_t zxid = -1);
  std::string SpanTreeForZxid(int64_t zxid) const;
  void Log(std::string line);
  std::string BuildTrace(const FaultPlan& plan) const;

  ScenarioOptions options_;
  Topology topology_;
  // Declared before the components that cache pointers into it.
  Observability obs_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  Repository repo_;
  std::unique_ptr<ZeusEnsemble> zeus_;
  std::unique_ptr<GitTailer> tailer_;
  std::vector<ServerId> member_ids_;
  std::vector<ServerId> observer_ids_;
  std::vector<ServerId> proxy_hosts_;
  ServerId tailer_host_;
  ServerId storage_host_;
  std::vector<std::unique_ptr<OnDiskCache>> disks_;
  std::vector<std::unique_ptr<ConfigProxy>> proxies_;
  std::vector<std::unique_ptr<AppConfigClient>> apps_;
  std::vector<std::unique_ptr<GatekeeperRuntime>> gk_runtimes_;
  // Per proxy: the Gatekeeper JSON most recently delivered to it (""= none).
  std::vector<std::string> gk_delivered_;
  std::unique_ptr<VesselPublisher> vessel_pub_;
  std::unique_ptr<VesselSwarm> swarm_;

  std::string gk_key_;
  std::string vessel_key_;
  std::string vessel_name_;
  std::vector<std::string> tracked_keys_;
  // Every value ever scheduled for commit, per key — the "not torn" universe.
  std::map<std::string, std::set<std::string>> written_values_;

  // Continuous-invariant state, per proxy per key.
  std::vector<std::map<std::string, int64_t>> last_seen_zxid_;
  std::vector<std::map<std::string, bool>> ever_seen_;
  std::map<std::string, std::unique_ptr<NaiveEvaluator>> gk_reference_cache_;
  std::vector<UserContext> gk_users_;

  bool violated_ = false;
  Violation violation_;
  std::vector<std::string> log_;
  uint64_t published_ = 0;
  bool ran_ = false;
};

}  // namespace configerator

#endif  // SRC_DST_HARNESS_H_
