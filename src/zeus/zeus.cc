#include "src/zeus/zeus.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "src/util/logging.h"

namespace configerator {

ZeusEnsemble::ZeusEnsemble(Network* net, std::vector<ServerId> members,
                           std::vector<ServerId> observers, Options options)
    : net_(net), options_(options) {
  assert(!members.empty());
  members_.reserve(members.size());
  for (const ServerId& id : members) {
    Member m;
    m.id = id;
    members_.push_back(std::move(m));
  }
  observer_ids_ = std::move(observers);
  observer_states_.reserve(observer_ids_.size());
  for (const ServerId& id : observer_ids_) {
    Observer obs;
    obs.id = id;
    observer_states_.push_back(std::move(obs));
  }
  // Periodic anti-entropy keeps lagging observers converging.
  net_->sim().Schedule(options_.anti_entropy_interval, [this] { AntiEntropyTick(); });
}

void ZeusEnsemble::AttachObservability(Observability* obs) {
  obs_ = obs;
  commits_counter_ = obs->metrics.GetCounter("zeus_commits_total");
  elections_counter_ = obs->metrics.GetCounter("zeus_elections_total");
  pushes_counter_ = obs->metrics.GetCounter("zeus_observer_pushes_total");
  antientropy_counter_ =
      obs->metrics.GetCounter("zeus_antientropy_replays_total");
}

size_t ZeusEnsemble::LiveMemberCount() const {
  size_t live = 0;
  for (const Member& m : members_) {
    if (!net_->failures().IsDown(m.id)) {
      ++live;
    }
  }
  return live;
}

bool ZeusEnsemble::has_quorum() const {
  return LiveMemberCount() * 2 > members_.size();
}

void ZeusEnsemble::Write(const ServerId& from, std::string key, std::string value,
                         WriteCallback done) {
  // Client → leader hop.
  int64_t bytes = static_cast<int64_t>(key.size() + value.size() + 64);
  ServerId leader_id = members_[leader_idx_].id;
  if (net_->failures().IsDown(leader_id)) {
    StartElection();
  }
  if (election_in_progress_) {
    // Queue behind the election.
    pending_writes_.push_back(
        [this, from, key = std::move(key), value = std::move(value),
         done = std::move(done)]() mutable {
          Write(from, std::move(key), std::move(value), std::move(done));
        });
    return;
  }
  if (!has_quorum()) {
    done(UnavailableError("Zeus ensemble has no quorum"));
    return;
  }
  net_->Send(from, members_[leader_idx_].id, bytes,
             [this, key = std::move(key), value = std::move(value),
              done = std::move(done)]() mutable {
               CommitOnLeader(std::move(key), std::move(value), std::move(done));
             });
}

void ZeusEnsemble::CommitOnLeader(std::string key, std::string value,
                                  WriteCallback done) {
  if (!has_quorum()) {
    done(UnavailableError("Zeus ensemble lost quorum"));
    return;
  }
  Member& leader = members_[leader_idx_];
  ZeusTxn txn;
  txn.key = std::move(key);
  txn.value = std::move(value);

  // Propose to followers; count acks. The leader implicitly acks itself.
  auto acks = std::make_shared<size_t>(1);
  auto committed_flag = std::make_shared<bool>(false);
  size_t quorum = members_.size() / 2 + 1;
  int64_t bytes = static_cast<int64_t>(txn.key.size() + txn.value.size() + 64);

  auto maybe_commit = [this, acks, committed_flag, quorum, txn,
                       done = std::move(done)]() mutable {
    if (*committed_flag || *acks < quorum) {
      return;
    }
    *committed_flag = true;
    // Commit: assign the zxid *at commit time* — FIFO proposal/ack channels
    // make commits complete in proposal order, so the committed zxid stream
    // is contiguous (failed proposals leave no holes). Apply on leader
    // state, append to the logs of live members, then fan out to observers
    // after the processing delay (log fsync etc.).
    txn.zxid = ++last_committed_zxid_;
    committed_[txn.key] = ZeusValue{txn.value, txn.zxid};
    commit_log_.push_back(txn);
    for (Member& m : members_) {
      if (!net_->failures().IsDown(m.id)) {
        m.log.push_back(txn);
        m.last_logged_zxid = txn.zxid;
      }
    }
    if (commits_counter_ != nullptr) {
      commits_counter_->Inc();
    }
    net_->sim().Schedule(options_.processing_delay,
                         [this, txn] { PushToObservers(txn); });
    done(txn.zxid);
  };

  for (size_t i = 0; i < members_.size(); ++i) {
    if (i == leader_idx_) {
      continue;
    }
    const ServerId& follower = members_[i].id;
    if (net_->failures().IsDown(follower)) {
      continue;
    }
    // Round trip: leader → follower (proposal) → leader (ack).
    ServerId leader_id = leader.id;
    net_->SendFifo(leader_id, follower, bytes,
               [this, leader_id, follower, acks, maybe_commit]() mutable {
                 net_->SendFifo(follower, leader_id, 64,
                            [acks, maybe_commit]() mutable {
                              ++*acks;
                              maybe_commit();
                            });
               });
  }
  // A single-member ensemble commits immediately.
  maybe_commit();
}

void ZeusEnsemble::StartElection() {
  if (election_in_progress_) {
    return;
  }
  election_in_progress_ = true;
  if (elections_counter_ != nullptr) {
    elections_counter_->Inc();
  }
  net_->sim().Schedule(options_.election_delay, [this] {
    // Elect the live member with the longest committed log.
    size_t best = members_.size();
    for (size_t i = 0; i < members_.size(); ++i) {
      if (net_->failures().IsDown(members_[i].id)) {
        continue;
      }
      if (best == members_.size() ||
          members_[i].last_logged_zxid > members_[best].last_logged_zxid) {
        best = i;
      }
    }
    election_in_progress_ = false;
    if (best == members_.size() || !has_quorum()) {
      // No quorum: fail queued writes.
      while (!pending_writes_.empty()) {
        pending_writes_.pop_front();
      }
      CLOG(Warning) << "Zeus election failed: no quorum";
      return;
    }
    leader_idx_ = best;
    CLOG(Info) << "Zeus elected leader " << members_[best].id.ToString();
    std::deque<std::function<void()>> queued;
    queued.swap(pending_writes_);
    for (auto& fn : queued) {
      fn();
    }
  });
}

void ZeusEnsemble::PushToObservers(const ZeusTxn& txn) {
  const ServerId& leader_id = members_[leader_idx_].id;
  int64_t bytes = static_cast<int64_t>(txn.key.size() + txn.value.size() + 64);
  ZeusTxn traced = txn;
  if (obs_ != nullptr) {
    // The publisher bound the zxid (in its Write done-callback, which ran
    // before this scheduled push); parent the leader fan-out there.
    SimTime now = net_->sim().now();
    TraceContext ctx = obs_->tracer.ZxidContext(txn.zxid);
    TraceContext push = obs_->tracer.StartSpan(ctx, "zeus.leader.push",
                                               leader_id.ToString(), now);
    obs_->tracer.EndSpan(push, now);
    traced.trace = push;
  }
  for (Observer& obs : observer_states_) {
    if (net_->failures().IsDown(obs.id)) {
      continue;  // Anti-entropy catches it up on recovery.
    }
    Observer* obs_ptr = &obs;
    net_->SendFifo(leader_id, obs.id, bytes,
               [this, obs_ptr, txn = traced] { ApplyOnObserver(obs_ptr, txn); });
  }
}

void ZeusEnsemble::ApplyOnObserver(Observer* obs, const ZeusTxn& txn) {
  if (txn.zxid <= obs->last_zxid) {
    return;  // Stale or duplicate (anti-entropy overlap).
  }
  // Buffer, then apply the contiguous prefix. A gap means pushes were lost
  // while this observer was down; applying txn N+2 before N would let a
  // later anti-entropy pass believe the observer is current and leave key N
  // permanently stale.
  obs->pending.emplace(txn.zxid, txn);
  while (!obs->pending.empty() &&
         obs->pending.begin()->first == obs->last_zxid + 1) {
    const ZeusTxn& next = obs->pending.begin()->second;
    obs->last_zxid = next.zxid;
    obs->data[next.key] = ZeusValue{next.value, next.zxid};
    TraceContext apply_ctx = next.trace;
    if (obs_ != nullptr) {
      if (pushes_counter_ != nullptr) {
        pushes_counter_->Inc();
      }
      SimTime now = net_->sim().now();
      TraceContext parent = next.trace.valid()
                                ? next.trace
                                : obs_->tracer.ZxidContext(next.zxid);
      TraceContext span = obs_->tracer.StartSpan(parent, "zeus.observer.apply",
                                                 obs->id.ToString(), now);
      obs_->tracer.EndSpan(span, now);
      if (span.valid()) {
        apply_ctx = span;
      }
    }
    // Notify watching proxies (observer → proxy hop of the tree). The txn is
    // shared across the whole fan-out — at 100k watching proxies, a per-watch
    // deep copy of key+value was the dominant allocation in a commit.
    auto it = obs->watches.find(next.key);
    if (it != obs->watches.end() && !it->second.list.empty()) {
      int64_t bytes =
          static_cast<int64_t>(next.key.size() + next.value.size() + 64);
      auto shared = std::make_shared<ZeusTxn>(next);
      shared->trace = apply_ctx;
      for (const Watch& watch : it->second.list) {
        UpdateCallback cb = watch.callback;
        net_->SendFifo(obs->id, watch.proxy, bytes,
                       [cb = std::move(cb), shared] { cb(*shared); });
      }
    }
    obs->pending.erase(obs->pending.begin());
  }
}

void ZeusEnsemble::AntiEntropyTick() {
  const ServerId& leader_id = members_[leader_idx_].id;
  if (!net_->failures().IsDown(leader_id)) {
    for (Observer& obs : observer_states_) {
      if (net_->failures().IsDown(obs.id) || obs.last_zxid >= last_committed_zxid_) {
        continue;
      }
      // Replay the missing suffix of the committed stream, in order. Sourced
      // from the hole-free commit log, not the leader's member log: a leader
      // elected for its long log can still miss mid-stream txns it was down
      // for, and replaying around a hole would wedge the observer forever.
      Observer* obs_ptr = &obs;
      for (const ZeusTxn& txn : commit_log_) {
        if (txn.zxid <= obs.last_zxid) {
          continue;
        }
        ZeusTxn replay = txn;
        if (obs_ != nullptr) {
          if (antientropy_counter_ != nullptr) {
            antientropy_counter_->Inc();
          }
          // The commit log predates tracing of this txn's push; rejoin the
          // replay to the publisher's span via the zxid binding.
          replay.trace = obs_->tracer.ZxidContext(txn.zxid);
        }
        int64_t bytes = static_cast<int64_t>(txn.key.size() + txn.value.size() + 64);
        net_->SendFifo(leader_id, obs.id, bytes,
                   [this, obs_ptr, txn = std::move(replay)] {
                     ApplyOnObserver(obs_ptr, txn);
                   });
      }
    }
  }
  net_->sim().Schedule(options_.anti_entropy_interval, [this] { AntiEntropyTick(); });
}

void ZeusEnsemble::Subscribe(const ServerId& proxy, const ServerId& observer,
                             const std::string& key, UpdateCallback on_update) {
  Observer* obs = FindObserver(observer);
  if (obs == nullptr) {
    return;
  }
  // Register the watch at the observer (proxy → observer hop), then deliver
  // the current value if one exists.
  int64_t bytes = static_cast<int64_t>(key.size() + 64);
  net_->Send(proxy, observer, bytes,
             [this, obs, proxy, key, on_update = std::move(on_update)] {
               // One watch per (proxy, key): a resubscription (proxy restart,
               // observer failover) replaces the old registration — in place,
               // so delivery order stays by first registration — instead of
               // stacking duplicate deliveries.
               WatchList& watches = obs->watches[key];
               uint64_t proxy_flat = static_cast<uint64_t>(
                   net_->topology().FlatIndex(proxy));
               auto [slot, inserted] = watches.by_proxy.try_emplace(
                   proxy_flat, static_cast<uint32_t>(watches.list.size()));
               if (inserted) {
                 watches.list.push_back(Watch{proxy, on_update});
               } else {
                 watches.list[slot->second].callback = on_update;
               }
               auto it = obs->data.find(key);
               if (it == obs->data.end()) {
                 return;
               }
               ZeusTxn txn;
               txn.zxid = it->second.zxid;
               txn.key = key;
               txn.value = it->second.value;
               if (obs_ != nullptr) {
                 // Refetch after restart/failover: rejoin the commit's trace
                 // so the proxy's apply span is not orphaned.
                 txn.trace = obs_->tracer.ZxidContext(txn.zxid);
               }
               int64_t reply_bytes =
                   static_cast<int64_t>(key.size() + txn.value.size() + 64);
               net_->SendFifo(obs->id, proxy, reply_bytes,
                          [on_update, txn = std::move(txn)] { on_update(txn); });
             });
}

void ZeusEnsemble::Fetch(const ServerId& proxy, const ServerId& observer,
                         const std::string& key, FetchCallback done) {
  Observer* obs = FindObserver(observer);
  if (obs == nullptr) {
    done(NotFoundError("no such observer"));
    return;
  }
  if (net_->failures().IsDown(observer)) {
    done(UnavailableError("observer down"));
    return;
  }
  int64_t bytes = static_cast<int64_t>(key.size() + 64);
  net_->Send(proxy, observer, bytes, [this, obs, proxy, key, done = std::move(done)] {
    auto it = obs->data.find(key);
    if (it == obs->data.end()) {
      // Reply with NotFound over the network (small message).
      net_->Send(obs->id, proxy, 64,
                 [done, key] { done(NotFoundError("no config '" + key + "'")); });
      return;
    }
    ZeusValue value = it->second;
    int64_t reply_bytes = static_cast<int64_t>(key.size() + value.value.size() + 64);
    net_->Send(obs->id, proxy, reply_bytes,
               [done, value = std::move(value)] { done(value); });
  });
}

void ZeusEnsemble::Ping(const ServerId& proxy, const ServerId& observer,
                        std::function<void(int64_t)> done) {
  Observer* obs = FindObserver(observer);
  if (obs == nullptr) {
    return;
  }
  // Request and reply both traverse the simulated network, so a down
  // observer or a partition in either direction silently eats the probe —
  // exactly the signal the staleness gauge feeds on.
  net_->Send(proxy, observer, 64, [this, obs, proxy, done = std::move(done)] {
    net_->Send(obs->id, proxy, 64,
               [done, zxid = obs->last_zxid] { done(zxid); });
  });
}

void ZeusEnsemble::Crash(const ServerId& id) {
  net_->failures().Crash(id);
  if (id == members_[leader_idx_].id) {
    StartElection();
  }
}

void ZeusEnsemble::Recover(const ServerId& id) { net_->failures().Recover(id); }

ZeusEnsemble::Observer* ZeusEnsemble::FindObserver(const ServerId& id) {
  for (Observer& obs : observer_states_) {
    if (obs.id == id) {
      return &obs;
    }
  }
  return nullptr;
}

const ZeusEnsemble::Observer* ZeusEnsemble::FindObserver(const ServerId& id) const {
  for (const Observer& obs : observer_states_) {
    if (obs.id == id) {
      return &obs;
    }
  }
  return nullptr;
}

const ZeusValue* ZeusEnsemble::Lookup(const std::string& key) const {
  auto it = committed_.find(key);
  return it == committed_.end() ? nullptr : &it->second;
}

int64_t ZeusEnsemble::ObserverLastZxid(const ServerId& observer) const {
  const Observer* obs = FindObserver(observer);
  return obs == nullptr ? -1 : obs->last_zxid;
}

ServerId ZeusEnsemble::PickObserverFor(const ServerId& proxy, Rng& rng) const {
  std::vector<const ServerId*> same_cluster;
  std::vector<const ServerId*> live;
  for (const ServerId& obs : observer_ids_) {
    if (net_->failures().IsDown(obs)) {
      continue;
    }
    live.push_back(&obs);
    if (obs.region == proxy.region && obs.cluster == proxy.cluster) {
      same_cluster.push_back(&obs);
    }
  }
  const std::vector<const ServerId*>& pool =
      !same_cluster.empty() ? same_cluster : live;
  if (pool.empty()) {
    return observer_ids_.empty() ? proxy : observer_ids_.front();
  }
  return *pool[rng.NextBounded(pool.size())];
}

}  // namespace configerator
