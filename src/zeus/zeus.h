// Zeus: the ZooKeeper-like replicated config store at the heart of
// Configerator's distribution pipeline (paper §3.4).
//
// Faithful behaviours:
//  * A leader and followers form an ensemble; a write commits after a quorum
//    of acks and is applied in zxid order (the commit log guarantees in-order
//    delivery of config changes).
//  * If the leader fails, a follower with the longest committed log is
//    elected leader after an election delay.
//  * Observers keep a full read-only replica, fed asynchronously by the
//    leader; a recovering observer reports its last zxid and receives the
//    missing suffix (anti-entropy runs periodically).
//  * Proxies subscribe per-key at an observer of their choice; the observer
//    pushes updated values down the tree (leader → observer → proxy).
//
// Simplifications vs. production ZAB, documented in DESIGN.md: epochs are a
// counter (no full leader-activation handshake), and the election picks the
// longest-log live member directly instead of running voting rounds. These
// do not affect the distribution-latency or fan-out behaviour the paper
// evaluates.

#ifndef SRC_ZEUS_ZEUS_H_
#define SRC_ZEUS_ZEUS_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/observability.h"
#include "src/sim/network.h"
#include "src/util/status.h"

namespace configerator {

// One committed write.
struct ZeusTxn {
  int64_t zxid = 0;
  std::string key;
  std::string value;
  // Provenance for the commit tracer: the span this delivery is causally
  // downstream of. Invalid (default) when tracing is not attached.
  TraceContext trace{};
};

// Value + version returned by reads.
struct ZeusValue {
  std::string value;
  int64_t zxid = 0;
};

class ZeusEnsemble {
 public:
  struct Options {
    SimTime election_delay = 2 * kSimSecond;
    SimTime anti_entropy_interval = 1 * kSimSecond;
    // Extra per-hop processing delay at each tree level (serialization,
    // fsync of the commit log, etc.).
    SimTime processing_delay = 2 * kSimMillisecond;
  };

  using UpdateCallback = std::function<void(const ZeusTxn& txn)>;
  using WriteCallback = std::function<void(Result<int64_t> zxid)>;
  using FetchCallback = std::function<void(Result<ZeusValue>)>;

  // `members`: ensemble servers (members[0] starts as leader). `observers`:
  // observer servers, typically several per cluster. All must be distinct.
  ZeusEnsemble(Network* net, std::vector<ServerId> members,
               std::vector<ServerId> observers, Options options);
  ZeusEnsemble(Network* net, std::vector<ServerId> members,
               std::vector<ServerId> observers)
      : ZeusEnsemble(net, std::move(members), std::move(observers), Options{}) {}

  // --- Client (tailer) API ---

  // Proposes key=value from server `from`. `done` fires on commit (with the
  // zxid) or with kUnavailable if no quorum / no leader.
  void Write(const ServerId& from, std::string key, std::string value,
             WriteCallback done);

  // --- Proxy-facing observer API (all via simulated network) ---

  // Registers a persistent subscription for `key` at `observer`; `on_update`
  // runs on the proxy side for the current value (immediately, as a fetch)
  // and for every later committed update pushed down the tree.
  void Subscribe(const ServerId& proxy, const ServerId& observer,
                 const std::string& key, UpdateCallback on_update);

  // One-shot read of `key` from `observer`.
  void Fetch(const ServerId& proxy, const ServerId& observer,
             const std::string& key, FetchCallback done);

  // Liveness/freshness probe: round-trips a tiny message to `observer` and
  // reports its last applied zxid. No reply if the observer is down or a
  // partition blocks either direction — proxies use this to measure how
  // stale their subscription might be (staleness gauge).
  void Ping(const ServerId& proxy, const ServerId& observer,
            std::function<void(int64_t observer_zxid)> done);

  // --- Observability --------------------------------------------------------

  // Opt-in metrics + tracing. Must outlive the ensemble. Unattached (the
  // default), Zeus emits nothing and sends no extra messages.
  void AttachObservability(Observability* obs);

  // --- Failure hooks (benches/tests drive these) ---

  // Crash/recover members or observers. Member crash may trigger election on
  // the next write; observer recovery catches up via anti-entropy.
  void Crash(const ServerId& id);
  void Recover(const ServerId& id);

  // --- Introspection ---

  const ServerId& leader() const { return members_[leader_idx_].id; }
  bool has_quorum() const;
  int64_t last_committed_zxid() const { return last_committed_zxid_; }

  // Committed leader-state value for `key` (nullptr if never written). This
  // is the simulation-harness ground truth: after a full heal, every replica
  // must converge to it. Not a networked read — tests/invariants only.
  const ZeusValue* Lookup(const std::string& key) const;
  int64_t ObserverLastZxid(const ServerId& observer) const;
  const std::vector<ServerId>& observers() const { return observer_ids_; }

  // Picks the observer co-located with `proxy`'s cluster if one exists,
  // else a random one (the paper: "randomly picks an observer in the same
  // cluster").
  ServerId PickObserverFor(const ServerId& proxy, Rng& rng) const;

 private:
  struct Member {
    ServerId id;
    int64_t last_logged_zxid = 0;
    std::vector<ZeusTxn> log;  // Committed prefix only (simplification).
  };

  struct Watch {
    ServerId proxy;
    UpdateCallback callback;
  };

  // Watches on one key at one observer. `list` keeps registration order (the
  // push fan-out iterates it, so delivery order is deterministic and stable);
  // `by_proxy` (dense flat-index key → list slot) makes the one-watch-per-
  // (proxy, key) replacement O(1) instead of a linear scan — at 100k
  // subscribing proxies the scan was quadratic.
  struct WatchList {
    std::vector<Watch> list;
    std::unordered_map<uint64_t, uint32_t> by_proxy;
  };

  struct Observer {
    ServerId id;
    int64_t last_zxid = 0;
    // Out-of-order arrivals (holes happen when pushes were dropped while the
    // observer was down). Applied only once contiguous — ZooKeeper's
    // in-order delivery guarantee; anti-entropy fills the holes.
    std::map<int64_t, ZeusTxn> pending;
    std::unordered_map<std::string, ZeusValue> data;
    std::unordered_map<std::string, WatchList> watches;
  };

  void CommitOnLeader(std::string key, std::string value, WriteCallback done);
  void StartElection();
  void PushToObservers(const ZeusTxn& txn);
  void ApplyOnObserver(Observer* obs, const ZeusTxn& txn);
  void AntiEntropyTick();
  Observer* FindObserver(const ServerId& id);
  const Observer* FindObserver(const ServerId& id) const;
  size_t LiveMemberCount() const;

  Network* net_;
  Options options_;
  Observability* obs_ = nullptr;
  // Cached metric handles (stable registry pointers): hot-path increments
  // never touch the registry map.
  Counter* commits_counter_ = nullptr;
  Counter* elections_counter_ = nullptr;
  Counter* pushes_counter_ = nullptr;
  Counter* antientropy_counter_ = nullptr;
  // The committed transaction stream, in zxid order with no holes (zxids are
  // assigned at commit). Anti-entropy replays suffixes of this — a member's
  // own log can have holes (it was down when some txns committed), so it is
  // not a safe replay source even for the longest-log election winner.
  std::vector<ZeusTxn> commit_log_;
  std::vector<Member> members_;
  std::vector<ServerId> observer_ids_;
  std::vector<Observer> observer_states_;
  std::unordered_map<std::string, ZeusValue> committed_;  // Leader KV state.
  size_t leader_idx_ = 0;
  int64_t last_committed_zxid_ = 0;
  bool election_in_progress_ = false;
  std::deque<std::function<void()>> pending_writes_;  // Queued during election.
};

}  // namespace configerator

#endif  // SRC_ZEUS_ZEUS_H_
