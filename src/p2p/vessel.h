// PackageVessel (paper §3.5): hybrid subscription-P2P distribution of large
// configs. The small metadata record (version, size, content hash, where to
// fetch) travels through Zeus with the usual consistency guarantees; the
// bulk content is fetched from a storage service and swapped between peers
// BitTorrent-style, with locality-aware peer selection (same-cluster peers
// preferred) so neither the storage service nor the inter-region links melt.

#ifndef SRC_P2P_VESSEL_H_
#define SRC_P2P_VESSEL_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/json/json.h"
#include "src/sim/network.h"
#include "src/util/sha256.h"
#include "src/zeus/zeus.h"

namespace configerator {

// Metadata record stored in Configerator/Zeus for a large config.
struct VesselMetadata {
  std::string name;
  int64_t version = 0;
  int64_t size_bytes = 0;
  int64_t chunk_size = 0;
  std::string content_hash;  // Hex SHA-256 of the bulk content.
  std::string storage_key;   // Where the bulk lives in the storage service.

  Json ToJson() const;
  static Result<VesselMetadata> FromJson(const Json& json);
};

// One P2P distribution of one (config, version) to a set of clients.
// Single-threaded over the discrete-event simulator.
class VesselSwarm {
 public:
  struct Options {
    int64_t chunk_size = 4 << 20;        // 4 MB.
    int max_parallel_per_client = 4;     // Concurrent chunk fetches.
    int max_storage_uploads = 8;         // Storage service upload slots.
    bool locality_aware = true;          // Prefer same-cluster sources.
    bool p2p_enabled = true;             // false = everyone hits storage.
    // How long a client waits before re-probing when no source is reachable
    // (every peer and the storage service crashed or partitioned away).
    SimTime unreachable_backoff = 250 * kSimMillisecond;
  };

  struct Stats {
    int64_t bytes_from_storage = 0;
    int64_t bytes_from_peers = 0;
    int64_t cross_region_bytes = 0;
    SimTime first_completion = 0;
    SimTime last_completion = 0;
    size_t completed_clients = 0;
  };

  VesselSwarm(Network* net, ServerId storage, std::vector<ServerId> clients,
              int64_t content_size, Options options, uint64_t seed);

  // Begins the download on every client. `on_done` fires per client with its
  // completion time. Run the simulator to drive it.
  void Start(std::function<void(const ServerId&, SimTime)> on_done = nullptr);

  bool AllComplete() const { return stats_.completed_clients == clients_.size(); }
  const Stats& stats() const { return stats_; }
  size_t chunk_count() const { return static_cast<size_t>(num_chunks_); }

  // Restarts a client's download loop after it recovered from a crash
  // (in-flight transfers during the crash were lost; progress on already-
  // fetched chunks is kept — partial downloads resume, like BitTorrent).
  void ResumeClient(const ServerId& client);

  // Per-client progress, for churn tests and harness invariants.
  bool ClientDone(const ServerId& client) const;
  int64_t ClientChunks(const ServerId& client) const;

  // Opt-in metrics: byte counters by source (peer/storage/cross-region) and
  // the vessel_client_seconds completion histogram. No tracing here — the
  // bulk path is content-addressed, not commit-ordered; the metadata half of
  // the split is traced through Zeus like any config.
  void AttachObservability(Observability* obs);

 private:
  struct ClientState {
    ServerId id;
    std::vector<bool> have;
    std::vector<bool> requested;  // In-flight chunk fetches (no duplicates).
    int64_t have_count = 0;
    int in_flight = 0;
    bool done = false;
    bool retry_pending = false;  // A backoff re-probe is already scheduled.
    SimTime uplink_free = 0;  // Peer-serving uplink availability.
  };

  void PumpClient(size_t client_idx);
  // Issues the transfer; false if no source is currently reachable (a
  // backoff re-probe has been scheduled instead).
  bool FetchChunk(size_t client_idx, int64_t chunk);
  // Tracker-style source selection: same-cluster peer > same-region peer >
  // any peer > storage.
  bool PickPeerSource(const ClientState& client, int64_t chunk, size_t* out_idx);

  Network* net_;
  ServerId storage_;
  std::vector<ServerId> clients_;
  std::vector<ClientState> states_;
  std::unordered_map<ServerId, size_t> index_of_;
  // Which clients hold each chunk (tracker view).
  std::vector<std::vector<size_t>> holders_;
  int64_t content_size_;
  int64_t num_chunks_;
  Options options_;
  Rng rng_;
  Stats stats_;
  SimTime storage_uplink_free_ = 0;
  std::function<void(const ServerId&, SimTime)> on_done_;
  SimTime started_at_ = 0;
  Counter* peer_bytes_counter_ = nullptr;
  Counter* storage_bytes_counter_ = nullptr;
  Counter* cross_region_bytes_counter_ = nullptr;
  Counter* completions_counter_ = nullptr;
  Histogram* completion_hist_ = nullptr;
};

// Publisher API: uploads the bulk content and emits the metadata update into
// Zeus (through which subscribing proxies learn the new version).
class VesselPublisher {
 public:
  VesselPublisher(Network* net, ZeusEnsemble* zeus, ServerId publisher_host,
                  ServerId storage_host)
      : net_(net), zeus_(zeus), host_(publisher_host), storage_(storage_host) {}

  // Publishes `size_bytes` of content under `name` (content is synthetic;
  // its hash derives deterministically from name+version). The metadata is
  // written to Zeus key "pkgvessel/<name>"; callback fires on commit.
  void Publish(const std::string& name, int64_t version, int64_t size_bytes,
               std::function<void(Result<int64_t>)> done);

  static std::string MetadataKey(const std::string& name) {
    return "pkgvessel/" + name;
  }
  static std::string SyntheticHash(const std::string& name, int64_t version);

  // Opt-in tracing: a publish opens a root trace ("vessel:<name>") with a
  // "vessel.upload" span for the bulk upload; the metadata write's zxid is
  // bound to it, so observer/proxy deliveries of the metadata join the tree
  // (the PackageVessel metadata/bulk split, traced on the metadata side).
  void AttachObservability(Observability* obs) { obs_ = obs; }

 private:
  Network* net_;
  ZeusEnsemble* zeus_;
  ServerId host_;
  ServerId storage_;
  Observability* obs_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_P2P_VESSEL_H_
