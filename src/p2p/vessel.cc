#include "src/p2p/vessel.h"

#include <algorithm>
#include <cassert>

#include "src/util/strings.h"

namespace configerator {

Json VesselMetadata::ToJson() const {
  Json obj = Json::MakeObject();
  obj.Set("name", name);
  obj.Set("version", version);
  obj.Set("size_bytes", size_bytes);
  obj.Set("chunk_size", chunk_size);
  obj.Set("content_hash", content_hash);
  obj.Set("storage_key", storage_key);
  return obj;
}

Result<VesselMetadata> VesselMetadata::FromJson(const Json& json) {
  if (!json.is_object()) {
    return InvalidArgumentError("vessel metadata must be an object");
  }
  VesselMetadata meta;
  const Json* field = json.Get("name");
  if (field == nullptr || !field->is_string()) {
    return InvalidArgumentError("vessel metadata: missing name");
  }
  meta.name = field->as_string();
  auto read_int = [&json](const char* key, int64_t* out) -> Status {
    const Json* f = json.Get(key);
    if (f == nullptr || !f->is_int()) {
      return InvalidArgumentError(std::string("vessel metadata: missing ") + key);
    }
    *out = f->as_int();
    return OkStatus();
  };
  RETURN_IF_ERROR(read_int("version", &meta.version));
  RETURN_IF_ERROR(read_int("size_bytes", &meta.size_bytes));
  RETURN_IF_ERROR(read_int("chunk_size", &meta.chunk_size));
  field = json.Get("content_hash");
  if (field == nullptr || !field->is_string()) {
    return InvalidArgumentError("vessel metadata: missing content_hash");
  }
  meta.content_hash = field->as_string();
  field = json.Get("storage_key");
  if (field == nullptr || !field->is_string()) {
    return InvalidArgumentError("vessel metadata: missing storage_key");
  }
  meta.storage_key = field->as_string();
  return meta;
}

VesselSwarm::VesselSwarm(Network* net, ServerId storage,
                         std::vector<ServerId> clients, int64_t content_size,
                         Options options, uint64_t seed)
    : net_(net),
      storage_(storage),
      clients_(std::move(clients)),
      content_size_(content_size),
      options_(options),
      rng_(seed) {
  assert(content_size_ > 0 && options_.chunk_size > 0);
  num_chunks_ = (content_size_ + options_.chunk_size - 1) / options_.chunk_size;
  states_.reserve(clients_.size());
  for (size_t i = 0; i < clients_.size(); ++i) {
    ClientState state;
    state.id = clients_[i];
    state.have.assign(static_cast<size_t>(num_chunks_), false);
    state.requested.assign(static_cast<size_t>(num_chunks_), false);
    states_.push_back(std::move(state));
    index_of_[clients_[i]] = i;
  }
  holders_.assign(static_cast<size_t>(num_chunks_), {});
}

void VesselSwarm::AttachObservability(Observability* obs) {
  peer_bytes_counter_ = obs->metrics.GetCounter("vessel_peer_bytes_total");
  storage_bytes_counter_ =
      obs->metrics.GetCounter("vessel_storage_bytes_total");
  cross_region_bytes_counter_ =
      obs->metrics.GetCounter("vessel_cross_region_bytes_total");
  completions_counter_ = obs->metrics.GetCounter("vessel_completions_total");
  completion_hist_ = obs->metrics.GetHistogram("vessel_client_seconds");
}

void VesselSwarm::Start(std::function<void(const ServerId&, SimTime)> on_done) {
  on_done_ = std::move(on_done);
  started_at_ = net_->sim().now();
  for (size_t i = 0; i < states_.size(); ++i) {
    // Small stagger so the fleet doesn't stampede the storage service in the
    // same microsecond (in production, metadata arrival is already jittered).
    net_->sim().Schedule(static_cast<SimTime>(rng_.NextBounded(50)) *
                             kSimMillisecond,
                         [this, i] { PumpClient(i); });
  }
}

bool VesselSwarm::PickPeerSource(const ClientState& client, int64_t chunk,
                                 size_t* out_idx) {
  // Only peers the network can currently reach count as sources — a crashed
  // or partitioned-away holder is as useless as no holder at all.
  std::vector<size_t> reachable;
  for (size_t idx : holders_[static_cast<size_t>(chunk)]) {
    if (net_->CanDeliver(states_[idx].id, client.id)) {
      reachable.push_back(idx);
    }
  }
  if (reachable.empty()) {
    return false;
  }
  if (!options_.locality_aware) {
    // Uniform choice among all reachable holders.
    *out_idx = reachable[rng_.NextBounded(reachable.size())];
    return true;
  }
  std::vector<size_t> same_cluster;
  std::vector<size_t> same_region;
  for (size_t idx : reachable) {
    const ServerId& peer = states_[idx].id;
    if (peer.region == client.id.region) {
      if (peer.cluster == client.id.cluster) {
        same_cluster.push_back(idx);
      } else {
        same_region.push_back(idx);
      }
    }
  }
  const std::vector<size_t>* pool = &reachable;
  if (!same_cluster.empty()) {
    pool = &same_cluster;
  } else if (!same_region.empty()) {
    pool = &same_region;
  }
  *out_idx = (*pool)[rng_.NextBounded(pool->size())];
  return true;
}

void VesselSwarm::PumpClient(size_t client_idx) {
  ClientState& client = states_[client_idx];
  if (client.done || net_->failures().IsDown(client.id)) {
    return;
  }
  if (client.have_count == num_chunks_) {
    client.done = true;
    ++stats_.completed_clients;
    SimTime now = net_->sim().now();
    if (stats_.completed_clients == 1) {
      stats_.first_completion = now;
    }
    stats_.last_completion = std::max(stats_.last_completion, now);
    if (completions_counter_ != nullptr) {
      completions_counter_->Inc();
      completion_hist_->Record(SimToSeconds(now - started_at_));
    }
    if (on_done_) {
      on_done_(client.id, now);
    }
    return;
  }
  while (client.in_flight < options_.max_parallel_per_client) {
    // Rarest-ish selection: random needed chunk (with a few retries biased
    // towards chunks with fewer holders).
    int64_t best_chunk = -1;
    size_t best_holders = SIZE_MAX;
    for (int attempt = 0; attempt < 4; ++attempt) {
      int64_t c = static_cast<int64_t>(
          rng_.NextBounded(static_cast<uint64_t>(num_chunks_)));
      if (client.have[static_cast<size_t>(c)] ||
          client.requested[static_cast<size_t>(c)]) {
        continue;
      }
      size_t h = holders_[static_cast<size_t>(c)].size();
      if (h < best_holders) {
        best_holders = h;
        best_chunk = c;
      }
    }
    if (best_chunk < 0) {
      // Random probing missed; linear scan for any needed chunk.
      for (int64_t c = 0; c < num_chunks_; ++c) {
        if (!client.have[static_cast<size_t>(c)] &&
            !client.requested[static_cast<size_t>(c)]) {
          best_chunk = c;
          break;
        }
      }
    }
    if (best_chunk < 0) {
      break;  // Everything is either present or already in flight.
    }
    client.requested[static_cast<size_t>(best_chunk)] = true;
    if (!FetchChunk(client_idx, best_chunk)) {
      break;  // No reachable source; a backoff re-probe is scheduled.
    }
  }
}

bool VesselSwarm::FetchChunk(size_t client_idx, int64_t chunk) {
  ClientState& client = states_[client_idx];

  int64_t chunk_bytes =
      std::min(options_.chunk_size, content_size_ - chunk * options_.chunk_size);
  SimTime now = net_->sim().now();
  SimTime transmit = net_->topology().TransmitTime(chunk_bytes);

  size_t peer_idx = 0;
  bool from_peer =
      options_.p2p_enabled && PickPeerSource(client, chunk, &peer_idx);
  if (!from_peer && !net_->CanDeliver(storage_, client.id)) {
    // Total isolation: no reachable peer and the storage service is cut off
    // too. Back off instead of burning simulated uplink on doomed requests.
    client.requested[static_cast<size_t>(chunk)] = false;
    if (!client.retry_pending) {
      client.retry_pending = true;
      net_->sim().Schedule(options_.unreachable_backoff, [this, client_idx] {
        states_[client_idx].retry_pending = false;
        PumpClient(client_idx);
      });
    }
    return false;
  }
  ++client.in_flight;

  ServerId source;
  SimTime start;
  if (from_peer) {
    ClientState& peer = states_[peer_idx];
    source = peer.id;
    start = std::max(now, peer.uplink_free);
    peer.uplink_free = start + transmit;
  } else {
    source = storage_;
    // The storage service has a fixed number of upload slots; model its
    // aggregate uplink as slots × line rate by dividing the serialization.
    SimTime effective = transmit / std::max(1, options_.max_storage_uploads);
    start = std::max(now, storage_uplink_free_);
    storage_uplink_free_ = start + effective;
  }

  SimTime latency = net_->topology().Latency(source, client.id, rng_);
  SimTime done_at = start + transmit + latency;

  net_->sim().ScheduleAt(done_at, [this, client_idx, chunk, source, from_peer,
                                   chunk_bytes] {
    ClientState& c = states_[client_idx];
    --c.in_flight;
    c.requested[static_cast<size_t>(chunk)] = false;
    // The transfer fails if either endpoint died mid-flight or a partition
    // cut the link; the pump retries from another source (downloads survive
    // peer churn).
    if (net_->failures().IsDown(c.id)) {
      return;  // Dead clients stop pumping until ResumeClient().
    }
    if (!net_->CanDeliver(source, c.id)) {
      PumpClient(client_idx);
      return;
    }
    if (from_peer) {
      stats_.bytes_from_peers += chunk_bytes;
      if (peer_bytes_counter_ != nullptr) {
        peer_bytes_counter_->Inc(static_cast<uint64_t>(chunk_bytes));
      }
    } else {
      stats_.bytes_from_storage += chunk_bytes;
      if (storage_bytes_counter_ != nullptr) {
        storage_bytes_counter_->Inc(static_cast<uint64_t>(chunk_bytes));
      }
    }
    if (source.region != c.id.region) {
      stats_.cross_region_bytes += chunk_bytes;
      if (cross_region_bytes_counter_ != nullptr) {
        cross_region_bytes_counter_->Inc(static_cast<uint64_t>(chunk_bytes));
      }
    }
    if (!c.have[static_cast<size_t>(chunk)]) {
      c.have[static_cast<size_t>(chunk)] = true;
      ++c.have_count;
      holders_[static_cast<size_t>(chunk)].push_back(client_idx);
    }
    PumpClient(client_idx);
  });
  return true;
}

void VesselSwarm::ResumeClient(const ServerId& client) {
  auto it = index_of_.find(client);
  if (it == index_of_.end()) {
    return;
  }
  size_t idx = it->second;
  if (!states_[idx].done) {
    PumpClient(idx);
  }
}

bool VesselSwarm::ClientDone(const ServerId& client) const {
  auto it = index_of_.find(client);
  return it != index_of_.end() && states_[it->second].done;
}

int64_t VesselSwarm::ClientChunks(const ServerId& client) const {
  auto it = index_of_.find(client);
  return it == index_of_.end() ? 0 : states_[it->second].have_count;
}

std::string VesselPublisher::SyntheticHash(const std::string& name,
                                           int64_t version) {
  return Sha256::Hash(name + "#" + std::to_string(version)).ToHex();
}

void VesselPublisher::Publish(const std::string& name, int64_t version,
                              int64_t size_bytes,
                              std::function<void(Result<int64_t>)> done) {
  // Upload bulk to storage (one NIC-limited transfer), then commit metadata.
  SimTime upload_time = net_->topology().TransmitTime(size_bytes);
  ServerId host = host_;
  TraceContext upload_span;
  if (obs_ != nullptr) {
    SimTime now = net_->sim().now();
    TraceContext root = obs_->tracer.StartTrace(
        "vessel:" + name + "@" + std::to_string(version), host.ToString(), now);
    obs_->tracer.EndSpan(root, now);
    upload_span =
        obs_->tracer.StartSpan(root, "vessel.upload", host.ToString(), now);
  }
  net_->sim().Schedule(upload_time, [this, host, name, version, size_bytes,
                                     upload_span,
                                     done = std::move(done)]() mutable {
    if (obs_ != nullptr) {
      obs_->tracer.EndSpan(upload_span, net_->sim().now());
    }
    VesselMetadata meta;
    meta.name = name;
    meta.version = version;
    meta.size_bytes = size_bytes;
    meta.chunk_size = 4 << 20;
    meta.content_hash = SyntheticHash(name, version);
    meta.storage_key = "blob/" + name + "/" + std::to_string(version);
    zeus_->Write(host, MetadataKey(name), meta.ToJson().Dump(),
                 [this, upload_span, done = std::move(done)](
                     Result<int64_t> zxid) {
                   if (obs_ != nullptr && zxid.ok()) {
                     // Metadata deliveries down the Zeus tree join here.
                     obs_->tracer.BindZxid(*zxid, upload_span);
                   }
                   done(std::move(zxid));
                 });
  });
}

}  // namespace configerator
