// Cross-config invariants (ROADMAP items 4-5; Tortoise/muPuppet in
// PAPERS.md): declarative predicates relating exported symbols *across*
// entries and files — the joint-consistency properties per-file validators
// cannot see (a shed threshold above its kill threshold, shard weights that
// no longer sum to 100, a fallback path naming a config that was deleted, a
// gatekeeper project consulting a context field it must not).
//
// Invariants are themselves configs: JSON files under "invariants/" in the
// repository, loaded into an InvariantRegistry. The InvariantChecker
// evaluates each one symbolically over the abstract interpreter's
// interval/constant lattice, case-splitting on branch decisions (one
// ExportSlice per `export` call site) and — for gatekeeper predicates — on
// context-field values mined from restraint parameters. The outcome per
// invariant is one of:
//
//   kProven     every case satisfies the predicate on abstract facts alone:
//               no context, no branch arm, no schema-valid value can break it.
//   kViolated   some concrete evaluation (compiled entries / parsed configs /
//               a concrete UserContext) falsifies the predicate. Violations
//               always carry a counterexample Witness that was re-validated
//               concretely and ddmin-shrunk — a diagnostic is never emitted
//               from abstract reasoning alone, so every report is real.
//   kInJeopardy the abstract proof failed but no concrete violation exists at
//               head: the invariant holds today by accident, not by
//               construction. No diagnostic — but RiskAdvisor weights it and
//               CanaryScope carries it as rollout context.
//   kUnresolved an activated invariant references a config that resolves to
//               neither an entry's output nor a raw JSON file (I004, error).
//
// Spec file shape:
//   {"invariants": [
//     {"name": "shed-below-kill", "kind": "ordering", "severity": "error",
//      "lhs": {"config": "feed/shed.json", "field": "threshold"},
//      "relation": "<=",
//      "rhs": {"config": "feed/kill.json", "field": "threshold"}},
//     {"name": "shard-weights", "kind": "sum", "relation": "==",
//      "terms": [{"config": "a.json", "field": "weight"}, ...],
//      "budget": 100},
//     {"name": "tier-valid", "kind": "membership",
//      "subject": {"config": "a.json", "field": "tier"},
//      "allowed": ["hot", "warm", "cold"]},
//     {"name": "fallback-exists", "kind": "reference",
//      "subject": {"config": "a.json", "field": "fallback"}},
//     {"name": "rollout-inside-eligibility", "kind": "gate_implies",
//      "if_project": "gatekeeper/rollout.json",
//      "then_project": "gatekeeper/eligible.json"},
//     {"name": "rollout-fields", "kind": "gate_context",
//      "project": "gatekeeper/rollout.json",
//      "allowed_fields": ["country", "user_id"]}
//   ]}

#ifndef SRC_ANALYSIS_INVARIANT_H_
#define SRC_ANALYSIS_INVARIANT_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/analysis/witness.h"
#include "src/json/json.h"
#include "src/lang/compiler.h"

namespace configerator {

enum class InvariantKind {
  kOrdering,    // lhs <relation> rhs over two numeric fields.
  kSum,         // sum(terms) <relation> budget.
  kMembership,  // subject's value in an allowed set.
  kReference,   // subject's string value names an existing config.
  kGateImplies,  // every context eligible under if_project is under then_project.
  kGateContext,  // project consults only allowed_fields of the UserContext.
};

std::string_view InvariantKindName(InvariantKind kind);

enum class InvariantRelation { kLt, kLe, kEq, kNe, kGe, kGt };

std::string_view InvariantRelationName(InvariantRelation relation);

// A reference to one exported value: the *output* path of a config (what an
// entry exports, or a raw JSON file's own path) plus a dot path into it
// ("" = the whole value, "thresholds.shed" = nested field).
struct SymbolRef {
  std::string config;
  std::string field;

  std::string Describe() const;  // "feed/shed.json:thresholds.shed".
};

struct InvariantSpec {
  std::string name;
  InvariantKind kind = InvariantKind::kOrdering;
  LintSeverity severity = LintSeverity::kError;
  std::string file;  // Spec file this invariant was declared in.
  int index = 0;     // 0-based position within the file's "invariants" array.

  SymbolRef lhs, rhs;                // kOrdering.
  std::vector<SymbolRef> terms;      // kSum.
  InvariantRelation relation = InvariantRelation::kLe;  // kOrdering + kSum.
  double budget = 0;                 // kSum.
  SymbolRef subject;                 // kMembership + kReference.
  std::vector<Json> allowed;         // kMembership.
  std::string if_project, then_project;      // kGateImplies.
  std::string project;                       // kGateContext.
  std::vector<std::string> allowed_fields;   // kGateContext.

  // Human-readable predicate, e.g.
  // "ordering: feed/shed.json:threshold <= feed/kill.json:threshold".
  std::string Describe() const;

  // Every config/project path the invariant mentions (activation set).
  std::set<std::string> ReferencedConfigs() const;
};

// A parsed collection of invariant spec files. Malformed files or entries
// produce I000 error diagnostics (and the malformed entry is dropped) — a
// registry that fails to parse must block the diff that introduced it.
struct InvariantRegistry {
  std::vector<InvariantSpec> invariants;
  std::vector<LintDiagnostic> diagnostics;  // I000, sorted canonically.

  // Parses one spec file's content and appends its invariants/diagnostics.
  void AddSpecFile(const std::string& file, const std::string& content);

  // Reads every file in `spec_files` through `reader` (unreadable files are
  // skipped: a deleted spec file simply removes its invariants).
  static InvariantRegistry Load(const FileReader& reader,
                                const std::vector<std::string>& spec_files);
};

enum class InvariantStatus { kProven, kViolated, kInJeopardy, kUnresolved };

std::string_view InvariantStatusName(InvariantStatus status);

struct InvariantOutcome {
  std::string name;
  InvariantKind kind = InvariantKind::kOrdering;
  LintSeverity severity = LintSeverity::kError;
  InvariantStatus status = InvariantStatus::kProven;
  std::string predicate;  // InvariantSpec::Describe() of the invariant.
  std::string detail;     // Why: the undecided case, the missing ref, ...
  size_t cases_checked = 0;  // Abstract case combinations evaluated.
  // Populated (and always concretely validated) when status == kViolated.
  Witness witness;
};

struct InvariantReport {
  std::vector<InvariantOutcome> outcomes;  // Activated invariants only.
  // I000 registry errors, I001-I006 violations, I004 dangling references.
  // Violation diagnostics carry the invariant's declared severity; errors
  // block landing through Sandcastle like any other lint error.
  std::vector<LintDiagnostic> diagnostics;
  size_t proven = 0;
  size_t violated = 0;
  size_t in_jeopardy = 0;
  size_t unresolved = 0;
  size_t skipped = 0;  // Out of scope, not evaluated.

  std::string Summary() const;
};

class InvariantChecker {
 public:
  // `reader` resolves both entry sources and raw JSON configs (in the
  // pipeline it is Sandcastle's overlay reader, so the checker sees the tree
  // as it would look with the diff applied).
  explicit InvariantChecker(FileReader reader);

  // Checks every invariant in `registry` whose referenced configs (or
  // declaring spec file) intersect `scope` — the semdiff-pruned blast
  // radius: output paths of recompiled + reanalyzed entries plus every
  // touched path. An empty scope checks everything (full-repo audit mode).
  //
  // An activated invariant pulls *all* of its referenced configs into
  // analysis, including ones outside the scope: joint consistency is a
  // property of the whole relation, not of the touched side alone.
  InvariantReport Check(const InvariantRegistry& registry,
                        const std::set<std::string>& scope = {}) const;

 private:
  FileReader reader_;
};

}  // namespace configerator

#endif  // SRC_ANALYSIS_INVARIANT_H_
