// Provenance graph (see docs/ANALYSIS.md): the repo-wide answer to "where
// does this symbol's value come from, and who consumes it?". Nodes are the
// top-level symbols of every reachable CSL module, the exports of every
// entry, and every Gatekeeper project; edges are the abstract interpreter's
// symbol-level dependency slices (flow-sensitive, cross-module, through the
// shared ImportResolver), the intra-module def-use graph, and — for
// Gatekeeper projects — the restraint types and UserContext fields their
// rules consult, modeled as pseudo-modules ("restraints", "context",
// "laser" with the type/field/project names as symbols).
//
// The graph powers three things the per-file analyses cannot:
//   * line -> symbol attribution (SymbolsAtLine), the input root-cause
//     bisection needs;
//   * reverse reachability (Dependents), the semantic differ's blast radius;
//   * whole-repo gating rules that need global fan-in — G007 (dead export),
//     G009 (stale restraint reference anywhere in the closure), G010
//     (shadowed import).

#ifndef SRC_ANALYSIS_PROVENANCE_H_
#define SRC_ANALYSIS_PROVENANCE_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/absint.h"
#include "src/analysis/diagnostic.h"
#include "src/gatekeeper/restraint.h"
#include "src/lang/ast_cache.h"
#include "src/lang/compiler.h"

namespace configerator {

// One node: a top-level CSL symbol, an entry export (symbol = output path),
// or a Gatekeeper project (symbol = project name).
struct ProvenanceNode {
  std::string file;
  std::string symbol;
  // Source line ranges [first, last] of the defining statements (CSL only).
  std::vector<std::pair<int, int>> def_lines;
  // What this node's value was derived from: module path (or pseudo-module
  // "restraints"/"context"/"laser") -> symbols.
  std::map<std::string, std::set<std::string>> deps;
  // Abstract value summary (CSL symbols only; empty default for projects).
  SymbolSummary summary;
  bool is_export = false;      // Entry export (symbol is the output path).
  bool is_gatekeeper = false;  // Gatekeeper project node.
};

// The UserContext fields a builtin restraint type consults (pseudo-module
// "context:" edges). Unknown types yield an empty list.
std::vector<std::string> ContextFieldsForRestraint(const std::string& type);

class ProvenanceGraph {
 public:
  // Builds the graph rooted at `paths` (entry configs, modules, Gatekeeper
  // specs — non-CSL/non-Gatekeeper paths are ignored), following imports
  // through `reader` transitively. `ast_cache` (optional) dedups parses with
  // other passes over the same closure.
  static ProvenanceGraph Build(const FileReader& reader,
                               const std::vector<std::string>& paths,
                               const RestraintRegistry& registry =
                                   RestraintRegistry::Builtin(),
                               AstCache* ast_cache = nullptr);

  // All nodes, keyed (file, symbol); deterministic order.
  const std::map<std::pair<std::string, std::string>, ProvenanceNode>& nodes()
      const {
    return nodes_;
  }
  const ProvenanceNode* Find(const std::string& file,
                             const std::string& symbol) const;

  // Direct consumers of (file, symbol): nodes whose deps include it.
  std::set<std::pair<std::string, std::string>> Dependents(
      const std::string& file, const std::string& symbol) const;

  // Symbols of `file` whose definition ranges contain `line` (sorted).
  std::vector<std::string> SymbolsAtLine(const std::string& file,
                                         int line) const;

  // Graph-driven gating findings: G007 dead export, G009 stale restraint
  // reference, G010 shadowed import. Sorted canonically.
  const std::vector<LintDiagnostic>& findings() const { return findings_; }

  // False when some import was dynamic or some file unreadable/unparseable:
  // fan-in is then incomplete and G007 is suppressed (the other rules only
  // need local facts and still fire).
  bool sound() const { return sound_; }

 private:
  std::map<std::pair<std::string, std::string>, ProvenanceNode> nodes_;
  // Reverse edges: (file, symbol) -> consumers.
  std::map<std::pair<std::string, std::string>,
           std::set<std::pair<std::string, std::string>>>
      dependents_;
  std::vector<LintDiagnostic> findings_;
  bool sound_ = true;
};

}  // namespace configerator

#endif  // SRC_ANALYSIS_PROVENANCE_H_
