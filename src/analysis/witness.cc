#include "src/analysis/witness.h"

#include <cstring>
#include <utility>

#include "src/util/ddmin.h"
#include "src/util/strings.h"

namespace configerator {

std::string Witness::Describe() const {
  std::string out = predicate;
  if (!valuation.empty()) {
    out += " [";
    for (size_t i = 0; i < valuation.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += valuation[i].first + " = " + valuation[i].second;
    }
    out += "]";
  }
  if (!context.empty()) {
    out += " with context {";
    for (size_t i = 0; i < context.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += context[i].first + "=" + context[i].second;
    }
    out += "}";
  }
  return out;
}

ConcreteEvaluator::ConcreteEvaluator(FileReader reader)
    : reader_(std::move(reader)) {}

const std::optional<Json>& ConcreteEvaluator::ResolveConfig(
    const std::string& config) {
  auto it = cache_.find(config);
  if (it != cache_.end()) {
    return it->second;
  }
  ++evaluations_;
  std::optional<Json> resolved;
  // An entry-produced config: compile the source for real. One entry can
  // export several configs; pick the one whose path matches.
  if (config.ends_with(".json")) {
    std::string entry =
        config.substr(0, config.size() - strlen(".json")) + ".cconf";
    if (reader_(entry).ok()) {
      ConfigCompiler compiler(reader_);
      auto output = compiler.Compile(entry);
      if (output.ok()) {
        for (CompiledConfig& compiled : output->configs) {
          if (compiled.path == config) {
            resolved = std::move(compiled.content);
            break;
          }
        }
      }
    }
  }
  if (!resolved.has_value()) {
    auto content = reader_(config);
    if (content.ok()) {
      auto parsed = Json::Parse(*content);
      if (parsed.ok()) {
        resolved = std::move(*parsed);
      }
    }
  }
  return cache_.emplace(config, std::move(resolved)).first->second;
}

std::optional<Json> ConcreteEvaluator::Field(const std::string& config,
                                             const std::string& dot_path) {
  const std::optional<Json>& root = ResolveConfig(config);
  if (!root.has_value()) {
    return std::nullopt;
  }
  const Json* cursor = &*root;
  size_t pos = 0;
  while (pos < dot_path.size()) {
    size_t dot = dot_path.find('.', pos);
    std::string key = dot == std::string::npos
                          ? dot_path.substr(pos)
                          : dot_path.substr(pos, dot - pos);
    cursor = cursor->Get(key);
    if (cursor == nullptr) {
      return std::nullopt;
    }
    pos = dot == std::string::npos ? dot_path.size() : dot + 1;
  }
  return *cursor;
}

bool ConcreteEvaluator::ConfigExists(const std::string& config) {
  return ResolveConfig(config).has_value();
}

std::string RenderWitnessValue(const Json& value) { return value.Dump(); }

std::vector<size_t> ShrinkSumWitness(const std::vector<double>& values,
                                     double budget, bool strict_exceeds,
                                     int* probes) {
  auto violates = [&](const std::vector<size_t>& kept) {
    double sum = 0;
    for (size_t i : kept) {
      sum += values[i];
    }
    // strict_exceeds: the invariant was `sum < budget`, so any sum >= budget
    // violates; otherwise the invariant was `sum <= budget`.
    return strict_exceeds ? sum >= budget : sum > budget;
  };
  return DdminSubset(values.size(), violates, /*max_probes=*/256, probes);
}

}  // namespace configerator
