#include "src/analysis/lint.h"

#include <algorithm>

#include "src/analysis/rules.h"
#include "src/json/json.h"

namespace configerator {

ConfigLint::ConfigLint(FileReader reader, const RestraintRegistry* registry)
    : reader_(std::move(reader)), registry_(registry) {}

std::vector<LintDiagnostic> ConfigLint::LintFile(
    const std::string& path, const std::string& content) const {
  if (path.ends_with(".cconf") || path.ends_with(".cinc")) {
    return LintSource(path, content);
  }
  if (path.starts_with("gatekeeper/") && path.ends_with(".json")) {
    return LintGatekeeper(path, content);
  }
  return {};
}

std::vector<LintDiagnostic> ConfigLint::LintSource(
    const std::string& path, const std::string& content) const {
  std::vector<LintDiagnostic> diags;
  auto module = ast_cache_ != nullptr
                    ? ast_cache_->GetOrParse(path, content, &diags)
                    : ParseCsl(content, path, &diags);
  if (!module.ok()) {
    // The compiler rejects the file with the full parse error; lint only
    // records that analysis could not run.
    LintDiagnostic diag;
    diag.rule_id = "L000";
    diag.severity = LintSeverity::kError;
    diag.file = path;
    diag.message = "file does not parse: " + module.status().message();
    diags.push_back(std::move(diag));
    return diags;
  }
  analysis::RunLanguageRules(**module, reader_, &diags, ast_cache_);
  SortDiagnostics(&diags);
  return diags;
}

std::vector<LintDiagnostic> ConfigLint::LintGatekeeper(
    const std::string& path, const std::string& content) const {
  std::vector<LintDiagnostic> diags;
  auto config = Json::Parse(content);
  if (!config.ok()) {
    // Malformed JSON is Sandcastle's raw validators' finding, not lint's.
    return diags;
  }
  analysis::RunGatingRules(path, *config, *registry_, &diags);
  return diags;
}

const std::vector<LintRuleInfo>& ConfigLint::Rules() {
  static const std::vector<LintRuleInfo>* rules = new std::vector<LintRuleInfo>{
      {"L000", "parse-error", LintSeverity::kError,
       "source file does not parse; language analysis could not run"},
      {"L001", "undefined-name", LintSeverity::kError,
       "name is never defined in any reachable scope, import, or builtin"},
      {"L002", "use-before-def", LintSeverity::kError,
       "module-level use executes before the name's definition"},
      {"L003", "unused-binding", LintSeverity::kWarning,
       "binding is written but never read"},
      {"L004", "unused-import", LintSeverity::kWarning,
       "imported symbol (or whole imported module) is never used"},
      {"L005", "duplicate-dict-key", LintSeverity::kError,
       "dict literal repeats a constant key; the earlier value is dead"},
      {"L006", "shadowed-builtin", LintSeverity::kWarning,
       "binding hides a builtin function"},
      {"L007", "unreachable-code", LintSeverity::kWarning,
       "statement can never execute (follows return/break/continue)"},
      {"L008", "call-arity", LintSeverity::kError,
       "call does not match the known function definition's signature"},
      {"L009", "constant-condition", LintSeverity::kWarning,
       "if/ternary condition is a literal, so one branch is dead"},
      {"G001", "contradictory-restraints", LintSeverity::kError,
       "a conjunction contains a restraint and its own negation"},
      {"G002", "subsumed-rule", LintSeverity::kWarning,
       "rule follows an always-passing rule and can never be reached"},
      {"G003", "dead-rule", LintSeverity::kWarning,
       "rule can never pass (always-false restraint or 0% sampling)"},
      {"G004", "unknown-restraint-type", LintSeverity::kError,
       "restraint type is not registered in the RestraintRegistry"},
      {"G005", "duplicate-restraint", LintSeverity::kWarning,
       "identical restraint repeated inside one conjunction"},
      {"G006", "vacuous-bucket", LintSeverity::kWarning,
       "id_mod/hash_range bucket spans all users and filters nothing"},
      {"G007", "dead-export", LintSeverity::kWarning,
       "module symbol has no consumer anywhere in the repository"},
      {"G008", "unreachable-branch", LintSeverity::kWarning,
       "branch condition is statically decided under every schema-valid "
       "context (via cross-module constant flow)"},
      {"G009", "stale-restraint-reference", LintSeverity::kError,
       "a Gatekeeper project in the analyzed closure references a restraint "
       "type no longer in the RestraintRegistry"},
      {"G010", "shadowed-import", LintSeverity::kError,
       "a later import silently rebinds a name an earlier import already "
       "bound (star-import surface growth hazard)"},
  };
  return *rules;
}

}  // namespace configerator
