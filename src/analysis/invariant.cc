#include "src/analysis/invariant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "src/analysis/absint.h"
#include "src/analysis/provenance.h"
#include "src/gatekeeper/compile.h"
#include "src/util/ddmin.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Abstract case combinations evaluated per invariant before falling back to
// concrete validation (branch-arm cross products can explode).
constexpr size_t kMaxCasePairs = 64;
// Concrete contexts enumerated per gatekeeper invariant.
constexpr size_t kMaxGateContexts = 512;

}  // namespace

// ---- Names and renders ------------------------------------------------------

std::string_view InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kOrdering:
      return "ordering";
    case InvariantKind::kSum:
      return "sum";
    case InvariantKind::kMembership:
      return "membership";
    case InvariantKind::kReference:
      return "reference";
    case InvariantKind::kGateImplies:
      return "gate_implies";
    case InvariantKind::kGateContext:
      return "gate_context";
  }
  return "unknown";
}

std::string_view InvariantRelationName(InvariantRelation relation) {
  switch (relation) {
    case InvariantRelation::kLt:
      return "<";
    case InvariantRelation::kLe:
      return "<=";
    case InvariantRelation::kEq:
      return "==";
    case InvariantRelation::kNe:
      return "!=";
    case InvariantRelation::kGe:
      return ">=";
    case InvariantRelation::kGt:
      return ">";
  }
  return "?";
}

std::string_view InvariantStatusName(InvariantStatus status) {
  switch (status) {
    case InvariantStatus::kProven:
      return "proven";
    case InvariantStatus::kViolated:
      return "violated";
    case InvariantStatus::kInJeopardy:
      return "in-jeopardy";
    case InvariantStatus::kUnresolved:
      return "unresolved";
  }
  return "unknown";
}

std::string SymbolRef::Describe() const {
  return field.empty() ? config : config + ":" + field;
}

std::string InvariantSpec::Describe() const {
  std::string out(InvariantKindName(kind));
  out += ": ";
  switch (kind) {
    case InvariantKind::kOrdering:
      out += lhs.Describe();
      out += " ";
      out += InvariantRelationName(relation);
      out += " " + rhs.Describe();
      break;
    case InvariantKind::kSum: {
      out += "sum(";
      for (size_t i = 0; i < terms.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += terms[i].Describe();
      }
      out += ") ";
      out += InvariantRelationName(relation);
      out += StrFormat(" %g", budget);
      break;
    }
    case InvariantKind::kMembership: {
      out += subject.Describe() + " in {";
      for (size_t i = 0; i < allowed.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += allowed[i].Dump();
      }
      out += "}";
      break;
    }
    case InvariantKind::kReference:
      out += subject.Describe() + " names an existing config";
      break;
    case InvariantKind::kGateImplies:
      out += if_project + " implies " + then_project;
      break;
    case InvariantKind::kGateContext: {
      out += project + " consults only {";
      for (size_t i = 0; i < allowed_fields.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += allowed_fields[i];
      }
      out += "}";
      break;
    }
  }
  return out;
}

std::set<std::string> InvariantSpec::ReferencedConfigs() const {
  std::set<std::string> out;
  switch (kind) {
    case InvariantKind::kOrdering:
      out.insert(lhs.config);
      out.insert(rhs.config);
      break;
    case InvariantKind::kSum:
      for (const SymbolRef& term : terms) {
        out.insert(term.config);
      }
      break;
    case InvariantKind::kMembership:
    case InvariantKind::kReference:
      out.insert(subject.config);
      break;
    case InvariantKind::kGateImplies:
      out.insert(if_project);
      out.insert(then_project);
      break;
    case InvariantKind::kGateContext:
      out.insert(project);
      break;
  }
  return out;
}

// ---- Registry parsing -------------------------------------------------------

namespace {

std::optional<InvariantRelation> ParseRelation(const std::string& text) {
  if (text == "<") return InvariantRelation::kLt;
  if (text == "<=") return InvariantRelation::kLe;
  if (text == "==") return InvariantRelation::kEq;
  if (text == "!=") return InvariantRelation::kNe;
  if (text == ">=") return InvariantRelation::kGe;
  if (text == ">") return InvariantRelation::kGt;
  return std::nullopt;
}

std::optional<SymbolRef> ParseRef(const Json* json) {
  if (json == nullptr || !json->is_object()) {
    return std::nullopt;
  }
  const Json* config = json->Get("config");
  if (config == nullptr || !config->is_string() ||
      config->as_string().empty()) {
    return std::nullopt;
  }
  SymbolRef ref;
  ref.config = config->as_string();
  const Json* field = json->Get("field");
  if (field != nullptr) {
    if (!field->is_string()) {
      return std::nullopt;
    }
    ref.field = field->as_string();
  }
  return ref;
}

// Returns an error message, or "" on success.
std::string ParseInvariant(const Json& json, InvariantSpec* spec) {
  const Json* name = json.Get("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return "missing or empty 'name'";
  }
  spec->name = name->as_string();
  const Json* kind = json.Get("kind");
  if (kind == nullptr || !kind->is_string()) {
    return "missing 'kind'";
  }
  const std::string& kind_text = kind->as_string();
  if (kind_text == "ordering") {
    spec->kind = InvariantKind::kOrdering;
  } else if (kind_text == "sum") {
    spec->kind = InvariantKind::kSum;
  } else if (kind_text == "membership") {
    spec->kind = InvariantKind::kMembership;
  } else if (kind_text == "reference") {
    spec->kind = InvariantKind::kReference;
  } else if (kind_text == "gate_implies") {
    spec->kind = InvariantKind::kGateImplies;
  } else if (kind_text == "gate_context") {
    spec->kind = InvariantKind::kGateContext;
  } else {
    return "unknown kind '" + kind_text + "'";
  }
  const Json* severity = json.Get("severity");
  if (severity != nullptr) {
    if (!severity->is_string() || (severity->as_string() != "error" &&
                                   severity->as_string() != "warning")) {
      return "severity must be \"error\" or \"warning\"";
    }
    spec->severity = severity->as_string() == "error" ? LintSeverity::kError
                                                      : LintSeverity::kWarning;
  }
  const Json* relation = json.Get("relation");
  if (relation != nullptr) {
    if (!relation->is_string()) {
      return "relation must be a string";
    }
    auto parsed = ParseRelation(relation->as_string());
    if (!parsed.has_value()) {
      return "unknown relation '" + relation->as_string() + "'";
    }
    spec->relation = *parsed;
  }

  switch (spec->kind) {
    case InvariantKind::kOrdering: {
      auto lhs = ParseRef(json.Get("lhs"));
      auto rhs = ParseRef(json.Get("rhs"));
      if (!lhs.has_value() || !rhs.has_value()) {
        return "ordering needs 'lhs' and 'rhs' refs ({\"config\", \"field\"})";
      }
      if (relation == nullptr) {
        return "ordering needs a 'relation'";
      }
      spec->lhs = std::move(*lhs);
      spec->rhs = std::move(*rhs);
      break;
    }
    case InvariantKind::kSum: {
      const Json* terms = json.Get("terms");
      if (terms == nullptr || !terms->is_array() || terms->size() == 0) {
        return "sum needs a non-empty 'terms' list";
      }
      for (const Json& term : terms->as_array()) {
        auto ref = ParseRef(&term);
        if (!ref.has_value()) {
          return "sum term is not a valid ref ({\"config\", \"field\"})";
        }
        spec->terms.push_back(std::move(*ref));
      }
      const Json* budget = json.Get("budget");
      if (budget == nullptr || !budget->is_number()) {
        return "sum needs a numeric 'budget'";
      }
      spec->budget = budget->as_double();
      break;
    }
    case InvariantKind::kMembership: {
      auto subject = ParseRef(json.Get("subject"));
      if (!subject.has_value()) {
        return "membership needs a 'subject' ref";
      }
      spec->subject = std::move(*subject);
      const Json* allowed = json.Get("allowed");
      if (allowed == nullptr || !allowed->is_array() || allowed->size() == 0) {
        return "membership needs a non-empty 'allowed' list";
      }
      for (const Json& value : allowed->as_array()) {
        if (value.is_array() || value.is_object()) {
          return "membership 'allowed' values must be scalars";
        }
        spec->allowed.push_back(value);
      }
      break;
    }
    case InvariantKind::kReference: {
      auto subject = ParseRef(json.Get("subject"));
      if (!subject.has_value()) {
        return "reference needs a 'subject' ref";
      }
      spec->subject = std::move(*subject);
      break;
    }
    case InvariantKind::kGateImplies: {
      const Json* if_project = json.Get("if_project");
      const Json* then_project = json.Get("then_project");
      if (if_project == nullptr || !if_project->is_string() ||
          then_project == nullptr || !then_project->is_string()) {
        return "gate_implies needs 'if_project' and 'then_project' paths";
      }
      spec->if_project = if_project->as_string();
      spec->then_project = then_project->as_string();
      break;
    }
    case InvariantKind::kGateContext: {
      const Json* project = json.Get("project");
      if (project == nullptr || !project->is_string()) {
        return "gate_context needs a 'project' path";
      }
      spec->project = project->as_string();
      const Json* fields = json.Get("allowed_fields");
      if (fields == nullptr || !fields->is_array()) {
        return "gate_context needs an 'allowed_fields' list";
      }
      for (const Json& field : fields->as_array()) {
        if (!field.is_string()) {
          return "allowed_fields entries must be strings";
        }
        spec->allowed_fields.push_back(field.as_string());
      }
      break;
    }
  }
  return "";
}

LintDiagnostic MakeSpecError(const std::string& file, int line,
                             std::string message) {
  LintDiagnostic diag;
  diag.rule_id = "I000";
  diag.severity = LintSeverity::kError;
  diag.file = file;
  diag.line = line;
  diag.message = std::move(message);
  diag.suggestion = "fix the invariant spec entry";
  return diag;
}

}  // namespace

void InvariantRegistry::AddSpecFile(const std::string& file,
                                    const std::string& content) {
  auto parsed = Json::Parse(content);
  if (!parsed.ok()) {
    diagnostics.push_back(MakeSpecError(
        file, 0,
        "invariant spec does not parse: " + parsed.status().ToString()));
    return;
  }
  const Json* list = parsed->Get("invariants");
  if (list == nullptr || !list->is_array()) {
    diagnostics.push_back(
        MakeSpecError(file, 0, "invariant spec needs an 'invariants' array"));
    return;
  }
  int index = 0;
  for (const Json& entry : list->as_array()) {
    InvariantSpec spec;
    spec.file = file;
    spec.index = index;
    std::string error =
        entry.is_object() ? ParseInvariant(entry, &spec) : "entry is not an object";
    if (!error.empty()) {
      // Line = 1-based position in the array: deterministic ordering for
      // multiple malformed entries in one file.
      diagnostics.push_back(MakeSpecError(
          file, index + 1,
          StrFormat("invariant #%d%s: %s", index,
                    spec.name.empty() ? "" : (" ('" + spec.name + "')").c_str(),
                    error.c_str())));
    } else {
      invariants.push_back(std::move(spec));
    }
    ++index;
  }
}

InvariantRegistry InvariantRegistry::Load(
    const FileReader& reader, const std::vector<std::string>& spec_files) {
  InvariantRegistry registry;
  for (const std::string& file : spec_files) {
    auto content = reader(file);
    if (content.ok()) {
      registry.AddSpecFile(file, *content);
    }
  }
  SortDiagnostics(&registry.diagnostics);
  return registry;
}

// ---- Abstract evaluation ----------------------------------------------------

namespace {

// A numeric view of one field's lattice facts.
struct NumInterval {
  bool known = false;  // Pinned to a numeric kind with usable bounds.
  bool maybe_absent = false;
  double lo = -kInf;
  double hi = kInf;
};

NumInterval IntervalOf(const AbstractFieldFacts& facts) {
  NumInterval out;
  out.maybe_absent = facts.maybe_absent;
  if (facts.constant.has_value() && facts.constant->is_number()) {
    out.known = true;
    out.lo = out.hi = facts.constant->as_double();
    return out;
  }
  if (!facts.any && facts.kinds != 0 &&
      (facts.kinds & ~(kAbsInt | kAbsDouble)) == 0) {
    out.known = true;
    if (facts.int_min.has_value()) {
      out.lo = static_cast<double>(*facts.int_min);
    }
    if (facts.int_max.has_value()) {
      out.hi = static_cast<double>(*facts.int_max);
    }
  }
  return out;
}

enum class Tri { kHolds, kFails, kUnknown };

InvariantRelation Negate(InvariantRelation r) {
  switch (r) {
    case InvariantRelation::kLt:
      return InvariantRelation::kGe;
    case InvariantRelation::kLe:
      return InvariantRelation::kGt;
    case InvariantRelation::kEq:
      return InvariantRelation::kNe;
    case InvariantRelation::kNe:
      return InvariantRelation::kEq;
    case InvariantRelation::kGe:
      return InvariantRelation::kLt;
    case InvariantRelation::kGt:
      return InvariantRelation::kLe;
  }
  return r;
}

// Does the relation hold for EVERY (a, b) in the intervals?
bool HoldsAlways(const NumInterval& a, InvariantRelation r,
                 const NumInterval& b) {
  switch (r) {
    case InvariantRelation::kLt:
      return a.hi < b.lo;
    case InvariantRelation::kLe:
      return a.hi <= b.lo;
    case InvariantRelation::kEq:
      return std::isfinite(a.lo) && a.lo == a.hi && b.lo == b.hi &&
             a.lo == b.lo;
    case InvariantRelation::kNe:
      return a.hi < b.lo || a.lo > b.hi;
    case InvariantRelation::kGe:
      return a.lo >= b.hi;
    case InvariantRelation::kGt:
      return a.lo > b.hi;
  }
  return false;
}

Tri DecideRelation(const NumInterval& a, InvariantRelation r,
                   const NumInterval& b) {
  if (!a.known || !b.known || a.maybe_absent || b.maybe_absent) {
    return Tri::kUnknown;
  }
  if (HoldsAlways(a, r, b)) {
    return Tri::kHolds;
  }
  if (HoldsAlways(a, Negate(r), b)) {
    return Tri::kFails;
  }
  return Tri::kUnknown;
}

bool RelationHoldsConcrete(double a, InvariantRelation r, double b) {
  switch (r) {
    case InvariantRelation::kLt:
      return a < b;
    case InvariantRelation::kLe:
      return a <= b;
    case InvariantRelation::kEq:
      return a == b;
    case InvariantRelation::kNe:
      return a != b;
    case InvariantRelation::kGe:
      return a >= b;
    case InvariantRelation::kGt:
      return a > b;
  }
  return false;
}

// Loose scalar equality between a lattice constant and a spec literal
// (ints and doubles compare numerically).
bool ValueMatchesJson(const Value& value, const Json& json) {
  if (value.is_string() && json.is_string()) {
    return value.as_string() == json.as_string();
  }
  if (value.is_bool() && json.is_bool()) {
    return value.as_bool() == json.as_bool();
  }
  if (value.is_number() && json.is_number()) {
    return value.as_double() == json.as_double();
  }
  if (value.is_null() && json.is_null()) {
    return true;
  }
  return false;
}

bool JsonScalarEqual(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    return a.as_double() == b.as_double();
  }
  return a == b;
}

void FlattenJsonFacts(const Json& json, const std::string& prefix, int depth,
                      AbstractFieldMap* out) {
  constexpr int kMaxDepth = 6;
  constexpr size_t kMaxEntries = 256;
  if (out->size() >= kMaxEntries) {
    return;
  }
  AbstractFieldFacts& facts = (*out)[prefix];
  facts.any = false;
  facts.maybe_absent = false;
  if (json.is_null()) {
    facts.kinds = kAbsNull;
    facts.constant = Value::Null();
  } else if (json.is_bool()) {
    facts.kinds = kAbsBool;
    facts.constant = Value::Bool(json.as_bool());
  } else if (json.is_int()) {
    facts.kinds = kAbsInt;
    facts.constant = Value::Int(json.as_int());
    facts.int_min = facts.int_max = json.as_int();
  } else if (json.is_double()) {
    facts.kinds = kAbsDouble;
    facts.constant = Value::Double(json.as_double());
  } else if (json.is_string()) {
    facts.kinds = kAbsString;
    facts.constant = Value::Str(json.as_string());
  } else if (json.is_array()) {
    facts.kinds = kAbsList;
  } else if (json.is_object()) {
    facts.kinds = kAbsDict;
    if (depth < kMaxDepth) {
      for (const auto& [key, child] : json.as_object()) {
        std::string path = prefix.empty() ? key : prefix + "." + key;
        FlattenJsonFacts(child, path, depth + 1, out);
      }
    }
  }
}

// The abstract view of one config: every export case (one per `export` call
// site that produced this output path — the branch-arm case basis), or a
// single exact case from a raw JSON file.
struct AbstractCases {
  bool resolved = false;
  std::vector<AbstractFieldMap> cases;
};

// Resolves and caches abstract facts per config path.
class AbstractResolver {
 public:
  explicit AbstractResolver(const FileReader& reader)
      : reader_(reader), absint_(reader) {}

  const AbstractCases& Resolve(const std::string& config) {
    auto it = cache_.find(config);
    if (it != cache_.end()) {
      return it->second;
    }
    AbstractCases out;
    if (config.ends_with(".json")) {
      std::string entry =
          config.substr(0, config.size() - strlen(".json")) + ".cconf";
      auto content = reader_(entry);
      if (content.ok()) {
        AbsintResult result = absint_.Analyze(entry, *content);
        for (ExportSlice& slice : result.exports) {
          if (slice.path == config) {
            out.cases.push_back(std::move(slice.fields));
          }
        }
        out.resolved = !out.cases.empty();
      }
    }
    if (!out.resolved) {
      auto content = reader_(config);
      if (content.ok()) {
        auto parsed = Json::Parse(*content);
        if (parsed.ok()) {
          AbstractFieldMap fields;
          FlattenJsonFacts(*parsed, "", 0, &fields);
          out.cases.push_back(std::move(fields));
          out.resolved = true;
        }
      }
    }
    return cache_.emplace(config, std::move(out)).first->second;
  }

 private:
  const FileReader& reader_;
  AbstractInterpreter absint_;
  std::map<std::string, AbstractCases> cache_;
};

// Facts for `ref` in one case; a missing field reads as maybe-absent unknown.
AbstractFieldFacts FactsFor(const AbstractFieldMap& fields,
                            const SymbolRef& ref) {
  auto it = fields.find(ref.field);
  if (it != fields.end()) {
    return it->second;
  }
  AbstractFieldFacts absent;
  absent.maybe_absent = true;
  return absent;
}

// Interval join of a ref over all of its config's cases.
NumInterval JoinInterval(const AbstractCases& cases, const SymbolRef& ref) {
  NumInterval out;
  bool first = true;
  for (const AbstractFieldMap& fields : cases.cases) {
    NumInterval one = IntervalOf(FactsFor(fields, ref));
    if (!one.known) {
      return NumInterval{};  // Unknown anywhere -> unknown overall.
    }
    if (first) {
      out = one;
      first = false;
    } else {
      out.lo = std::min(out.lo, one.lo);
      out.hi = std::max(out.hi, one.hi);
      out.maybe_absent = out.maybe_absent || one.maybe_absent;
    }
  }
  out.known = !first;
  return out;
}

// ---- Gatekeeper predicates --------------------------------------------------

// One axis of the mined context space: a field plus candidate values (index 0
// is always the default). Fields are UserContext members; string/numeric
// attributes use "sattr:<name>" / "nattr:<name>".
struct ContextAxis {
  std::string field;
  std::vector<Json> values;  // values[0] = default.
};

struct GateProject {
  bool resolved = false;
  Json json;
  CompiledProjectSpec spec;
};

GateProject LoadProject(const FileReader& reader, const std::string& path) {
  GateProject out;
  auto content = reader(path);
  if (!content.ok()) {
    return out;
  }
  auto parsed = Json::Parse(*content);
  if (!parsed.ok()) {
    return out;
  }
  auto compiled = CompileProjectSpec(*parsed);
  if (!compiled.ok()) {
    return out;
  }
  out.json = std::move(*parsed);
  out.spec = std::move(*compiled);
  out.resolved = true;
  return out;
}

// A context is eligible when any rule with a positive pass probability
// matches — sampling percentages roll out over time, so eligibility (not the
// die) is the property invariants reason about.
bool Eligible(const CompiledProjectSpec& spec, const UserContext& user) {
  for (const CompiledRuleSpec& rule : spec.rules) {
    if (rule.pass_probability > 0 && RuleMatches(rule, user, nullptr)) {
      return true;
    }
  }
  return false;
}

void AddAxisValue(std::map<std::string, std::vector<Json>>* axes,
                  const std::string& field, Json value) {
  std::vector<Json>& values = (*axes)[field];
  for (const Json& existing : values) {
    if (JsonScalarEqual(existing, value)) {
      return;
    }
  }
  values.push_back(std::move(value));
}

// Mines candidate context values from a project's restraint parameters:
// member values, thresholds +/- 1, mod-bucket representatives — the boundary
// inputs where the project's decision can flip.
void MineAxes(const Json& project,
              std::map<std::string, std::vector<Json>>* axes) {
  const Json* rules = project.Get("rules");
  if (rules == nullptr || !rules->is_array()) {
    return;
  }
  for (const Json& rule : rules->as_array()) {
    const Json* restraints = rule.Get("restraints");
    if (restraints == nullptr || !restraints->is_array()) {
      continue;
    }
    for (const Json& restraint : restraints->as_array()) {
      const Json* type = restraint.Get("type");
      if (type == nullptr || !type->is_string()) {
        continue;
      }
      const std::string& type_name = type->as_string();
      const Json* params = restraint.Get("params");
      auto string_list = [&](const char* key, const std::string& field) {
        const Json* list = params != nullptr ? params->Get(key) : nullptr;
        if (list != nullptr && list->is_array()) {
          for (const Json& value : list->as_array()) {
            if (value.is_string()) {
              AddAxisValue(axes, field, value);
            }
          }
        }
      };
      auto int_boundary = [&](const char* key, const std::string& field) {
        const Json* value = params != nullptr ? params->Get(key) : nullptr;
        if (value != nullptr && value->is_number()) {
          int64_t v = value->as_int();
          AddAxisValue(axes, field, Json(v - 1));
          AddAxisValue(axes, field, Json(v));
          AddAxisValue(axes, field, Json(v + 1));
        }
      };
      if (type_name == "employee") {
        AddAxisValue(axes, "is_employee", Json(true));
      } else if (type_name == "country") {
        string_list("countries", "country");
      } else if (type_name == "locale") {
        string_list("locales", "locale");
      } else if (type_name == "app") {
        string_list("apps", "app");
      } else if (type_name == "device") {
        string_list("devices", "device");
      } else if (type_name == "platform") {
        string_list("platforms", "platform");
      } else if (type_name == "min_friend_count" ||
                 type_name == "max_friend_count") {
        int_boundary("count", "friend_count");
      } else if (type_name == "min_account_age") {
        int_boundary("days", "account_age_days");
      } else if (type_name == "new_user") {
        int_boundary("max_days", "account_age_days");
      } else if (type_name == "min_app_version") {
        int_boundary("version", "app_version");
      } else if (type_name == "id_in") {
        const Json* ids = params != nullptr ? params->Get("ids") : nullptr;
        if (ids != nullptr && ids->is_array()) {
          int64_t max_id = 0;
          size_t taken = 0;
          for (const Json& id : ids->as_array()) {
            if (id.is_int()) {
              max_id = std::max(max_id, id.as_int());
              if (taken++ < 4) {
                AddAxisValue(axes, "user_id", id);
              }
            }
          }
          AddAxisValue(axes, "user_id", Json(max_id + 1));
        }
      } else if (type_name == "id_mod") {
        const Json* lo = params != nullptr ? params->Get("lo") : nullptr;
        const Json* hi = params != nullptr ? params->Get("hi") : nullptr;
        const Json* mod = params != nullptr ? params->Get("mod") : nullptr;
        if (lo != nullptr && lo->is_int()) {
          AddAxisValue(axes, "user_id", *lo);
        }
        if (hi != nullptr && hi->is_int()) {
          AddAxisValue(axes, "user_id", *hi);
        }
        if (mod != nullptr && mod->is_int()) {
          AddAxisValue(axes, "user_id", *mod);
        }
      } else if (type_name == "hash_range") {
        for (int64_t id = 1; id <= 8; ++id) {
          AddAxisValue(axes, "user_id", Json(id));
        }
      } else if (type_name == "string_attr_equals") {
        const Json* attr = params != nullptr ? params->Get("attr") : nullptr;
        const Json* value = params != nullptr ? params->Get("value") : nullptr;
        if (attr != nullptr && attr->is_string() && value != nullptr &&
            value->is_string()) {
          AddAxisValue(axes, "sattr:" + attr->as_string(), *value);
        }
      } else if (type_name == "has_attr") {
        const Json* attr = params != nullptr ? params->Get("attr") : nullptr;
        if (attr != nullptr && attr->is_string()) {
          AddAxisValue(axes, "sattr:" + attr->as_string(), Json("present"));
        }
      } else if (type_name == "numeric_attr_gt" ||
                 type_name == "numeric_attr_lt") {
        const Json* attr = params != nullptr ? params->Get("attr") : nullptr;
        const Json* threshold =
            params != nullptr ? params->Get("threshold") : nullptr;
        if (attr != nullptr && attr->is_string() && threshold != nullptr &&
            threshold->is_number()) {
          double t = threshold->as_double();
          std::string field = "nattr:" + attr->as_string();
          AddAxisValue(axes, field, Json(t - 1));
          AddAxisValue(axes, field, Json(t + 1));
        }
      }
      // "always" and "laser" mine nothing: the former reads no context, the
      // latter reads a store invariants do not model (it evaluates false
      // here, which is the conservative no-laser environment).
    }
  }
}

Json DefaultAxisValue(const std::string& field) {
  if (field == "is_employee") {
    return Json(false);
  }
  if (field == "user_id" || field == "friend_count" ||
      field == "account_age_days" || field == "app_version") {
    return Json(static_cast<int64_t>(0));
  }
  if (field.starts_with("sattr:") || field.starts_with("nattr:")) {
    return Json();  // null = attribute absent.
  }
  return Json("");  // String context fields default to empty.
}

std::vector<ContextAxis> BuildAxes(
    const std::map<std::string, std::vector<Json>>& mined) {
  std::vector<ContextAxis> axes;
  for (const auto& [field, values] : mined) {
    ContextAxis axis;
    axis.field = field;
    axis.values.push_back(DefaultAxisValue(field));
    for (const Json& value : values) {
      bool duplicate = false;
      for (const Json& existing : axis.values) {
        if (JsonScalarEqual(existing, value)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        axis.values.push_back(value);
      }
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

UserContext BuildContext(const std::vector<ContextAxis>& axes,
                         const std::vector<size_t>& choice) {
  UserContext user;
  for (size_t i = 0; i < axes.size(); ++i) {
    const std::string& field = axes[i].field;
    const Json& value = axes[i].values[choice[i]];
    if (field == "country" && value.is_string()) {
      user.country = value.as_string();
    } else if (field == "locale" && value.is_string()) {
      user.locale = value.as_string();
    } else if (field == "app" && value.is_string()) {
      user.app = value.as_string();
    } else if (field == "device" && value.is_string()) {
      user.device = value.as_string();
    } else if (field == "platform" && value.is_string()) {
      user.platform = value.as_string();
    } else if (field == "is_employee" && value.is_bool()) {
      user.is_employee = value.as_bool();
    } else if (field == "user_id" && value.is_number()) {
      user.user_id = value.as_int();
    } else if (field == "friend_count" && value.is_number()) {
      user.friend_count = static_cast<int32_t>(value.as_int());
    } else if (field == "account_age_days" && value.is_number()) {
      user.account_age_days = static_cast<int32_t>(value.as_int());
    } else if (field == "app_version" && value.is_number()) {
      user.app_version = static_cast<int32_t>(value.as_int());
    } else if (field.starts_with("sattr:") && value.is_string()) {
      user.string_attrs[field.substr(strlen("sattr:"))] = value.as_string();
    } else if (field.starts_with("nattr:") && value.is_number()) {
      user.numeric_attrs[field.substr(strlen("nattr:"))] = value.as_double();
    }
  }
  return user;
}

std::vector<std::pair<std::string, std::string>> RenderContext(
    const std::vector<ContextAxis>& axes, const std::vector<size_t>& choice) {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = 0; i < axes.size(); ++i) {
    if (choice[i] != 0) {
      out.emplace_back(axes[i].field, axes[i].values[choice[i]].Dump());
    }
  }
  return out;
}

// Syntactic implication: every positive if-rule's restraint set is a
// superset of some positive then-rule's (a conjunction with more terms is
// stronger), restraints keyed by their full JSON spec.
bool SyntacticImplication(const Json& if_project, const Json& then_project) {
  auto rule_keys = [](const Json& project) {
    std::vector<std::pair<double, std::set<std::string>>> out;
    const Json* rules = project.Get("rules");
    if (rules == nullptr || !rules->is_array()) {
      return out;
    }
    for (const Json& rule : rules->as_array()) {
      const Json* pass = rule.Get("pass_probability");
      double p = pass != nullptr && pass->is_number() ? pass->as_double() : 0;
      std::set<std::string> keys;
      const Json* restraints = rule.Get("restraints");
      if (restraints != nullptr && restraints->is_array()) {
        for (const Json& restraint : restraints->as_array()) {
          keys.insert(restraint.Dump());
        }
      }
      out.emplace_back(p, std::move(keys));
    }
    return out;
  };
  auto if_rules = rule_keys(if_project);
  auto then_rules = rule_keys(then_project);
  for (const auto& [if_p, if_keys] : if_rules) {
    if (if_p <= 0) {
      continue;
    }
    bool covered = false;
    for (const auto& [then_p, then_keys] : then_rules) {
      if (then_p <= 0) {
        continue;
      }
      if (std::includes(if_keys.begin(), if_keys.end(), then_keys.begin(),
                        then_keys.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return false;
    }
  }
  return true;
}

// ---- Diagnostics ------------------------------------------------------------

std::string_view RuleIdFor(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kOrdering:
      return "I001";
    case InvariantKind::kSum:
      return "I002";
    case InvariantKind::kMembership:
      return "I003";
    case InvariantKind::kReference:
      return "I004";
    case InvariantKind::kGateImplies:
      return "I005";
    case InvariantKind::kGateContext:
      return "I006";
  }
  return "I000";
}

LintDiagnostic ViolationDiagnostic(const InvariantSpec& spec,
                                   const Witness& witness) {
  LintDiagnostic diag;
  diag.rule_id = std::string(RuleIdFor(spec.kind));
  diag.severity = spec.severity;
  diag.file = spec.file;
  diag.line = spec.index + 1;
  diag.message = "invariant '" + spec.name + "' violated (" + spec.Describe() +
                 "); witness: " + witness.Describe();
  diag.suggestion = "fix the violating config values or update the invariant";
  return diag;
}

LintDiagnostic UnresolvedDiagnostic(const InvariantSpec& spec,
                                    const std::string& config) {
  LintDiagnostic diag;
  diag.rule_id = "I004";
  diag.severity = LintSeverity::kError;
  diag.file = spec.file;
  diag.line = spec.index + 1;
  diag.message = "invariant '" + spec.name + "' references config '" + config +
                 "' that resolves to neither an entry output nor a JSON "
                 "config";
  diag.suggestion = "restore the config or update the invariant";
  return diag;
}

}  // namespace

// ---- Report -----------------------------------------------------------------

std::string InvariantReport::Summary() const {
  return StrFormat(
      "invariants: %zu proven, %zu violated, %zu in-jeopardy, %zu "
      "unresolved, %zu skipped",
      proven, violated, in_jeopardy, unresolved, skipped);
}

// ---- Checker ----------------------------------------------------------------

InvariantChecker::InvariantChecker(FileReader reader)
    : reader_(std::move(reader)) {}

InvariantReport InvariantChecker::Check(const InvariantRegistry& registry,
                                        const std::set<std::string>& scope) const {
  InvariantReport report;
  report.diagnostics = registry.diagnostics;  // I000 registry errors.

  AbstractResolver resolver(reader_);
  ConcreteEvaluator concrete(reader_);

  for (const InvariantSpec& spec : registry.invariants) {
    // Activation: the blast radius touches a referenced config, or the spec
    // file itself. Empty scope = full audit.
    if (!scope.empty() && scope.count(spec.file) == 0) {
      std::set<std::string> refs = spec.ReferencedConfigs();
      bool active = false;
      for (const std::string& ref : refs) {
        if (scope.count(ref) > 0) {
          active = true;
          break;
        }
      }
      if (!active) {
        ++report.skipped;
        continue;
      }
    }

    InvariantOutcome outcome;
    outcome.name = spec.name;
    outcome.kind = spec.kind;
    outcome.severity = spec.severity;
    outcome.predicate = spec.Describe();

    switch (spec.kind) {
      case InvariantKind::kOrdering: {
        const AbstractCases& lhs = resolver.Resolve(spec.lhs.config);
        const AbstractCases& rhs = resolver.Resolve(spec.rhs.config);
        if (!lhs.resolved || !rhs.resolved) {
          outcome.status = InvariantStatus::kUnresolved;
          const std::string& missing =
              !lhs.resolved ? spec.lhs.config : spec.rhs.config;
          outcome.detail = "unresolvable config: " + missing;
          report.diagnostics.push_back(UnresolvedDiagnostic(spec, missing));
          break;
        }
        // Case split: every (lhs case, rhs case) pair must hold.
        bool all_hold = true;
        std::string undecided;
        size_t pairs = 0;
        for (const AbstractFieldMap& lcase : lhs.cases) {
          for (const AbstractFieldMap& rcase : rhs.cases) {
            if (++pairs > kMaxCasePairs) {
              all_hold = false;
              undecided = "case budget exhausted";
              break;
            }
            Tri decided = DecideRelation(IntervalOf(FactsFor(lcase, spec.lhs)),
                                         spec.relation,
                                         IntervalOf(FactsFor(rcase, spec.rhs)));
            if (decided != Tri::kHolds) {
              all_hold = false;
              undecided = StrFormat(
                  "case %zu %s", pairs,
                  decided == Tri::kFails ? "fails abstractly" : "undecided");
            }
          }
          if (!all_hold && undecided == "case budget exhausted") {
            break;
          }
        }
        outcome.cases_checked = pairs;
        if (all_hold) {
          outcome.status = InvariantStatus::kProven;
          break;
        }
        // Concrete validation: the only path to a violation report.
        std::optional<Json> a = concrete.Field(spec.lhs.config, spec.lhs.field);
        std::optional<Json> b = concrete.Field(spec.rhs.config, spec.rhs.field);
        if (a.has_value() && b.has_value() && a->is_number() &&
            b->is_number() &&
            !RelationHoldsConcrete(a->as_double(), spec.relation,
                                   b->as_double())) {
          outcome.status = InvariantStatus::kViolated;
          outcome.witness.valuation.emplace_back(spec.lhs.Describe(),
                                                 RenderWitnessValue(*a));
          outcome.witness.valuation.emplace_back(spec.rhs.Describe(),
                                                 RenderWitnessValue(*b));
          outcome.witness.predicate = StrFormat(
              "%s %s %s is false", RenderWitnessValue(*a).c_str(),
              std::string(InvariantRelationName(spec.relation)).c_str(),
              RenderWitnessValue(*b).c_str());
          outcome.witness.validated = true;
          report.diagnostics.push_back(
              ViolationDiagnostic(spec, outcome.witness));
        } else {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = undecided + "; concrete values at head satisfy "
                                       "the predicate";
        }
        break;
      }

      case InvariantKind::kSum: {
        NumInterval sum;
        sum.known = true;
        sum.lo = sum.hi = 0;
        bool resolved_all = true;
        for (const SymbolRef& term : spec.terms) {
          const AbstractCases& cases = resolver.Resolve(term.config);
          if (!cases.resolved) {
            outcome.status = InvariantStatus::kUnresolved;
            outcome.detail = "unresolvable config: " + term.config;
            report.diagnostics.push_back(
                UnresolvedDiagnostic(spec, term.config));
            resolved_all = false;
            break;
          }
          outcome.cases_checked += cases.cases.size();
          NumInterval joined = JoinInterval(cases, term);
          if (!joined.known || joined.maybe_absent) {
            sum.known = false;
          } else {
            sum.lo += joined.lo;
            sum.hi += joined.hi;
          }
        }
        if (!resolved_all) {
          break;
        }
        NumInterval budget;
        budget.known = true;
        budget.lo = budget.hi = spec.budget;
        if (sum.known &&
            DecideRelation(sum, spec.relation, budget) == Tri::kHolds) {
          outcome.status = InvariantStatus::kProven;
          break;
        }
        // Concrete: sum the real values.
        double total = 0;
        bool concrete_ok = true;
        std::vector<double> values;
        for (const SymbolRef& term : spec.terms) {
          std::optional<Json> v = concrete.Field(term.config, term.field);
          if (!v.has_value() || !v->is_number()) {
            concrete_ok = false;
            break;
          }
          values.push_back(v->as_double());
          total += v->as_double();
        }
        if (concrete_ok &&
            !RelationHoldsConcrete(total, spec.relation, spec.budget)) {
          outcome.status = InvariantStatus::kViolated;
          outcome.witness.predicate = StrFormat(
              "sum = %g, %g %s %g is false", total, total,
              std::string(InvariantRelationName(spec.relation)).c_str(),
              spec.budget);
          // An over-budget violation shrinks to the minimal subset of terms
          // that already exceeds the budget alone; other relations keep the
          // full valuation (dropping terms changes the sum).
          bool exceeds_le =
              spec.relation == InvariantRelation::kLe && total > spec.budget;
          bool exceeds_lt =
              spec.relation == InvariantRelation::kLt && total >= spec.budget;
          std::vector<size_t> kept(spec.terms.size());
          for (size_t i = 0; i < kept.size(); ++i) {
            kept[i] = i;
          }
          if (exceeds_le || exceeds_lt) {
            kept = ShrinkSumWitness(values, spec.budget, exceeds_lt,
                                    &outcome.witness.shrink_probes);
            // Re-validate the shrunk subset before reporting it.
            double shrunk_sum = 0;
            for (size_t i : kept) {
              shrunk_sum += values[i];
            }
            bool still_violates = exceeds_lt ? shrunk_sum >= spec.budget
                                             : shrunk_sum > spec.budget;
            if (!still_violates) {
              kept.resize(spec.terms.size());
              for (size_t i = 0; i < kept.size(); ++i) {
                kept[i] = i;
              }
            } else {
              outcome.witness.predicate += StrFormat(
                  " (%zu of %zu terms already exceed the budget)", kept.size(),
                  spec.terms.size());
            }
          }
          for (size_t i : kept) {
            outcome.witness.valuation.emplace_back(
                spec.terms[i].Describe(), StrFormat("%g", values[i]));
          }
          outcome.witness.validated = true;
          report.diagnostics.push_back(
              ViolationDiagnostic(spec, outcome.witness));
        } else if (concrete_ok) {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail =
              "abstract sum bounds do not prove the budget; concrete sum "
              "satisfies it at head";
        } else {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = "not concretely evaluable (non-numeric or absent "
                           "term)";
        }
        break;
      }

      case InvariantKind::kMembership: {
        const AbstractCases& cases = resolver.Resolve(spec.subject.config);
        if (!cases.resolved) {
          outcome.status = InvariantStatus::kUnresolved;
          outcome.detail = "unresolvable config: " + spec.subject.config;
          report.diagnostics.push_back(
              UnresolvedDiagnostic(spec, spec.subject.config));
          break;
        }
        bool all_member = true;
        for (const AbstractFieldMap& fields : cases.cases) {
          ++outcome.cases_checked;
          AbstractFieldFacts facts = FactsFor(fields, spec.subject);
          bool member = false;
          if (facts.constant.has_value() && !facts.maybe_absent) {
            for (const Json& candidate : spec.allowed) {
              if (ValueMatchesJson(*facts.constant, candidate)) {
                member = true;
                break;
              }
            }
          }
          if (!member) {
            all_member = false;
          }
        }
        if (all_member) {
          outcome.status = InvariantStatus::kProven;
          break;
        }
        std::optional<Json> v =
            concrete.Field(spec.subject.config, spec.subject.field);
        bool concrete_member = false;
        if (v.has_value()) {
          for (const Json& candidate : spec.allowed) {
            if (JsonScalarEqual(*v, candidate)) {
              concrete_member = true;
              break;
            }
          }
        }
        if (v.has_value() && !concrete_member) {
          outcome.status = InvariantStatus::kViolated;
          outcome.witness.valuation.emplace_back(spec.subject.Describe(),
                                                 RenderWitnessValue(*v));
          outcome.witness.predicate =
              RenderWitnessValue(*v) + " is not in the allowed set";
          outcome.witness.validated = true;
          report.diagnostics.push_back(
              ViolationDiagnostic(spec, outcome.witness));
        } else if (v.has_value()) {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = "membership not provable abstractly (value not a "
                           "pinned constant); concrete value is allowed";
        } else {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = "subject field absent from the concrete config";
        }
        break;
      }

      case InvariantKind::kReference: {
        const AbstractCases& cases = resolver.Resolve(spec.subject.config);
        if (!cases.resolved) {
          outcome.status = InvariantStatus::kUnresolved;
          outcome.detail = "unresolvable config: " + spec.subject.config;
          report.diagnostics.push_back(
              UnresolvedDiagnostic(spec, spec.subject.config));
          break;
        }
        // Proven iff every case pins the subject to a constant string whose
        // target concretely resolves (existence is context-independent, so
        // the concrete check is exact, not just a sample).
        bool all_exist = true;
        bool all_pinned = true;
        for (const AbstractFieldMap& fields : cases.cases) {
          ++outcome.cases_checked;
          AbstractFieldFacts facts = FactsFor(fields, spec.subject);
          if (!facts.constant.has_value() || !facts.constant->is_string() ||
              facts.maybe_absent) {
            all_pinned = false;
            continue;
          }
          if (!concrete.ConfigExists(facts.constant->as_string())) {
            all_exist = false;
          }
        }
        if (all_pinned && all_exist) {
          outcome.status = InvariantStatus::kProven;
          break;
        }
        std::optional<Json> v =
            concrete.Field(spec.subject.config, spec.subject.field);
        if (v.has_value() && v->is_string() &&
            !concrete.ConfigExists(v->as_string())) {
          outcome.status = InvariantStatus::kViolated;
          outcome.witness.valuation.emplace_back(spec.subject.Describe(),
                                                 RenderWitnessValue(*v));
          outcome.witness.predicate = "referenced config '" + v->as_string() +
                                      "' does not exist";
          outcome.witness.validated = true;
          report.diagnostics.push_back(
              ViolationDiagnostic(spec, outcome.witness));
        } else if (v.has_value() && v->is_string()) {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = "reference target not pinned abstractly; concrete "
                           "target exists at head";
        } else {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = "subject is not a concrete string";
        }
        break;
      }

      case InvariantKind::kGateImplies: {
        GateProject if_proj = LoadProject(reader_, spec.if_project);
        GateProject then_proj = LoadProject(reader_, spec.then_project);
        if (!if_proj.resolved || !then_proj.resolved) {
          outcome.status = InvariantStatus::kUnresolved;
          const std::string& missing =
              !if_proj.resolved ? spec.if_project : spec.then_project;
          outcome.detail = "unresolvable project: " + missing;
          report.diagnostics.push_back(UnresolvedDiagnostic(spec, missing));
          break;
        }
        if (SyntacticImplication(if_proj.json, then_proj.json)) {
          outcome.status = InvariantStatus::kProven;
          outcome.detail = "every positive if-rule conjunction subsumes a "
                           "positive then-rule";
          break;
        }
        // Case split on context fields: mine boundary values from both
        // projects' restraint params and enumerate the (capped) cross
        // product. Any violating context found this way is concrete and
        // real by construction.
        std::map<std::string, std::vector<Json>> mined;
        MineAxes(if_proj.json, &mined);
        MineAxes(then_proj.json, &mined);
        std::vector<ContextAxis> axes = BuildAxes(mined);
        size_t total = 1;
        for (const ContextAxis& axis : axes) {
          total *= axis.values.size();
          if (total > kMaxGateContexts) {
            total = kMaxGateContexts;
            break;
          }
        }
        std::vector<size_t> violating_choice;
        for (size_t index = 0; index < total; ++index) {
          std::vector<size_t> choice(axes.size(), 0);
          size_t rest = index;
          for (size_t i = 0; i < axes.size(); ++i) {
            choice[i] = rest % axes[i].values.size();
            rest /= axes[i].values.size();
          }
          ++outcome.cases_checked;
          UserContext user = BuildContext(axes, choice);
          if (Eligible(if_proj.spec, user) && !Eligible(then_proj.spec, user)) {
            violating_choice = std::move(choice);
            break;
          }
        }
        if (violating_choice.empty()) {
          outcome.status = InvariantStatus::kInJeopardy;
          outcome.detail = StrFormat(
              "no syntactic implication; no violating context among %zu "
              "mined candidates",
              outcome.cases_checked);
          break;
        }
        // Shrink the witness context with ddmin: reset every field the
        // violation does not need back to its default.
        std::vector<size_t> set_fields;
        for (size_t i = 0; i < violating_choice.size(); ++i) {
          if (violating_choice[i] != 0) {
            set_fields.push_back(i);
          }
        }
        auto still_violates = [&](const std::vector<size_t>& kept) {
          std::vector<size_t> choice(axes.size(), 0);
          for (size_t k : kept) {
            choice[set_fields[k]] = violating_choice[set_fields[k]];
          }
          UserContext user = BuildContext(axes, choice);
          return Eligible(if_proj.spec, user) && !Eligible(then_proj.spec, user);
        };
        std::vector<size_t> kept =
            DdminSubset(set_fields.size(), still_violates, /*max_probes=*/128,
                        &outcome.witness.shrink_probes);
        std::vector<size_t> final_choice(axes.size(), 0);
        for (size_t k : kept) {
          final_choice[set_fields[k]] = violating_choice[set_fields[k]];
        }
        // Final concrete re-validation of the shrunk context.
        UserContext final_user = BuildContext(axes, final_choice);
        if (!Eligible(if_proj.spec, final_user) ||
            Eligible(then_proj.spec, final_user)) {
          final_choice = violating_choice;  // Shrink regressed; keep original.
          final_user = BuildContext(axes, final_choice);
        }
        outcome.status = InvariantStatus::kViolated;
        outcome.witness.context = RenderContext(axes, final_choice);
        if (outcome.witness.context.empty()) {
          // Every field shrank away: the all-default context already
          // witnesses the gap.
          outcome.witness.context.emplace_back("context", "<default>");
        }
        outcome.witness.predicate = "context is eligible under " +
                                    spec.if_project + " but not under " +
                                    spec.then_project;
        outcome.witness.validated = Eligible(if_proj.spec, final_user) &&
                                    !Eligible(then_proj.spec, final_user);
        report.diagnostics.push_back(
            ViolationDiagnostic(spec, outcome.witness));
        break;
      }

      case InvariantKind::kGateContext: {
        GateProject proj = LoadProject(reader_, spec.project);
        if (!proj.resolved) {
          outcome.status = InvariantStatus::kUnresolved;
          outcome.detail = "unresolvable project: " + spec.project;
          report.diagnostics.push_back(
              UnresolvedDiagnostic(spec, spec.project));
          break;
        }
        std::set<std::string> allowed(spec.allowed_fields.begin(),
                                      spec.allowed_fields.end());
        // Exact static walk: which context fields do the project's
        // restraints consult?
        std::vector<std::pair<std::string, std::string>> offending;
        const Json* rules = proj.json.Get("rules");
        if (rules != nullptr && rules->is_array()) {
          for (const Json& rule : rules->as_array()) {
            const Json* restraints = rule.Get("restraints");
            if (restraints == nullptr || !restraints->is_array()) {
              continue;
            }
            for (const Json& restraint : restraints->as_array()) {
              const Json* type = restraint.Get("type");
              if (type == nullptr || !type->is_string()) {
                continue;
              }
              ++outcome.cases_checked;
              for (const std::string& field :
                   ContextFieldsForRestraint(type->as_string())) {
                if (allowed.count(field) == 0) {
                  offending.emplace_back(type->as_string(), field);
                }
              }
            }
          }
        }
        if (offending.empty()) {
          outcome.status = InvariantStatus::kProven;
          break;
        }
        outcome.status = InvariantStatus::kViolated;
        // The witness is the config text itself: restraint type -> field it
        // consults. A differential context pair (flip the field, eligibility
        // flips) is attached when the mined candidates produce one.
        std::set<std::string> seen;
        for (const auto& [type, field] : offending) {
          if (seen.insert(type + "/" + field).second) {
            outcome.witness.valuation.emplace_back(
                spec.project + ":restraint." + type, "consults '" + field + "'");
          }
        }
        outcome.witness.predicate =
            "project consults context field(s) outside the allowed set";
        std::map<std::string, std::vector<Json>> mined;
        MineAxes(proj.json, &mined);
        std::vector<ContextAxis> axes = BuildAxes(mined);
        // Try to demonstrate real dependence: two contexts differing only in
        // a disallowed field with different eligibility.
        for (size_t axis_idx = 0;
             axis_idx < axes.size() && outcome.witness.context.empty();
             ++axis_idx) {
          bool disallowed = allowed.count(axes[axis_idx].field) == 0;
          if (!disallowed) {
            continue;
          }
          std::vector<size_t> base(axes.size(), 0);
          std::optional<bool> first;
          for (size_t v = 0; v < axes[axis_idx].values.size(); ++v) {
            base[axis_idx] = v;
            bool eligible = Eligible(proj.spec, BuildContext(axes, base));
            ++outcome.cases_checked;
            if (!first.has_value()) {
              first = eligible;
            } else if (eligible != *first) {
              outcome.witness.context = RenderContext(axes, base);
              if (outcome.witness.context.empty()) {
                outcome.witness.context.emplace_back(axes[axis_idx].field,
                                                     "<default>");
              }
              break;
            }
          }
        }
        outcome.witness.validated = true;
        report.diagnostics.push_back(
            ViolationDiagnostic(spec, outcome.witness));
        break;
      }
    }

    switch (outcome.status) {
      case InvariantStatus::kProven:
        ++report.proven;
        break;
      case InvariantStatus::kViolated:
        ++report.violated;
        break;
      case InvariantStatus::kInJeopardy:
        ++report.in_jeopardy;
        break;
      case InvariantStatus::kUnresolved:
        ++report.unresolved;
        break;
    }
    report.outcomes.push_back(std::move(outcome));
  }

  SortDiagnostics(&report.diagnostics);
  return report;
}

}  // namespace configerator
