// ConfigLint: static analysis over config source (CSL) and Gatekeeper
// project specs — the fourth layered defense of the paper's §3 pipeline,
// sitting in front of type-checking, validators, and canary. Where the
// compiler answers "does this config evaluate?", ConfigLint answers "does
// this config say what the author meant?": undefined names, dead Gatekeeper
// clauses, and 0% rollouts all evaluate fine and misbehave in production.
//
// Two rule families:
//
//   Language rules (Lxxx) — run over the config-language AST with a
//   scope-resolution pass that follows import_python()/import_thrift()
//   through the supplied FileReader, so cross-module name resolution matches
//   what the compiler will do at build time.
//
//   Gating rules (Gxxx) — run over Gatekeeper project JSON, reasoning about
//   each rule's restraint conjunction (contradictions, subsumption, dead
//   clauses, vacuous buckets) against the RestraintRegistry.
//
// | Rule | Severity | Finding |
// |------|----------|---------|
// | L001 undefined-name      | error   | name never defined in any reachable scope |
// | L002 use-before-def      | error   | module-level use precedes the definition |
// | L003 unused-binding      | warning | binding written but never read |
// | L004 unused-import       | warning | imported symbol/module never used |
// | L005 duplicate-dict-key  | error   | dict literal repeats a constant key |
// | L006 shadowed-builtin    | warning | binding hides a builtin function |
// | L007 unreachable-code    | warning | statement after return/break/continue |
// | L008 call-arity          | error   | call mismatches a known def's signature |
// | L009 constant-condition  | warning | if/ternary condition is a literal |
// | G001 contradictory-restraints | error | X and NOT X in one conjunction |
// | G002 subsumed-rule       | warning | rule shadowed by earlier always-pass rule |
// | G003 dead-rule           | warning | conjunction or sampling can never pass |
// | G004 unknown-restraint-type | error | type absent from the RestraintRegistry |
// | G005 duplicate-restraint | warning | identical restraint repeated in one rule |
// | G006 vacuous-bucket      | warning | id_mod/hash_range spans every user |
//
// The semantic-diff / provenance layer (src/analysis/semdiff.h,
// src/analysis/provenance.h) adds graph-driven rules G007..G010: dead
// export, unreachable branch, stale restraint reference in the closure, and
// shadowed import. They are listed in Rules() for docs/--explain but emitted
// by ProvenanceGraph / SemanticDiffer, not by LintFile.

#ifndef SRC_ANALYSIS_LINT_H_
#define SRC_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/gatekeeper/restraint.h"
#include "src/lang/ast_cache.h"
#include "src/lang/compiler.h"

namespace configerator {

// Static description of one lint rule (drives docs and --explain output).
struct LintRuleInfo {
  std::string_view id;
  std::string_view name;
  LintSeverity severity;
  std::string_view summary;
};

class ConfigLint {
 public:
  // `reader` resolves imports for cross-module analysis; without one (or
  // when a target cannot be read) the affected checks degrade conservatively
  // instead of guessing. `registry` is consulted for restraint types.
  explicit ConfigLint(FileReader reader = nullptr,
                      const RestraintRegistry* registry =
                          &RestraintRegistry::Builtin());

  // Dispatches on path convention: ".cconf"/".cinc" → language rules,
  // "gatekeeper/*.json" → gating rules, anything else → no findings.
  std::vector<LintDiagnostic> LintFile(const std::string& path,
                                       const std::string& content) const;

  // Language rules over one CSL source file. A file that fails to parse
  // yields a single L000 parse-error diagnostic (the compiler will reject it
  // with full detail; lint just flags it).
  std::vector<LintDiagnostic> LintSource(const std::string& path,
                                         const std::string& content) const;

  // Gating rules over one Gatekeeper project JSON.
  std::vector<LintDiagnostic> LintGatekeeper(const std::string& path,
                                             const std::string& content) const;

  // The full rule table, for documentation and tooling.
  static const std::vector<LintRuleInfo>& Rules();

  // Optional shared parse cache: when several passes (lint, absint, semdiff)
  // analyze the same closure, scoping one AstCache across them parses each
  // file once instead of once per pass. Must outlive this linter; may be
  // null (the default) for standalone use.
  void set_ast_cache(AstCache* cache) { ast_cache_ = cache; }

 private:
  FileReader reader_;
  const RestraintRegistry* registry_;
  AstCache* ast_cache_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_ANALYSIS_LINT_H_
