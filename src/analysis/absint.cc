#include "src/analysis/absint.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/lang/ast.h"
#include "src/lang/import_resolver.h"
#include "src/util/strings.h"

namespace configerator {

using Bindings = std::map<std::string, AbstractValue>;
using OriginSet = std::set<std::pair<std::string, std::string>>;

// ---- AbstractValue basics ---------------------------------------------------

AbstractValue AbstractValue::MakeAny() { return AbstractValue(); }

AbstractValue AbstractValue::Bottom() {
  AbstractValue v;
  v.kinds = 0;
  v.any = false;
  return v;
}

AbstractValue AbstractValue::OfKinds(uint32_t kinds) {
  AbstractValue v;
  v.kinds = kinds;
  v.any = false;
  return v;
}

AbstractValue AbstractValue::OfConstant(const Value& c) {
  AbstractValue v;
  v.any = false;
  switch (c.kind()) {
    case Value::Kind::kNull:
      v.kinds = kAbsNull;
      break;
    case Value::Kind::kBool:
      v.kinds = kAbsBool;
      v.constant = c;
      break;
    case Value::Kind::kInt:
      v.kinds = kAbsInt;
      v.constant = c;
      v.int_min = c.as_int();
      v.int_max = c.as_int();
      break;
    case Value::Kind::kDouble:
      v.kinds = kAbsDouble;
      v.constant = c;
      break;
    case Value::Kind::kString:
      v.kinds = kAbsString;
      v.constant = c;
      break;
    default:
      return MakeAny();  // Containers/functions go through the heap instead.
  }
  return v;
}

std::optional<bool> AbstractValue::TruthyIfKnown() const {
  if (any) {
    return std::nullopt;
  }
  if (constant.has_value()) {
    return constant->Truthy();
  }
  if (only(kAbsNull)) {
    return false;
  }
  if (only(kAbsFunction)) {
    return true;  // Callables are always truthy.
  }
  if (only(kAbsInt) && int_min.has_value() && int_max.has_value() &&
      (*int_min > 0 || *int_max < 0)) {
    return true;  // Provably nonzero.
  }
  return std::nullopt;
}

std::string AbstractValue::Describe() const {
  if (any) {
    return "unknown";
  }
  if (kinds == 0) {
    return "unreachable";
  }
  static const std::pair<uint32_t, const char*> kNames[] = {
      {kAbsNull, "None"},     {kAbsBool, "bool"},   {kAbsInt, "int"},
      {kAbsDouble, "double"}, {kAbsString, "string"}, {kAbsList, "list"},
      {kAbsDict, "dict"},     {kAbsFunction, "function"},
  };
  std::string out;
  for (const auto& [mask, name] : kNames) {
    if (kinds & mask) {
      if (!out.empty()) {
        out += " | ";
      }
      out += name;
    }
  }
  return out;
}

// ---- AbstractHeap -----------------------------------------------------------

HeapId AbstractHeap::Alloc(AbstractObject object) {
  HeapId id = next_++;
  objects_.emplace(id, std::move(object));
  return id;
}

AbstractObject* AbstractHeap::Get(HeapId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

const AbstractObject* AbstractHeap::Get(HeapId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

namespace {

// ---- Join machinery ---------------------------------------------------------
//
// Joins run against one live heap. Merging two *different* objects allocates
// a fresh joined node; the memo short-circuits aliasing cycles
// (`d["self"] = d`).

struct JoinContext {
  AbstractHeap* heap;
  std::map<std::pair<HeapId, HeapId>, HeapId> memo;

  AbstractValue Values(const AbstractValue& a, const AbstractValue& b);
  HeapId Objects(HeapId a, HeapId b);
  AbstractObject ObjectContents(const AbstractObject& a,
                                const AbstractObject& b);
};

AbstractValue JoinValues(AbstractHeap* heap, const AbstractValue& a,
                         const AbstractValue& b) {
  JoinContext ctx{heap, {}};
  return ctx.Values(a, b);
}

AbstractValue JoinContext::Values(const AbstractValue& a,
                                  const AbstractValue& b) {
  if (a.is_bottom()) {
    AbstractValue out = b;
    out.origins.insert(a.origins.begin(), a.origins.end());
    return out;
  }
  if (b.is_bottom()) {
    AbstractValue out = a;
    out.origins.insert(b.origins.begin(), b.origins.end());
    return out;
  }
  if (a.any || b.any) {
    AbstractValue out = AbstractValue::MakeAny();
    out.origins = a.origins;
    out.origins.insert(b.origins.begin(), b.origins.end());
    return out;
  }
  AbstractValue out = AbstractValue::OfKinds(a.kinds | b.kinds);
  if (a.constant.has_value() && b.constant.has_value() &&
      a.constant->Equals(*b.constant)) {
    out.constant = a.constant;
  }
  if (a.int_min.has_value() && b.int_min.has_value()) {
    out.int_min = std::min(*a.int_min, *b.int_min);
  }
  if (a.int_max.has_value() && b.int_max.has_value()) {
    out.int_max = std::max(*a.int_max, *b.int_max);
  }
  if (a.object != kNoHeapId && b.object != kNoHeapId) {
    out.object = a.object == b.object ? a.object : Objects(a.object, b.object);
  } else if (a.object != kNoHeapId) {
    out.object = a.object;  // Only one side can be a container.
  } else if (b.object != kNoHeapId) {
    out.object = b.object;
  }
  if (a.function != nullptr && b.function != nullptr &&
      a.function == b.function) {
    out.function = a.function;
  }
  out.origins = a.origins;
  out.origins.insert(b.origins.begin(), b.origins.end());
  return out;
}

HeapId JoinContext::Objects(HeapId a, HeapId b) {
  if (a > b) {
    std::swap(a, b);
  }
  auto it = memo.find({a, b});
  if (it != memo.end()) {
    return it->second;
  }
  const AbstractObject* oa = heap->Get(a);
  const AbstractObject* ob = heap->Get(b);
  if (oa == nullptr) {
    return b;
  }
  if (ob == nullptr) {
    return a;
  }
  // Reserve the id before recursing so cycles resolve to it.
  HeapId joined = heap->Alloc(AbstractObject{});
  memo[{a, b}] = joined;
  AbstractObject contents = ObjectContents(*heap->Get(a), *heap->Get(b));
  *heap->Get(joined) = std::move(contents);
  return joined;
}

AbstractObject JoinContext::ObjectContents(const AbstractObject& a,
                                           const AbstractObject& b) {
  AbstractObject out;
  out.is_list = a.is_list || b.is_list;
  out.struct_names = a.struct_names;
  out.struct_names.insert(b.struct_names.begin(), b.struct_names.end());
  out.fields_known = a.fields_known && b.fields_known;
  out.element = Values(a.element, b.element);
  out.definitely_nonempty = a.definitely_nonempty && b.definitely_nonempty;
  for (const auto& [name, field] : a.fields) {
    auto bit = b.fields.find(name);
    if (bit == b.fields.end()) {
      AbstractField f = field;
      f.maybe_absent = true;  // Absent on the other branch.
      out.fields.emplace(name, std::move(f));
    } else {
      AbstractField f;
      f.value = Values(field.value, bit->second.value);
      f.maybe_absent = field.maybe_absent || bit->second.maybe_absent;
      out.fields.emplace(name, std::move(f));
    }
  }
  for (const auto& [name, field] : b.fields) {
    if (a.fields.count(name) == 0) {
      AbstractField f = field;
      f.maybe_absent = true;
      out.fields.emplace(name, std::move(f));
    }
  }
  return out;
}

// Builtins the interpreter registers (src/lang/builtins.cc). Anything else
// resolves to Any and stays silent.
const std::set<std::string>& BuiltinNames() {
  static const std::set<std::string> kNames = {
      "len",     "str",        "int",      "float",  "abs",    "range",
      "sorted",  "min",        "max",      "items",  "keys",   "values",
      "append",  "extend",     "has_key",  "get",    "join",   "split",
      "format",  "startswith", "endswith", "upper",  "lower",  "strip",
      "replace", "fail",       "merge"};
  return kNames;
}

}  // namespace

// ---- The analyzer -----------------------------------------------------------

namespace {

class Analyzer {
 public:
  Analyzer(const FileReader& reader, AstCache* ast_cache)
      : reader_(reader), ast_cache_(ast_cache) {}

  // A module's globals map can hold a function whose env shared_ptr points
  // back at that same map; clear the maps to break the cycles.
  ~Analyzer() {
    for (auto& [path, globals] : module_cache_) {
      if (globals != nullptr) {
        globals->clear();
      }
    }
  }

  AbsintResult Run(const std::string& path, const std::string& content);

 private:
  struct Ctx {
    std::string file;
    std::vector<std::shared_ptr<Bindings>> scopes;
    bool exports_enabled = false;
    OriginSet control_origins;    // Conditions guarding the current path.
    AbstractValue* return_join = nullptr;  // Function bodies only.
  };

  struct StateSnapshot {
    std::vector<Bindings> frames;
    std::map<HeapId, AbstractObject> objects;
  };

  struct ExportRec {
    std::string path;
    int line = 0;
    AbstractValue value;
    OriginSet control_origins;
  };

  // -- state plumbing --
  StateSnapshot Snapshot(const Ctx& ctx) const;
  void Restore(const StateSnapshot& snap, Ctx& ctx);
  void JoinState(const StateSnapshot& other, Ctx& ctx);
  void WidenAgainst(const StateSnapshot& prev, Ctx& ctx);
  static void WidenValue(AbstractValue& v, const AbstractValue& prev);

  // -- execution --
  bool ExecBlock(const std::vector<StmtPtr>& body, Ctx& ctx);
  bool ExecStmt(const Stmt& stmt, Ctx& ctx);
  void ExecLoop(const Stmt& stmt, Ctx& ctx);
  void BindLoopVars(const Stmt& stmt, const AbstractValue& elem, Ctx& ctx);
  AbstractValue Eval(const Expr& expr, Ctx& ctx);
  AbstractValue EvalBinary(const Expr& expr, Ctx& ctx);
  AbstractValue EvalBinaryAbstract(const std::string& op,
                                   const AbstractValue& lhs,
                                   const AbstractValue& rhs);
  AbstractValue EvalCall(const Expr& expr, Ctx& ctx);
  AbstractValue CallFunction(const AbstractFunction& fn,
                             std::vector<AbstractValue> args,
                             std::map<std::string, AbstractValue> kwargs,
                             Ctx& ctx);
  AbstractValue CallBuiltin(const std::string& name,
                            std::vector<AbstractValue>& args, Ctx& ctx);
  AbstractValue CallStructCtor(const std::string& struct_name, int line,
                               const std::map<std::string, AbstractValue>& kwargs,
                               Ctx& ctx);
  void AssignTo(const Expr& target, AbstractValue value, Ctx& ctx);
  AbstractValue LookupName(const std::string& name, Ctx& ctx);
  std::optional<bool> TruthyWithHeap(const AbstractValue& v) const;

  // -- cross-module --
  Result<std::shared_ptr<Module>> ParseSource(const std::string& content,
                                              const std::string& path);
  void HandleImport(const Expr& expr, Ctx& ctx);
  std::shared_ptr<Bindings> AnalyzeModule(const std::string& path);
  void LoadSchema(const std::string& path);
  void MineValidatorBounds(const std::string& validator_path,
                           const std::string& source);

  // -- results --
  void RecordExport(const Expr& expr, bool if_last, Ctx& ctx);
  void RecordReads(const AbstractValue& v);
  AbstractValue MergeDicts(const AbstractValue& a, const AbstractValue& b);
  void CollectOrigins(const AbstractValue& v, std::set<HeapId>& seen,
                      OriginSet& out) const;
  // Canonical render of an abstract value for cross-version comparison.
  // Sets *precise to false unless the render pins down one concrete value.
  std::string RenderAbstract(const AbstractValue& v, std::set<HeapId>& seen,
                             bool* precise) const;
  SymbolSummary Summarize(const AbstractValue& v) const;
  void FlattenFields(const AbstractValue& v, const std::string& prefix,
                     bool maybe_absent, int depth, std::set<HeapId>& seen,
                     AbstractFieldMap* out) const;

  const FileReader& reader_;
  AstCache* ast_cache_;
  SchemaRegistry registry_;
  ValidatorBounds validator_bounds_;
  AbstractHeap heap_;
  Bindings schema_env_;  // Struct constructors + enum namespaces.
  std::map<std::string, std::shared_ptr<Bindings>> module_cache_;
  std::set<std::string> visiting_;
  std::set<std::string> loaded_schemas_;
  std::vector<std::shared_ptr<Module>> modules_alive_;
  std::map<std::string, std::set<std::string>> reads_;
  std::vector<LintDiagnostic> diags_;
  std::vector<ExportRec> exports_;
  std::vector<const FunctionDefStmt*> call_stack_;
  std::string entry_path_;
  bool slice_sound_ = true;
  int merge_depth_ = 0;
  // (file, line) -> truth values observed for a non-literal `if` condition.
  // One value across every abstract visit = statically decided (G008).
  std::map<std::pair<std::string, int>, std::set<bool>> branch_truths_;
};

Analyzer::StateSnapshot Analyzer::Snapshot(const Ctx& ctx) const {
  StateSnapshot snap;
  snap.frames.reserve(ctx.scopes.size());
  for (const auto& frame : ctx.scopes) {
    snap.frames.push_back(*frame);
  }
  snap.objects = heap_.objects();
  return snap;
}

void Analyzer::Restore(const StateSnapshot& snap, Ctx& ctx) {
  for (size_t i = 0; i < ctx.scopes.size() && i < snap.frames.size(); ++i) {
    *ctx.scopes[i] = snap.frames[i];
  }
  heap_.mutable_objects() = snap.objects;
}

void Analyzer::JoinState(const StateSnapshot& other, Ctx& ctx) {
  JoinContext join{&heap_, {}};
  // Heap first, so frame joins see both sides' objects.
  auto& objects = heap_.mutable_objects();
  for (const auto& [id, obj] : other.objects) {
    auto it = objects.find(id);
    if (it == objects.end()) {
      objects.emplace(id, obj);
    } else {
      it->second = join.ObjectContents(it->second, obj);
    }
  }
  for (size_t i = 0; i < ctx.scopes.size() && i < other.frames.size(); ++i) {
    Bindings& live = *ctx.scopes[i];
    const Bindings& snap = other.frames[i];
    for (auto& [name, value] : live) {
      auto it = snap.find(name);
      if (it == snap.end()) {
        // Bound on one path only: no usable fact.
        AbstractValue merged = AbstractValue::MakeAny();
        merged.origins = value.origins;
        value = merged;
      } else {
        value = join.Values(value, it->second);
      }
    }
    for (const auto& [name, value] : snap) {
      if (live.count(name) == 0) {
        AbstractValue merged = AbstractValue::MakeAny();
        merged.origins = value.origins;
        live.emplace(name, merged);
      }
    }
  }
}

void Analyzer::WidenValue(AbstractValue& v, const AbstractValue& prev) {
  if (v.any) {
    return;
  }
  if (v.constant.has_value() &&
      !(prev.constant.has_value() && v.constant->Equals(*prev.constant))) {
    v.constant.reset();
  }
  if (v.int_min.has_value() &&
      !(prev.int_min.has_value() && *v.int_min == *prev.int_min)) {
    v.int_min.reset();
  }
  if (v.int_max.has_value() &&
      !(prev.int_max.has_value() && *v.int_max == *prev.int_max)) {
    v.int_max.reset();
  }
}

void Analyzer::WidenAgainst(const StateSnapshot& prev, Ctx& ctx) {
  for (size_t i = 0; i < ctx.scopes.size() && i < prev.frames.size(); ++i) {
    for (auto& [name, value] : *ctx.scopes[i]) {
      auto it = prev.frames[i].find(name);
      WidenValue(value, it == prev.frames[i].end() ? AbstractValue::Bottom()
                                                   : it->second);
    }
  }
  for (auto& [id, obj] : heap_.mutable_objects()) {
    auto it = prev.objects.find(id);
    const AbstractObject* old = it == prev.objects.end() ? nullptr : &it->second;
    WidenValue(obj.element, old != nullptr ? old->element
                                           : AbstractValue::Bottom());
    for (auto& [name, field] : obj.fields) {
      const AbstractField* old_field = nullptr;
      if (old != nullptr) {
        auto fit = old->fields.find(name);
        if (fit != old->fields.end()) {
          old_field = &fit->second;
        }
      }
      WidenValue(field.value, old_field != nullptr ? old_field->value
                                                   : AbstractValue::Bottom());
    }
  }
}

// -- statements --

bool Analyzer::ExecBlock(const std::vector<StmtPtr>& body, Ctx& ctx) {
  for (const StmtPtr& stmt : body) {
    if (!ExecStmt(*stmt, ctx)) {
      return false;
    }
  }
  return true;
}

bool Analyzer::ExecStmt(const Stmt& stmt, Ctx& ctx) {
  switch (stmt.kind) {
    case Stmt::Kind::kExpr:
      // `fail(...)` evaluates to bottom: the path terminates, so branches
      // ending in fail() don't pollute joins with unassigned fields.
      return !Eval(*stmt.target, ctx).is_bottom();
    case Stmt::Kind::kAssign: {
      AbstractValue value = Eval(*stmt.value, ctx);
      AssignTo(*stmt.target, std::move(value), ctx);
      return true;
    }
    case Stmt::Kind::kAugAssign: {
      // Mirror the interpreter: `target = target OP delta`.
      AbstractValue current = Eval(*stmt.target, ctx);
      AbstractValue delta = Eval(*stmt.value, ctx);
      AssignTo(*stmt.target, EvalBinaryAbstract(stmt.op, current, delta), ctx);
      return true;
    }
    case Stmt::Kind::kIf: {
      AbstractValue cond = Eval(*stmt.target, ctx);
      if (stmt.target->kind != Expr::Kind::kLiteral) {
        // Track decided truth values per site. Literal conditions are L009's
        // finding; this catches the cross-module case (`if ENABLE_X:` where
        // the flag is a constant in another file).
        std::optional<bool> known = TruthyWithHeap(cond);
        auto& truths = branch_truths_[{ctx.file, stmt.target->line}];
        if (known.has_value()) {
          truths.insert(*known);
        } else {
          // Undecided on this visit: the site is not statically dead.
          truths.insert(true);
          truths.insert(false);
        }
      }
      // Deliberately do NOT fold constant conditions here. Config programs
      // are mostly constants: `if ENABLE_X:` with today's flag value False
      // is exactly the latent branch evaluation (and canary) never reaches,
      // and checking it is this analyzer's reason to exist. Both arms run
      // and join; a schema violation on either fires branch-dependent
      // diagnostics even when today's constants make it dead.
      std::vector<OriginSet::value_type> added;
      for (const auto& origin : cond.origins) {
        if (ctx.control_origins.insert(origin).second) {
          added.push_back(origin);
        }
      }
      StateSnapshot entry_state = Snapshot(ctx);
      bool then_falls = ExecBlock(stmt.body, ctx);
      StateSnapshot then_state = Snapshot(ctx);
      Restore(entry_state, ctx);
      bool else_falls = ExecBlock(stmt.orelse, ctx);
      // Remove only the origins this `if` introduced — an enclosing branch
      // may guard on the same symbols.
      for (const auto& origin : added) {
        ctx.control_origins.erase(origin);
      }
      if (then_falls && else_falls) {
        JoinState(then_state, ctx);
        return true;
      }
      if (then_falls) {
        Restore(then_state, ctx);
        return true;
      }
      return else_falls;
    }
    case Stmt::Kind::kFor:
    case Stmt::Kind::kWhile:
      ExecLoop(stmt, ctx);
      return true;
    case Stmt::Kind::kDef: {
      auto fn = std::make_shared<AbstractFunction>();
      fn->def = stmt.def.get();
      fn->file = ctx.file;
      fn->env = ctx.scopes.front();
      AbstractValue v = AbstractValue::OfKinds(kAbsFunction);
      v.function = std::move(fn);
      (*ctx.scopes.back())[stmt.def->name] = std::move(v);
      return true;
    }
    case Stmt::Kind::kReturn: {
      AbstractValue value = stmt.target != nullptr
                                ? Eval(*stmt.target, ctx)
                                : AbstractValue::OfConstant(Value::Null());
      for (const auto& origin : ctx.control_origins) {
        value.origins.insert(origin);
      }
      if (ctx.return_join != nullptr) {
        *ctx.return_join = JoinValues(&heap_, *ctx.return_join, value);
      }
      return false;
    }
    case Stmt::Kind::kAssert:
      Eval(*stmt.target, ctx);
      if (stmt.value != nullptr) {
        Eval(*stmt.value, ctx);
      }
      return true;
    case Stmt::Kind::kPass:
      return true;
    case Stmt::Kind::kBreak:
    case Stmt::Kind::kContinue:
      // Approximate: stop the block here; the loop join recovers the rest.
      return false;
  }
  return true;
}

void Analyzer::BindLoopVars(const Stmt& stmt, const AbstractValue& elem,
                            Ctx& ctx) {
  if (stmt.loop_vars.size() == 1) {
    (*ctx.scopes.back())[stmt.loop_vars[0]] = elem;
    return;
  }
  // Unpacking (`for k, v in items(d)`): bind each var to the tuple-list's
  // joined element, or Any.
  AbstractValue each = AbstractValue::MakeAny();
  if (elem.object != kNoHeapId) {
    const AbstractObject* obj = heap_.Get(elem.object);
    if (obj != nullptr && obj->is_list) {
      each = obj->element;
    }
  }
  each.origins.insert(elem.origins.begin(), elem.origins.end());
  for (const std::string& var : stmt.loop_vars) {
    (*ctx.scopes.back())[var] = each;
  }
}

void Analyzer::ExecLoop(const Stmt& stmt, Ctx& ctx) {
  bool is_for = stmt.kind == Stmt::Kind::kFor;
  AbstractValue elem = AbstractValue::MakeAny();
  bool definitely_runs = false;
  if (is_for) {
    AbstractValue iterable = Eval(*stmt.value, ctx);
    elem = AbstractValue::MakeAny();
    if (!iterable.any) {
      if (iterable.only(kAbsList) && iterable.object != kNoHeapId) {
        const AbstractObject* obj = heap_.Get(iterable.object);
        if (obj != nullptr) {
          elem = obj->element;
          definitely_runs = obj->definitely_nonempty;
        }
      } else if (iterable.only(kAbsDict) && iterable.object != kNoHeapId) {
        const AbstractObject* obj = heap_.Get(iterable.object);
        elem = AbstractValue::OfKinds(kAbsString);
        if (obj != nullptr && obj->fields_known) {
          AbstractValue keys = AbstractValue::Bottom();
          bool all_present = true;
          for (const auto& [name, field] : obj->fields) {
            keys = JoinValues(&heap_, keys,
                              AbstractValue::OfConstant(Value::Str(name)));
            all_present = all_present && !field.maybe_absent;
          }
          if (!obj->fields.empty()) {
            elem = keys;
            definitely_runs = all_present;
          }
        }
      } else if (iterable.only(kAbsString)) {
        elem = AbstractValue::OfKinds(kAbsString);
      }
    }
    elem.origins.insert(iterable.origins.begin(), iterable.origins.end());
  } else {
    AbstractValue cond = Eval(*stmt.target, ctx);
    if (TruthyWithHeap(cond) == std::optional<bool>(false)) {
      return;  // Never entered.
    }
  }

  StateSnapshot pre = Snapshot(ctx);
  // Two abstract iterations discover repeated-execution effects; widening
  // then erases whatever failed to stabilize (counters, accumulating
  // constants), guaranteeing a sound fixpoint without iterating further.
  BindLoopVars(stmt, elem, ctx);
  if (!is_for) {
    Eval(*stmt.target, ctx);
  }
  ExecBlock(stmt.body, ctx);
  StateSnapshot once = Snapshot(ctx);
  BindLoopVars(stmt, elem, ctx);
  if (!is_for) {
    Eval(*stmt.target, ctx);
  }
  ExecBlock(stmt.body, ctx);
  WidenAgainst(once, ctx);
  if (!definitely_runs || !is_for) {
    JoinState(pre, ctx);  // The loop may run zero times.
  }
}

void Analyzer::AssignTo(const Expr& target, AbstractValue value, Ctx& ctx) {
  for (const auto& origin : ctx.control_origins) {
    value.origins.insert(origin);
  }
  switch (target.kind) {
    case Expr::Kind::kName:
      (*ctx.scopes.back())[target.name] = std::move(value);
      return;
    case Expr::Kind::kAttr: {
      AbstractValue base = Eval(*target.lhs, ctx);
      AbstractObject* obj =
          base.object != kNoHeapId ? heap_.Get(base.object) : nullptr;
      if (obj != nullptr && !obj->is_list) {
        obj->fields[target.name] = AbstractField{std::move(value), false};
      }
      return;
    }
    case Expr::Kind::kIndex: {
      AbstractValue base = Eval(*target.lhs, ctx);
      AbstractValue key = Eval(*target.rhs, ctx);
      AbstractObject* obj =
          base.object != kNoHeapId ? heap_.Get(base.object) : nullptr;
      if (obj == nullptr) {
        return;
      }
      if (obj->is_list) {
        obj->element = JoinValues(&heap_, obj->element, value);
        return;
      }
      if (key.constant.has_value() && key.constant->is_string()) {
        obj->fields[key.constant->as_string()] =
            AbstractField{std::move(value), false};
        return;
      }
      // Unknown key: any existing field may have been overwritten. Facts
      // about them are no longer trustworthy — erase rather than risk a
      // false positive.
      for (auto& [name, field] : obj->fields) {
        AbstractValue weakened = AbstractValue::MakeAny();
        weakened.origins = field.value.origins;
        field.value = std::move(weakened);
      }
      obj->fields_known = false;
      return;
    }
    default:
      return;
  }
}

// -- expressions --

AbstractValue Analyzer::LookupName(const std::string& name, Ctx& ctx) {
  for (auto it = ctx.scopes.rbegin(); it != ctx.scopes.rend(); ++it) {
    auto found = (*it)->find(name);
    if (found != (*it)->end()) {
      return found->second;
    }
  }
  auto schema_it = schema_env_.find(name);
  if (schema_it != schema_env_.end()) {
    return schema_it->second;
  }
  if (BuiltinNames().count(name) > 0) {
    auto fn = std::make_shared<AbstractFunction>();
    fn->builtin = name;
    AbstractValue v = AbstractValue::OfKinds(kAbsFunction);
    v.function = std::move(fn);
    return v;
  }
  return AbstractValue::MakeAny();  // L001's business, not ours.
}

std::optional<bool> Analyzer::TruthyWithHeap(const AbstractValue& v) const {
  std::optional<bool> scalar = v.TruthyIfKnown();
  if (scalar.has_value()) {
    return scalar;
  }
  if (!v.any && v.object != kNoHeapId && v.only(kAbsList | kAbsDict)) {
    const AbstractObject* obj = heap_.Get(v.object);
    if (obj != nullptr) {
      if (obj->definitely_nonempty) {
        return true;
      }
      if (!obj->is_list) {
        for (const auto& [name, field] : obj->fields) {
          if (!field.maybe_absent) {
            return true;
          }
        }
        if (obj->fields.empty() && obj->fields_known) {
          return false;
        }
      }
    }
  }
  return std::nullopt;
}

void Analyzer::RecordReads(const AbstractValue& v) {
  for (const auto& [module, symbol] : v.origins) {
    reads_[module].insert(symbol);
  }
}

AbstractValue Analyzer::Eval(const Expr& expr, Ctx& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return AbstractValue::OfConstant(expr.literal);
    case Expr::Kind::kName: {
      AbstractValue v = LookupName(expr.name, ctx);
      RecordReads(v);
      return v;
    }
    case Expr::Kind::kList: {
      AbstractObject obj;
      obj.is_list = true;
      obj.definitely_nonempty = !expr.items.empty();
      for (const ExprPtr& item : expr.items) {
        obj.element = JoinValues(&heap_, obj.element, Eval(*item, ctx));
      }
      AbstractValue v = AbstractValue::OfKinds(kAbsList);
      v.object = heap_.Alloc(std::move(obj));
      return v;
    }
    case Expr::Kind::kDict: {
      AbstractObject obj;
      for (const auto& [key_expr, value_expr] : expr.pairs) {
        AbstractValue key = Eval(*key_expr, ctx);
        AbstractValue value = Eval(*value_expr, ctx);
        if (key.constant.has_value() && key.constant->is_string()) {
          obj.fields[key.constant->as_string()] =
              AbstractField{std::move(value), false};
        } else {
          obj.fields_known = false;
        }
      }
      AbstractValue v = AbstractValue::OfKinds(kAbsDict);
      v.object = heap_.Alloc(std::move(obj));
      return v;
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, ctx);
    case Expr::Kind::kUnary: {
      AbstractValue operand = Eval(*expr.lhs, ctx);
      if (expr.name == "not") {
        AbstractValue v = AbstractValue::OfKinds(kAbsBool);
        std::optional<bool> truthy = TruthyWithHeap(operand);
        if (truthy.has_value()) {
          v.constant = Value::Bool(!*truthy);
        }
        v.origins = operand.origins;
        return v;
      }
      if (expr.name == "-") {
        if (operand.only(kAbsInt)) {
          AbstractValue v = AbstractValue::OfKinds(kAbsInt);
          if (operand.constant.has_value() && operand.constant->is_int()) {
            v = AbstractValue::OfConstant(
                Value::Int(-operand.constant->as_int()));
          } else {
            if (operand.int_max.has_value()) {
              v.int_min = -*operand.int_max;
            }
            if (operand.int_min.has_value()) {
              v.int_max = -*operand.int_min;
            }
          }
          v.origins = operand.origins;
          return v;
        }
        if (operand.only(kAbsInt | kAbsDouble)) {
          AbstractValue v = AbstractValue::OfKinds(operand.kinds);
          v.origins = operand.origins;
          return v;
        }
      }
      AbstractValue v = AbstractValue::MakeAny();
      v.origins = operand.origins;
      return v;
    }
    case Expr::Kind::kTernary: {
      AbstractValue cond = Eval(*expr.rhs, ctx);
      AbstractValue a = Eval(*expr.lhs, ctx);
      AbstractValue b = Eval(*expr.third, ctx);
      std::optional<bool> known = TruthyWithHeap(cond);
      AbstractValue out = known.has_value() ? (*known ? a : b)
                                            : JoinValues(&heap_, a, b);
      out.origins.insert(cond.origins.begin(), cond.origins.end());
      return out;
    }
    case Expr::Kind::kCall:
      return EvalCall(expr, ctx);
    case Expr::Kind::kAttr: {
      AbstractValue base = Eval(*expr.lhs, ctx);
      if (base.object != kNoHeapId) {
        const AbstractObject* obj = heap_.Get(base.object);
        if (obj != nullptr && !obj->is_list) {
          auto it = obj->fields.find(expr.name);
          if (it != obj->fields.end()) {
            AbstractValue v = it->second.value;
            v.origins.insert(base.origins.begin(), base.origins.end());
            return v;
          }
        }
      }
      AbstractValue v = AbstractValue::MakeAny();
      v.origins = base.origins;
      return v;
    }
    case Expr::Kind::kIndex: {
      AbstractValue base = Eval(*expr.lhs, ctx);
      AbstractValue key = Eval(*expr.rhs, ctx);
      AbstractValue out = AbstractValue::MakeAny();
      if (base.object != kNoHeapId) {
        const AbstractObject* obj = heap_.Get(base.object);
        if (obj != nullptr) {
          if (obj->is_list) {
            out = obj->element;
          } else if (key.constant.has_value() && key.constant->is_string()) {
            auto it = obj->fields.find(key.constant->as_string());
            if (it != obj->fields.end()) {
              out = it->second.value;
            }
          }
        }
      } else if (base.only(kAbsString)) {
        out = AbstractValue::OfKinds(kAbsString);
      }
      out.origins.insert(base.origins.begin(), base.origins.end());
      out.origins.insert(key.origins.begin(), key.origins.end());
      return out;
    }
  }
  return AbstractValue::MakeAny();
}

AbstractValue Analyzer::EvalBinary(const Expr& expr, Ctx& ctx) {
  const std::string& op = expr.name;
  // Both operands always evaluate abstractly (even short-circuit ones):
  // over-recording reads keeps the dependency slice sound.
  AbstractValue lhs = Eval(*expr.lhs, ctx);
  AbstractValue rhs = Eval(*expr.rhs, ctx);
  if (op == "and" || op == "or") {
    std::optional<bool> truthy = TruthyWithHeap(lhs);
    AbstractValue out;
    if (truthy.has_value()) {
      // Python returns the deciding operand.
      bool take_lhs = (op == "and") ? !*truthy : *truthy;
      out = take_lhs ? lhs : rhs;
    } else {
      out = JoinValues(&heap_, lhs, rhs);
    }
    out.origins.insert(lhs.origins.begin(), lhs.origins.end());
    out.origins.insert(rhs.origins.begin(), rhs.origins.end());
    return out;
  }
  return EvalBinaryAbstract(op, lhs, rhs);
}

AbstractValue Analyzer::EvalBinaryAbstract(const std::string& op,
                                           const AbstractValue& lhs,
                                           const AbstractValue& rhs) {
  auto with_origins = [&](AbstractValue v) {
    v.origins.insert(lhs.origins.begin(), lhs.origins.end());
    v.origins.insert(rhs.origins.begin(), rhs.origins.end());
    return v;
  };
  bool both_const = lhs.constant.has_value() && rhs.constant.has_value();
  if (op == "==" || op == "!=") {
    AbstractValue v = AbstractValue::OfKinds(kAbsBool);
    if (both_const) {
      bool eq = lhs.constant->Equals(*rhs.constant);
      v.constant = Value::Bool(op == "==" ? eq : !eq);
    }
    return with_origins(std::move(v));
  }
  if (op == "<" || op == "<=" || op == ">" || op == ">=") {
    AbstractValue v = AbstractValue::OfKinds(kAbsBool);
    if (both_const) {
      const Value& a = *lhs.constant;
      const Value& b = *rhs.constant;
      std::optional<int> cmp;
      if (a.is_number() && b.is_number()) {
        double x = a.as_double();
        double y = b.as_double();
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      } else if (a.is_string() && b.is_string()) {
        int c = a.as_string().compare(b.as_string());
        cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
      if (cmp.has_value()) {
        bool result = op == "<"    ? *cmp < 0
                      : op == "<=" ? *cmp <= 0
                      : op == ">"  ? *cmp > 0
                                   : *cmp >= 0;
        v.constant = Value::Bool(result);
      }
    }
    return with_origins(std::move(v));
  }
  if (op == "in" || op == "not in") {
    return with_origins(AbstractValue::OfKinds(kAbsBool));
  }
  if (op == "+") {
    if (lhs.only(kAbsInt) && rhs.only(kAbsInt)) {
      if (both_const) {
        return with_origins(AbstractValue::OfConstant(
            Value::Int(lhs.constant->as_int() + rhs.constant->as_int())));
      }
      AbstractValue v = AbstractValue::OfKinds(kAbsInt);
      if (lhs.int_min.has_value() && rhs.int_min.has_value()) {
        v.int_min = *lhs.int_min + *rhs.int_min;
      }
      if (lhs.int_max.has_value() && rhs.int_max.has_value()) {
        v.int_max = *lhs.int_max + *rhs.int_max;
      }
      return with_origins(std::move(v));
    }
    if (lhs.only(kAbsString) && rhs.only(kAbsString)) {
      if (both_const) {
        return with_origins(AbstractValue::OfConstant(Value::Str(
            lhs.constant->as_string() + rhs.constant->as_string())));
      }
      return with_origins(AbstractValue::OfKinds(kAbsString));
    }
    if (lhs.only(kAbsInt | kAbsDouble) && rhs.only(kAbsInt | kAbsDouble)) {
      // Double if either side definitely is; otherwise it depends.
      return with_origins(AbstractValue::OfKinds(
          (lhs.only(kAbsDouble) || rhs.only(kAbsDouble))
              ? kAbsDouble
              : (kAbsInt | kAbsDouble)));
    }
    if (lhs.only(kAbsList) && rhs.only(kAbsList)) {
      AbstractObject obj;
      obj.is_list = true;
      const AbstractObject* a =
          lhs.object != kNoHeapId ? heap_.Get(lhs.object) : nullptr;
      const AbstractObject* b =
          rhs.object != kNoHeapId ? heap_.Get(rhs.object) : nullptr;
      if (a != nullptr) {
        obj.element = JoinValues(&heap_, obj.element, a->element);
        obj.definitely_nonempty |= a->definitely_nonempty;
      }
      if (b != nullptr) {
        obj.element = JoinValues(&heap_, obj.element, b->element);
        obj.definitely_nonempty |= b->definitely_nonempty;
      }
      AbstractValue v = AbstractValue::OfKinds(kAbsList);
      v.object = heap_.Alloc(std::move(obj));
      return with_origins(std::move(v));
    }
    return with_origins(AbstractValue::MakeAny());
  }
  if (op == "-" || op == "*" || op == "/" || op == "//" || op == "%") {
    if (op == "*" && lhs.only(kAbsString) && rhs.only(kAbsInt)) {
      return with_origins(AbstractValue::OfKinds(kAbsString));
    }
    if (lhs.only(kAbsInt) && rhs.only(kAbsInt)) {
      if (op == "/") {
        return with_origins(AbstractValue::OfKinds(kAbsDouble));
      }
      if (both_const && op != "//" && op != "%") {
        int64_t a = lhs.constant->as_int();
        int64_t b = rhs.constant->as_int();
        return with_origins(AbstractValue::OfConstant(
            Value::Int(op == "-" ? a - b : a * b)));
      }
      if (both_const && rhs.constant->as_int() != 0) {
        // Floor semantics, mirroring the interpreter.
        int64_t a = lhs.constant->as_int();
        int64_t b = rhs.constant->as_int();
        int64_t q = a / b;
        int64_t r = a % b;
        if (r != 0 && ((a < 0) != (b < 0))) {
          --q;
          r += b;
        }
        return with_origins(
            AbstractValue::OfConstant(Value::Int(op == "//" ? q : r)));
      }
      AbstractValue v = AbstractValue::OfKinds(kAbsInt);
      if (op == "-") {
        if (lhs.int_min.has_value() && rhs.int_max.has_value()) {
          v.int_min = *lhs.int_min - *rhs.int_max;
        }
        if (lhs.int_max.has_value() && rhs.int_min.has_value()) {
          v.int_max = *lhs.int_max - *rhs.int_min;
        }
      }
      return with_origins(std::move(v));
    }
    if (lhs.only(kAbsInt | kAbsDouble) && rhs.only(kAbsInt | kAbsDouble)) {
      if (op == "/") {
        return with_origins(AbstractValue::OfKinds(kAbsDouble));
      }
      return with_origins(AbstractValue::OfKinds(
          (lhs.only(kAbsDouble) || rhs.only(kAbsDouble))
              ? kAbsDouble
              : (kAbsInt | kAbsDouble)));
    }
    return with_origins(AbstractValue::MakeAny());
  }
  return with_origins(AbstractValue::MakeAny());
}

// -- calls --

AbstractValue Analyzer::EvalCall(const Expr& expr, Ctx& ctx) {
  // Special forms, mirroring the interpreter (src/lang/interp.cc EvalCall).
  if (expr.lhs->kind == Expr::Kind::kName) {
    const std::string& name = expr.lhs->name;
    if (name == "import_python" || name == "import_thrift") {
      HandleImport(expr, ctx);
      return AbstractValue::OfConstant(Value::Null());
    }
    if (name == "export" || name == "export_if_last") {
      RecordExport(expr, name == "export_if_last", ctx);
      return AbstractValue::OfConstant(Value::Null());
    }
  }

  AbstractValue callee = Eval(*expr.lhs, ctx);
  std::vector<AbstractValue> args;
  args.reserve(expr.items.size());
  for (const ExprPtr& arg : expr.items) {
    args.push_back(Eval(*arg, ctx));
  }
  std::map<std::string, AbstractValue> kwargs;
  for (const auto& [kw, arg_expr] : expr.kwargs) {
    kwargs[kw] = Eval(*arg_expr, ctx);
  }

  AbstractValue out = AbstractValue::MakeAny();
  if (callee.function != nullptr) {
    const AbstractFunction& fn = *callee.function;
    if (!fn.struct_ctor.empty()) {
      out = CallStructCtor(fn.struct_ctor, expr.line, kwargs, ctx);
    } else if (!fn.builtin.empty()) {
      out = CallBuiltin(fn.builtin, args, ctx);
    } else if (fn.def != nullptr) {
      out = CallFunction(fn, std::move(args), std::move(kwargs), ctx);
    }
  }
  out.origins.insert(callee.origins.begin(), callee.origins.end());
  return out;
}

AbstractValue Analyzer::CallFunction(const AbstractFunction& fn,
                                     std::vector<AbstractValue> args,
                                     std::map<std::string, AbstractValue> kwargs,
                                     Ctx& ctx) {
  if (call_stack_.size() >= 16 ||
      std::find(call_stack_.begin(), call_stack_.end(), fn.def) !=
          call_stack_.end()) {
    return AbstractValue::MakeAny();  // Recursion / depth cap: give up.
  }
  call_stack_.push_back(fn.def);

  Ctx inner;
  inner.file = fn.file.empty() ? ctx.file : fn.file;
  inner.scopes.push_back(fn.env != nullptr ? fn.env : ctx.scopes.front());
  inner.scopes.push_back(std::make_shared<Bindings>());
  inner.exports_enabled = ctx.exports_enabled;
  inner.control_origins = ctx.control_origins;
  AbstractValue return_join = AbstractValue::Bottom();
  inner.return_join = &return_join;

  Bindings& locals = *inner.scopes.back();
  const FunctionDefStmt& def = *fn.def;
  for (size_t i = 0; i < def.params.size(); ++i) {
    if (i < args.size()) {
      locals[def.params[i]] = std::move(args[i]);
    } else if (auto it = kwargs.find(def.params[i]); it != kwargs.end()) {
      locals[def.params[i]] = std::move(it->second);
    } else if (i < def.defaults.size() && def.defaults[i] != nullptr) {
      locals[def.params[i]] = Eval(*def.defaults[i], inner);
    } else {
      locals[def.params[i]] = AbstractValue::MakeAny();
    }
  }

  bool falls_through = ExecBlock(def.body, inner);
  call_stack_.pop_back();
  if (falls_through) {
    return_join = JoinValues(&heap_, return_join,
                             AbstractValue::OfConstant(Value::Null()));
  }
  if (return_join.is_bottom()) {
    return AbstractValue::MakeAny();
  }
  return return_join;
}

AbstractValue Analyzer::CallStructCtor(
    const std::string& struct_name, int line,
    const std::map<std::string, AbstractValue>& kwargs, Ctx& ctx) {
  const StructDef* def = registry_.FindStruct(struct_name);
  AbstractObject obj;
  obj.struct_names.insert(struct_name);
  for (const auto& [kw, value] : kwargs) {
    if (def != nullptr && def->FindField(kw) == nullptr) {
      LintDiagnostic d;
      d.rule_id = "T011";
      d.severity = LintSeverity::kError;
      d.file = ctx.file;
      d.line = line;
      d.message = StrFormat("%s has no field named '%s'", struct_name.c_str(),
                            kw.c_str());
      d.suggestion = "check the field name against the schema";
      diags_.push_back(std::move(d));
    }
    obj.fields[kw] = AbstractField{value, false};
  }
  AbstractValue v = AbstractValue::OfKinds(kAbsDict);
  v.object = heap_.Alloc(std::move(obj));
  return v;
}

AbstractValue Analyzer::CallBuiltin(const std::string& name,
                                    std::vector<AbstractValue>& args,
                                    Ctx& ctx) {
  auto arg_origins = [&](AbstractValue v) {
    for (const AbstractValue& a : args) {
      v.origins.insert(a.origins.begin(), a.origins.end());
    }
    return v;
  };
  auto arg_object = [&](size_t i) -> AbstractObject* {
    if (i >= args.size() || args[i].object == kNoHeapId) {
      return nullptr;
    }
    return heap_.Get(args[i].object);
  };

  if (name == "len") {
    AbstractValue v = AbstractValue::OfKinds(kAbsInt);
    v.int_min = 0;
    return arg_origins(std::move(v));
  }
  if (name == "str" || name == "join" || name == "format" || name == "upper" ||
      name == "lower" || name == "strip" || name == "replace") {
    return arg_origins(AbstractValue::OfKinds(kAbsString));
  }
  if (name == "int") {
    AbstractValue v = AbstractValue::OfKinds(kAbsInt);
    if (!args.empty() && args[0].constant.has_value()) {
      const Value& c = *args[0].constant;
      if (c.is_int()) {
        v = AbstractValue::OfConstant(c);
      } else if (c.is_bool()) {
        v = AbstractValue::OfConstant(Value::Int(c.as_bool() ? 1 : 0));
      } else if (c.is_double()) {
        v = AbstractValue::OfConstant(
            Value::Int(static_cast<int64_t>(c.as_double())));
      }
    }
    return arg_origins(std::move(v));
  }
  if (name == "float") {
    return arg_origins(AbstractValue::OfKinds(kAbsDouble));
  }
  if (name == "abs") {
    if (!args.empty() && args[0].only(kAbsInt)) {
      AbstractValue v = AbstractValue::OfKinds(kAbsInt);
      v.int_min = 0;
      return arg_origins(std::move(v));
    }
    return arg_origins(AbstractValue::OfKinds(kAbsInt | kAbsDouble));
  }
  if (name == "startswith" || name == "endswith" || name == "has_key") {
    return arg_origins(AbstractValue::OfKinds(kAbsBool));
  }
  if (name == "range") {
    AbstractObject obj;
    obj.is_list = true;
    AbstractValue elem = AbstractValue::OfKinds(kAbsInt);
    if (args.size() == 1 && args[0].constant.has_value() &&
        args[0].constant->is_int()) {
      int64_t stop = args[0].constant->as_int();
      obj.definitely_nonempty = stop > 0;
      elem.int_min = 0;
      elem.int_max = stop - 1;
    } else if (args.size() >= 2 && args[0].constant.has_value() &&
               args[0].constant->is_int() && args[1].constant.has_value() &&
               args[1].constant->is_int() && args.size() == 2) {
      int64_t start = args[0].constant->as_int();
      int64_t stop = args[1].constant->as_int();
      obj.definitely_nonempty = start < stop;
      elem.int_min = start;
      elem.int_max = stop - 1;
    }
    obj.element = std::move(elem);
    AbstractValue v = AbstractValue::OfKinds(kAbsList);
    v.object = heap_.Alloc(std::move(obj));
    return arg_origins(std::move(v));
  }
  if (name == "sorted") {
    if (AbstractObject* src = arg_object(0); src != nullptr) {
      AbstractObject obj;
      obj.is_list = true;
      obj.element = src->element;
      obj.definitely_nonempty = src->definitely_nonempty;
      AbstractValue v = AbstractValue::OfKinds(kAbsList);
      v.object = heap_.Alloc(std::move(obj));
      return arg_origins(std::move(v));
    }
    return arg_origins(AbstractValue::OfKinds(kAbsList));
  }
  if (name == "min" || name == "max") {
    AbstractValue v = AbstractValue::Bottom();
    if (args.size() == 1 && args[0].only(kAbsList)) {
      if (AbstractObject* src = arg_object(0); src != nullptr) {
        v = src->element;
      } else {
        v = AbstractValue::MakeAny();
      }
    } else {
      for (const AbstractValue& a : args) {
        v = JoinValues(&heap_, v, a);
      }
    }
    if (v.is_bottom()) {
      v = AbstractValue::MakeAny();
    }
    return arg_origins(std::move(v));
  }
  if (name == "keys" || name == "values" || name == "items") {
    AbstractObject out;
    out.is_list = true;
    if (AbstractObject* src = arg_object(0); src != nullptr && !src->is_list) {
      AbstractValue keys = AbstractValue::OfKinds(kAbsString);
      AbstractValue vals = AbstractValue::Bottom();
      bool some_definite = false;
      for (const auto& [key, field] : src->fields) {
        vals = JoinValues(&heap_, vals, field.value);
        some_definite = some_definite || !field.maybe_absent;
      }
      if (vals.is_bottom()) {
        vals = AbstractValue::MakeAny();
      }
      out.definitely_nonempty = some_definite;
      if (name == "keys") {
        out.element = std::move(keys);
      } else if (name == "values") {
        out.element = std::move(vals);
      } else {
        AbstractObject pair;
        pair.is_list = true;
        pair.definitely_nonempty = true;
        pair.element = JoinValues(&heap_, keys, vals);
        AbstractValue pair_v = AbstractValue::OfKinds(kAbsList);
        pair_v.object = heap_.Alloc(std::move(pair));
        out.element = std::move(pair_v);
      }
    } else if (name == "keys") {
      out.element = AbstractValue::OfKinds(kAbsString);
    } else {
      out.element = AbstractValue::MakeAny();
    }
    AbstractValue v = AbstractValue::OfKinds(kAbsList);
    v.object = heap_.Alloc(std::move(out));
    return arg_origins(std::move(v));
  }
  if (name == "append") {
    if (AbstractObject* obj = arg_object(0);
        obj != nullptr && obj->is_list && args.size() >= 2) {
      obj->element = JoinValues(&heap_, obj->element, args[1]);
      // Guarded appends (inside a branch) can't prove nonemptiness: the
      // state join keeps the stronger claim when the same heap id appears
      // on both sides, so only claim it on straight-line code.
      if (ctx.control_origins.empty()) {
        obj->definitely_nonempty = true;
      }
    }
    return AbstractValue::OfConstant(Value::Null());
  }
  if (name == "extend") {
    AbstractObject* dst = arg_object(0);
    AbstractObject* src = arg_object(1);
    if (dst != nullptr && dst->is_list) {
      if (src != nullptr && src->is_list) {
        dst->element = JoinValues(&heap_, dst->element, src->element);
        if (ctx.control_origins.empty() && src->definitely_nonempty) {
          dst->definitely_nonempty = true;
        }
      } else if (args.size() >= 2) {
        dst->element = JoinValues(&heap_, dst->element,
                                  AbstractValue::MakeAny());
      }
    }
    return AbstractValue::OfConstant(Value::Null());
  }
  if (name == "get") {
    AbstractValue fallback = args.size() >= 3
                                 ? args[2]
                                 : AbstractValue::OfConstant(Value::Null());
    if (AbstractObject* obj = arg_object(0);
        obj != nullptr && !obj->is_list && args.size() >= 2 &&
        args[1].constant.has_value() && args[1].constant->is_string()) {
      auto it = obj->fields.find(args[1].constant->as_string());
      if (it == obj->fields.end()) {
        return arg_origins(obj->fields_known ? std::move(fallback)
                                             : AbstractValue::MakeAny());
      }
      if (!it->second.maybe_absent) {
        return arg_origins(it->second.value);
      }
      return arg_origins(JoinValues(&heap_, it->second.value, fallback));
    }
    return arg_origins(AbstractValue::MakeAny());
  }
  if (name == "split") {
    AbstractObject obj;
    obj.is_list = true;
    obj.definitely_nonempty = true;  // split() always yields >= 1 piece.
    obj.element = AbstractValue::OfKinds(kAbsString);
    AbstractValue v = AbstractValue::OfKinds(kAbsList);
    v.object = heap_.Alloc(std::move(obj));
    return arg_origins(std::move(v));
  }
  if (name == "merge") {
    if (args.size() >= 2) {
      return arg_origins(MergeDicts(args[0], args[1]));
    }
    return arg_origins(AbstractValue::MakeAny());
  }
  if (name == "fail") {
    return AbstractValue::Bottom();  // Never returns a value.
  }
  return arg_origins(AbstractValue::MakeAny());
}

AbstractValue Analyzer::MergeDicts(const AbstractValue& a,
                                   const AbstractValue& b) {
  if (++merge_depth_ > 16) {  // Self-referential dicts: stop unrolling.
    --merge_depth_;
    return AbstractValue::OfKinds(kAbsDict);
  }
  const AbstractObject* base =
      a.object != kNoHeapId ? heap_.Get(a.object) : nullptr;
  const AbstractObject* over =
      b.object != kNoHeapId ? heap_.Get(b.object) : nullptr;
  AbstractObject out;
  if (base != nullptr) {
    out.struct_names = base->struct_names;  // merge() keeps the base's tag.
  }
  if (base == nullptr || over == nullptr) {
    out.fields_known = false;
  } else {
    out.fields_known = base->fields_known && over->fields_known;
    out.fields = base->fields;
    for (const auto& [key, field] : over->fields) {
      auto it = out.fields.find(key);
      AbstractValue merged = field.value;
      if (it != out.fields.end() && it->second.value.only(kAbsDict) &&
          field.value.only(kAbsDict)) {
        merged = MergeDicts(it->second.value, field.value);
      }
      if (it == out.fields.end()) {
        out.fields[key] = AbstractField{std::move(merged), field.maybe_absent};
      } else if (field.maybe_absent) {
        out.fields[key] = AbstractField{
            JoinValues(&heap_, it->second.value, merged),
            it->second.maybe_absent};
      } else {
        out.fields[key] = AbstractField{std::move(merged), false};
      }
    }
  }
  AbstractValue v = AbstractValue::OfKinds(kAbsDict);
  v.object = heap_.Alloc(std::move(out));
  v.origins = a.origins;
  v.origins.insert(b.origins.begin(), b.origins.end());
  --merge_depth_;
  return v;
}

// -- cross-module: imports, schemas, validators --

Result<std::shared_ptr<Module>> Analyzer::ParseSource(
    const std::string& content, const std::string& path) {
  return ast_cache_ != nullptr ? ast_cache_->GetOrParse(path, content)
                               : ParseCsl(content, path);
}

void Analyzer::HandleImport(const Expr& expr, Ctx& ctx) {
  // Evaluate the arguments like the interpreter would (records reads made
  // while computing a dynamic path, even though we then give up on it).
  for (const ExprPtr& arg : expr.items) {
    Eval(*arg, ctx);
  }
  ImportTarget target = ClassifyImport(expr);
  switch (target.kind) {
    case ImportTarget::Kind::kDynamic:
      // Path or filter computed at evaluation time: the slice can't know
      // what this pulls in.
      slice_sound_ = false;
      return;
    case ImportTarget::Kind::kSchema:
      LoadSchema(target.path);
      return;
    case ImportTarget::Kind::kModule:
      break;
  }
  std::shared_ptr<Bindings> module = AnalyzeModule(target.path);
  if (module == nullptr) {
    slice_sound_ = false;
    return;
  }
  if (target.filter == "*") {
    // Star import: additions to the module's surface can shadow names here.
    reads_[target.path].insert("*");
  }
  for (const auto& [symbol, value] : *module) {
    if (target.filter != "*" && target.filter != symbol) {
      continue;
    }
    AbstractValue copied = value;
    copied.origins.insert({target.path, symbol});
    (*ctx.scopes.back())[symbol] = std::move(copied);
  }
}

std::shared_ptr<Bindings> Analyzer::AnalyzeModule(const std::string& path) {
  auto cached = module_cache_.find(path);
  if (cached != module_cache_.end()) {
    return cached->second;  // nullptr marks an import cycle (compiler errors).
  }
  if (visiting_.count(path) > 0 || !reader_) {
    return nullptr;
  }
  module_cache_[path] = nullptr;
  visiting_.insert(path);
  auto source = reader_(path);
  if (!source.ok()) {
    visiting_.erase(path);
    return nullptr;
  }
  auto module = ParseSource(*source, path);
  if (!module.ok()) {
    visiting_.erase(path);
    return nullptr;
  }
  modules_alive_.push_back(*module);
  auto globals = std::make_shared<Bindings>();
  Ctx ctx;
  ctx.file = path;
  ctx.scopes.push_back(globals);
  ctx.exports_enabled = false;
  ExecBlock((*module)->body, ctx);
  visiting_.erase(path);
  module_cache_[path] = globals;
  return globals;
}

void Analyzer::LoadSchema(const std::string& path) {
  if (!loaded_schemas_.insert(path).second) {
    return;
  }
  reads_[path].insert("*");  // Schema files diff at file granularity.
  if (!reader_) {
    slice_sound_ = false;
    return;
  }
  auto source = reader_(path);
  if (!source.ok()) {
    slice_sound_ = false;
    return;
  }
  auto include_resolver = [this](const std::string& inc) {
    reads_[inc].insert("*");
    return reader_(inc);
  };
  if (!registry_.ParseAndRegister(*source, path, include_resolver).ok() ||
      !registry_.ResolveAll().ok()) {
    // Broken schema: the compiler reports it; degrade silently.
    return;
  }
  // Constructors and enum namespaces, like RegisterSchemaConstructors.
  for (const std::string& struct_name : registry_.StructNames()) {
    auto fn = std::make_shared<AbstractFunction>();
    fn->struct_ctor = struct_name;
    AbstractValue v = AbstractValue::OfKinds(kAbsFunction);
    v.function = std::move(fn);
    schema_env_[struct_name] = std::move(v);
  }
  for (const std::string& enum_name : registry_.EnumNames()) {
    const EnumDef* e = registry_.FindEnum(enum_name);
    AbstractObject ns;
    ns.struct_names.insert("enum " + enum_name);
    for (const auto& [value_name, value] : e->values) {
      ns.fields[value_name] =
          AbstractField{AbstractValue::OfConstant(Value::Int(value)), false};
    }
    ns.definitely_nonempty = !e->values.empty();
    AbstractValue v = AbstractValue::OfKinds(kAbsDict);
    v.object = heap_.Alloc(std::move(ns));
    schema_env_[enum_name] = std::move(v);
  }
  // Validator companion: its asserts bound field values (T013) and its
  // symbols are dependency edges.
  std::string validator_path = path + "-cvalidator";
  auto validator_source = reader_(validator_path);
  if (validator_source.ok()) {
    reads_[validator_path].insert("*");
    MineValidatorBounds(validator_path, *validator_source);
  }
}

namespace bound_mining {

// Collects `cfg.field OP literal` constraints from an assert condition,
// recursing through `and` conjunctions.
void MineCondition(const Expr& cond, const std::string& param,
                   std::map<std::string, FieldBounds>* bounds) {
  if (cond.kind != Expr::Kind::kBinary) {
    return;
  }
  if (cond.name == "and") {
    MineCondition(*cond.lhs, param, bounds);
    MineCondition(*cond.rhs, param, bounds);
    return;
  }
  std::string op = cond.name;
  const Expr* attr = cond.lhs.get();
  const Expr* lit = cond.rhs.get();
  if (attr->kind == Expr::Kind::kLiteral && lit->kind == Expr::Kind::kAttr) {
    std::swap(attr, lit);  // `0 < cfg.f` is `cfg.f > 0`.
    if (op == "<") {
      op = ">";
    } else if (op == "<=") {
      op = ">=";
    } else if (op == ">") {
      op = "<";
    } else if (op == ">=") {
      op = "<=";
    }
  }
  if (attr->kind != Expr::Kind::kAttr || attr->lhs == nullptr ||
      attr->lhs->kind != Expr::Kind::kName || attr->lhs->name != param ||
      lit->kind != Expr::Kind::kLiteral || !lit->literal.is_int()) {
    return;
  }
  int64_t v = lit->literal.as_int();
  FieldBounds& fb = (*bounds)[attr->name];
  if (op == ">") {
    fb.min = std::max(fb.min.value_or(v + 1), v + 1);
  } else if (op == ">=") {
    fb.min = std::max(fb.min.value_or(v), v);
  } else if (op == "<") {
    fb.max = std::min(fb.max.value_or(v - 1), v - 1);
  } else if (op == "<=") {
    fb.max = std::min(fb.max.value_or(v), v);
  }
}

}  // namespace bound_mining

void Analyzer::MineValidatorBounds(const std::string& validator_path,
                                   const std::string& source) {
  auto module = ParseSource(source, validator_path);
  if (!module.ok()) {
    return;
  }
  for (const StmtPtr& stmt : (*module)->body) {
    if (stmt->kind != Stmt::Kind::kDef ||
        !stmt->def->name.starts_with("validate_") ||
        stmt->def->params.size() != 1) {
      continue;
    }
    std::string struct_name = stmt->def->name.substr(strlen("validate_"));
    reads_[validator_path].insert(stmt->def->name);
    const std::string& param = stmt->def->params[0];
    for (const StmtPtr& body_stmt : stmt->def->body) {
      if (body_stmt->kind == Stmt::Kind::kAssert) {
        bound_mining::MineCondition(*body_stmt->target, param,
                                    &validator_bounds_[struct_name]);
      }
    }
  }
}

// -- exports and results --

void Analyzer::RecordExport(const Expr& expr, bool if_last, Ctx& ctx) {
  std::string out_path;
  const Expr* value_expr = nullptr;
  if (if_last) {
    out_path = ConfigCompiler::OutputPathFor(entry_path_);
    if (expr.items.size() == 1) {
      value_expr = expr.items[0].get();
    }
  } else if (expr.items.size() == 2) {
    AbstractValue name = Eval(*expr.items[0], ctx);
    out_path = name.constant.has_value() && name.constant->is_string()
                   ? name.constant->as_string()
                   : StrFormat("<dynamic:%d>", expr.line);
    value_expr = expr.items[1].get();
  }
  if (value_expr == nullptr) {
    return;  // Arity error: the compiler reports it.
  }
  AbstractValue value = Eval(*value_expr, ctx);
  if (!ctx.exports_enabled) {
    return;
  }
  ExportRec rec;
  rec.path = std::move(out_path);
  rec.line = expr.line;
  rec.value = std::move(value);
  rec.control_origins = ctx.control_origins;
  exports_.push_back(std::move(rec));
}

void Analyzer::CollectOrigins(const AbstractValue& v, std::set<HeapId>& seen,
                              OriginSet& out) const {
  out.insert(v.origins.begin(), v.origins.end());
  if (v.object == kNoHeapId || !seen.insert(v.object).second) {
    return;
  }
  const AbstractObject* obj = heap_.Get(v.object);
  if (obj == nullptr) {
    return;
  }
  CollectOrigins(obj->element, seen, out);
  for (const auto& [name, field] : obj->fields) {
    CollectOrigins(field.value, seen, out);
  }
}

std::string Analyzer::RenderAbstract(const AbstractValue& v,
                                     std::set<HeapId>& seen,
                                     bool* precise) const {
  if (v.any) {
    *precise = false;
    return "?";
  }
  if (v.kinds == 0) {
    *precise = false;
    return "<unreachable>";
  }
  if (v.constant.has_value()) {
    return v.constant->ToDebugString();
  }
  if (v.only(kAbsNull)) {
    return "None";
  }
  if (v.only(kAbsFunction)) {
    // Identity-comparable only via the surface fingerprint, never the
    // summary; render enough to be stable, but never "precise".
    *precise = false;
    if (v.function != nullptr && !v.function->builtin.empty()) {
      return "builtin:" + v.function->builtin;
    }
    if (v.function != nullptr && !v.function->struct_ctor.empty()) {
      return "ctor:" + v.function->struct_ctor;
    }
    if (v.function != nullptr && v.function->def != nullptr) {
      return "fn:" + v.function->def->name;
    }
    return "fn:?";
  }
  if (v.object != kNoHeapId && v.only(kAbsDict | kAbsList)) {
    if (!seen.insert(v.object).second) {
      *precise = false;  // Cyclic structure.
      return "<cycle>";
    }
    const AbstractObject* obj = heap_.Get(v.object);
    if (obj == nullptr) {
      *precise = false;
      return "?";
    }
    if (obj->is_list) {
      // Element joins lose order and multiplicity: never precise.
      *precise = false;
      std::string out = "[";
      out += RenderAbstract(obj->element, seen, precise);
      out += obj->definitely_nonempty ? " x1+]" : " x0+]";
      return out;
    }
    std::string out = "{";
    if (!obj->struct_names.empty()) {
      for (const std::string& name : obj->struct_names) {
        out += name + "|";
      }
    }
    if (obj->struct_names.size() > 1) {
      *precise = false;  // Branch-dependent type tag.
    }
    for (const auto& [name, field] : obj->fields) {
      out += name;
      if (field.maybe_absent) {
        out += "?";
        *precise = false;
      }
      out += "=";
      out += RenderAbstract(field.value, seen, precise);
      out += ",";
    }
    if (!obj->fields_known) {
      out += "...";
      *precise = false;
    }
    out += "}";
    return out;
  }
  // A kind set without a known constant: real information (the type rules
  // use it), but many concrete values satisfy it.
  *precise = false;
  std::string out = v.Describe();
  if (v.only(kAbsInt) && (v.int_min.has_value() || v.int_max.has_value())) {
    out += "[";
    out += v.int_min.has_value() ? std::to_string(*v.int_min) : "";
    out += "..";
    out += v.int_max.has_value() ? std::to_string(*v.int_max) : "";
    out += "]";
  }
  return out;
}

SymbolSummary Analyzer::Summarize(const AbstractValue& v) const {
  SymbolSummary s;
  s.kinds = v.kinds;
  s.any = v.any;
  s.precise = true;
  std::set<HeapId> render_seen;
  s.digest = RenderAbstract(v, render_seen, &s.precise);
  constexpr size_t kBriefCap = 64;
  s.brief = s.digest.size() <= kBriefCap
                ? s.digest
                : s.digest.substr(0, kBriefCap - 3) + "...";
  if (v.object != kNoHeapId) {
    const AbstractObject* obj = heap_.Get(v.object);
    if (obj != nullptr && obj->struct_names.size() == 1) {
      s.type_name = *obj->struct_names.begin();
    }
  }
  OriginSet origins;
  std::set<HeapId> seen;
  CollectOrigins(v, seen, origins);
  for (const auto& [module_path, symbol] : origins) {
    s.deps[module_path].insert(symbol);
  }
  return s;
}

// Flattens an exported abstract value into dot-path facts that outlive the
// heap. Lists are not descended into (invariants address dict fields and
// scalar roots); depth and entry caps bound pathological nesting.
void Analyzer::FlattenFields(const AbstractValue& v, const std::string& prefix,
                             bool maybe_absent, int depth,
                             std::set<HeapId>& seen,
                             AbstractFieldMap* out) const {
  constexpr int kMaxDepth = 6;
  constexpr size_t kMaxEntries = 256;
  if (out->size() >= kMaxEntries) {
    return;
  }
  AbstractFieldFacts& facts = (*out)[prefix];
  facts.kinds = v.kinds;
  facts.any = v.any;
  facts.constant = v.constant;
  facts.int_min = v.int_min;
  facts.int_max = v.int_max;
  facts.maybe_absent = maybe_absent;
  if (v.object == kNoHeapId || depth >= kMaxDepth ||
      !seen.insert(v.object).second) {
    return;
  }
  const AbstractObject* obj = heap_.Get(v.object);
  if (obj == nullptr || obj->is_list) {
    return;
  }
  for (const auto& [name, field] : obj->fields) {
    std::string child = prefix.empty() ? name : prefix + "." + name;
    FlattenFields(field.value, child, maybe_absent || field.maybe_absent,
                  depth + 1, seen, out);
  }
}

AbsintResult Analyzer::Run(const std::string& path,
                           const std::string& content) {
  AbsintResult result;
  entry_path_ = path;
  auto module = ParseSource(content, path);
  if (!module.ok()) {
    result.slice_sound = false;
    return result;  // analyzed = false: the compiler reports parse errors.
  }
  result.analyzed = true;
  modules_alive_.push_back(*module);

  auto globals = std::make_shared<Bindings>();
  module_cache_[path] = globals;  // Self-import resolves, as in the compiler.
  Ctx ctx;
  ctx.file = path;
  ctx.scopes.push_back(globals);
  ctx.exports_enabled = path.ends_with(".cconf");
  ExecBlock((*module)->body, ctx);

  // Check each export against its schema on the final state — the compiler
  // type-checks at session end, after any post-export mutations.
  for (const ExportRec& rec : exports_) {
    std::string struct_name;
    if (rec.value.object != kNoHeapId) {
      const AbstractObject* obj = heap_.Get(rec.value.object);
      if (obj != nullptr && obj->struct_names.size() == 1) {
        struct_name = *obj->struct_names.begin();
      }
    }
    if (struct_name.starts_with("enum ")) {
      struct_name.clear();  // The compiler skips enum-tagged exports.
    }
    RunTypeRules(registry_, validator_bounds_, heap_, path, rec.line, rec.path,
                 struct_name, rec.value, &diags_);

    ExportSlice slice;
    slice.path = rec.path;
    slice.type_name = struct_name;
    slice.line = rec.line;
    OriginSet origins;
    std::set<HeapId> seen;
    CollectOrigins(rec.value, seen, origins);
    for (const auto& [module_path, symbol] : rec.control_origins) {
      if (origins.count({module_path, symbol}) == 0) {
        slice.control_by_module[module_path].insert(symbol);
      }
    }
    origins.insert(rec.control_origins.begin(), rec.control_origins.end());
    for (const auto& [module_path, symbol] : origins) {
      slice.symbols_by_module[module_path].insert(symbol);
    }
    SymbolSummary value_summary = Summarize(rec.value);
    slice.value_digest = std::move(value_summary.digest);
    slice.value_brief = std::move(value_summary.brief);
    slice.value_precise = value_summary.precise;
    std::set<HeapId> flatten_seen;
    FlattenFields(rec.value, "", /*maybe_absent=*/false, /*depth=*/0,
                  flatten_seen, &slice.fields);
    result.exports.push_back(std::move(slice));
  }

  // The provenance graph's nodes: every surviving top-level binding.
  for (const auto& [name, value] : *globals) {
    result.symbol_summaries.emplace(name, Summarize(value));
  }

  for (const auto& [site, truths] : branch_truths_) {
    if (truths.size() == 1) {
      result.decided_branches.push_back(
          DecidedBranch{site.first, site.second, *truths.begin()});
    }
  }

  SortDiagnostics(&diags_);
  result.diagnostics = std::move(diags_);
  result.used_symbols = std::move(reads_);
  result.slice_sound = slice_sound_;
  return result;
}

}  // namespace

// ---- AbstractInterpreter ----------------------------------------------------

AbstractInterpreter::AbstractInterpreter(FileReader reader)
    : reader_(std::move(reader)) {}

AbsintResult AbstractInterpreter::Analyze(const std::string& path,
                                          const std::string& content) const {
  if (!path.ends_with(".cconf") && !path.ends_with(".cinc")) {
    return AbsintResult{};  // Not CSL; nothing to analyze.
  }
  Analyzer analyzer(reader_, ast_cache_);
  return analyzer.Run(path, content);
}

AbsintResult AbstractInterpreter::AnalyzePath(const std::string& path) const {
  if (!reader_) {
    AbsintResult result;
    result.slice_sound = false;
    return result;
  }
  auto content = reader_(path);
  if (!content.ok()) {
    AbsintResult result;
    result.slice_sound = false;
    return result;
  }
  return Analyze(path, *content);
}

// ---- Symbol surfaces and diffing --------------------------------------------

namespace {

// Deterministic structural dump of an AST subtree: two statements with the
// same dump behave identically, so dumps double as fingerprints.
void DumpExpr(const Expr& expr, std::string* out);
void DumpStmt(const Stmt& stmt, std::string* out);

void DumpExpr(const Expr& expr, std::string* out) {
  out->push_back('(');
  out->append(std::to_string(static_cast<int>(expr.kind)));
  if (expr.kind == Expr::Kind::kLiteral) {
    out->push_back(' ');
    out->append(expr.literal.ToDebugString());
  }
  if (!expr.name.empty()) {
    out->push_back(' ');
    out->append(expr.name);
  }
  for (const ExprPtr& item : expr.items) {
    DumpExpr(*item, out);
  }
  for (const auto& [key, value] : expr.pairs) {
    DumpExpr(*key, out);
    out->push_back(':');
    DumpExpr(*value, out);
  }
  for (const auto& [kw, value] : expr.kwargs) {
    out->append(kw);
    out->push_back('=');
    DumpExpr(*value, out);
  }
  if (expr.lhs != nullptr) {
    DumpExpr(*expr.lhs, out);
  }
  if (expr.rhs != nullptr) {
    DumpExpr(*expr.rhs, out);
  }
  if (expr.third != nullptr) {
    DumpExpr(*expr.third, out);
  }
  out->push_back(')');
}

void DumpStmt(const Stmt& stmt, std::string* out) {
  out->push_back('[');
  out->append(std::to_string(static_cast<int>(stmt.kind)));
  if (!stmt.op.empty()) {
    out->push_back(' ');
    out->append(stmt.op);
  }
  for (const std::string& var : stmt.loop_vars) {
    out->push_back(' ');
    out->append(var);
  }
  if (stmt.target != nullptr) {
    DumpExpr(*stmt.target, out);
  }
  if (stmt.value != nullptr) {
    DumpExpr(*stmt.value, out);
  }
  for (const StmtPtr& s : stmt.body) {
    DumpStmt(*s, out);
  }
  for (const StmtPtr& s : stmt.orelse) {
    DumpStmt(*s, out);
  }
  if (stmt.def != nullptr) {
    out->append(stmt.def->name);
    for (size_t i = 0; i < stmt.def->params.size(); ++i) {
      out->push_back(' ');
      out->append(stmt.def->params[i]);
      if (i < stmt.def->defaults.size() && stmt.def->defaults[i] != nullptr) {
        out->push_back('=');
        DumpExpr(*stmt.def->defaults[i], out);
      }
    }
    for (const StmtPtr& s : stmt.def->body) {
      DumpStmt(*s, out);
    }
  }
  out->push_back(']');
}

void CollectExprNames(const Expr& expr, std::set<std::string>* out) {
  if (expr.kind == Expr::Kind::kName) {
    out->insert(expr.name);
  }
  for (const ExprPtr& item : expr.items) {
    CollectExprNames(*item, out);
  }
  for (const auto& [key, value] : expr.pairs) {
    CollectExprNames(*key, out);
    CollectExprNames(*value, out);
  }
  for (const auto& [kw, value] : expr.kwargs) {
    CollectExprNames(*value, out);
  }
  if (expr.lhs != nullptr) {
    CollectExprNames(*expr.lhs, out);
  }
  if (expr.rhs != nullptr) {
    CollectExprNames(*expr.rhs, out);
  }
  if (expr.third != nullptr) {
    CollectExprNames(*expr.third, out);
  }
}

void CollectStmtNames(const Stmt& stmt, std::set<std::string>* out) {
  if (stmt.target != nullptr) {
    CollectExprNames(*stmt.target, out);
  }
  if (stmt.value != nullptr) {
    CollectExprNames(*stmt.value, out);
  }
  for (const StmtPtr& s : stmt.body) {
    CollectStmtNames(*s, out);
  }
  for (const StmtPtr& s : stmt.orelse) {
    CollectStmtNames(*s, out);
  }
  if (stmt.def != nullptr) {
    for (const ExprPtr& d : stmt.def->defaults) {
      if (d != nullptr) {
        CollectExprNames(*d, out);
      }
    }
    // Over-approximates: local names count as reads too. Spurious edges
    // only widen invalidation, never narrow it.
    for (const StmtPtr& s : stmt.def->body) {
      CollectStmtNames(*s, out);
    }
  }
}

// Names a (possibly nested) statement assigns at its scope.
void CollectAssigned(const Stmt& stmt, std::set<std::string>* out) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
    case Stmt::Kind::kAugAssign: {
      const Expr* target = stmt.target.get();
      while (target != nullptr && (target->kind == Expr::Kind::kAttr ||
                                   target->kind == Expr::Kind::kIndex)) {
        target = target->lhs.get();
      }
      if (target != nullptr && target->kind == Expr::Kind::kName) {
        out->insert(target->name);
      }
      return;
    }
    case Stmt::Kind::kDef:
      out->insert(stmt.def->name);
      return;
    case Stmt::Kind::kFor:
      for (const std::string& var : stmt.loop_vars) {
        out->insert(var);
      }
      [[fallthrough]];
    case Stmt::Kind::kIf:
    case Stmt::Kind::kWhile:
      for (const StmtPtr& s : stmt.body) {
        CollectAssigned(*s, out);
      }
      for (const StmtPtr& s : stmt.orelse) {
        CollectAssigned(*s, out);
      }
      return;
    default:
      return;
  }
}

bool ContainsImportCall(const Expr& expr) {
  if (IsImportCall(expr)) {
    return true;
  }
  for (const ExprPtr& item : expr.items) {
    if (ContainsImportCall(*item)) {
      return true;
    }
  }
  for (const auto& [key, value] : expr.pairs) {
    if (ContainsImportCall(*key) || ContainsImportCall(*value)) {
      return true;
    }
  }
  for (const auto& [kw, value] : expr.kwargs) {
    if (ContainsImportCall(*value)) {
      return true;
    }
  }
  if (expr.lhs != nullptr && ContainsImportCall(*expr.lhs)) {
    return true;
  }
  if (expr.rhs != nullptr && ContainsImportCall(*expr.rhs)) {
    return true;
  }
  return expr.third != nullptr && ContainsImportCall(*expr.third);
}

bool ContainsImportStmt(const Stmt& stmt) {
  if (stmt.target != nullptr && ContainsImportCall(*stmt.target)) {
    return true;
  }
  if (stmt.value != nullptr && ContainsImportCall(*stmt.value)) {
    return true;
  }
  for (const StmtPtr& s : stmt.body) {
    if (ContainsImportStmt(*s)) {
      return true;
    }
  }
  for (const StmtPtr& s : stmt.orelse) {
    if (ContainsImportStmt(*s)) {
      return true;
    }
  }
  return false;
}

}  // namespace

namespace {

void MaxExprLine(const Expr& expr, int* line);
void MaxStmtLine(const Stmt& stmt, int* line);

void MaxExprLine(const Expr& expr, int* line) {
  *line = std::max(*line, expr.line);
  for (const ExprPtr& item : expr.items) {
    MaxExprLine(*item, line);
  }
  for (const auto& [key, value] : expr.pairs) {
    MaxExprLine(*key, line);
    MaxExprLine(*value, line);
  }
  for (const auto& [kw, value] : expr.kwargs) {
    MaxExprLine(*value, line);
  }
  if (expr.lhs != nullptr) {
    MaxExprLine(*expr.lhs, line);
  }
  if (expr.rhs != nullptr) {
    MaxExprLine(*expr.rhs, line);
  }
  if (expr.third != nullptr) {
    MaxExprLine(*expr.third, line);
  }
}

void MaxStmtLine(const Stmt& stmt, int* line) {
  *line = std::max(*line, stmt.line);
  if (stmt.target != nullptr) {
    MaxExprLine(*stmt.target, line);
  }
  if (stmt.value != nullptr) {
    MaxExprLine(*stmt.value, line);
  }
  for (const StmtPtr& s : stmt.body) {
    MaxStmtLine(*s, line);
  }
  for (const StmtPtr& s : stmt.orelse) {
    MaxStmtLine(*s, line);
  }
  if (stmt.def != nullptr) {
    for (const ExprPtr& d : stmt.def->defaults) {
      if (d != nullptr) {
        MaxExprLine(*d, line);
      }
    }
    for (const StmtPtr& s : stmt.def->body) {
      MaxStmtLine(*s, line);
    }
  }
}

}  // namespace

ModuleSymbolSurface ComputeSymbolSurface(const std::string& path,
                                         const std::string& content,
                                         AstCache* ast_cache) {
  ModuleSymbolSurface surface;
  auto module = ast_cache != nullptr ? ast_cache->GetOrParse(path, content)
                                     : ParseCsl(content, path);
  if (!module.ok()) {
    return surface;  // analyzable = false.
  }
  surface.analyzable = true;
  for (const StmtPtr& stmt : (*module)->body) {
    std::set<std::string> defined;
    CollectAssigned(*stmt, &defined);
    bool side_effecting = defined.empty() ||
                          stmt->kind == Stmt::Kind::kExpr ||
                          stmt->kind == Stmt::Kind::kAssert ||
                          ContainsImportStmt(*stmt);
    std::string dump;
    DumpStmt(*stmt, &dump);
    dump.push_back('\n');
    if (side_effecting) {
      // Imports, exports, asserts, bare calls: their effects aren't
      // attributable to one symbol, so any change falls back to file level.
      surface.side_effects += dump;
    }
    if (defined.empty()) {
      continue;
    }
    std::set<std::string> read_names;
    CollectStmtNames(*stmt, &read_names);
    int last_line = stmt->line;
    MaxStmtLine(*stmt, &last_line);
    for (const std::string& name : defined) {
      surface.fingerprints[name] += dump;
      surface.reads[name].insert(read_names.begin(), read_names.end());
      surface.def_lines[name].push_back({stmt->line, last_line});
    }
  }
  return surface;
}

std::optional<std::set<std::string>> ChangedSymbols(
    const ModuleSymbolSurface& old_surface,
    const ModuleSymbolSurface& new_surface) {
  if (!old_surface.analyzable || !new_surface.analyzable) {
    return std::nullopt;
  }
  if (old_surface.side_effects != new_surface.side_effects) {
    return std::nullopt;  // Import/export/assert statements changed.
  }
  std::set<std::string> changed;
  bool surface_grew = false;
  for (const auto& [name, fingerprint] : new_surface.fingerprints) {
    auto it = old_surface.fingerprints.find(name);
    if (it == old_surface.fingerprints.end()) {
      changed.insert(name);
      surface_grew = true;  // Addition: may shadow via star imports.
    } else if (it->second != fingerprint) {
      changed.insert(name);
    }
  }
  for (const auto& [name, fingerprint] : old_surface.fingerprints) {
    if (new_surface.fingerprints.count(name) == 0) {
      changed.insert(name);  // Deletion.
    }
  }
  // Intra-module closure: `B = A + 1` changes when A does. Iterate the
  // union def-use graph to a fixpoint.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto* reads : {&old_surface.reads, &new_surface.reads}) {
      for (const auto& [name, read_names] : *reads) {
        if (changed.count(name) > 0) {
          continue;
        }
        for (const std::string& read : read_names) {
          if (changed.count(read) > 0) {
            changed.insert(name);
            grew = true;
            break;
          }
        }
      }
    }
  }
  if (surface_grew) {
    changed.insert("*");
  }
  return changed;
}

}  // namespace configerator
