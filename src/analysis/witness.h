// Counterexample witnesses for cross-config invariants: the concrete side of
// the checker. Where invariant.cc reasons over abstract intervals, this
// module compiles the involved entries for real, evaluates the predicate on
// concrete values, shrinks the result with ddmin (src/util/ddmin.h), and
// re-validates the shrunk witness — the zero-spurious-report guarantee lives
// here. Tortoise (PAPERS.md) argues configuration errors should be reported
// with concrete counterexamples the user can act on; a Witness is exactly
// that: the minimal symbol valuation (and, for gatekeeper predicates, the
// minimal concrete UserContext) that demonstrably falsifies the invariant.

#ifndef SRC_ANALYSIS_WITNESS_H_
#define SRC_ANALYSIS_WITNESS_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/json/json.h"
#include "src/lang/compiler.h"

namespace configerator {

struct Witness {
  // True only after the final shrunk witness re-evaluated concretely as a
  // violation. The checker never reports a witness with validated == false.
  bool validated = false;
  // Minimal symbol valuation: ("config:field", rendered concrete value).
  // For sum invariants that *exceed* their budget this is the ddmin-minimal
  // subset of terms that already exceeds it alone; for equality/deficit
  // violations every term is listed (dropping terms changes the sum).
  std::vector<std::pair<std::string, std::string>> valuation;
  // Concrete context for gatekeeper invariants: only the fields that matter
  // (ddmin-shrunk against default values), as (field, rendered value).
  std::vector<std::pair<std::string, std::string>> context;
  // The instantiated predicate, e.g. "95 <= 90 is false".
  std::string predicate;
  int shrink_probes = 0;  // Concrete evaluations spent shrinking.

  // One-line rendering for diagnostics, canary scopes, and logs.
  std::string Describe() const;
};

// Resolves config references to concrete JSON values, caching per path. A
// config path resolves to (in order): the output of compiling its entry
// source ("x.json" -> compile "x.cconf"), or the file's own content parsed
// as JSON. Compilation failures and unreadable paths resolve to nullopt.
class ConcreteEvaluator {
 public:
  explicit ConcreteEvaluator(FileReader reader);

  // The whole config value, or nullopt when unresolvable.
  const std::optional<Json>& ResolveConfig(const std::string& config);

  // The value at `dot_path` inside the config ("" = the root). nullopt when
  // the config is unresolvable or the path is absent.
  std::optional<Json> Field(const std::string& config,
                            const std::string& dot_path);

  // Whether `config` resolves at all (reference-kind invariants).
  bool ConfigExists(const std::string& config);

  size_t evaluations() const { return evaluations_; }

 private:
  FileReader reader_;
  std::map<std::string, std::optional<Json>> cache_;
  size_t evaluations_ = 0;
};

// Renders a concrete Json scalar for witness valuations ("95", "\"hot\"").
std::string RenderWitnessValue(const Json& value);

// Shrinks a sum-exceeds witness: the minimal subset of `values` (indices
// into it) whose sum alone still violates `sum > budget` (relation kLe) or
// `sum >= budget` (relation kLt). Probes are pure arithmetic; `probes` gets
// the ddmin probe count. Returns kept indices, ascending.
std::vector<size_t> ShrinkSumWitness(const std::vector<double>& values,
                                     double budget, bool strict_exceeds,
                                     int* probes);

}  // namespace configerator

#endif  // SRC_ANALYSIS_WITNESS_H_
