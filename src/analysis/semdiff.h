// Semantic config diffing (see docs/ANALYSIS.md): classify every commit's
// per-symbol impact *without evaluating it concretely*. The differ abstractly
// interprets the old and the new version of the commit's closure (touched
// files plus the dependent entries Sandcastle would re-analyze) and labels
// each top-level symbol, entry export, and Gatekeeper project:
//
//   no-op        — provably the same runtime value (unchanged fingerprint
//                  and dependencies, or byte-equal *precise* abstract
//                  renders). This is a soundness-critical certificate: the
//                  differential battery in tests/semdiff_differential_test.cc
//                  asserts no-op symbols never change concretely.
//   value-delta  — same shape, different (or no longer provably identical)
//                  value; carries the abstract old -> new renders, including
//                  integer bounds.
//   control-shift— the *guards* changed: an export now depends on different
//                  guard symbols, or a Gatekeeper project consults different
//                  restraint types / UserContext fields.
//   type-change  — kind set, schema struct tag, or existence changed
//                  (added/removed symbols land here).
//
// Classification drives the landing pipeline: provably-no-op commits skip
// reverse-closure re-analysis and take the fast-path canary, RiskAdvisor
// weights blast radius by severity, and CanaryScope annotates the rollout
// with the old -> new bounds.

#ifndef SRC_ANALYSIS_SEMDIFF_H_
#define SRC_ANALYSIS_SEMDIFF_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/absint.h"
#include "src/analysis/diagnostic.h"
#include "src/analysis/provenance.h"
#include "src/gatekeeper/restraint.h"
#include "src/lang/compiler.h"
#include "src/vcs/diff.h"

namespace configerator {

enum class ImpactKind {
  kNoOp = 0,
  kValueDelta = 1,
  kControlShift = 2,
  kTypeChange = 3,
};

std::string_view ImpactKindName(ImpactKind kind);

// The classification of one symbol (module binding, entry export — symbol is
// then the output path — or Gatekeeper project name).
struct SymbolImpact {
  std::string file;
  std::string symbol;
  ImpactKind kind = ImpactKind::kNoOp;
  std::string old_value;  // Abstract render; "" when the symbol was added.
  std::string new_value;  // "" when the symbol was removed.
  std::string detail;     // One-line reason for the classification.
  std::vector<int> lines;  // Changed source lines attributed to this symbol.

  // Risk ordering: no-op 0, value-delta 1, control-shift 2, type-change 3.
  int severity() const { return static_cast<int>(kind); }
  std::string Describe() const;
};

struct SemanticDiffReport {
  // Sorted by (file, symbol). Covers every export of every analyzed entry,
  // every symbol of every touched CSL file, and every impacted symbol of
  // dependents — so an untouched dependent whose guard flipped shows up.
  std::vector<SymbolImpact> impacts;
  // Graph/diff gating findings over the NEW closure: G007 dead export, G008
  // newly-unreachable branch, G009 stale restraint reference, G010 shadowed
  // import. Canonically sorted.
  std::vector<LintDiagnostic> findings;
  // False when some version failed to parse, an import was dynamic, or a
  // slice was unsound: no-op certificates are then withheld.
  bool sound = true;
  // Every impact is a provable no-op (comment/reformat-only commits): safe
  // to skip reverse-closure re-analysis and fast-path the canary.
  bool provably_noop = false;

  size_t CountKind(ImpactKind kind) const;
  const SymbolImpact* Find(const std::string& file,
                           const std::string& symbol) const;
  std::string Summary() const;
};

// Attributes the changed lines of a diff to the symbols whose definition
// ranges they fall in: added lines against the new surface, deleted lines
// against the old. Lines hitting no definition range are dropped (imports,
// exports, comments between definitions).
std::map<std::string, std::vector<int>> AttributeDiffLines(
    const ModuleSymbolSurface& old_surface,
    const ModuleSymbolSurface& new_surface, const LineDiff& diff);

class SemanticDiffer {
 public:
  // `old_reader` resolves the pre-commit tree (repo head), `new_reader` the
  // post-commit tree (Sandcastle's overlay).
  SemanticDiffer(FileReader old_reader, FileReader new_reader,
                 const RestraintRegistry* registry =
                     &RestraintRegistry::Builtin());

  // Classifies the commit that turned `old_reader`'s tree into
  // `new_reader`'s. `touched_paths` are the files the commit writes/deletes;
  // `dependent_entries` the untouched entries whose closure can reach a
  // touched file (Sandcastle's symbol-pruned reverse closure).
  SemanticDiffReport Classify(
      const std::vector<std::string>& touched_paths,
      const std::vector<std::string>& dependent_entries) const;

 private:
  FileReader old_reader_;
  FileReader new_reader_;
  const RestraintRegistry* registry_;
};

}  // namespace configerator

#endif  // SRC_ANALYSIS_SEMDIFF_H_
