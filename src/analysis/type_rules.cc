// T-rules: schema checks over abstract values (see absint.h). Where the
// concrete checker (src/schema/typecheck.cc) validates the one value a
// compile produced, these rules validate every value any branch can
// produce — without evaluating. Anything the concrete checker accepts must
// pass silently here; `Any` never fires.

#include "src/analysis/absint.h"

#include "src/util/strings.h"

namespace configerator {

namespace {

struct Checker {
  const SchemaRegistry& registry;
  const ValidatorBounds& bounds;
  const AbstractHeap& heap;
  const std::string& file;
  int line;
  const std::string& export_path;
  std::vector<LintDiagnostic>* diags;
  // (object, struct) pairs already being checked: self-referential values.
  std::set<std::pair<HeapId, std::string>> visiting;
  std::set<HeapId> serializable_seen;

  void Emit(const char* rule, LintSeverity severity, std::string message,
            std::string suggestion) {
    LintDiagnostic d;
    d.rule_id = rule;
    d.severity = severity;
    d.file = file;
    d.line = line;
    d.message = StrFormat("export '%s': %s", export_path.c_str(),
                          message.c_str());
    d.suggestion = std::move(suggestion);
    diags->push_back(std::move(d));
  }

  const AbstractObject* ObjectOf(const AbstractValue& v) const {
    return v.object != kNoHeapId ? heap.Get(v.object) : nullptr;
  }

  // Runtime kinds the concrete checker accepts for `type`. Null is always
  // tolerated at the field level (a null field counts as absent); T015
  // handles required-without-default separately.
  uint32_t AllowedKinds(const Type& type) const {
    switch (type.kind()) {
      case TypeKind::kBool:
        return kAbsBool;
      case TypeKind::kI16:
      case TypeKind::kI32:
      case TypeKind::kI64:
        return kAbsInt;
      case TypeKind::kDouble:
        return kAbsInt | kAbsDouble;
      case TypeKind::kString:
        return kAbsString;
      case TypeKind::kList:
        return kAbsList;
      case TypeKind::kMap:
        return kAbsDict;
      case TypeKind::kStruct:
        // A StructRef may name an enum (forward reference at parse time).
        if (registry.FindEnum(type.name()) != nullptr) {
          return kAbsInt | kAbsString;
        }
        return kAbsDict;
      case TypeKind::kEnum:
        return kAbsInt | kAbsString;
    }
    return kAbsAnyMask;
  }

  void CheckValue(const AbstractValue& v, const Type& type,
                  const std::string& path);
  void CheckStructValue(const AbstractValue& v, const StructDef& def,
                        const std::string& path);
  void CheckIntBounds(const AbstractValue& v, const Type& type,
                      const std::string& struct_name, const FieldDef& field,
                      const std::string& path);
  void CheckEnumValue(const AbstractValue& v, const EnumDef& e,
                      const std::string& path);
  void CheckSerializable(const AbstractValue& v, const std::string& path);
};

void Checker::CheckValue(const AbstractValue& v, const Type& type,
                         const std::string& path) {
  if (v.is_any() || v.is_bottom()) {
    return;  // No facts: stay silent.
  }
  uint32_t allowed = AllowedKinds(type) | kAbsNull;  // Null reads as absent.
  uint32_t bad = v.kinds & ~allowed;
  if (bad != 0) {
    if (bad == v.kinds) {
      Emit("T010", LintSeverity::kError,
           StrFormat("%s is %s; schema declares %s", path.c_str(),
                     v.Describe().c_str(), type.ToString().c_str()),
           "assign a value matching the schema type");
    } else {
      Emit("T010", LintSeverity::kError,
           StrFormat("%s may be %s (branch-dependent); schema declares %s",
                     path.c_str(),
                     AbstractValue::OfKinds(bad).Describe().c_str(),
                     type.ToString().c_str()),
           "make every branch assign a value of the schema type");
    }
    return;  // Kinds are off; deeper checks would pile on noise.
  }

  switch (type.kind()) {
    case TypeKind::kList: {
      const AbstractObject* obj = ObjectOf(v);
      if (obj == nullptr || !v.only(kAbsList)) {
        return;
      }
      const AbstractValue& elem = obj->element;
      if (elem.is_any() || elem.is_bottom()) {
        return;
      }
      uint32_t elem_allowed = AllowedKinds(type.element());
      uint32_t elem_bad = elem.kinds & ~elem_allowed;
      if (elem_bad != 0) {
        Emit("T016", LintSeverity::kError,
             StrFormat("%s: list element may be %s; schema declares %s",
                       path.c_str(),
                       AbstractValue::OfKinds(elem_bad).Describe().c_str(),
                       type.ToString().c_str()),
             "every element must match the list's declared element type");
        return;
      }
      if (type.element().kind() == TypeKind::kStruct ||
          type.element().kind() == TypeKind::kMap ||
          type.element().kind() == TypeKind::kList) {
        CheckValue(elem, type.element(), path + "[]");
      }
      return;
    }
    case TypeKind::kMap: {
      const AbstractObject* obj = ObjectOf(v);
      if (obj == nullptr || !v.only(kAbsDict)) {
        return;
      }
      for (const auto& [key, field] : obj->fields) {
        CheckValue(field.value, type.element(), path + "." + key);
      }
      return;
    }
    case TypeKind::kEnum: {
      const EnumDef* e = registry.FindEnum(type.name());
      if (e != nullptr) {
        CheckEnumValue(v, *e, path);
      }
      return;
    }
    case TypeKind::kStruct: {
      if (const EnumDef* e = registry.FindEnum(type.name()); e != nullptr) {
        CheckEnumValue(v, *e, path);
        return;
      }
      const StructDef* def = registry.FindStruct(type.name());
      if (def != nullptr && v.only(kAbsDict | kAbsNull)) {
        CheckStructValue(v, *def, path);
      }
      return;
    }
    default:
      return;
  }
}

void Checker::CheckEnumValue(const AbstractValue& v, const EnumDef& e,
                             const std::string& path) {
  if (!v.constant.has_value()) {
    return;
  }
  if (v.constant->is_int() && !e.HasValue(v.constant->as_int())) {
    Emit("T010", LintSeverity::kError,
         StrFormat("%s: %lld is not a value of enum %s", path.c_str(),
                   static_cast<long long>(v.constant->as_int()),
                   e.name.c_str()),
         "use one of the enum's declared values");
  } else if (v.constant->is_string() &&
             !e.ValueOf(v.constant->as_string()).has_value()) {
    Emit("T010", LintSeverity::kError,
         StrFormat("%s: '%s' is not a name of enum %s", path.c_str(),
                   v.constant->as_string().c_str(), e.name.c_str()),
         "use one of the enum's declared names");
  }
}

void Checker::CheckIntBounds(const AbstractValue& v, const Type& type,
                             const std::string& struct_name,
                             const FieldDef& field, const std::string& path) {
  if (v.is_any() || !v.only(kAbsInt) || !type.is_integer()) {
    return;
  }
  int64_t lo = IntTypeMin(type.kind());
  int64_t hi = IntTypeMax(type.kind());
  std::string source = type.ToString();
  auto sit = bounds.find(struct_name);
  if (sit != bounds.end()) {
    auto fit = sit->second.find(field.name);
    if (fit != sit->second.end()) {
      if (fit->second.min.has_value() && *fit->second.min > lo) {
        lo = *fit->second.min;
        source = "validator bound";
      }
      if (fit->second.max.has_value() && *fit->second.max < hi) {
        hi = *fit->second.max;
        source = "validator bound";
      }
    }
  }
  // Only definite violations fire: the whole known range must lie outside.
  bool below = v.int_max.has_value() && *v.int_max < lo;
  bool above = v.int_min.has_value() && *v.int_min > hi;
  if (!below && !above) {
    return;
  }
  if (v.constant.has_value() && v.constant->is_int()) {
    Emit("T013", LintSeverity::kError,
         StrFormat("%s: value %lld out of range for %s [%lld, %lld]",
                   path.c_str(),
                   static_cast<long long>(v.constant->as_int()),
                   source.c_str(), static_cast<long long>(lo),
                   static_cast<long long>(hi)),
         "keep the value within the declared/validated range");
  } else {
    Emit("T013", LintSeverity::kError,
         StrFormat("%s: every possible value lies outside %s [%lld, %lld]",
                   path.c_str(), source.c_str(), static_cast<long long>(lo),
                   static_cast<long long>(hi)),
         "keep the value within the declared/validated range");
  }
}

void Checker::CheckStructValue(const AbstractValue& v, const StructDef& def,
                               const std::string& path) {
  const AbstractObject* obj = ObjectOf(v);
  if (obj == nullptr || !visiting.insert({v.object, def.name}).second) {
    return;
  }
  if (obj->struct_names.size() > 1) {
    std::string names;
    for (const std::string& name : obj->struct_names) {
      if (!names.empty()) {
        names += " vs ";
      }
      names += name.empty() ? "<untyped>" : name;
    }
    Emit("T012", LintSeverity::kWarning,
         StrFormat("%s: schema type differs per branch (%s)", path.c_str(),
                   names.c_str()),
         "construct the same struct type on every branch");
  }
  for (const auto& [name, field] : obj->fields) {
    const FieldDef* fd = def.FindField(name);
    if (fd == nullptr) {
      Emit("T011", LintSeverity::kError,
           StrFormat("%s: unknown field '%s' in struct %s%s", path.c_str(),
                     name.c_str(), def.name.c_str(),
                     field.maybe_absent ? " (assigned on some branches only)"
                                        : ""),
           "check the field name against the schema");
      continue;
    }
    if (field.maybe_absent) {
      if (fd->required && !fd->default_value.has_value()) {
        Emit("T011", LintSeverity::kError,
             StrFormat("%s: required field '%s' may be unassigned "
                       "(branch-dependent)",
                       path.c_str(), name.c_str()),
             "assign the field on every branch");
      } else {
        Emit("T012", LintSeverity::kWarning,
             StrFormat("%s: field '%s' is only assigned on some branches; "
                       "the exported shape depends on control flow",
                       path.c_str(), name.c_str()),
             "assign the field unconditionally or on every branch");
      }
    }
    if (fd->required && !fd->default_value.has_value() &&
        !field.value.is_any() && field.value.may_be(kAbsNull)) {
      Emit("T015", LintSeverity::kError,
           StrFormat("%s: field '%s' is required but %s be None%s",
                     path.c_str(), name.c_str(),
                     field.value.only(kAbsNull) ? "would" : "may",
                     field.value.only(kAbsNull) ? "" : " (branch-dependent)"),
           "required fields need a non-None value");
    }
    CheckValue(field.value, fd->type, path + "." + name);
    CheckIntBounds(field.value, fd->type, def.name, *fd, path + "." + name);
  }
  if (obj->fields_known) {
    for (const FieldDef& fd : def.fields) {
      if (fd.required && !fd.default_value.has_value() &&
          obj->fields.count(fd.name) == 0) {
        Emit("T011", LintSeverity::kError,
             StrFormat("%s: missing required field '%s' (struct %s)",
                       path.c_str(), fd.name.c_str(), def.name.c_str()),
             "assign the field before exporting");
      }
    }
  }
  visiting.erase({v.object, def.name});
}

void Checker::CheckSerializable(const AbstractValue& v,
                                const std::string& path) {
  if (!v.is_any() && v.only(kAbsFunction)) {
    Emit("T014", LintSeverity::kError,
         StrFormat("%s is a function — not serializable", path.c_str()),
         "export data, not callables");
    return;
  }
  if (v.object == kNoHeapId || !serializable_seen.insert(v.object).second) {
    return;
  }
  const AbstractObject* obj = heap.Get(v.object);
  if (obj == nullptr) {
    return;
  }
  CheckSerializable(obj->element, path + "[]");
  for (const auto& [name, field] : obj->fields) {
    CheckSerializable(field.value, path + "." + name);
  }
}

}  // namespace

void RunTypeRules(const SchemaRegistry& registry, const ValidatorBounds& bounds,
                  const AbstractHeap& heap, const std::string& file, int line,
                  const std::string& export_path,
                  const std::string& struct_name, const AbstractValue& value,
                  std::vector<LintDiagnostic>* diags) {
  Checker checker{registry, bounds, heap, file, line, export_path, diags};
  checker.CheckSerializable(value, "value");
  if (struct_name.empty()) {
    return;  // Untyped export: the compiler skips schema checks too.
  }
  const StructDef* def = registry.FindStruct(struct_name);
  if (def == nullptr) {
    return;
  }
  checker.CheckStructValue(value, *def, "value");
}

const std::vector<LintRuleInfo>& AbstractInterpreter::TypeRules() {
  static const std::vector<LintRuleInfo> kRules = {
      {"T010", "type-mismatch", LintSeverity::kError,
       "a field's inferred type conflicts with its schema type (including "
       "branch-dependent conflicts)"},
      {"T011", "missing-or-unknown-field", LintSeverity::kError,
       "a field is missing though required, or not declared by the struct"},
      {"T012", "branch-dependent-shape", LintSeverity::kWarning,
       "the exported object's shape or struct type differs per branch"},
      {"T013", "out-of-range-constant", LintSeverity::kError,
       "an integer lies outside its declared type's or validator's bounds"},
      {"T014", "non-serializable-export", LintSeverity::kError,
       "an exported value contains a function"},
      {"T015", "nullable-into-required", LintSeverity::kError,
       "a possibly-None value flows into a required field"},
      {"T016", "list-element-conflict", LintSeverity::kError,
       "a list element's inferred type conflicts with the declared element "
       "type"},
  };
  return kRules;
}

}  // namespace configerator
