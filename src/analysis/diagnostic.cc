#include "src/analysis/diagnostic.h"

#include "src/util/strings.h"

namespace configerator {

std::string_view LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string LintDiagnostic::Format() const {
  std::string out = file;
  if (line > 0) {
    out += ":" + std::to_string(line);
  }
  out += ": ";
  out += LintSeverityName(severity);
  out += " [" + rule_id + "] " + message;
  if (!suggestion.empty()) {
    out += " (fix: " + suggestion + ")";
  }
  return out;
}

size_t CountLintErrors(const std::vector<LintDiagnostic>& diags) {
  size_t errors = 0;
  for (const LintDiagnostic& diag : diags) {
    if (diag.severity == LintSeverity::kError) {
      ++errors;
    }
  }
  return errors;
}

}  // namespace configerator
