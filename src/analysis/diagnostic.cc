#include "src/analysis/diagnostic.h"

#include <algorithm>

#include "src/util/strings.h"

namespace configerator {

std::string_view LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string LintDiagnostic::Format() const {
  std::string out = file;
  if (line > 0) {
    out += ":" + std::to_string(line);
    if (column > 0) {
      out += ":" + std::to_string(column);
    }
  }
  out += ": ";
  out += LintSeverityName(severity);
  out += " [" + rule_id + "] " + message;
  if (!suggestion.empty()) {
    out += " (fix: " + suggestion + ")";
  }
  return out;
}

bool LintDiagnosticOrder(const LintDiagnostic& a, const LintDiagnostic& b) {
  if (a.file != b.file) {
    return a.file < b.file;
  }
  if (a.line != b.line) {
    return a.line < b.line;
  }
  if (a.column != b.column) {
    return a.column < b.column;
  }
  if (a.message != b.message) {
    return a.message < b.message;
  }
  if (a.rule_id != b.rule_id) {
    return a.rule_id < b.rule_id;
  }
  return a.suggestion < b.suggestion;
}

void SortDiagnostics(std::vector<LintDiagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(), LintDiagnosticOrder);
}

size_t CountLintErrors(const std::vector<LintDiagnostic>& diags) {
  size_t errors = 0;
  for (const LintDiagnostic& diag : diags) {
    if (diag.severity == LintSeverity::kError) {
      ++errors;
    }
  }
  return errors;
}

}  // namespace configerator
