// Structured diagnostics emitted by ConfigLint (and by the config-language
// parser for issues that are detectable during parsing, e.g. duplicate dict
// keys). A diagnostic pinpoints a finding without aborting whatever produced
// it: the linter accumulates them, Sandcastle posts them to the review, and
// only error-severity findings block landing.

#ifndef SRC_ANALYSIS_DIAGNOSTIC_H_
#define SRC_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace configerator {

enum class LintSeverity {
  kWarning,  // Advisory: posted to the review, never blocks landing.
  kError,    // Blocks landing through Sandcastle.
};

std::string_view LintSeverityName(LintSeverity severity);

struct LintDiagnostic {
  std::string rule_id;   // Stable id, e.g. "L001" / "G003".
  LintSeverity severity = LintSeverity::kWarning;
  std::string file;
  int line = 0;          // 1-based; 0 = whole file (JSON configs).
  int column = 0;        // 1-based; 0 = line granularity (most rules).
  std::string message;
  std::string suggestion;  // Optional suggested fix; may be empty.

  // "file:line: severity [rule] message (fix: suggestion)"; the column is
  // included ("file:line:col") only when one was recorded.
  std::string Format() const;
};

// The canonical diagnostic ordering: file, line, column, message, rule id,
// suggestion — rule id breaks ties only after column+message, so two rules
// firing on the same line order the same way regardless of which producer
// emitted them first. Total over distinct findings, so any producer sorting
// with it emits byte-stable output — Sandcastle reports and semantic-diff
// findings can be diffed textually across runs and libstdc++ versions.
bool LintDiagnosticOrder(const LintDiagnostic& a, const LintDiagnostic& b);

// Sorts with LintDiagnosticOrder (stable, so fully-equal findings keep
// their emission order).
void SortDiagnostics(std::vector<LintDiagnostic>* diags);

// Counts error-severity findings in `diags`.
size_t CountLintErrors(const std::vector<LintDiagnostic>& diags);

}  // namespace configerator

#endif  // SRC_ANALYSIS_DIAGNOSTIC_H_
