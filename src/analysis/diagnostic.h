// Structured diagnostics emitted by ConfigLint (and by the config-language
// parser for issues that are detectable during parsing, e.g. duplicate dict
// keys). A diagnostic pinpoints a finding without aborting whatever produced
// it: the linter accumulates them, Sandcastle posts them to the review, and
// only error-severity findings block landing.

#ifndef SRC_ANALYSIS_DIAGNOSTIC_H_
#define SRC_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace configerator {

enum class LintSeverity {
  kWarning,  // Advisory: posted to the review, never blocks landing.
  kError,    // Blocks landing through Sandcastle.
};

std::string_view LintSeverityName(LintSeverity severity);

struct LintDiagnostic {
  std::string rule_id;   // Stable id, e.g. "L001" / "G003".
  LintSeverity severity = LintSeverity::kWarning;
  std::string file;
  int line = 0;          // 1-based; 0 = whole file (JSON configs).
  std::string message;
  std::string suggestion;  // Optional suggested fix; may be empty.

  // "file:line: severity [rule] message (fix: suggestion)".
  std::string Format() const;
};

// Counts error-severity findings in `diags`.
size_t CountLintErrors(const std::vector<LintDiagnostic>& diags);

}  // namespace configerator

#endif  // SRC_ANALYSIS_DIAGNOSTIC_H_
