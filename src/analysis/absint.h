// Cross-module abstract interpretation of CSL config programs (the semantic
// half of ConfigLint; see docs/ANALYSIS.md).
//
// The compiler's defenses — type checking, validators, canary — all require
// *executing* the config: a schema violation hiding in a rarely-taken branch
// sails through every one of them until production takes that branch. The
// abstract interpreter closes that gap. It runs the program over a lattice
// of abstract values instead of concrete ones (both arms of every branch,
// loop bodies to a fixpoint), following import_python()/import_thrift()
// across modules through the same FileReader overlay the compiler uses, and
//
//   1. infers, for every binding, the set of runtime kinds it may take plus
//      nullability, known constants, and integer ranges;
//   2. checks each exported config object against its Thrift schema without
//      evaluating it, reporting T010..T016 (see TypeRules());
//   3. emits a symbol-level dependency slice: which top-level symbols of
//      which imported modules the entry's compile actually consumes. The
//      DependencyService uses slices to prune file-level false positives
//      from EntriesAffectedBy, Sandcastle to bound re-analysis closures,
//      and RiskAdvisor/canary to score and annotate true blast radius.
//
// Like the syntactic rules, every T diagnostic reports a fact derived from a
// real assignment — `Any` (no information) never fires a rule, so an
// unresolvable import degrades to silence instead of false positives.

#ifndef SRC_ANALYSIS_ABSINT_H_
#define SRC_ANALYSIS_ABSINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/analysis/lint.h"
#include "src/lang/ast_cache.h"
#include "src/lang/compiler.h"

namespace configerator {

// ---- The abstract value lattice ---------------------------------------------

// Bitmask of runtime kinds a value may take. 0 = bottom (unreachable).
enum AbstractKind : uint32_t {
  kAbsNull = 1u << 0,
  kAbsBool = 1u << 1,
  kAbsInt = 1u << 2,
  kAbsDouble = 1u << 3,
  kAbsString = 1u << 4,
  kAbsList = 1u << 5,
  kAbsDict = 1u << 6,
  kAbsFunction = 1u << 7,
};
inline constexpr uint32_t kAbsAnyMask = 0xFFu;

// Containers live in an explicit abstract heap (below) and values reference
// them by id: CSL dicts/lists have reference semantics (`b = a; b.x = 1`
// mutates a), so aliasing must survive branch snapshots — two names holding
// the same HeapId stay aliased, while branch states copy the heap and join
// it id-wise.
using HeapId = int;
inline constexpr HeapId kNoHeapId = -1;

struct AbstractFunction;  // Defined below.

// One point in the lattice: possible kinds, refined by a known scalar
// constant, an integer range, and (for containers) a heap object. `origins`
// carries provenance — the (module, symbol) pairs whose values flowed in —
// powering export slices and canary blast-radius annotation.
struct AbstractValue {
  uint32_t kinds = kAbsAnyMask;    // Any by default.
  bool any = true;                 // True = no information at all.
  std::optional<Value> constant;   // Exact scalar value, if known.
  std::optional<int64_t> int_min;  // Integer range (when kAbsInt set).
  std::optional<int64_t> int_max;
  HeapId object = kNoHeapId;       // Dict/list contents, when tracked.
  std::shared_ptr<const AbstractFunction> function;  // When kAbsFunction.
  std::set<std::pair<std::string, std::string>> origins;  // (module, symbol).

  static AbstractValue MakeAny();
  static AbstractValue Bottom();
  static AbstractValue OfKinds(uint32_t kinds);
  static AbstractValue OfConstant(const Value& v);

  bool is_any() const { return any; }
  bool is_bottom() const { return !any && kinds == 0; }
  bool may_be(uint32_t kind_mask) const {
    return any || (kinds & kind_mask) != 0;
  }
  bool only(uint32_t kind_mask) const {
    return !any && kinds != 0 && (kinds & ~kind_mask) == 0;
  }
  // Three-valued truthiness: a value when statically decided.
  std::optional<bool> TruthyIfKnown() const;

  // "int | string", ... for diagnostics.
  std::string Describe() const;
};

// A user function (AST + defining module scope), a builtin, or a schema
// struct constructor. Immutable once built.
struct AbstractFunction {
  const FunctionDefStmt* def = nullptr;  // User function; null otherwise.
  std::string file;                      // Defining module (user functions).
  std::shared_ptr<std::map<std::string, AbstractValue>> env;  // Def globals.
  std::string builtin;      // Builtin name, when def == nullptr.
  std::string struct_ctor;  // Struct name, for schema constructors.
};

struct AbstractField {
  AbstractValue value;
  bool maybe_absent = false;  // Assigned on some control-flow paths only.
};

// A dict or list in the abstract heap.
struct AbstractObject {
  bool is_list = false;
  // Schema tags observed for this object. One element = known type; more
  // than one = the type differs per branch (T012).
  std::set<std::string> struct_names;
  std::map<std::string, AbstractField> fields;  // Dict entries.
  bool fields_known = true;   // False once an unknown key may have been set.
  AbstractValue element = AbstractValue::Bottom();  // List element join.
  bool definitely_nonempty = false;
};

class AbstractHeap {
 public:
  HeapId Alloc(AbstractObject object);
  AbstractObject* Get(HeapId id);
  const AbstractObject* Get(HeapId id) const;
  const std::map<HeapId, AbstractObject>& objects() const { return objects_; }
  // Branch analysis snapshots and restores the whole object graph.
  std::map<HeapId, AbstractObject>& mutable_objects() { return objects_; }

 private:
  std::map<HeapId, AbstractObject> objects_;
  HeapId next_ = 0;
};

// ---- Results ----------------------------------------------------------------

// Flattened, heap-independent facts about one piece of an exported value,
// keyed by dot-path: "" is the export root, "thresholds.shed" a nested dict
// field. Invariant checking consumes these — they survive after the
// analyzer's heap is gone.
struct AbstractFieldFacts {
  uint32_t kinds = kAbsAnyMask;
  bool any = true;
  std::optional<Value> constant;   // Exact scalar, if pinned.
  std::optional<int64_t> int_min;  // Integer interval (when kAbsInt set).
  std::optional<int64_t> int_max;
  bool maybe_absent = false;  // Assigned on some control-flow paths only.
};
using AbstractFieldMap = std::map<std::string, AbstractFieldFacts>;

// Per-export provenance: which imported symbols flow into the exported value
// (data or control dependence).
struct ExportSlice {
  std::string path;       // Output path, e.g. "feed/cache_job.json".
  std::string type_name;  // Schema struct, "" for untyped exports.
  int line = 0;
  // Union of data and control dependence (the sound invalidation set).
  std::map<std::string, std::set<std::string>> symbols_by_module;
  // Control dependence alone: symbols that only *guard* which value is
  // exported, never flow into it. SemanticDiffer uses the split to tell a
  // control-shift from a value-delta.
  std::map<std::string, std::set<std::string>> control_by_module;
  // Deterministic render of the exported abstract value (see SymbolSummary).
  std::string value_digest;
  std::string value_brief;
  bool value_precise = false;
  // Flattened field lattice facts (depth- and size-capped). One slice per
  // `export` call site: an export inside both arms of a branch yields two
  // slices for the same path — the invariant checker's case-split basis.
  AbstractFieldMap fields;
};

// Deterministic abstract summary of one top-level binding, comparable across
// two versions of a file. `digest` is a canonical render of the abstract
// value — byte-equal digests mean the analyzer proved the same facts.
// `precise` means the digest pins down exactly one concrete value (constant
// scalars, fully-known struct literals), so equal precise digests prove the
// runtime values equal: that is SemanticDiffer's no-op certificate.
struct SymbolSummary {
  uint32_t kinds = kAbsAnyMask;
  bool any = true;
  bool precise = false;
  std::string digest;     // Full canonical render.
  std::string brief;      // Truncated render for reports and canary scopes.
  std::string type_name;  // Schema struct tag when exactly one is possible.
  // (module -> symbols) this binding's value was derived from.
  std::map<std::string, std::set<std::string>> deps;
};

// A non-literal branch condition the interpreter statically decided: the
// same truth value on every abstract path (cross-module constant flow). The
// guarded arm is unreachable under every schema-valid context — G008.
struct DecidedBranch {
  std::string file;
  int line = 0;
  bool value = false;  // The condition's decided truth value.
};

struct AbsintResult {
  // False when the file failed to parse (the compiler reports that) or was
  // not a CSL source; no other fields are meaningful then.
  bool analyzed = false;
  // False when an import could not be resolved statically (dynamic path,
  // unreadable or unparseable target): `used_symbols` is then incomplete and
  // callers must NOT use it to prune dependency edges.
  bool slice_sound = true;
  std::vector<LintDiagnostic> diagnostics;  // T-rules, sorted by line.
  std::vector<ExportSlice> exports;
  // The entry's full symbol-level dependency slice: every (module ->
  // top-level symbols) read anywhere during the abstract run, including
  // inside transitively imported module bodies. The pseudo-symbol "*" marks
  // modules that are star-imported (their surface *growing* can shadow
  // names, so additions must invalidate). This is the sound pruning set the
  // DependencyService consumes.
  std::map<std::string, std::set<std::string>> used_symbols;
  // Abstract summary of every top-level binding after the module body ran
  // (the provenance graph's nodes; keyed by symbol name).
  std::map<std::string, SymbolSummary> symbol_summaries;
  // Non-literal conditions decided to one truth value on every path (G008
  // material). Sorted by (file, line); sites observed under both truth
  // values (e.g. a helper called with different constants) are dropped.
  std::vector<DecidedBranch> decided_branches;
};

// ---- Schema checking (type_rules.cc) ----------------------------------------

// Inclusive numeric bounds mined from a validator's top-level asserts
// (`assert cfg.field >= 1`): tighter than the integral type's natural range.
struct FieldBounds {
  std::optional<int64_t> min;
  std::optional<int64_t> max;
};
// struct name -> field name -> bounds.
using ValidatorBounds = std::map<std::string, std::map<std::string, FieldBounds>>;

// Runs T010..T016 on one exported abstract value against `struct_name`'s
// schema, appending findings to `diags`. Mirrors the concrete checker in
// src/schema/typecheck.cc: whatever that accepts, this must not flag.
void RunTypeRules(const SchemaRegistry& registry, const ValidatorBounds& bounds,
                  const AbstractHeap& heap, const std::string& file, int line,
                  const std::string& export_path, const std::string& struct_name,
                  const AbstractValue& value, std::vector<LintDiagnostic>* diags);

// ---- Driver -----------------------------------------------------------------

class AbstractInterpreter {
 public:
  // `reader` resolves imports, exactly like the compiler's. Without one,
  // cross-module inference degrades to Any (no diagnostics, empty slices).
  explicit AbstractInterpreter(FileReader reader = nullptr);

  // Analyzes one CSL source. Only ".cconf" entries get export/schema checks;
  // ".cinc" modules are analyzed for slices and local T-rules.
  AbsintResult Analyze(const std::string& path, const std::string& content) const;

  // Convenience: reads `path` through the FileReader first.
  AbsintResult AnalyzePath(const std::string& path) const;

  // The T-rule table (docs, --explain).
  static const std::vector<LintRuleInfo>& TypeRules();

  // Optional shared parse cache (see ConfigLint::set_ast_cache): one parse
  // per file across lint + absint + semdiff passes over the same closure.
  // Must outlive this interpreter; may be null.
  void set_ast_cache(AstCache* cache) { ast_cache_ = cache; }

 private:
  FileReader reader_;
  AstCache* ast_cache_ = nullptr;
};

// ---- Symbol diffing (Sandcastle's refined edges) ----------------------------

// The statically-visible top-level symbol surface of one module version,
// with a definition fingerprint per symbol and an intra-module def-use graph
// (symbol -> names its defining statements read), so a change to `A` also
// invalidates `B = A + 1`.
struct ModuleSymbolSurface {
  bool analyzable = false;  // False: callers must fall back to file level.
  std::map<std::string, std::string> fingerprints;   // symbol -> digest.
  std::map<std::string, std::set<std::string>> reads;  // symbol -> names read.
  std::string side_effects;  // Digest of non-binding top-level statements.
  // Source line ranges [first, last] of each symbol's defining statements —
  // lets diff hunks be attributed to the symbols they touch.
  std::map<std::string, std::vector<std::pair<int, int>>> def_lines;
};

ModuleSymbolSurface ComputeSymbolSurface(const std::string& path,
                                         const std::string& content,
                                         AstCache* ast_cache = nullptr);

// Which top-level symbols changed between two versions of a module. Includes
// the intra-module closure (dependents of changed symbols) and the "*"
// marker when the surface gained symbols (star-import shadowing hazard).
// nullopt = not statically comparable (parse failure, side-effecting
// top-level statements changed) — callers fall back to file-level edges.
std::optional<std::set<std::string>> ChangedSymbols(
    const ModuleSymbolSurface& old_surface,
    const ModuleSymbolSurface& new_surface);

}  // namespace configerator

#endif  // SRC_ANALYSIS_ABSINT_H_
