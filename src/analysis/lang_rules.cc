// Language rule family (L001..L009): a scope-resolution pass over the CSL
// AST. The pass mirrors the interpreter's name semantics — star imports copy
// a module's globals, assignment defines in the innermost scope, function
// bodies read enclosing scopes — and resolves import_python()/import_thrift()
// targets through the FileReader so cross-module references are checked the
// same way the compiler will resolve them. Where a target cannot be resolved
// (no reader, unreadable file, non-literal path), the affected checks degrade
// to silence rather than guessing: a lint false positive that blocks landing
// is worse than a miss the compiler will catch anyway.

#include <cctype>
#include <map>
#include <set>
#include <string>

#include "src/analysis/rules.h"
#include "src/lang/import_resolver.h"
#include "src/schema/schema.h"

namespace configerator {
namespace analysis {

namespace {

const std::set<std::string>& BuiltinNames() {
  static const std::set<std::string>* names = new std::set<std::string>{
      // RegisterCslBuiltins:
      "len", "str", "int", "float", "abs", "range", "sorted", "min", "max",
      "items", "keys", "values", "append", "extend", "has_key", "get", "join",
      "split", "format", "startswith", "endswith", "upper", "lower", "strip",
      "replace", "fail", "merge",
      // Interpreter special forms:
      "import_python", "import_thrift", "export", "export_if_last"};
  return *names;
}

// A function signature harvested from a FunctionDefStmt (local or imported).
struct FuncSig {
  std::vector<std::string> params;
  std::vector<bool> has_default;
  int def_line = 0;
  std::string origin;  // File that defines it, for cross-module messages.
};

// The statically-visible surface of an imported module.
struct ModuleSurface {
  std::set<std::string> names;             // All top-level bindings.
  std::map<std::string, FuncSig> funcs;    // Top-level defs.
  bool unresolved = false;      // Some of its own imports defied analysis.
  bool has_schema_import = false;
};

// One lexical scope. The module frame fills in statement order (so
// use-before-def is detectable); function frames pre-collect every assigned
// name because the interpreter resolves function-body reads against the
// whole environment chain at call time, not in textual order.
struct Frame {
  bool is_function = false;
  std::map<std::string, int> defined;  // name -> definition line
  std::map<std::string, int> reads;    // name -> read count
  std::set<std::string> params;
  std::set<std::string> assigned_anywhere;  // Function frames only.
};

void CollectAssignedNames(const std::vector<StmtPtr>& body,
                          std::set<std::string>* out) {
  for (const StmtPtr& stmt : body) {
    switch (stmt->kind) {
      case Stmt::Kind::kAssign:
      case Stmt::Kind::kAugAssign:
        if (stmt->target->kind == Expr::Kind::kName) {
          out->insert(stmt->target->name);
        }
        break;
      case Stmt::Kind::kFor:
        for (const std::string& var : stmt->loop_vars) {
          out->insert(var);
        }
        CollectAssignedNames(stmt->body, out);
        break;
      case Stmt::Kind::kIf:
      case Stmt::Kind::kWhile:
        CollectAssignedNames(stmt->body, out);
        CollectAssignedNames(stmt->orelse, out);
        break;
      case Stmt::Kind::kDef:
        out->insert(stmt->def->name);
        break;
      default:
        break;
    }
  }
}

class LangAnalyzer {
 public:
  LangAnalyzer(const Module& module, const FileReader& reader,
               std::vector<LintDiagnostic>* diags, AstCache* ast_cache)
      : module_(module), reader_(reader), diags_(diags),
        ast_cache_(ast_cache) {}

  void Run() {
    // Pre-scan the module surface so forward references can be classified as
    // use-before-def (L002) instead of undefined (L001), and signatures are
    // known before the textual pass reaches the call site.
    CollectModuleSurface(module_.body);

    frames_.push_back(Frame{});
    WalkBlock(module_.body, /*loop_depth=*/0);
    ReportUnused();
  }

 private:
  // ---- Reporting -----------------------------------------------------------

  void Report(const char* rule_id, LintSeverity severity, int line,
              std::string message, std::string suggestion = "") {
    LintDiagnostic diag;
    diag.rule_id = rule_id;
    diag.severity = severity;
    diag.file = module_.path;
    diag.line = line;
    diag.message = std::move(message);
    diag.suggestion = std::move(suggestion);
    diags_->push_back(std::move(diag));
  }

  // ---- Module pre-scan -----------------------------------------------------

  void CollectModuleSurface(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& stmt : body) {
      switch (stmt->kind) {
        case Stmt::Kind::kAssign:
        case Stmt::Kind::kAugAssign:
          if (stmt->target->kind == Expr::Kind::kName) {
            module_names_.emplace(stmt->target->name, stmt->line);
          }
          break;
        case Stmt::Kind::kFor:
          for (const std::string& var : stmt->loop_vars) {
            module_names_.emplace(var, stmt->line);
          }
          CollectModuleSurface(stmt->body);
          break;
        case Stmt::Kind::kIf:
        case Stmt::Kind::kWhile:
          CollectModuleSurface(stmt->body);
          CollectModuleSurface(stmt->orelse);
          break;
        case Stmt::Kind::kDef: {
          module_names_.emplace(stmt->def->name, stmt->line);
          FuncSig sig;
          sig.params = stmt->def->params;
          sig.def_line = stmt->def->line;
          sig.origin = module_.path;
          for (const ExprPtr& dflt : stmt->def->defaults) {
            sig.has_default.push_back(dflt != nullptr);
          }
          known_funcs_[stmt->def->name] = std::move(sig);
          break;
        }
        default:
          break;
      }
    }
  }

  // ---- Import resolution ---------------------------------------------------

  Result<std::string> ReadSource(const std::string& path) {
    if (!reader_) {
      return UnavailableError("no file reader configured for lint");
    }
    return reader_(path);
  }

  // Statically evaluates one imported module's top-level bindings, following
  // its own star imports up to a bounded depth (cycles and depth overruns
  // mark the surface unresolved, which silences dependent checks).
  ModuleSurface ResolveModule(const std::string& path, int depth) {
    ModuleSurface surface;
    if (depth > 8 || !visiting_.insert(path).second) {
      surface.unresolved = true;
      return surface;
    }
    auto cached = module_cache_.find(path);
    if (cached != module_cache_.end()) {
      visiting_.erase(path);
      return cached->second;
    }
    auto source = ReadSource(path);
    std::shared_ptr<Module> module;
    if (source.ok()) {
      auto parsed = ast_cache_ != nullptr
                        ? ast_cache_->GetOrParse(path, *source)
                        : ParseCsl(*source, path);
      if (parsed.ok()) {
        module = *parsed;
      }
    }
    if (module == nullptr) {
      surface.unresolved = true;
      visiting_.erase(path);
      return surface;
    }
    CollectSurfaceFrom(module->body, path, depth, &surface);
    visiting_.erase(path);
    module_cache_[path] = surface;
    return surface;
  }

  void CollectSurfaceFrom(const std::vector<StmtPtr>& body,
                          const std::string& path, int depth,
                          ModuleSurface* surface) {
    for (const StmtPtr& stmt : body) {
      switch (stmt->kind) {
        case Stmt::Kind::kAssign:
        case Stmt::Kind::kAugAssign:
          if (stmt->target->kind == Expr::Kind::kName) {
            surface->names.insert(stmt->target->name);
          }
          break;
        case Stmt::Kind::kFor:
          for (const std::string& var : stmt->loop_vars) {
            surface->names.insert(var);
          }
          CollectSurfaceFrom(stmt->body, path, depth, surface);
          break;
        case Stmt::Kind::kIf:
        case Stmt::Kind::kWhile:
          CollectSurfaceFrom(stmt->body, path, depth, surface);
          CollectSurfaceFrom(stmt->orelse, path, depth, surface);
          break;
        case Stmt::Kind::kDef: {
          surface->names.insert(stmt->def->name);
          FuncSig sig;
          sig.params = stmt->def->params;
          sig.def_line = stmt->def->line;
          sig.origin = path;
          for (const ExprPtr& dflt : stmt->def->defaults) {
            sig.has_default.push_back(dflt != nullptr);
          }
          surface->funcs[stmt->def->name] = std::move(sig);
          break;
        }
        case Stmt::Kind::kExpr: {
          // Nested imports contribute to the module's surface.
          const Expr& e = *stmt->target;
          if (!IsImportCall(e)) {
            break;
          }
          ImportTarget import = ClassifyImport(e);
          if (import.kind == ImportTarget::Kind::kSchema) {
            surface->has_schema_import = true;
            break;
          }
          if (import.kind == ImportTarget::Kind::kDynamic) {
            surface->unresolved = true;
            break;
          }
          ModuleSurface nested = ResolveModule(import.path, depth + 1);
          if (nested.unresolved) {
            surface->unresolved = true;
          }
          if (nested.has_schema_import) {
            surface->has_schema_import = true;
          }
          if (import.filter == "*") {
            surface->names.insert(nested.names.begin(), nested.names.end());
            for (auto& [name, sig] : nested.funcs) {
              surface->funcs[name] = sig;
            }
          } else {
            surface->names.insert(import.filter);
            auto it = nested.funcs.find(import.filter);
            if (it != nested.funcs.end()) {
              surface->funcs[import.filter] = it->second;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // A record of one import in the file under analysis, for L004.
  struct ImportRecord {
    int line = 0;
    std::string path;
    std::string filter;            // "*" or one symbol.
    std::set<std::string> names;   // Names the import defined here.
    bool verifiable = false;       // Resolution succeeded.
  };

  void HandleImport(const Expr& call) {
    ImportTarget import = ClassifyImport(call);
    if (import.kind == ImportTarget::Kind::kDynamic) {
      // Dynamic import path or filter: all bets are off for name resolution.
      unresolved_star_import_ = true;
      unresolved_schema_import_ = true;
      return;
    }
    if (import.kind == ImportTarget::Kind::kSchema) {
      HandleSchemaImport(import.path);
      return;
    }
    const std::string& path = import.path;
    ImportRecord record;
    record.line = call.line;
    record.path = path;
    record.filter = import.filter;
    ModuleSurface surface = ResolveModule(path, /*depth=*/1);
    if (surface.has_schema_import) {
      // The imported module may hand us schema-constructed values whose
      // constructors we cannot enumerate here.
      unresolved_schema_import_ = true;
    }
    if (record.filter == "*") {
      if (surface.unresolved) {
        unresolved_star_import_ = true;
        return;
      }
      record.verifiable = true;
      record.names = surface.names;
      for (const std::string& name : surface.names) {
        DefineModuleName(name, call.line, /*from_import=*/true);
      }
      for (const auto& [name, sig] : surface.funcs) {
        known_funcs_[name] = sig;
      }
    } else {
      record.verifiable = !surface.unresolved;
      record.names.insert(record.filter);
      if (record.verifiable && surface.names.count(record.filter) == 0) {
        Report("L001", LintSeverity::kError, call.line,
               "'" + record.filter + "' is not defined by module '" + path +
                   "'",
               "check the symbol name against " + path);
      }
      DefineModuleName(record.filter, call.line, /*from_import=*/true);
      auto it = surface.funcs.find(record.filter);
      if (it != surface.funcs.end()) {
        known_funcs_[record.filter] = it->second;
      }
    }
    imports_.push_back(std::move(record));
  }

  void HandleSchemaImport(const std::string& path) {
    auto source = ReadSource(path);
    if (!source.ok()) {
      unresolved_schema_import_ = true;
      return;
    }
    SchemaRegistry registry;
    auto resolver = [this](const std::string& include) {
      return ReadSource(include);
    };
    if (!registry.ParseAndRegister(*source, path, resolver).ok()) {
      unresolved_schema_import_ = true;
      return;
    }
    for (const std::string& name : registry.StructNames()) {
      schema_names_.insert(name);
    }
    for (const std::string& name : registry.EnumNames()) {
      schema_names_.insert(name);
    }
  }

  // ---- Scope machinery -----------------------------------------------------

  bool InFunction() const {
    for (const Frame& frame : frames_) {
      if (frame.is_function) {
        return true;
      }
    }
    return false;
  }

  void DefineModuleName(const std::string& name, int line, bool from_import) {
    frames_.front().defined.emplace(name, line);
    if (from_import) {
      import_defined_.insert(name);
    }
  }

  void DefineName(const std::string& name, int line) {
    Frame& frame = frames_.back();
    frame.defined.emplace(name, line);
    if (BuiltinNames().count(name) > 0) {
      Report("L006", LintSeverity::kWarning, line,
             "'" + name + "' shadows a builtin function",
             "rename the binding");
    }
    // Reassigning a known function name invalidates its signature for
    // call-arity checking.
    if (!frames_.back().is_function && frames_.size() == 1) {
      auto it = known_funcs_.find(name);
      if (it != known_funcs_.end() && it->second.def_line != line) {
        known_funcs_.erase(it);
      }
    }
  }

  // Resolves a read. Returns true if the name resolved somewhere.
  void UseName(const std::string& name, int line) {
    // Innermost-out over the live frames.
    for (auto frame = frames_.rbegin(); frame != frames_.rend(); ++frame) {
      if (frame->defined.count(name) > 0 ||
          frame->params.count(name) > 0 ||
          (frame->is_function && frame->assigned_anywhere.count(name) > 0)) {
        ++frame->reads[name];
        return;
      }
    }
    // From inside a function body any module-level binding resolves
    // regardless of textual order (the call happens after the module ran).
    if (InFunction()) {
      auto it = module_names_.find(name);
      if (it != module_names_.end()) {
        ++frames_.front().reads[name];
        return;
      }
    }
    if (schema_names_.count(name) > 0 || BuiltinNames().count(name) > 0) {
      return;
    }
    auto later = module_names_.find(name);
    if (!InFunction() && later != module_names_.end()) {
      Report("L002", LintSeverity::kError, line,
             "'" + name + "' is used before its definition on line " +
                 std::to_string(later->second),
             "move the definition above this use");
      ++frames_.front().reads[name];
      return;
    }
    if (unresolved_star_import_) {
      return;  // The name may come from an unresolvable import.
    }
    if (unresolved_schema_import_ && !name.empty() &&
        std::isupper(static_cast<unsigned char>(name[0]))) {
      return;  // Probably a schema constructor we could not load.
    }
    Report("L001", LintSeverity::kError, line,
           "'" + name + "' is not defined",
           "define it, or import the module that does");
  }

  // ---- AST walk ------------------------------------------------------------

  void WalkBlock(const std::vector<StmtPtr>& body, int loop_depth) {
    bool unreachable_reported = false;
    bool terminated = false;
    for (const StmtPtr& stmt : body) {
      if (terminated && !unreachable_reported) {
        Report("L007", LintSeverity::kWarning, stmt->line,
               "statement is unreachable", "remove it");
        unreachable_reported = true;
      }
      WalkStmt(*stmt, loop_depth);
      if (stmt->kind == Stmt::Kind::kReturn ||
          stmt->kind == Stmt::Kind::kBreak ||
          stmt->kind == Stmt::Kind::kContinue) {
        terminated = true;
      }
    }
  }

  void WalkStmt(const Stmt& stmt, int loop_depth) {
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        WalkExpr(*stmt.target);
        break;
      case Stmt::Kind::kAssign:
        WalkExpr(*stmt.value);
        WalkAssignTarget(*stmt.target, stmt.line);
        break;
      case Stmt::Kind::kAugAssign:
        WalkExpr(*stmt.value);
        if (stmt.target->kind == Expr::Kind::kName) {
          UseName(stmt.target->name, stmt.line);  // Read-modify-write.
        }
        WalkAssignTarget(*stmt.target, stmt.line);
        break;
      case Stmt::Kind::kIf:
        if (stmt.target->kind == Expr::Kind::kLiteral) {
          Report("L009", LintSeverity::kWarning, stmt.line,
                 "'if' condition is a constant; one branch is dead",
                 "inline the live branch");
        }
        WalkExpr(*stmt.target);
        WalkBlock(stmt.body, loop_depth);
        WalkBlock(stmt.orelse, loop_depth);
        break;
      case Stmt::Kind::kFor: {
        WalkExpr(*stmt.value);
        for (const std::string& var : stmt.loop_vars) {
          DefineName(var, stmt.line);
          loop_vars_.insert(var);
        }
        PredefineLoopBody(stmt.body, stmt.line);
        WalkBlock(stmt.body, loop_depth + 1);
        break;
      }
      case Stmt::Kind::kWhile:
        WalkExpr(*stmt.target);
        PredefineLoopBody(stmt.body, stmt.line);
        WalkBlock(stmt.body, loop_depth + 1);
        break;
      case Stmt::Kind::kDef:
        WalkDef(stmt);
        break;
      case Stmt::Kind::kReturn:
        if (stmt.target != nullptr) {
          WalkExpr(*stmt.target);
        }
        break;
      case Stmt::Kind::kAssert:
        WalkExpr(*stmt.target);
        if (stmt.value != nullptr) {
          WalkExpr(*stmt.value);
        }
        break;
      case Stmt::Kind::kPass:
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        break;
    }
  }

  // Names assigned anywhere in a loop body count as defined for the whole
  // body: an accumulation pattern may read on iteration N a name written on
  // iteration N-1.
  void PredefineLoopBody(const std::vector<StmtPtr>& body, int line) {
    std::set<std::string> assigned;
    CollectAssignedNames(body, &assigned);
    for (const std::string& name : assigned) {
      if (frames_.back().defined.count(name) == 0) {
        frames_.back().defined.emplace(name, line);
        loop_vars_.insert(name);  // Exempt from unused-binding reporting.
      }
    }
  }

  void WalkAssignTarget(const Expr& target, int line) {
    switch (target.kind) {
      case Expr::Kind::kName:
        DefineName(target.name, line);
        break;
      case Expr::Kind::kAttr:
        WalkExpr(*target.lhs);  // obj.field = v reads obj.
        break;
      case Expr::Kind::kIndex:
        WalkExpr(*target.lhs);  // d[k] = v reads d and k.
        WalkExpr(*target.rhs);
        break;
      default:
        break;
    }
  }

  void WalkDef(const Stmt& stmt) {
    const FunctionDefStmt& def = *stmt.def;
    // Defaults evaluate at definition time, in the enclosing scope.
    for (const ExprPtr& dflt : def.defaults) {
      if (dflt != nullptr) {
        WalkExpr(*dflt);
      }
    }
    DefineName(def.name, stmt.line);

    Frame frame;
    frame.is_function = true;
    for (const std::string& param : def.params) {
      frame.params.insert(param);
      if (BuiltinNames().count(param) > 0) {
        Report("L006", LintSeverity::kWarning, def.line,
               "parameter '" + param + "' shadows a builtin function",
               "rename the parameter");
      }
    }
    CollectAssignedNames(def.body, &frame.assigned_anywhere);
    frames_.push_back(std::move(frame));
    WalkBlock(def.body, /*loop_depth=*/0);
    Frame finished = std::move(frames_.back());
    frames_.pop_back();
    // Unused locals (not params, not '_'-prefixed).
    for (const auto& [name, line] : finished.defined) {
      if (finished.reads[name] == 0 && !name.starts_with("_") &&
          loop_vars_.count(name) == 0) {
        Report("L003", LintSeverity::kWarning, line,
               "local '" + name + "' is assigned but never read",
               "remove the binding or prefix it with '_'");
      }
    }
  }

  void WalkExpr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        break;
      case Expr::Kind::kName:
        UseName(expr.name, expr.line);
        break;
      case Expr::Kind::kList:
        for (const ExprPtr& item : expr.items) {
          WalkExpr(*item);
        }
        break;
      case Expr::Kind::kDict:
        for (const auto& [key, value] : expr.pairs) {
          WalkExpr(*key);
          WalkExpr(*value);
        }
        break;
      case Expr::Kind::kBinary:
        WalkExpr(*expr.lhs);
        WalkExpr(*expr.rhs);
        break;
      case Expr::Kind::kUnary:
        WalkExpr(*expr.lhs);
        break;
      case Expr::Kind::kTernary:
        if (expr.rhs->kind == Expr::Kind::kLiteral) {
          Report("L009", LintSeverity::kWarning, expr.line,
                 "ternary condition is a constant; one branch is dead",
                 "inline the live branch");
        }
        WalkExpr(*expr.lhs);
        WalkExpr(*expr.rhs);
        WalkExpr(*expr.third);
        break;
      case Expr::Kind::kCall:
        WalkCall(expr);
        break;
      case Expr::Kind::kAttr:
        WalkExpr(*expr.lhs);
        break;
      case Expr::Kind::kIndex:
        WalkExpr(*expr.lhs);
        WalkExpr(*expr.rhs);
        break;
    }
  }

  void WalkCall(const Expr& call) {
    if (call.lhs->kind == Expr::Kind::kName &&
        (call.lhs->name == "import_python" ||
         call.lhs->name == "import_thrift")) {
      HandleImport(call);
      return;  // Path/filter are literals; nothing else to resolve.
    }
    WalkExpr(*call.lhs);
    for (const ExprPtr& arg : call.items) {
      WalkExpr(*arg);
    }
    for (const auto& [name, value] : call.kwargs) {
      WalkExpr(*value);
    }
    if (call.lhs->kind == Expr::Kind::kName) {
      CheckCallArity(call);
    }
  }

  void CheckCallArity(const Expr& call) {
    auto it = known_funcs_.find(call.lhs->name);
    if (it == known_funcs_.end()) {
      return;
    }
    const FuncSig& sig = it->second;
    const std::string& fn = call.lhs->name;
    std::string where =
        sig.origin == module_.path
            ? "line " + std::to_string(sig.def_line)
            : sig.origin + ":" + std::to_string(sig.def_line);
    if (call.items.size() > sig.params.size()) {
      Report("L008", LintSeverity::kError, call.line,
             fn + "() takes at most " + std::to_string(sig.params.size()) +
                 " arguments but got " + std::to_string(call.items.size()) +
                 " (defined at " + where + ")",
             "drop the extra arguments");
      return;
    }
    std::set<std::string> bound(sig.params.begin(),
                                sig.params.begin() + call.items.size());
    for (const auto& [kw, value] : call.kwargs) {
      bool known_param = false;
      for (const std::string& param : sig.params) {
        if (param == kw) {
          known_param = true;
          break;
        }
      }
      if (!known_param) {
        Report("L008", LintSeverity::kError, call.line,
               fn + "() has no parameter named '" + kw + "' (defined at " +
                   where + ")",
               "check the parameter names");
        continue;
      }
      if (!bound.insert(kw).second) {
        Report("L008", LintSeverity::kError, call.line,
               fn + "() got multiple values for parameter '" + kw + "'",
               "pass the parameter once");
      }
    }
    for (size_t i = 0; i < sig.params.size(); ++i) {
      bool required = i >= sig.has_default.size() || !sig.has_default[i];
      if (required && bound.count(sig.params[i]) == 0) {
        Report("L008", LintSeverity::kError, call.line,
               fn + "() is missing required argument '" + sig.params[i] +
                   "' (defined at " + where + ")",
               "pass a value for '" + sig.params[i] + "'");
      }
    }
  }

  // ---- Post-pass unused reporting ------------------------------------------

  void ReportUnused() {
    const Frame& module_frame = frames_.front();

    for (const ImportRecord& import : imports_) {
      if (!import.verifiable) {
        continue;
      }
      size_t used = 0;
      for (const std::string& name : import.names) {
        auto reads = module_frame.reads.find(name);
        if (reads != module_frame.reads.end() && reads->second > 0) {
          ++used;
        }
      }
      if (used == 0) {
        std::string what = import.filter == "*"
                               ? "nothing imported from '" + import.path +
                                     "' is used"
                               : "imported symbol '" + import.filter +
                                     "' is unused";
        Report("L004", LintSeverity::kWarning, import.line, what,
               "remove the import");
      }
    }

    // Module-level unused bindings only matter for entry files: a .cinc's
    // globals are its export surface for other modules.
    if (!module_.path.ends_with(".cconf")) {
      return;
    }
    for (const auto& [name, line] : module_frame.defined) {
      if (name.starts_with("_") || import_defined_.count(name) > 0 ||
          loop_vars_.count(name) > 0) {
        continue;
      }
      auto reads = module_frame.reads.find(name);
      if (reads == module_frame.reads.end() || reads->second == 0) {
        Report("L003", LintSeverity::kWarning, line,
               "'" + name + "' is assigned but never read",
               "remove the binding or prefix it with '_'");
      }
    }
  }

  const Module& module_;
  const FileReader& reader_;
  std::vector<LintDiagnostic>* diags_;

  std::map<std::string, int> module_names_;  // Full surface, any line.
  std::map<std::string, FuncSig> known_funcs_;
  std::set<std::string> schema_names_;
  std::set<std::string> import_defined_;
  std::set<std::string> loop_vars_;
  std::vector<ImportRecord> imports_;
  std::vector<Frame> frames_;
  std::map<std::string, ModuleSurface> module_cache_;
  std::set<std::string> visiting_;
  bool unresolved_star_import_ = false;
  bool unresolved_schema_import_ = false;
  AstCache* ast_cache_;
};

}  // namespace

void RunLanguageRules(const Module& module, const FileReader& reader,
                      std::vector<LintDiagnostic>* diags,
                      AstCache* ast_cache) {
  LangAnalyzer(module, reader, diags, ast_cache).Run();
}

}  // namespace analysis
}  // namespace configerator
