// Gating rule family (G001..G006): semantic analysis of Gatekeeper project
// JSON. Each project rule is a conjunction of restraints plus a sampling
// probability, so whole error classes are statically decidable: X AND NOT X
// never passes, a rule behind an always-pass rule never runs, and a bucket
// spanning [0, 1) gates nobody. These all compile fine — FromJson accepts
// them — and then silently do the wrong thing in production, which is
// exactly the class of error the paper's layered defenses exist to catch
// before distribution.

#include <string>
#include <vector>

#include "src/analysis/rules.h"

namespace configerator {
namespace analysis {

namespace {

// A restraint spec decoded just far enough to reason about.
struct RestraintView {
  std::string type;
  const Json* params;  // Never null (shared empty object when absent).
  bool negate = false;
  bool known_type = false;
};

const Json& EmptyParams() {
  static const Json* empty = new Json(Json::MakeObject());
  return *empty;
}

RestraintView DecodeRestraint(const Json& spec,
                              const RestraintRegistry& registry) {
  RestraintView view;
  view.params = &EmptyParams();
  if (!spec.is_object()) {
    return view;
  }
  const Json* type = spec.Get("type");
  if (type != nullptr && type->is_string()) {
    view.type = type->as_string();
  }
  const Json* params = spec.Get("params");
  if (params != nullptr) {
    view.params = params;
  }
  const Json* negate = spec.Get("negate");
  view.negate = negate != nullptr && negate->is_bool() && negate->as_bool();
  if (!view.type.empty()) {
    for (const std::string& name : registry.TypeNames()) {
      if (name == view.type) {
        view.known_type = true;
        break;
      }
    }
  }
  return view;
}

double ParamNumber(const RestraintView& view, std::string_view key,
                   double fallback) {
  const Json* field = view.params->Get(key);
  return field != nullptr && field->is_number() ? field->as_double() : fallback;
}

// always(value) before negation; `value` defaults to true.
bool IsAlways(const RestraintView& view, bool* value) {
  if (view.type != "always") {
    return false;
  }
  const Json* v = view.params->Get("value");
  *value = v == nullptr || !v->is_bool() || v->as_bool();
  return true;
}

// An id_mod/hash_range bucket spanning every user (before negation).
bool IsFullRangeBucket(const RestraintView& view) {
  if (view.type == "id_mod") {
    double mod = ParamNumber(view, "mod", -1);
    return mod > 0 && ParamNumber(view, "lo", -1) == 0 &&
           ParamNumber(view, "hi", -1) == mod;
  }
  if (view.type == "hash_range") {
    return ParamNumber(view, "lo", 1) <= 0 && ParamNumber(view, "hi", 0) >= 1;
  }
  return false;
}

// Statically always-true / always-false after applying negation.
bool EffectivelyConstant(const RestraintView& view, bool* value) {
  bool base;
  if (IsAlways(view, &base)) {
    *value = base != view.negate;
    return true;
  }
  if (IsFullRangeBucket(view)) {
    *value = !view.negate;
    return true;
  }
  return false;
}

}  // namespace

void RunGatingRules(const std::string& path, const Json& config,
                    const RestraintRegistry& registry,
                    std::vector<LintDiagnostic>* diags) {
  auto report = [&](const char* rule_id, LintSeverity severity,
                    std::string message, std::string suggestion = "") {
    LintDiagnostic diag;
    diag.rule_id = rule_id;
    diag.severity = severity;
    diag.file = path;
    diag.message = std::move(message);
    diag.suggestion = std::move(suggestion);
    diags->push_back(std::move(diag));
  };

  const Json* rules = config.Get("rules");
  if (rules == nullptr || !rules->is_array()) {
    return;  // FromJson rejects this shape; nothing for lint to add.
  }

  // Index of the first rule that matches every user with probability 1 —
  // everything after it is unreachable.
  int always_pass_rule = -1;

  for (size_t i = 0; i < rules->as_array().size(); ++i) {
    const Json& rule_spec = rules->as_array()[i];
    if (!rule_spec.is_object()) {
      continue;
    }
    std::string rule_label = "rule #" + std::to_string(i);

    if (always_pass_rule >= 0) {
      report("G002", LintSeverity::kWarning,
             rule_label + " is unreachable: rule #" +
                 std::to_string(always_pass_rule) +
                 " already matches every user at 100%",
             "delete this rule or reorder it first");
    }

    double pass_probability = -1;
    const Json* prob = rule_spec.Get("pass_probability");
    if (prob != nullptr && prob->is_number()) {
      pass_probability = prob->as_double();
    }
    if (pass_probability == 0) {
      report("G003", LintSeverity::kWarning,
             rule_label + " has pass_probability 0, so it can never pass "
                          "(it only masks later rules)",
             "remove the rule, or set a non-zero probability");
    }

    const Json* restraints = rule_spec.Get("restraints");
    if (restraints == nullptr || !restraints->is_array()) {
      continue;
    }

    std::vector<RestraintView> views;
    views.reserve(restraints->as_array().size());
    for (const Json& spec : restraints->as_array()) {
      RestraintView view = DecodeRestraint(spec, registry);
      if (!view.type.empty() && !view.known_type) {
        report("G004", LintSeverity::kError,
               rule_label + " uses unknown restraint type '" + view.type + "'",
               "register the restraint or fix the type name");
      }
      views.push_back(std::move(view));
    }

    bool conjunction_always_true = true;
    bool conjunction_dead = false;
    for (const RestraintView& view : views) {
      bool constant;
      if (EffectivelyConstant(view, &constant)) {
        if (!constant) {
          conjunction_dead = true;
        }
        if (IsFullRangeBucket(view) && !view.negate) {
          report("G006", LintSeverity::kWarning,
                 rule_label + ": " + view.type +
                     " bucket spans all users and filters nothing",
                 "narrow the range or drop the restraint");
        }
      } else {
        conjunction_always_true = false;
      }
    }
    if (conjunction_dead) {
      report("G003", LintSeverity::kWarning,
             rule_label + " contains an always-false restraint, so the "
                          "conjunction can never pass",
             "remove the rule or fix the restraint");
    }

    // Pairwise duplicate / contradiction detection.
    for (size_t a = 0; a < views.size(); ++a) {
      for (size_t b = a + 1; b < views.size(); ++b) {
        if (views[a].type.empty() || views[a].type != views[b].type ||
            !(*views[a].params == *views[b].params)) {
          continue;
        }
        if (views[a].negate != views[b].negate) {
          report("G001", LintSeverity::kError,
                 rule_label + ": restraint '" + views[a].type +
                     "' appears both negated and non-negated with identical "
                     "params — the conjunction is unsatisfiable",
                 "delete one side of the contradiction");
        } else {
          report("G005", LintSeverity::kWarning,
                 rule_label + ": restraint '" + views[a].type +
                     "' is duplicated with identical params",
                 "delete the duplicate");
        }
      }
    }

    if (conjunction_always_true && !conjunction_dead &&
        pass_probability >= 1.0 && always_pass_rule < 0) {
      always_pass_rule = static_cast<int>(i);
    }
  }
}

}  // namespace analysis
}  // namespace configerator
