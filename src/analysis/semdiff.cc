#include "src/analysis/semdiff.h"

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>

#include "src/json/json.h"
#include "src/util/strings.h"

namespace configerator {

std::string_view ImpactKindName(ImpactKind kind) {
  switch (kind) {
    case ImpactKind::kNoOp:
      return "no-op";
    case ImpactKind::kValueDelta:
      return "value-delta";
    case ImpactKind::kControlShift:
      return "control-shift";
    case ImpactKind::kTypeChange:
      return "type-change";
  }
  return "unknown";
}

std::string SymbolImpact::Describe() const {
  std::string out = file + ":" + symbol + " ";
  out += ImpactKindName(kind);
  if (kind != ImpactKind::kNoOp && (!old_value.empty() || !new_value.empty())) {
    out += " [";
    out += old_value.empty() ? "<absent>" : old_value;
    out += " -> ";
    out += new_value.empty() ? "<absent>" : new_value;
    out += "]";
  }
  if (!detail.empty()) {
    out += " (" + detail + ")";
  }
  return out;
}

size_t SemanticDiffReport::CountKind(ImpactKind kind) const {
  size_t count = 0;
  for (const SymbolImpact& impact : impacts) {
    if (impact.kind == kind) {
      ++count;
    }
  }
  return count;
}

const SymbolImpact* SemanticDiffReport::Find(const std::string& file,
                                             const std::string& symbol) const {
  for (const SymbolImpact& impact : impacts) {
    if (impact.file == file && impact.symbol == symbol) {
      return &impact;
    }
  }
  return nullptr;
}

std::string SemanticDiffReport::Summary() const {
  std::string out = StrFormat(
      "semdiff: %zu no-op, %zu value-delta, %zu control-shift, %zu "
      "type-change",
      CountKind(ImpactKind::kNoOp), CountKind(ImpactKind::kValueDelta),
      CountKind(ImpactKind::kControlShift), CountKind(ImpactKind::kTypeChange));
  if (provably_noop) {
    out += "; provably no-op";
  }
  if (!sound) {
    out += "; UNSOUND (no-op certificates withheld)";
  }
  if (!findings.empty()) {
    out += StrFormat("; %zu graph finding(s)", findings.size());
  }
  return out;
}

std::map<std::string, std::vector<int>> AttributeDiffLines(
    const ModuleSymbolSurface& old_surface,
    const ModuleSymbolSurface& new_surface, const LineDiff& diff) {
  std::map<std::string, std::set<int>> hits;
  auto attribute = [&hits](const ModuleSymbolSurface& surface, int line) {
    for (const auto& [symbol, ranges] : surface.def_lines) {
      for (const auto& [first, last] : ranges) {
        if (line >= first && line <= last) {
          hits[symbol].insert(line);
          break;
        }
      }
    }
  };
  // A changed line that is blank or comment-only cannot alter any symbol's
  // value even when it falls inside a symbol's def range (trailing comments
  // share the line range of multi-line defs) — attributing it would flag the
  // nearest symbol as touched and defeat no-op detection.
  auto semantically_inert = [](const std::string& text) {
    size_t i = text.find_first_not_of(" \t\r");
    return i == std::string::npos || text[i] == '#';
  };
  for (const DiffOp& op : diff.ops) {
    if (semantically_inert(op.text)) {
      continue;
    }
    if (op.kind == DiffOp::Kind::kAdd) {
      attribute(new_surface, op.new_line);
    } else if (op.kind == DiffOp::Kind::kDelete) {
      attribute(old_surface, op.old_line);
    }
  }
  std::map<std::string, std::vector<int>> out;
  for (const auto& [symbol, lines] : hits) {
    out[symbol].assign(lines.begin(), lines.end());
  }
  return out;
}

namespace {

bool IsCslPath(const std::string& path) {
  return path.ends_with(".cconf") || path.ends_with(".cinc");
}

bool IsGatekeeperPath(const std::string& path) {
  return path.starts_with("gatekeeper/") && path.ends_with(".json");
}

// One version of one file, analyzed.
struct SideFacts {
  bool present = false;
  std::string content;
  ModuleSymbolSurface surface;
  AbsintResult absint;
};

struct FilePair {
  SideFacts old_side;
  SideFacts new_side;
  bool touched = false;
  // A version present but unparseable / with an unsound slice: no no-op
  // certificate may be issued for this file's symbols.
  bool unsound = false;
};

using SymbolKey = std::pair<std::string, std::string>;

// Restraint-type multiset and context-field set of a Gatekeeper spec — the
// control surface whose change means control-shift.
struct GateSurface {
  std::multiset<std::string> restraint_types;
  std::set<std::string> context_fields;

  bool operator==(const GateSurface& other) const = default;

  std::string Describe() const {
    std::string out = "restraints{";
    bool first = true;
    for (const std::string& type : restraint_types) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += type;
    }
    out += "}";
    return out;
  }
};

GateSurface ExtractGateSurface(const Json& spec) {
  GateSurface surface;
  const Json* rules = spec.Get("rules");
  if (rules == nullptr || !rules->is_array()) {
    return surface;
  }
  for (const Json& rule : rules->as_array()) {
    const Json* restraints = rule.Get("restraints");
    if (restraints == nullptr || !restraints->is_array()) {
      continue;
    }
    for (const Json& restraint : restraints->as_array()) {
      const Json* type = restraint.Get("type");
      if (type == nullptr || !type->is_string()) {
        continue;
      }
      surface.restraint_types.insert(type->as_string());
      for (const std::string& field :
           ContextFieldsForRestraint(type->as_string())) {
        surface.context_fields.insert(field);
      }
    }
  }
  return surface;
}

}  // namespace

SemanticDiffer::SemanticDiffer(FileReader old_reader, FileReader new_reader,
                               const RestraintRegistry* registry)
    : old_reader_(std::move(old_reader)),
      new_reader_(std::move(new_reader)),
      registry_(registry) {}

SemanticDiffReport SemanticDiffer::Classify(
    const std::vector<std::string>& touched_paths,
    const std::vector<std::string>& dependent_entries) const {
  SemanticDiffReport report;
  if (!old_reader_ || !new_reader_) {
    report.sound = false;
    return report;
  }

  // Separate caches per side: the same path holds different content in the
  // old and new trees, and a cache entry is (path, content)-keyed.
  AstCache old_cache;
  AstCache new_cache;
  AbstractInterpreter old_absint(old_reader_);
  old_absint.set_ast_cache(&old_cache);
  AbstractInterpreter new_absint(new_reader_);
  new_absint.set_ast_cache(&new_cache);

  std::set<std::string> touched_set(touched_paths.begin(),
                                    touched_paths.end());
  std::set<std::string> gk_touched;
  std::set<std::string> raw_touched;  // Non-CSL deps whose bytes changed.
  std::vector<std::string> roots;
  std::set<std::string> root_set;
  for (const std::string& path : touched_paths) {
    if (IsCslPath(path)) {
      if (root_set.insert(path).second) {
        roots.push_back(path);
      }
    } else if (IsGatekeeperPath(path)) {
      gk_touched.insert(path);
    } else {
      auto old_content = old_reader_(path);
      auto new_content = new_reader_(path);
      if (old_content.ok() != new_content.ok() ||
          (old_content.ok() && *old_content != *new_content)) {
        raw_touched.insert(path);
      }
    }
  }
  for (const std::string& entry : dependent_entries) {
    if (IsCslPath(entry) && root_set.insert(entry).second) {
      roots.push_back(entry);
    }
  }

  // -- Analyze every root on both sides.
  std::map<std::string, FilePair> files;
  for (const std::string& path : roots) {
    FilePair pair;
    pair.touched = touched_set.count(path) > 0;
    auto load = [&](const FileReader& reader, AstCache* cache,
                    const AbstractInterpreter& interp, SideFacts* side) {
      auto content = reader(path);
      if (!content.ok()) {
        return;  // Added/deleted on this side.
      }
      side->present = true;
      side->content = *content;
      side->surface = ComputeSymbolSurface(path, side->content, cache);
      side->absint = interp.Analyze(path, side->content);
      if (!side->surface.analyzable || !side->absint.analyzed ||
          !side->absint.slice_sound) {
        pair.unsound = true;
        report.sound = false;
      }
    };
    load(old_reader_, &old_cache, old_absint, &pair.old_side);
    load(new_reader_, &new_cache, new_absint, &pair.new_side);
    files.emplace(path, std::move(pair));
  }

  // -- Seed dirtiness from the touched files' symbol-surface diffs.
  std::set<SymbolKey> dirty_base;
  std::set<std::string> star_grown;    // Touched modules that gained symbols.
  std::set<std::string> incomparable;  // Touched CSL without a symbol diff.
  for (const auto& [path, pair] : files) {
    if (!pair.touched) {
      continue;
    }
    if (pair.old_side.present && pair.new_side.present) {
      auto changed = ChangedSymbols(pair.old_side.surface,
                                    pair.new_side.surface);
      if (!changed.has_value()) {
        incomparable.insert(path);
        continue;
      }
      for (const std::string& symbol : *changed) {
        if (symbol == "*") {
          star_grown.insert(path);
        } else {
          dirty_base.insert({path, symbol});
        }
      }
    } else {
      incomparable.insert(path);  // Added or deleted file.
    }
  }
  for (const auto& [path, pair] : files) {
    if (incomparable.count(path) == 0) {
      continue;
    }
    // Every symbol either version defines is potentially affected.
    for (const auto* side : {&pair.old_side, &pair.new_side}) {
      for (const auto& [symbol, summary] : side->absint.symbol_summaries) {
        dirty_base.insert({path, symbol});
      }
    }
  }

  auto deps_dirty = [&dirty_base](
                        const std::map<std::string, std::set<std::string>>&
                            deps) {
    for (const auto& [module_path, symbols] : deps) {
      for (const std::string& symbol : symbols) {
        if (dirty_base.count({module_path, symbol}) > 0) {
          return true;
        }
      }
    }
    return false;
  };
  // Names of dirty dependencies, for control-shift attribution.
  auto dirty_deps_of = [&dirty_base](
                           const std::map<std::string, std::set<std::string>>&
                               deps) {
    std::set<SymbolKey> out;
    for (const auto& [module_path, symbols] : deps) {
      for (const std::string& symbol : symbols) {
        if (dirty_base.count({module_path, symbol}) > 0) {
          out.insert({module_path, symbol});
        }
      }
    }
    return out;
  };
  // File-level reach: reads of a changed raw dep (schema, validator), of an
  // incomparable touched file, or a star import of a module whose surface
  // grew. `raw` is reported separately — it also voids precision-based
  // no-op certificates (schema defaults are invisible to the summaries).
  auto file_reach = [&](const AbsintResult& result, bool* any, bool* raw) {
    for (const auto& [dep, symbols] : result.used_symbols) {
      if (raw_touched.count(dep) > 0) {
        *any = true;
        *raw = true;
      }
      if (incomparable.count(dep) > 0 ||
          (star_grown.count(dep) > 0 && symbols.count("*") > 0)) {
        *any = true;
      }
    }
  };

  // -- Classify CSL symbols and exports.
  for (const auto& [path, pair] : files) {
    bool reach_any = false;
    bool reach_raw = false;
    file_reach(pair.old_side.absint, &reach_any, &reach_raw);
    file_reach(pair.new_side.absint, &reach_any, &reach_raw);
    bool all_dirty = incomparable.count(path) > 0 ||
                     pair.old_side.present != pair.new_side.present;

    std::map<std::string, std::vector<int>> attributed;
    if (pair.touched && pair.old_side.present && pair.new_side.present) {
      attributed = AttributeDiffLines(
          pair.old_side.surface, pair.new_side.surface,
          DiffLines(pair.old_side.content, pair.new_side.content));
    }

    // Top-level symbols (union of both sides).
    std::set<std::string> symbols;
    for (const auto* side : {&pair.old_side, &pair.new_side}) {
      for (const auto& [symbol, summary] : side->absint.symbol_summaries) {
        symbols.insert(symbol);
      }
    }
    for (const std::string& symbol : symbols) {
      const auto& old_map = pair.old_side.absint.symbol_summaries;
      const auto& new_map = pair.new_side.absint.symbol_summaries;
      auto old_it = old_map.find(symbol);
      auto new_it = new_map.find(symbol);
      const SymbolSummary* old_sum =
          old_it == old_map.end() ? nullptr : &old_it->second;
      const SymbolSummary* new_sum =
          new_it == new_map.end() ? nullptr : &new_it->second;
      bool dirty = all_dirty || reach_any ||
                   dirty_base.count({path, symbol}) > 0 ||
                   (old_sum != nullptr && deps_dirty(old_sum->deps)) ||
                   (new_sum != nullptr && deps_dirty(new_sum->deps));
      if (!pair.touched && !dirty) {
        continue;  // Untouched dependents only report what the diff moved.
      }
      SymbolImpact impact;
      impact.file = path;
      impact.symbol = symbol;
      auto lines = attributed.find(symbol);
      if (lines != attributed.end()) {
        impact.lines = lines->second;
      }
      if (old_sum == nullptr) {
        impact.kind = ImpactKind::kTypeChange;
        impact.new_value = new_sum->brief;
        impact.detail = "symbol added";
      } else if (new_sum == nullptr) {
        impact.kind = ImpactKind::kTypeChange;
        impact.old_value = old_sum->brief;
        impact.detail = "symbol removed";
      } else {
        impact.old_value = old_sum->brief;
        impact.new_value = new_sum->brief;
        if (!dirty) {
          impact.kind = ImpactKind::kNoOp;
          impact.detail = "fingerprint and dependencies unchanged";
        } else if (old_sum->kinds != new_sum->kinds ||
                   old_sum->any != new_sum->any ||
                   old_sum->type_name != new_sum->type_name) {
          impact.kind = ImpactKind::kTypeChange;
          impact.detail = "abstract kind or schema tag changed";
        } else if (pair.unsound) {
          impact.kind = ImpactKind::kValueDelta;
          impact.detail = "analysis incomplete; value not provably identical";
        } else if (reach_raw) {
          impact.kind = ImpactKind::kValueDelta;
          impact.detail =
              "file-level dependency changed; value not provably identical";
        } else if (old_sum->precise && new_sum->precise &&
                   old_sum->digest == new_sum->digest) {
          impact.kind = ImpactKind::kNoOp;
          impact.detail = "identical precise abstract value";
        } else {
          impact.kind = ImpactKind::kValueDelta;
          impact.detail = old_sum->digest == new_sum->digest
                              ? "abstract facts unchanged but not precise"
                              : "abstract value changed";
        }
      }
      report.impacts.push_back(std::move(impact));
    }

    // Entry exports, matched by output path. An output path can carry
    // SEVERAL slices (one export_if_last per branch arm): merge them —
    // union deps and guard sets, and issue a precise-value certificate only
    // when every slice on both sides pins the *same* concrete value.
    // Keying by "last slice" instead would let a guard flip masquerade as a
    // no-op whenever the last-recorded arm happens to be byte-identical.
    struct MergedExport {
      std::map<std::string, std::set<std::string>> deps;
      std::map<std::string, std::set<std::string>> control;
      std::set<std::string> type_names;
      std::set<std::string> digests;
      bool precise = true;
      std::map<std::string, std::string> brief_by_digest;  // For display.

      // Honest display value: a branch-dependent export renders as the set
      // of its arms' values, not whichever arm happened to be recorded last.
      std::string Brief() const {
        if (brief_by_digest.size() == 1) {
          return brief_by_digest.begin()->second;
        }
        std::string out = "one of {";
        bool first = true;
        for (const auto& [digest, brief] : brief_by_digest) {
          if (!first) {
            out += " | ";
          }
          first = false;
          out += brief;
        }
        out += "}";
        return out;
      }
    };
    auto merge_exports = [](const AbsintResult& result) {
      std::map<std::string, MergedExport> merged;
      for (const ExportSlice& slice : result.exports) {
        MergedExport& m = merged[slice.path];
        for (const auto& [module_path, symbols] : slice.symbols_by_module) {
          m.deps[module_path].insert(symbols.begin(), symbols.end());
        }
        for (const auto& [module_path, symbols] : slice.control_by_module) {
          m.control[module_path].insert(symbols.begin(), symbols.end());
        }
        if (!slice.type_name.empty()) {
          m.type_names.insert(slice.type_name);
        }
        m.digests.insert(slice.value_digest);
        m.precise = m.precise && slice.value_precise;
        m.brief_by_digest[slice.value_digest] = slice.value_brief;
      }
      return merged;
    };
    std::map<std::string, MergedExport> old_exports =
        merge_exports(pair.old_side.absint);
    std::map<std::string, MergedExport> new_exports =
        merge_exports(pair.new_side.absint);
    std::set<std::string> export_paths;
    for (const auto& [out_path, merged] : old_exports) {
      export_paths.insert(out_path);
    }
    for (const auto& [out_path, merged] : new_exports) {
      export_paths.insert(out_path);
    }
    for (const std::string& out_path : export_paths) {
      auto old_it = old_exports.find(out_path);
      auto new_it = new_exports.find(out_path);
      const MergedExport* old_exp =
          old_it == old_exports.end() ? nullptr : &old_it->second;
      const MergedExport* new_exp =
          new_it == new_exports.end() ? nullptr : &new_it->second;
      bool dirty = all_dirty || reach_any ||
                   (old_exp != nullptr && deps_dirty(old_exp->deps)) ||
                   (new_exp != nullptr && deps_dirty(new_exp->deps));
      SymbolImpact impact;
      impact.file = path;
      impact.symbol = out_path;
      if (old_exp == nullptr) {
        impact.kind = ImpactKind::kTypeChange;
        impact.new_value = new_exp->Brief();
        impact.detail = "export added";
      } else if (new_exp == nullptr) {
        impact.kind = ImpactKind::kTypeChange;
        impact.old_value = old_exp->Brief();
        impact.detail = "export removed";
      } else {
        impact.old_value = old_exp->Brief();
        impact.new_value = new_exp->Brief();
        if (!dirty) {
          impact.kind = ImpactKind::kNoOp;
          impact.detail = "dependencies unchanged";
        } else if (old_exp->type_names != new_exp->type_names) {
          impact.kind = ImpactKind::kTypeChange;
          impact.detail = "exported schema type changed";
        } else if (!pair.unsound && !reach_raw && old_exp->precise &&
                   new_exp->precise && old_exp->digests.size() == 1 &&
                   old_exp->digests == new_exp->digests) {
          impact.kind = ImpactKind::kNoOp;
          impact.detail = "identical precise exported value";
        } else if (old_exp->control != new_exp->control) {
          impact.kind = ImpactKind::kControlShift;
          impact.detail = "the export's guard set changed";
        } else {
          // Dirtiness that arrived exclusively through guard symbols is a
          // control shift: which branch exports changed, not the values in
          // the branches.
          std::set<SymbolKey> dirty_deps = dirty_deps_of(old_exp->deps);
          for (const SymbolKey& key : dirty_deps_of(new_exp->deps)) {
            dirty_deps.insert(key);
          }
          bool all_control = !dirty_deps.empty();
          for (const SymbolKey& key : dirty_deps) {
            bool in_control = false;
            for (const auto* exp : {old_exp, new_exp}) {
              auto it = exp->control.find(key.first);
              if (it != exp->control.end() &&
                  it->second.count(key.second) > 0) {
                in_control = true;
                break;
              }
            }
            if (!in_control) {
              all_control = false;
              break;
            }
          }
          if (all_control) {
            impact.kind = ImpactKind::kControlShift;
            std::string guards;
            for (const SymbolKey& key : dirty_deps) {
              if (!guards.empty()) {
                guards += ", ";
              }
              guards += key.first + ":" + key.second;
            }
            impact.detail = "guard symbols changed: " + guards;
          } else {
            impact.kind = ImpactKind::kValueDelta;
            impact.detail = pair.unsound
                                ? "analysis incomplete"
                                : "exported abstract value changed";
          }
        }
      }
      report.impacts.push_back(std::move(impact));
    }
  }

  // -- Gatekeeper specs: the control surface IS the semantics.
  for (const std::string& path : gk_touched) {
    auto old_content = old_reader_(path);
    auto new_content = new_reader_(path);
    std::optional<Json> old_json;
    std::optional<Json> new_json;
    if (old_content.ok()) {
      auto parsed = Json::Parse(*old_content);
      if (parsed.ok()) {
        old_json = std::move(*parsed);
      }
    }
    if (new_content.ok()) {
      auto parsed = Json::Parse(*new_content);
      if (parsed.ok()) {
        new_json = std::move(*parsed);
      }
    }
    SymbolImpact impact;
    impact.file = path;
    auto project_name = [&path](const std::optional<Json>& json) {
      if (!json.has_value()) {
        return path;
      }
      const Json* name = json->Get("project");
      return name != nullptr && name->is_string() ? name->as_string() : path;
    };
    impact.symbol = project_name(new_json.has_value() ? new_json : old_json);
    if (!old_json.has_value() && !new_json.has_value()) {
      continue;  // Raw validators report unparseable specs.
    }
    if (!old_json.has_value() || !new_json.has_value()) {
      impact.kind = ImpactKind::kTypeChange;
      impact.detail = !old_json.has_value() ? "project added or was malformed"
                                            : "project removed or malformed";
    } else if (*old_json == *new_json) {
      impact.kind = ImpactKind::kNoOp;
      impact.detail = "spec unchanged";
    } else {
      GateSurface old_surface = ExtractGateSurface(*old_json);
      GateSurface new_surface = ExtractGateSurface(*new_json);
      if (!(old_surface == new_surface)) {
        impact.kind = ImpactKind::kControlShift;
        impact.old_value = old_surface.Describe();
        impact.new_value = new_surface.Describe();
        impact.detail =
            "project consults different restraint types or context fields";
      } else {
        impact.kind = ImpactKind::kValueDelta;
        impact.detail = "rule parameters or sampling probabilities changed";
      }
    }
    report.impacts.push_back(std::move(impact));
  }

  std::sort(report.impacts.begin(), report.impacts.end(),
            [](const SymbolImpact& a, const SymbolImpact& b) {
              return std::tie(a.file, a.symbol) < std::tie(b.file, b.symbol);
            });

  // -- Graph findings over the NEW closure (G007, G009, G010)...
  std::vector<std::string> graph_paths = roots;
  graph_paths.insert(graph_paths.end(), gk_touched.begin(), gk_touched.end());
  ProvenanceGraph graph =
      ProvenanceGraph::Build(new_reader_, graph_paths, *registry_, &new_cache);
  report.findings = graph.findings();
  if (!graph.sound()) {
    report.sound = false;
  }

  // ...plus G008: branches the commit *newly* decides. A site decided the
  // same way on both sides was already dead — flagging it on every commit
  // that touches the file would be noise; the semantic diff reports the
  // transition.
  std::set<std::tuple<std::string, int, bool>> old_decided;
  std::set<std::tuple<std::string, int, bool>> new_decided;
  for (const auto& [path, pair] : files) {
    for (const DecidedBranch& branch : pair.old_side.absint.decided_branches) {
      old_decided.insert({branch.file, branch.line, branch.value});
    }
    for (const DecidedBranch& branch : pair.new_side.absint.decided_branches) {
      new_decided.insert({branch.file, branch.line, branch.value});
    }
  }
  for (const auto& [file, line, value] : new_decided) {
    if (old_decided.count({file, line, value}) > 0) {
      continue;
    }
    LintDiagnostic d;
    d.rule_id = "G008";
    d.severity = LintSeverity::kWarning;
    d.file = file;
    d.line = line;
    d.message = StrFormat(
        "branch condition is now statically %s under every schema-valid "
        "context; one arm is unreachable",
        value ? "true" : "false");
    d.suggestion = "fold the branch or revisit the constants deciding it";
    report.findings.push_back(std::move(d));
  }
  SortDiagnostics(&report.findings);

  report.provably_noop = report.sound;
  for (const SymbolImpact& impact : report.impacts) {
    if (impact.kind != ImpactKind::kNoOp) {
      report.provably_noop = false;
      break;
    }
  }
  return report;
}

}  // namespace configerator
