#include "src/analysis/provenance.h"

#include <algorithm>
#include <deque>

#include "src/json/json.h"
#include "src/lang/ast.h"
#include "src/lang/import_resolver.h"

namespace configerator {

namespace {

bool IsCslPath(const std::string& path) {
  return path.ends_with(".cconf") || path.ends_with(".cinc");
}

bool IsGatekeeperPath(const std::string& path) {
  return path.starts_with("gatekeeper/") && path.ends_with(".json");
}

LintDiagnostic MakeFinding(const char* rule_id, LintSeverity severity,
                           std::string file, int line, std::string message,
                           std::string suggestion) {
  LintDiagnostic d;
  d.rule_id = rule_id;
  d.severity = severity;
  d.file = std::move(file);
  d.line = line;
  d.message = std::move(message);
  d.suggestion = std::move(suggestion);
  return d;
}

}  // namespace

std::vector<std::string> ContextFieldsForRestraint(const std::string& type) {
  // Mirrors the field reads of the builtin restraint implementations
  // (src/gatekeeper/restraint.cc). A new builtin that consults a new field
  // must be added here for control-shift detection to see it.
  if (type == "always") {
    return {};
  }
  if (type == "employee") {
    return {"is_employee"};
  }
  if (type == "country") {
    return {"country"};
  }
  if (type == "locale") {
    return {"locale"};
  }
  if (type == "app") {
    return {"app"};
  }
  if (type == "device") {
    return {"device"};
  }
  if (type == "platform") {
    return {"platform"};
  }
  if (type == "min_friend_count" || type == "max_friend_count") {
    return {"friend_count"};
  }
  if (type == "min_account_age" || type == "new_user") {
    return {"account_age_days"};
  }
  if (type == "min_app_version") {
    return {"app_version"};
  }
  if (type == "id_in" || type == "id_mod" || type == "hash_range") {
    return {"user_id"};
  }
  if (type == "string_attr_equals" || type == "has_attr") {
    return {"string_attrs"};
  }
  if (type == "numeric_attr_gt" || type == "numeric_attr_lt") {
    return {"numeric_attrs"};
  }
  return {};
}

ProvenanceGraph ProvenanceGraph::Build(const FileReader& reader,
                                       const std::vector<std::string>& paths,
                                       const RestraintRegistry& registry,
                                       AstCache* ast_cache) {
  ProvenanceGraph graph;
  AbstractInterpreter absint(reader);
  absint.set_ast_cache(ast_cache);

  auto known_type = [&registry](const std::string& type) {
    for (const std::string& name : registry.TypeNames()) {
      if (name == type) {
        return true;
      }
    }
    return false;
  };

  // -- Discover the CSL closure: roots plus everything their abstract runs
  // read (used_symbols keys every file touched, transitively).
  std::set<std::string> csl_files;
  std::set<std::string> gk_files;
  std::deque<std::string> pending;
  for (const std::string& path : paths) {
    if (IsCslPath(path) && csl_files.insert(path).second) {
      pending.push_back(path);
    } else if (IsGatekeeperPath(path)) {
      gk_files.insert(path);
    }
  }

  struct FileFacts {
    std::string content;
    ModuleSymbolSurface surface;
    AbsintResult absint;
  };
  std::map<std::string, FileFacts> facts;

  while (!pending.empty()) {
    std::string path = std::move(pending.front());
    pending.pop_front();
    if (!reader) {
      graph.sound_ = false;
      break;
    }
    auto content = reader(path);
    if (!content.ok()) {
      graph.sound_ = false;
      continue;
    }
    FileFacts f;
    f.content = *content;
    f.surface = ComputeSymbolSurface(path, f.content, ast_cache);
    f.absint = absint.Analyze(path, f.content);
    if (!f.surface.analyzable || !f.absint.analyzed ||
        !f.absint.slice_sound) {
      graph.sound_ = false;
    }
    for (const auto& [dep_path, symbols] : f.absint.used_symbols) {
      if (IsCslPath(dep_path) && csl_files.insert(dep_path).second) {
        pending.push_back(dep_path);
      }
    }
    facts.emplace(path, std::move(f));
  }

  // -- CSL nodes: one per top-level symbol, one per entry export.
  // `consumed` collects every (module, symbol) some file's run actually
  // read — the graph-wide fan-in that decides G007.
  std::set<std::pair<std::string, std::string>> consumed;
  for (const auto& [path, f] : facts) {
    for (const auto& [symbol, summary] : f.absint.symbol_summaries) {
      if (f.surface.fingerprints.count(symbol) == 0) {
        // Import binding, not a definition in this file: the provenance of
        // the value lives at its defining module (a binding node would also
        // fabricate a consumer edge that defeats G007 for unused imports).
        continue;
      }
      ProvenanceNode node;
      node.file = path;
      node.symbol = symbol;
      node.summary = summary;
      node.deps = summary.deps;
      auto lines = f.surface.def_lines.find(symbol);
      if (lines != f.surface.def_lines.end()) {
        node.def_lines = lines->second;
      }
      graph.nodes_.emplace(std::make_pair(path, symbol), std::move(node));
    }
    for (const ExportSlice& slice : f.absint.exports) {
      // Conditional entries export the same output path from several branch
      // arms: merge the slices into one node (union deps + def lines).
      ProvenanceNode& node = graph.nodes_[{path, slice.path}];
      node.file = path;
      node.symbol = slice.path;
      for (const auto& [module_path, symbols] : slice.symbols_by_module) {
        node.deps[module_path].insert(symbols.begin(), symbols.end());
      }
      node.def_lines.push_back({slice.line, slice.line});
      node.is_export = true;
    }
    for (const auto& [module_path, symbols] : f.absint.used_symbols) {
      if (module_path == path) {
        continue;  // Self-reads are intra-module, handled below.
      }
      for (const std::string& symbol : symbols) {
        consumed.insert({module_path, symbol});
      }
    }
    // Intra-module def-use: A consuming B keeps B alive.
    for (const auto& [symbol, read_names] : f.surface.reads) {
      for (const std::string& read : read_names) {
        if (read != symbol && f.surface.fingerprints.count(read) > 0) {
          consumed.insert({path, read});
        }
      }
    }
  }

  // -- Gatekeeper nodes + G009 (stale restraint reference). G004 catches an
  // unknown type when the project itself is linted; G009 fires for any
  // project in the *closure*, so shrinking the registry flags every stale
  // reference repo-wide, not just in touched files.
  for (const std::string& path : gk_files) {
    if (!reader) {
      break;
    }
    auto content = reader(path);
    if (!content.ok()) {
      continue;
    }
    auto json = Json::Parse(*content);
    if (!json.ok()) {
      continue;  // Sandcastle's raw validator reports malformed JSON.
    }
    ProvenanceNode node;
    node.file = path;
    const Json* project = json->Get("project");
    node.symbol = project != nullptr && project->is_string()
                      ? project->as_string()
                      : path;
    node.is_gatekeeper = true;
    const Json* rules = json->Get("rules");
    if (rules != nullptr && rules->is_array()) {
      for (const Json& rule : rules->as_array()) {
        const Json* restraints = rule.Get("restraints");
        if (restraints == nullptr || !restraints->is_array()) {
          continue;
        }
        for (const Json& spec : restraints->as_array()) {
          const Json* type = spec.Get("type");
          if (type == nullptr || !type->is_string()) {
            continue;
          }
          const std::string& type_name = type->as_string();
          node.deps["restraints"].insert(type_name);
          for (const std::string& field : ContextFieldsForRestraint(type_name)) {
            node.deps["context"].insert(field);
          }
          if (type_name == "laser") {
            const Json* params = spec.Get("params");
            const Json* laser_project =
                params != nullptr ? params->Get("project") : nullptr;
            if (laser_project != nullptr && laser_project->is_string()) {
              node.deps["laser"].insert(laser_project->as_string());
            }
          }
          if (!known_type(type_name)) {
            graph.findings_.push_back(MakeFinding(
                "G009", LintSeverity::kError, path, 0,
                "project '" + node.symbol + "' references restraint type '" +
                    type_name + "' that is no longer in the RestraintRegistry",
                "remove the restraint or restore the type"));
          }
        }
      }
    }
    graph.nodes_.emplace(std::make_pair(path, node.symbol), std::move(node));
  }

  // -- Reverse edges.
  for (const auto& [key, node] : graph.nodes_) {
    for (const auto& [module_path, symbols] : node.deps) {
      for (const std::string& symbol : symbols) {
        graph.dependents_[{module_path, symbol}].insert(key);
      }
    }
  }

  // -- G010 (shadowed import): a later top-level import rebinding a name an
  // earlier import from a *different* module already bound. The classic
  // hazard is a star import growing a new symbol that silently shadows a
  // specific earlier import (or vice versa).
  for (const auto& [path, f] : facts) {
    auto module = ast_cache != nullptr
                      ? ast_cache->GetOrParse(path, f.content)
                      : ParseCsl(f.content, path);
    if (!module.ok()) {
      continue;
    }
    std::map<std::string, std::string> bound_by;  // name -> source module.
    for (const StmtPtr& stmt : (*module)->body) {
      if (stmt->kind != Stmt::Kind::kExpr || stmt->target == nullptr ||
          !IsImportCall(*stmt->target)) {
        continue;
      }
      ImportTarget target = ClassifyImport(*stmt->target);
      if (target.kind != ImportTarget::Kind::kModule) {
        continue;  // Schemas bind into a separate env; dynamic is unsound
                   // already (absint flagged it).
      }
      std::set<std::string> bound_names;
      if (target.filter != "*") {
        bound_names.insert(target.filter);
      } else {
        auto it = facts.find(target.path);
        if (it == facts.end() || !it->second.surface.analyzable) {
          continue;  // Unresolvable star target: absint marked unsound.
        }
        for (const auto& [name, fp] : it->second.surface.fingerprints) {
          bound_names.insert(name);
        }
      }
      for (const std::string& name : bound_names) {
        auto it = bound_by.find(name);
        if (it != bound_by.end() && it->second != target.path) {
          graph.findings_.push_back(MakeFinding(
              "G010", LintSeverity::kError, path, target.line,
              "import from '" + target.path + "' rebinds '" + name +
                  "' already bound by the import of '" + it->second + "'",
              "rename the symbol or drop one of the imports"));
        }
        bound_by[name] = target.path;
      }
    }
  }

  // -- G007 (dead export): a module symbol nothing in the graph consumes.
  // Needs complete fan-in, so it is suppressed when any slice was unsound.
  if (graph.sound_) {
    for (const auto& [key, node] : graph.nodes_) {
      if (!key.first.ends_with(".cinc") || node.is_export ||
          node.is_gatekeeper) {
        continue;  // Entries' own symbols are theirs to keep.
      }
      if (consumed.count(key) > 0 ||
          graph.dependents_.count(key) > 0) {
        continue;
      }
      int line = node.def_lines.empty() ? 0 : node.def_lines.front().first;
      graph.findings_.push_back(MakeFinding(
          "G007", LintSeverity::kWarning, key.first, line,
          "module symbol '" + key.second +
              "' has no consumer anywhere in the repository",
          "delete it or export it from an entry"));
    }
  }

  SortDiagnostics(&graph.findings_);
  return graph;
}

const ProvenanceNode* ProvenanceGraph::Find(const std::string& file,
                                            const std::string& symbol) const {
  auto it = nodes_.find({file, symbol});
  return it == nodes_.end() ? nullptr : &it->second;
}

std::set<std::pair<std::string, std::string>> ProvenanceGraph::Dependents(
    const std::string& file, const std::string& symbol) const {
  auto it = dependents_.find({file, symbol});
  return it == dependents_.end()
             ? std::set<std::pair<std::string, std::string>>{}
             : it->second;
}

std::vector<std::string> ProvenanceGraph::SymbolsAtLine(const std::string& file,
                                                        int line) const {
  std::vector<std::string> out;
  for (auto it = nodes_.lower_bound({file, std::string()});
       it != nodes_.end() && it->first.first == file; ++it) {
    for (const auto& [first, last] : it->second.def_lines) {
      if (line >= first && line <= last) {
        out.push_back(it->first.second);
        break;
      }
    }
  }
  return out;
}

}  // namespace configerator
