// Internal interface between the ConfigLint driver and its rule families.
// Not installed as public API; tests go through ConfigLint.

#ifndef SRC_ANALYSIS_RULES_H_
#define SRC_ANALYSIS_RULES_H_

#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/gatekeeper/restraint.h"
#include "src/lang/ast.h"
#include "src/lang/ast_cache.h"
#include "src/lang/compiler.h"

namespace configerator {
namespace analysis {

// Language rules (L001..L009) over a parsed module. `reader` resolves
// import_python / import_thrift targets; may be null. `ast_cache` (optional)
// memoizes parses of imported modules across passes.
void RunLanguageRules(const Module& module, const FileReader& reader,
                      std::vector<LintDiagnostic>* diags,
                      AstCache* ast_cache = nullptr);

// Gating rules (G001..G006) over a parsed Gatekeeper project JSON.
void RunGatingRules(const std::string& path, const Json& config,
                    const RestraintRegistry& registry,
                    std::vector<LintDiagnostic>* diags);

}  // namespace analysis
}  // namespace configerator

#endif  // SRC_ANALYSIS_RULES_H_
