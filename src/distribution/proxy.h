// Configerator Proxy and application client library (paper §3.4).
//
// Every production server runs a proxy process. The proxy picks an observer
// in its own cluster, subscribes (with a watch) to exactly the configs its
// local applications need, and caches them on disk. The availability story:
// if the proxy fails, applications fall back to reading the on-disk cache
// directly — so a config that has ever been fetched stays readable even if
// every Configerator component is down.

#ifndef SRC_DISTRIBUTION_PROXY_H_
#define SRC_DISTRIBUTION_PROXY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/zeus/zeus.h"

namespace configerator {

// The server's local disk: survives proxy crashes (but not in this model
// machine reimage). Shared between the proxy (writer) and the application
// client library (fallback reader).
class OnDiskCache {
 public:
  void Put(const std::string& key, std::string value, int64_t zxid) {
    entries_[key] = Entry{std::move(value), zxid};
  }
  struct Entry {
    std::string value;
    int64_t zxid = 0;
  };
  const Entry* Get(const std::string& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }
  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry> entries_;
};

class ConfigProxy {
 public:
  using UpdateCallback =
      std::function<void(const std::string& key, const std::string& value,
                         int64_t zxid)>;

  ConfigProxy(Network* net, ZeusEnsemble* zeus, ServerId host,
              OnDiskCache* disk, uint64_t seed);

  const ServerId& host() const { return host_; }

  // Subscribes the proxy (and the registered application callbacks) to
  // `key`. Fetch + watch go to the chosen observer; every update lands in
  // the in-memory cache and the on-disk cache, then fans out to callbacks.
  // Stale/duplicate deliveries (zxid <= last seen) are discarded, preserving
  // per-key ordering.
  void Subscribe(const std::string& key, UpdateCallback on_update);

  // Synchronous read of the proxy's in-memory cache (applications read
  // through shared memory in production; function call here).
  const OnDiskCache::Entry* GetCached(const std::string& key) const;

  // Simulated proxy crash/restart. While crashed the proxy ignores
  // deliveries; on restart it resubscribes everything (possibly picking a
  // new observer) and recovers its memory cache from disk.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  // Re-picks the observer (e.g. after observer failure) and resubscribes.
  void RepickObserver();

  // Opt-in metrics + tracing (must outlive the proxy). Metrics are labeled
  // {server=<host>}. If `staleness_probe_interval` > 0 the proxy also pings
  // its observer on that period and maintains proxy_staleness_seconds — the
  // sim-seconds since it last heard from a live observer (rises during an
  // outage, returns to ~0 after heal). 0 keeps the proxy message-silent.
  void AttachObservability(Observability* obs,
                           SimTime staleness_probe_interval = 0);

  const ServerId& observer() const { return observer_; }
  uint64_t updates_received() const { return updates_received_; }
  uint64_t stale_discarded() const { return stale_discarded_; }

 private:
  void DoSubscribe(const std::string& key);
  void OnZeusUpdate(const ZeusTxn& txn);
  void ProbeStaleness();

  Network* net_;
  ZeusEnsemble* zeus_;
  ServerId host_;
  OnDiskCache* disk_;
  Rng rng_;
  ServerId observer_;
  bool crashed_ = false;
  std::map<std::string, OnDiskCache::Entry> memory_cache_;
  std::map<std::string, std::vector<UpdateCallback>> callbacks_;
  uint64_t updates_received_ = 0;
  uint64_t stale_discarded_ = 0;

  // Observability (nullptr = unattached; zero overhead, zero messages).
  Observability* obs_ = nullptr;
  SimTime staleness_probe_interval_ = 0;
  SimTime last_confirmed_ = 0;  // Last sim time a live observer was heard.
  double max_propagation_ = -1;
  Counter* updates_counter_ = nullptr;
  Counter* stale_counter_ = nullptr;
  Histogram* propagation_hist_ = nullptr;
  Gauge* staleness_gauge_ = nullptr;
  Gauge* slowest_zxid_gauge_ = nullptr;

  // Liveness token: watch callbacks registered at observers capture a weak
  // reference through this so deliveries to a restarted proxy incarnation
  // are still routed correctly.
  std::shared_ptr<ConfigProxy*> self_;
};

// The application side of the client library: reads through the proxy, or
// directly from the on-disk cache if the proxy is down (availability
// guarantee of §3.4).
class AppConfigClient {
 public:
  AppConfigClient(const ConfigProxy* proxy, const OnDiskCache* disk)
      : proxy_(proxy), disk_(disk) {}

  // Returns the freshest locally available value, or nullptr if the config
  // has never reached this server.
  const OnDiskCache::Entry* Get(const std::string& key) const {
    if (!proxy_->crashed()) {
      const OnDiskCache::Entry* entry = proxy_->GetCached(key);
      if (entry != nullptr) {
        return entry;
      }
    }
    return disk_->Get(key);
  }

 private:
  const ConfigProxy* proxy_;
  const OnDiskCache* disk_;
};

}  // namespace configerator

#endif  // SRC_DISTRIBUTION_PROXY_H_
