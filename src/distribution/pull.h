// Pull-model distribution baseline for the §3.4 ablation. A stateless
// central service holds the latest configs; every client polls on a timer,
// sending its full interest list (key + cached version) because the server
// keeps no per-client state — exactly the two inefficiencies the paper
// calls out: empty polls are pure overhead, and request size grows with the
// number of configs a server needs.

#ifndef SRC_DISTRIBUTION_PULL_H_
#define SRC_DISTRIBUTION_PULL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/network.h"

namespace configerator {

class PullService {
 public:
  PullService(Network* net, ServerId host) : net_(net), host_(host) {}

  const ServerId& host() const { return host_; }

  // Publishes (or updates) a config; version increases monotonically.
  void Publish(const std::string& key, std::string value);

  struct Entry {
    std::string value;
    int64_t version = 0;
  };
  const Entry* Get(const std::string& key) const {
    auto it = configs_.find(key);
    return it == configs_.end() ? nullptr : &it->second;
  }

 private:
  friend class PullClient;

  Network* net_;
  ServerId host_;
  std::map<std::string, Entry> configs_;
  int64_t next_version_ = 1;
};

class PullClient {
 public:
  using UpdateCallback = std::function<void(
      const std::string& key, const std::string& value, int64_t version)>;

  PullClient(Network* net, PullService* service, ServerId host,
             SimTime poll_interval)
      : net_(net), service_(service), host_(host), poll_interval_(poll_interval) {}

  // Adds `key` to the interest list.
  void Track(const std::string& key, UpdateCallback on_update);

  // Starts the poll loop; the first poll is staggered by `initial_stagger`
  // so a fleet doesn't poll in lockstep.
  void Start(SimTime initial_stagger = 0);

  const std::map<std::string, int64_t>& cached_versions() const {
    return cached_versions_;
  }
  uint64_t polls_sent() const { return polls_sent_; }
  uint64_t empty_polls() const { return empty_polls_; }

 private:
  void Poll();

  Network* net_;
  PullService* service_;
  ServerId host_;
  SimTime poll_interval_;
  std::map<std::string, int64_t> cached_versions_;
  std::map<std::string, std::vector<UpdateCallback>> callbacks_;
  uint64_t polls_sent_ = 0;
  uint64_t empty_polls_ = 0;
};

}  // namespace configerator

#endif  // SRC_DISTRIBUTION_PULL_H_
