#include "src/distribution/tailer.h"

#include "src/util/logging.h"

namespace configerator {

GitTailer::GitTailer(Network* net, ServerId host, const Repository* repo,
                     ZeusEnsemble* zeus, Options options)
    : net_(net), host_(host), repo_(repo), zeus_(zeus), options_(std::move(options)) {}

void GitTailer::Start() {
  net_->sim().Schedule(options_.poll_interval, [this] { Poll(); });
}

void GitTailer::AttachObservability(Observability* obs) {
  obs_ = obs;
  published_counter_ = obs->metrics.GetCounter("tailer_published_total");
  failed_counter_ = obs->metrics.GetCounter("tailer_publish_failures_total");
  publish_latency_ = obs->metrics.GetHistogram("tailer_publish_seconds");
}

void GitTailer::Poll() {
  std::optional<ObjectId> head = repo_->head();
  if (head.has_value() && (!last_seen_.has_value() || !(*head == *last_seen_))) {
    auto deltas = repo_->DiffCommits(last_seen_, head);
    if (deltas.ok()) {
      for (const FileDelta& delta : *deltas) {
        if (!options_.path_prefix.empty() &&
            delta.path.compare(0, options_.path_prefix.size(),
                               options_.path_prefix) != 0) {
          continue;
        }
        std::string value;
        if (delta.kind != FileDelta::Kind::kDeleted) {
          auto content = repo_->ReadFileAt(*head, delta.path);
          if (!content.ok()) {
            CLOG(Warning) << "tailer: cannot read " << delta.path << ": "
                          << content.status();
            continue;
          }
          value = std::move(content).value();
        }
        // Deletions distribute an empty tombstone value. The fetch delay
        // models reading the changed blobs out of the (slow, large) repo.
        std::string path = delta.path;
        net_->sim().Schedule(
            options_.fetch_delay,
            [this, path = std::move(path), value = std::move(value)]() mutable {
              // Parent the publish span on whatever bound this path (the
              // landing strip or the workload commit); a publish whose path
              // was never traced records nothing.
              TraceContext span;
              if (obs_ != nullptr) {
                span = obs_->tracer.StartSpan(obs_->tracer.PathContext(path),
                                              "tailer.publish",
                                              host_.ToString(),
                                              net_->sim().now());
              }
              SimTime started = net_->sim().now();
              zeus_->Write(host_, path, std::move(value),
                           [this, path, span, started](Result<int64_t> zxid) {
                             if (obs_ != nullptr) {
                               obs_->tracer.EndSpan(span, net_->sim().now());
                             }
                             if (!zxid.ok()) {
                               if (failed_counter_ != nullptr) {
                                 failed_counter_->Inc();
                               }
                               CLOG(Warning) << "tailer: Zeus write failed for "
                                             << path << ": " << zxid.status();
                               return;
                             }
                             if (obs_ != nullptr) {
                               obs_->tracer.BindZxid(*zxid, span);
                               published_counter_->Inc();
                               publish_latency_->Record(SimToSeconds(
                                   net_->sim().now() - started));
                             }
                             ++published_;
                             if (on_published_) {
                               on_published_(path, *zxid);
                             }
                           });
            });
      }
      last_seen_ = head;
    } else {
      CLOG(Warning) << "tailer: diff failed: " << deltas.status();
    }
  }
  net_->sim().Schedule(options_.poll_interval, [this] { Poll(); });
}

}  // namespace configerator
