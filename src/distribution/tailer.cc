#include "src/distribution/tailer.h"

#include "src/util/logging.h"

namespace configerator {

GitTailer::GitTailer(Network* net, ServerId host, const Repository* repo,
                     ZeusEnsemble* zeus, Options options)
    : net_(net), host_(host), repo_(repo), zeus_(zeus), options_(std::move(options)) {}

void GitTailer::Start() {
  net_->sim().Schedule(options_.poll_interval, [this] { Poll(); });
}

void GitTailer::Poll() {
  std::optional<ObjectId> head = repo_->head();
  if (head.has_value() && (!last_seen_.has_value() || !(*head == *last_seen_))) {
    auto deltas = repo_->DiffCommits(last_seen_, head);
    if (deltas.ok()) {
      for (const FileDelta& delta : *deltas) {
        if (!options_.path_prefix.empty() &&
            delta.path.compare(0, options_.path_prefix.size(),
                               options_.path_prefix) != 0) {
          continue;
        }
        std::string value;
        if (delta.kind != FileDelta::Kind::kDeleted) {
          auto content = repo_->ReadFileAt(*head, delta.path);
          if (!content.ok()) {
            CLOG(Warning) << "tailer: cannot read " << delta.path << ": "
                          << content.status();
            continue;
          }
          value = std::move(content).value();
        }
        // Deletions distribute an empty tombstone value. The fetch delay
        // models reading the changed blobs out of the (slow, large) repo.
        std::string path = delta.path;
        net_->sim().Schedule(
            options_.fetch_delay,
            [this, path = std::move(path), value = std::move(value)]() mutable {
              zeus_->Write(host_, path, std::move(value),
                           [this, path](Result<int64_t> zxid) {
                             if (!zxid.ok()) {
                               CLOG(Warning) << "tailer: Zeus write failed for "
                                             << path << ": " << zxid.status();
                               return;
                             }
                             ++published_;
                             if (on_published_) {
                               on_published_(path, *zxid);
                             }
                           });
            });
      }
      last_seen_ = head;
    } else {
      CLOG(Warning) << "tailer: diff failed: " << deltas.status();
    }
  }
  net_->sim().Schedule(options_.poll_interval, [this] { Poll(); });
}

}  // namespace configerator
