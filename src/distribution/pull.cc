#include "src/distribution/pull.h"

namespace configerator {

void PullService::Publish(const std::string& key, std::string value) {
  configs_[key] = Entry{std::move(value), next_version_++};
}

void PullClient::Track(const std::string& key, UpdateCallback on_update) {
  cached_versions_.try_emplace(key, 0);
  if (on_update) {
    callbacks_[key].push_back(std::move(on_update));
  }
}

void PullClient::Start(SimTime initial_stagger) {
  net_->sim().Schedule(initial_stagger, [this] { Poll(); });
}

void PullClient::Poll() {
  ++polls_sent_;
  // Request: the full interest list with cached versions. ~48 bytes per
  // entry (path + version + framing), because the server is stateless.
  int64_t request_bytes = 64 + static_cast<int64_t>(cached_versions_.size()) * 48;
  net_->Send(host_, service_->host(), request_bytes, [this] {
    // Server side: collect updates newer than the client's versions.
    std::vector<std::pair<std::string, PullService::Entry>> updates;
    int64_t response_bytes = 64;
    for (const auto& [key, cached_version] : cached_versions_) {
      const PullService::Entry* entry = service_->Get(key);
      if (entry != nullptr && entry->version > cached_version) {
        updates.emplace_back(key, *entry);
        response_bytes += static_cast<int64_t>(key.size() + entry->value.size() + 32);
      }
    }
    if (updates.empty()) {
      ++empty_polls_;
    }
    net_->Send(service_->host(), host_, response_bytes,
               [this, updates = std::move(updates)] {
                 for (const auto& [key, entry] : updates) {
                   int64_t& cached = cached_versions_[key];
                   if (entry.version <= cached) {
                     continue;
                   }
                   cached = entry.version;
                   auto it = callbacks_.find(key);
                   if (it != callbacks_.end()) {
                     for (const UpdateCallback& cb : it->second) {
                       cb(key, entry.value, entry.version);
                     }
                   }
                 }
               });
  });
  net_->sim().Schedule(poll_interval_, [this] { Poll(); });
}

}  // namespace configerator
