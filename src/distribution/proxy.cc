#include "src/distribution/proxy.h"

namespace configerator {

ConfigProxy::ConfigProxy(Network* net, ZeusEnsemble* zeus, ServerId host,
                         OnDiskCache* disk, uint64_t seed)
    : net_(net), zeus_(zeus), host_(host), disk_(disk), rng_(seed) {
  observer_ = zeus_->PickObserverFor(host_, rng_);
  self_ = std::make_shared<ConfigProxy*>(this);
}

void ConfigProxy::Subscribe(const std::string& key, UpdateCallback on_update) {
  bool already_subscribed = callbacks_.count(key) > 0;
  if (on_update) {
    callbacks_[key].push_back(std::move(on_update));
  } else {
    callbacks_.try_emplace(key);  // Subscription without a callback.
  }
  if (!already_subscribed && !crashed_) {
    DoSubscribe(key);
  }
}

void ConfigProxy::DoSubscribe(const std::string& key) {
  std::weak_ptr<ConfigProxy*> weak = self_;
  zeus_->Subscribe(host_, observer_, key, [weak](const ZeusTxn& txn) {
    std::shared_ptr<ConfigProxy*> self = weak.lock();
    if (self == nullptr) {
      return;  // Proxy incarnation is gone (crash without restart).
    }
    (*self)->OnZeusUpdate(txn);
  });
}

void ConfigProxy::OnZeusUpdate(const ZeusTxn& txn) {
  if (crashed_) {
    return;  // Delivery to a dead process.
  }
  if (obs_ != nullptr) {
    last_confirmed_ = net_->sim().now();  // A delivery is proof of liveness.
  }
  auto it = memory_cache_.find(txn.key);
  if (it != memory_cache_.end() && txn.zxid <= it->second.zxid) {
    ++stale_discarded_;  // Ordering guarantee: never move backwards.
    if (stale_counter_ != nullptr) {
      stale_counter_->Inc();
    }
    return;
  }
  ++updates_received_;
  TraceContext apply_span;
  if (obs_ != nullptr) {
    SimTime now = net_->sim().now();
    updates_counter_->Inc();
    TraceContext parent = txn.trace.valid()
                              ? txn.trace
                              : obs_->tracer.ZxidContext(txn.zxid);
    apply_span = obs_->tracer.StartSpan(parent, "proxy.apply",
                                        host_.ToString(), now);
    SimTime commit_start = obs_->tracer.TraceStartTime(parent.trace_id);
    if (commit_start >= 0) {
      double latency = SimToSeconds(now - commit_start);
      propagation_hist_->Record(latency);
      if (latency > max_propagation_) {
        max_propagation_ = latency;
        slowest_zxid_gauge_->Set(static_cast<double>(txn.zxid));
      }
    }
  }
  memory_cache_[txn.key] = OnDiskCache::Entry{txn.value, txn.zxid};
  disk_->Put(txn.key, txn.value, txn.zxid);
  auto cb_it = callbacks_.find(txn.key);
  if (cb_it != callbacks_.end()) {
    if (obs_ != nullptr && !cb_it->second.empty()) {
      SimTime now = net_->sim().now();
      obs_->tracer.EndSpan(obs_->tracer.StartSpan(apply_span, "app.callback",
                                                  host_.ToString(), now),
                           now);
    }
    for (const UpdateCallback& cb : cb_it->second) {
      cb(txn.key, txn.value, txn.zxid);
    }
  }
  if (obs_ != nullptr) {
    obs_->tracer.EndSpan(apply_span, net_->sim().now());
  }
}

void ConfigProxy::AttachObservability(Observability* obs,
                                      SimTime staleness_probe_interval) {
  obs_ = obs;
  staleness_probe_interval_ = staleness_probe_interval;
  MetricLabels labels{{"server", host_.ToString()}};
  updates_counter_ = obs->metrics.GetCounter("proxy_updates_total", labels);
  stale_counter_ =
      obs->metrics.GetCounter("proxy_stale_discarded_total", labels);
  propagation_hist_ =
      obs->metrics.GetHistogram("proxy_propagation_seconds", labels);
  staleness_gauge_ =
      obs->metrics.GetGauge("proxy_staleness_seconds", labels);
  slowest_zxid_gauge_ = obs->metrics.GetGauge("proxy_slowest_zxid", labels);
  last_confirmed_ = net_->sim().now();
  if (staleness_probe_interval_ > 0) {
    net_->sim().Schedule(staleness_probe_interval_,
                         [this] { ProbeStaleness(); });
  }
}

void ConfigProxy::ProbeStaleness() {
  if (!crashed_) {
    staleness_gauge_->Set(SimToSeconds(net_->sim().now() - last_confirmed_));
    // Ping the current observer; the reply (if the observer is up and no
    // partition eats either leg) refreshes last_confirmed_. The callback
    // guards on the incarnation token like watch deliveries do.
    std::weak_ptr<ConfigProxy*> weak = self_;
    zeus_->Ping(host_, observer_, [weak](int64_t /*observer_zxid*/) {
      std::shared_ptr<ConfigProxy*> self = weak.lock();
      if (self == nullptr) {
        return;
      }
      ConfigProxy* proxy = *self;
      if (proxy->crashed_) {
        return;
      }
      proxy->last_confirmed_ = proxy->net_->sim().now();
      proxy->staleness_gauge_->Set(0);
    });
  }
  net_->sim().Schedule(staleness_probe_interval_, [this] { ProbeStaleness(); });
}

const OnDiskCache::Entry* ConfigProxy::GetCached(const std::string& key) const {
  if (crashed_) {
    return nullptr;
  }
  auto it = memory_cache_.find(key);
  return it == memory_cache_.end() ? nullptr : &it->second;
}

void ConfigProxy::Crash() {
  crashed_ = true;
  memory_cache_.clear();
  // Invalidate outstanding watch deliveries to this incarnation.
  self_ = std::make_shared<ConfigProxy*>(this);
}

void ConfigProxy::Restart() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  // Warm the memory cache from disk, then resubscribe everything.
  for (const std::string& key : [this] {
         std::vector<std::string> keys;
         keys.reserve(callbacks_.size());
         for (const auto& [k, cbs] : callbacks_) {
           keys.push_back(k);
         }
         return keys;
       }()) {
    const OnDiskCache::Entry* entry = disk_->Get(key);
    if (entry != nullptr) {
      memory_cache_[key] = *entry;
    }
  }
  observer_ = zeus_->PickObserverFor(host_, rng_);
  for (const auto& [key, cbs] : callbacks_) {
    DoSubscribe(key);
  }
}

void ConfigProxy::RepickObserver() {
  observer_ = zeus_->PickObserverFor(host_, rng_);
  if (!crashed_) {
    for (const auto& [key, cbs] : callbacks_) {
      DoSubscribe(key);
    }
  }
}

}  // namespace configerator
