#include "src/distribution/proxy.h"

namespace configerator {

ConfigProxy::ConfigProxy(Network* net, ZeusEnsemble* zeus, ServerId host,
                         OnDiskCache* disk, uint64_t seed)
    : net_(net), zeus_(zeus), host_(host), disk_(disk), rng_(seed) {
  observer_ = zeus_->PickObserverFor(host_, rng_);
  self_ = std::make_shared<ConfigProxy*>(this);
}

void ConfigProxy::Subscribe(const std::string& key, UpdateCallback on_update) {
  bool already_subscribed = callbacks_.count(key) > 0;
  if (on_update) {
    callbacks_[key].push_back(std::move(on_update));
  } else {
    callbacks_.try_emplace(key);  // Subscription without a callback.
  }
  if (!already_subscribed && !crashed_) {
    DoSubscribe(key);
  }
}

void ConfigProxy::DoSubscribe(const std::string& key) {
  std::weak_ptr<ConfigProxy*> weak = self_;
  zeus_->Subscribe(host_, observer_, key, [weak](const ZeusTxn& txn) {
    std::shared_ptr<ConfigProxy*> self = weak.lock();
    if (self == nullptr) {
      return;  // Proxy incarnation is gone (crash without restart).
    }
    (*self)->OnZeusUpdate(txn);
  });
}

void ConfigProxy::OnZeusUpdate(const ZeusTxn& txn) {
  if (crashed_) {
    return;  // Delivery to a dead process.
  }
  auto it = memory_cache_.find(txn.key);
  if (it != memory_cache_.end() && txn.zxid <= it->second.zxid) {
    ++stale_discarded_;  // Ordering guarantee: never move backwards.
    return;
  }
  ++updates_received_;
  memory_cache_[txn.key] = OnDiskCache::Entry{txn.value, txn.zxid};
  disk_->Put(txn.key, txn.value, txn.zxid);
  auto cb_it = callbacks_.find(txn.key);
  if (cb_it != callbacks_.end()) {
    for (const UpdateCallback& cb : cb_it->second) {
      cb(txn.key, txn.value, txn.zxid);
    }
  }
}

const OnDiskCache::Entry* ConfigProxy::GetCached(const std::string& key) const {
  if (crashed_) {
    return nullptr;
  }
  auto it = memory_cache_.find(key);
  return it == memory_cache_.end() ? nullptr : &it->second;
}

void ConfigProxy::Crash() {
  crashed_ = true;
  memory_cache_.clear();
  // Invalidate outstanding watch deliveries to this incarnation.
  self_ = std::make_shared<ConfigProxy*>(this);
}

void ConfigProxy::Restart() {
  if (!crashed_) {
    return;
  }
  crashed_ = false;
  // Warm the memory cache from disk, then resubscribe everything.
  for (const std::string& key : [this] {
         std::vector<std::string> keys;
         keys.reserve(callbacks_.size());
         for (const auto& [k, cbs] : callbacks_) {
           keys.push_back(k);
         }
         return keys;
       }()) {
    const OnDiskCache::Entry* entry = disk_->Get(key);
    if (entry != nullptr) {
      memory_cache_[key] = *entry;
    }
  }
  observer_ = zeus_->PickObserverFor(host_, rng_);
  for (const auto& [key, cbs] : callbacks_) {
    DoSubscribe(key);
  }
}

void ConfigProxy::RepickObserver() {
  observer_ = zeus_->PickObserverFor(host_, rng_);
  if (!crashed_) {
    for (const auto& [key, cbs] : callbacks_) {
      DoSubscribe(key);
    }
  }
}

}  // namespace configerator
