#include "src/distribution/fleet.h"

#include <utility>

namespace configerator {

ProxyFleet::ProxyFleet(Network* net, ZeusEnsemble* zeus,
                       std::vector<ServerId> hosts, uint64_t seed)
    : net_(net), zeus_(zeus), hosts_(std::move(hosts)), rng_(seed) {}

void ProxyFleet::SubscribeAll(const std::string& key, SimTime spread) {
  size_t key_index = keys_.size();
  KeyState state;
  state.name = key;
  state.zxid.assign(hosts_.size(), -1);
  state.at.assign(hosts_.size(), -1);
  keys_.push_back(std::move(state));

  SimTime step = hosts_.empty()
                     ? 0
                     : spread / static_cast<SimTime>(hosts_.size());
  for (size_t i = 0; i < hosts_.size(); ++i) {
    ServerId host = hosts_[i];
    ServerId observer = zeus_->PickObserverFor(host, rng_);
    net_->sim().Schedule(
        static_cast<SimTime>(i) * step,
        [this, host, observer, key, key_index, i] {
          zeus_->Subscribe(host, observer, key,
                           [this, i, key_index](const ZeusTxn& txn) {
                             OnUpdate(i, key_index, txn);
                           });
        });
  }
}

void ProxyFleet::OnUpdate(size_t host_index, size_t key_index,
                          const ZeusTxn& txn) {
  KeyState& state = keys_[key_index];
  if (txn.zxid <= state.zxid[host_index]) {
    return;  // Stale delivery (subscribe refetch racing a push).
  }
  if (hook_) {
    hook_(host_index, key_index, txn);
  }
  state.zxid[host_index] = txn.zxid;
  state.at[host_index] = net_->sim().now();
  ++updates_received_;
}

size_t ProxyFleet::CountAtLeast(size_t key_index, int64_t zxid) const {
  const KeyState& state = keys_[key_index];
  size_t n = 0;
  for (int64_t z : state.zxid) {
    if (z >= zxid) {
      ++n;
    }
  }
  return n;
}

}  // namespace configerator
