// ProxyFleet: a struct-of-arrays subscriber fleet for scale experiments.
//
// A full ConfigProxy per server (memory cache + on-disk cache + callback
// registry + metrics) costs kilobytes each — fine for a DST scenario with
// tens of proxies, fatal at the paper's fleet sizes. The Fig 14 scaling bench
// needs 100k+ servers that each hold a live per-key Zeus subscription and
// record when updates land; nothing more. ProxyFleet keeps exactly that:
// per-(key, server) state is two dense arrays (last zxid, last update time)
// indexed by the server's position in the fleet, ~16 bytes per subscription,
// and every server runs the real subscribe/watch/push protocol over the
// simulated network (same messages, same observer selection as ConfigProxy).
//
// Not a DST citizen: fleet servers never crash or restart, so watch callbacks
// capture `this` directly — the fleet must outlive the ensemble's event flow.

#ifndef SRC_DISTRIBUTION_FLEET_H_
#define SRC_DISTRIBUTION_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/zeus/zeus.h"

namespace configerator {

class ProxyFleet {
 public:
  // `hosts`: the fleet servers, one subscription set each. Observer choice
  // follows the paper ("randomly picks an observer in the same cluster") via
  // ZeusEnsemble::PickObserverFor with a fleet-owned seeded rng.
  ProxyFleet(Network* net, ZeusEnsemble* zeus, std::vector<ServerId> hosts,
             uint64_t seed);

  // Subscribes every host to `key`, staggered uniformly over `spread` so
  // fleet start-up is a ramp, not a single 100k-message instant.
  void SubscribeAll(const std::string& key, SimTime spread = kSimSecond);

  size_t size() const { return hosts_.size(); }
  size_t key_count() const { return keys_.size(); }
  const std::vector<ServerId>& hosts() const { return hosts_; }
  const std::string& key_name(size_t key_index) const {
    return keys_[key_index].name;
  }

  // -1 if the host never received the key.
  int64_t last_zxid(size_t host_index, size_t key_index) const {
    return keys_[key_index].zxid[host_index];
  }
  SimTime updated_at(size_t host_index, size_t key_index) const {
    return keys_[key_index].at[host_index];
  }
  // Hosts whose last zxid for `key_index` is >= `zxid`.
  size_t CountAtLeast(size_t key_index, int64_t zxid) const;
  uint64_t updates_received() const { return updates_received_; }

  // Fires on every applied (non-stale) update, before state arrays change.
  // Benches use this for per-commit propagation timing without the fleet
  // storing any values.
  using UpdateHook =
      std::function<void(size_t host_index, size_t key_index, const ZeusTxn&)>;
  void set_update_hook(UpdateHook hook) { hook_ = std::move(hook); }

 private:
  struct KeyState {
    std::string name;
    std::vector<int64_t> zxid;  // Per host; -1 = never updated.
    std::vector<SimTime> at;
  };

  void OnUpdate(size_t host_index, size_t key_index, const ZeusTxn& txn);

  Network* net_;
  ZeusEnsemble* zeus_;
  std::vector<ServerId> hosts_;
  std::vector<KeyState> keys_;
  Rng rng_;
  UpdateHook hook_;
  uint64_t updates_received_ = 0;
};

}  // namespace configerator

#endif  // SRC_DISTRIBUTION_FLEET_H_
