// Git Tailer (paper §3.4 / Fig 3): continuously extracts config changes from
// the committed repository and writes them into Zeus for distribution. The
// paper reports the tailer contributes ~5 seconds to end-to-end propagation;
// that is its poll interval here.

#ifndef SRC_DISTRIBUTION_TAILER_H_
#define SRC_DISTRIBUTION_TAILER_H_

#include <functional>
#include <optional>
#include <string>

#include "src/sim/network.h"
#include "src/vcs/repository.h"
#include "src/zeus/zeus.h"

namespace configerator {

class GitTailer {
 public:
  struct Options {
    SimTime poll_interval = 5 * kSimSecond;
    // Time to fetch the detected changes from the repository before they can
    // be written into Zeus ("the git tailer takes about 5 seconds to fetch
    // config changes" — §6.3; 0 keeps small tests fast).
    SimTime fetch_delay = 0;
    // Only files under this prefix are distributed ("" = everything). Lets a
    // partitioned deployment run one tailer per repository.
    std::string path_prefix;
  };

  // `host` is the server the tailer runs on; its writes to Zeus traverse the
  // network from there.
  GitTailer(Network* net, ServerId host, const Repository* repo,
            ZeusEnsemble* zeus, Options options);

  // Starts the poll loop (first poll after one interval).
  void Start();

  // Opt-in metrics + tracing (must outlive the tailer). Publish spans parent
  // on the trace bound to the changed path (BindPath at land/commit time)
  // and bind the assigned zxid for the distribution tree to join on.
  void AttachObservability(Observability* obs);

  // Fires after a changed file has been committed into Zeus (zxid assigned);
  // benches use it to segment propagation latency.
  void set_on_published(
      std::function<void(const std::string& path, int64_t zxid)> fn) {
    on_published_ = std::move(fn);
  }

  uint64_t published_count() const { return published_; }

 private:
  void Poll();

  Network* net_;
  ServerId host_;
  const Repository* repo_;
  ZeusEnsemble* zeus_;
  Options options_;
  std::optional<ObjectId> last_seen_;
  uint64_t published_ = 0;
  std::function<void(const std::string&, int64_t)> on_published_;
  Observability* obs_ = nullptr;
  Counter* published_counter_ = nullptr;
  Counter* failed_counter_ = nullptr;
  Histogram* publish_latency_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_DISTRIBUTION_TAILER_H_
