// Content-addressed object model for the version-control substrate: blobs,
// trees and commits, identified by the SHA-256 of their canonical encoding —
// the same shape as git's object database. The paper stores config source
// and compiled JSON in git; this substrate reproduces the behaviours the
// evaluation depends on (commit cost growth, conflict detection, history).

#ifndef SRC_VCS_OBJECTS_H_
#define SRC_VCS_OBJECTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/sha256.h"
#include "src/util/status.h"

namespace configerator {

using ObjectId = Sha256Digest;

enum class ObjectKind { kBlob, kTree, kCommit };

// A directory: name -> (object id, is_tree). Names within a tree are unique
// and sorted (std::map), making tree encoding canonical.
struct TreeObject {
  struct Entry {
    ObjectId id;
    bool is_tree = false;

    bool operator==(const Entry&) const = default;
  };
  std::map<std::string, Entry> entries;

  std::string Encode() const;
  static Result<TreeObject> Decode(std::string_view data);
};

struct CommitObject {
  ObjectId tree;
  std::vector<ObjectId> parents;
  std::string author;
  std::string message;
  int64_t timestamp_ms = 0;  // Logical/simulated time, supplied by callers.

  std::string Encode() const;
  static Result<CommitObject> Decode(std::string_view data);
};

// In-memory content-addressed store. Objects are immutable once inserted.
class ObjectStore {
 public:
  // Stores `data` under its content hash (prefixed with the kind) and
  // returns the id. Idempotent.
  ObjectId PutBlob(std::string data);
  ObjectId PutTree(const TreeObject& tree);
  ObjectId PutCommit(const CommitObject& commit);

  Result<std::string> GetBlob(const ObjectId& id) const;
  Result<TreeObject> GetTree(const ObjectId& id) const;
  Result<CommitObject> GetCommit(const ObjectId& id) const;

  bool Contains(const ObjectId& id) const { return objects_.count(id) > 0; }
  size_t object_count() const { return objects_.size(); }
  // Total encoded bytes stored — proxy for repository size on disk.
  size_t total_bytes() const { return total_bytes_; }

 private:
  struct Stored {
    ObjectKind kind;
    std::string data;
  };

  ObjectId Put(ObjectKind kind, std::string data);
  Result<const Stored*> Get(const ObjectId& id, ObjectKind expected) const;

  std::unordered_map<ObjectId, Stored> objects_;
  size_t total_bytes_ = 0;
};

}  // namespace configerator

#endif  // SRC_VCS_OBJECTS_H_
