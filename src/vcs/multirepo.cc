#include "src/vcs/multirepo.h"

#include <algorithm>

namespace configerator {

MultiRepo::MultiRepo() {
  partitions_[""] = Partition{std::make_unique<Repository>("default"),
                              std::make_unique<std::mutex>()};
}

Status MultiRepo::AddPartition(const std::string& prefix) {
  if (prefix.empty()) {
    return InvalidArgumentError("partition prefix must be nonempty");
  }
  auto [it, inserted] = partitions_.try_emplace(
      prefix, Partition{std::make_unique<Repository>(prefix),
                        std::make_unique<std::mutex>()});
  if (!inserted) {
    return AlreadyExistsError("partition '" + prefix + "' already exists");
  }
  return OkStatus();
}

const std::string* MultiRepo::MatchPrefix(const std::string& path) const {
  const std::string* best = nullptr;
  for (const auto& [prefix, partition] : partitions_) {
    if (prefix.empty() || path.compare(0, prefix.size(), prefix) == 0) {
      if (best == nullptr || prefix.size() > best->size()) {
        best = &prefix;
      }
    }
  }
  return best;
}

Repository* MultiRepo::RepoFor(const std::string& path) {
  const std::string* prefix = MatchPrefix(path);
  return partitions_.at(*prefix).repo.get();
}

const Repository* MultiRepo::RepoFor(const std::string& path) const {
  const std::string* prefix = MatchPrefix(path);
  return partitions_.at(*prefix).repo.get();
}

Result<std::vector<ObjectId>> MultiRepo::Commit(
    const std::string& author, const std::string& message,
    const std::vector<FileWrite>& writes, int64_t timestamp_ms) {
  // Split writes by partition, preserving order within each.
  std::map<std::string, std::vector<FileWrite>> by_partition;
  for (const FileWrite& write : writes) {
    const std::string* prefix = MatchPrefix(write.path);
    by_partition[*prefix].push_back(write);
  }
  std::vector<ObjectId> commit_ids;
  for (auto& [prefix, partition_writes] : by_partition) {
    Partition& partition = partitions_.at(prefix);
    std::lock_guard<std::mutex> lock(*partition.mutex);
    ASSIGN_OR_RETURN(ObjectId id, partition.repo->Commit(author, message,
                                                         partition_writes,
                                                         timestamp_ms));
    commit_ids.push_back(id);
  }
  return commit_ids;
}

Result<std::string> MultiRepo::ReadFile(const std::string& path) const {
  return RepoFor(path)->ReadFile(path);
}

bool MultiRepo::FileExists(const std::string& path) const {
  return RepoFor(path)->FileExists(path);
}

std::vector<std::string> MultiRepo::ListFiles() const {
  std::vector<std::string> all;
  for (const auto& [prefix, partition] : partitions_) {
    std::vector<std::string> files = partition.repo->ListFiles();
    all.insert(all.end(), files.begin(), files.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<std::string> MultiRepo::PartitionPrefixes() const {
  std::vector<std::string> prefixes;
  prefixes.reserve(partitions_.size());
  for (const auto& [prefix, partition] : partitions_) {
    prefixes.push_back(prefix);
  }
  return prefixes;
}

std::mutex& MultiRepo::PartitionMutex(const std::string& prefix) {
  return *partitions_.at(prefix).mutex;
}

}  // namespace configerator
