// Line-oriented diff (Myers O(ND) algorithm) used for change-size statistics
// (Table 2 reports "line changes per config update" with Unix diff
// semantics: a modified line counts as one delete plus one add), for review
// rendering, and for conflict analysis in the landing strip.

#ifndef SRC_VCS_DIFF_H_
#define SRC_VCS_DIFF_H_

#include <string>
#include <vector>

namespace configerator {

struct DiffOp {
  enum class Kind { kKeep, kAdd, kDelete };
  Kind kind = Kind::kKeep;
  std::string text;  // The line (without trailing newline).
};

struct LineDiff {
  std::vector<DiffOp> ops;
  size_t added = 0;
  size_t deleted = 0;

  // Unix-diff line-change count: adds + deletes (a modification = 2).
  size_t changed_lines() const { return added + deleted; }
  bool identical() const { return added == 0 && deleted == 0; }
};

// Computes the line diff from `old_text` to `new_text`.
LineDiff DiffLines(const std::string& old_text, const std::string& new_text);

// Renders a compact unified-ish diff ("-old line" / "+new line" with 0
// context) for review UIs and logs.
std::string RenderDiff(const LineDiff& diff);

}  // namespace configerator

#endif  // SRC_VCS_DIFF_H_
