// Line-oriented diff (Myers O(ND) algorithm) used for change-size statistics
// (Table 2 reports "line changes per config update" with Unix diff
// semantics: a modified line counts as one delete plus one add), for review
// rendering, and for conflict analysis in the landing strip.

#ifndef SRC_VCS_DIFF_H_
#define SRC_VCS_DIFF_H_

#include <string>
#include <vector>

namespace configerator {

struct DiffOp {
  enum class Kind { kKeep, kAdd, kDelete };
  Kind kind = Kind::kKeep;
  std::string text;  // The line (without trailing newline).
  // 1-based source positions, filled by DiffLines: `old_line` for kKeep and
  // kDelete, `new_line` for kKeep and kAdd; 0 when not applicable. The
  // semantic differ uses them to attribute hunks to the symbols whose
  // definition ranges they fall in.
  int old_line = 0;
  int new_line = 0;
};

struct LineDiff {
  std::vector<DiffOp> ops;
  size_t added = 0;
  size_t deleted = 0;

  // Unix-diff line-change count: adds + deletes (a modification = 2).
  size_t changed_lines() const { return added + deleted; }
  bool identical() const { return added == 0 && deleted == 0; }
};

// Computes the line diff from `old_text` to `new_text`.
LineDiff DiffLines(const std::string& old_text, const std::string& new_text);

// (Re)fills each op's old_line/new_line from its position in the script.
// DiffLines calls this itself; exposed for diffs assembled by hand in tests.
void AssignLineNumbers(LineDiff* diff);

// Renders a compact unified-ish diff ("-old line" / "+new line" with 0
// context) for review UIs and logs.
std::string RenderDiff(const LineDiff& diff);

}  // namespace configerator

#endif  // SRC_VCS_DIFF_H_
