#include "src/vcs/repository.h"

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {

Repository::Repository(std::string name) : name_(std::move(name)) {}

Status Repository::ValidatePath(const std::string& path) {
  if (path.empty() || path.front() == '/' || path.back() == '/') {
    return InvalidArgumentError("invalid path: '" + path + "'");
  }
  if (path.find('\n') != std::string::npos) {
    return InvalidArgumentError("path contains newline");
  }
  if (path.find("//") != std::string::npos) {
    return InvalidArgumentError("path contains empty segment: '" + path + "'");
  }
  return OkStatus();
}

void Repository::IndexScan() const {
  if (!index_scan_enabled_) {
    return;
  }
  // Emulates `git status`: touch every tracked entry once. The work per
  // entry is a cheap hash mix, like a stat() cache probe.
  uint64_t acc = 0;
  for (const auto& [path, id] : manifest_) {
    acc ^= StableHash64(path);
    acc += id.bytes[0];
    acc = (acc << 13) | (acc >> 51);
  }
  index_scan_sink_ ^= acc;
}

Status Repository::ValidateWrites(const std::vector<FileWrite>& writes) const {
  // All-or-nothing: the whole batch is checked against the current manifest
  // (plus earlier writes in the same batch) before anything mutates, so a
  // rejected commit leaves no phantom state behind.
  std::map<std::string, bool> batch_state;  // path -> exists after batch.
  auto exists = [this, &batch_state](const std::string& path) {
    auto it = batch_state.find(path);
    if (it != batch_state.end()) {
      return it->second;
    }
    return manifest_.count(path) > 0;
  };

  for (const FileWrite& write : writes) {
    RETURN_IF_ERROR(ValidatePath(write.path));
    if (!write.content.has_value()) {
      if (!exists(write.path)) {
        return NotFoundError("cannot delete nonexistent path: " + write.path);
      }
      batch_state[write.path] = false;
      continue;
    }
    // A path may not pass through an existing file ("a" blocks "a/b"), and a
    // file may not land on an existing directory ("a/b" blocks "a") — either
    // would collide in the parent tree's namespace.
    std::vector<std::string> segments = StrSplit(write.path, '/');
    segments.pop_back();
    std::string prefix;
    for (const std::string& seg : segments) {
      prefix += seg;
      if (exists(prefix)) {
        return InvalidArgumentError("'" + prefix + "' is a file; cannot create '" +
                                    write.path + "' beneath it");
      }
      prefix += '/';
    }
    std::string dir_prefix = write.path + "/";
    auto below = manifest_.lower_bound(dir_prefix);
    bool has_children =
        below != manifest_.end() &&
        below->first.compare(0, dir_prefix.size(), dir_prefix) == 0;
    if (!has_children) {
      for (const auto& [path, present] : batch_state) {
        if (present && path.compare(0, dir_prefix.size(), dir_prefix) == 0) {
          has_children = true;
          break;
        }
      }
    }
    if (has_children && !exists(write.path)) {
      return InvalidArgumentError(
          "'" + write.path + "' is a directory; cannot overwrite it with a file");
    }
    batch_state[write.path] = true;
  }
  return OkStatus();
}

Status Repository::ApplyWrite(const FileWrite& write) {
  std::vector<std::string> segments = StrSplit(write.path, '/');
  std::string filename = segments.back();
  segments.pop_back();

  if (!write.content.has_value()) {
    // Delete.
    if (manifest_.erase(write.path) == 0) {
      return NotFoundError("cannot delete nonexistent path: " + write.path);
    }
    std::vector<DirNode*> chain{&root_};
    DirNode* node = &root_;
    for (const std::string& seg : segments) {
      auto it = node->dirs.find(seg);
      if (it == node->dirs.end()) {
        return InternalError("manifest/tree desync at " + write.path);
      }
      node = &it->second;
      chain.push_back(node);
    }
    node->files.erase(filename);
    for (DirNode* n : chain) {
      n->dirty = true;
    }
    // Prune now-empty directories bottom-up.
    for (size_t i = chain.size(); i-- > 1;) {
      DirNode* n = chain[i];
      if (n->files.empty() && n->dirs.empty()) {
        chain[i - 1]->dirs.erase(segments[i - 1]);
      } else {
        break;
      }
    }
    return OkStatus();
  }

  ObjectId blob_id = store_.PutBlob(*write.content);
  manifest_[write.path] = blob_id;
  DirNode* node = &root_;
  node->dirty = true;
  for (const std::string& seg : segments) {
    node = &node->dirs[seg];
    node->dirty = true;
  }
  node->files[filename] = blob_id;
  return OkStatus();
}

ObjectId Repository::FlushTree(DirNode* node) {
  if (!node->dirty) {
    return node->id;
  }
  TreeObject tree;
  for (auto& [name, child] : node->dirs) {
    tree.entries[name] = TreeObject::Entry{FlushTree(&child), /*is_tree=*/true};
  }
  for (const auto& [name, blob_id] : node->files) {
    tree.entries[name] = TreeObject::Entry{blob_id, /*is_tree=*/false};
  }
  node->id = store_.PutTree(tree);
  node->dirty = false;
  return node->id;
}

Result<ObjectId> Repository::Commit(const std::string& author,
                                    const std::string& message,
                                    const std::vector<FileWrite>& writes,
                                    int64_t timestamp_ms) {
  IndexScan();
  RETURN_IF_ERROR(ValidateWrites(writes));
  for (const FileWrite& write : writes) {
    RETURN_IF_ERROR(ApplyWrite(write));
  }
  CommitObject commit;
  commit.tree = FlushTree(&root_);
  if (head_.has_value()) {
    commit.parents.push_back(*head_);
  }
  commit.author = author;
  commit.message = message;
  commit.timestamp_ms = timestamp_ms;
  head_ = store_.PutCommit(commit);
  ++commit_count_;
  return *head_;
}

Result<std::string> Repository::ReadFile(const std::string& path) const {
  auto it = manifest_.find(path);
  if (it == manifest_.end()) {
    return NotFoundError("no file '" + path + "' at head of " + name_);
  }
  return store_.GetBlob(it->second);
}

std::vector<std::string> Repository::ListFiles() const {
  std::vector<std::string> paths;
  paths.reserve(manifest_.size());
  for (const auto& [path, id] : manifest_) {
    paths.push_back(path);
  }
  return paths;
}

std::vector<std::string> Repository::ListFilesUnder(
    const std::string& prefix) const {
  std::vector<std::string> paths;
  for (auto it = manifest_.lower_bound(prefix); it != manifest_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    paths.push_back(it->first);
  }
  return paths;
}

Result<CommitObject> Repository::GetCommit(const ObjectId& id) const {
  return store_.GetCommit(id);
}

Result<std::string> Repository::ReadFileAt(const ObjectId& commit_id,
                                           const std::string& path) const {
  ASSIGN_OR_RETURN(CommitObject commit, store_.GetCommit(commit_id));
  std::vector<std::string> segments = StrSplit(path, '/');
  ObjectId current = commit.tree;
  for (size_t i = 0; i < segments.size(); ++i) {
    ASSIGN_OR_RETURN(TreeObject tree, store_.GetTree(current));
    auto it = tree.entries.find(segments[i]);
    if (it == tree.entries.end()) {
      return NotFoundError(StrFormat("no file '%s' in commit %s", path.c_str(),
                                     commit_id.ShortHex().c_str()));
    }
    bool is_last = i + 1 == segments.size();
    if (is_last) {
      if (it->second.is_tree) {
        return InvalidArgumentError("'" + path + "' is a directory");
      }
      return store_.GetBlob(it->second.id);
    }
    if (!it->second.is_tree) {
      return NotFoundError("'" + segments[i] + "' is not a directory in " + path);
    }
    current = it->second.id;
  }
  return InternalError("unreachable");
}

Result<std::vector<ObjectId>> Repository::Log(size_t limit) const {
  std::vector<ObjectId> out;
  std::optional<ObjectId> current = head_;
  while (current.has_value() && out.size() < limit) {
    out.push_back(*current);
    ASSIGN_OR_RETURN(CommitObject commit, store_.GetCommit(*current));
    if (commit.parents.empty()) {
      break;
    }
    current = commit.parents.front();
  }
  return out;
}

Status Repository::CollectTreeFiles(const ObjectId& tree_id,
                                    const std::string& prefix,
                                    std::map<std::string, ObjectId>* out) const {
  ASSIGN_OR_RETURN(TreeObject tree, store_.GetTree(tree_id));
  for (const auto& [name, entry] : tree.entries) {
    std::string path = prefix.empty() ? name : prefix + "/" + name;
    if (entry.is_tree) {
      RETURN_IF_ERROR(CollectTreeFiles(entry.id, path, out));
    } else {
      (*out)[path] = entry.id;
    }
  }
  return OkStatus();
}

Status Repository::DiffTrees(const std::optional<ObjectId>& old_tree,
                             const std::optional<ObjectId>& new_tree,
                             const std::string& prefix,
                             std::vector<FileDelta>* out) const {
  if (old_tree.has_value() && new_tree.has_value() && *old_tree == *new_tree) {
    return OkStatus();  // Identical subtrees: skip, the content-address wins.
  }
  TreeObject old_obj;
  TreeObject new_obj;
  if (old_tree.has_value()) {
    ASSIGN_OR_RETURN(old_obj, store_.GetTree(*old_tree));
  }
  if (new_tree.has_value()) {
    ASSIGN_OR_RETURN(new_obj, store_.GetTree(*new_tree));
  }

  auto old_it = old_obj.entries.begin();
  auto new_it = new_obj.entries.begin();
  auto emit_side = [&](const std::string& name, const TreeObject::Entry& entry,
                       bool is_old) -> Status {
    std::string path = prefix.empty() ? name : prefix + "/" + name;
    if (entry.is_tree) {
      return DiffTrees(is_old ? std::optional<ObjectId>(entry.id) : std::nullopt,
                       is_old ? std::nullopt : std::optional<ObjectId>(entry.id),
                       path, out);
    }
    out->push_back(
        {path, is_old ? FileDelta::Kind::kDeleted : FileDelta::Kind::kAdded});
    return OkStatus();
  };

  while (old_it != old_obj.entries.end() || new_it != new_obj.entries.end()) {
    if (new_it == new_obj.entries.end() ||
        (old_it != old_obj.entries.end() && old_it->first < new_it->first)) {
      RETURN_IF_ERROR(emit_side(old_it->first, old_it->second, /*is_old=*/true));
      ++old_it;
      continue;
    }
    if (old_it == old_obj.entries.end() || new_it->first < old_it->first) {
      RETURN_IF_ERROR(emit_side(new_it->first, new_it->second, /*is_old=*/false));
      ++new_it;
      continue;
    }
    // Same name on both sides.
    const std::string& name = old_it->first;
    std::string path = prefix.empty() ? name : prefix + "/" + name;
    const TreeObject::Entry& oe = old_it->second;
    const TreeObject::Entry& ne = new_it->second;
    if (oe.is_tree && ne.is_tree) {
      RETURN_IF_ERROR(DiffTrees(oe.id, ne.id, path, out));
    } else if (!oe.is_tree && !ne.is_tree) {
      if (!(oe.id == ne.id)) {
        out->push_back({path, FileDelta::Kind::kModified});
      }
    } else {
      // File replaced by directory or vice versa.
      RETURN_IF_ERROR(emit_side(name, oe, /*is_old=*/true));
      RETURN_IF_ERROR(emit_side(name, ne, /*is_old=*/false));
    }
    ++old_it;
    ++new_it;
  }
  return OkStatus();
}

Result<std::vector<FileDelta>> Repository::DiffCommits(
    const std::optional<ObjectId>& old_commit,
    const std::optional<ObjectId>& new_commit) const {
  std::optional<ObjectId> old_tree;
  std::optional<ObjectId> new_tree;
  if (old_commit.has_value()) {
    ASSIGN_OR_RETURN(CommitObject c, store_.GetCommit(*old_commit));
    old_tree = c.tree;
  }
  if (new_commit.has_value()) {
    ASSIGN_OR_RETURN(CommitObject c, store_.GetCommit(*new_commit));
    new_tree = c.tree;
  }
  std::vector<FileDelta> out;
  RETURN_IF_ERROR(DiffTrees(old_tree, new_tree, "", &out));
  return out;
}

Result<LineDiff> Repository::DiffFile(const std::optional<ObjectId>& old_commit,
                                      const std::optional<ObjectId>& new_commit,
                                      const std::string& path) const {
  std::string old_text;
  std::string new_text;
  if (old_commit.has_value()) {
    auto r = ReadFileAt(*old_commit, path);
    if (r.ok()) {
      old_text = std::move(r).value();
    } else if (r.status().code() != StatusCode::kNotFound) {
      return r.status();
    }
  }
  if (new_commit.has_value()) {
    auto r = ReadFileAt(*new_commit, path);
    if (r.ok()) {
      new_text = std::move(r).value();
    } else if (r.status().code() != StatusCode::kNotFound) {
      return r.status();
    }
  }
  return DiffLines(old_text, new_text);
}

}  // namespace configerator
