#include "src/vcs/diff.h"

#include <algorithm>

#include "src/util/strings.h"

namespace configerator {

namespace {

// Myers' greedy O((N+M)D) shortest-edit-script, with linear-space trace of
// the V arrays per d-round. For pathological inputs (huge, totally different
// files) we cap D and fall back to delete-all/add-all.
// Bounded so the O(D) V-array snapshots stay small (≤ ~32 MB transient);
// beyond this a config edit is effectively a rewrite anyway.
constexpr size_t kMaxEditDistance = 2'000;

struct Script {
  // For each index pair step: produced directly from backtracking.
  std::vector<DiffOp> ops;
};

std::vector<DiffOp> MyersDiff(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int max_d = std::min<int>(n + m, static_cast<int>(kMaxEditDistance));
  const int offset = max_d;

  std::vector<int> v(static_cast<size_t>(2 * max_d + 1), 0);
  std::vector<std::vector<int>> trace;

  int found_d = -1;
  for (int d = 0; d <= max_d; ++d) {
    trace.push_back(v);
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d || (k != d && v[static_cast<size_t>(offset + k - 1)] <
                                    v[static_cast<size_t>(offset + k + 1)])) {
        x = v[static_cast<size_t>(offset + k + 1)];  // Down: insertion.
      } else {
        x = v[static_cast<size_t>(offset + k - 1)] + 1;  // Right: deletion.
      }
      int y = x - k;
      while (x < n && y < m && a[static_cast<size_t>(x)] == b[static_cast<size_t>(y)]) {
        ++x;
        ++y;
      }
      v[static_cast<size_t>(offset + k)] = x;
      if (x >= n && y >= m) {
        found_d = d;
        break;
      }
    }
    if (found_d >= 0) {
      break;
    }
  }

  if (found_d < 0) {
    // Capped out: whole-file replacement.
    std::vector<DiffOp> ops;
    ops.reserve(a.size() + b.size());
    for (const std::string& line : a) {
      ops.push_back({DiffOp::Kind::kDelete, line});
    }
    for (const std::string& line : b) {
      ops.push_back({DiffOp::Kind::kAdd, line});
    }
    return ops;
  }

  // Backtrack from (n, m) through the recorded V arrays.
  std::vector<DiffOp> reversed;
  int x = n;
  int y = m;
  for (int d = found_d; d > 0; --d) {
    const std::vector<int>& pv = trace[static_cast<size_t>(d)];
    int k = x - y;
    int prev_k;
    if (k == -d || (k != d && pv[static_cast<size_t>(offset + k - 1)] <
                                  pv[static_cast<size_t>(offset + k + 1)])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    int prev_x = pv[static_cast<size_t>(offset + prev_k)];
    int prev_y = prev_x - prev_k;
    while (x > prev_x && y > prev_y) {
      reversed.push_back({DiffOp::Kind::kKeep, a[static_cast<size_t>(x - 1)]});
      --x;
      --y;
    }
    if (x == prev_x) {
      reversed.push_back({DiffOp::Kind::kAdd, b[static_cast<size_t>(y - 1)]});
      --y;
    } else {
      reversed.push_back({DiffOp::Kind::kDelete, a[static_cast<size_t>(x - 1)]});
      --x;
    }
  }
  while (x > 0 && y > 0) {
    reversed.push_back({DiffOp::Kind::kKeep, a[static_cast<size_t>(x - 1)]});
    --x;
    --y;
  }
  while (x > 0) {
    reversed.push_back({DiffOp::Kind::kDelete, a[static_cast<size_t>(x - 1)]});
    --x;
  }
  while (y > 0) {
    reversed.push_back({DiffOp::Kind::kAdd, b[static_cast<size_t>(y - 1)]});
    --y;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

}  // namespace

LineDiff DiffLines(const std::string& old_text, const std::string& new_text) {
  LineDiff diff;
  if (old_text == new_text) {
    for (const std::string& line : SplitLines(old_text)) {
      diff.ops.push_back({DiffOp::Kind::kKeep, line});
    }
    AssignLineNumbers(&diff);
    return diff;
  }
  std::vector<std::string> a = SplitLines(old_text);
  std::vector<std::string> b = SplitLines(new_text);

  // Trim common prefix/suffix before running Myers — config edits are
  // typically tiny deltas in large files.
  size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  size_t suffix = 0;
  while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }

  for (size_t i = 0; i < prefix; ++i) {
    diff.ops.push_back({DiffOp::Kind::kKeep, a[i]});
  }
  std::vector<std::string> mid_a(a.begin() + static_cast<long>(prefix),
                                 a.end() - static_cast<long>(suffix));
  std::vector<std::string> mid_b(b.begin() + static_cast<long>(prefix),
                                 b.end() - static_cast<long>(suffix));
  for (DiffOp& op : MyersDiff(mid_a, mid_b)) {
    diff.ops.push_back(std::move(op));
  }
  for (size_t i = a.size() - suffix; i < a.size(); ++i) {
    diff.ops.push_back({DiffOp::Kind::kKeep, a[i]});
  }

  for (const DiffOp& op : diff.ops) {
    if (op.kind == DiffOp::Kind::kAdd) {
      ++diff.added;
    } else if (op.kind == DiffOp::Kind::kDelete) {
      ++diff.deleted;
    }
  }
  AssignLineNumbers(&diff);
  return diff;
}

void AssignLineNumbers(LineDiff* diff) {
  int old_line = 0;
  int new_line = 0;
  for (DiffOp& op : diff->ops) {
    switch (op.kind) {
      case DiffOp::Kind::kKeep:
        op.old_line = ++old_line;
        op.new_line = ++new_line;
        break;
      case DiffOp::Kind::kDelete:
        op.old_line = ++old_line;
        op.new_line = 0;
        break;
      case DiffOp::Kind::kAdd:
        op.old_line = 0;
        op.new_line = ++new_line;
        break;
    }
  }
}

std::string RenderDiff(const LineDiff& diff) {
  std::string out;
  for (const DiffOp& op : diff.ops) {
    switch (op.kind) {
      case DiffOp::Kind::kKeep:
        continue;
      case DiffOp::Kind::kAdd:
        out += "+" + op.text + "\n";
        break;
      case DiffOp::Kind::kDelete:
        out += "-" + op.text + "\n";
        break;
    }
  }
  return out;
}

}  // namespace configerator
