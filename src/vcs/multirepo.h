// Partitioned multi-repository namespace (paper §3.6): files under different
// path prefixes ("feed/", "tao/") are served by different repositories that
// accept commits concurrently, while code sees one global name space.
// Cross-repository reads work transparently; a commit whose writes span
// partitions is split into per-partition commits.

#ifndef SRC_VCS_MULTIREPO_H_
#define SRC_VCS_MULTIREPO_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/vcs/repository.h"

namespace configerator {

class MultiRepo {
 public:
  // Creates the namespace with a default partition (empty prefix) that
  // catches paths not matching any other partition.
  MultiRepo();

  // Adds a partition serving paths that start with `prefix` (e.g. "feed/").
  // Longest-prefix match wins. Returns an error if the prefix already exists.
  Status AddPartition(const std::string& prefix);

  // Partition lookup for a path.
  Repository* RepoFor(const std::string& path);
  const Repository* RepoFor(const std::string& path) const;

  // Commits `writes`, splitting them across partitions. Each partition's
  // commit is independent (concurrent commits to different partitions do not
  // contend). Returns one commit id per touched partition.
  Result<std::vector<ObjectId>> Commit(const std::string& author,
                                       const std::string& message,
                                       const std::vector<FileWrite>& writes,
                                       int64_t timestamp_ms = 0);

  Result<std::string> ReadFile(const std::string& path) const;
  bool FileExists(const std::string& path) const;
  std::vector<std::string> ListFiles() const;

  size_t partition_count() const { return partitions_.size(); }
  std::vector<std::string> PartitionPrefixes() const;

  // The per-partition lock a landing strip would take; exposed so the
  // commit-throughput bench can drive partitions from multiple threads.
  std::mutex& PartitionMutex(const std::string& prefix);

 private:
  struct Partition {
    std::unique_ptr<Repository> repo;
    std::unique_ptr<std::mutex> mutex;
  };

  const std::string* MatchPrefix(const std::string& path) const;

  // Keyed by prefix; "" is the default partition.
  std::map<std::string, Partition> partitions_;
};

}  // namespace configerator

#endif  // SRC_VCS_MULTIREPO_H_
