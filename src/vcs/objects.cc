#include "src/vcs/objects.h"

#include "src/util/strings.h"

namespace configerator {

namespace {

const char* KindTag(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kBlob:
      return "blob";
    case ObjectKind::kTree:
      return "tree";
    case ObjectKind::kCommit:
      return "commit";
  }
  return "?";
}

}  // namespace

std::string TreeObject::Encode() const {
  // Lines: "<t|b> <hex-id> <name>\n". Names are sorted by std::map order, so
  // the encoding (and hence the id) is canonical.
  std::string out;
  for (const auto& [name, entry] : entries) {
    out += entry.is_tree ? 't' : 'b';
    out += ' ';
    out += entry.id.ToHex();
    out += ' ';
    out += name;
    out += '\n';
  }
  return out;
}

Result<TreeObject> TreeObject::Decode(std::string_view data) {
  TreeObject tree;
  for (const std::string& line : SplitLines(data)) {
    if (line.size() < 3 + 64) {
      return CorruptionError("malformed tree entry: " + line);
    }
    Entry entry;
    entry.is_tree = line[0] == 't';
    if (line[0] != 't' && line[0] != 'b') {
      return CorruptionError("malformed tree entry kind");
    }
    if (!Sha256Digest::FromHex(std::string_view(line).substr(2, 64), &entry.id)) {
      return CorruptionError("malformed tree entry id");
    }
    std::string name = line.substr(2 + 64 + 1);
    if (name.empty()) {
      return CorruptionError("empty tree entry name");
    }
    tree.entries.emplace(std::move(name), entry);
  }
  return tree;
}

std::string CommitObject::Encode() const {
  std::string out = "tree " + tree.ToHex() + "\n";
  for (const ObjectId& parent : parents) {
    out += "parent " + parent.ToHex() + "\n";
  }
  out += "author " + author + "\n";
  out += StrFormat("timestamp %lld\n", static_cast<long long>(timestamp_ms));
  out += "\n";
  out += message;
  return out;
}

Result<CommitObject> CommitObject::Decode(std::string_view data) {
  CommitObject commit;
  size_t pos = 0;
  bool saw_tree = false;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) {
      return CorruptionError("malformed commit: missing header terminator");
    }
    std::string_view line = data.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      commit.message = std::string(data.substr(pos));
      if (!saw_tree) {
        return CorruptionError("malformed commit: no tree");
      }
      return commit;
    }
    if (line.starts_with("tree ")) {
      if (!Sha256Digest::FromHex(line.substr(5), &commit.tree)) {
        return CorruptionError("malformed commit tree id");
      }
      saw_tree = true;
    } else if (line.starts_with("parent ")) {
      ObjectId parent;
      if (!Sha256Digest::FromHex(line.substr(7), &parent)) {
        return CorruptionError("malformed commit parent id");
      }
      commit.parents.push_back(parent);
    } else if (line.starts_with("author ")) {
      commit.author = std::string(line.substr(7));
    } else if (line.starts_with("timestamp ")) {
      commit.timestamp_ms = std::strtoll(std::string(line.substr(10)).c_str(),
                                         nullptr, 10);
    } else {
      return CorruptionError("malformed commit header line");
    }
  }
  return CorruptionError("malformed commit: truncated");
}

ObjectId ObjectStore::Put(ObjectKind kind, std::string data) {
  Sha256 hasher;
  hasher.Update(KindTag(kind));
  hasher.Update("\0", 1);
  hasher.Update(data);
  ObjectId id = hasher.Finish();
  auto [it, inserted] = objects_.try_emplace(id, Stored{kind, std::move(data)});
  if (inserted) {
    total_bytes_ += it->second.data.size();
  }
  return id;
}

Result<const ObjectStore::Stored*> ObjectStore::Get(const ObjectId& id,
                                                    ObjectKind expected) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return NotFoundError("no object " + id.ShortHex());
  }
  if (it->second.kind != expected) {
    return CorruptionError(StrFormat("object %s is a %s, expected %s",
                                     id.ShortHex().c_str(),
                                     KindTag(it->second.kind), KindTag(expected)));
  }
  return &it->second;
}

ObjectId ObjectStore::PutBlob(std::string data) {
  return Put(ObjectKind::kBlob, std::move(data));
}

ObjectId ObjectStore::PutTree(const TreeObject& tree) {
  return Put(ObjectKind::kTree, tree.Encode());
}

ObjectId ObjectStore::PutCommit(const CommitObject& commit) {
  return Put(ObjectKind::kCommit, commit.Encode());
}

Result<std::string> ObjectStore::GetBlob(const ObjectId& id) const {
  ASSIGN_OR_RETURN(const Stored* stored, Get(id, ObjectKind::kBlob));
  return stored->data;
}

Result<TreeObject> ObjectStore::GetTree(const ObjectId& id) const {
  ASSIGN_OR_RETURN(const Stored* stored, Get(id, ObjectKind::kTree));
  return TreeObject::Decode(stored->data);
}

Result<CommitObject> ObjectStore::GetCommit(const ObjectId& id) const {
  ASSIGN_OR_RETURN(const Stored* stored, Get(id, ObjectKind::kCommit));
  return CommitObject::Decode(stored->data);
}

}  // namespace configerator
